package phys

import (
	"testing"

	"repro/internal/micropacket"
	"repro/internal/sim"
	"repro/internal/wire"
)

func testNet() (*sim.Kernel, *Net) {
	k := sim.NewKernel(1)
	return k, NewNet(k)
}

func dataFrame(src, dst micropacket.NodeID) Frame {
	return newFrameV1(micropacket.NewData(src, dst, 0, []byte{1, 2, 3}))
}

// newFrameV1 sizes a frame under the default v1 wire format, standing
// in for Net.NewFrame in tests that build frames before picking a net.
func newFrameV1(p *micropacket.Packet) Frame {
	return Frame{Pkt: p, Wire: wire.Size(wire.V1, p.Type, len(p.Data))}
}

func TestSerTime(t *testing.T) {
	// 24 bytes at 1.0625 Gbaud, 10 baud/byte: 240/1.0625 ≈ 225.9 ns.
	got := SerTime(24)
	if got < 225 || got > 227 {
		t.Fatalf("SerTime(24) = %v, want ≈226ns", got)
	}
	// A full gigabit second moves 106.25 MB.
	if SerTime(106_250_000) < 999*sim.Millisecond || SerTime(106_250_000) > 1001*sim.Millisecond {
		t.Fatalf("SerTime(106.25MB) = %v, want ≈1s", SerTime(106_250_000))
	}
}

func TestPropTime(t *testing.T) {
	if PropTime(1000) != 5*sim.Microsecond {
		t.Fatalf("PropTime(1km) = %v, want 5µs", PropTime(1000))
	}
	if PropTime(0) != 0 {
		t.Fatalf("PropTime(0) = %v", PropTime(0))
	}
}

func TestPointToPointDelivery(t *testing.T) {
	k, n := testNet()
	var gotAt sim.Time = -1
	var got Frame
	a := n.NewPort("a", nil)
	b := n.NewPort("b", func(_ *Port, f Frame) { gotAt, got = k.Now(), f })
	n.Connect(a, b, 100) // 500 ns propagation

	f := dataFrame(1, 2)
	if !a.Send(f) {
		t.Fatal("send refused")
	}
	k.Run()
	if gotAt < 0 {
		t.Fatal("frame not delivered")
	}
	want := SerTime(f.Wire+n.IFG) + PropTime(100)
	if gotAt != want {
		t.Fatalf("delivered at %v, want %v", gotAt, want)
	}
	if got.Pkt.Src != 1 {
		t.Fatalf("wrong frame delivered: %v", got.Pkt)
	}
	if n.Delivered.N != 1 || n.Drops.N != 0 || n.Lost.N != 0 {
		t.Fatalf("counters: %+v %+v %+v", n.Delivered, n.Drops, n.Lost)
	}
}

func TestFIFOSerializationOrder(t *testing.T) {
	k, n := testNet()
	var order []uint8
	a := n.NewPort("a", nil)
	b := n.NewPort("b", func(_ *Port, f Frame) { order = append(order, f.Pkt.Tag) })
	n.Connect(a, b, 10)
	for i := 0; i < 10; i++ {
		p := micropacket.NewData(1, 2, uint8(i), nil)
		if !a.Send(newFrameV1(p)) {
			t.Fatalf("send %d refused", i)
		}
	}
	k.Run()
	if len(order) != 10 {
		t.Fatalf("delivered %d frames, want 10", len(order))
	}
	for i, tag := range order {
		if tag != uint8(i) {
			t.Fatalf("out of order at %d: %v", i, order)
		}
	}
}

func TestBackToBackSpacing(t *testing.T) {
	k, n := testNet()
	var times []sim.Time
	a := n.NewPort("a", nil)
	b := n.NewPort("b", func(_ *Port, f Frame) { times = append(times, k.Now()) })
	n.Connect(a, b, 0)
	f := dataFrame(1, 2)
	a.Send(f)
	a.Send(f)
	k.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	gap := times[1] - times[0]
	if gap != SerTime(f.Wire+n.IFG) {
		t.Fatalf("inter-delivery gap %v, want one serialization time %v", gap, SerTime(f.Wire+n.IFG))
	}
}

func TestFIFOOverflowDrops(t *testing.T) {
	k, n := testNet()
	a := n.NewPort("a", nil)
	b := n.NewPort("b", nil)
	n.Connect(a, b, 10)
	a.SetCapacity(4)
	ok := 0
	for i := 0; i < 10; i++ {
		if a.Send(dataFrame(1, 2)) {
			ok++
		}
	}
	if ok != 4 {
		t.Fatalf("accepted %d, want 4", ok)
	}
	if n.Drops.N != 6 {
		t.Fatalf("drops = %d, want 6", n.Drops.N)
	}
	k.Run()
}

func TestUnconnectedSendFails(t *testing.T) {
	_, n := testNet()
	a := n.NewPort("a", nil)
	if a.Send(dataFrame(1, 2)) {
		t.Fatal("send on unconnected port succeeded")
	}
	if n.Lost.N != 1 {
		t.Fatal("loss not counted")
	}
}

func TestLinkFailLosesInFlight(t *testing.T) {
	k, n := testNet()
	delivered := 0
	a := n.NewPort("a", nil)
	b := n.NewPort("b", func(_ *Port, f Frame) { delivered++ })
	l := n.Connect(a, b, 10000) // 50 µs propagation
	a.Send(dataFrame(1, 2))
	// Cut the fiber while the frame is in flight.
	k.After(10*sim.Microsecond, func() { l.Fail() })
	k.Run()
	if delivered != 0 {
		t.Fatal("frame delivered across failed link")
	}
	if n.Lost.N != 1 {
		t.Fatalf("lost = %d, want 1", n.Lost.N)
	}
}

func TestLossOfLightNotification(t *testing.T) {
	k, n := testNet()
	var aEvents, bEvents []bool
	var aAt sim.Time
	a := n.NewPort("a", nil)
	b := n.NewPort("b", nil)
	a.SetStatusHandler(func(_ *Port, up bool) { aEvents = append(aEvents, up); aAt = k.Now() })
	b.SetStatusHandler(func(_ *Port, up bool) { bEvents = append(bEvents, up) })
	l := n.Connect(a, b, 10)
	k.After(100*sim.Microsecond, func() { l.Fail() })
	k.Run()
	if len(aEvents) != 1 || aEvents[0] || len(bEvents) != 1 || bEvents[0] {
		t.Fatalf("events: a=%v b=%v", aEvents, bEvents)
	}
	if aAt != 100*sim.Microsecond+n.Detect {
		t.Fatalf("detected at %v, want %v", aAt, 100*sim.Microsecond+n.Detect)
	}
	k.After(0, func() { l.Restore() })
	k.Run()
	if len(aEvents) != 2 || !aEvents[1] {
		t.Fatalf("restore not seen: %v", aEvents)
	}
}

func TestSendAfterRestore(t *testing.T) {
	k, n := testNet()
	delivered := 0
	a := n.NewPort("a", nil)
	b := n.NewPort("b", func(_ *Port, f Frame) { delivered++ })
	l := n.Connect(a, b, 10)
	l.Fail()
	if a.Send(dataFrame(1, 2)) {
		t.Fatal("send on dark link accepted")
	}
	l.Restore()
	if !a.Send(dataFrame(1, 2)) {
		t.Fatal("send after restore refused")
	}
	k.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
}

func TestDoubleFailRestoreIdempotent(t *testing.T) {
	k, n := testNet()
	a := n.NewPort("a", nil)
	b := n.NewPort("b", nil)
	l := n.Connect(a, b, 10)
	l.Fail()
	l.Fail()
	l.Restore()
	l.Restore()
	k.Run()
	if !l.Up() {
		t.Fatal("link should be up")
	}
}

func TestConnectTwicePanics(t *testing.T) {
	_, n := testNet()
	a := n.NewPort("a", nil)
	b := n.NewPort("b", nil)
	c := n.NewPort("c", nil)
	n.Connect(a, b, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double connect did not panic")
		}
	}()
	n.Connect(a, c, 1)
}

func TestPeer(t *testing.T) {
	_, n := testNet()
	a := n.NewPort("a", nil)
	b := n.NewPort("b", nil)
	if a.Peer() != nil {
		t.Fatal("unconnected peer should be nil")
	}
	n.Connect(a, b, 1)
	if a.Peer() != b || b.Peer() != a {
		t.Fatal("peer wiring wrong")
	}
}

// --- switch tests ---

func TestSwitchCrossbarForwarding(t *testing.T) {
	k, n := testNet()
	sw := n.NewSwitch("sw", 3)
	var got []int
	mk := func(i int) *Port {
		p := n.NewPort("n", func(_ *Port, f Frame) { got = append(got, i) })
		n.Connect(p, sw.Port(i), 10)
		return p
	}
	p0 := mk(0)
	mk(1)
	mk(2)
	sw.SetRoute(0, 2)
	p0.Send(dataFrame(0, 2))
	k.Run()
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("crossbar delivered to %v, want [2]", got)
	}
	if sw.Forwarded != 1 {
		t.Fatalf("Forwarded = %d", sw.Forwarded)
	}
}

func TestSwitchUnroutedDropped(t *testing.T) {
	k, n := testNet()
	sw := n.NewSwitch("sw", 2)
	delivered := 0
	p0 := n.NewPort("n0", nil)
	p1 := n.NewPort("n1", func(_ *Port, f Frame) { delivered++ })
	n.Connect(p0, sw.Port(0), 10)
	n.Connect(p1, sw.Port(1), 10)
	p0.Send(dataFrame(0, 1))
	k.Run()
	if delivered != 0 {
		t.Fatal("unrouted frame forwarded")
	}
	if sw.Unrouted != 1 {
		t.Fatalf("Unrouted = %d", sw.Unrouted)
	}
}

func TestSwitchFloodsRostering(t *testing.T) {
	k, n := testNet()
	sw := n.NewSwitch("sw", 4)
	var got []int
	var ports []*Port
	for i := 0; i < 4; i++ {
		i := i
		p := n.NewPort("n", func(_ *Port, f Frame) { got = append(got, i) })
		n.Connect(p, sw.Port(i), 10)
		ports = append(ports, p)
	}
	rp := micropacket.NewRostering(0, 1, [8]byte{})
	ports[1].Send(newFrameV1(rp))
	k.Run()
	if len(got) != 3 {
		t.Fatalf("flooded to %v, want all but ingress", got)
	}
	for _, i := range got {
		if i == 1 {
			t.Fatal("flooded back to ingress")
		}
	}
}

func TestSwitchFloodSkipsDarkPorts(t *testing.T) {
	k, n := testNet()
	sw := n.NewSwitch("sw", 3)
	var got []int
	var links []*Link
	var ports []*Port
	for i := 0; i < 3; i++ {
		i := i
		p := n.NewPort("n", func(_ *Port, f Frame) { got = append(got, i) })
		links = append(links, n.Connect(p, sw.Port(i), 10))
		ports = append(ports, p)
	}
	links[2].Fail()
	ports[0].Send(newFrameV1(micropacket.NewRostering(0, 1, [8]byte{})))
	k.Run()
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("flood reached %v, want [1]", got)
	}
}

func TestSwitchFail(t *testing.T) {
	k, n := testNet()
	sw := n.NewSwitch("sw", 2)
	delivered := 0
	p0 := n.NewPort("n0", nil)
	p1 := n.NewPort("n1", func(_ *Port, f Frame) { delivered++ })
	l0 := n.Connect(p0, sw.Port(0), 10)
	n.Connect(p1, sw.Port(1), 10)
	sw.SetRoute(0, 1)
	sw.Fail()
	if l0.Up() {
		t.Fatal("switch failure should darken attached links")
	}
	p0.Send(dataFrame(0, 1))
	k.Run()
	if delivered != 0 {
		t.Fatal("failed switch forwarded")
	}
	sw.Restore()
	if !l0.Up() {
		t.Fatal("restore should re-light links")
	}
	p0.Send(dataFrame(0, 1))
	k.Run()
	if delivered != 1 {
		t.Fatalf("delivered after restore = %d", delivered)
	}
}

// --- topology tests ---

func TestBuildClusterShape(t *testing.T) {
	k, n := testNet()
	c := BuildCluster(n, 6, 4, 50)
	if c.NumNodes() != 6 || c.NumSwitches() != 4 {
		t.Fatalf("shape %dx%d", c.NumNodes(), c.NumSwitches())
	}
	for i := 0; i < 6; i++ {
		for s := 0; s < 4; s++ {
			if !c.NodeLinks[i][s].Up() {
				t.Fatalf("link n%d-s%d down at build", i, s)
			}
		}
	}
	k.Run()
}

func TestLiveSwitchesBetween(t *testing.T) {
	_, n := testNet()
	c := BuildCluster(n, 4, 4, 50)
	if got := c.LiveSwitchesBetween(0, 1); len(got) != 4 {
		t.Fatalf("all-up candidates = %v", got)
	}
	c.NodeLinks[0][0].Fail()
	if got := c.LiveSwitchesBetween(0, 1); len(got) != 3 {
		t.Fatalf("after one link fail = %v", got)
	}
	c.Switches[1].Fail()
	if got := c.LiveSwitchesBetween(0, 1); len(got) != 2 {
		t.Fatalf("after switch fail = %v", got)
	}
	c.NodeLinks[1][2].Fail()
	c.NodeLinks[0][3].Fail()
	if got := c.LiveSwitchesBetween(0, 1); got != nil {
		t.Fatalf("no common switch expected, got %v", got)
	}
}

func TestFailRestoreNode(t *testing.T) {
	_, n := testNet()
	c := BuildCluster(n, 3, 2, 50)
	c.FailNode(1)
	for s := 0; s < 2; s++ {
		if c.NodeLinks[1][s].Up() {
			t.Fatal("node link up after FailNode")
		}
	}
	c.RestoreNode(1)
	for s := 0; s < 2; s++ {
		if !c.NodeLinks[1][s].Up() {
			t.Fatal("node link down after RestoreNode")
		}
	}
}
