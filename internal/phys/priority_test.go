package phys

import (
	"testing"

	"repro/internal/micropacket"
	"repro/internal/sim"
)

// TestSendPriorityJumpsQueue: priority frames overtake queued data but
// not the frame already being serialized.
func TestSendPriorityJumpsQueue(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNet(k)
	var order []uint8
	a := n.NewPort("a", nil)
	b := n.NewPort("b", func(_ *Port, f Frame) { order = append(order, f.Pkt.Tag) })
	n.Connect(a, b, 10)
	for i := 0; i < 4; i++ {
		a.Send(newFrameV1(micropacket.NewData(1, 2, uint8(i), nil)))
	}
	a.SendPriority(newFrameV1(micropacket.NewRostering(1, 99, [8]byte{})))
	k.Run()
	if len(order) != 5 {
		t.Fatalf("delivered %d", len(order))
	}
	// Frame 0 was mid-serialization; the rostering frame (tag 0 in a
	// Rostering packet — identify by position) must be second.
	if order[0] != 0 {
		t.Fatalf("in-flight frame displaced: %v", order)
	}
	// order[1] is the priority frame (its Tag is 99).
	if order[1] != 99 {
		t.Fatalf("priority frame did not jump the queue: %v", order)
	}
	if order[2] != 1 || order[3] != 2 || order[4] != 3 {
		t.Fatalf("data order disturbed: %v", order)
	}
}

// TestSendPriorityBypassesCapacity: a full FIFO refuses data but still
// accepts rostering traffic.
func TestSendPriorityBypassesCapacity(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNet(k)
	a := n.NewPort("a", nil)
	b := n.NewPort("b", nil)
	n.Connect(a, b, 10)
	a.SetCapacity(2)
	a.Send(newFrameV1(micropacket.NewData(1, 2, 0, nil)))
	a.Send(newFrameV1(micropacket.NewData(1, 2, 1, nil)))
	if a.Send(newFrameV1(micropacket.NewData(1, 2, 2, nil))) {
		t.Fatal("over-capacity data accepted")
	}
	if !a.SendPriority(newFrameV1(micropacket.NewRostering(1, 0, [8]byte{}))) {
		t.Fatal("priority frame refused by full FIFO")
	}
	k.Run()
}

// TestSendPriorityOnDarkLink: loss counted, send refused.
func TestSendPriorityOnDarkLink(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNet(k)
	a := n.NewPort("a", nil)
	b := n.NewPort("b", nil)
	l := n.Connect(a, b, 10)
	l.Fail()
	if a.SendPriority(newFrameV1(micropacket.NewRostering(1, 0, [8]byte{}))) {
		t.Fatal("priority send on dark link accepted")
	}
	if n.Lost.N != 1 {
		t.Fatalf("lost = %d", n.Lost.N)
	}
	k.Run()
}

// TestTwoPriorityFramesKeepOrder: successive priority frames stay FIFO
// among themselves.
func TestTwoPriorityFramesKeepOrder(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNet(k)
	var order []uint8
	a := n.NewPort("a", nil)
	b := n.NewPort("b", func(_ *Port, f Frame) { order = append(order, f.Pkt.Tag) })
	n.Connect(a, b, 10)
	a.Send(newFrameV1(micropacket.NewData(1, 2, 0, nil)))
	a.Send(newFrameV1(micropacket.NewData(1, 2, 1, nil)))
	a.SendPriority(newFrameV1(micropacket.NewRostering(1, 10, [8]byte{})))
	a.SendPriority(newFrameV1(micropacket.NewRostering(1, 11, [8]byte{})))
	k.Run()
	want := []uint8{0, 10, 11, 1}
	if len(order) != 4 {
		t.Fatalf("delivered %d", len(order))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
