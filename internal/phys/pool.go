package phys

import (
	"repro/internal/frameacct"
	"repro/internal/sim"
)

// Hot-path event pools.
//
// Every frame hop used to cost four heap allocations: a delivery
// closure and its Timer, and a tx-done closure and its Timer. At E15
// scale (millions of frame hops) those allocations — and the GC scan
// load of the closures they retain — dominate the profile next to heap
// operations. The records below make the steady state allocation-free:
// each Net keeps free lists of delivery / tx-done / switch-forward
// records whose dispatch closure is built once, when the record is
// first created, and reused for the record's whole life. Scheduling
// goes through the kernel's Do/DoPri fast path, which issues no Timer.
//
// Records are recycled at the top of dispatch (fields copied to locals,
// record pushed back on the free list, then the work runs), so a model
// callback that transmits more frames reuses the very record that
// delivered to it. The pools are per-Net and therefore per-shard: they
// are only touched from their own kernel's event context (or, for
// cross-shard injection, from the coordinator while every shard is
// parked at a barrier), the same single-threaded discipline as the
// rest of the Net's state.

// delivery carries one scheduled frame arrival (local hop or
// cross-shard injection).
type delivery struct {
	n     *Net
	dst   *Port
	f     Frame
	link  *Link
	epoch uint64
	run   func()
}

func (n *Net) newDelivery(dst *Port, f Frame, link *Link, epoch uint64) *delivery {
	var d *delivery
	if m := len(n.delFree); m > 0 {
		d = n.delFree[m-1]
		n.delFree = n.delFree[:m-1]
	} else {
		d = &delivery{n: n}
		d.run = d.dispatch
	}
	d.dst, d.f, d.link, d.epoch = dst, f, link, epoch
	return d
}

func (d *delivery) dispatch() {
	n, dst, f, link, epoch := d.n, d.dst, d.f, d.link, d.epoch
	d.dst, d.f, d.link = nil, Frame{}, nil
	n.delFree = append(n.delFree, d)
	n.CompleteDelivery(dst, f, link, epoch)
}

// ScheduleDelivery queues a pooled frame arrival on this Net's kernel
// at the absolute time arrival, under the wire key (txAt, srcUID). It
// is the shared scheduling path for local hops (Port.startTx) and for
// the transports' cross-shard barrier injection, so both cost zero
// allocations and land in the identical same-instant order.
func (n *Net) ScheduleDelivery(arrival, txAt sim.Time, srcUID uint32, dst *Port, f Frame, link *Link, epoch uint64) {
	d := n.newDelivery(dst, f, link, epoch)
	n.K.DoPri(arrival, txAt, srcUID, d.run)
}

// txDone carries one scheduled transmitter-free event. It is pooled —
// not a single reusable record per port — because two can be in flight
// for one port at once: a link failure clears the FIFO mid-frame and a
// restore lets a new transmission start before the stale completion
// (which the epoch check parries) has fired.
type txDone struct {
	n     *Net
	p     *Port
	link  *Link
	epoch uint64
	run   func()
}

func (n *Net) newTxDone(p *Port, link *Link, epoch uint64) *txDone {
	var t *txDone
	if m := len(n.txFree); m > 0 {
		t = n.txFree[m-1]
		n.txFree = n.txFree[:m-1]
	} else {
		t = &txDone{n: n}
		t.run = t.dispatch
	}
	t.p, t.link, t.epoch = p, link, epoch
	return t
}

func (t *txDone) dispatch() {
	n, p, link, epoch := t.n, t.p, t.link, t.epoch
	t.p, t.link = nil, nil
	n.txFree = append(n.txFree, t)
	if link.epoch != epoch {
		return
	}
	p.Sent++
	p.popFrame()
	p.startTx()
	if p.onTxDone != nil {
		p.onTxDone()
	}
}

// swForward carries one scheduled switch cut-through forward.
type swForward struct {
	s   *Switch
	out int
	f   Frame
	run func()
}

func (n *Net) newSwForward(s *Switch, out int, f Frame) *swForward {
	var w *swForward
	if m := len(n.swFree); m > 0 {
		w = n.swFree[m-1]
		n.swFree = n.swFree[:m-1]
	} else {
		w = &swForward{}
		w.run = w.dispatch
	}
	w.s, w.out, w.f = s, out, f
	return w
}

func (w *swForward) dispatch() {
	s, out, f := w.s, w.out, w.f
	w.s, w.f = nil, Frame{}
	s.net.swFree = append(s.net.swFree, w)
	s.net.Acct.Exit()
	if s.failed {
		s.net.Acct.Lose(frameacct.LossSwitchDead)
		return
	}
	if out < len(s.ports) && s.ports[out].Up() {
		s.Forwarded++
		s.net.Acct.Relaunch()
		s.ports[out].Send(f)
	} else {
		s.net.Acct.Lose(frameacct.LossEgressDark)
	}
}
