package phys

import (
	"bytes"
	"testing"

	"repro/internal/enc8b10b"
	"repro/internal/micropacket"
	"repro/internal/sim"
	"repro/internal/wire"
)

// TestDeepPHYCleanDelivery: with the full hardware datapath enabled,
// every frame survives encode→8b/10b→decode bit-exactly.
func TestDeepPHYCleanDelivery(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNet(k)
	n.DeepPHY = true
	var got []*micropacket.Packet
	a := n.NewPort("a", nil)
	b := n.NewPort("b", func(_ *Port, f Frame) { got = append(got, f.Pkt) })
	n.Connect(a, b, 100)

	sent := []*micropacket.Packet{
		micropacket.NewData(1, 2, 7, []byte{0xDE, 0xAD, 0xBE, 0xEF}),
		micropacket.NewDMA(1, 2, micropacket.DMAHeader{Channel: 5, Region: 3, Offset: 4096}, bytes.Repeat([]byte{0x5A}, 64)),
		micropacket.NewAtomic(1, 2, 9, micropacket.OpFetchAdd, 0x123456789ABCDEF0),
		micropacket.NewRostering(1, 0, [8]byte{1, 2, 3, 4, 5, 6, 7, 8}),
	}
	for _, p := range sent {
		if !a.Send(newFrameV1(p)) {
			t.Fatal("send refused")
		}
	}
	k.Run()
	if len(got) != len(sent) {
		t.Fatalf("delivered %d of %d", len(got), len(sent))
	}
	for i, p := range sent {
		q := got[i]
		if q.Type != p.Type || q.Src != p.Src || q.Dst != p.Dst || q.Tag != p.Tag ||
			q.Payload != p.Payload || !bytes.Equal(q.Data, p.Data) || q.DMA != p.DMA {
			t.Fatalf("frame %d mutated through deep PHY:\n  sent %v\n  got  %v", i, p, q)
		}
	}
	if n.CRCDrops.N != 0 {
		t.Fatalf("CRC drops on clean link: %d", n.CRCDrops.N)
	}
}

// TestDeepPHYCorruptionDiscarded: single bit flips anywhere in the
// symbol stream must never deliver a corrupted frame — the hardware
// discards on code violation or CRC mismatch.
func TestDeepPHYCorruptionDiscarded(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	ref := micropacket.NewData(1, 2, 7, payload)
	syms, _ := wire.EncodeSymbols(wire.MustForVersion(wire.V1), ref, enc8b10b.NewEncoder())
	nSyms := len(syms)

	delivered, dropped := 0, 0
	for symIdx := 0; symIdx < nSyms; symIdx++ {
		for bit := 0; bit < 10; bit++ {
			k := sim.NewKernel(1)
			n := NewNet(k)
			n.DeepPHY = true
			si, bi := symIdx, bit
			n.Corrupt = func(_ Frame, s []enc8b10b.Symbol) {
				s[si] ^= 1 << bi
			}
			ok := true
			a := n.NewPort("a", nil)
			b := n.NewPort("b", func(_ *Port, f Frame) {
				delivered++
				// If it got through despite the flip, it must be
				// bit-identical (the flip hit redundancy, e.g. got
				// corrected... 8b/10b does not correct, so this
				// should not happen for payload bits).
				if f.Pkt.Payload != ref.Payload || f.Pkt.Tag != ref.Tag ||
					f.Pkt.Src != ref.Src || f.Pkt.Dst != ref.Dst {
					ok = false
				}
			})
			n.Connect(a, b, 10)
			a.Send(newFrameV1(micropacket.NewData(1, 2, 7, payload)))
			k.Run()
			if !ok {
				t.Fatalf("corrupted frame DELIVERED with wrong contents (sym %d bit %d)", si, bi)
			}
			dropped += int(n.CRCDrops.N)
		}
	}
	if delivered != 0 {
		// Strictly, a flip could in principle cancel out; with this
		// codec and CRC it must not for single-bit flips.
		t.Fatalf("%d corrupted frames delivered (want 0), %d dropped", delivered, dropped)
	}
	if dropped != nSyms*10 {
		t.Fatalf("dropped %d of %d corrupted frames", dropped, nSyms*10)
	}
}

// TestDeepPHYBurstErrors: multi-bit bursts are likewise discarded.
func TestDeepPHYBurstErrors(t *testing.T) {
	k := sim.NewKernel(7)
	n := NewNet(k)
	n.DeepPHY = true
	rng := sim.NewRNG(3)
	frames := 0
	n.Corrupt = func(_ Frame, s []enc8b10b.Symbol) {
		frames++
		if frames%3 != 0 {
			return // corrupt every third frame
		}
		start := rng.Intn(len(s))
		for j := 0; j < 3 && start+j < len(s); j++ {
			s[start+j] ^= enc8b10b.Symbol(rng.Intn(1024))
		}
	}
	delivered := 0
	a := n.NewPort("a", nil)
	b := n.NewPort("b", func(_ *Port, f Frame) { delivered++ })
	n.Connect(a, b, 10)
	const total = 300
	sendNext := func() {}
	i := 0
	sendNext = func() {
		if i < total {
			a.Send(newFrameV1(micropacket.NewData(1, 2, uint8(i), []byte{byte(i)})))
			i++
			k.After(SerTime(40), sendNext)
		}
	}
	k.After(0, sendNext)
	k.Run()
	// XORing with a random value can leave a symbol unchanged (1/1024),
	// so allow a tiny tolerance above the exact 2/3.
	if delivered < 200 || delivered > 205 {
		t.Fatalf("delivered %d of %d; expected ≈200 (every third corrupted)", delivered, total)
	}
	if n.CRCDrops.N < 95 {
		t.Fatalf("CRC drops = %d, want ≈100", n.CRCDrops.N)
	}
}

// TestDeepPHYEndToEndStack: the full node stack (kernel, cache,
// services) runs unchanged over the deep datapath.
func TestDeepPHYHopPreserved(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNet(k)
	n.DeepPHY = true
	var gotHops uint16
	a := n.NewPort("a", nil)
	b := n.NewPort("b", func(_ *Port, f Frame) { gotHops = f.Hops })
	n.Connect(a, b, 10)
	f := newFrameV1(micropacket.NewData(1, 2, 0, nil))
	f.Hops = 9
	a.Send(f)
	k.Run()
	if gotHops != 9 {
		t.Fatalf("hop count lost through deep PHY: %d", gotHops)
	}
}
