package phys

import (
	"fmt"

	"repro/internal/micropacket"
	"repro/internal/sim"
)

// Switch models one AmpNet switch (slides 14–15). AmpNet switches are
// circuit-style forwarders: the rostering algorithm programs a crossbar
// (ingress port → egress port) that realizes the node-to-node hops of
// the current logical ring, so data MicroPackets cut through with a
// fixed forwarding latency. Rostering MicroPackets are instead flooded
// to every live port except the ingress — that is what lets the
// "modified flooding algorithm" (slide 16) explore all available paths.
//
// Switches connect only to nodes in the paper's topologies (slide 14),
// so rostering floods cannot loop inside the switch layer; nodes
// deduplicate by wave identifier before re-flooding.
type Switch struct {
	Name    string
	net     *Net
	ports   []*Port
	xbar    map[int]int // ingress port index → egress port index
	latency sim.Time
	failed  bool

	// Flooded and Forwarded count rostering floods and crossbar
	// forwards for diagnostics.
	Flooded   uint64
	Forwarded uint64
	// Unrouted counts packets that arrived with no crossbar entry.
	Unrouted uint64
}

// DefaultSwitchLatency is the cut-through forwarding latency.
const DefaultSwitchLatency = 200 * sim.Nanosecond

// NewSwitch creates a switch with nPorts unconnected ports.
func (n *Net) NewSwitch(name string, nPorts int) *Switch {
	s := &Switch{Name: name, net: n, xbar: map[int]int{}, latency: DefaultSwitchLatency}
	for i := 0; i < nPorts; i++ {
		idx := i
		p := n.NewPort(fmt.Sprintf("%s.p%d", name, i), nil)
		p.SetHandler(func(_ *Port, f Frame) { s.receive(idx, f) })
		s.ports = append(s.ports, p)
	}
	return s
}

// Port returns the i-th switch port (to be connected to a node port).
func (s *Switch) Port(i int) *Port { return s.ports[i] }

// NumPorts returns the port count.
func (s *Switch) NumPorts() int { return len(s.ports) }

// SetLatency overrides the cut-through latency.
func (s *Switch) SetLatency(d sim.Time) { s.latency = d }

// SetRoute programs the crossbar: frames entering port in exit at port
// out. Pass out < 0 to clear the route.
func (s *Switch) SetRoute(in, out int) {
	if out < 0 {
		delete(s.xbar, in)
		return
	}
	s.xbar[in] = out
}

// ClearRoutes empties the crossbar (done at the start of rostering).
func (s *Switch) ClearRoutes() { s.xbar = map[int]int{} }

// Failed reports whether the switch has been failed.
func (s *Switch) Failed() bool { return s.failed }

// Fail takes the whole switch down: every attached link goes dark.
func (s *Switch) Fail() {
	if s.failed {
		return
	}
	s.failed = true
	for _, p := range s.ports {
		if p.link != nil {
			p.link.Fail()
		}
	}
}

// Restore brings the switch back; attached links re-light.
func (s *Switch) Restore() {
	if !s.failed {
		return
	}
	s.failed = false
	for _, p := range s.ports {
		if p.link != nil {
			p.link.Restore()
		}
	}
}

// receive handles a frame arriving on port index in.
func (s *Switch) receive(in int, f Frame) {
	if s.failed {
		return
	}
	if f.Pkt.Type == micropacket.TypeRostering {
		// Flood to every other live port after the cut-through delay.
		s.net.K.After(s.latency, func() {
			if s.failed {
				return
			}
			for i, p := range s.ports {
				if i == in || !p.Up() {
					continue
				}
				s.Flooded++
				p.SendPriority(f)
			}
		})
		return
	}
	out, ok := s.xbar[in]
	if !ok {
		s.Unrouted++
		return
	}
	s.net.K.After(s.latency, func() {
		if s.failed {
			return
		}
		if out < len(s.ports) && s.ports[out].Up() {
			s.Forwarded++
			s.ports[out].Send(f)
		}
	})
}
