package phys

import (
	"encoding/binary"
	"fmt"

	"repro/internal/frameacct"
	"repro/internal/micropacket"
	"repro/internal/sim"
)

// Switch models one AmpNet switch (slides 14–15). AmpNet switches are
// circuit-style forwarders: the rostering algorithm programs a crossbar
// (ingress port → egress port) that realizes the node-to-node hops of
// the current logical ring, so data MicroPackets cut through with a
// fixed forwarding latency. Rostering MicroPackets are instead flooded
// to every live port except the ingress — that is what lets the
// "modified flooding algorithm" (slide 16) explore all available paths.
//
// Ports come in two kinds. The first nodePorts ports face nodes (port n
// belongs to node n, part of the ubiquitous configuration database —
// slide 2); any further ports are inter-switch trunk ends. A frame
// entering a node port is stamped with that port index as its virtual
// circuit id (the hop's source node), so a frame arriving over a trunk
// can be routed by its VC tag — several ring hops may share one trunk
// without crossbar conflicts, each on its own circuit.
//
// In node-only topologies rostering floods cannot loop inside the
// switch layer; with trunks a flood could circulate around a switch
// cycle, so switches expire flood frames after MaxFloodHops crossings
// (nodes additionally deduplicate by announcement sequence before
// re-flooding).
type Switch struct {
	Name      string
	net       *Net
	ports     []*Port
	nodePorts int
	xbar      []int32        // node-port ingress → egress port index, -1 unrouted
	vcRoutes  map[uint32]int // trunk ingress<<16|vc → egress port index
	latency   sim.Time
	failed    bool

	// Flooded and Forwarded count rostering floods and crossbar
	// forwards for diagnostics.
	Flooded   uint64
	Forwarded uint64
	// Unrouted counts packets that arrived with no crossbar or VC entry.
	Unrouted uint64
	// FloodExpired counts rostering floods dropped at the hop limit.
	FloodExpired uint64
	// FloodDeduped counts rostering floods dropped as already-seen
	// waves.
	FloodDeduped uint64

	// Flood deduplication state: announcements seen in the current
	// highest rostering epoch. Without it a trunked switch cycle
	// multiplies every flood exponentially.
	floodEpoch uint32
	floodSeen  map[uint64]bool
}

// DefaultSwitchLatency is the cut-through forwarding latency.
const DefaultSwitchLatency = 200 * sim.Nanosecond

// MaxFloodHops bounds how many switch crossings a rostering flood frame
// may make; it terminates floods circulating a trunk cycle.
const MaxFloodHops = 32

// NewSwitch creates a switch with nPorts unconnected node-facing ports.
func (n *Net) NewSwitch(name string, nPorts int) *Switch {
	s := &Switch{
		Name: name, net: n, nodePorts: nPorts,
		xbar: newXbar(nPorts), vcRoutes: map[uint32]int{},
		latency: DefaultSwitchLatency,
	}
	for i := 0; i < nPorts; i++ {
		s.addPort(fmt.Sprintf("%s.p%d", name, i))
	}
	return s
}

func (s *Switch) addPort(name string) (*Port, int) {
	idx := len(s.ports)
	p := s.net.NewPort(name, nil)
	p.SetHandler(func(_ *Port, f Frame) { s.receive(idx, f) })
	s.ports = append(s.ports, p)
	return p, idx
}

// addTrunkPort appends a trunk end beyond the node-facing ports.
func (s *Switch) addTrunkPort(tag string) (*Port, int) {
	return s.addPort(fmt.Sprintf("%s.%s", s.Name, tag))
}

// Port returns the i-th switch port (node ports first, then trunks).
func (s *Switch) Port(i int) *Port { return s.ports[i] }

// NumPorts returns the total port count (node ports plus trunk ends).
func (s *Switch) NumPorts() int { return len(s.ports) }

// NumNodePorts returns the node-facing port count.
func (s *Switch) NumNodePorts() int { return s.nodePorts }

// SetLatency overrides the cut-through latency.
func (s *Switch) SetLatency(d sim.Time) { s.latency = d }

// newXbar builds an all-unrouted crossbar for n ingress ports. The
// crossbar is a dense slice, not a map: data forwarding hits it once
// per frame per switch, and an indexed load beats a map probe on that
// path by an order of magnitude.
func newXbar(n int) []int32 {
	x := make([]int32, n)
	for i := range x {
		x[i] = -1
	}
	return x
}

// SetRoute programs the crossbar: frames entering node port in exit at
// port out (a node port or a trunk end). Pass out < 0 to clear the
// route.
func (s *Switch) SetRoute(in, out int) {
	for in >= len(s.xbar) {
		s.xbar = append(s.xbar, -1)
	}
	if out < 0 {
		s.xbar[in] = -1
		return
	}
	s.xbar[in] = int32(out)
}

// SetVCRoute programs trunk forwarding: frames arriving on trunk port
// in with virtual-circuit tag vc exit at port out. The circuit tag is
// a node id, so it is as wide as the address space. Pass out < 0 to
// clear the entry.
func (s *Switch) SetVCRoute(in int, vc uint16, out int) {
	key := uint32(in)<<16 | uint32(vc)
	if out < 0 {
		delete(s.vcRoutes, key)
		return
	}
	s.vcRoutes[key] = out
}

// ClearRoutes empties the crossbar and the trunk VC table (done at the
// start of rostering).
func (s *Switch) ClearRoutes() {
	for i := range s.xbar {
		s.xbar[i] = -1
	}
	s.vcRoutes = map[uint32]int{}
}

// Failed reports whether the switch has been failed.
func (s *Switch) Failed() bool { return s.failed }

// Fail takes the whole switch down: every attached link — node fibers
// and trunk ends alike — goes dark.
func (s *Switch) Fail() {
	if s.failed {
		return
	}
	s.failed = true
	for _, p := range s.ports {
		if p.link != nil {
			p.link.Fail()
		}
	}
}

// Restore brings the switch back; attached links re-light.
func (s *Switch) Restore() {
	if !s.failed {
		return
	}
	s.failed = false
	for _, p := range s.ports {
		if p.link != nil {
			p.link.Restore()
		}
	}
}

// floodAdmit decides whether a rostering flood frame is a new wave.
// Switches, like nodes, deduplicate floods by wave identifier (slide
// 16's "modified flooding algorithm"): the announcement's epoch,
// origin and sequence, read from the rostering payload layout defined
// in internal/rostering (origin little-endian at bytes 0..1, epoch
// little-endian at bytes 3..6, sequence at byte 7). Announcements of
// a newer epoch reset the seen set; stale epochs are dropped outright
// — every agent of a superseded round has already moved on. In
// node-only topologies floods cannot revisit a switch, so this logic
// only matters once trunks create switch-layer cycles, where
// re-flooding duplicates would multiply exponentially.
func (s *Switch) floodAdmit(f Frame) bool {
	pl := f.Pkt.Payload
	epoch := binary.LittleEndian.Uint32(pl[3:7])
	switch {
	case epoch > s.floodEpoch:
		s.floodEpoch = epoch
		s.floodSeen = map[uint64]bool{}
	case epoch < s.floodEpoch:
		return false
	}
	origin := uint64(binary.LittleEndian.Uint16(pl[0:2]))
	seq := uint64(pl[7])
	key := origin<<8 | seq
	if s.floodSeen == nil {
		s.floodSeen = map[uint64]bool{}
	}
	if s.floodSeen[key] {
		return false
	}
	s.floodSeen[key] = true
	return true
}

// receiveFlood handles a rostering flood frame arriving on port index
// in: hop-expire, wave-dedup, then flood to every other live port
// after the cut-through delay. Floods are a rostering-transition
// burst, not the data hot path; the closure is fine, but Do skips the
// Timer.
func (s *Switch) receiveFlood(in int, f Frame) {
	if f.Hops >= MaxFloodHops {
		s.FloodExpired++
		s.net.Acct.Lose(frameacct.LossFloodExpired)
		return
	}
	if !s.floodAdmit(f) {
		s.FloodDeduped++
		s.net.Acct.Lose(frameacct.LossFloodDeduped)
		return
	}
	f.Hops++
	s.net.Acct.Enter()
	s.net.K.Do(s.net.K.Now()+s.latency, func() {
		s.net.Acct.Exit()
		if s.failed {
			s.net.Acct.Lose(frameacct.LossSwitchDead)
			return
		}
		// The fan-out stage absorbs the arriving wave; every copy it
		// emits is a fresh origin with its own ledger life (zero live
		// egress ports simply means zero offspring).
		s.net.Acct.Consume(frameacct.ConsumeFloodFanout)
		for i, p := range s.ports {
			if i == in || !p.Up() {
				continue
			}
			s.Flooded++
			p.SendPriority(f)
		}
	})
}

// receive handles a frame arriving on port index in.
func (s *Switch) receive(in int, f Frame) {
	if s.failed {
		s.net.Acct.Lose(frameacct.LossSwitchDead)
		return
	}
	if f.Pkt.Type == micropacket.TypeRostering {
		// Kept out of line: the flood closure captures f, and a
		// captured parameter heap-escapes at function entry on every
		// call — including the data-path calls that never flood.
		s.receiveFlood(in, f)
		return
	}
	var out int
	if in < s.nodePorts {
		// Node ingress: stamp the hop's virtual circuit (the source
		// node's id) and consult the crossbar.
		f.VC = uint16(in)
		if in >= len(s.xbar) || s.xbar[in] < 0 {
			s.Unrouted++
			s.net.Acct.Lose(frameacct.LossUnroutedXbar)
			return
		}
		out = int(s.xbar[in])
	} else {
		o, ok := s.vcRoutes[uint32(in)<<16|uint32(f.VC)]
		if !ok {
			s.Unrouted++
			s.net.Acct.Lose(frameacct.LossUnroutedVC)
			return
		}
		out = o
	}
	// Cut-through forward after the switch latency, via a pooled
	// record (the per-frame closure + Timer here used to be one of the
	// hottest allocation sites in the simulator).
	s.net.Acct.Enter()
	w := s.net.newSwForward(s, out, f)
	s.net.K.Do(s.net.K.Now()+s.latency, w.run)
}
