// Package phys models AmpNet's FC-0 physical layer (paper, slide 3) and
// the redundant switched topologies of slides 14–15: gigabit serial
// links with real serialization and fiber propagation delay, ports with
// bounded egress FIFOs, switches, and failure injection with
// loss-of-light detection.
//
// SUBST (DESIGN.md): this package replaces the paper's fibre-optic
// hardware. The constants match the Fibre Channel gigabit PHY the paper
// builds on: 1.0625 Gbaud line rate with 8b/10b coding (10 baud per
// byte) and ~5 ns/m propagation in fiber. Loss-of-light is detected by
// the receiver hardware after a configurable latency (default 10 µs).
package phys

import (
	"fmt"

	"repro/internal/enc8b10b"
	"repro/internal/frameacct"
	"repro/internal/micropacket"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Physical constants (Fibre Channel gigabit PHY).
const (
	// BaudRate is the line rate in symbols (10-bit characters) per
	// second: 1.0625 Gbaud.
	BaudRate = 1_062_500_000
	// NsPerMeter is signal propagation delay in optical fiber.
	NsPerMeter = 5.0
	// DefaultIFG is the inter-frame gap in bytes (two idle words).
	DefaultIFG = 8
	// DefaultDetect is the loss-of-light detection latency.
	DefaultDetect = 10 * sim.Microsecond
	// DefaultFIFO is the default egress FIFO capacity in frames.
	DefaultFIFO = 64
)

// SerTime returns the serialization time of n bytes at the line rate
// (10 baud per byte under 8b/10b).
func SerTime(n int) sim.Time {
	return sim.Time(float64(n)*10*1e9/BaudRate + 0.5)
}

// PropTime returns the propagation delay across meters of fiber.
func PropTime(meters float64) sim.Time {
	return sim.Time(meters*NsPerMeter + 0.5)
}

// Frame is one MicroPacket in flight, with its wire size (which
// determines serialization time) and a hop count used by the MAC to
// expire frames that would otherwise circulate during roster
// transitions.
type Frame struct {
	Pkt  *micropacket.Packet
	Wire int
	// Hops counts MAC forwards. It must be wide enough for a full tour
	// of the largest addressable ring (a broadcast crosses every hop),
	// so it tracks the micropacket.NodeID width.
	Hops uint16
	// VC is the frame's virtual-circuit tag, stamped by the first
	// switch on a hop with the ingress node-port index (the hop's
	// source node). Switches use it to route frames arriving over
	// inter-switch trunks; see Switch.SetVCRoute.
	VC uint16
	// Prio marks frames queued via SendPriority; used to keep priority
	// traffic FIFO among itself while it overtakes data.
	Prio bool
}

// NewFrame wraps a packet, computing its wire size under the Net's
// wire-format version (frame size sets serialization time, so the
// version is part of the fabric's timing model).
func (n *Net) NewFrame(p *micropacket.Packet) Frame {
	return Frame{Pkt: p, Wire: wire.Size(n.Wire, p.Type, len(p.Data))}
}

// Handler receives frames delivered to a port.
type Handler func(p *Port, f Frame)

// StatusHandler is notified of link status changes seen by a port:
// up=false on loss of light, up=true when light returns.
type StatusHandler func(p *Port, up bool)

// RemoteExchange carries frames between the Nets of a sharded fabric.
// When a port transmits to a peer owned by a different Net (a split
// link: the cross-shard fibers of internal/parsim), the frame is not
// delivered by a local kernel event; it is handed to the sender Net's
// exchange with its precise arrival time, and the engine injects it
// into the receiving shard's kernel at a window barrier. Conservative
// lookahead guarantees arrival is always beyond the current window, so
// the handoff never reorders anything.
type RemoteExchange interface {
	// RemoteFrame ships f from src to dst (a port of another Net)
	// arriving at the absolute virtual time arrival. link/epoch are
	// the sending link and its epoch at transmit start; the receiver
	// re-checks them at arrival exactly as a local delivery would, and
	// schedules the arrival under src's wire key (transmit start, port
	// identity) so same-instant ordering matches the serial engine.
	RemoteFrame(src, dst *Port, f Frame, link *Link, epoch uint64, arrival sim.Time)
}

// Net is a collection of ports and links sharing one simulation kernel
// and one set of PHY parameters.
type Net struct {
	K *sim.Kernel

	// Shard identifies this Net's shard in a sharded fabric (0 when
	// the whole fabric shares one Net). Remote, when set, receives
	// frames transmitted to ports of other Nets; without it such a
	// transmit panics (a split link needs an engine behind it).
	Shard  int
	Remote RemoteExchange

	// Wire is the fabric's wire-format version (see internal/wire): it
	// decides frame sizes (and thereby serialization times) and how
	// node addresses are carried in the DeepPHY datapath. NewNet
	// defaults to V1, the byte-exact historical format; fabrics larger
	// than its one-byte address space must run V2. Every Net of a
	// sharded fabric carries the same version (the builder stamps it
	// from the Topology).
	Wire wire.Version

	// IFG is the inter-frame gap in bytes added after every frame.
	IFG int
	// Detect is the loss-of-light detection latency.
	Detect sim.Time
	// FIFOCap is the egress FIFO capacity for new ports.
	FIFOCap int

	// DeepPHY, when true, serializes every delivered frame through the
	// full MicroPacket wire codec and the 8b/10b line code and decodes
	// it at the receiver — the hardware datapath, bit for bit. Frames
	// that fail to decode (code violation, bad CRC, broken ordered
	// sets) are discarded and counted in CRCDrops, exactly as the NIC
	// hardware discards them; higher layers recover via sequence gaps
	// and cache refresh. Corrupt, if set, may mutate the symbol stream
	// in flight (bit-error injection).
	DeepPHY bool
	Corrupt func(f Frame, syms []enc8b10b.Symbol)
	// CRCDrops counts frames discarded by the receive-side decode.
	CRCDrops sim.Counter

	// Drops counts frames rejected because an egress FIFO was full —
	// congestion loss, which AmpNet's insertion-ring flow control must
	// keep at zero (slide 8).
	Drops sim.Counter
	// Lost counts frames destroyed by link failures: in flight when the
	// fiber was cut, or offered to a dark port. These are recovered at
	// higher layers (DMA sequence numbers, cache refresh).
	Lost sim.Counter
	// Delivered counts frames handed to receivers.
	Delivered sim.Counter

	// Acct is the Net's frame-lifecycle ledger: every creation and
	// typed death of a frame on this Net, plus the residual gauges that
	// make the conservation invariant exact mid-flight. The legacy
	// counters above keep their historical semantics; Acct is the
	// complete account.
	Acct frameacct.Acct

	ports []*Port
	links []*Link

	// Hot-path event pools (see pool.go). Per-Net and therefore
	// per-shard: only ever touched from this Net's kernel context.
	delFree []*delivery
	txFree  []*txDone
	swFree  []*swForward
}

// NewNet creates a physical network on kernel k with default parameters.
func NewNet(k *sim.Kernel) *Net {
	return &Net{K: k, Wire: wire.V1, IFG: DefaultIFG, Detect: DefaultDetect, FIFOCap: DefaultFIFO}
}

// Port is one optical transceiver. Frames sent on a port are serialized
// in FIFO order at the line rate and delivered to the peer port after
// the fiber propagation delay.
type Port struct {
	Name string
	net  *Net
	link *Link
	end  int    // 0 or 1: which end of link
	uid  uint32 // stable identity hash of Name; wire-order tie-break

	onFrame  Handler
	onStatus StatusHandler
	onTxDone func()

	// The egress FIFO is a slice plus a head index: popping advances
	// head instead of reslicing from the front, so the backing array's
	// capacity is reused instead of being abandoned one slot per frame
	// (re-slicing with fifo[1:] made every steady-state Send reallocate
	// — the single largest allocation site in the simulator).
	fifo     []Frame
	fifoHead int
	cap      int
	txBusy   bool
	// Sent and Received count frames for diagnostics.
	Sent     uint64
	Received uint64
}

// NewPort creates an unconnected port. handler may be nil (frames are
// then counted but discarded); use SetHandler to attach later.
func (n *Net) NewPort(name string, handler Handler) *Port {
	p := &Port{Name: name, net: n, onFrame: handler, cap: n.FIFOCap, uid: nameHash(name)}
	n.ports = append(n.ports, p)
	return p
}

// nameHash is FNV-1a over the port name: an engine-independent port
// identity (the serial and sharded builders create ports in different
// orders, but with identical names).
func nameHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// UID returns the port's stable identity hash.
func (p *Port) UID() uint32 { return p.uid }

// SetHandler attaches the frame delivery callback.
func (p *Port) SetHandler(h Handler) { p.onFrame = h }

// SetStatusHandler attaches the link status callback.
func (p *Port) SetStatusHandler(h StatusHandler) { p.onStatus = h }

// SetTxDone attaches a callback invoked each time the transmitter
// finishes serializing a frame; MAC layers use it to schedule insertion
// opportunities.
func (p *Port) SetTxDone(h func()) { p.onTxDone = h }

// Connected reports whether the port is attached to a link.
func (p *Port) Connected() bool { return p.link != nil }

// Link returns the fiber the port is attached to, nil when dangling.
// Shard workers of the socket transport use it to resolve a decoded
// cross-shard frame's link from the frame's port UIDs.
func (p *Port) Link() *Link { return p.link }

// Net returns the Net (and thereby the shard kernel) owning this port.
func (p *Port) Net() *Net { return p.net }

// Up reports whether the port's link exists and carries light.
func (p *Port) Up() bool { return p.link != nil && p.link.up }

// Peer returns the port at the other end of the link, or nil.
func (p *Port) Peer() *Port {
	if p.link == nil {
		return nil
	}
	return p.link.ports[1-p.end]
}

// QueueLen returns the number of frames waiting in the egress FIFO
// (including the frame currently being serialized).
func (p *Port) QueueLen() int { return len(p.fifo) - p.fifoHead }

// popFrame removes the head-of-line frame, reusing the backing array:
// the vacated slot is zeroed (dropping the packet reference) and the
// slice is rewound to full capacity once it empties.
func (p *Port) popFrame() {
	p.fifo[p.fifoHead] = Frame{}
	p.fifoHead++
	if p.fifoHead == len(p.fifo) {
		p.fifo = p.fifo[:0]
		p.fifoHead = 0
	} else if p.fifoHead >= 32 && p.fifoHead*2 >= len(p.fifo) {
		// A queue that never fully drains would otherwise march the
		// head through an ever-growing array; compact once the dead
		// prefix dominates.
		n := copy(p.fifo, p.fifo[p.fifoHead:])
		for i := n; i < len(p.fifo); i++ {
			p.fifo[i] = Frame{}
		}
		p.fifo, p.fifoHead = p.fifo[:n], 0
	}
}

// Capacity returns the egress FIFO capacity.
func (p *Port) Capacity() int { return p.cap }

// SetCapacity adjusts the egress FIFO capacity.
func (p *Port) SetCapacity(c int) { p.cap = c }

// Send enqueues a frame for transmission. It returns false — and counts
// a drop — if the FIFO is full or the port is not connected. The MAC
// layer above is responsible for avoiding drops via flow control; the
// experiments assert the drop counter stays at zero for AmpNet MACs.
func (p *Port) Send(f Frame) bool {
	p.net.Acct.Offer()
	if p.link == nil || !p.link.up {
		p.net.Lost.Inc()
		p.net.Acct.Lose(frameacct.LossDarkPort)
		return false
	}
	if p.QueueLen() >= p.cap {
		p.net.Drops.Inc()
		p.net.Acct.Lose(frameacct.LossFifoFull)
		return false
	}
	p.fifo = append(p.fifo, f)
	p.net.Acct.Enqueue()
	if !p.txBusy {
		p.startTx()
	}
	return true
}

// SendPriority enqueues a frame ahead of queued frames (behind the one
// currently being serialized). It is not subject to the FIFO capacity:
// rostering traffic must get through even on a congested ring, as the
// hardware's dedicated rostering path guarantees. Returns false only if
// the link is dark.
func (p *Port) SendPriority(f Frame) bool {
	p.net.Acct.Offer()
	if p.link == nil || !p.link.up {
		p.net.Lost.Inc()
		p.net.Acct.Lose(frameacct.LossDarkPort)
		return false
	}
	f.Prio = true
	if p.txBusy && p.QueueLen() > 0 {
		// Insert behind the frame being serialized and behind any
		// earlier priority frames (priority is FIFO among itself).
		pos := p.fifoHead + 1
		for pos < len(p.fifo) && p.fifo[pos].Prio {
			pos++
		}
		p.fifo = append(p.fifo, Frame{})
		copy(p.fifo[pos+1:], p.fifo[pos:])
		p.fifo[pos] = f
	} else {
		p.fifo = append(p.fifo, f)
	}
	p.net.Acct.Enqueue()
	if !p.txBusy {
		p.startTx()
	}
	return true
}

// startTx begins serializing the head-of-line frame.
func (p *Port) startTx() {
	if p.QueueLen() == 0 {
		p.txBusy = false
		return
	}
	p.txBusy = true
	p.net.Acct.Launch()
	f := p.fifo[p.fifoHead]
	ser := SerTime(f.Wire + p.net.IFG)
	link := p.link
	epoch := link.epoch
	dst := link.ports[1-p.end]
	txAt := p.net.K.Now()
	if dst.net != p.net {
		// Split link: the peer lives on another shard's Net. Hand the
		// frame to the exchange with its exact arrival time; the engine
		// injects it into the receiving kernel at a window barrier
		// (always before arrival, by the lookahead bound).
		if p.net.Remote == nil {
			panic(fmt.Sprintf("phys: port %s transmits across Nets without a RemoteExchange", p.Name))
		}
		p.net.Remote.RemoteFrame(p, dst, f, link, epoch, txAt+ser+link.prop)
	} else {
		// Delivery at tx end + propagation, if the link survives. The
		// event carries the wire key (transmit start, port identity):
		// same-instant arrivals order by when their bits hit the fiber
		// on every engine, not by scheduler bookkeeping. The record is
		// pooled and the scheduling Timer-free (see pool.go): the
		// steady-state frame hop does not allocate.
		p.net.ScheduleDelivery(txAt+ser+link.prop, txAt, p.uid, dst, f, link, epoch)
	}
	// Transmitter frees at tx end, under the same wire key. A link
	// failure bumps the epoch and clears the FIFO, so a stale
	// completion must not pop the new queue.
	td := p.net.newTxDone(p, link, epoch)
	p.net.K.DoPri(txAt+ser, txAt, p.uid, td.run)
}

// CompleteDelivery is the receive side of a frame's flight: it runs at
// the frame's arrival time on the destination port's Net, re-checks
// that the link survived, applies the DeepPHY datapath, and hands the
// frame to the port's handler. Local deliveries and cross-shard
// injections share this path, so a split link delivers byte-for-byte
// what a local one would.
func (n *Net) CompleteDelivery(dst *Port, f Frame, link *Link, epoch uint64) {
	n.Acct.Arrive()
	if link.epoch != epoch || !link.up {
		n.Lost.Inc()
		n.Acct.Lose(frameacct.LossLinkCut)
		return
	}
	if n.DeepPHY {
		pkt, ok := n.deepPath(f)
		if !ok {
			n.CRCDrops.Inc()
			n.Acct.Lose(frameacct.LossCRC)
			return
		}
		hops := f.Hops
		f = n.NewFrame(pkt)
		f.Hops = hops
	}
	dst.Received++
	n.Delivered.Inc()
	n.Acct.Deliver()
	if dst.onFrame != nil {
		dst.onFrame(dst, f)
	} else {
		n.Acct.Lose(frameacct.LossNoHandler)
	}
}

// deepPath runs a frame through the real transmit and receive datapath:
// MicroPacket wire encode, 8b/10b line coding, optional corruption, and
// the receive-side decode. It returns the received packet, or ok=false
// when the hardware would discard the frame. Each frame starts from the
// canonical negative running disparity (frames are separated by idle
// fill words that re-establish it).
func (n *Net) deepPath(f Frame) (*micropacket.Packet, bool) {
	codec, err := wire.ForVersion(n.Wire)
	if err != nil {
		return nil, false
	}
	syms, err := wire.EncodeSymbols(codec, f.Pkt, enc8b10b.NewEncoder())
	if err != nil {
		return nil, false
	}
	if n.Corrupt != nil {
		n.Corrupt(f, syms)
	}
	pkt, _, err := wire.DecodeSymbols(syms, enc8b10b.NewDecoder())
	if err != nil {
		return nil, false
	}
	return pkt, true
}

// statusWatcher is a fabric-level observer of a link's light, bound to
// the kernel it must be notified on (its shard's kernel in a sharded
// fabric). Watchers fire after the same detection latency as port
// status handlers.
type statusWatcher struct {
	k  *sim.Kernel
	fn func(up bool)
}

// Link is a bidirectional fiber between two ports.
type Link struct {
	ports  [2]*Port
	prop   sim.Time
	up     bool
	epoch  uint64 // incremented on every failure, invalidating in-flight frames
	net    *Net
	Meters float64

	watchers []statusWatcher
}

// Connect joins two ports with meters of fiber. Both ports must be
// unconnected. The ports may belong to different Nets (a split link of
// a sharded fabric); the link is then registered with both Nets, and
// state flips (Fail/Restore) must only happen while both shards are
// parked on a window barrier.
func (n *Net) Connect(a, b *Port, meters float64) *Link {
	if a.link != nil || b.link != nil {
		panic(fmt.Sprintf("phys: port already connected (%s / %s)", a.Name, b.Name))
	}
	l := &Link{ports: [2]*Port{a, b}, prop: PropTime(meters), up: true, net: n, Meters: meters}
	a.link, a.end = l, 0
	b.link, b.end = l, 1
	n.links = append(n.links, l)
	if b.net != n {
		b.net.links = append(b.net.links, l)
	}
	return l
}

// Watch registers a status observer fired on kernel k after the
// detection latency whenever the link's light changes. The rostering
// layer uses it to sense trunk failures from every shard.
func (l *Link) Watch(k *sim.Kernel, fn func(up bool)) {
	l.watchers = append(l.watchers, statusWatcher{k: k, fn: fn})
}

// Up reports whether the link carries light.
func (l *Link) Up() bool { return l.up }

// Prop returns the one-way propagation delay.
func (l *Link) Prop() sim.Time { return l.prop }

// Fail cuts the fiber: in-flight frames are lost immediately and both
// ports observe loss of light after the detection latency.
func (l *Link) Fail() {
	if !l.up {
		return
	}
	l.up = false
	l.epoch++
	for _, p := range l.ports {
		// Frames queued behind the serializing head die here, uncounted
		// by any delivery event; the head itself (if the transmitter was
		// busy) is already launched and its scheduled arrival dies as a
		// counted stale-epoch LossLinkCut.
		cleared := p.QueueLen()
		if p.txBusy {
			cleared--
		}
		p.net.Acct.ClearFifo(cleared)
		for i := p.fifoHead; i < len(p.fifo); i++ {
			p.fifo[i] = Frame{}
		}
		p.fifo, p.fifoHead = p.fifo[:0], 0
		p.txBusy = false
	}
	l.notify(false)
}

// notify schedules the loss/return-of-light observations: each port's
// status handler on that port's own kernel, then every fabric watcher
// on its registered kernel — all after the detection latency. On a
// single-Net fabric every event lands on the same kernel with
// consecutive sequence numbers, which is exactly the historical
// ordering; on a sharded fabric each shard senses the change on its own
// kernel at the same virtual instant.
func (l *Link) notify(up bool) {
	for _, p := range l.ports {
		p := p
		p.net.K.Do(p.net.K.Now()+p.net.Detect, func() {
			if p.onStatus != nil {
				p.onStatus(p, up)
			}
		})
	}
	for _, w := range l.watchers {
		w := w
		w.k.Do(w.k.Now()+l.net.Detect, func() { w.fn(up) })
	}
}

// Restore re-lights the fiber; ports observe light after the detection
// latency.
func (l *Link) Restore() {
	if l.up {
		return
	}
	l.up = true
	l.notify(true)
}

// Links returns all links (for failure-injection sweeps).
func (n *Net) Links() []*Link { return n.links }

// Ports returns all ports.
func (n *Net) Ports() []*Port { return n.ports }
