package phys

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/wire"
)

// MaxSwitches bounds the switch count of any fabric: the rostering
// link-state masks carry one bit per switch in a single byte of the
// announcement payload (see rostering.LinkState).
const MaxSwitches = 8

// MaxNodes bounds the node count of any fabric: the widest registered
// wire format (v2) carries uint16 node addresses with the all-ones
// value reserved for broadcast. The effective ceiling of a given
// fabric is per wire-format version — a v1 fabric still tops out at
// 255 nodes (one address byte) — and Topology.Validate enforces the
// resolved version's limit, so ids can never alias on the wire.
const MaxNodes = 65535

// Topology declaratively describes a fabric: which switches exist, which
// node attaches to which switch, and which switches are joined by
// inter-switch trunks. The zero Attached function means "every node to
// every switch" — the paper's uniform redundant segment (slide 14). The
// named constructors (Uniform, DualRing, Mesh, Sharded) build the
// shapes the experiments sweep; hand-rolled topologies are just literal
// values of this struct.
type Topology struct {
	// Name labels the fabric in reports ("uniform", "dualring", ...).
	Name string
	// Shape is the machine-readable constructor spec the topology was
	// built from ("uniform", "dualring", "mesh", "sharded:4", ...),
	// stamped by the named constructors and parsed back by
	// FabricByName. It is what lets a fabric be reconstructed
	// byte-identically in another process (the socket transport's shard
	// workers); hand-rolled topologies have an empty Shape and cannot
	// cross a process boundary.
	Shape string
	// Nodes and Switches size the fabric.
	Nodes    int
	Switches int
	// FiberM is the default per-link fiber length in meters.
	FiberM float64
	// Attached reports whether node n has a port to switch s. nil
	// attaches every node to every switch.
	Attached func(n, s int) bool
	// Trunks are switch-to-switch fibers. A ring hop may cross any
	// number of live trunks, so traffic survives the loss of a shared
	// switch as long as some trunk path connects the endpoints.
	Trunks []TrunkSpec
	// CounterRotating marks dual-ring fabrics whose backup ring runs in
	// the opposite rotation: when the lowest live switch has an odd
	// index, the roster is built in reversed node order.
	CounterRotating bool
	// Wire selects the MicroPacket wire-format version the fabric runs
	// (see internal/wire). The zero value is "auto": the smallest
	// version whose address space fits Nodes — v1 (the byte-exact
	// historical format) up to 255 nodes, v2 beyond. An explicit
	// version is validated against its own ceiling, so a v1 fabric
	// still rejects >255 nodes.
	Wire wire.Version
}

// TrunkSpec declares one inter-switch trunk. FiberM of 0 inherits the
// topology's default fiber length.
type TrunkSpec struct {
	A, B   int
	FiberM float64
}

// Validate checks the topology for structural sanity: positive sizes,
// the switch-mask limit, trunk endpoints in range, and every node
// attached to at least one switch.
func (t *Topology) Validate() error {
	if t.Nodes <= 0 || t.Switches <= 0 {
		return fmt.Errorf("phys: topology %q needs at least one node and one switch", t.Name)
	}
	if t.Switches > MaxSwitches {
		return fmt.Errorf("phys: topology %q has %d switches; the rostering link-state mask allows at most %d",
			t.Name, t.Switches, MaxSwitches)
	}
	if t.Wire != 0 && !t.Wire.Valid() {
		return fmt.Errorf("phys: topology %q names unknown wire-format version %d", t.Name, t.Wire)
	}
	if t.Nodes > MaxNodes {
		return fmt.Errorf("phys: topology %q has %d nodes; the widest wire format (%v) addresses at most %d",
			t.Name, t.Nodes, wire.V2, MaxNodes)
	}
	if v := t.WireVersion(); t.Nodes > v.MaxNodes() {
		return fmt.Errorf("phys: topology %q has %d nodes; wire format %v addresses at most %d (use wire %v or auto)",
			t.Name, t.Nodes, v, v.MaxNodes(), wire.V2)
	}
	for i, tr := range t.Trunks {
		if tr.A < 0 || tr.A >= t.Switches || tr.B < 0 || tr.B >= t.Switches {
			return fmt.Errorf("phys: topology %q trunk %d endpoints (%d,%d) out of range [0,%d)",
				t.Name, i, tr.A, tr.B, t.Switches)
		}
		if tr.A == tr.B {
			return fmt.Errorf("phys: topology %q trunk %d is a self-loop on switch %d", t.Name, i, tr.A)
		}
	}
	for n := 0; n < t.Nodes; n++ {
		attached := false
		for s := 0; s < t.Switches && !attached; s++ {
			attached = t.IsAttached(n, s)
		}
		if !attached {
			return fmt.Errorf("phys: topology %q leaves node %d with no switch attachment", t.Name, n)
		}
	}
	return nil
}

// WireVersion resolves the fabric's wire-format version: the declared
// Wire, or — for the zero "auto" value — the smallest registered
// version whose address space fits Nodes. Existing ≤255-node fabrics
// therefore keep running the byte-exact v1 format unless they opt into
// v2 explicitly.
func (t *Topology) WireVersion() wire.Version {
	if t.Wire != 0 {
		return t.Wire
	}
	if t.Nodes <= wire.V1.MaxNodes() {
		return wire.V1
	}
	return wire.V2
}

// IsAttached reports whether node n has a port to switch s.
func (t *Topology) IsAttached(n, s int) bool {
	if t.Attached == nil {
		return true
	}
	return t.Attached(n, s)
}

// Uniform is the paper's redundant segment (slide 14): every node has
// one port to every switch, no trunks. With 2 switches the segment is
// dual-redundant; with 4, quad-redundant.
func Uniform(nodes, switches int, fiberM float64) Topology {
	return Topology{Name: "uniform", Shape: "uniform", Nodes: nodes, Switches: switches, FiberM: fiberM}
}

// DualRing is a pair of counter-rotating rings: two switches, every
// node on both, joined by one trunk. In normal operation the logical
// ring rotates over switch 0; when switch 0 (or a node's link to it)
// dies, the ring re-forms over switch 1 in the opposite rotation, and
// hops whose endpoints no longer share a live switch heal across the
// trunk.
func DualRing(nodes int, fiberM float64) Topology {
	return Topology{
		Name: "dualring", Shape: "dualring", Nodes: nodes, Switches: 2, FiberM: fiberM,
		Trunks:          []TrunkSpec{{A: 0, B: 1}},
		CounterRotating: true,
	}
}

// Mesh is an N-switch fabric with dual-homed nodes: node n attaches to
// switches n%S and (n+1)%S, and every switch pair is joined by a trunk.
// No single switch sees every node, so ring hops routinely cross
// trunks, and losing any one switch or trunk leaves a healing path.
func Mesh(nodes, switches int, fiberM float64) Topology {
	s := switches
	var trunks []TrunkSpec
	for i := 0; i < s; i++ {
		for j := i + 1; j < s; j++ {
			trunks = append(trunks, TrunkSpec{A: i, B: j})
		}
	}
	return Topology{
		Name: "mesh", Shape: "mesh", Nodes: nodes, Switches: switches, FiberM: fiberM,
		Attached: func(n, sw int) bool { return sw == n%s || sw == (n+1)%s },
		Trunks:   trunks,
	}
}

// Sharded is a multi-ring cluster: shards of nodesPerShard nodes, each
// shard with its own switchesPerShard switches, adjacent shards joined
// by trunks (one per switch pair, pairing switch j of one shard with
// switch j of the next). Nodes attach only to their shard's switches;
// the cluster-wide logical ring exists only because rostering heals
// hops across the inter-shard trunks.
func Sharded(shards, nodesPerShard, switchesPerShard int, fiberM float64) Topology {
	sps := switchesPerShard
	var trunks []TrunkSpec
	for k := 0; k < shards; k++ {
		next := (k + 1) % shards
		if shards == 2 && k == 1 {
			break // both adjacencies are the same shard pair
		}
		if shards == 1 {
			break
		}
		for j := 0; j < sps; j++ {
			trunks = append(trunks, TrunkSpec{A: k*sps + j, B: next*sps + j})
		}
	}
	return Topology{
		Name: "sharded", Shape: fmt.Sprintf("sharded:%d", shards),
		Nodes: shards * nodesPerShard, Switches: shards * sps, FiberM: fiberM,
		Attached: func(n, sw int) bool { return sw/sps == n/nodesPerShard },
		Trunks:   trunks,
	}
}

// FabricByName builds one of the named fabric shapes from a node and
// switch budget — the -fabric flag of cmd/ampsim and the E13 sweep
// axis. The budget must be realizable exactly: a shape never silently
// drops or resizes what was asked for (a 9-node sharded request is an
// error, not an 8-node cluster). The returned topology is validated,
// so callers can hand it straight to a cluster builder.
//
// "sharded" takes an optional group count parameter, "sharded:4"; the
// bare name keeps its historical meaning of two groups. The accepted
// strings are exactly the Shape values the constructors stamp, so any
// named topology round-trips through FabricByName(t.Shape, ...).
func FabricByName(name string, nodes, switches int, fiberM float64) (Topology, error) {
	var t Topology
	base, param, hasParam := strings.Cut(name, ":")
	switch base {
	case "", "uniform":
		t = Uniform(nodes, switches, fiberM)
	case "dualring":
		// The shape fixes the switch count at 2; a node/fiber budget is
		// all it takes.
		t = DualRing(nodes, fiberM)
	case "mesh":
		if switches < 2 {
			return Topology{}, fmt.Errorf("phys: mesh fabric needs at least 2 switches (got %d)", switches)
		}
		t = Mesh(nodes, switches, fiberM)
	case "sharded":
		shards := 2
		if hasParam {
			n, err := strconv.Atoi(param)
			if err != nil || n < 1 {
				return Topology{}, fmt.Errorf("phys: bad sharded group count %q (want sharded:N, N >= 1)", name)
			}
			shards = n
		}
		if switches == 0 || nodes%shards != 0 || switches%shards != 0 {
			return Topology{}, fmt.Errorf(
				"phys: sharded fabric splits nodes and switches across %d shards; %d nodes × %d switches does not divide evenly",
				shards, nodes, switches)
		}
		t = Sharded(shards, nodes/shards, switches/shards, fiberM)
		hasParam = false // the parameter is consumed, not an error
	default:
		return Topology{}, fmt.Errorf("phys: unknown fabric %q (want uniform, dualring, mesh or sharded[:N])", name)
	}
	if hasParam {
		return Topology{}, fmt.Errorf("phys: fabric %q takes no parameter", name)
	}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}
