package phys

import "fmt"

// Cluster is the paper's redundant switched topology (slides 14–15):
// every node has one port to every switch. With 2 switches the segment
// is dual-redundant; with 4, quad-redundant (slide 14 shows 6 nodes × 4
// switches).
type Cluster struct {
	Net      *Net
	Switches []*Switch
	// NodePorts[n][s] is node n's port facing switch s.
	NodePorts [][]*Port
	// NodeLinks[n][s] is the fiber between node n and switch s.
	NodeLinks [][]*Link
}

// BuildCluster wires nodes × switches with fiberM meters of fiber per
// link. Node-side handlers are attached afterwards by the MAC layer.
func BuildCluster(net *Net, nodes, switches int, fiberM float64) *Cluster {
	c := &Cluster{Net: net}
	for s := 0; s < switches; s++ {
		c.Switches = append(c.Switches, net.NewSwitch(fmt.Sprintf("sw%d", s), nodes))
	}
	c.NodePorts = make([][]*Port, nodes)
	c.NodeLinks = make([][]*Link, nodes)
	for n := 0; n < nodes; n++ {
		c.NodePorts[n] = make([]*Port, switches)
		c.NodeLinks[n] = make([]*Link, switches)
		for s := 0; s < switches; s++ {
			p := net.NewPort(fmt.Sprintf("n%d.s%d", n, s), nil)
			c.NodePorts[n][s] = p
			c.NodeLinks[n][s] = net.Connect(p, c.Switches[s].Port(n), fiberM)
		}
	}
	return c
}

// NumNodes returns the node count.
func (c *Cluster) NumNodes() int { return len(c.NodePorts) }

// NumSwitches returns the switch count.
func (c *Cluster) NumSwitches() int { return len(c.Switches) }

// FailNode takes all of node n's links dark (models node death as seen
// by the fabric).
func (c *Cluster) FailNode(n int) {
	for _, l := range c.NodeLinks[n] {
		l.Fail()
	}
}

// RestoreNode re-lights node n's links.
func (c *Cluster) RestoreNode(n int) {
	for _, l := range c.NodeLinks[n] {
		l.Restore()
	}
}

// LiveSwitchesBetween returns the switch indices that still have live
// links to both node a and node b — the candidate hops for a logical
// ring edge a→b.
func (c *Cluster) LiveSwitchesBetween(a, b int) []int {
	var out []int
	for s := range c.Switches {
		if c.Switches[s].Failed() {
			continue
		}
		if c.NodeLinks[a][s].Up() && c.NodeLinks[b][s].Up() {
			out = append(out, s)
		}
	}
	return out
}
