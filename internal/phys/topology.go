package phys

import (
	"fmt"

	"repro/internal/sim"
)

// Cluster is a built fabric: the paper's redundant switched topology
// (slides 14–15) generalized to declarative Topology shapes. Every node
// has one port per switch it attaches to; switches may additionally be
// joined by inter-switch trunks that ring hops can cross when the
// endpoints no longer share a live switch.
type Cluster struct {
	Net  *Net
	Topo Topology

	Switches []*Switch
	// NodePorts[n][s] is node n's port facing switch s, nil where the
	// topology does not attach n to s.
	NodePorts [][]*Port
	// NodeLinks[n][s] is the fiber between node n and switch s, nil
	// where unattached.
	NodeLinks [][]*Link
	// Trunks are the built inter-switch trunks, in TrunkSpec order.
	Trunks []*Trunk

	// Assign is the shard assignment of a sharded fabric (nil when the
	// whole fabric runs on one kernel). RouteSink, set by the parallel
	// engine's transport, receives crossbar programming aimed at a
	// switch owned by another shard together with the virtual instant
	// the write lands (see Program); the transport carries it across
	// the next window barrier and schedules it on the owning shard's
	// kernel at exactly that instant.
	Assign    *Assignment
	RouteSink func(srcShard int, at sim.Time, op RouteOp)
}

// RouteOp is one crossbar write as a plain record: which switch, which
// ingress, which egress, and — for trunk forwarding — which virtual
// circuit. Keeping route programming as data rather than a closure is
// what lets a barrier-deferred write cross a process boundary on the
// socket transport byte-for-byte.
type RouteOp struct {
	Switch int
	In     int
	Out    int // < 0 clears the entry
	VC     uint16
	IsVC   bool
}

// Apply performs the write against the built fabric.
func (op RouteOp) Apply(c *Cluster) {
	sw := c.Switches[op.Switch]
	if op.IsVC {
		sw.SetVCRoute(op.In, op.VC, op.Out)
		return
	}
	sw.SetRoute(op.In, op.Out)
}

// Trunk is one built switch-to-switch fiber.
type Trunk struct {
	Index int
	A, B  int // switch ids
	// PortA and PortB are the port indices of the trunk's ends on
	// switches A and B (trunk ports follow the node-facing ports).
	PortA, PortB int
	Link         *Link
}

// BuildCluster wires the uniform nodes × switches fabric (every node to
// every switch) with fiberM meters of fiber per link — the paper's
// slide-14 segment and the historical constructor.
func BuildCluster(net *Net, nodes, switches int, fiberM float64) *Cluster {
	c, err := BuildFabric(net, Uniform(nodes, switches, fiberM))
	if err != nil { // a uniform topology with positive sizes never fails
		panic(err)
	}
	return c
}

// BuildFabric builds a declarative Topology on one Net: switches, node
// ports and links for every attachment, and trunk ports and fibers for
// every TrunkSpec. Node-side handlers are attached afterwards by the
// MAC layer. It is exactly the one-shard case of BuildFabricSharded —
// a single builder, so the serial and sharded fabrics cannot drift.
func BuildFabric(net *Net, topo Topology) (*Cluster, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	assign, err := AssignShards(&topo, 1)
	if err != nil {
		return nil, err
	}
	c, err := BuildFabricSharded([]*Net{net}, topo, assign)
	if err != nil {
		return nil, err
	}
	// A one-shard fabric is not sharded: no assignment means every
	// Program call applies synchronously and ShardOf* report 0.
	c.Assign = nil
	return c, nil
}

// BuildFabricSharded builds topo with its components spread over the
// Nets of assign's shards: every switch, its ports and its trunk ends
// live on the owning shard's Net; a node's ports live on the node's
// shard. A link whose endpoints land on different shards is a split
// link — it is driven through the Nets' RemoteExchange and may only
// change state at window barriers. Node-side handlers are attached
// afterwards by the MAC layer, exactly as with BuildFabric.
func BuildFabricSharded(nets []*Net, topo Topology, assign *Assignment) (*Cluster, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if len(nets) != assign.Shards {
		return nil, fmt.Errorf("phys: %d Nets for %d shards", len(nets), assign.Shards)
	}
	for i, n := range nets {
		n.Shard = i
		// Every shard speaks the fabric's wire-format version: frame
		// sizes (and so serialization times) must agree across shards.
		n.Wire = topo.WireVersion()
	}
	c := &Cluster{Net: nets[0], Topo: topo, Assign: assign}
	for s := 0; s < topo.Switches; s++ {
		c.Switches = append(c.Switches, nets[assign.SwitchShard[s]].NewSwitch(fmt.Sprintf("sw%d", s), topo.Nodes))
	}
	c.NodePorts = make([][]*Port, topo.Nodes)
	c.NodeLinks = make([][]*Link, topo.Nodes)
	for n := 0; n < topo.Nodes; n++ {
		c.NodePorts[n] = make([]*Port, topo.Switches)
		c.NodeLinks[n] = make([]*Link, topo.Switches)
		nodeNet := nets[assign.NodeShard[n]]
		for s := 0; s < topo.Switches; s++ {
			if !topo.IsAttached(n, s) {
				continue
			}
			p := nodeNet.NewPort(fmt.Sprintf("n%d.s%d", n, s), nil)
			c.NodePorts[n][s] = p
			c.NodeLinks[n][s] = nodeNet.Connect(p, c.Switches[s].Port(n), topo.FiberM)
		}
	}
	for i, spec := range topo.Trunks {
		fiber := spec.FiberM
		if fiber == 0 {
			fiber = topo.FiberM
		}
		t := &Trunk{Index: i, A: spec.A, B: spec.B}
		var pa, pb *Port
		pa, t.PortA = c.Switches[spec.A].addTrunkPort(fmt.Sprintf("t%d", i))
		pb, t.PortB = c.Switches[spec.B].addTrunkPort(fmt.Sprintf("t%d", i))
		t.Link = pa.net.Connect(pa, pb, fiber)
		c.Trunks = append(c.Trunks, t)
	}
	return c, nil
}

// ShardOfSwitch returns the shard owning switch s (0 when unsharded).
func (c *Cluster) ShardOfSwitch(s int) int {
	if c.Assign == nil {
		return 0
	}
	return c.Assign.SwitchShard[s]
}

// ShardOfNode returns the shard owning node n (0 when unsharded).
func (c *Cluster) ShardOfNode(n int) int {
	if c.Assign == nil {
		return 0
	}
	return c.Assign.NodeShard[n]
}

// Program applies a crossbar write aimed at op.Switch on behalf of
// shard srcShard, landing at virtual time at.
//
// at == 0 is the historical node-port semantics: a local switch (or an
// unsharded fabric) is programmed immediately; a remote switch's write
// is applied when it crosses the next window barrier.
//
// A positive at models programming that propagates to the switch like
// a circuit-setup cell: the write lands at exactly at on every engine.
// Rostering issues its trunk-crossing VC writes with at = now + the
// fiber flight along the hop's path, which buys two guarantees at
// once. A node's own frames pay the same flight plus serialization and
// per-switch cut-through latency, so they can never outrun their setup
// cell; and a frame already in flight when the write is issued keeps
// the stale route — in serial and sharded runs alike. (Deferring such
// a write to the barrier instead is NOT invisible: a frame launched
// before the write can be received mid-window, see the stale table,
// and die at a port the serial engine's immediate write would have
// steered it away from.) The timestamp is always honorable on the
// sharded engine because a remote write's path crosses a cut fiber,
// so the accumulated flight is at least one lookahead window.
func (c *Cluster) Program(srcShard int, at sim.Time, op RouteOp) {
	if c.Assign == nil || c.Assign.SwitchShard[op.Switch] == srcShard || c.RouteSink == nil {
		k := c.Switches[op.Switch].net.K
		if at <= k.Now() {
			op.Apply(c)
			return
		}
		k.AtPri(at, -1, 0, func() { op.Apply(c) })
		return
	}
	c.RouteSink(srcShard, at, op)
}

// NumNodes returns the node count.
func (c *Cluster) NumNodes() int { return len(c.NodePorts) }

// NumSwitches returns the switch count.
func (c *Cluster) NumSwitches() int { return len(c.Switches) }

// NumTrunks returns the trunk count.
func (c *Cluster) NumTrunks() int { return len(c.Trunks) }

// HasLink reports whether the topology attaches node n to switch s.
func (c *Cluster) HasLink(n, s int) bool { return c.NodeLinks[n][s] != nil }

// FailNode takes all of node n's links dark (models node death as seen
// by the fabric).
func (c *Cluster) FailNode(n int) {
	for _, l := range c.NodeLinks[n] {
		if l != nil {
			l.Fail()
		}
	}
}

// RestoreNode re-lights node n's links.
func (c *Cluster) RestoreNode(n int) {
	for _, l := range c.NodeLinks[n] {
		if l != nil {
			l.Restore()
		}
	}
}

// FailTrunk cuts trunk t; RestoreTrunk re-splices it.
func (c *Cluster) FailTrunk(t int)    { c.Trunks[t].Link.Fail() }
func (c *Cluster) RestoreTrunk(t int) { c.Trunks[t].Link.Restore() }

// TrunkUp reports whether trunk t carries light.
func (c *Cluster) TrunkUp(t int) bool { return c.Trunks[t].Link.Up() }

// WatchTrunks registers a callback for trunk status changes (fired
// after the PHY detection latency, like port status). The rostering
// agents use it to start a healing round when a trunk dies or returns.
// k is the kernel the callback must run on — the watcher's shard kernel
// in a sharded fabric; every shard senses the change at the same
// virtual instant, mirroring the hardware's loss-of-light detection.
func (c *Cluster) WatchTrunks(k *sim.Kernel, fn func(trunk int, up bool)) {
	for _, t := range c.Trunks {
		idx := t.Index
		t.Link.Watch(k, func(up bool) { fn(idx, up) })
	}
}

// LiveSwitchesBetween returns the switch indices that still have live
// links to both node a and node b — the candidate single-switch hops
// for a logical ring edge a→b.
func (c *Cluster) LiveSwitchesBetween(a, b int) []int {
	var out []int
	for s := range c.Switches {
		if c.Switches[s].Failed() {
			continue
		}
		if c.NodeLinks[a][s] != nil && c.NodeLinks[a][s].Up() &&
			c.NodeLinks[b][s] != nil && c.NodeLinks[b][s].Up() {
			out = append(out, s)
		}
	}
	return out
}

// TrunkBetween returns the lowest-index live trunk joining switches a
// and b, or nil. Every node picks the same trunk for the same hop, so
// the crossbar programming of a roster is consistent without
// coordination.
func (c *Cluster) TrunkBetween(a, b int) *Trunk {
	for _, t := range c.Trunks {
		if ((t.A == a && t.B == b) || (t.A == b && t.B == a)) && t.Link.Up() {
			return t
		}
	}
	return nil
}

// FabricView captures the switch-layer connectivity the rostering
// algorithm routes over: which switch pairs are joined by a live trunk,
// and whether the fabric's rings counter-rotate. Node-to-switch
// liveness travels separately, in the flooded link-state masks.
type FabricView struct {
	Switches        int
	TrunkUp         [][]bool
	CounterRotating bool
}

// View snapshots the cluster's current fabric view.
func (c *Cluster) View() *FabricView {
	v := &FabricView{Switches: len(c.Switches), CounterRotating: c.Topo.CounterRotating}
	if len(c.Trunks) == 0 {
		return v
	}
	v.TrunkUp = make([][]bool, v.Switches)
	for i := range v.TrunkUp {
		v.TrunkUp[i] = make([]bool, v.Switches)
	}
	for _, t := range c.Trunks {
		if t.Link.Up() && !c.Switches[t.A].Failed() && !c.Switches[t.B].Failed() {
			v.TrunkUp[t.A][t.B] = true
			v.TrunkUp[t.B][t.A] = true
		}
	}
	return v
}

// Joined reports whether switches a and b are joined by a live trunk.
func (v *FabricView) Joined(a, b int) bool {
	return v.TrunkUp != nil && v.TrunkUp[a][b]
}
