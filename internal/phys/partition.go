package phys

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Cut-aware shard partitioning.
//
// The conservative window the parallel engine runs with is
// phys.Lookahead: the minimum propagation delay over every cross-shard
// fiber. A partition that happens to cut a short fiber strangles every
// shard's window to that fiber's flight time, no matter how long the
// rest of the cut is. AssignShards therefore starts from the canonical
// block partition and refines it with a deterministic
// Kernighan–Lin-style hill climb over switch swaps, maximizing first
// the minimum cross-shard fiber (and hence the lookahead window) and
// then, at equal lookahead, minimizing the number of cut links (the
// barrier-exchange volume). Ties fall back to the block partition:
// only strictly improving swaps are taken, in a fixed scan order, so
// the assignment is a pure function of (topology, shard count) —
// identical across runs, machines, and engines, which is what keeps
// parallel reports reproducible.
//
// Swaps exchange whole switches between shards, so every shard keeps
// exactly its block-partition switch count — refinement never skews
// the load balance the block partition establishes.

// partEval scores one switch assignment. Lexicographic order: a bigger
// minProp wins; at equal minProp, a smaller cut wins.
type partEval struct {
	minProp   sim.Time // shortest cross-shard flight; MaxTime when nothing crosses
	minFiberM float64  // its fiber length in meters; 0 when nothing crosses
	cut       int      // number of cross-shard links (node fibers + trunks)
}

func betterPart(a, b partEval) bool {
	if a.minProp != b.minProp {
		return a.minProp > b.minProp
	}
	return a.cut < b.cut
}

// attachLists precomputes node → attached-switch lists (and catches
// unattached nodes, which have no home shard and cannot be simulated).
func attachLists(topo *Topology) ([][]int, error) {
	attach := make([][]int, topo.Nodes)
	for n := 0; n < topo.Nodes; n++ {
		for s := 0; s < topo.Switches; s++ {
			if topo.IsAttached(n, s) {
				attach[n] = append(attach[n], s)
			}
		}
		if len(attach[n]) == 0 {
			return nil, fmt.Errorf("phys: node %d is attached to no switch; it has no home shard (run Topology.Validate)", n)
		}
	}
	return attach, nil
}

// nodeHomes assigns every node a shard under swShard: a node lives on
// the shard holding the most of its attachments; ties prefer the
// node's block-partition shard when it is among the leaders (keeping
// the historical assignment for uniform fabrics, where every shard
// ties), and the lowest tied shard index otherwise. Deterministic by
// construction.
func nodeHomes(attach [][]int, swShard []int, shards, nodes int, out []int) {
	cnt := make([]int, shards)
	for n, atts := range attach {
		for i := range cnt {
			cnt[i] = 0
		}
		for _, s := range atts {
			cnt[swShard[s]]++
		}
		best := 0
		for _, c := range cnt {
			if c > best {
				best = c
			}
		}
		home := n * shards / nodes
		if cnt[home] != best {
			for sh, c := range cnt {
				if c == best {
					home = sh
					break
				}
			}
		}
		out[n] = home
	}
}

// evalPartition scores swShard, filling nodeShard with the implied node
// homes.
func evalPartition(topo *Topology, attach [][]int, swShard []int, shards int, nodeShard []int) partEval {
	nodeHomes(attach, swShard, shards, topo.Nodes, nodeShard)
	ev := partEval{minProp: sim.MaxTime}
	consider := func(meters float64) {
		ev.cut++
		if p := PropTime(meters); p < ev.minProp {
			ev.minProp, ev.minFiberM = p, meters
		}
	}
	for n, atts := range attach {
		for _, s := range atts {
			if nodeShard[n] != swShard[s] {
				consider(topo.FiberM)
			}
		}
	}
	for _, tr := range topo.Trunks {
		if swShard[tr.A] != swShard[tr.B] {
			fiber := tr.FiberM
			if fiber == 0 {
				fiber = topo.FiberM
			}
			consider(fiber)
		}
	}
	return ev
}

// BlockAssign computes the historical block partition: switches in
// index order (shard i owns switches [i·S/K, (i+1)·S/K)), node homes by
// the attachment-majority rule. It is the starting point of the
// cut-aware refinement and the comparison baseline for its
// never-worse-lookahead property.
func BlockAssign(topo *Topology, shards int) (*Assignment, error) {
	if err := checkShards(topo, shards); err != nil {
		return nil, err
	}
	attach, err := attachLists(topo)
	if err != nil {
		return nil, err
	}
	a := &Assignment{
		Shards:      shards,
		SwitchShard: make([]int, topo.Switches),
		NodeShard:   make([]int, topo.Nodes),
	}
	for s := 0; s < topo.Switches; s++ {
		a.SwitchShard[s] = s * shards / topo.Switches
	}
	ev := evalPartition(topo, attach, a.SwitchShard, shards, a.NodeShard)
	a.CutLinks, a.MinCutFiberM = ev.cut, ev.minFiberM
	return a, nil
}

func checkShards(topo *Topology, shards int) error {
	if shards < 1 {
		return fmt.Errorf("phys: %d shards; need at least 1", shards)
	}
	if shards > topo.Switches {
		return fmt.Errorf("phys: %d shards over %d switches; a shard must own at least one switch",
			shards, topo.Switches)
	}
	return nil
}

// AssignShards computes the canonical shard assignment for topo:
// the block partition refined by deterministic cut-aware switch swaps
// (see the package comment above). With one shard, or with exactly one
// switch per shard (where any swap merely relabels shards), the result
// is the block partition itself.
//
// Unlike its block-only predecessor, AssignShards rejects topologies
// with unattached nodes instead of silently block-assigning them: a
// node with no switch has no home shard, and Topology.Validate would
// refuse to build it anyway.
func AssignShards(topo *Topology, shards int) (*Assignment, error) {
	if err := checkShards(topo, shards); err != nil {
		return nil, err
	}
	attach, err := attachLists(topo)
	if err != nil {
		return nil, err
	}
	swShard := make([]int, topo.Switches)
	for s := 0; s < topo.Switches; s++ {
		swShard[s] = s * shards / topo.Switches
	}
	nodeShard := make([]int, topo.Nodes)
	cur := evalPartition(topo, attach, swShard, shards, nodeShard)
	refined := false
	if shards > 1 && shards < topo.Switches && cur.cut > 0 {
		// First-improvement hill climb over switch pair swaps, fixed
		// scan order. Each accepted swap strictly improves the
		// lexicographic objective, so the climb terminates; the pass
		// cap is a safety net only.
		for pass := 0; pass < 4*topo.Switches; pass++ {
			improvedInPass := false
			for i := 0; i < topo.Switches; i++ {
				for j := i + 1; j < topo.Switches; j++ {
					if swShard[i] == swShard[j] {
						continue
					}
					swShard[i], swShard[j] = swShard[j], swShard[i]
					cand := evalPartition(topo, attach, swShard, shards, nodeShard)
					if betterPart(cand, cur) {
						cur = cand
						improvedInPass, refined = true, true
					} else {
						swShard[i], swShard[j] = swShard[j], swShard[i]
					}
				}
			}
			if !improvedInPass {
				break
			}
		}
	}
	a := &Assignment{
		Shards:      shards,
		SwitchShard: swShard,
		NodeShard:   nodeShard,
		Refined:     refined,
	}
	// Re-evaluate once at the final assignment: the scratch nodeShard
	// holds the homes of the last *candidate* tried, not necessarily
	// the accepted one.
	ev := evalPartition(topo, attach, swShard, shards, a.NodeShard)
	a.CutLinks, a.MinCutFiberM = ev.cut, ev.minFiberM
	return a, nil
}

// Partition renders the switch→shard map as a compact string
// ("0,0,1,1"), the observability form reports and summaries print.
func (a *Assignment) Partition() string {
	var b strings.Builder
	for s, sh := range a.SwitchShard {
		if s > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(sh))
	}
	return b.String()
}
