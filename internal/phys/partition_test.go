package phys

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// partitionFabrics is the five-battery shape set (mirroring the core
// equivalence battery) the partition properties are pinned on.
func partitionFabrics() []Topology {
	return []Topology{
		Uniform(6, 4, 50),
		Uniform(5, 2, 50),
		DualRing(6, 50),
		Mesh(6, 3, 50),
		Sharded(2, 3, 2, 50),
	}
}

func TestAssignShardsRejectsBadShardCounts(t *testing.T) {
	topo := Uniform(6, 4, 50)
	if _, err := AssignShards(&topo, 0); err == nil {
		t.Fatal("AssignShards(0 shards) succeeded, want error")
	}
	if _, err := AssignShards(&topo, 5); err == nil {
		t.Fatal("AssignShards(5 shards over 4 switches) succeeded, want error")
	}
	if _, err := BlockAssign(&topo, 5); err == nil {
		t.Fatal("BlockAssign(5 shards over 4 switches) succeeded, want error")
	}
}

func TestAssignShardsRejectsUnattachedNode(t *testing.T) {
	// Node 2 has no switch: the block-only predecessor silently sent it
	// down the node-index block path; now it must be an error.
	topo := Topology{
		Nodes: 3, Switches: 2, FiberM: 50,
		Attached: func(n, s int) bool { return n != 2 },
		Trunks:   []TrunkSpec{{A: 0, B: 1}},
	}
	if _, err := AssignShards(&topo, 2); err == nil {
		t.Fatal("AssignShards with an unattached node succeeded, want error")
	}
	if _, err := BlockAssign(&topo, 2); err == nil {
		t.Fatal("BlockAssign with an unattached node succeeded, want error")
	}
}

func TestAssignShardsDeterministic(t *testing.T) {
	for _, topo := range partitionFabrics() {
		for shards := 1; shards <= topo.Switches; shards++ {
			a1, err := AssignShards(&topo, shards)
			if err != nil {
				t.Fatalf("%s/%d: %v", topo.Name, shards, err)
			}
			a2, err := AssignShards(&topo, shards)
			if err != nil {
				t.Fatalf("%s/%d: %v", topo.Name, shards, err)
			}
			if !reflect.DeepEqual(a1, a2) {
				t.Fatalf("%s/%d: two AssignShards runs disagree:\n%+v\n%+v", topo.Name, shards, a1, a2)
			}
		}
	}
}

// TestAssignShardsBijectionStaysBlock pins the forced-bijection case
// (one switch per shard, the E15 wire-scale shape): every swap is a
// pure shard relabel, never a strict improvement, so the assignment is
// exactly the block partition and existing goldens are untouched.
func TestAssignShardsBijectionStaysBlock(t *testing.T) {
	topo := Sharded(8, 4, 1, 50)
	got, err := AssignShards(&topo, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BlockAssign(&topo, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got.Refined {
		t.Fatal("bijection partition reported Refined=true, want block fallback")
	}
	if !reflect.DeepEqual(got.SwitchShard, want.SwitchShard) || !reflect.DeepEqual(got.NodeShard, want.NodeShard) {
		t.Fatalf("bijection partition diverged from block:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestAssignShardsImprovesShortCut builds a 4-switch ring whose block
// partition cuts a 10 m trunk (50 ns of lookahead) while the rotated
// partition cuts only 50 m trunks (250 ns): refinement must find the
// rotation.
func TestAssignShardsImprovesShortCut(t *testing.T) {
	topo := Topology{
		Nodes: 4, Switches: 4, FiberM: 50,
		Attached: func(n, s int) bool { return n == s },
		Trunks: []TrunkSpec{
			{A: 0, B: 1, FiberM: 50},
			{A: 2, B: 3, FiberM: 50},
			{A: 1, B: 2, FiberM: 10},
			{A: 0, B: 3, FiberM: 10},
		},
	}
	block, err := BlockAssign(&topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	blockL, err := Lookahead(&topo, block)
	if err != nil {
		t.Fatal(err)
	}
	cut, err := AssignShards(&topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	cutL, err := Lookahead(&topo, cut)
	if err != nil {
		t.Fatal(err)
	}
	if !cut.Refined {
		t.Fatalf("refinement did not fire: %+v", cut)
	}
	// The first accepted swap relabels shards, so the rotation comes out
	// as [1 0 0 1] — the same bipartition as {0,3}|{1,2}.
	if want := []int{1, 0, 0, 1}; !reflect.DeepEqual(cut.SwitchShard, want) {
		t.Fatalf("SwitchShard = %v, want %v", cut.SwitchShard, want)
	}
	if cutL <= blockL {
		t.Fatalf("cut-aware lookahead %v not better than block %v", cutL, blockL)
	}
	if cut.CutLinks != 2 || cut.MinCutFiberM != 50 {
		t.Fatalf("cut observability = {links %d, minFiber %.0f m}, want {2, 50 m}",
			cut.CutLinks, cut.MinCutFiberM)
	}
	// Nodes follow their only switch.
	if want := []int{1, 0, 0, 1}; !reflect.DeepEqual(cut.NodeShard, want) {
		t.Fatalf("NodeShard = %v, want %v", cut.NodeShard, want)
	}
}

// TestCutAwareNeverWorseThanBlock is the partition property the parallel
// engine leans on: over the five battery fabric shapes, at every viable
// shard count, the cut-aware assignment never yields a smaller
// lookahead window than the block partition it starts from.
func TestCutAwareNeverWorseThanBlock(t *testing.T) {
	for _, topo := range partitionFabrics() {
		for shards := 1; shards <= topo.Switches; shards++ {
			block, err := BlockAssign(&topo, shards)
			if err != nil {
				t.Fatalf("%s/%d: block: %v", topo.Name, shards, err)
			}
			cut, err := AssignShards(&topo, shards)
			if err != nil {
				t.Fatalf("%s/%d: cut-aware: %v", topo.Name, shards, err)
			}
			blockL, blockErr := Lookahead(&topo, block)
			cutL, cutErr := Lookahead(&topo, cut)
			if blockErr != nil || cutErr != nil {
				t.Fatalf("%s/%d: lookahead errors: block %v, cut %v", topo.Name, shards, blockErr, cutErr)
			}
			if cutL < blockL {
				t.Fatalf("%s/%d: cut-aware lookahead %v < block %v (partition %q)",
					topo.Name, shards, cutL, blockL, cut.Partition())
			}
			if cut.CutLinks > block.CutLinks && cutL == blockL {
				t.Fatalf("%s/%d: refinement grew the cut (%d > %d) without growing lookahead",
					topo.Name, shards, cut.CutLinks, block.CutLinks)
			}
			if shards == 1 && cutL != sim.MaxTime {
				t.Fatalf("%s/1: single-shard lookahead = %v, want MaxTime sentinel", topo.Name, cutL)
			}
		}
	}
}
