package phys

import (
	"strings"
	"testing"

	"repro/internal/wire"
)

// Per-version topology validation: the address-space ceiling is a
// property of the wire-format version the fabric runs, and the error
// must name the version so the fix (wire v2) is obvious.
func TestTopologyWireVersionValidation(t *testing.T) {
	big := Uniform(300, 2, 50)

	// Auto resolves to the smallest version that fits.
	if v := big.WireVersion(); v != wire.V2 {
		t.Fatalf("auto version for 300 nodes = %v, want v2", v)
	}
	if err := big.Validate(); err != nil {
		t.Fatalf("auto-version 300-node topology rejected: %v", err)
	}
	small := Uniform(6, 4, 50)
	if v := small.WireVersion(); v != wire.V1 {
		t.Fatalf("auto version for 6 nodes = %v, want v1 (byte-exact compatibility)", v)
	}

	// An explicit v1 still rejects >255 nodes, naming the version.
	v1big := big
	v1big.Wire = wire.V1
	err := v1big.Validate()
	if err == nil {
		t.Fatal("v1 topology with 300 nodes validated")
	}
	if !strings.Contains(err.Error(), "v1") || !strings.Contains(err.Error(), "255") {
		t.Fatalf("v1 overflow error does not name the version and its ceiling: %v", err)
	}

	// v1 accepts exactly its ceiling; one more is the error above.
	atCeiling := Uniform(255, 1, 50)
	atCeiling.Wire = wire.V1
	if err := atCeiling.Validate(); err != nil {
		t.Fatalf("v1 at 255 nodes rejected: %v", err)
	}

	// v2 accepts up to 65535 nodes and rejects beyond.
	huge := Uniform(65535, 1, 50)
	huge.Wire = wire.V2
	if err := huge.Validate(); err != nil {
		t.Fatalf("v2 at 65535 nodes rejected: %v", err)
	}
	past := Uniform(65536, 1, 50)
	past.Wire = wire.V2
	if err := past.Validate(); err == nil {
		t.Fatal("65536 nodes validated")
	}

	// Unknown versions are rejected up front.
	bogus := small
	bogus.Wire = wire.Version(7)
	if err := bogus.Validate(); err == nil {
		t.Fatal("unknown wire version validated")
	}
}

// The builders stamp the resolved version onto every shard's Net, so
// frame sizing and the DeepPHY codec agree fabric-wide.
func TestBuildersStampWireVersion(t *testing.T) {
	k, net := testNet()
	_ = k
	topo := Uniform(4, 2, 50)
	topo.Wire = wire.V2
	if _, err := BuildFabric(net, topo); err != nil {
		t.Fatal(err)
	}
	if net.Wire != wire.V2 {
		t.Fatalf("builder left Net on %v, want v2", net.Wire)
	}
	// And v2 frames really are one word bigger on the wire.
	f := net.NewFrame(dataFrame(1, 2).Pkt)
	if f.Wire != 28 {
		t.Fatalf("v2 fixed frame sized %d, want 28", f.Wire)
	}
}
