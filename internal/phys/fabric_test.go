package phys

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestTopologyValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		topo Topology
		want string // substring of the error, "" for valid
	}{
		{"uniform", Uniform(6, 4, 50), ""},
		{"dualring", DualRing(6, 50), ""},
		{"mesh", Mesh(8, 4, 50), ""},
		{"sharded", Sharded(2, 3, 2, 50), ""},
		{"no nodes", Uniform(0, 4, 50), "at least one node"},
		{"too many switches", Uniform(4, 9, 50), "at most 8"},
		{"trunk out of range", Topology{Name: "x", Nodes: 2, Switches: 2, Trunks: []TrunkSpec{{A: 0, B: 5}}}, "out of range"},
		{"trunk self-loop", Topology{Name: "x", Nodes: 2, Switches: 2, Trunks: []TrunkSpec{{A: 1, B: 1}}}, "self-loop"},
		{"orphan node", Topology{Name: "x", Nodes: 2, Switches: 2,
			Attached: func(n, s int) bool { return n == 0 }}, "no switch attachment"},
	} {
		err := tc.topo.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestFabricByName pins the budget contract: a named shape either
// realizes the requested node/switch budget exactly or errors — it
// never silently drops or resizes.
func TestFabricByName(t *testing.T) {
	for _, tc := range []struct {
		name            string
		nodes, switches int
		wantErr         string
		wantNodes       int
		wantSwitches    int
	}{
		{"uniform", 6, 4, "", 6, 4},
		{"", 6, 4, "", 6, 4},
		{"dualring", 6, 4, "", 6, 2}, // the shape fixes switches at 2
		{"mesh", 8, 4, "", 8, 4},
		{"sharded", 8, 4, "", 8, 4},
		{"sharded", 9, 4, "does not divide evenly", 0, 0},
		{"sharded", 8, 3, "does not divide evenly", 0, 0},
		{"mesh", 8, 1, "at least 2 switches", 0, 0},
		{"mesh", 8, 9, "at most 8", 0, 0},
		{"banana", 6, 4, "unknown fabric", 0, 0},
	} {
		topo, err := FabricByName(tc.name, tc.nodes, tc.switches, 50)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("FabricByName(%q, %d, %d): error %v, want substring %q",
					tc.name, tc.nodes, tc.switches, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("FabricByName(%q, %d, %d): %v", tc.name, tc.nodes, tc.switches, err)
			continue
		}
		if topo.Nodes != tc.wantNodes || topo.Switches != tc.wantSwitches {
			t.Errorf("FabricByName(%q, %d, %d) = %d nodes × %d switches, want %d × %d",
				tc.name, tc.nodes, tc.switches, topo.Nodes, topo.Switches, tc.wantNodes, tc.wantSwitches)
		}
	}
}

// TestBuildFabricTrunks checks trunk wiring: ports beyond the node
// ports, live links, and status watchers firing on fail/restore after
// the detection latency.
func TestBuildFabricTrunks(t *testing.T) {
	net := NewNet(sim.NewKernel(1))
	c, err := BuildFabric(net, Sharded(2, 3, 2, 50))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumTrunks() != 2 || c.NumNodes() != 6 || c.NumSwitches() != 4 {
		t.Fatalf("sharded(2,3,2) = %d nodes, %d switches, %d trunks", c.NumNodes(), c.NumSwitches(), c.NumTrunks())
	}
	for _, tr := range c.Trunks {
		if tr.PortA < c.Switches[tr.A].NumNodePorts() || tr.PortB < c.Switches[tr.B].NumNodePorts() {
			t.Fatalf("trunk %d wired to a node port (%d/%d)", tr.Index, tr.PortA, tr.PortB)
		}
		if !tr.Link.Up() {
			t.Fatalf("trunk %d built dark", tr.Index)
		}
	}
	// Sparse attachment: node 0 (shard 0) has no port to switch 2.
	if c.HasLink(0, 2) || !c.HasLink(0, 0) {
		t.Fatal("sharded attachment wrong for node 0")
	}
	var events []int
	c.WatchTrunks(net.K, func(tr int, up bool) { events = append(events, tr) })
	c.FailTrunk(1)
	net.K.RunUntil(net.K.Now() + 2*DefaultDetect)
	if c.TrunkUp(1) || len(events) != 1 || events[0] != 1 {
		t.Fatalf("trunk fail not observed: up=%v events=%v", c.TrunkUp(1), events)
	}
	c.RestoreTrunk(1)
	net.K.RunUntil(net.K.Now() + 2*DefaultDetect)
	if !c.TrunkUp(1) || len(events) != 2 {
		t.Fatalf("trunk restore not observed: up=%v events=%v", c.TrunkUp(1), events)
	}
	if tr := c.TrunkBetween(0, 2); tr == nil || tr.Index != 0 {
		t.Fatalf("TrunkBetween(0,2) = %v, want trunk 0", tr)
	}
	if tr := c.TrunkBetween(0, 3); tr != nil {
		t.Fatalf("TrunkBetween(0,3) = %v, want nil", tr)
	}
}
