package phys

import (
	"fmt"

	"repro/internal/sim"
)

// Assignment partitions a fabric for parallel simulation: every switch
// and every node is owned by exactly one shard, and each shard runs its
// components on a private kernel. The partition is a pure function of
// the topology and the shard count, so two runs (and two machines)
// always shard identically — a prerequisite for reproducible parallel
// results.
type Assignment struct {
	Shards      int
	SwitchShard []int // switch id → owning shard
	NodeShard   []int // node id → owning shard
}

// AssignShards computes the canonical shard assignment for topo:
// switches are block-partitioned in index order (shard i owns switches
// [i·S/K, (i+1)·S/K)); a node whose attachments all land on one shard
// belongs to that shard (the sharded multi-ring case — a node lives
// with its switch), and a node attached across shards (the paper's
// uniform segment, where every node sees every switch) is
// block-partitioned by node index.
func AssignShards(topo *Topology, shards int) (*Assignment, error) {
	if shards < 1 {
		return nil, fmt.Errorf("phys: %d shards; need at least 1", shards)
	}
	if shards > topo.Switches {
		return nil, fmt.Errorf("phys: %d shards over %d switches; a shard must own at least one switch",
			shards, topo.Switches)
	}
	a := &Assignment{
		Shards:      shards,
		SwitchShard: make([]int, topo.Switches),
		NodeShard:   make([]int, topo.Nodes),
	}
	for s := 0; s < topo.Switches; s++ {
		a.SwitchShard[s] = s * shards / topo.Switches
	}
	for n := 0; n < topo.Nodes; n++ {
		home, uniform := -1, true
		for s := 0; s < topo.Switches; s++ {
			if !topo.IsAttached(n, s) {
				continue
			}
			if home < 0 {
				home = a.SwitchShard[s]
			} else if a.SwitchShard[s] != home {
				uniform = false
			}
		}
		if uniform && home >= 0 {
			a.NodeShard[n] = home
		} else {
			a.NodeShard[n] = n * shards / topo.Nodes
		}
	}
	return a, nil
}

// Lookahead returns the fabric's conservative lookahead under assign:
// the minimum propagation delay over every link whose endpoints live on
// different shards. Any influence one shard exerts on another needs at
// least one cross-shard flight, so shards may run a full lookahead
// window apart without ever reordering a delivery. An error is
// returned when some cross-shard fiber is so short its propagation
// rounds to zero — such a fabric has no exploitable lookahead.
func Lookahead(topo *Topology, assign *Assignment) (sim.Time, error) {
	min := sim.MaxTime
	consider := func(meters float64, what string) error {
		p := PropTime(meters)
		if p <= 0 {
			return fmt.Errorf("phys: cross-shard %s has zero propagation delay (%.1f m of fiber); no lookahead", what, meters)
		}
		if p < min {
			min = p
		}
		return nil
	}
	for n := 0; n < topo.Nodes; n++ {
		for s := 0; s < topo.Switches; s++ {
			if topo.IsAttached(n, s) && assign.NodeShard[n] != assign.SwitchShard[s] {
				if err := consider(topo.FiberM, fmt.Sprintf("link n%d-s%d", n, s)); err != nil {
					return 0, err
				}
			}
		}
	}
	for i, tr := range topo.Trunks {
		if assign.SwitchShard[tr.A] != assign.SwitchShard[tr.B] {
			fiber := tr.FiberM
			if fiber == 0 {
				fiber = topo.FiberM
			}
			if err := consider(fiber, fmt.Sprintf("trunk %d", i)); err != nil {
				return 0, err
			}
		}
	}
	if min == sim.MaxTime {
		// Nothing crosses shards: the partition is fully decoupled and
		// any window length is safe.
		return sim.MaxTime, nil
	}
	return min, nil
}
