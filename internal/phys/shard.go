package phys

import (
	"fmt"

	"repro/internal/sim"
)

// Assignment partitions a fabric for parallel simulation: every switch
// and every node is owned by exactly one shard, and each shard runs its
// components on a private kernel. The partition is a pure function of
// the topology and the shard count, so two runs (and two machines)
// always shard identically — a prerequisite for reproducible parallel
// results.
// AssignShards (partition.go) builds it: the block partition refined by
// deterministic cut-aware switch swaps. The observability fields record
// what the partitioner settled on; they feed report summaries, never
// the simulation itself.
type Assignment struct {
	Shards      int
	SwitchShard []int // switch id → owning shard
	NodeShard   []int // node id → owning shard

	// CutLinks counts the links (node fibers + trunks) whose endpoints
	// land on different shards — the barrier-exchange surface.
	CutLinks int
	// MinCutFiberM is the shortest cross-shard fiber in meters — the
	// one that bounds Lookahead. Zero when nothing crosses shards.
	MinCutFiberM float64
	// Refined reports whether cut-aware refinement improved on the
	// block partition (false = the block partition was already optimal
	// under the scan, or refinement was not applicable).
	Refined bool
}

// Lookahead returns the fabric's conservative lookahead under assign:
// the minimum propagation delay over every link whose endpoints live on
// different shards. Any influence one shard exerts on another needs at
// least one cross-shard flight, so shards may run a full lookahead
// window apart without ever reordering a delivery. An error is
// returned when some cross-shard fiber is so short its propagation
// rounds to zero — such a fabric has no exploitable lookahead.
func Lookahead(topo *Topology, assign *Assignment) (sim.Time, error) {
	min := sim.MaxTime
	consider := func(meters float64, what string) error {
		p := PropTime(meters)
		if p <= 0 {
			return fmt.Errorf("phys: cross-shard %s has zero propagation delay (%.1f m of fiber); no lookahead", what, meters)
		}
		if p < min {
			min = p
		}
		return nil
	}
	for n := 0; n < topo.Nodes; n++ {
		for s := 0; s < topo.Switches; s++ {
			if topo.IsAttached(n, s) && assign.NodeShard[n] != assign.SwitchShard[s] {
				if err := consider(topo.FiberM, fmt.Sprintf("link n%d-s%d", n, s)); err != nil {
					return 0, err
				}
			}
		}
	}
	for i, tr := range topo.Trunks {
		if assign.SwitchShard[tr.A] != assign.SwitchShard[tr.B] {
			fiber := tr.FiberM
			if fiber == 0 {
				fiber = topo.FiberM
			}
			if err := consider(fiber, fmt.Sprintf("trunk %d", i)); err != nil {
				return 0, err
			}
		}
	}
	if min == sim.MaxTime {
		// Nothing crosses shards: the partition is fully decoupled and
		// any window length is safe.
		return sim.MaxTime, nil
	}
	return min, nil
}
