package insertion

import (
	"testing"

	"repro/internal/micropacket"
	"repro/internal/phys"
	"repro/internal/sim"
)

// buildRing wires n stations into a logical ring over a single switch:
// node i's egress hops to node (i+1) mod n.
func buildRing(n int) (*sim.Kernel, *phys.Net, *phys.Cluster, []*Station) {
	k := sim.NewKernel(1)
	net := phys.NewNet(k)
	c := phys.BuildCluster(net, n, 1, 50)
	stations := make([]*Station, n)
	for i := 0; i < n; i++ {
		stations[i] = NewStation(k, micropacket.NodeID(i), c.NodePorts[i])
	}
	for i := 0; i < n; i++ {
		c.Switches[0].SetRoute(i, (i+1)%n)
		stations[i].SetEgress(0)
	}
	return k, net, c, stations
}

// collect attaches delivery counters to every station.
func collect(stations []*Station) []int {
	counts := make([]int, len(stations))
	for i, s := range stations {
		i := i
		s.OnDeliver = func(_ *micropacket.Packet) { counts[i]++ }
	}
	return counts
}

func TestUnicastDeliveredAndStripped(t *testing.T) {
	k, net, _, st := buildRing(4)
	counts := collect(st)
	if !st[0].Send(micropacket.NewData(0, 2, 7, []byte{1})) {
		t.Fatal("send refused")
	}
	k.Run()
	if counts[2] != 1 {
		t.Fatalf("node 2 deliveries = %d, want 1", counts[2])
	}
	if counts[1] != 0 || counts[3] != 0 || counts[0] != 0 {
		t.Fatalf("stray deliveries: %v", counts)
	}
	// Node 1 forwarded it; node 3 never saw it (destination strip).
	if st[1].Forwarded != 1 {
		t.Fatalf("node 1 forwarded = %d, want 1", st[1].Forwarded)
	}
	if st[3].Forwarded != 0 {
		t.Fatalf("node 3 forwarded = %d, want 0 (no spatial leak)", st[3].Forwarded)
	}
	if net.Drops.N != 0 {
		t.Fatalf("drops = %d", net.Drops.N)
	}
}

func TestBroadcastFullTour(t *testing.T) {
	k, net, _, st := buildRing(5)
	counts := collect(st)
	st[1].Send(micropacket.NewData(1, micropacket.Broadcast, 0, []byte{9}))
	k.Run()
	for i, c := range counts {
		want := 1
		if i == 1 {
			want = 0 // source does not deliver its own broadcast
		}
		if c != want {
			t.Fatalf("node %d deliveries = %d, want %d (counts %v)", i, c, want, counts)
		}
	}
	if st[1].Stripped != 1 {
		t.Fatalf("source stripped = %d, want 1", st[1].Stripped)
	}
	if net.Drops.N != 0 || net.Lost.N != 0 {
		t.Fatalf("drops=%d lost=%d", net.Drops.N, net.Lost.N)
	}
}

func TestSpatialReuseTwoStreams(t *testing.T) {
	// 0→1 and 2→3 use disjoint ring arcs; both complete without either
	// transiting the other's segment.
	k, _, _, st := buildRing(4)
	counts := collect(st)
	const per = 20
	for i := 0; i < per; i++ {
		if !st[0].Send(micropacket.NewData(0, 1, uint8(i), nil)) {
			t.Fatal("0→1 refused")
		}
		if !st[2].Send(micropacket.NewData(2, 3, uint8(i), nil)) {
			t.Fatal("2→3 refused")
		}
	}
	k.Run()
	if counts[1] != per || counts[3] != per {
		t.Fatalf("deliveries = %v, want %d at nodes 1 and 3", counts, per)
	}
	// Destination stripping means 1 never forwards 0's frames onward.
	if st[1].Forwarded != 0 || st[3].Forwarded != 0 {
		t.Fatalf("forwards = %d,%d — spatial reuse broken", st[1].Forwarded, st[3].Forwarded)
	}
}

// pump keeps offering packets to a station until n have been accepted,
// retrying on backpressure.
func pump(k *sim.Kernel, st *Station, n int, mk func(i int) *micropacket.Packet) {
	i := 0
	var loop func()
	loop = func() {
		for i < n && st.Send(mk(i)) {
			i++
		}
		if i < n {
			k.After(2*sim.Microsecond, loop)
		}
	}
	k.After(0, loop)
}

// TestAllToAllBroadcastLossless is the slide-8 guarantee at MAC scale:
// every node broadcasts simultaneously and nothing is dropped.
func TestAllToAllBroadcastLossless(t *testing.T) {
	const n, per = 8, 50
	k, net, _, st := buildRing(n)
	counts := collect(st)
	for i := 0; i < n; i++ {
		src := micropacket.NodeID(i)
		pump(k, st[i], per, func(j int) *micropacket.Packet {
			return micropacket.NewData(src, micropacket.Broadcast, uint8(j), nil)
		})
	}
	k.Run()
	if net.Drops.N != 0 {
		t.Fatalf("CONGESTION DROPS = %d; slide-8 guarantee violated", net.Drops.N)
	}
	if net.Lost.N != 0 {
		t.Fatalf("lost = %d with no failures", net.Lost.N)
	}
	for i, c := range counts {
		want := (n - 1) * per
		if c != want {
			t.Fatalf("node %d deliveries = %d, want %d", i, c, want)
		}
	}
	for i, s := range st {
		if s.Stripped != per {
			t.Fatalf("node %d stripped %d of its %d broadcasts", i, s.Stripped, per)
		}
	}
}

func TestHostBackpressureNotWireDrops(t *testing.T) {
	k, net, _, st := buildRing(3)
	st[0].MaxInsertQueue = 4
	refused := 0
	for i := 0; i < 100; i++ {
		if !st[0].Send(micropacket.NewData(0, 1, uint8(i), nil)) {
			refused++
		}
	}
	if refused == 0 {
		t.Fatal("expected host backpressure")
	}
	if st[0].Refused == 0 {
		t.Fatal("Refused counter not incremented")
	}
	k.Run()
	if net.Drops.N != 0 {
		t.Fatalf("backpressure leaked to wire drops: %d", net.Drops.N)
	}
}

func TestOffRingSendRefused(t *testing.T) {
	k := sim.NewKernel(1)
	net := phys.NewNet(k)
	c := phys.BuildCluster(net, 2, 1, 10)
	s := NewStation(k, 0, c.NodePorts[0])
	if s.OnRing() {
		t.Fatal("station should start off-ring")
	}
	if s.Send(micropacket.NewData(0, 1, 0, nil)) {
		t.Fatal("off-ring send accepted")
	}
	if s.Refused != 1 {
		t.Fatal("refusal not counted")
	}
}

func TestHopExpiryBreaksLoops(t *testing.T) {
	// Address a node that is not on the ring: the frame would circulate
	// forever without the hop limit.
	k, _, _, st := buildRing(4)
	for _, s := range st {
		s.MaxHops = 16
	}
	st[0].Send(micropacket.NewData(0, 99, 0, nil))
	k.Run()
	var expired uint64
	for _, s := range st {
		expired += s.Expired
	}
	if expired != 1 {
		t.Fatalf("expired = %d, want 1", expired)
	}
}

func TestRosteringPacketsGoToControlPlane(t *testing.T) {
	k, _, _, st := buildRing(3)
	counts := collect(st)
	controlSeen := 0
	st[1].OnControl = func(_ *phys.Port, f phys.Frame) { controlSeen++ }
	// Inject a rostering frame directly at node 1's ring ingress by
	// sending from node 0's egress port (bypassing the MAC's own flood
	// path, which is exercised in the rostering package tests).
	st[0].Ports[0].Send(st[0].Ports[0].Net().NewFrame(micropacket.NewRostering(0, 0, [8]byte{})))
	k.Run()
	if controlSeen != 1 {
		t.Fatalf("control packets seen = %d, want 1", controlSeen)
	}
	if counts[1] != 0 {
		t.Fatal("rostering packet leaked to data delivery")
	}
}

func TestLocalViewTracksLoad(t *testing.T) {
	const n = 6
	k, _, _, st := buildRing(n)
	collect(st)
	for i := 0; i < n; i++ {
		src := micropacket.NodeID(i)
		pump(k, st[i], 200, func(j int) *micropacket.Packet {
			return micropacket.NewData(src, micropacket.Broadcast, uint8(j), nil)
		})
	}
	// Sample local view mid-run.
	var midView float64
	k.After(200*sim.Microsecond, func() { midView = st[0].LocalView() })
	k.Run()
	if midView < 0 {
		t.Fatalf("local view negative: %v", midView)
	}
	// After the run the ring must drain to idle.
	if st[0].QueueLen() != 0 {
		t.Fatal("insert queue not drained")
	}
}

func TestSetEgressDetach(t *testing.T) {
	k, _, _, st := buildRing(3)
	st[0].SetEgress(-1)
	if st[0].OnRing() || st[0].EgressSwitch() != -1 {
		t.Fatal("detach failed")
	}
	// Transit arriving at a detached station is counted unrouted.
	st[2].Send(micropacket.NewData(2, 1, 0, nil)) // must pass node 0
	k.Run()
	if st[0].Unrouted == 0 {
		t.Fatal("unrouted transit not counted at detached station")
	}
}

func TestInsertThresholdAblation(t *testing.T) {
	// With a generous threshold the MAC still must not drop (capacity
	// bounded by FIFO cap), only queue more aggressively.
	const n = 4
	k, net, _, st := buildRing(n)
	collect(st)
	for _, s := range st {
		s.InsertThreshold = 8
	}
	for i := 0; i < n; i++ {
		src := micropacket.NodeID(i)
		pump(k, st[i], 100, func(j int) *micropacket.Packet {
			return micropacket.NewData(src, micropacket.Broadcast, uint8(j), nil)
		})
	}
	k.Run()
	if net.Drops.N != 0 {
		t.Fatalf("drops with threshold 8 = %d", net.Drops.N)
	}
}
