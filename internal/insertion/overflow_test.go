package insertion

import (
	"testing"

	"repro/internal/micropacket"
	"repro/internal/phys"
	"repro/internal/sim"
)

// Regression for the uint8 hop-counter overflow: on a >255-node ring
// the seed's `MaxHops uint8` (and `Frame.Hops uint8`) expired every
// broadcast at hop 255, so nodes past the ceiling silently never heard
// it. With uint16 counters and a topology-scaled budget the broadcast
// must complete a full tour: every other node delivers it and the
// source strips it.
func TestBroadcastToursRingPast255Nodes(t *testing.T) {
	const n = 300
	k := sim.NewKernel(1)
	net := phys.NewNet(k)
	cluster, err := phys.BuildFabric(net, phys.Uniform(n, 1, 5))
	if err != nil {
		t.Fatal(err)
	}
	stations := make([]*Station, n)
	for i := 0; i < n; i++ {
		stations[i] = NewStation(k, micropacket.NodeID(i), cluster.NodePorts[i])
		stations[i].MaxHops = MaxHopsFor(n)
		stations[i].SetEgress(0)
		cluster.Switches[0].SetRoute(i, (i+1)%n)
	}
	if !stations[0].Send(micropacket.NewData(0, micropacket.Broadcast, 1, []byte{42})) {
		t.Fatal("send refused")
	}
	k.Run()

	for i := 1; i < n; i++ {
		if stations[i].Delivered != 1 {
			t.Fatalf("node %d delivered %d broadcasts, want 1 (tour died at hop %d?)",
				i, stations[i].Delivered, i)
		}
	}
	if stations[0].Stripped != 1 {
		t.Fatalf("source stripped %d, want 1 (broadcast did not complete the tour)", stations[0].Stripped)
	}
	for i := 0; i < n; i++ {
		if stations[i].Expired != 0 {
			t.Fatalf("node %d expired %d transit frames on a healthy ring", i, stations[i].Expired)
		}
	}
	if net.Drops.N != 0 {
		t.Fatalf("congestion drops: %d", net.Drops.N)
	}
}

// MaxHopsFor pins the budget rule: the historical 255 for every ring
// the v1 address space could build (bit-compatible with the seed —
// reports of ≤255-node fabrics must not change), twice the
// circumference past the ceiling, capped at the counter range.
func TestMaxHopsFor(t *testing.T) {
	cases := []struct {
		nodes int
		want  uint16
	}{
		{1, 255}, {6, 255}, {127, 255}, {200, 255}, {255, 255},
		{256, 512}, {300, 600}, {1024, 2048}, {40000, 65535}, {65535, 65535},
	}
	for _, c := range cases {
		if got := MaxHopsFor(c.nodes); got != c.want {
			t.Errorf("MaxHopsFor(%d) = %d, want %d", c.nodes, got, c.want)
		}
	}
}
