// Package insertion implements AmpNet's MAC layer: a variant of a
// register insertion ring (paper, slide 8).
//
// Each node (Station) sits on the current logical ring with one ingress
// and one egress hop. Ring traffic passing through the node has absolute
// priority; the node may insert its own MicroPackets only when its
// egress path is sufficiently idle (the insertion register rule), and it
// adapts its contribution to the total flow by watching its local view
// of the ring — the occupancy of its own transit path — exactly as
// slide 8 describes:
//
//	"Each node monitors its local view of the network and can increase
//	 or decrease its contribution to the total flow accordingly. Even if
//	 everyone does a broadcast at the same time (all-to-all broadcast)
//	 the network is guaranteed to not drop packets."
//
// The losslessness guarantee holds because (a) transit traffic is never
// displaced by insertion, (b) insertion requires the egress queue to be
// at or below InsertThreshold, and (c) a ring node has exactly one
// upstream link, so transit arrivals can never exceed the line rate that
// the egress serializes at. The experiments assert phys.Net.Drops == 0
// under saturating all-to-all broadcast (experiment E4).
//
// Stripping rules: the destination strips unicast MicroPackets (allowing
// spatial reuse — slide 7's multiple simultaneous streams); the source
// strips its own broadcasts after a full tour.
package insertion

import (
	"repro/internal/frameacct"
	"repro/internal/micropacket"
	"repro/internal/phys"
	"repro/internal/sim"
)

// Defaults for station tuning.
const (
	// DefaultForwardDelay models the insertion-register latency of the
	// transit path (about four byte times).
	DefaultForwardDelay = 40 * sim.Nanosecond
	// DefaultInsertThreshold: insert only when the egress FIFO is empty.
	DefaultInsertThreshold = 0
	// DefaultInsertQueue is the host-side insertion queue depth; a full
	// queue pushes back on the host (Refused), never onto the wire.
	DefaultInsertQueue = 256
	// DefaultBasePace is the minimum spacing between insertion attempts
	// when the ring looks idle.
	DefaultBasePace = 0
	// DefaultMaxPace bounds the adaptive backoff.
	DefaultMaxPace = 50 * sim.Microsecond
	// paceStep is the initial backoff when the local view is congested.
	paceStep = 500 * sim.Nanosecond
	// DefaultMaxHops is the transit hop budget for stations built
	// without topology knowledge — the historical value, enough for
	// any ≤255-node ring. Stacks that know the fabric size scale it
	// with MaxHopsFor: the budget must exceed the ring circumference
	// (a broadcast legitimately crosses every hop) but stay small
	// enough to expire transition-time loops promptly — the expiry is
	// part of the deterministic model, so serial and sharded engines
	// cut a loop at exactly the same hop.
	DefaultMaxHops = 255
)

// MaxHopsFor returns the transit hop budget for a fabric of the given
// node count. Every fabric the one-byte address space could build
// (≤255 nodes) keeps the historical 255 bit for bit — their reports
// must not change under this PR — and only fabrics beyond the v1
// ceiling scale up, to twice the ring circumference (room for a full
// broadcast tour plus mid-heal detours), capped at the counter range.
func MaxHopsFor(nodes int) uint16 {
	if nodes <= DefaultMaxHops {
		return DefaultMaxHops
	}
	h := 2 * nodes
	if h > 65535 {
		return 65535
	}
	return uint16(h)
}

// Station is one node's MAC engine.
type Station struct {
	ID micropacket.NodeID
	K  *sim.Kernel

	// Ports are the node's physical ports, indexed by switch.
	Ports []*phys.Port
	// net is the Net the ports live on; frames are sized under its
	// wire-format version.
	net *phys.Net

	egress       *phys.Port
	egressSwitch int

	// InsertThreshold is the maximum egress queue length at which the
	// station may still insert its own traffic.
	InsertThreshold int
	// ForwardDelay is the transit-path latency through the node.
	ForwardDelay sim.Time
	// MaxInsertQueue bounds the host insertion queue.
	MaxInsertQueue int
	// MaxHops expires transit frames after this many forwards,
	// protecting against transient loops while rosters converge. It
	// must exceed the largest possible ring circumference (a broadcast
	// legitimately crosses every hop of the ring), so it is as wide as
	// the node address space: the historical uint8 counter silently
	// expired broadcasts on >255-node rings.
	MaxHops uint16

	// OnDeliver receives MicroPackets addressed to (or broadcast past)
	// this node.
	OnDeliver func(*micropacket.Packet)
	// OnControl receives Rostering MicroPackets; they do not transit
	// the ring MAC (the rostering agent floods them itself).
	OnControl func(*phys.Port, phys.Frame)
	// OnStatus receives port status changes (loss of light / re-light).
	OnStatus func(*phys.Port, bool)

	// LastRx is the time the station last saw any frame arrive on any
	// of its ports — the ring-liveness signal the rostering watchdog
	// uses to detect a dead upstream hop (a node failure leaves all
	// fibers lit, so loss-of-light alone cannot catch it).
	LastRx sim.Time

	insertQ []phys.Frame
	pace    sim.Time
	paceTmr *sim.Timer

	// fwdFree pools transit-forward events: the per-forward closure +
	// Timer pair was a top allocation site at scale. Records are only
	// touched from this station's kernel context.
	fwdFree []*fwdEvent

	// Local-view congestion estimate: EWMA of egress queue occupancy
	// sampled at each transit forward, scaled ×16 fixed point.
	viewX16 int

	// Counters.
	Inserted  uint64 // own frames put on the ring
	Forwarded uint64 // transit frames passed through
	Delivered uint64 // frames handed to OnDeliver
	Stripped  uint64 // own broadcasts removed after a full tour
	Refused   uint64 // host sends rejected (queue full) — backpressure
	Unrouted  uint64 // transit frames with no egress (mid-rostering)
	Expired   uint64 // transit frames that exceeded MaxHops
}

// NewStation creates a station owning the given ports (one per switch)
// and installs itself as their frame/status handler.
func NewStation(k *sim.Kernel, id micropacket.NodeID, ports []*phys.Port) *Station {
	s := &Station{
		ID: id, K: k, Ports: ports,
		InsertThreshold: DefaultInsertThreshold,
		ForwardDelay:    DefaultForwardDelay,
		MaxInsertQueue:  DefaultInsertQueue,
		MaxHops:         DefaultMaxHops,
		egressSwitch:    -1,
	}
	for _, p := range ports {
		if p == nil {
			continue // the topology does not attach this node there
		}
		if s.net == nil {
			s.net = p.Net()
		}
		p.SetHandler(s.handleFrame)
		p.SetStatusHandler(func(port *phys.Port, up bool) {
			if s.OnStatus != nil {
				s.OnStatus(port, up)
			}
		})
		p.SetTxDone(s.tryInsert)
	}
	return s
}

// SetEgress programs the station's ring egress: frames leave via the
// port facing switch sw. Pass sw < 0 to detach from the ring.
func (s *Station) SetEgress(sw int) {
	if sw < 0 {
		s.egress = nil
		s.egressSwitch = -1
		return
	}
	s.egress = s.Ports[sw]
	s.egressSwitch = sw
	s.tryInsert()
}

// EgressSwitch returns the switch index of the current egress, or -1.
func (s *Station) EgressSwitch() int { return s.egressSwitch }

// Net returns the phys.Net the station's ports live on (and thereby the
// frame-accounting ledger its MAC decisions are counted in).
func (s *Station) Net() *phys.Net { return s.net }

// OnRing reports whether the station currently has a ring egress.
func (s *Station) OnRing() bool { return s.egress != nil }

// QueueLen returns the host insertion queue length.
func (s *Station) QueueLen() int { return len(s.insertQ) }

// LocalView returns the station's current congestion estimate (EWMA of
// egress occupancy; 0 = idle ring).
func (s *Station) LocalView() float64 { return float64(s.viewX16) / 16 }

// Send enqueues a host MicroPacket for insertion onto the ring. It
// returns false (backpressure) when the insertion queue is full or the
// station is off-ring.
func (s *Station) Send(p *micropacket.Packet) bool {
	if s.egress == nil || len(s.insertQ) >= s.MaxInsertQueue {
		s.Refused++
		return false
	}
	s.insertQ = append(s.insertQ, s.net.NewFrame(p))
	s.tryInsert()
	return true
}

// tryInsert inserts the head host frame if the MAC rules allow it now,
// otherwise arms the adaptive pacing timer.
func (s *Station) tryInsert() {
	if s.egress == nil || len(s.insertQ) == 0 {
		return
	}
	if s.egress.QueueLen() <= s.InsertThreshold {
		// The egress is idle: insert now, even if a paced retry was
		// pending (a tx completion beat the timer to the opportunity).
		if s.paceTmr != nil {
			s.paceTmr.Cancel()
			s.paceTmr = nil
		}
		f := s.insertQ[0]
		s.insertQ = s.insertQ[1:]
		if s.egress.Send(f) {
			s.Inserted++
		}
		// Ring looks usable from here: relax the pace.
		s.pace /= 2
		if s.pace < DefaultBasePace {
			s.pace = DefaultBasePace
		}
		return
	}
	if s.paceTmr != nil && s.paceTmr.Active() {
		return // a paced attempt is already scheduled
	}
	// Local view says the ring is busy: back off and retry later.
	if s.pace == 0 {
		s.pace = paceStep
	} else {
		s.pace *= 2
		if s.pace > DefaultMaxPace {
			s.pace = DefaultMaxPace
		}
	}
	s.paceTmr = s.K.After(s.pace, func() { s.tryInsert() })
}

// KeepaliveTag marks Diagnostic MicroPackets used as ring keepalives;
// they refresh LastRx and are stripped without host delivery.
const KeepaliveTag = 0xA5

// handleFrame implements the ring forwarding rules.
func (s *Station) handleFrame(port *phys.Port, f phys.Frame) {
	s.LastRx = s.K.Now()
	pkt := f.Pkt
	if pkt.Type == micropacket.TypeRostering {
		if s.OnControl != nil {
			s.OnControl(port, f) // the agent accounts the frame's fate
		} else {
			s.net.Acct.Lose(frameacct.LossNoHandler)
		}
		return
	}
	if pkt.Type == micropacket.TypeDiagnostic && pkt.Tag == KeepaliveTag && pkt.Dst == s.ID {
		// Liveness already recorded; strip silently.
		s.net.Acct.Consume(frameacct.ConsumeKeepalive)
		return
	}
	switch {
	case pkt.IsBroadcast() && pkt.Src == s.ID:
		// Our broadcast completed a full tour: strip it.
		s.Stripped++
		s.net.Acct.Consume(frameacct.ConsumeBroadcastStrip)
		return
	case pkt.IsBroadcast():
		// The host observes a copy; the frame itself continues its tour
		// (its ledger fate is decided by forward).
		s.Delivered++
		s.net.Acct.HostCopy()
		if s.OnDeliver != nil {
			s.OnDeliver(pkt)
		}
		s.forward(f)
	case pkt.Dst == s.ID:
		// Destination strip: unicast leaves the ring here.
		s.Delivered++
		s.net.Acct.Consume(frameacct.ConsumeHost)
		if s.OnDeliver != nil {
			s.OnDeliver(pkt)
		}
	default:
		s.forward(f)
	}
}

// fwdEvent is one pooled transit-forward: dispatch recycles the record
// before sending, so a steady-state forward allocates nothing.
type fwdEvent struct {
	s   *Station
	f   phys.Frame
	run func()
}

func (e *fwdEvent) dispatch() {
	s, f := e.s, e.f
	e.s, e.f = nil, phys.Frame{}
	s.fwdFree = append(s.fwdFree, e)
	s.net.Acct.Exit()
	if s.egress == nil {
		s.Unrouted++
		s.net.Acct.Lose(frameacct.LossUnroutedTransit)
		return
	}
	s.Forwarded++
	s.net.Acct.Relaunch()
	s.egress.Send(f)
}

// forward sends a transit frame out the egress after the insertion
// register delay. Transit traffic has priority by construction: it is
// enqueued unconditionally, whereas insertion checks occupancy first.
func (s *Station) forward(f phys.Frame) {
	if s.egress == nil {
		s.Unrouted++
		s.net.Acct.Lose(frameacct.LossUnroutedTransit)
		return
	}
	if f.Hops >= s.MaxHops {
		s.Expired++
		s.net.Acct.Lose(frameacct.LossHopExpired)
		return
	}
	f.Hops++
	s.net.Acct.Enter()
	// Update the local view (EWMA with alpha = 1/4, ×16 fixed point).
	occ := s.egress.QueueLen()
	s.viewX16 += (occ*16 - s.viewX16) / 4
	var e *fwdEvent
	if m := len(s.fwdFree); m > 0 {
		e = s.fwdFree[m-1]
		s.fwdFree = s.fwdFree[:m-1]
	} else {
		e = &fwdEvent{}
		e.run = e.dispatch
	}
	e.s, e.f = s, f
	s.K.Do(s.K.Now()+s.ForwardDelay, e.run)
}
