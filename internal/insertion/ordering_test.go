package insertion

import (
	"testing"

	"repro/internal/micropacket"
	"repro/internal/sim"
)

// TestPerSourceFIFOUnderLoad: the ring preserves per-source delivery
// order even when every node inserts concurrently — the property the
// cache replication protocol (head→data→tail) depends on.
func TestPerSourceFIFOUnderLoad(t *testing.T) {
	const n, per = 6, 80
	k, net, _, st := buildRing(n)
	// lastSeen[dst][src] tracks the last tag delivered.
	lastSeen := make([]map[micropacket.NodeID]int, n)
	for i := range lastSeen {
		lastSeen[i] = map[micropacket.NodeID]int{}
	}
	for i := range st {
		i := i
		st[i].OnDeliver = func(p *micropacket.Packet) {
			prev, ok := lastSeen[i][p.Src]
			if ok && int(p.Tag) != prev+1 {
				t.Errorf("node %d: src %d out of order: %d after %d", i, p.Src, p.Tag, prev)
			}
			lastSeen[i][p.Src] = int(p.Tag)
		}
	}
	for i := 0; i < n; i++ {
		src := micropacket.NodeID(i)
		pump(k, st[i], per, func(j int) *micropacket.Packet {
			return micropacket.NewData(src, micropacket.Broadcast, uint8(j), nil)
		})
	}
	k.Run()
	if net.Drops.N != 0 {
		t.Fatalf("drops = %d", net.Drops.N)
	}
	for i := range lastSeen {
		for src, last := range lastSeen[i] {
			if last != per-1 {
				t.Fatalf("node %d saw only %d/%d from %d", i, last+1, per, src)
			}
		}
	}
}

// TestPaceRelaxesWhenRingClears: after contention ends, the adaptive
// pace decays and insertion returns to back-to-back operation.
func TestPaceRelaxesWhenRingClears(t *testing.T) {
	const n = 4
	k, _, _, st := buildRing(n)
	collect(st)
	// Phase 1: saturate.
	for i := 0; i < n; i++ {
		src := micropacket.NodeID(i)
		pump(k, st[i], 100, func(j int) *micropacket.Packet {
			return micropacket.NewData(src, micropacket.Broadcast, uint8(j), nil)
		})
	}
	k.Run()
	// Phase 2: a single node sends a quiet burst; completion must be
	// near line rate (no residual pacing penalty).
	start := k.Now()
	done := 0
	st[1].OnDeliver = func(*micropacket.Packet) { done++ }
	for j := 0; j < 50; j++ {
		if !st[0].Send(micropacket.NewData(0, 1, uint8(j), nil)) {
			t.Fatal("send refused on idle ring")
		}
	}
	k.Run()
	if done != 50 {
		t.Fatalf("delivered %d/50", done)
	}
	el := k.Now() - start
	// 50 frames × ~301 ns serialization + one hop of latency: anything
	// over ~3× that budget means the pace did not decay.
	budget := 3 * (50*sim.Time(310) + 2*sim.Microsecond)
	if el > budget {
		t.Fatalf("quiet burst took %v (budget %v): pacing did not relax", el, budget)
	}
}

// TestLosslessAcrossFIFOSizes: the zero-drop guarantee holds for any
// sane egress FIFO capacity.
func TestLosslessAcrossFIFOSizes(t *testing.T) {
	for _, cap := range []int{4, 8, 64} {
		const n, per = 5, 40
		k, net, _, st := buildRing(n)
		for i := range st {
			for _, p := range st[i].Ports {
				p.SetCapacity(cap)
			}
		}
		collect(st)
		for i := 0; i < n; i++ {
			src := micropacket.NodeID(i)
			pump(k, st[i], per, func(j int) *micropacket.Packet {
				return micropacket.NewData(src, micropacket.Broadcast, uint8(j), nil)
			})
		}
		k.Run()
		if net.Drops.N != 0 {
			t.Fatalf("cap %d: drops = %d", cap, net.Drops.N)
		}
	}
}
