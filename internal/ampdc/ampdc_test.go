package ampdc

import (
	"bytes"
	"testing"

	"repro/internal/ampdk"
	"repro/internal/micropacket"
	"repro/internal/phys"
	"repro/internal/sim"
)

type rig struct {
	k     *sim.Kernel
	net   *phys.Net
	nodes []*ampdk.Node
	svcs  []*Services
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	k := sim.NewKernel(1)
	net := phys.NewNet(k)
	c := phys.BuildCluster(net, n, 2, 50)
	r := &rig{k: k, net: net}
	for i := 0; i < n; i++ {
		nd := ampdk.NewNode(k, c, ampdk.Config{ID: i})
		r.nodes = append(r.nodes, nd)
		r.svcs = append(r.svcs, New(nd))
	}
	for _, nd := range r.nodes {
		nd := nd
		k.After(0, func() { nd.Boot() })
	}
	r.run(20 * sim.Millisecond)
	for i, nd := range r.nodes {
		if !nd.Online() {
			t.Fatalf("node %d offline", i)
		}
	}
	return r
}

func (r *rig) run(d sim.Time) { r.k.RunUntil(r.k.Now() + d) }

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*13 + 5)
	}
	return b
}

// --- AmpSubscribe ---

func TestPubSubSmallMessage(t *testing.T) {
	r := newRig(t, 3)
	var got [][]byte
	var from []micropacket.NodeID
	r.svcs[2].Sub.Subscribe(7, func(src micropacket.NodeID, data []byte) {
		got = append(got, data)
		from = append(from, src)
	})
	r.k.After(0, func() { r.svcs[0].Sub.Publish(7, []byte("hello")) })
	r.run(5 * sim.Millisecond)
	if len(got) != 1 || string(got[0]) != "hello" || from[0] != 0 {
		t.Fatalf("got %q from %v", got, from)
	}
}

func TestPubSubLargeMessageReassembled(t *testing.T) {
	r := newRig(t, 2)
	big := pattern(1000) // 16 segments
	var got []byte
	r.svcs[1].Sub.Subscribe(1, func(_ micropacket.NodeID, data []byte) { got = data })
	r.k.After(0, func() { r.svcs[0].Sub.Publish(1, big) })
	r.run(10 * sim.Millisecond)
	if !bytes.Equal(got, big) {
		t.Fatalf("reassembly failed: %d bytes", len(got))
	}
}

func TestPubSubLocalLoopback(t *testing.T) {
	r := newRig(t, 2)
	localGot := 0
	r.svcs[0].Sub.Subscribe(3, func(_ micropacket.NodeID, _ []byte) { localGot++ })
	r.k.After(0, func() { r.svcs[0].Sub.Publish(3, []byte("x")) })
	r.run(5 * sim.Millisecond)
	if localGot != 1 {
		t.Fatalf("local deliveries = %d", localGot)
	}
}

func TestPubSubTopicsIsolated(t *testing.T) {
	r := newRig(t, 2)
	var topicA, topicB int
	r.svcs[1].Sub.Subscribe(10, func(_ micropacket.NodeID, _ []byte) { topicA++ })
	r.svcs[1].Sub.Subscribe(11, func(_ micropacket.NodeID, _ []byte) { topicB++ })
	r.k.After(0, func() {
		r.svcs[0].Sub.Publish(10, []byte("a"))
		r.svcs[0].Sub.Publish(10, []byte("a"))
		r.svcs[0].Sub.Publish(11, []byte("b"))
	})
	r.run(5 * sim.Millisecond)
	if topicA != 2 || topicB != 1 {
		t.Fatalf("topicA=%d topicB=%d", topicA, topicB)
	}
}

func TestPubSubManyToMany(t *testing.T) {
	const n = 4
	r := newRig(t, n)
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		r.svcs[i].Sub.Subscribe(1, func(_ micropacket.NodeID, _ []byte) { counts[i]++ })
	}
	r.k.After(0, func() {
		for i := 0; i < n; i++ {
			r.svcs[i].Sub.Publish(1, pattern(100))
		}
	})
	r.run(10 * sim.Millisecond)
	for i, c := range counts {
		if c != n {
			t.Fatalf("node %d received %d, want %d", i, c, n)
		}
	}
}

// --- AmpFiles ---

func TestFileTransfer(t *testing.T) {
	r := newRig(t, 3)
	content := pattern(5000)
	var gotName string
	var gotData []byte
	gotOK := false
	r.svcs[2].Files.OnFile = func(src micropacket.NodeID, name string, data []byte, ok bool) {
		gotName, gotData, gotOK = name, data, ok
	}
	r.k.After(0, func() {
		if err := r.svcs[0].Files.Send(2, "results.dat", content, nil); err != nil {
			t.Error(err)
		}
	})
	r.run(20 * sim.Millisecond)
	if !gotOK {
		t.Fatal("file corrupt or missing")
	}
	if gotName != "results.dat" || !bytes.Equal(gotData, content) {
		t.Fatalf("file mismatch: %q %d bytes", gotName, len(gotData))
	}
}

func TestFileEmptyAndNameEdge(t *testing.T) {
	r := newRig(t, 2)
	ok := false
	r.svcs[1].Files.OnFile = func(_ micropacket.NodeID, name string, data []byte, good bool) {
		ok = good && name == "" && len(data) == 0
	}
	r.k.After(0, func() { r.svcs[0].Files.Send(1, "", nil, nil) })
	r.run(10 * sim.Millisecond)
	if !ok {
		t.Fatal("empty file transfer failed")
	}
}

func TestFileNameTooLong(t *testing.T) {
	r := newRig(t, 2)
	if err := r.svcs[0].Files.Send(1, string(make([]byte, 300)), nil, nil); err == nil {
		t.Fatal("oversized name accepted")
	}
}

func TestFileCorruptionDetected(t *testing.T) {
	r := newRig(t, 2)
	// Deliver a frame with a bad CRC directly.
	var ok = true
	r.svcs[1].Files.OnFile = func(_ micropacket.NodeID, _ string, _ []byte, good bool) { ok = good }
	frame := []byte{filesMagic, 1, 'x', 4, 0, 0, 0, 0xBA, 0xD0, 0xBA, 0xD0, 1, 2, 3, 4}
	r.svcs[1].Files.handleDMA(0, micropacket.DMAHeader{}, frame, true)
	if ok {
		t.Fatal("CRC corruption not detected")
	}
	if r.svcs[1].Files.Corrupt != 1 {
		t.Fatal("corrupt counter")
	}
}

func TestParseFileFraming(t *testing.T) {
	if _, _, ok := parseFile(nil); ok {
		t.Fatal("nil parsed")
	}
	if _, _, ok := parseFile([]byte{1, 2, 3}); ok {
		t.Fatal("short parsed")
	}
	if _, _, ok := parseFile(append([]byte{filesMagic, 200}, make([]byte, 20)...)); ok {
		t.Fatal("bad namelen parsed")
	}
}

// TestSlide7FilesAndMessagesConcurrently: a file stream and a pub/sub
// message stream share the segment; both make progress (slide 7).
func TestSlide7FilesAndMessagesConcurrently(t *testing.T) {
	r := newRig(t, 4)
	fileDone := false
	msgs := 0
	r.svcs[1].Files.OnFile = func(_ micropacket.NodeID, _ string, _ []byte, ok bool) { fileDone = ok }
	r.svcs[3].Sub.Subscribe(5, func(_ micropacket.NodeID, _ []byte) { msgs++ })
	var fileAt sim.Time
	r.svcs[1].Files.OnFile = func(_ micropacket.NodeID, _ string, _ []byte, ok bool) {
		fileDone = ok
		fileAt = r.k.Now()
	}
	r.k.After(0, func() {
		r.svcs[0].Files.Send(1, "big.bin", pattern(40*1024), nil)
		var tick func()
		n := 0
		tick = func() {
			if n < 50 {
				r.svcs[2].Sub.Publish(5, pattern(64))
				n++
				r.k.After(20*sim.Microsecond, tick)
			}
		}
		tick()
	})
	r.run(100 * sim.Millisecond)
	if !fileDone {
		t.Fatal("file did not complete")
	}
	if msgs != 50 {
		t.Fatalf("messages delivered = %d, want 50", msgs)
	}
	if fileAt == 0 {
		t.Fatal("no file completion time")
	}
	if r.net.Drops.N != 0 {
		t.Fatalf("drops = %d", r.net.Drops.N)
	}
}

// --- AmpThreads ---

func TestRemoteCall(t *testing.T) {
	r := newRig(t, 2)
	r.svcs[1].Threads.Register(1, func(arg uint32) uint32 { return arg * 2 })
	var res uint32
	okCall := false
	r.k.After(0, func() {
		r.svcs[0].Threads.Call(1, 1, 21, func(v uint32, ok bool) { res, okCall = v, ok })
	})
	r.run(5 * sim.Millisecond)
	if !okCall || res != 42 {
		t.Fatalf("call = %d ok=%v", res, okCall)
	}
	if r.svcs[1].Threads.Served != 1 {
		t.Fatal("served counter")
	}
}

func TestRemoteCallUnknownFunction(t *testing.T) {
	r := newRig(t, 2)
	okCall := true
	r.k.After(0, func() {
		r.svcs[0].Threads.Call(1, 99, 0, func(_ uint32, ok bool) { okCall = ok })
	})
	r.run(5 * sim.Millisecond)
	if okCall {
		t.Fatal("unknown function reported ok")
	}
}

func TestManyOutstandingCalls(t *testing.T) {
	r := newRig(t, 3)
	r.svcs[2].Threads.Register(1, func(arg uint32) uint32 { return arg + 1 })
	results := map[uint32]uint32{}
	r.k.After(0, func() {
		for i := uint32(0); i < 50; i++ {
			i := i
			r.svcs[0].Threads.Call(2, 1, i, func(v uint32, ok bool) {
				if ok {
					results[i] = v
				}
			})
		}
	})
	r.run(20 * sim.Millisecond)
	if len(results) != 50 {
		t.Fatalf("resolved %d/50 calls", len(results))
	}
	for i, v := range results {
		if v != i+1 {
			t.Fatalf("call %d = %d", i, v)
		}
	}
}

func TestUnclaimedMessagesPassThrough(t *testing.T) {
	r := newRig(t, 2)
	var got uint8
	r.svcs[1].OnMessage = func(_ micropacket.NodeID, tag uint8, _ [8]byte) { got = tag }
	r.k.After(0, func() { r.nodes[0].SendMessage(1, ampdk.TagApp+9, []byte{1}) })
	r.run(5 * sim.Millisecond)
	if got != ampdk.TagApp+9 {
		t.Fatalf("pass-through tag = %d", got)
	}
}
