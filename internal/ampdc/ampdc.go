// Package ampdc implements the AmpDC host services of the paper's
// software stack (slide 12): AmpSubscribe (publish/subscribe),
// AmpFiles (file transfer over DMA channels), and AmpThreads (remote
// procedure placement), all running over the AmpDK kernel and its
// registered-memory DMA channels.
//
// Slide 7's motivating picture — one node inserting a file stream while
// another inserts message streams onto the same segment — is exactly
// AmpFiles and AmpSubscribe running concurrently; experiment E3
// reproduces it with these services.
package ampdc

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/ampdk"

	"repro/internal/micropacket"
)

// Service wire constants: DMA channels and pseudo-regions used by the
// services (cache regions are < 0x80; registered app regions above).
const (
	SubChannel   = 13
	FilesChannel = 12
	SubRegion    = 0xE0
	FilesRegion  = 0xF0

	TagThreadReq = ampdk.TagApp + 0x01
	TagThreadRep = ampdk.TagApp + 0x02
)

// Services bundles the AmpDC services on one node and owns the node's
// message/region demultiplexing for them.
type Services struct {
	Node    *ampdk.Node
	Sub     *Subscribe
	Files   *Files
	Threads *Threads

	// OnMessage receives application messages not claimed by AmpDC.
	OnMessage func(src micropacket.NodeID, tag uint8, payload [8]byte)
}

// New attaches the AmpDC services to a node.
func New(n *ampdk.Node) *Services {
	s := &Services{Node: n}
	s.Sub = newSubscribe(s)
	s.Files = newFiles(s)
	s.Threads = newThreads(s)
	n.RegionHandler[SubRegion] = s.Sub.handleDMA
	n.RegionHandler[FilesRegion] = s.Files.handleDMA
	prev := n.OnMessage
	n.OnMessage = func(src micropacket.NodeID, tag uint8, pl [8]byte) {
		switch tag {
		case TagThreadReq:
			s.Threads.handleReq(src, pl)
		case TagThreadRep:
			s.Threads.handleRep(src, pl)
		default:
			if s.OnMessage != nil {
				s.OnMessage(src, tag, pl)
			} else if prev != nil {
				prev(src, tag, pl)
			}
		}
	}
	return s
}

// --- AmpSubscribe ---

// Subscribe is topic-based publish/subscribe: published payloads are
// broadcast on a dedicated DMA channel and delivered to every
// subscriber on every node (including the publisher's own node).
type Subscribe struct {
	svc  *Services
	subs map[uint8][]func(src micropacket.NodeID, data []byte)
	// assembly buffers per (source, topic) for multi-segment payloads.
	asm map[asmKey][]byte

	// Published and Delivered count messages.
	Published uint64
	Delivered uint64
}

type asmKey struct {
	src   micropacket.NodeID
	topic uint8
}

func newSubscribe(svc *Services) *Subscribe {
	return &Subscribe{svc: svc, subs: map[uint8][]func(micropacket.NodeID, []byte){}, asm: map[asmKey][]byte{}}
}

// Subscribe registers cb for a topic.
func (s *Subscribe) Subscribe(topic uint8, cb func(src micropacket.NodeID, data []byte)) {
	s.subs[topic] = append(s.subs[topic], cb)
}

// Publish broadcasts data on the topic. Payloads of any length are
// segmented by the DMA engine; subscribers receive them reassembled.
// Local subscribers are delivered immediately (host loopback).
func (s *Subscribe) Publish(topic uint8, data []byte) {
	s.Published++
	// The topic travels in the DMA offset's high byte... the offset
	// carries the running byte position so segments reassemble; topic
	// uses the Region-adjacent addressing: offset = topic<<24 | pos.
	s.svc.Node.DMA.Write(SubChannel, micropacket.Broadcast, SubRegion, uint32(topic)<<24, data, nil)
	s.deliver(micropacket.NodeID(s.svc.Node.Cfg.ID), topic, data)
}

func (s *Subscribe) handleDMA(src micropacket.NodeID, hdr micropacket.DMAHeader, data []byte, last bool) {
	topic := uint8(hdr.Offset >> 24)
	k := asmKey{src, topic}
	s.asm[k] = append(s.asm[k], data...)
	if last {
		buf := s.asm[k]
		delete(s.asm, k)
		s.deliver(src, topic, buf)
	}
}

func (s *Subscribe) deliver(src micropacket.NodeID, topic uint8, data []byte) {
	for _, cb := range s.subs[topic] {
		s.Delivered++
		cb(src, data)
	}
}

// --- AmpFiles ---

// Files transfers named byte blobs over a dedicated DMA channel with a
// trailing CRC-32 integrity check.
type Files struct {
	svc *Services
	// OnFile receives completed transfers. ok is false on a CRC or
	// framing failure (the transfer is delivered for diagnosis).
	OnFile func(src micropacket.NodeID, name string, data []byte, ok bool)

	asm map[micropacket.NodeID][]byte

	// Sent/Received/Corrupt count transfers.
	Sent     uint64
	Received uint64
	Corrupt  uint64
}

func newFiles(svc *Services) *Files {
	return &Files{svc: svc, asm: map[micropacket.NodeID][]byte{}}
}

const filesMagic = 0xF7

// Send transfers a named file to dst. done, if non-nil, runs when the
// final segment has been queued to the MAC.
func (f *Files) Send(dst micropacket.NodeID, name string, data []byte, done func()) error {
	if len(name) > 255 {
		return fmt.Errorf("ampdc: file name too long")
	}
	// Frame: magic(1) nameLen(1) name size(4) crc(4) payload.
	buf := make([]byte, 0, 10+len(name)+len(data))
	buf = append(buf, filesMagic, byte(len(name)))
	buf = append(buf, name...)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(data)))
	buf = append(buf, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(data))
	buf = append(buf, u32[:]...)
	buf = append(buf, data...)
	f.Sent++
	f.svc.Node.DMA.Write(FilesChannel, dst, FilesRegion, 0, buf, done)
	return nil
}

func (f *Files) handleDMA(src micropacket.NodeID, hdr micropacket.DMAHeader, data []byte, last bool) {
	f.asm[src] = append(f.asm[src], data...)
	if !last {
		return
	}
	buf := f.asm[src]
	delete(f.asm, src)
	f.Received++
	name, payload, ok := parseFile(buf)
	if !ok {
		f.Corrupt++
	}
	if f.OnFile != nil {
		f.OnFile(src, name, payload, ok)
	}
}

func parseFile(buf []byte) (name string, data []byte, ok bool) {
	if len(buf) < 10 || buf[0] != filesMagic {
		return "", nil, false
	}
	nameLen := int(buf[1])
	if len(buf) < 10+nameLen {
		return "", nil, false
	}
	name = string(buf[2 : 2+nameLen])
	size := binary.LittleEndian.Uint32(buf[2+nameLen:])
	wantCRC := binary.LittleEndian.Uint32(buf[6+nameLen:])
	data = buf[10+nameLen:]
	if uint32(len(data)) != size {
		return name, data, false
	}
	return name, data, crc32.ChecksumIEEE(data) == wantCRC
}

// --- AmpThreads ---

// Handler is a remotely invocable function: arg in, result out.
type Handler func(arg uint32) uint32

// Threads places procedure calls on remote nodes ("supports embedded
// multi-threaded application processes", slide 17): the callee runs the
// registered handler and returns the result.
type Threads struct {
	svc      *Services
	handlers map[uint8]Handler
	pending  map[uint8]func(uint32, bool)
	nextReq  uint8

	// Calls and Served count outgoing and incoming invocations.
	Calls  uint64
	Served uint64
}

func newThreads(svc *Services) *Threads {
	return &Threads{svc: svc, handlers: map[uint8]Handler{}, pending: map[uint8]func(uint32, bool){}}
}

// Register installs fn as the handler for function id.
func (t *Threads) Register(fn uint8, h Handler) { t.handlers[fn] = h }

// Call invokes function fn with arg on node dst. reply receives the
// result; ok=false means the callee had no such handler.
func (t *Threads) Call(dst micropacket.NodeID, fn uint8, arg uint32, reply func(result uint32, ok bool)) {
	t.Calls++
	req := t.nextReq
	t.nextReq++
	t.pending[req] = reply
	var pl [8]byte
	pl[0] = fn
	pl[1] = req
	binary.LittleEndian.PutUint32(pl[2:6], arg)
	t.svc.Node.SendMessage(dst, TagThreadReq, pl[:])
}

func (t *Threads) handleReq(src micropacket.NodeID, pl [8]byte) {
	fn, req := pl[0], pl[1]
	arg := binary.LittleEndian.Uint32(pl[2:6])
	var out [8]byte
	out[0] = fn
	out[1] = req
	h, ok := t.handlers[fn]
	if ok {
		t.Served++
		binary.LittleEndian.PutUint32(out[2:6], h(arg))
		out[6] = 1
	}
	t.svc.Node.SendMessage(src, TagThreadRep, out[:])
}

func (t *Threads) handleRep(_ micropacket.NodeID, pl [8]byte) {
	req := pl[1]
	cb, ok := t.pending[req]
	if !ok {
		return
	}
	delete(t.pending, req)
	if cb != nil {
		cb(binary.LittleEndian.Uint32(pl[2:6]), pl[6] == 1)
	}
}
