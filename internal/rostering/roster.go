// Package rostering implements AmpNet's rostering algorithm (paper,
// slides 13, 16, 18):
//
//	"Algorithm starts automatically whenever a failure is detected. A
//	 modified flooding algorithm that explores the network for available
//	 paths and allows the creation of the largest possible logical ring.
//	 Packets are forwarded according to rostering rules. Rostering
//	 completes in two ring-tour times — 1 to 2 milliseconds, depending
//	 on the number of nodes and the length of the fiber."
//
// Every node runs an Agent. When any port sees a status change (loss of
// light detected by the PHY, or light returning), the agent starts a new
// rostering epoch: it floods a link-state announcement — a Rostering
// MicroPacket carrying its identity and its live-switch mask — out every
// live port. Switches flood Rostering MicroPackets on all live ports,
// and nodes re-flood announcements they have not seen, so the
// exploration wave reaches every reachable node over every available
// path. Each node accumulates the announcements into an identical
// link-state database, waits for the exploration to quiesce (the settle
// window, calibrated to the ring-tour time as in the hardware's
// two-wave scheme), deterministically computes the largest logical ring
// the live paths allow, and adopts it: it programs its own ring egress
// and the crossbar route for its hop. Because every node computes the
// same roster from the same database, the ring converges without a
// master.
package rostering

import (
	"fmt"

	"repro/internal/detmap"
	"repro/internal/phys"
	"repro/internal/sim"
)

// Roster is one logical ring: the cyclic node order and, for each hop
// Nodes[i] → Nodes[(i+1) % len], the switch path it crosses. Via[i] is
// the first switch of hop i (the source node's egress switch); Paths[i]
// is the full switch sequence, which has more than one entry when the
// hop heals across inter-switch trunks because the endpoints no longer
// share a live switch.
type Roster struct {
	Epoch uint32
	Nodes []int
	Via   []int
	Paths [][]int
}

// Size returns the number of nodes on the ring.
func (r *Roster) Size() int { return len(r.Nodes) }

// Contains reports whether node id is on the ring.
func (r *Roster) Contains(id int) bool {
	for _, n := range r.Nodes {
		if n == id {
			return true
		}
	}
	return false
}

// IndexOf returns node id's position on the ring, or -1.
func (r *Roster) IndexOf(id int) int {
	for i, n := range r.Nodes {
		if n == id {
			return i
		}
	}
	return -1
}

// Next returns the downstream neighbor of node id and the first switch
// of the hop (the node's egress switch). ok is false if id is not on
// the ring or the ring has a single node.
func (r *Roster) Next(id int) (next, via int, ok bool) {
	i := r.IndexOf(id)
	if i < 0 || len(r.Nodes) < 2 {
		return 0, 0, false
	}
	return r.Nodes[(i+1)%len(r.Nodes)], r.Via[i], true
}

// PathOf returns the full switch path of node id's egress hop, or nil
// when the node is off the ring or the ring has a single node. Rosters
// built before trunks existed carry no Paths; the single via switch is
// returned then.
func (r *Roster) PathOf(id int) []int {
	i := r.IndexOf(id)
	if i < 0 || len(r.Nodes) < 2 {
		return nil
	}
	if i < len(r.Paths) && len(r.Paths[i]) > 0 {
		return r.Paths[i]
	}
	return []int{r.Via[i]}
}

// Equal reports whether two rosters describe the same ring (same
// rotation-normalized order and vias). Epoch is ignored.
func (r *Roster) Equal(o *Roster) bool {
	if o == nil || len(r.Nodes) != len(o.Nodes) {
		return false
	}
	n := len(r.Nodes)
	if n == 0 {
		return true
	}
	// Align on the smallest node id.
	ri, oi := r.minIndex(), o.minIndex()
	for k := 0; k < n; k++ {
		if r.Nodes[(ri+k)%n] != o.Nodes[(oi+k)%n] || r.Via[(ri+k)%n] != o.Via[(oi+k)%n] {
			return false
		}
		rp, op := r.hopPath((ri+k)%n), o.hopPath((oi+k)%n)
		if len(rp) != len(op) {
			return false
		}
		for j := range rp {
			if rp[j] != op[j] {
				return false
			}
		}
	}
	return true
}

// hopPath returns hop i's switch path, defaulting to the single via.
func (r *Roster) hopPath(i int) []int {
	if i < len(r.Paths) && len(r.Paths[i]) > 0 {
		return r.Paths[i]
	}
	if i < len(r.Via) {
		return []int{r.Via[i]}
	}
	return nil
}

func (r *Roster) minIndex() int {
	mi := 0
	for i, n := range r.Nodes {
		if n < r.Nodes[mi] {
			mi = i
		}
	}
	return mi
}

// String renders "0 -s2-> 3 -s0-> 5 -s2-> (0)"; hops healing across
// trunks render the full switch path, e.g. "2 -s1:s3-> 4".
func (r *Roster) String() string {
	if len(r.Nodes) == 0 {
		return "<empty roster>"
	}
	s := fmt.Sprintf("epoch %d: ", r.Epoch)
	for i, n := range r.Nodes {
		if len(r.Via) == len(r.Nodes) {
			s += fmt.Sprintf("%d -s", n)
			for j, sw := range r.hopPath(i) {
				if j > 0 {
					s += fmt.Sprintf(":s%d", sw)
				} else {
					s += fmt.Sprint(sw)
				}
			}
			s += "-> "
		} else {
			s += fmt.Sprintf("%d ", n)
		}
	}
	return s + fmt.Sprintf("(%d)", r.Nodes[0])
}

// LinkState is one node's live-switch bitmask: bit s set means the
// node's link to switch s carries light.
type LinkState uint8

// Has reports whether switch s is live for this node.
func (m LinkState) Has(s int) bool { return m&(1<<s) != 0 }

// common returns the lowest switch index live for both masks, or -1.
func common(a, b LinkState) int {
	c := a & b
	if c == 0 {
		return -1
	}
	for s := 0; s < 8; s++ {
		if c.Has(s) {
			return s
		}
	}
	return -1
}

// BuildRoster deterministically computes the largest logical ring the
// link-state database allows on a trunkless fabric. It is the
// historical entry point; BuildRosterFabric is the general form.
func BuildRoster(epoch uint32, lsdb map[int]LinkState) *Roster {
	return BuildRosterFabric(epoch, lsdb, nil)
}

// BuildRosterFabric deterministically computes the largest logical ring
// the link-state database and the fabric's live trunks allow: nodes are
// inserted in ascending id order into the cycle at the first feasible
// position (both new edges must be routable — a shared live switch, or
// a live trunk path between a switch live at each endpoint), repeating
// until no more nodes fit. Nodes that cannot join remain off the roster
// — the paper's "largest possible logical ring" under damage. Every
// node computes the same result from the same database and fabric view,
// which is what lets rostering converge without a master.
//
// On counter-rotating fabrics the ring orientation follows the lowest
// live switch: when it is odd (the primary ring's switch is gone), the
// node order is reversed, so the backup ring rotates the other way.
func BuildRosterFabric(epoch uint32, lsdb map[int]LinkState, view *phys.FabricView) *Roster {
	ids := make([]int, 0, len(lsdb))
	for _, id := range detmap.SortedKeys(lsdb) {
		if lsdb[id] != 0 {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return &Roster{Epoch: epoch}
	}
	ring := []int{ids[0]}
	pending := append([]int{}, ids[1:]...)
	for progress := true; progress && len(pending) > 0; {
		progress = false
		var left []int
		for _, c := range pending {
			if pos := feasiblePos(ring, c, lsdb, view); pos >= 0 {
				ring = append(ring, 0)
				copy(ring[pos+2:], ring[pos+1:])
				ring[pos+1] = c
				progress = true
			} else {
				left = append(left, c)
			}
		}
		pending = left
	}
	if view != nil && view.CounterRotating && len(ring) >= 3 && lowestLiveSwitch(ring, lsdb)%2 == 1 {
		for i, j := 1, len(ring)-1; i < j; i, j = i+1, j-1 {
			ring[i], ring[j] = ring[j], ring[i]
		}
	}
	r := &Roster{Epoch: epoch, Nodes: ring}
	if len(ring) >= 2 {
		r.Via = make([]int, len(ring))
		r.Paths = make([][]int, len(ring))
		for i := range ring {
			a, b := ring[i], ring[(i+1)%len(ring)]
			path := switchPath(lsdb[a], lsdb[b], view)
			if path == nil {
				// Cannot happen for rings built by feasiblePos, but keep
				// the invariant explicit.
				panic("rostering: ring edge without a switch path")
			}
			r.Via[i] = path[0]
			r.Paths[i] = path
		}
	}
	return r
}

// lowestLiveSwitch returns the lowest switch index live for any ring
// member, or -1 when none is.
func lowestLiveSwitch(ring []int, lsdb map[int]LinkState) int {
	var union LinkState
	for _, id := range ring {
		union |= lsdb[id]
	}
	for s := 0; s < 8; s++ {
		if union.Has(s) {
			return s
		}
	}
	return -1
}

// feasiblePos returns an index i such that candidate c can be inserted
// between ring[i] and ring[i+1] (both new edges must be routable), or
// -1.
func feasiblePos(ring []int, c int, lsdb map[int]LinkState, view *phys.FabricView) int {
	if len(ring) == 1 {
		if routable(lsdb[ring[0]], lsdb[c], view) {
			return 0
		}
		return -1
	}
	for i := range ring {
		a, b := ring[i], ring[(i+1)%len(ring)]
		if routable(lsdb[a], lsdb[c], view) && routable(lsdb[c], lsdb[b], view) {
			return i
		}
	}
	return -1
}

// routable reports whether a hop between nodes with live-switch masks a
// and b can be routed: a shared switch, or a live trunk path.
func routable(a, b LinkState, view *phys.FabricView) bool {
	return switchPath(a, b, view) != nil
}

// switchPath returns the deterministic switch path of a hop between
// masks a and b: the lowest shared live switch when one exists (a
// single-element path — the trunkless behavior), otherwise the
// breadth-first shortest live-trunk path from the lowest feasible
// switch of a to a switch live for b. nil means the hop is unroutable.
func switchPath(a, b LinkState, view *phys.FabricView) []int {
	if s := common(a, b); s >= 0 {
		return []int{s}
	}
	if view == nil || view.TrunkUp == nil {
		return nil
	}
	n := view.Switches
	parent := make([]int, n)
	seen := make([]bool, n)
	var queue []int
	for s := 0; s < n; s++ {
		if a.Has(s) {
			seen[s], parent[s] = true, -1
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for next := 0; next < n; next++ {
			if seen[next] || !view.TrunkUp[cur][next] {
				continue
			}
			seen[next], parent[next] = true, cur
			if b.Has(next) {
				var path []int
				for s := next; s >= 0; s = parent[s] {
					path = append(path, s)
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, next)
		}
	}
	return nil
}

// Valid checks the roster against a link-state database on a trunkless
// fabric: every hop must cross a switch live at both endpoints. See
// ValidInFabric for fabrics with trunks.
func (r *Roster) Valid(lsdb map[int]LinkState) bool {
	return r.ValidInFabric(lsdb, nil)
}

// ValidInFabric checks the roster against a link-state database and a
// fabric view: each hop's path must start at a switch live for the
// source, end at one live for the destination, and cross only live
// trunks in between.
func (r *Roster) ValidInFabric(lsdb map[int]LinkState, view *phys.FabricView) bool {
	if len(r.Nodes) < 2 {
		return true
	}
	if len(r.Via) != len(r.Nodes) {
		return false
	}
	for i, a := range r.Nodes {
		b := r.Nodes[(i+1)%len(r.Nodes)]
		path := r.hopPath(i)
		if len(path) == 0 || !lsdb[a].Has(path[0]) || !lsdb[b].Has(path[len(path)-1]) {
			return false
		}
		for j := 0; j+1 < len(path); j++ {
			if view == nil || !view.Joined(path[j], path[j+1]) {
				return false
			}
		}
	}
	return true
}

// EstimateTour estimates one ring-tour time for n nodes with the given
// per-link fiber length: n hops of (fixed-packet serialization + two
// fiber crossings + switch cut-through + insertion-register delay).
// This is the unit the paper states rostering completion in.
func EstimateTour(n int, fiberM float64, net *phys.Net) sim.Time {
	if n < 1 {
		n = 1
	}
	hop := phys.SerTime(24+net.IFG) + 2*phys.PropTime(fiberM) +
		phys.DefaultSwitchLatency + 40*sim.Nanosecond
	return sim.Time(n) * hop
}
