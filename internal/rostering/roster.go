// Package rostering implements AmpNet's rostering algorithm (paper,
// slides 13, 16, 18):
//
//	"Algorithm starts automatically whenever a failure is detected. A
//	 modified flooding algorithm that explores the network for available
//	 paths and allows the creation of the largest possible logical ring.
//	 Packets are forwarded according to rostering rules. Rostering
//	 completes in two ring-tour times — 1 to 2 milliseconds, depending
//	 on the number of nodes and the length of the fiber."
//
// Every node runs an Agent. When any port sees a status change (loss of
// light detected by the PHY, or light returning), the agent starts a new
// rostering epoch: it floods a link-state announcement — a Rostering
// MicroPacket carrying its identity and its live-switch mask — out every
// live port. Switches flood Rostering MicroPackets on all live ports,
// and nodes re-flood announcements they have not seen, so the
// exploration wave reaches every reachable node over every available
// path. Each node accumulates the announcements into an identical
// link-state database, waits for the exploration to quiesce (the settle
// window, calibrated to the ring-tour time as in the hardware's
// two-wave scheme), deterministically computes the largest logical ring
// the live paths allow, and adopts it: it programs its own ring egress
// and the crossbar route for its hop. Because every node computes the
// same roster from the same database, the ring converges without a
// master.
package rostering

import (
	"fmt"
	"sort"

	"repro/internal/phys"
	"repro/internal/sim"
)

// Roster is one logical ring: the cyclic node order and, for each hop
// Nodes[i] → Nodes[(i+1) % len], the switch it crosses.
type Roster struct {
	Epoch uint32
	Nodes []int
	Via   []int
}

// Size returns the number of nodes on the ring.
func (r *Roster) Size() int { return len(r.Nodes) }

// Contains reports whether node id is on the ring.
func (r *Roster) Contains(id int) bool {
	for _, n := range r.Nodes {
		if n == id {
			return true
		}
	}
	return false
}

// IndexOf returns node id's position on the ring, or -1.
func (r *Roster) IndexOf(id int) int {
	for i, n := range r.Nodes {
		if n == id {
			return i
		}
	}
	return -1
}

// Next returns the downstream neighbor of node id and the switch the
// hop crosses. ok is false if id is not on the ring or the ring has a
// single node.
func (r *Roster) Next(id int) (next, via int, ok bool) {
	i := r.IndexOf(id)
	if i < 0 || len(r.Nodes) < 2 {
		return 0, 0, false
	}
	return r.Nodes[(i+1)%len(r.Nodes)], r.Via[i], true
}

// Equal reports whether two rosters describe the same ring (same
// rotation-normalized order and vias). Epoch is ignored.
func (r *Roster) Equal(o *Roster) bool {
	if o == nil || len(r.Nodes) != len(o.Nodes) {
		return false
	}
	n := len(r.Nodes)
	if n == 0 {
		return true
	}
	// Align on the smallest node id.
	ri, oi := r.minIndex(), o.minIndex()
	for k := 0; k < n; k++ {
		if r.Nodes[(ri+k)%n] != o.Nodes[(oi+k)%n] || r.Via[(ri+k)%n] != o.Via[(oi+k)%n] {
			return false
		}
	}
	return true
}

func (r *Roster) minIndex() int {
	mi := 0
	for i, n := range r.Nodes {
		if n < r.Nodes[mi] {
			mi = i
		}
	}
	return mi
}

// String renders "0 -s2-> 3 -s0-> 5 -s2-> (0)".
func (r *Roster) String() string {
	if len(r.Nodes) == 0 {
		return "<empty roster>"
	}
	s := fmt.Sprintf("epoch %d: ", r.Epoch)
	for i, n := range r.Nodes {
		if len(r.Via) == len(r.Nodes) {
			s += fmt.Sprintf("%d -s%d-> ", n, r.Via[i])
		} else {
			s += fmt.Sprintf("%d ", n)
		}
	}
	return s + fmt.Sprintf("(%d)", r.Nodes[0])
}

// LinkState is one node's live-switch bitmask: bit s set means the
// node's link to switch s carries light.
type LinkState uint8

// Has reports whether switch s is live for this node.
func (m LinkState) Has(s int) bool { return m&(1<<s) != 0 }

// common returns the lowest switch index live for both masks, or -1.
func common(a, b LinkState) int {
	c := a & b
	if c == 0 {
		return -1
	}
	for s := 0; s < 8; s++ {
		if c.Has(s) {
			return s
		}
	}
	return -1
}

// BuildRoster deterministically computes the largest logical ring the
// link-state database allows: nodes are inserted in ascending id order
// into the cycle at the first feasible position (both new edges must
// share a live switch), repeating until no more nodes fit. Nodes that
// cannot join remain off the roster — the paper's "largest possible
// logical ring" under damage. Every node computes the same result from
// the same database, which is what lets rostering converge without a
// master.
func BuildRoster(epoch uint32, lsdb map[int]LinkState) *Roster {
	ids := make([]int, 0, len(lsdb))
	for id, m := range lsdb {
		if m != 0 {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	if len(ids) == 0 {
		return &Roster{Epoch: epoch}
	}
	ring := []int{ids[0]}
	pending := append([]int{}, ids[1:]...)
	for progress := true; progress && len(pending) > 0; {
		progress = false
		var left []int
		for _, c := range pending {
			if pos := feasiblePos(ring, c, lsdb); pos >= 0 {
				ring = append(ring, 0)
				copy(ring[pos+2:], ring[pos+1:])
				ring[pos+1] = c
				progress = true
			} else {
				left = append(left, c)
			}
		}
		pending = left
	}
	r := &Roster{Epoch: epoch, Nodes: ring}
	if len(ring) >= 2 {
		r.Via = make([]int, len(ring))
		for i := range ring {
			a, b := ring[i], ring[(i+1)%len(ring)]
			s := common(lsdb[a], lsdb[b])
			if s < 0 {
				// Cannot happen for rings built by feasiblePos, but keep
				// the invariant explicit.
				panic("rostering: ring edge without common switch")
			}
			r.Via[i] = s
		}
	}
	return r
}

// feasiblePos returns an index i such that candidate c can be inserted
// between ring[i] and ring[i+1] (both new edges share a live switch
// with c), or -1.
func feasiblePos(ring []int, c int, lsdb map[int]LinkState) int {
	if len(ring) == 1 {
		if common(lsdb[ring[0]], lsdb[c]) >= 0 {
			return 0
		}
		return -1
	}
	for i := range ring {
		a, b := ring[i], ring[(i+1)%len(ring)]
		if common(lsdb[a], lsdb[c]) >= 0 && common(lsdb[c], lsdb[b]) >= 0 {
			return i
		}
	}
	return -1
}

// Valid checks the roster against a link-state database: every hop must
// cross a switch live at both endpoints.
func (r *Roster) Valid(lsdb map[int]LinkState) bool {
	if len(r.Nodes) < 2 {
		return true
	}
	if len(r.Via) != len(r.Nodes) {
		return false
	}
	for i, a := range r.Nodes {
		b := r.Nodes[(i+1)%len(r.Nodes)]
		s := r.Via[i]
		if !lsdb[a].Has(s) || !lsdb[b].Has(s) {
			return false
		}
	}
	return true
}

// EstimateTour estimates one ring-tour time for n nodes with the given
// per-link fiber length: n hops of (fixed-packet serialization + two
// fiber crossings + switch cut-through + insertion-register delay).
// This is the unit the paper states rostering completion in.
func EstimateTour(n int, fiberM float64, net *phys.Net) sim.Time {
	if n < 1 {
		n = 1
	}
	hop := phys.SerTime(24+net.IFG) + 2*phys.PropTime(fiberM) +
		phys.DefaultSwitchLatency + 40*sim.Nanosecond
	return sim.Time(n) * hop
}
