package rostering

import (
	"testing"
	"testing/quick"

	"repro/internal/insertion"
	"repro/internal/micropacket"
	"repro/internal/phys"
	"repro/internal/sim"
)

// harness builds a full cluster with stations and rostering agents and
// boots them all at t=0.
type harness struct {
	k        *sim.Kernel
	net      *phys.Net
	cluster  *phys.Cluster
	stations []*insertion.Station
	agents   []*Agent
}

func newHarness(nodes, switches int, fiberM float64) *harness {
	h := &harness{k: sim.NewKernel(1)}
	h.net = phys.NewNet(h.k)
	h.cluster = phys.BuildCluster(h.net, nodes, switches, fiberM)
	for i := 0; i < nodes; i++ {
		st := insertion.NewStation(h.k, micropacket.NodeID(i), h.cluster.NodePorts[i])
		h.stations = append(h.stations, st)
		h.agents = append(h.agents, NewAgent(h.k, i, h.cluster, st, fiberM))
	}
	for _, a := range h.agents {
		a := a
		h.k.After(0, func() { a.Start() })
	}
	return h
}

// settle advances the simulation far enough for any rostering round to
// complete (keepalive/watchdog timers run forever, so Run() would not
// return).
func (h *harness) settle() { h.k.RunUntil(h.k.Now() + 5*sim.Millisecond) }

// liveAgents returns agents of nodes that still have at least one live
// link.
func (h *harness) liveAgents() []*Agent {
	var out []*Agent
	for i, a := range h.agents {
		for s := range h.cluster.Switches {
			if h.cluster.NodeLinks[i][s].Up() {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

// requireConsistent asserts all live agents adopted equal rosters of
// the wanted size and that every hop is physically live.
func (h *harness) requireConsistent(t *testing.T, wantSize int) *Roster {
	t.Helper()
	live := h.liveAgents()
	if len(live) == 0 {
		t.Fatal("no live agents")
	}
	ref := live[0].Roster()
	if ref == nil {
		t.Fatal("agent 0 never adopted a roster")
	}
	for _, a := range live {
		r := a.Roster()
		if r == nil {
			t.Fatalf("agent %d never adopted", a.ID)
		}
		if !ref.Equal(r) {
			t.Fatalf("inconsistent rosters:\n  %v\n  %v", ref, r)
		}
	}
	if ref.Size() != wantSize {
		t.Fatalf("roster size = %d, want %d (%v)", ref.Size(), wantSize, ref)
	}
	// Physical validity.
	lsdb := map[int]LinkState{}
	for i := range h.stations {
		var m LinkState
		for s := range h.cluster.Switches {
			if h.cluster.NodeLinks[i][s].Up() {
				m |= 1 << s
			}
		}
		lsdb[i] = m
	}
	if !ref.Valid(lsdb) {
		t.Fatalf("roster uses dead links: %v", ref)
	}
	return ref
}

func TestInitialRosterFormsFullRing(t *testing.T) {
	h := newHarness(6, 4, 50)
	h.settle()
	r := h.requireConsistent(t, 6)
	for i := 0; i < 6; i++ {
		if !r.Contains(i) {
			t.Fatalf("node %d missing from boot roster %v", i, r)
		}
	}
}

func TestDataFlowsOnBootedRing(t *testing.T) {
	h := newHarness(4, 2, 50)
	h.settle()
	got := 0
	h.stations[3].OnDeliver = func(p *micropacket.Packet) { got++ }
	h.stations[0].Send(micropacket.NewData(0, 3, 1, []byte{42}))
	h.settle()
	if got != 1 {
		t.Fatalf("deliveries = %d, want 1", got)
	}
}

func TestHealAfterLinkFailure(t *testing.T) {
	h := newHarness(6, 4, 50)
	h.settle()
	// Fail a link the current roster actually uses.
	r := h.agents[0].Roster()
	a := r.Nodes[0]
	via := r.Via[0]
	h.k.After(0, func() { h.cluster.NodeLinks[a][via].Fail() })
	h.settle()
	r2 := h.requireConsistent(t, 6)
	// The new roster must not route node a through the dead switch link.
	for i, n := range r2.Nodes {
		prev := r2.Nodes[(i+len(r2.Nodes)-1)%len(r2.Nodes)]
		if (n == a || prev == a) && r2.Via[(i+len(r2.Nodes)-1)%len(r2.Nodes)] == via && prev == a {
			t.Fatalf("healed roster still uses dead link n%d-s%d: %v", a, via, r2)
		}
	}
}

func TestQuadRedundancySurvivesThreeSwitchFailures(t *testing.T) {
	h := newHarness(6, 4, 50)
	h.settle()
	h.k.After(0, func() { h.cluster.Switches[0].Fail() })
	h.settle()
	h.requireConsistent(t, 6)
	h.k.After(0, func() { h.cluster.Switches[1].Fail() })
	h.settle()
	h.requireConsistent(t, 6)
	h.k.After(0, func() { h.cluster.Switches[2].Fail() })
	h.settle()
	r := h.requireConsistent(t, 6)
	// All hops must now use the sole surviving switch.
	for _, v := range r.Via {
		if v != 3 {
			t.Fatalf("hop uses failed switch: %v", r)
		}
	}
}

func TestDualRedundancySurvivesOneSwitchFailure(t *testing.T) {
	h := newHarness(4, 2, 50)
	h.settle()
	h.k.After(0, func() { h.cluster.Switches[1].Fail() })
	h.settle()
	h.requireConsistent(t, 4)
}

func TestNodeFailureShrinksRing(t *testing.T) {
	h := newHarness(6, 4, 50)
	h.settle()
	h.k.After(0, func() { h.cluster.FailNode(2) })
	h.settle()
	r := h.requireConsistent(t, 5)
	if r.Contains(2) {
		t.Fatalf("dead node still rostered: %v", r)
	}
}

func TestNodeRejoinGrowsRing(t *testing.T) {
	h := newHarness(5, 2, 50)
	h.settle()
	h.k.After(0, func() { h.cluster.FailNode(4) })
	h.settle()
	h.requireConsistent(t, 4)
	h.k.After(0, func() {
		h.cluster.RestoreNode(4)
	})
	h.settle()
	r := h.requireConsistent(t, 5)
	if !r.Contains(4) {
		t.Fatalf("rejoined node missing: %v", r)
	}
}

// TestCompletionWithinTwoRingTours is slide 16's headline claim: from
// failure detection to the last adoption takes about two ring-tour
// times.
func TestCompletionWithinTwoRingTours(t *testing.T) {
	h := newHarness(8, 4, 1000) // 1 km fiber
	h.settle()

	var failAt sim.Time
	lastAdopt := sim.Time(-1)
	for _, a := range h.agents {
		a := a
		a.OnAdopt = func(*Roster) {
			if h.k.Now() > lastAdopt {
				lastAdopt = h.k.Now()
			}
		}
	}
	h.k.After(sim.Millisecond, func() {
		failAt = h.k.Now()
		h.cluster.Switches[0].Fail()
	})
	h.settle()
	if lastAdopt < 0 {
		t.Fatal("no adoption after failure")
	}
	tour := EstimateTour(8, 1000, h.net)
	elapsed := lastAdopt - failAt - h.net.Detect // from detection, like the hardware
	if elapsed > 3*tour {
		t.Fatalf("rostering took %v (= %.2f tours), want ≈2 tours (%v)",
			elapsed, float64(elapsed)/float64(tour), tour)
	}
	if elapsed < tour/2 {
		t.Fatalf("rostering suspiciously fast: %v vs tour %v", elapsed, tour)
	}
}

func TestDataFlowsAfterHeal(t *testing.T) {
	h := newHarness(6, 4, 50)
	h.settle()
	h.k.After(0, func() { h.cluster.Switches[0].Fail() })
	h.settle()
	got := 0
	h.stations[5].OnDeliver = func(p *micropacket.Packet) { got++ }
	h.stations[1].Send(micropacket.NewData(1, 5, 0, []byte{1}))
	h.settle()
	if got != 1 {
		t.Fatalf("post-heal deliveries = %d, want 1", got)
	}
}

func TestEpochMonotone(t *testing.T) {
	h := newHarness(3, 2, 50)
	h.settle()
	e1 := h.agents[0].Epoch()
	h.k.After(0, func() { h.cluster.NodeLinks[1][0].Fail() })
	h.settle()
	if h.agents[0].Epoch() <= e1 {
		t.Fatalf("epoch did not advance: %d → %d", e1, h.agents[0].Epoch())
	}
}

func TestConcurrentFailuresConverge(t *testing.T) {
	h := newHarness(8, 4, 50)
	h.settle()
	h.k.After(0, func() {
		h.cluster.Switches[2].Fail()
		h.cluster.NodeLinks[0][0].Fail()
		h.cluster.NodeLinks[5][1].Fail()
	})
	h.settle()
	h.requireConsistent(t, 8)
}

func TestFailureDuringRostering(t *testing.T) {
	h := newHarness(6, 4, 200)
	h.settle()
	h.k.After(0, func() { h.cluster.Switches[0].Fail() })
	// Second failure lands mid-round (detection is 10µs, settle ~µs).
	h.k.After(15*sim.Microsecond, func() { h.cluster.Switches[1].Fail() })
	h.settle()
	h.requireConsistent(t, 6)
}

// --- BuildRoster unit tests ---

func fullMask(switches int) LinkState { return LinkState(1<<switches) - 1 }

func TestBuildRosterAllConnected(t *testing.T) {
	lsdb := map[int]LinkState{}
	for i := 0; i < 6; i++ {
		lsdb[i] = fullMask(4)
	}
	r := BuildRoster(1, lsdb)
	if r.Size() != 6 {
		t.Fatalf("size = %d", r.Size())
	}
	if !r.Valid(lsdb) {
		t.Fatal("invalid roster")
	}
}

func TestBuildRosterExcludesIsolated(t *testing.T) {
	lsdb := map[int]LinkState{
		0: 0b0001, 1: 0b0001, 2: 0b0001,
		3: 0b0000, // dark node
		4: 0b0010, // lives only on switch 1, unreachable from 0/1/2's ring? it
		// shares no switch with anyone — cannot join.
	}
	r := BuildRoster(1, lsdb)
	if r.Contains(3) {
		t.Fatal("dark node rostered")
	}
	if r.Contains(4) {
		t.Fatal("switch-isolated node rostered")
	}
	if r.Size() != 3 {
		t.Fatalf("size = %d, want 3", r.Size())
	}
}

func TestBuildRosterSingleAndPair(t *testing.T) {
	r := BuildRoster(1, map[int]LinkState{7: 0b1})
	if r.Size() != 1 || len(r.Via) != 0 {
		t.Fatalf("singleton: %v", r)
	}
	r = BuildRoster(1, map[int]LinkState{1: 0b01, 2: 0b01})
	if r.Size() != 2 || len(r.Via) != 2 {
		t.Fatalf("pair: %v", r)
	}
	if !r.Valid(map[int]LinkState{1: 0b01, 2: 0b01}) {
		t.Fatal("pair roster invalid")
	}
}

func TestBuildRosterEmpty(t *testing.T) {
	r := BuildRoster(1, map[int]LinkState{})
	if r.Size() != 0 {
		t.Fatalf("empty lsdb: %v", r)
	}
}

func TestBuildRosterDeterministic(t *testing.T) {
	lsdb := map[int]LinkState{0: 0b11, 1: 0b01, 2: 0b10, 3: 0b11, 4: 0b11}
	a := BuildRoster(9, lsdb)
	for i := 0; i < 20; i++ {
		b := BuildRoster(9, lsdb)
		if !a.Equal(b) {
			t.Fatalf("nondeterministic: %v vs %v", a, b)
		}
	}
}

// TestBuildRosterPropertyCommonSwitch: if one switch is live at every
// node, the roster must always include every node (the common segment
// guarantees a full ring).
func TestBuildRosterPropertyCommonSwitch(t *testing.T) {
	f := func(masks []uint8) bool {
		if len(masks) == 0 || len(masks) > 32 {
			return true
		}
		lsdb := map[int]LinkState{}
		for i, m := range masks {
			lsdb[i] = LinkState(m) | 0b100 // switch 2 live everywhere
		}
		r := BuildRoster(1, lsdb)
		if r.Size() != len(masks) {
			return false
		}
		return r.Valid(lsdb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBuildRosterPropertyAlwaysValid: whatever the masks, the roster
// must only use live common switches.
func TestBuildRosterPropertyAlwaysValid(t *testing.T) {
	f := func(masks []uint8) bool {
		if len(masks) > 40 {
			masks = masks[:40]
		}
		lsdb := map[int]LinkState{}
		for i, m := range masks {
			lsdb[i] = LinkState(m)
		}
		return BuildRoster(1, lsdb).Valid(lsdb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRosterEqualRotationInvariant(t *testing.T) {
	a := &Roster{Nodes: []int{0, 1, 2}, Via: []int{0, 1, 2}}
	b := &Roster{Nodes: []int{1, 2, 0}, Via: []int{1, 2, 0}}
	if !a.Equal(b) {
		t.Fatal("rotated rosters should be equal")
	}
	c := &Roster{Nodes: []int{1, 2, 0}, Via: []int{1, 2, 1}}
	if a.Equal(c) {
		t.Fatal("different vias should differ")
	}
	d := &Roster{Nodes: []int{0, 2, 1}, Via: []int{0, 1, 2}}
	if a.Equal(d) {
		t.Fatal("different order should differ")
	}
}

func TestRosterNext(t *testing.T) {
	r := &Roster{Nodes: []int{3, 5, 9}, Via: []int{1, 0, 2}}
	next, via, ok := r.Next(5)
	if !ok || next != 9 || via != 0 {
		t.Fatalf("Next(5) = %d,%d,%v", next, via, ok)
	}
	next, via, ok = r.Next(9) // wraps
	if !ok || next != 3 || via != 2 {
		t.Fatalf("Next(9) = %d,%d,%v", next, via, ok)
	}
	if _, _, ok := r.Next(4); ok {
		t.Fatal("Next of absent node should fail")
	}
}

func TestAnnouncementCodec(t *testing.T) {
	ann := Announcement{Origin: 13, Mask: 0b1010, Seq: 250}
	p := encodeAnnouncement(13, 0xDEADBEEF, ann)
	if p.Type != micropacket.TypeRostering {
		t.Fatal("wrong type")
	}
	o, e, got := decodeAnnouncement(p)
	if o != 13 || e != 0xDEADBEEF || got != ann {
		t.Fatalf("decode = %d %x %+v", o, e, got)
	}
}

func TestNewerSeqWraps(t *testing.T) {
	if !newerSeq(1, 0) || newerSeq(0, 1) {
		t.Fatal("basic order")
	}
	if !newerSeq(0, 255) {
		t.Fatal("wrap: 0 is newer than 255")
	}
	if newerSeq(5, 5) {
		t.Fatal("equal is not newer")
	}
}

func TestEstimateTourScales(t *testing.T) {
	k := sim.NewKernel(1)
	net := phys.NewNet(k)
	t4 := EstimateTour(4, 100, net)
	t8 := EstimateTour(8, 100, net)
	if t8 != 2*t4 {
		t.Fatalf("tour should scale linearly with nodes: %v vs %v", t4, t8)
	}
	short := EstimateTour(8, 10, net)
	long := EstimateTour(8, 2000, net)
	if long <= short {
		t.Fatal("tour should grow with fiber length")
	}
}
