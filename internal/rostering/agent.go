package rostering

import (
	"encoding/binary"

	"repro/internal/frameacct"
	"repro/internal/insertion"
	"repro/internal/micropacket"
	"repro/internal/phys"
	"repro/internal/sim"
)

// Announcement is one link-state record in the exploration database.
type Announcement struct {
	Origin int
	Mask   LinkState
	Seq    uint8
}

// Agent runs the rostering protocol on one node. It owns the node's
// Rostering MicroPackets (delivered by the Station's OnControl hook) and
// reprograms the Station and its hop's switch when a new roster is
// adopted.
type Agent struct {
	ID      int
	K       *sim.Kernel
	Cluster *phys.Cluster
	Station *insertion.Station

	// Shard is the shard this agent's node runs on in a parallel
	// sharded simulation (0 on the serial engine). Crossbar programming
	// aimed at a remote shard's switch is routed through the cluster's
	// barrier-deferred path; see phys.Cluster.Program.
	Shard int

	// SettleWindow is how long the link-state database must stay quiet
	// before the roster is computed. The hardware's scheme paces its
	// exploration and confirmation waves at ring-tour granularity (one
	// tour each); the settle window stands in for both waves, so the
	// default is two estimated ring tours — which is exactly where
	// slide 16 puts rostering completion.
	SettleWindow sim.Time

	// KeepaliveInterval paces the idle keepalives each node sends its
	// downstream ring neighbor; the downstream's watchdog uses their
	// absence to detect a dead upstream hop. In hardware this role is
	// played by the continuous FC idle/fill-word stream.
	KeepaliveInterval sim.Time
	// SilenceTimeout is how long the ring ingress may stay silent
	// before the watchdog declares the upstream hop dead and triggers
	// rostering.
	SilenceTimeout sim.Time

	// OnAdopt is called after this agent adopts a new roster.
	OnAdopt func(*Roster)

	epoch  uint32
	seq    uint8
	lsdb   map[int]Announcement
	settle *sim.Timer
	// keepaliveFn/watchdogFn are the loop method values, bound once in
	// Start so periodic re-arming does not allocate.
	keepaliveFn func()
	watchdogFn  func()
	current     *Roster
	adoptedAt   sim.Time
	stopped     bool

	// Adoptions counts rosters adopted; Announced counts own floods.
	Adoptions uint64
	Announced uint64

	// exploring reports a rostering round is in progress.
	exploring bool
	// startedAt is when the current round began (for completion-time
	// measurements).
	startedAt sim.Time
}

// NewAgent wires a rostering agent to its station. The station's
// OnControl and OnStatus hooks are installed. fiberM is used to
// calibrate the default settle window.
// Default liveness parameters. The watchdog gives "network failures
// detected by hardware" (slide 18) for failures that leave fibers lit,
// e.g. a dead node or switch crossbar.
const (
	DefaultKeepalive      = 20 * sim.Microsecond
	DefaultSilenceTimeout = 60 * sim.Microsecond
)

func NewAgent(k *sim.Kernel, id int, cluster *phys.Cluster, st *insertion.Station, fiberM float64) *Agent {
	a := &Agent{
		ID: id, K: k, Cluster: cluster, Station: st,
		SettleWindow:      2 * EstimateTour(cluster.NumNodes(), fiberM, cluster.Net),
		KeepaliveInterval: DefaultKeepalive,
		SilenceTimeout:    DefaultSilenceTimeout,
		lsdb:              map[int]Announcement{},
		stopped:           true, // dark until Start (NIC not yet booted)
	}
	st.OnControl = a.handleControl
	st.OnStatus = func(_ *phys.Port, _ bool) {
		if !a.stopped {
			a.Trigger()
		}
	}
	// Trunk failures leave every node-facing fiber lit; the switch
	// hardware senses the dark trunk and raises the failure to the
	// rostering layer (slide 18: "network failures detected by
	// hardware").
	cluster.WatchTrunks(k, func(_ int, _ bool) {
		if !a.stopped {
			a.Trigger()
		}
	})
	return a
}

// Stop halts the agent's periodic activity (node shutdown). The agent
// no longer reacts to port status changes or emits keepalives.
func (a *Agent) Stop() {
	a.stopped = true
	if a.settle != nil {
		a.settle.Cancel()
	}
}

// Roster returns the currently adopted roster (nil before the first
// adoption).
func (a *Agent) Roster() *Roster { return a.current }

// Exploring reports whether a rostering round is in progress.
func (a *Agent) Exploring() bool { return a.exploring }

// Epoch returns the agent's current rostering epoch.
func (a *Agent) Epoch() uint32 { return a.epoch }

// Start begins initial rostering (node self-boot, slide 17) and arms
// the keepalive and silence-watchdog loops.
func (a *Agent) Start() {
	a.stopped = false
	// Bind the loop method values once: re-arming with a fresh method
	// value every tick allocated a closure (and a Timer) per node per
	// interval, a top allocation site at fabric scale.
	if a.keepaliveFn == nil {
		a.keepaliveFn = a.keepaliveLoop
		a.watchdogFn = a.watchdogLoop
	}
	a.Trigger()
	a.keepaliveLoop()
	a.watchdogLoop()
}

// keepaliveLoop sends a keepalive Diagnostic to the downstream neighbor
// every KeepaliveInterval while the node is on a ring.
func (a *Agent) keepaliveLoop() {
	if a.stopped {
		return
	}
	if r := a.current; r != nil && a.Station.OnRing() {
		if next, _, ok := r.Next(a.ID); ok {
			ka := micropacket.NewDiagnostic(micropacket.NodeID(a.ID), micropacket.NodeID(next), insertion.KeepaliveTag)
			if p := a.Station.Ports[a.Station.EgressSwitch()]; p.Up() {
				p.SendPriority(p.Net().NewFrame(ka))
			}
		}
	}
	a.K.Do(a.K.Now()+a.KeepaliveInterval, a.keepaliveFn)
}

// watchdogLoop detects upstream silence: if the node sits on a ring but
// has heard nothing for SilenceTimeout — and is not mid-round, with a
// grace period after adoption for the ring to fill — the upstream hop
// is declared dead and rostering starts.
func (a *Agent) watchdogLoop() {
	if a.stopped {
		return
	}
	now := a.K.Now()
	grace := 2 * a.SettleWindow
	if a.Station.OnRing() && !a.exploring &&
		now-a.Station.LastRx > a.SilenceTimeout &&
		now-a.adoptedAt > grace {
		a.Trigger()
	}
	a.K.Do(a.K.Now()+a.SilenceTimeout/2, a.watchdogFn)
}

// Trigger starts a new rostering round: failure detected, light
// restored, or a node (re-)booting.
func (a *Agent) Trigger() {
	a.beginEpoch(a.epoch + 1)
	a.announce()
}

// mask returns this node's live-switch bitmask from its port status.
// Ports are nil for switches the topology does not attach this node to.
func (a *Agent) mask() LinkState {
	var m LinkState
	for s, p := range a.Station.Ports {
		if p != nil && p.Up() {
			m |= 1 << s
		}
	}
	return m
}

// beginEpoch resets round state for epoch e.
func (a *Agent) beginEpoch(e uint32) {
	a.epoch = e
	a.exploring = true
	a.startedAt = a.K.Now()
	a.lsdb = map[int]Announcement{}
	a.lsdb[a.ID] = Announcement{Origin: a.ID, Mask: a.mask(), Seq: a.seq}
	a.resetSettle()
}

// announce floods this node's link-state record out every live port.
func (a *Agent) announce() {
	a.seq++
	a.lsdb[a.ID] = Announcement{Origin: a.ID, Mask: a.mask(), Seq: a.seq}
	pkt := encodeAnnouncement(a.ID, a.epoch, a.lsdb[a.ID])
	a.Announced++
	a.floodExcept(pkt, nil)
	a.resetSettle()
}

// floodExcept sends the packet on every live port except skip.
func (a *Agent) floodExcept(pkt *micropacket.Packet, skip *phys.Port) {
	var f phys.Frame
	for _, p := range a.Station.Ports {
		if p == nil || p == skip || !p.Up() {
			continue
		}
		if f.Pkt == nil {
			f = p.Net().NewFrame(pkt)
		}
		p.SendPriority(f)
	}
}

// handleControl processes a Rostering MicroPacket arriving on port.
// A stopped agent (node not booted, or shut down) ignores floods: it
// must not be rostered, since it would neither keepalive nor forward
// reliably.
func (a *Agent) handleControl(port *phys.Port, f phys.Frame) {
	acct := &port.Net().Acct
	if a.stopped {
		acct.Lose(frameacct.LossAgentStopped)
		return
	}
	origin, epoch, ann := decodeAnnouncement(f.Pkt)
	switch {
	case epoch < a.epoch:
		acct.Lose(frameacct.LossStaleRound)
		return // stale round
	case epoch > a.epoch:
		// Someone started a newer round: join it and contribute our
		// own link state.
		acct.Consume(frameacct.ConsumeControl)
		a.beginEpoch(epoch)
		a.lsdb[origin] = ann
		a.floodExcept(f.Pkt, port)
		a.seq++
		a.lsdb[a.ID] = Announcement{Origin: a.ID, Mask: a.mask(), Seq: a.seq}
		a.Announced++
		a.floodExcept(encodeAnnouncement(a.ID, a.epoch, a.lsdb[a.ID]), nil)
		a.resetSettle()
		return
	}
	// Same epoch: accept if new origin or newer sequence.
	prev, seen := a.lsdb[origin]
	if seen && !newerSeq(ann.Seq, prev.Seq) {
		acct.Lose(frameacct.LossDupAnnounce)
		return // duplicate: do not re-flood (this breaks flood loops)
	}
	acct.Consume(frameacct.ConsumeControl)
	a.lsdb[origin] = ann
	a.floodExcept(f.Pkt, port)
	if !a.exploring {
		// New information for an epoch we had already adopted — a
		// booting node whose epoch counter collided with the network's
		// current round. Reopen the round and contribute our own link
		// state so the newcomer learns the full database. The reopen
		// happens at most once per new announcement (duplicates are
		// filtered above), so floods cannot storm.
		a.exploring = true
		a.startedAt = a.K.Now()
		a.seq++
		a.lsdb[a.ID] = Announcement{Origin: a.ID, Mask: a.mask(), Seq: a.seq}
		a.Announced++
		a.floodExcept(encodeAnnouncement(a.ID, a.epoch, a.lsdb[a.ID]), nil)
	}
	a.resetSettle()
}

// newerSeq compares wrapping uint8 sequence numbers.
func newerSeq(a, b uint8) bool { return int8(a-b) > 0 }

// resetSettle (re)arms the quiescence timer for the current round.
func (a *Agent) resetSettle() {
	if a.settle != nil {
		a.settle.Cancel()
	}
	epoch := a.epoch
	a.settle = a.K.After(a.SettleWindow, func() {
		if a.epoch == epoch && a.exploring {
			a.adopt()
		}
	})
}

// adopt computes the roster from the settled database and programs this
// node's share of it: its ring egress and its hop's crossbar route.
func (a *Agent) adopt() {
	a.exploring = false
	a.adoptedAt = a.K.Now()
	a.Station.LastRx = a.K.Now()
	lsdb := make(map[int]LinkState, len(a.lsdb))
	//ampvet:allow detmap map-to-map projection; BuildRosterFabric sorts the ids
	for id, ann := range a.lsdb {
		lsdb[id] = ann.Mask
	}
	r := BuildRosterFabric(a.epoch, lsdb, a.Cluster.View())
	a.current = r
	a.Adoptions++

	if next, via, ok := r.Next(a.ID); ok {
		// Program our hop's switch path. (Port n on every switch
		// belongs to node n, by construction of the cluster wiring,
		// which is part of the ubiquitous configuration database —
		// slide 2.) A single-switch hop is one crossbar route from our
		// port to the downstream node's; a hop healing across trunks
		// additionally programs each trunk crossing under our virtual
		// circuit (our node id), so many hops can share a trunk.
		//
		// The trunk-crossing writes are issued as circuit-setup cells:
		// each lands after the fiber flight from this node to its
		// switch along the path (setup accumulates below). Our own
		// frames pay the same flight plus serialization and per-switch
		// cut-through latency, so they can never outrun the setup; a
		// frame already in flight keeps the stale route — identically
		// on the serial and sharded engines, which is what keeps their
		// reports byte-equal when a ring heals under live traffic.
		path := r.PathOf(a.ID)
		now := a.K.Now()
		var setup sim.Time
		if l := a.Cluster.NodeLinks[a.ID][path[0]]; l != nil {
			setup = l.Prop()
		}
		for j, sw := range path {
			ingress := a.ID
			if j > 0 {
				t := a.Cluster.TrunkBetween(path[j-1], sw)
				if t == nil {
					break // trunk died since the database settled; next round heals
				}
				setup += t.Link.Prop()
				ingress = t.PortB
				if t.A == sw {
					ingress = t.PortA
				}
			}
			egress := next
			if j+1 < len(path) {
				t := a.Cluster.TrunkBetween(sw, path[j+1])
				if t == nil {
					break
				}
				egress = t.PortA
				if t.B == sw {
					egress = t.PortB
				}
			}
			if j == 0 {
				a.Cluster.Program(a.Shard, 0, phys.RouteOp{Switch: sw, In: ingress, Out: egress})
			} else {
				a.Cluster.Program(a.Shard, now+setup, phys.RouteOp{Switch: sw, In: ingress, Out: egress, VC: uint16(a.ID), IsVC: true})
			}
		}
		a.Station.SetEgress(via)
	} else {
		a.Station.SetEgress(-1)
	}
	if a.OnAdopt != nil {
		a.OnAdopt(r)
	}
}

// RoundStart returns when the current/last round began.
func (a *Agent) RoundStart() sim.Time { return a.startedAt }

// --- announcement wire encoding (8-byte Rostering payload) ---
//
//	payload[0..1] = origin node id, little endian
//	payload[2]    = live-switch mask
//	payload[3..6] = epoch, little endian
//	payload[7]    = origin's announcement sequence
//
// The origin field is as wide as the MicroPacket address space
// (uint16): it is the node identity the link-state database and the
// switch flood-dedup keys are built on, so a one-byte origin would
// alias announcements on >255-node fabrics even with wide wire
// addresses. The byte that used to carry a protocol version now holds
// the origin's high half; the frame-level format version travels in
// the SOF format byte (internal/wire) where every layer can see it.

func encodeAnnouncement(id int, epoch uint32, ann Announcement) *micropacket.Packet {
	var pl [8]byte
	binary.LittleEndian.PutUint16(pl[0:2], uint16(ann.Origin))
	pl[2] = byte(ann.Mask)
	binary.LittleEndian.PutUint32(pl[3:7], epoch)
	pl[7] = ann.Seq
	return micropacket.NewRostering(micropacket.NodeID(id), 0, pl)
}

func decodeAnnouncement(p *micropacket.Packet) (origin int, epoch uint32, ann Announcement) {
	origin = int(binary.LittleEndian.Uint16(p.Payload[0:2]))
	epoch = binary.LittleEndian.Uint32(p.Payload[3:7])
	ann = Announcement{Origin: origin, Mask: LinkState(p.Payload[2]), Seq: p.Payload[7]}
	return
}
