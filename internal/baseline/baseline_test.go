package baseline

import (
	"testing"

	"repro/internal/micropacket"
	"repro/internal/phys"
	"repro/internal/sim"
)

func cluster(n, s int) (*sim.Kernel, *phys.Net, *phys.Cluster) {
	k := sim.NewKernel(1)
	net := phys.NewNet(k)
	return k, net, phys.BuildCluster(net, n, s, 50)
}

// --- token ring ---

func TestTokenRingDelivers(t *testing.T) {
	k, net, c := cluster(4, 1)
	tr := NewTokenRing(k, c)
	got := 0
	tr.Stations[2].OnDeliver = func(p *micropacket.Packet) { got++ }
	tr.Send(0, micropacket.NewData(0, 2, 1, nil))
	tr.Start()
	k.RunUntil(5 * sim.Millisecond)
	if got != 1 {
		t.Fatalf("deliveries = %d", got)
	}
	if net.Drops.N != 0 {
		t.Fatalf("drops = %d", net.Drops.N)
	}
}

func TestTokenRingBroadcast(t *testing.T) {
	k, _, c := cluster(5, 1)
	tr := NewTokenRing(k, c)
	counts := make([]int, 5)
	for i, st := range tr.Stations {
		i := i
		st.OnDeliver = func(*micropacket.Packet) { counts[i]++ }
	}
	tr.Send(1, micropacket.NewData(1, micropacket.Broadcast, 0, nil))
	tr.Start()
	k.RunUntil(5 * sim.Millisecond)
	for i, n := range counts {
		want := 1
		if i == 1 {
			want = 0
		}
		if n != want {
			t.Fatalf("station %d deliveries = %d", i, n)
		}
	}
}

// TestTokenRingSingleTransmitter: the structural limitation the paper's
// slide 7 contrasts against — aggregate throughput is bounded by the
// token rotation, regardless of how many stations have traffic.
func TestTokenRingSingleTransmitter(t *testing.T) {
	k, _, c := cluster(4, 1)
	tr := NewTokenRing(k, c)
	// All stations saturated.
	for i := 0; i < 4; i++ {
		for j := 0; j < 64; j++ {
			tr.Send(i, micropacket.NewData(micropacket.NodeID(i), micropacket.NodeID((i+2)%4), uint8(j), nil))
		}
	}
	tr.Start()
	k.RunUntil(2 * sim.Millisecond)
	// Progress happens (token works) but is rotation-bound: per tour,
	// at most Burst frames per station.
	var sent uint64
	for _, st := range tr.Stations {
		sent += st.Sent
	}
	if sent == 0 {
		t.Fatal("token ring moved nothing")
	}
	maxPerTour := uint64(tr.Burst * 4)
	if sent > (tr.Rotations+2)*maxPerTour {
		t.Fatalf("sent %d frames in %d rotations — more than one transmitter at a time?", sent, tr.Rotations)
	}
}

func TestTokenRingBackpressure(t *testing.T) {
	k, _, c := cluster(2, 1)
	tr := NewTokenRing(k, c)
	tr.MaxQueue = 4
	okCount := 0
	for i := 0; i < 10; i++ {
		if tr.Send(0, micropacket.NewData(0, 1, uint8(i), nil)) {
			okCount++
		}
	}
	if okCount != 4 || tr.Stations[0].Refused != 6 {
		t.Fatalf("ok=%d refused=%d", okCount, tr.Stations[0].Refused)
	}
	tr.Start()
	k.RunUntil(sim.Millisecond)
}

// --- drop-tail ring ---

// TestDropTailDropsUnderAllToAll is the E4 contrast: greedy insertion
// with shallow FIFOs loses frames under all-to-all broadcast, which
// AmpNet's MAC provably does not.
func TestDropTailDropsUnderAllToAll(t *testing.T) {
	k, net, c := cluster(8, 1)
	sts := NewDropTailRing(k, c, 4)
	for i, st := range sts {
		for j := 0; j < 50; j++ {
			st.Send(micropacket.NewData(micropacket.NodeID(i), micropacket.Broadcast, uint8(j), nil))
		}
	}
	k.RunUntil(10 * sim.Millisecond)
	if net.Drops.N == 0 {
		t.Fatal("drop-tail baseline dropped nothing under saturation — not a valid strawman")
	}
}

func TestDropTailDeliversWhenIdle(t *testing.T) {
	k, net, c := cluster(3, 1)
	sts := NewDropTailRing(k, c, 16)
	got := 0
	sts[2].OnDeliver = func(*micropacket.Packet) { got++ }
	sts[0].Send(micropacket.NewData(0, 2, 0, nil))
	k.RunUntil(sim.Millisecond)
	if got != 1 || net.Drops.N != 0 {
		t.Fatalf("idle delivery got=%d drops=%d", got, net.Drops.N)
	}
}

// --- static switched network ---

func TestStaticNetDelivers(t *testing.T) {
	k, _, c := cluster(4, 2)
	sn := NewStaticNet(k, c)
	got := 0
	sn.Stations[3].OnDeliver = func(*micropacket.Packet) { got++ }
	sn.Send(0, micropacket.NewData(0, 3, 0, nil))
	k.RunUntil(sim.Millisecond)
	if got != 1 {
		t.Fatalf("deliveries = %d", got)
	}
}

// TestStaticNetOutageWindow: after a failure the static network stays
// down for the protection delay; AmpNet's rostering heals in
// microseconds on the same hardware (experiment E11 quantifies).
func TestStaticNetOutageWindow(t *testing.T) {
	k, _, c := cluster(4, 2)
	sn := NewStaticNet(k, c)
	sn.ReconvergeDelay = 5 * sim.Millisecond
	got := 0
	sn.Stations[1].OnDeliver = func(*micropacket.Packet) { got++ }

	// Kill the switch the ring uses (switch 0).
	k.After(sim.Millisecond, func() { c.Switches[0].Fail() })
	// During the outage, sends fail or vanish.
	k.After(2*sim.Millisecond, func() { sn.Send(0, micropacket.NewData(0, 1, 1, nil)) })
	k.RunUntil(4 * sim.Millisecond)
	if got != 0 {
		t.Fatal("delivery during outage window")
	}
	// After re-convergence, traffic flows again over switch 1.
	k.RunUntil(8 * sim.Millisecond)
	if sn.Reconvergences != 1 {
		t.Fatalf("reconvergences = %d", sn.Reconvergences)
	}
	k.After(0, func() { sn.Send(0, micropacket.NewData(0, 1, 2, nil)) })
	k.RunUntil(10 * sim.Millisecond)
	if got != 1 {
		t.Fatalf("post-repair deliveries = %d", got)
	}
}

func TestStaticNetMultipleFailuresSingleRepair(t *testing.T) {
	k, _, c := cluster(4, 2)
	sn := NewStaticNet(k, c)
	sn.ReconvergeDelay = sim.Millisecond
	k.After(0, func() {
		c.NodeLinks[0][0].Fail()
		c.NodeLinks[1][0].Fail()
	})
	k.RunUntil(5 * sim.Millisecond)
	if sn.Reconvergences != 1 {
		t.Fatalf("reconvergences = %d, want 1 (batched)", sn.Reconvergences)
	}
}
