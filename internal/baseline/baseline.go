// Package baseline implements the conventional-network comparators that
// AmpNet's claims are measured against in the experiments (DESIGN.md,
// S14). The paper argues AmpNet is better than contemporary cluster
// interconnects in three ways; each gets a concrete strawman:
//
//   - TokenRing: a classic token-passing MAC. One transmitter at a time
//     — the contrast for slide 7's "multiple data streams inserted onto
//     a segment at each node" (experiment E3).
//
//   - DropTailStation: a ring MAC that inserts greedily with no local
//     flow-control view. Under all-to-all broadcast it overruns egress
//     FIFOs and drops — the contrast for slide 8's lossless guarantee
//     (experiment E4).
//
//   - StaticNet: a switched network whose forwarding is programmed once
//     and re-converges only after a long protection delay (spanning-
//     tree style), with no rostering — the contrast for slide 16's
//     two-ring-tour self-healing (experiment E11).
package baseline

import (
	"repro/internal/micropacket"
	"repro/internal/phys"
	"repro/internal/sim"
)

// --- token ring ---

// tokenTag marks the circulating token (a Diagnostic MicroPacket).
const tokenTag = 0x70

// TokenStation is one station on a token-passing ring.
type TokenStation struct {
	ID      micropacket.NodeID
	K       *sim.Kernel
	ring    *TokenRing
	egress  *phys.Port
	sendQ   []phys.Frame
	holding bool

	// OnDeliver receives frames addressed to (or broadcast past) this
	// station.
	OnDeliver func(*micropacket.Packet)

	// Counters (mirror insertion.Station where meaningful).
	Sent      uint64
	Delivered uint64
	Refused   uint64
}

// TokenRing couples n stations on one switch into a token ring.
type TokenRing struct {
	K *sim.Kernel
	// Burst is how many queued frames a station may send per token
	// visit.
	Burst int
	// TokenHold is the processing delay before passing the token on.
	TokenHold sim.Time
	// MaxQueue bounds each station's send queue.
	MaxQueue int

	Stations []*TokenStation
	// Rotations counts full token tours.
	Rotations uint64
}

// DefaultTokenHold is the per-visit token processing latency.
const DefaultTokenHold = 1 * sim.Microsecond

// NewTokenRing wires n stations into a logical ring over switch 0 of
// the cluster (ports must be otherwise unused).
func NewTokenRing(k *sim.Kernel, cluster *phys.Cluster) *TokenRing {
	tr := &TokenRing{K: k, Burst: 8, TokenHold: DefaultTokenHold, MaxQueue: 256}
	n := cluster.NumNodes()
	for i := 0; i < n; i++ {
		st := &TokenStation{ID: micropacket.NodeID(i), K: k, ring: tr}
		st.egress = cluster.NodePorts[i][0]
		i := i
		cluster.NodePorts[i][0].SetHandler(func(_ *phys.Port, f phys.Frame) { st.handle(f) })
		tr.Stations = append(tr.Stations, st)
		cluster.Switches[0].SetRoute(i, (i+1)%n)
	}
	return tr
}

// Start injects the token at station 0.
func (tr *TokenRing) Start() {
	tr.Stations[0].acquireToken()
}

// Send queues a frame at station id; false = queue full (backpressure).
func (tr *TokenRing) Send(id int, p *micropacket.Packet) bool {
	st := tr.Stations[id]
	if len(st.sendQ) >= tr.MaxQueue {
		st.Refused++
		return false
	}
	st.sendQ = append(st.sendQ, st.egress.Net().NewFrame(p))
	return true
}

// acquireToken gives the station its transmission opportunity.
func (st *TokenStation) acquireToken() {
	st.holding = true
	n := st.ring.Burst
	if n > len(st.sendQ) {
		n = len(st.sendQ)
	}
	for i := 0; i < n; i++ {
		st.egress.Send(st.sendQ[i])
		st.Sent++
	}
	st.sendQ = st.sendQ[n:]
	// Pass the token after the hold time (its wire time is modeled by
	// the token frame itself).
	st.K.After(st.ring.TokenHold, func() {
		st.holding = false
		tok := micropacket.NewDiagnostic(st.ID, micropacket.Broadcast, tokenTag)
		st.egress.Send(st.egress.Net().NewFrame(tok))
	})
}

// handle processes an arriving frame: token, delivery, or transit.
func (st *TokenStation) handle(f phys.Frame) {
	pkt := f.Pkt
	if pkt.Type == micropacket.TypeDiagnostic && pkt.Tag == tokenTag {
		if st.ID == 0 {
			st.ring.Rotations++
		}
		st.acquireToken()
		return
	}
	switch {
	case pkt.IsBroadcast() && pkt.Src == st.ID:
		return // strip own broadcast
	case pkt.IsBroadcast():
		st.Delivered++
		if st.OnDeliver != nil {
			st.OnDeliver(pkt)
		}
		st.egress.Send(f)
	case pkt.Dst == st.ID:
		st.Delivered++
		if st.OnDeliver != nil {
			st.OnDeliver(pkt)
		}
	default:
		st.egress.Send(f)
	}
}

// --- drop-tail ring ---

// DropTailStation is an insertion-ring station with the flow control
// removed: it inserts immediately, whatever its local view, so egress
// FIFOs overflow under load and frames are dropped (phys.Net.Drops).
type DropTailStation struct {
	ID     micropacket.NodeID
	K      *sim.Kernel
	egress *phys.Port

	OnDeliver func(*micropacket.Packet)

	Inserted  uint64
	Delivered uint64
	TxDropped uint64 // frames refused by the full egress FIFO
}

// NewDropTailRing wires greedy stations into a ring over switch 0,
// with deliberately small egress FIFOs (like a NIC with a shallow
// transmit queue and no backpressure).
func NewDropTailRing(k *sim.Kernel, cluster *phys.Cluster, fifoCap int) []*DropTailStation {
	n := cluster.NumNodes()
	var out []*DropTailStation
	for i := 0; i < n; i++ {
		st := &DropTailStation{ID: micropacket.NodeID(i), K: k}
		st.egress = cluster.NodePorts[i][0]
		st.egress.SetCapacity(fifoCap)
		cluster.NodePorts[i][0].SetHandler(func(_ *phys.Port, f phys.Frame) { st.handle(f) })
		cluster.Switches[0].SetRoute(i, (i+1)%n)
		out = append(out, st)
	}
	return out
}

// Send inserts immediately — no local-view check, no pacing.
func (st *DropTailStation) Send(p *micropacket.Packet) bool {
	if st.egress.Send(st.egress.Net().NewFrame(p)) {
		st.Inserted++
		return true
	}
	st.TxDropped++
	return false
}

func (st *DropTailStation) handle(f phys.Frame) {
	pkt := f.Pkt
	switch {
	case pkt.IsBroadcast() && pkt.Src == st.ID:
		return
	case pkt.IsBroadcast():
		st.Delivered++
		if st.OnDeliver != nil {
			st.OnDeliver(pkt)
		}
		st.egress.Send(f) // may drop: that is the point
	case pkt.Dst == st.ID:
		st.Delivered++
		if st.OnDeliver != nil {
			st.OnDeliver(pkt)
		}
	default:
		st.egress.Send(f)
	}
}

// --- static switched network ---

// StaticNet is a switched network with fixed forwarding and slow
// protection switching: after a failure it stays broken for
// ReconvergeDelay (spanning-tree style hold-down), then reprograms
// routes around surviving links. No network cache, no rostering.
type StaticNet struct {
	K       *sim.Kernel
	Cluster *phys.Cluster
	// ReconvergeDelay models STP-class re-convergence (hundreds of ms
	// to tens of seconds; default 1 s, generous to the baseline).
	ReconvergeDelay sim.Time

	Stations []*StaticStation
	// Reconvergences counts repair events.
	Reconvergences uint64
	pending        bool
}

// StaticStation is a plain store-and-forward endpoint on the static
// network.
type StaticStation struct {
	ID        micropacket.NodeID
	net       *StaticNet
	egress    *phys.Port
	OnDeliver func(*micropacket.Packet)
	Delivered uint64
	TxFail    uint64
}

// DefaultReconverge is the default protection-switching delay.
const DefaultReconverge = 1 * sim.Second

// NewStaticNet builds the baseline over the same redundant cluster
// hardware AmpNet uses, rings the nodes over switch 0, and watches for
// failures with the same PHY detection.
func NewStaticNet(k *sim.Kernel, cluster *phys.Cluster) *StaticNet {
	sn := &StaticNet{K: k, Cluster: cluster, ReconvergeDelay: DefaultReconverge}
	n := cluster.NumNodes()
	for i := 0; i < n; i++ {
		st := &StaticStation{ID: micropacket.NodeID(i), net: sn}
		i := i
		for s := 0; s < cluster.NumSwitches(); s++ {
			p := cluster.NodePorts[i][s]
			p.SetHandler(func(_ *phys.Port, f phys.Frame) { st.handle(f) })
			p.SetStatusHandler(func(_ *phys.Port, up bool) {
				if !up {
					sn.scheduleReconverge()
				}
			})
		}
		sn.Stations = append(sn.Stations, st)
	}
	sn.program()
	return sn
}

// program rebuilds a ring over the lowest switch alive at every
// consecutive pair, mimicking a manually-configured network.
func (sn *StaticNet) program() {
	n := sn.Cluster.NumNodes()
	for _, sw := range sn.Cluster.Switches {
		sw.ClearRoutes()
	}
	for i := 0; i < n; i++ {
		next := (i + 1) % n
		cands := sn.Cluster.LiveSwitchesBetween(i, next)
		st := sn.Stations[i]
		if len(cands) == 0 {
			st.egress = nil
			continue
		}
		s := cands[0]
		sn.Cluster.Switches[s].SetRoute(i, next)
		st.egress = sn.Cluster.NodePorts[i][s]
	}
}

// scheduleReconverge arms one repair after the protection delay.
func (sn *StaticNet) scheduleReconverge() {
	if sn.pending {
		return
	}
	sn.pending = true
	sn.K.After(sn.ReconvergeDelay, func() {
		sn.pending = false
		sn.Reconvergences++
		sn.program()
	})
}

// Send transmits from station id around the static ring.
func (sn *StaticNet) Send(id int, p *micropacket.Packet) bool {
	st := sn.Stations[id]
	if st.egress == nil || !st.egress.Send(st.egress.Net().NewFrame(p)) {
		st.TxFail++
		return false
	}
	return true
}

func (st *StaticStation) handle(f phys.Frame) {
	pkt := f.Pkt
	switch {
	case pkt.IsBroadcast() && pkt.Src == st.ID:
		return
	case pkt.IsBroadcast():
		st.Delivered++
		if st.OnDeliver != nil {
			st.OnDeliver(pkt)
		}
		st.forward(f)
	case pkt.Dst == st.ID:
		st.Delivered++
		if st.OnDeliver != nil {
			st.OnDeliver(pkt)
		}
	default:
		st.forward(f)
	}
}

func (st *StaticStation) forward(f phys.Frame) {
	if f.Hops >= 255 {
		return
	}
	f.Hops++
	if st.egress != nil {
		st.egress.Send(f)
	}
}
