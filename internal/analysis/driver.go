package analysis

import (
	"fmt"
	"go/token"
	"io"
	"sort"
)

// RunStandalone loads the packages matching the go list patterns,
// runs the analyzers over every non-dependency package, and prints
// surviving diagnostics to w in `file:line:col: message [ampvet:name]`
// form. It returns the number of diagnostics, so the caller can exit
// non-zero on any finding.
func RunStandalone(w io.Writer, patterns []string, analyzers []*Analyzer) (int, error) {
	pkgs, err := goList(patterns)
	if err != nil {
		return 0, err
	}
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	// go list -deps emits dependencies before dependents, so roots keep
	// a stable command-line-ish order; sort for full determinism.
	var roots []*listedPackage
	for _, p := range pkgs {
		if !p.DepOnly && !p.Standard {
			roots = append(roots, p)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	total := 0
	for _, p := range roots {
		if len(p.GoFiles) == 0 {
			continue
		}
		fset := token.NewFileSet()
		files, err := parseFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			return total, err
		}
		pkg, info, err := checkPackage(fset, p.ImportPath, files, exportImporter(fset, exports))
		if err != nil {
			return total, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		findings, err := RunPackage(fset, files, pkg, info, analyzers)
		if err != nil {
			return total, err
		}
		sort.SliceStable(findings, func(i, j int) bool { return findings[i].Pos < findings[j].Pos })
		for _, f := range findings {
			fmt.Fprintf(w, "%s: %s [ampvet:%s]\n", fset.Position(f.Pos), f.Message, f.Analyzer)
			total++
		}
	}
	return total, nil
}
