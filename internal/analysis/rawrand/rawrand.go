// Package rawrand defines the ampvet analyzer that forbids RNG
// sources other than the scenario-seeded sim.RNG.
//
// The rule: every random stream in simulation code derives from the
// scenario seed through repro/internal/sim's RNG (splitmix64), which
// internal/sim/rng.go pins as the project invariant. math/rand (and
// math/rand/v2) break byte-reproducibility twice over: their default
// streams are seeded from runtime entropy, and their algorithms are
// not stable across Go releases, so the same seed stops meaning the
// same Report after a toolchain bump. crypto/rand is entropy by
// definition. Test files are exempt — a battery may use math/rand
// with a fixed seed to pick scenarios to run, because that stream
// never enters a Report.
package rawrand

import (
	"strconv"

	"repro/internal/analysis"
)

// forbidden maps import paths to why they are rejected.
var forbidden = map[string]string{
	"math/rand":    "seeded from runtime entropy by default and not stream-stable across Go releases",
	"math/rand/v2": "seeded from runtime entropy and not stream-stable across Go releases",
	"crypto/rand":  "pure entropy",
}

// Analyzer rejects imports of non-deterministic RNG packages.
var Analyzer = &analysis.Analyzer{
	Name: "rawrand",
	Doc: "forbid RNGs not derived from the scenario seed: all randomness flows through " +
		"sim.NewRNG(seed) so identical seeds give identical Reports on every engine and Go release",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			why, bad := forbidden[path]
			if !bad {
				continue
			}
			pass.Reportf(imp.Pos(),
				"import of %s (%s): every random stream must derive from the scenario seed "+
					"via sim.NewRNG so identical seeds give identical Reports; "+
					"draw from the kernel's seeded RNG instead",
				path, why)
		}
	}
	return nil
}
