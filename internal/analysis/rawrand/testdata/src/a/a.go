package a

import (
	crand "crypto/rand" // want `import of crypto/rand`
	"math/rand"         // want `import of math/rand`
)

func use() int {
	var b [1]byte
	crand.Read(b[:])
	return rand.Int()
}
