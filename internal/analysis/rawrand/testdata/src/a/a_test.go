package a

import "math/rand"

// Test files are exempt: a battery may pick scenarios with a fixed
// math/rand seed, because that stream never enters a Report.
func testOnlyRand() int { return rand.New(rand.NewSource(1)).Int() }
