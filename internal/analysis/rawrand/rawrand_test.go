package rawrand_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/rawrand"
)

func TestRawrand(t *testing.T) {
	analysistest.Run(t, "testdata", rawrand.Analyzer, "a")
}
