package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
)

// This file implements the `go vet -vettool` separate-compilation
// protocol (the contract golang.org/x/tools/go/analysis/unitchecker
// documents), so CI can run the suite as
//
//	go build -o ampvet ./cmd/ampvet
//	go vet -vettool=$PWD/ampvet ./...
//
// For every package in the build, the go command writes a JSON config
// file describing the compilation unit — source files, the import
// map, and the compiler export-data file of every dependency — and
// invokes the tool as `ampvet <flags> <objdir>/vet.cfg`. The tool
// must also answer two handshakes: `-V=full` prints a version line
// the build cache keys on, and `-flags` prints the tool's analyzer
// flags as JSON.

// unitConfig mirrors the JSON schema of the go command's vet.cfg.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// PrintVersion answers the -V=full handshake. The line must read
// `<name> version <id>` with a non-"devel" id; hashing our own binary
// makes the build cache re-vet everything whenever ampvet changes.
func PrintVersion(w io.Writer) {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))[:16]
			}
			f.Close()
		}
	}
	fmt.Fprintf(w, "ampvet version %s\n", id)
}

// PrintFlags answers the -flags handshake: ampvet defines no
// analyzer flags, so the set is empty.
func PrintFlags(w io.Writer) {
	fmt.Fprintln(w, "[]")
}

// RunUnit analyzes the single compilation unit described by cfgFile
// and prints surviving diagnostics to w. It returns the number of
// diagnostics; the caller exits non-zero on any.
func RunUnit(w io.Writer, cfgFile string, analyzers []*Analyzer) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return 0, fmt.Errorf("cannot decode vet config %s: %v", cfgFile, err)
	}
	// The go command consumes the fact output of dependency runs; the
	// suite computes no facts, so an empty file satisfies the contract.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return 0, err
		}
	}
	// Dependency-only invocations (VetxOnly) and foreign packages need
	// no analysis: the determinism rules govern this module's code.
	if cfg.VetxOnly || cfg.Standard[cfg.ImportPath] {
		return 0, nil
	}

	fset := token.NewFileSet()
	files, err := parseFiles(fset, "", cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
	info := NewInfo()
	conf := &types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}

	findings, err := RunPackage(fset, files, pkg, info, analyzers)
	if err != nil {
		return 0, err
	}
	sort.SliceStable(findings, func(i, j int) bool { return findings[i].Pos < findings[j].Pos })
	for _, f := range findings {
		fmt.Fprintf(w, "%s: %s [ampvet:%s]\n", fset.Position(f.Pos), f.Message, f.Analyzer)
	}
	return len(findings), nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
