// Fixture for the framesink analyzer: a miniature of the real phys
// package's frame-handling shapes. The package is named "phys" so the
// analyzer's package scoping governs it.
package phys

type Packet struct{ Dst int }

// Frame is the fixture stand-in for phys.Frame (matched by name).
type Frame struct {
	Pkt  *Packet
	Hops int
}

// Acct is the fixture stand-in for frameacct.Acct (matched by name).
type Acct struct{ Lost int }

func (a *Acct) Lose(cause int)    { a.Lost++ }
func (a *Acct) Consume(cause int) { a.Lost++ }

type Port struct {
	acct    *Acct
	up      bool
	stored  Frame
	fifo    []Frame
	out     chan Frame
	handler func(Frame)
}

func (p *Port) deliver(f Frame) bool { p.handler(f); return true }

// silentDrop returns with a live frame and no disposition: the exact
// bug class the analyzer exists for.
func (p *Port) silentDrop(f Frame) {
	if !p.up {
		return // want `uncounted frame sink`
	}
	p.handler(f)
}

// countedDrop accounts the death before returning: fine.
func (p *Port) countedDrop(f Frame) {
	if !p.up {
		p.acct.Lose(1)
		return
	}
	p.handler(f)
}

// handedOff passes the frame on before the guard: the return no longer
// owns it.
func (p *Port) handedOff(f Frame) {
	p.handler(f)
	if !p.up {
		return
	}
}

// condHandoff disposes of the frame inside the if condition itself.
func (p *Port) condHandoff(f Frame) {
	if p.deliver(f) {
		return
	}
}

// storedAway parks the frame in a field; ownership moved.
func (p *Port) storedAway(f Frame) {
	p.stored = f
	if !p.up {
		return
	}
}

func (p *Port) queued(f Frame) {
	p.fifo = append(p.fifo, f)
	if !p.up {
		return
	}
}

func (p *Port) channeled(f Frame) {
	p.out <- f
	if !p.up {
		return
	}
}

// predicate returns a value: the caller still owns the frame, so its
// early returns are exempt.
func (p *Port) predicate(f Frame) bool {
	if f.Hops > 4 {
		return false
	}
	return true
}

// boundLocal binds a frame mid-function; returns before the binding
// are fine, returns after it without disposition are not.
func (p *Port) boundLocal() {
	if !p.up {
		return // no frame live yet: fine
	}
	f := p.stored
	if f.Hops > 4 {
		return // want `uncounted frame sink`
	}
	p.handler(f)
}

// closureHandoff hands the frame to a deferred closure; the call
// carrying the closure counts as the disposition.
func (p *Port) closureHandoff(f Frame, do func(func())) {
	do(func() { p.handler(f) })
	if !p.up {
		return
	}
}

// insideClosure: a void closure with its own frame parameter is
// checked as its own function.
func (p *Port) insideClosure() {
	p.handler = func(f Frame) {
		if !p.up {
			return // want `uncounted frame sink`
		}
		p.fifo = append(p.fifo, f)
	}
}

// waived: the escape hatch for a frame owned elsewhere.
func (p *Port) waived(f Frame) {
	if !p.up {
		//ampvet:allow framesink fixture exercising the escape hatch
		return
	}
	p.handler(f)
}
