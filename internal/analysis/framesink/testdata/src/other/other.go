// Fixture for the framesink analyzer: a package outside the governed
// set (phys/insertion/rostering). Even a blatant silent drop is not
// this analyzer's business here — other packages do not own ledgered
// frames.
package other

type Frame struct{ Hops int }

type Host struct {
	up      bool
	handler func(Frame)
}

func (h *Host) silentDropElsewhere(f Frame) {
	if !h.up {
		return // not governed: no diagnostic
	}
	h.handler(f)
}
