// Package framesink defines the ampvet analyzer that guards the frame
// ledger's closed-sink property: in the frame-handling packages (phys,
// insertion, rostering) a function holding a Frame must not return
// without deciding the frame's fate.
//
// The rule exists because the conservation invariant
// (internal/frameacct) is only as strong as the weakest death site: a
// single `return` that silently drops a frame shows up as a residual
// gauge that never drains, and the invariant can name the imbalance
// but not the line. This analyzer names the line. A void function (or
// closure) that binds a Frame — as a parameter or a := binding — must,
// on the path to every `return`, either
//
//   - account the frame on the ledger (any call on a frameacct.Acct:
//     Lose, LoseN, Consume, Deliver, ClearFifo, ...), or
//   - hand the frame off (pass a Frame-typed value to any call — Send,
//     a handler, a pooled record constructor, append — store it into a
//     field or slice, or send it on a channel).
//
// Value-returning functions are exempt: predicates and codecs
// (floodAdmit, deepPath) read frames whose fate belongs to the caller.
// The analysis is path-insensitive by design — handling anywhere
// before the return, including inside an earlier branch, counts — so
// it errs toward false negatives, never toward noise. Waive a
// legitimately unaccounted return (a frame owned elsewhere) with
// `//ampvet:allow framesink <reason>`.
package framesink

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer rejects returns that drop a bound frame without a ledger
// call or a handoff.
var Analyzer = &analysis.Analyzer{
	Name: "framesink",
	Doc: "forbid uncounted frame sinks in phys/insertion/rostering: a void function holding a " +
		"phys.Frame must account it (frameacct.Acct call) or hand it off (call argument, store, " +
		"channel send) on the path to every return",
	Run: run,
}

// governed reports whether the package handles frames under the
// conservation ledger (the bare names cover test fixtures).
func governed(path string) bool {
	for _, p := range []string{"phys", "insertion", "rostering"} {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !governed(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Type, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Type, fn.Body)
			}
			return true
		})
	}
	return nil
}

// checkFunc scans one void function (value-returning functions read
// frames on the caller's behalf and are exempt).
func checkFunc(pass *analysis.Pass, typ *ast.FuncType, body *ast.BlockStmt) {
	if typ.Results != nil && len(typ.Results.List) > 0 {
		return
	}
	live := false
	if typ.Params != nil {
		for _, fld := range typ.Params.List {
			if len(fld.Names) > 0 && isFrame(pass.TypesInfo.Types[fld.Type].Type) {
				live = true
			}
		}
	}
	scan(pass, body.List, live, false)
}

// scan walks a statement list in order, tracking whether a frame is
// bound (live) and whether its fate has been decided on this path
// (handled). Nested function literals are skipped — each is checked as
// its own function — but a literal passed in a call still counts as a
// handoff for the enclosing scope when it captures the frame.
func scan(pass *analysis.Pass, stmts []ast.Stmt, live, handled bool) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ast.ReturnStmt:
			if live && !handled {
				pass.Reportf(s.Pos(),
					"uncounted frame sink: this return drops a frame with no frameacct call and no "+
						"handoff on the path; count the death (Acct.Lose with its cause) or hand the "+
						"frame off, or waive an externally-owned frame with //ampvet:allow framesink")
			}
		case *ast.IfStmt:
			branchHandled := handled || stmtHandles(pass, s.Init) || exprHandles(pass, s.Cond)
			scan(pass, s.Body.List, live, branchHandled)
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				scan(pass, e.List, live, branchHandled)
			case *ast.IfStmt:
				scan(pass, []ast.Stmt{e}, live, branchHandled)
			}
		case *ast.SwitchStmt:
			branchHandled := handled || stmtHandles(pass, s.Init) || exprHandles(pass, s.Tag)
			for _, c := range s.Body.List {
				scan(pass, c.(*ast.CaseClause).Body, live, branchHandled)
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				scan(pass, c.(*ast.CaseClause).Body, live, handled)
			}
		case *ast.ForStmt:
			scan(pass, s.Body.List, live, handled || exprHandles(pass, s.Cond))
		case *ast.RangeStmt:
			scan(pass, s.Body.List, live, handled)
		case *ast.BlockStmt:
			scan(pass, s.List, live, handled)
		case *ast.LabeledStmt:
			scan(pass, []ast.Stmt{s.Stmt}, live, handled)
		}
		if bindsFrame(pass, st) {
			// A fresh frame binding needs its own disposition.
			live, handled = true, false
		}
		if stmtHandles(pass, st) {
			handled = true
		}
	}
}

// bindsFrame reports whether st introduces a Frame-typed variable (a
// := define or a var declaration).
func bindsFrame(pass *analysis.Pass, st ast.Stmt) bool {
	switch s := st.(type) {
	case *ast.AssignStmt:
		if s.Tok != token.DEFINE {
			return false
		}
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.TypesInfo.Defs[id]; obj != nil && isFrame(obj.Type()) {
					return true
				}
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, id := range vs.Names {
				if obj := pass.TypesInfo.Defs[id]; obj != nil && isFrame(obj.Type()) {
					return true
				}
			}
		}
	}
	return false
}

// stmtHandles reports whether any expression in st decides a frame's
// fate (see exprHandles).
func stmtHandles(pass *analysis.Pass, st ast.Stmt) bool {
	if st == nil {
		return false
	}
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if callHandles(pass, n) {
				found = true
				return false
			}
		case *ast.AssignStmt:
			if storeHandles(pass, n) {
				found = true
				return false
			}
		case *ast.SendStmt:
			if isFrame(pass.TypesInfo.Types[n.Value].Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprHandles is stmtHandles over a bare expression (an if condition,
// a switch tag).
func exprHandles(pass *analysis.Pass, e ast.Expr) bool {
	if e == nil {
		return false
	}
	return stmtHandles(pass, &ast.ExprStmt{X: e})
}

// callHandles reports whether the call accounts a frame (any method on
// a frameacct.Acct) or hands one off (a Frame-typed argument).
func callHandles(pass *analysis.Pass, call *ast.CallExpr) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if tv, ok := pass.TypesInfo.Types[sel.X]; ok && isAcct(tv.Type) {
			return true
		}
	}
	for _, arg := range call.Args {
		if isFrame(pass.TypesInfo.Types[arg].Type) {
			return true
		}
	}
	return false
}

// storeHandles reports whether the assignment writes a Frame-typed
// value into a field or element — parking the frame somewhere that
// outlives the function (a FIFO slot, a pooled record).
func storeHandles(pass *analysis.Pass, as *ast.AssignStmt) bool {
	for i, lhs := range as.Lhs {
		switch ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr, *ast.IndexExpr:
		default:
			continue
		}
		if i < len(as.Rhs) {
			if isFrame(pass.TypesInfo.Types[as.Rhs[i]].Type) {
				return true
			}
		} else if len(as.Rhs) == 1 {
			if isFrame(pass.TypesInfo.Types[as.Rhs[0]].Type) {
				return true
			}
		}
	}
	return false
}

// isFrame reports whether t is the named type Frame (or *Frame) of a
// frame-handling package.
func isFrame(t types.Type) bool { return isNamed(t, "Frame") }

// isAcct reports whether t is the frame ledger type Acct (or *Acct).
func isAcct(t types.Type) bool { return isNamed(t, "Acct") }

func isNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == name
}
