package framesink_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/framesink"
)

func TestFramesink(t *testing.T) {
	analysistest.Run(t, "testdata", framesink.Analyzer, "phys", "other")
}
