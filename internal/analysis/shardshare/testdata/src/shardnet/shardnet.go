package shardnet

// Transport stands in for the shardnet transport: per-shard capture
// queues and counters that only barrier-time code may touch.
type Transport struct {
	frames   [][]int
	frameSeq []int
	routes   [][]int
	stats    []int
	work     []chan int
	done     chan error
	window   int
}

// NewTransport launches the shard workers; it runs on the coordinator.
func NewTransport(t *Transport) {
	t.window = 0 // coordinator context: fine
	for i := range t.work {
		go t.worker(i, t.work[i])
	}
}

func (t *Transport) worker(i int, ch chan int) {
	for range ch {
		t.done <- t.runShard(i) // channel send: communication, fine
	}
}

// runShard is shard context by propagation: worker calls it.
func (t *Transport) runShard(i int) (err error) {
	defer func() {
		if recover() != nil {
			err = nil // named result: a plain local, fine
		}
	}()
	t.window++ // want `write to shared coordinator state`
	return nil
}

// Grant is coordinator context: never reached from shard context.
func (t *Transport) Grant(target int) {
	t.window++ // coordinator context: fine
}

// capture implements the RemoteExchange surface, making all its
// methods shard context.
type capture struct {
	t     *Transport
	shard int
}

// RemoteFrame is the sanctioned frame-capture path: per-shard appends
// the coordinator drains at the barrier.
func (x *capture) RemoteFrame(v int) {
	x.t.frames[x.shard] = append(x.t.frames[x.shard], v)
	x.t.frameSeq[x.shard]++
}

// DeferRoute is the sanctioned route-capture path.
func (t *Transport) DeferRoute(srcShard, op int) {
	t.routes[srcShard] = append(t.routes[srcShard], op)
}

// tally is NOT sanctioned: a capture-surface method mutating shared
// counters outside the sanctioned paths is flagged.
func (x *capture) tally(v int) {
	x.t.stats[x.shard] = v // want `write to shared coordinator state`
}

func (x *capture) allowed(v int) {
	//ampvet:allow shardshare stats slot is owned by this shard between barriers
	x.t.stats[x.shard] = v
}
