package parsim

// Engine stands in for the parsim coordinator: shared state that only
// barrier-time code may touch.
type Engine struct {
	now    int
	frames [][]int
	seq    []int
	stats  int
	work   []chan int
	done   chan struct{}
}

var global int

// New launches the shard workers; New itself runs on the coordinator.
func New(e *Engine) {
	e.now = 0 // coordinator context: fine
	for i := range e.work {
		go e.worker(i, e.work[i])
	}
	go func() {
		e.stats++ // want `write to shared coordinator state`
	}()
}

func (e *Engine) worker(i int, ch chan int) {
	for range ch {
		e.now = 1 // want `write to shared coordinator state`
		e.helper()
		e.done <- struct{}{} // channel send: communication, fine
		var local struct{ n int }
		local.n++ // field of a function-local value: fine
		k := 0
		k++        // plain local: fine
		global = k // want `write to shared coordinator state`
	}
}

// helper is shard context by propagation: worker calls it.
func (e *Engine) helper() {
	e.stats++ // want `write to shared coordinator state`
}

// coordinatorDrain is never reached from shard context.
func (e *Engine) coordinatorDrain() {
	e.stats++ // coordinator context: fine
}

// exchange implements the RemoteExchange capture surface, making all
// its methods shard context.
type exchange struct {
	e     *Engine
	shard int
}

// RemoteFrame is the sanctioned capture path: per-shard appends the
// coordinator drains at the barrier.
func (x *exchange) RemoteFrame(v int) {
	x.e.frames[x.shard] = append(x.e.frames[x.shard], v)
	x.e.seq[x.shard]++
}

func (x *exchange) sideDoor(v int) {
	x.e.stats = v // want `write to shared coordinator state`
}

func (x *exchange) allowed(v int) {
	//ampvet:allow shardshare pinned by a barrier in the caller
	x.e.stats = v
}
