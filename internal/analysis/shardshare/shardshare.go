// Package shardshare defines the ampvet analyzer that forbids
// shard-goroutine writes to coordinator state in the parallel engine.
//
// The rule: parsim's determinism contract (DESIGN.md, "determinism
// under parallelism") is that between barriers a shard goroutine may
// mutate only its own kernel's world; everything shared — engine
// counters, the action queue, fabric state — is written single-
// threaded at barriers or through the sanctioned capture paths
// (RemoteExchange's RemoteFrame, Engine.DeferRoute), which append to
// per-shard queues the coordinator drains in canonical order. A
// direct write to shared state from shard context is at best a data
// race the -race batteries may or may not catch on a sampled seed,
// and at worst a deterministic-looking heisenbug whose effect order
// depends on the host scheduler, breaking serial/parallel Report
// equality.
//
// The rule covers both halves of the engine: repro/internal/parsim
// (the barrier engine) and repro/internal/shardnet (the transport
// subsystem whose Inproc implementation owns the shard goroutines and
// the capture queues, and whose Socket implementation mirrors them to
// worker processes).
//
// Shard context is computed statically: every function launched by a
// `go` statement in the package, every method of a type that
// implements the RemoteExchange capture surface (a RemoteFrame
// method), and everything those functions call within the package.
// Within shard context the analyzer flags assignments and ++/--
// through a field selector (state reached via a receiver, parameter
// or captured pointer), unless the path is rooted at a function-local
// non-pointer variable. Channel operations are communication, not
// shared-state writes, and stay legal.
package shardshare

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/detmap"
)

// Analyzer rejects writes to shared coordinator state from shard
// goroutines in parsim packages.
var Analyzer = &analysis.Analyzer{
	Name: "shardshare",
	Doc: "forbid shard-goroutine writes to coordinator/cluster state: between barriers a shard " +
		"may mutate only its own kernel's world; cross-shard effects go through the " +
		"RemoteExchange capture or a coordinator action (Engine.ScheduleAt)",
	Run: run,
}

// inScope reports whether the package is a parallel-engine package:
// parsim (the barrier engine) or shardnet (the transport subsystem the
// shard goroutines and capture queues moved into).
func inScope(path string) bool {
	for _, pkg := range []string{"parsim", "shardnet"} {
		if path == "repro/internal/"+pkg || path == pkg || strings.HasSuffix(path, "/"+pkg) {
			return true
		}
	}
	return false
}

// sanctioned names the capture APIs that are allowed to append into
// per-shard queues from shard context; the coordinator drains them at
// barriers in canonical order.
func sanctioned(name string) bool {
	return name == "RemoteFrame" || name == "DeferRoute"
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}

	// Map every declared function object to its declaration.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}

	shard := map[*types.Func]bool{} // shard-context functions
	var litRoots []*ast.FuncLit     // go func(){...} bodies: shard context directly

	// Roots 1: methods of any type implementing the capture surface.
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		ms := types.NewMethodSet(types.NewPointer(tn.Type()))
		captures := false
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == "RemoteFrame" {
				captures = true
				break
			}
		}
		if !captures {
			continue
		}
		for i := 0; i < ms.Len(); i++ {
			if fn, ok := ms.At(i).Obj().(*types.Func); ok {
				shard[fn] = true
			}
		}
	}

	// Roots 2: callees of go statements anywhere in the package.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				litRoots = append(litRoots, fun)
			default:
				if fn := calleeFunc(pass, g.Call); fn != nil {
					shard[fn] = true
				}
			}
			return true
		})
	}

	// Propagate through same-package static calls to a fixed point.
	for changed := true; changed; {
		changed = false
		//ampvet:allow detmap fixed-point set union: result independent of visit order
		for fn := range shard {
			fd := decls[fn]
			if fd == nil || fd.Body == nil {
				continue
			}
			for _, callee := range calleesOf(pass, fd.Body) {
				if _, ok := decls[callee]; ok && !shard[callee] {
					shard[callee] = true
					changed = true
				}
			}
		}
	}

	for _, fn := range detmap.SortedKeysFunc(shard, func(a, b *types.Func) bool { return a.Pos() < b.Pos() }) {
		if sanctioned(fn.Name()) {
			continue
		}
		if fd := decls[fn]; fd != nil && fd.Body != nil {
			checkBody(pass, fd)
		}
	}
	for _, lit := range litRoots {
		checkWrites(pass, lit.Body, nil)
	}
	return nil
}

// calleeFunc resolves a call's target to a function object declared
// in this package, or nil.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() != pass.Pkg {
		return nil
	}
	return fn
}

// calleesOf lists the same-package functions a body statically calls.
func calleesOf(pass *analysis.Pass, body *ast.BlockStmt) []*types.Func {
	var out []*types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(pass, call); fn != nil {
				out = append(out, fn)
			}
		}
		return true
	})
	return out
}

// checkBody flags shared-state writes in one shard-context function.
func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	checkWrites(pass, fd.Body, fd)
}

func checkWrites(pass *analysis.Pass, body *ast.BlockStmt, fd *ast.FuncDecl) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if isSharedWrite(pass, lhs, body) {
					report(pass, lhs.Pos())
				}
			}
		case *ast.IncDecStmt:
			if isSharedWrite(pass, n.X, body) {
				report(pass, n.X.Pos())
			}
		}
		return true
	})
}

func report(pass *analysis.Pass, pos token.Pos) {
	pass.Reportf(pos,
		"write to shared coordinator state from a shard goroutine: between barriers a shard may "+
			"mutate only its own kernel's world; route cross-shard effects through the "+
			"RemoteExchange capture (RemoteFrame/DeferRoute) or a coordinator action "+
			"(Engine.ScheduleAt), which run with all shards parked")
}

// isSharedWrite reports whether the write target reaches state beyond
// the function's own locals: any path through a field selector whose
// root is not a local non-pointer variable declared inside body.
func isSharedWrite(pass *analysis.Pass, lhs ast.Expr, body *ast.BlockStmt) bool {
	hasSelector := false
	e := ast.Unparen(lhs)
loop:
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			// Only field selections count; a package-qualified name
			// (pkg.Var) is handled by the Ident case after types say so.
			if sel, ok := pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
				hasSelector = true
			}
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
		case *ast.SliceExpr:
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			// Writing through an explicit dereference: the pointee is
			// shared unless the pointer is provably local, which we
			// cannot know — treat as shared.
			hasSelector = true
			e = ast.Unparen(x.X)
		default:
			break loop
		}
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return hasSelector
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return hasSelector
	}
	// Package-level variable: shared no matter how it is written.
	if v.Parent() == pass.Pkg.Scope() {
		return true
	}
	if !hasSelector {
		return false // x = ..., x[i] = ... on a local: stays local
	}
	// A field write v.f = ...: legal only when v is a non-pointer
	// variable declared inside this function body (a genuinely private
	// struct); receivers, parameters and pointer locals alias state
	// that outlives the window.
	if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
		return true
	}
	return body == nil || v.Pos() < body.Pos() || v.Pos() > body.End()
}
