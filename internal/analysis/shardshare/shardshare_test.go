package shardshare_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/shardshare"
)

func TestShardshare(t *testing.T) {
	analysistest.Run(t, "testdata", shardshare.Analyzer, "parsim", "shardnet")
}
