package a

import "sort"

func sumUnordered(m map[string]int) int {
	s := 0
	for _, v := range m { // want `unordered map iteration`
		s += v
	}
	return s
}

func keyOnlyForm(m map[string]int) {
	for range m { // want `unordered map iteration`
	}
}

type set map[int]bool

func namedMapType(s set) []int {
	var out []int
	for k := range s { // want `unordered map iteration`
		out = append(out, k)
	}
	return out
}

func allowedWithJustification(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //ampvet:allow detmap keys are sorted before any use below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func slicesAreFine(s []int) (t int) {
	for _, v := range s {
		t += v
	}
	return
}

func channelsAreFine(ch chan int) int {
	for v := range ch {
		return v
	}
	return 0
}
