// Package detmap defines the ampvet analyzer that forbids iterating
// maps in unordered form.
//
// The rule: Go randomizes map iteration order on every run, so any
// bytes downstream of a bare `for range m` — Report JSON, plan text,
// wire frames, table rows, log lines — can differ between two runs of
// the same seed even on one engine, which is exactly the
// nondeterminism the serial/parallel equivalence batteries exist to
// rule out. The batteries only sample seeds; this analyzer rejects
// the pattern on every line. Iterate detmap.SortedKeys(m) (package
// repro/internal/detmap) instead, or — for an iteration whose order
// provably cannot escape (pure counting, building another map,
// results sorted before use) — waive the line:
//
//	for k := range m { //ampvet:allow detmap order folded into a commutative sum
package detmap

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer rejects ranging over a map without a deterministic order.
var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	Doc: "forbid unordered map iteration: range order is randomized per run, so bytes derived " +
		"from it break byte-identical Reports; iterate detmap.SortedKeys(m) instead",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			pass.Reportf(rng.Pos(),
				"unordered map iteration: range order is randomized per run, so any Report/plan/wire "+
					"bytes derived from it are nondeterministic; iterate detmap.SortedKeys(m) "+
					"(repro/internal/detmap), or justify with //ampvet:allow detmap <reason> "+
					"if the order provably cannot escape")
			return true
		})
	}
	return nil
}
