package detmap_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detmap"
)

func TestDetmap(t *testing.T) {
	analysistest.Run(t, "testdata", detmap.Analyzer, "a")
}
