// Package analysis is the foundation of ampvet, AmpNet's determinism
// lint suite: a minimal analyzer framework plus the drivers that run
// it, both standalone (`ampvet ./...`) and under the `go vet -vettool`
// separate-compilation protocol.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic) so the suite can migrate onto the
// upstream framework wholesale if the dependency ever becomes
// available; it is reimplemented here on the standard library alone
// (go/ast, go/types, go/importer) because this repository builds with
// zero external modules.
//
// Why lint determinism at all: the serial and sharded engines must
// produce byte-identical Reports (DESIGN.md, "determinism under
// parallelism"). The equivalence batteries only sample seeds; the
// analyzers in internal/analysis/... machine-check the coding rules
// that make the property hold on every line before any test runs —
// virtual time only, seeded RNG streams only, no unordered map
// iteration feeding output bytes, all wire layout through
// internal/wire, no shard-goroutine writes to coordinator state.
//
// # The //ampvet:allow escape hatch
//
// A rule is suppressed, never silently, with a line comment:
//
//	start := time.Now() //ampvet:allow walltime operator-facing progress print
//
// The comment names the analyzer being waived (comma-separated for
// several) and should carry a short justification. It applies to
// diagnostics on its own line, or — when written on a line by itself —
// to the line directly below it. Test files (_test.go) are exempt from
// every analyzer: tests may use wall clocks and math/rand freely to
// drive the simulation from outside.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one ampvet rule and the function that checks
// it. Analyzers self-scope: Run inspects pass.Pkg.Path() and returns
// early for packages its rule does not govern.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //ampvet:allow comments. It must be a valid identifier.
	Name string
	// Doc states the rule and, crucially, why it preserves
	// byte-identical Reports — diagnostics as documentation.
	Doc string
	// Run applies the rule to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer run over one package: the syntax, the
// type information, and the Report sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one rule violation at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// allowPrefix introduces a suppression comment.
const allowPrefix = "ampvet:allow"

// A Suppressor decides, from //ampvet:allow comments and file names,
// whether a diagnostic must be dropped. Build one per package with
// NewSuppressor and consult it from the driver's Report sink.
type Suppressor struct {
	fset *token.FileSet
	// allowed maps file name -> line -> analyzer names waived there.
	allowed map[string]map[int][]string
}

// NewSuppressor scans the files' comments for //ampvet:allow
// annotations. Files must have been parsed with parser.ParseComments.
func NewSuppressor(fset *token.FileSet, files []*ast.File) *Suppressor {
	s := &Suppressor{fset: fset, allowed: map[string]map[int][]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue // a bare ampvet:allow waives nothing
				}
				pos := fset.Position(c.Pos())
				byLine := s.allowed[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					s.allowed[pos.Filename] = byLine
				}
				names := strings.Split(fields[0], ",")
				byLine[pos.Line] = append(byLine[pos.Line], names...)
			}
		}
	}
	return s
}

// Suppressed reports whether a diagnostic from the named analyzer at
// pos is waived: the position is in a _test.go file, or an
// //ampvet:allow naming the analyzer sits on the same line or on the
// line directly above.
func (s *Suppressor) Suppressed(name string, pos token.Pos) bool {
	p := s.fset.Position(pos)
	if strings.HasSuffix(p.Filename, "_test.go") {
		return true
	}
	byLine := s.allowed[p.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, n := range byLine[line] {
			if n == name {
				return true
			}
		}
	}
	return false
}

// RunPackage applies every analyzer to one type-checked package,
// returning the surviving (non-suppressed) diagnostics tagged with the
// analyzer that produced them, in source order per analyzer.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	sup := NewSuppressor(fset, files)
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d Diagnostic) {
				if sup.Suppressed(a.Name, d.Pos) {
					return
				}
				out = append(out, Finding{Analyzer: a.Name, Pos: d.Pos, Message: d.Message})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path(), err)
		}
	}
	return out, nil
}

// A Finding is a surviving diagnostic attributed to its analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// NewInfo allocates the full types.Info map set the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}
