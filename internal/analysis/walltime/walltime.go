// Package walltime defines the ampvet analyzer that forbids wall-clock
// time in simulation code.
//
// The rule: model and driver code advances on virtual sim.Time only.
// A wall-clock read (time.Now, time.Since) or wall-clock wait
// (time.Sleep, time.After, timers, tickers) couples simulation
// behavior to host speed and scheduling, so two runs of the same seed
// — or the serial engine versus the sharded one, whose goroutines
// interleave differently — stop producing byte-identical Reports.
// Durations and constants (time.Duration, time.Millisecond) are fine:
// they are plain arithmetic, not clock reads.
//
// Operator-facing wall-clock prints (a CLI reporting how long a sweep
// took) are legitimate; waive them per line:
//
//	start := time.Now() //ampvet:allow walltime operator progress print
//
// internal/telemetry is exempt wholesale: it is the one audited
// wall-clock surface in the tree — everything else reaches the wall
// clock through its Clock interface (or a per-line waiver), which is
// what keeps the determinism argument reviewable in one place.
package walltime

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// forbidden lists the package time functions whose call sites read or
// wait on the wall clock.
var forbidden = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "blocks on host time",
	"After":     "fires on host time",
	"AfterFunc": "fires on host time",
	"Tick":      "fires on host time",
	"NewTimer":  "fires on host time",
	"NewTicker": "fires on host time",
}

// Analyzer rejects wall-clock reads and waits outside test files.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock time in simulation code: state must advance on virtual sim.Time " +
		"only, or serial and sharded runs of the same seed diverge",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// The telemetry package is the tree's sole sanctioned wall-clock
	// surface (see the package doc); the bare path is the fixture's.
	switch pass.Pkg.Path() {
	case "repro/internal/telemetry", "telemetry":
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			why, bad := forbidden[fn.Name()]
			if !bad {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s %s: simulation state must advance on virtual sim.Time only "+
					"(use the kernel clock), or serial and sharded runs of the same seed diverge; "+
					"for operator-facing wall-clock prints add //ampvet:allow walltime <reason>",
				fn.Name(), why)
			return true
		})
	}
	return nil
}
