// Package telemetry mirrors repro/internal/telemetry for the walltime
// fixture: the analyzer exempts the telemetry package wholesale (it is
// the tree's one audited wall-clock surface), so none of the reads and
// waits below carry want comments.
package telemetry

import "time"

func now() int64 { return time.Now().UnixNano() }

func elapsed(start time.Time) time.Duration {
	time.Sleep(time.Microsecond)
	return time.Since(start)
}
