package a

import "time"

// Test files are exempt: a battery may wall-budget a run from outside
// the simulation.
func testOnlyWallClock() time.Duration {
	start := time.Now()
	return time.Since(start)
}
