package a

import "time"

func bad() time.Duration {
	start := time.Now()          // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep blocks on host time`
	<-time.After(time.Second)    // want `time\.After fires on host time`
	_ = time.NewTicker(1)        // want `time\.NewTicker fires on host time`
	return time.Since(start)     // want `time\.Since reads the wall clock`
}

func allowedSameLine() time.Time {
	return time.Now() //ampvet:allow walltime operator-facing progress print
}

func allowedLineAbove() time.Time {
	//ampvet:allow walltime operator-facing progress print
	return time.Now()
}

func otherAllowDoesNotWaive() time.Time {
	//ampvet:allow detmap wrong analyzer named
	return time.Now() // want `time\.Now reads the wall clock`
}

func durationsAreFine(d time.Duration) time.Duration {
	t := time.Unix(0, 0)
	_ = t.Add(time.Hour)
	return d.Round(time.Millisecond)
}
