package walltime_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/walltime"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, "testdata", walltime.Analyzer, "a", "telemetry")
}
