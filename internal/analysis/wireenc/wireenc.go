// Package wireenc defines the ampvet analyzer that forbids
// hand-rolled wire byte layout outside internal/wire.
//
// The rule: PR 5 moved every MicroPacket frame layout into the
// versioned codec registry of repro/internal/wire precisely so that
// no second copy of "which byte means what" can drift from the golden
// vectors. A multi-byte field composed by indexing and shifting a
// byte buffer — `uint32(b[4])<<8 | uint32(b[3])` or
// `b[5] = byte(x >> 8)` — is such a second copy: it re-encodes layout
// knowledge (offset, width, endianness) at the call site, where a
// format-version bump cannot reach it. Outside internal/wire, frame
// bytes go through wire.Encode/Decode and payload fields through
// encoding/binary against the layout comment of the owning package
// (how internal/rostering and internal/ampdc do it).
//
// The analyzer flags any expression tree that combines an index into
// a byte slice or byte array with a shift, and any assignment into a
// byte-slice element whose value involves a shift. Single-byte reads
// and writes (flags, tags, masks of one byte) are untouched.
package wireenc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer rejects index+shift byte-layout composition outside the
// wire codec registry.
var Analyzer = &analysis.Analyzer{
	Name: "wireenc",
	Doc: "forbid hand-rolled wire byte layout outside internal/wire: multi-byte fields composed " +
		"with index+shift duplicate layout knowledge the versioned codecs own; use " +
		"wire.Encode/Decode or encoding/binary over a documented layout",
	Run: run,
}

// exempt reports whether the package owns frame layout: the codec
// registry itself (repro/internal/wire; bare "wire" covers the
// analysistest fixture of the same name).
func exempt(path string) bool {
	return path == "repro/internal/wire" || path == "wire" || strings.HasSuffix(path, "/wire")
}

func run(pass *analysis.Pass) error {
	if exempt(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		var reported []ast.Node
		covered := func(n ast.Node) bool {
			for _, r := range reported {
				if r.Pos() <= n.Pos() && n.End() <= r.End() {
					return true
				}
			}
			return false
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				// b[i] = byte(x >> 8): writing one byte of a wider value.
				for i, lhs := range n.Lhs {
					if !isByteElemIndex(pass, lhs) {
						continue
					}
					if i < len(n.Rhs) && containsShift(n.Rhs[i]) && !covered(n) {
						reported = append(reported, n)
						report(pass, n.Pos())
					}
				}
			case *ast.BinaryExpr:
				// uint32(b[4])<<8 | uint32(b[3]): reading a wider value
				// out of bytes. Flag the outermost tree that mixes a
				// shift with a byte-element load.
				if covered(n) {
					return false
				}
				if containsShift(n) && containsByteElemIndex(pass, n) {
					reported = append(reported, n)
					report(pass, n.Pos())
					return false
				}
			}
			return true
		})
	}
	return nil
}

func report(pass *analysis.Pass, pos token.Pos) {
	pass.Reportf(pos,
		"hand-rolled wire byte layout (index+shift on a byte buffer): layout knowledge outside "+
			"internal/wire drifts from the versioned codecs and their golden vectors; use "+
			"wire.Encode/Decode, the owning package's accessors, or encoding/binary over a "+
			"documented layout")
}

// isByteElemIndex reports whether e indexes an element of a []byte or
// [N]byte (directly or through a named type).
func isByteElemIndex(pass *analysis.Pass, e ast.Expr) bool {
	idx, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	tv, ok := pass.TypesInfo.Types[idx.X]
	if !ok {
		return false
	}
	var elem types.Type
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice:
		elem = t.Elem()
	case *types.Array:
		elem = t.Elem()
	case *types.Pointer: // *[N]byte auto-indexes
		if a, ok := t.Elem().Underlying().(*types.Array); ok {
			elem = a.Elem()
		}
	}
	if elem == nil {
		return false
	}
	b, ok := elem.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}

// containsShift reports whether the expression tree uses << or >> to
// build a value. Shifts inside an index position (`tbl[x>>4]`) select
// an element rather than pack bytes, so they do not count.
func containsShift(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		if e.Op == token.SHL || e.Op == token.SHR {
			return true
		}
		return containsShift(e.X) || containsShift(e.Y)
	case *ast.UnaryExpr:
		return containsShift(e.X)
	case *ast.CallExpr: // conversions and calls: scan arguments
		for _, a := range e.Args {
			if containsShift(a) {
				return true
			}
		}
	case *ast.IndexExpr:
		return containsShift(e.X) // skip e.Index: element selection
	case *ast.SliceExpr:
		return containsShift(e.X) // skip bounds: they select, not pack
	case *ast.StarExpr:
		return containsShift(e.X)
	case *ast.SelectorExpr:
		return containsShift(e.X)
	}
	return false
}

// containsByteElemIndex reports whether the tree loads a byte element.
func containsByteElemIndex(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if ex, ok := n.(ast.Expr); ok && isByteElemIndex(pass, ex) {
			found = true
			return false
		}
		return !found
	})
	return found
}
