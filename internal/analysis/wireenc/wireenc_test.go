package wireenc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wireenc"
)

func TestWireenc(t *testing.T) {
	analysistest.Run(t, "testdata", wireenc.Analyzer, "a", "wire")
}
