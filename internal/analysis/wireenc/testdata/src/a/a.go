package a

import "encoding/binary"

func handRolledRead(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 // want `hand-rolled wire byte layout`
}

func handRolledWrite(b []byte, v uint16) {
	b[0] = byte(v)      // single-byte store, no shift: fine
	b[1] = byte(v >> 8) // want `hand-rolled wire byte layout`
}

func accumulatorRead(b []byte) (v uint64) {
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i]) // want `hand-rolled wire byte layout`
	}
	return v
}

func arrayForm(b *[8]byte, v uint32) {
	b[3] = byte(v >> 24) // want `hand-rolled wire byte layout`
}

func sanctioned(b []byte, v uint32) uint32 {
	binary.LittleEndian.PutUint32(b, v)
	return binary.LittleEndian.Uint32(b)
}

func tableLookupIsFine(tbl []byte, x int) byte {
	return tbl[x>>4] // the shift selects an element, it does not pack bytes
}

func intShiftsAreFine(v uint32) uint32 {
	return v>>8 | v<<24
}

func allowed(b []byte) uint16 {
	//ampvet:allow wireenc exercising the escape hatch
	return uint16(b[0]) | uint16(b[1])<<8
}
