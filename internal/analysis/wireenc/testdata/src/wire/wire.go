// Package wire stands in for repro/internal/wire: the codec registry
// owns frame layout, so index+shift composition is legal here.
package wire

func Decode16(b []byte) uint16 {
	return uint16(b[0]) | uint16(b[1])<<8
}

func Encode16(b []byte, v uint16) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
}
