package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// listedPackage is the subset of `go list -json` output the drivers
// consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` over the patterns and
// returns every listed package. Export data is produced by the go
// tool's own build cache, so the importer below reads exactly the
// type information the compiler would — no source re-typechecking and
// no network access.
func goList(patterns []string) ([]*listedPackage, error) {
	args := []string{"list", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Incomplete,Error"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter returns a types.Importer that resolves every import
// from compiler export data files, via the given package path -> file
// map. The gc importer caches, so one importer serves many packages.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// parseFiles parses the named files with comments (the suppressor
// needs them).
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := name
		if dir != "" && !filepath.IsAbs(name) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// ParseFixture parses the named fixture files with comments, for
// analysistest.
func ParseFixture(fset *token.FileSet, names []string) ([]*ast.File, error) {
	return parseFiles(fset, "", names)
}

// CheckFixture type-checks a fixture package under the given package
// path. Standard-library imports are resolved through the go tool's
// export data, so fixtures exercise real types (time.Time, math/rand
// identifiers) exactly as production code does.
func CheckFixture(fset *token.FileSet, path string, files []*ast.File) (*types.Package, *types.Info, error) {
	seen := map[string]bool{}
	var imports []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || p == "unsafe" || seen[p] {
				continue
			}
			seen[p] = true
			imports = append(imports, p)
		}
	}
	sort.Strings(imports)
	exports := map[string]string{}
	if len(imports) > 0 {
		pkgs, err := goList(imports)
		if err != nil {
			return nil, nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return checkPackage(fset, path, files, exportImporter(fset, exports))
}

// checkPackage type-checks one package's files under the given import
// path using imp for dependencies.
func checkPackage(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := NewInfo()
	conf := &types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
