// Package analysistest runs an ampvet analyzer over fixture packages
// and checks its diagnostics against golden `// want` comments, the
// same convention as golang.org/x/tools/go/analysis/analysistest:
//
//	start := time.Now() // want `time\.Now reads the wall clock`
//
// Each quoted string after `want` is a regular expression that must
// match one diagnostic reported on that line; lines without a want
// comment must produce no diagnostic. Both //ampvet:allow suppression
// and the _test.go exemption are applied before matching, so fixtures
// can also pin the escape hatch's behavior.
//
// Fixtures live under <dir>/src/<pkg>/*.go and are type-checked for
// real — standard-library imports resolve through the go tool's
// export data, so analyzers exercise the same types.Info they see in
// production.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/detmap"
)

// Run applies the analyzer to every named fixture package under
// dir/src and reports golden mismatches as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runPackage(t, filepath.Join(dir, "src", pkg), pkg, a)
	}
}

func runPackage(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("%s: no fixture files (%v)", dir, err)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	files, err := analysis.ParseFixture(fset, names)
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	pkg, info, err := analysis.CheckFixture(fset, pkgPath, files)
	if err != nil {
		t.Fatalf("%s: type-checking: %v", dir, err)
	}

	findings, err := analysis.RunPackage(fset, files, pkg, info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{filepath.Base(pos.Filename), pos.Line}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	for _, f := range findings {
		pos := fset.Position(f.Pos)
		k := key{filepath.Base(pos.Filename), pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(f.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, f.Message)
		}
	}
	leftover := detmap.SortedKeysFunc(wants, func(a, b key) bool {
		if a.file != b.file {
			return a.file < b.file
		}
		return a.line < b.line
	})
	for _, k := range leftover {
		for _, re := range wants[k] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

// parseWant extracts the regexp literals of a `// want "..." `...`
// comment, reporting ok=false for ordinary comments.
func parseWant(comment string) ([]string, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if !strings.HasPrefix(text, "want ") {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "want "))
	var out []string
	for rest != "" {
		var quote byte
		switch rest[0] {
		case '"', '`':
			quote = rest[0]
		default:
			return out, len(out) > 0
		}
		end := strings.IndexByte(rest[1:], quote)
		if end < 0 {
			return out, len(out) > 0
		}
		lit := rest[:end+2]
		s, err := strconv.Unquote(lit)
		if err != nil {
			return out, len(out) > 0
		}
		out = append(out, s)
		rest = strings.TrimSpace(rest[end+2:])
	}
	return out, len(out) > 0
}
