package enc8b10b

import (
	"testing"
	"testing/quick"
)

// TestRoundTripAllBytesBothDisparities encodes and decodes every data
// byte from both starting disparities.
func TestRoundTripAllBytesBothDisparities(t *testing.T) {
	for _, rd := range []Disparity{DispNeg, DispPos} {
		for b := 0; b < 256; b++ {
			sym, exit, err := encodeAt(byte(b), false, rd)
			if err != nil {
				t.Fatalf("encode D 0x%02X rd=%d: %v", b, rd, err)
			}
			d := &Decoder{rd: rd}
			dec, err := d.Decode(sym)
			if err != nil {
				t.Fatalf("decode D 0x%02X rd=%d sym=%010b: %v", b, rd, sym, err)
			}
			if dec.Control {
				t.Fatalf("data byte 0x%02X decoded as control", b)
			}
			if dec.Byte != byte(b) {
				t.Fatalf("round trip 0x%02X rd=%d → 0x%02X", b, rd, dec.Byte)
			}
			if d.rd != exit {
				t.Fatalf("decoder disparity %d != encoder exit %d for 0x%02X", d.rd, exit, b)
			}
			if d.Violations != 0 {
				t.Fatalf("false violation on legal symbol for 0x%02X rd=%d", b, rd)
			}
		}
	}
}

// TestRoundTripControls covers all twelve K characters from both
// disparities.
func TestRoundTripControls(t *testing.T) {
	ks := []byte{K28_0, K28_1, K28_2, K28_3, K28_4, K28_5, K28_6, K28_7, K23_7, K27_7, K29_7, K30_7}
	for _, rd := range []Disparity{DispNeg, DispPos} {
		for _, k := range ks {
			sym, _, err := encodeAt(k, true, rd)
			if err != nil {
				t.Fatalf("encode K 0x%02X: %v", k, err)
			}
			d := &Decoder{rd: rd}
			dec, err := d.Decode(sym)
			if err != nil {
				t.Fatalf("decode K 0x%02X rd=%d: %v", k, rd, err)
			}
			if !dec.Control {
				t.Fatalf("K 0x%02X decoded as data 0x%02X", k, dec.Byte)
			}
			if dec.Byte != k {
				t.Fatalf("K round trip 0x%02X → 0x%02X", k, dec.Byte)
			}
			if d.Violations != 0 {
				t.Fatalf("false violation for K 0x%02X rd=%d", k, rd)
			}
		}
	}
}

// TestInvalidControlRejected verifies Encode(control=true) rejects bytes
// that are not K characters.
func TestInvalidControlRejected(t *testing.T) {
	e := NewEncoder()
	for b := 0; b < 256; b++ {
		_, err := e.Encode(byte(b), true)
		if validK(byte(b)) && err != nil {
			t.Fatalf("valid K 0x%02X rejected: %v", b, err)
		}
		if !validK(byte(b)) && err == nil {
			t.Fatalf("invalid K 0x%02X accepted", b)
		}
	}
}

// TestKnownVectors checks famous encodings against published tables.
func TestKnownVectors(t *testing.T) {
	cases := []struct {
		b       byte
		control bool
		rd      Disparity
		want    Symbol
	}{
		// K28.5 is THE canonical vector.
		{K28_5, true, DispNeg, 0b0011111010},
		{K28_5, true, DispPos, 0b1100000101},
		// D0.0
		{0x00, false, DispNeg, 0b1001110100},
		{0x00, false, DispPos, 0b0110001011},
		// D21.5 (part of the FC idle primitive), neutral both ways.
		{0xB5, false, DispNeg, 0b1010101010},
		{0xB5, false, DispPos, 0b1010101010},
		// D23.7: 6b flips disparity, so the pos-column P7 follows.
		{0xF7, false, DispNeg, 0b1110100001},
		// K23.7 distinct from D23.7.
		{K23_7, true, DispNeg, 0b1110101000},
		// D17.7 uses A7 at negative boundary disparity.
		{0xF1, false, DispNeg, 0b1000110111},
		// D11.7 uses A7 at positive boundary disparity.
		{0xEB, false, DispPos, 0b1101001000},
	}
	for _, c := range cases {
		got, _, err := encodeAt(c.b, c.control, c.rd)
		if err != nil {
			t.Fatalf("encode 0x%02X: %v", c.b, err)
		}
		if got != c.want {
			t.Errorf("encode 0x%02X (control=%v, rd=%d) = %010b, want %010b",
				c.b, c.control, c.rd, got, c.want)
		}
	}
}

// TestRunningDisparityBounded: after every encoded symbol the running
// disparity must be exactly ±1 and the cumulative ones/zeros balance of
// the stream must stay within the 8b/10b bound.
func TestRunningDisparityBounded(t *testing.T) {
	e := NewEncoder()
	balance := 0
	r := newTestRand(1)
	for i := 0; i < 20000; i++ {
		sym := e.EncodeData(byte(r.next()))
		balance += ones(uint16(sym))*2 - 10
		if balance < -2 || balance > 2 {
			t.Fatalf("stream DC balance %d out of bounds at symbol %d", balance, i)
		}
		if e.Disparity() != DispNeg && e.Disparity() != DispPos {
			t.Fatalf("running disparity %d invalid", e.Disparity())
		}
	}
}

// TestNoRunOfFive: 8b/10b guarantees at most five consecutive identical
// bits on the wire, including across symbol boundaries.
func TestNoRunOfFive(t *testing.T) {
	e := NewEncoder()
	prev := -1
	run := 0
	check := func(sym Symbol) {
		for i := 9; i >= 0; i-- {
			bit := int(sym>>i) & 1
			if bit == prev {
				run++
			} else {
				run = 1
				prev = bit
			}
			if run > 5 {
				t.Fatalf("run of %d identical bits on the wire", run)
			}
		}
	}
	// All bytes in sequence, twice, to cross many boundary cases.
	for pass := 0; pass < 2; pass++ {
		for b := 0; b < 256; b++ {
			check(e.EncodeData(byte(b)))
		}
	}
	// Random stream.
	r := newTestRand(7)
	for i := 0; i < 50000; i++ {
		check(e.EncodeData(byte(r.next())))
	}
}

// TestBlockRoundTripQuick is the property-based round-trip over random
// byte slices.
func TestBlockRoundTripQuick(t *testing.T) {
	f := func(data []byte) bool {
		syms, _ := EncodeBlock(data)
		got, err := DecodeBlock(syms)
		if err != nil {
			return false
		}
		if len(got) != len(data) {
			return false
		}
		for i := range got {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestSymbolUniqueness: within one disparity column, no two distinct
// (byte, control) inputs may produce the same symbol.
func TestSymbolUniqueness(t *testing.T) {
	for _, rd := range []Disparity{DispNeg, DispPos} {
		seen := map[Symbol]string{}
		add := func(sym Symbol, name string) {
			if prev, dup := seen[sym]; dup {
				t.Fatalf("rd=%d: symbol %010b produced by both %s and %s", rd, sym, prev, name)
			}
			seen[sym] = name
		}
		for b := 0; b < 256; b++ {
			sym, _, _ := encodeAt(byte(b), false, rd)
			add(sym, "D"+string(rune('0'+b%10)))
		}
		for _, k := range []byte{K28_0, K28_1, K28_2, K28_3, K28_4, K28_5, K28_6, K28_7, K23_7, K27_7, K29_7, K30_7} {
			sym, _, _ := encodeAt(k, true, rd)
			add(sym, "K")
		}
	}
}

// TestDecodeInvalidSymbol: symbols with illegal sub-block weight are
// rejected and counted.
func TestDecodeInvalidSymbol(t *testing.T) {
	d := NewDecoder()
	if _, err := d.Decode(0b1111110000); err == nil {
		t.Fatal("6-ones sub-block accepted")
	}
	if d.Violations == 0 {
		t.Fatal("violation not counted")
	}
	d.Reset()
	if _, err := d.Decode(0b1001111111); err == nil {
		t.Fatal("4-ones 4b sub-block accepted")
	}
	d.Reset()
	if _, err := d.Decode(0b0000001011); err == nil {
		t.Fatal("all-zero 6b sub-block accepted")
	}
}

// TestDecoderRecoversAfterViolation: a corrupted symbol mid-stream must
// not poison subsequent decoding.
func TestDecoderRecoversAfterViolation(t *testing.T) {
	e := NewEncoder()
	d := NewDecoder()
	for i := 0; i < 10; i++ {
		sym := e.EncodeData(byte(i))
		if _, err := d.Decode(sym); err != nil {
			t.Fatalf("clean symbol %d failed: %v", i, err)
		}
	}
	d.Decode(0b1111110000) // garbage
	// Re-align decoder disparity to encoder for the continuation.
	d.rd = e.Disparity()
	for i := 10; i < 20; i++ {
		sym := e.EncodeData(byte(i))
		dec, err := d.Decode(sym)
		if err != nil {
			t.Fatalf("post-violation symbol %d failed: %v", i, err)
		}
		if dec.Byte != byte(i) {
			t.Fatalf("post-violation decode got 0x%02X want 0x%02X", dec.Byte, i)
		}
	}
}

// TestCommaDetection: only K28.1/5/7 encodings contain commas.
func TestCommaDetection(t *testing.T) {
	commas := map[byte]bool{K28_1: true, K28_5: true, K28_7: true}
	for _, rd := range []Disparity{DispNeg, DispPos} {
		for _, k := range []byte{K28_0, K28_1, K28_2, K28_3, K28_4, K28_5, K28_6, K28_7, K23_7, K27_7, K29_7, K30_7} {
			sym, _, _ := encodeAt(k, true, rd)
			if got := IsComma(sym); got != commas[k] {
				t.Errorf("IsComma(K 0x%02X, rd=%d) = %v, want %v", k, rd, got, commas[k])
			}
		}
		// No data symbol may contain a comma (singular comma property).
		for b := 0; b < 256; b++ {
			sym, _, _ := encodeAt(byte(b), false, rd)
			if IsComma(sym) {
				t.Errorf("data byte 0x%02X rd=%d encodes with comma", b, rd)
			}
		}
	}
}

// TestDisparityAwareK28Decode: K28.1 and K28.6 share 4b patterns across
// columns; the decoder must separate them by tracked disparity.
func TestDisparityAwareK28Decode(t *testing.T) {
	for _, k := range []byte{K28_1, K28_6} {
		for _, rd := range []Disparity{DispNeg, DispPos} {
			sym, _, _ := encodeAt(k, true, rd)
			d := &Decoder{rd: rd}
			dec, err := d.Decode(sym)
			if err != nil {
				t.Fatalf("decode K28.x 0x%02X rd=%d: %v", k, rd, err)
			}
			if dec.Byte != k {
				t.Fatalf("disparity-aware decode 0x%02X rd=%d → 0x%02X", k, rd, dec.Byte)
			}
		}
	}
}

// TestEncoderDecoderLongStreamWithControls interleaves data and idle
// (K28.5) like a real link and round-trips the lot.
func TestEncoderDecoderLongStreamWithControls(t *testing.T) {
	e := NewEncoder()
	d := NewDecoder()
	r := newTestRand(99)
	for i := 0; i < 30000; i++ {
		if i%7 == 0 {
			sym, err := e.Encode(K28_5, true)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := d.Decode(sym)
			if err != nil || !dec.Control || dec.Byte != K28_5 {
				t.Fatalf("idle round trip failed at %d: %v %+v", i, err, dec)
			}
			continue
		}
		b := byte(r.next())
		sym := e.EncodeData(b)
		dec, err := d.Decode(sym)
		if err != nil || dec.Control || dec.Byte != b {
			t.Fatalf("data round trip failed at %d: %v %+v", i, err, dec)
		}
	}
	if d.Violations != 0 {
		t.Fatalf("%d violations on clean stream", d.Violations)
	}
}

// testRand is a tiny local PRNG so the package has no test deps.
type testRand struct{ s uint64 }

func newTestRand(seed uint64) *testRand { return &testRand{s: seed} }
func (r *testRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
