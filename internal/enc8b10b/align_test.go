package enc8b10b

import (
	"testing"
	"testing/quick"
)

// stream builds the serial bit stream of an idle-prefixed data
// sequence, as a transmitter would emit it.
func stream(idles int, data []byte) ([]byte, []Symbol) {
	enc := NewEncoder()
	var w BitWriter
	var syms []Symbol
	for i := 0; i < idles; i++ {
		s, _ := enc.Encode(K28_5, true)
		w.WriteSymbol(s)
		syms = append(syms, s)
	}
	for _, b := range data {
		s := enc.EncodeData(b)
		w.WriteSymbol(s)
		syms = append(syms, s)
	}
	return w.Bits(), syms
}

func TestAlignerLocksFromAnyOffset(t *testing.T) {
	bits, syms := stream(3, []byte{0x00, 0x55, 0xAA, 0xFF, 0x12, 0x34})
	for off := 0; off < 15; off++ {
		a := &Aligner{}
		got := a.PushBits(bits[off:])
		if !a.Aligned() {
			t.Fatalf("offset %d: never aligned", off)
		}
		// The aligner must reproduce a suffix of the true symbol
		// stream exactly.
		if len(got) == 0 {
			t.Fatalf("offset %d: no symbols", off)
		}
		want := syms[len(syms)-len(got):]
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("offset %d: symbol %d = %010b, want %010b", off, i, got[i], want[i])
			}
		}
	}
}

func TestAlignerDecodesCleanStream(t *testing.T) {
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	bits, _ := stream(2, data)
	a := &Aligner{}
	syms := a.PushBits(bits)
	// First two symbols are idles (K28.5); the rest decode to data.
	dec := NewDecoder()
	out := make([]byte, 0, len(data))
	for i, s := range syms {
		d, err := dec.Decode(s)
		if err != nil {
			t.Fatalf("symbol %d: %v", i, err)
		}
		if d.Control {
			if d.Byte != K28_5 {
				t.Fatalf("unexpected control 0x%02X", d.Byte)
			}
			continue
		}
		out = append(out, d.Byte)
	}
	if len(out) != len(data) {
		t.Fatalf("decoded %d of %d", len(out), len(data))
	}
	for i := range out {
		if out[i] != data[i] {
			t.Fatalf("byte %d = 0x%02X want 0x%02X", i, out[i], data[i])
		}
	}
	if a.Slips != 0 {
		t.Fatalf("false slips: %d", a.Slips)
	}
}

// TestAlignerRecoversFromBitSlip: drop one bit mid-stream; the next
// comma re-locks and the slip is counted.
func TestAlignerRecoversFromBitSlip(t *testing.T) {
	enc := NewEncoder()
	var w BitWriter
	lock, _ := enc.Encode(K28_5, true)
	w.WriteSymbol(lock)
	for i := 0; i < 10; i++ {
		w.WriteSymbol(enc.EncodeData(byte(i)))
	}
	bits := w.Bits()
	// Drop a bit inside symbol 5.
	cut := 10 + 5*10 + 3
	slipped := append(append([]byte{}, bits[:cut]...), bits[cut+1:]...)
	// Append a re-lock comma and more data.
	var w2 BitWriter
	relock, _ := enc.Encode(K28_5, true)
	w2.WriteSymbol(relock)
	tail := []byte{0x77, 0x78}
	for _, b := range tail {
		w2.WriteSymbol(enc.EncodeData(b))
	}
	slipped = append(slipped, w2.Bits()...)

	a := &Aligner{}
	syms := a.PushBits(slipped)
	if a.Slips == 0 {
		t.Fatal("bit slip not detected")
	}
	// The final three symbols must be the re-lock comma and the tail
	// bytes; decode with a fresh decoder whose disparity is anchored by
	// the comma.
	if len(syms) < 3 {
		t.Fatalf("too few symbols: %d", len(syms))
	}
	dc := NewDecoder()
	if _, err := dc.Decode(syms[len(syms)-3]); err != nil {
		t.Fatalf("re-lock comma undecodable: %v", err)
	}
	got := make([]byte, 0, 2)
	for _, s := range syms[len(syms)-2:] {
		d, err := dc.Decode(s)
		if err != nil {
			t.Fatalf("tail decode: %v", err)
		}
		got = append(got, d.Byte)
	}
	if got[0] != 0x77 || got[1] != 0x78 {
		t.Fatalf("post-slip tail = %x", got)
	}
}

// TestSingularComma: the comma pattern never appears across the
// boundary of two adjacent data symbols — the property alignment
// depends on. Exhaustive over all byte pairs and both disparities.
func TestSingularComma(t *testing.T) {
	check := func(s1, s2 Symbol) bool {
		// 20-bit window; scan positions 1..9 (0 and 10 are true
		// boundaries).
		window := uint32(s1)<<10 | uint32(s2)
		for pos := 1; pos < 10; pos++ {
			seg := (window >> (20 - 7 - pos)) & 0x7F
			if seg == commaPos || seg == commaNeg {
				return false
			}
		}
		return true
	}
	for _, rd := range []Disparity{DispNeg, DispPos} {
		for b1 := 0; b1 < 256; b1++ {
			s1, mid, _ := encodeAt(byte(b1), false, rd)
			for b2 := 0; b2 < 256; b2++ {
				s2, _, _ := encodeAt(byte(b2), false, mid)
				if !check(s1, s2) {
					t.Fatalf("comma across D%d/D%d boundary (rd=%d)", b1, b2, rd)
				}
			}
		}
	}
}

// TestAlignerQuick: random data streams always align and reproduce the
// symbol suffix from any cut offset.
func TestAlignerQuick(t *testing.T) {
	f := func(data []byte, off uint8) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 64 {
			data = data[:64]
		}
		bits, syms := stream(2, data)
		// Cut anywhere that still leaves the second idle's comma
		// intact downstream (a comma is required to lock, by design).
		o := int(off) % 11
		a := &Aligner{}
		got := a.PushBits(bits[o:])
		if len(got) == 0 {
			return false
		}
		want := syms[len(syms)-len(got):]
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitWriter(t *testing.T) {
	var w BitWriter
	w.WriteSymbol(0b1010101010)
	bits := w.Bits()
	if len(bits) != 10 {
		t.Fatalf("len = %d", len(bits))
	}
	for i, b := range bits {
		want := byte(1 - i%2)
		if b != want {
			t.Fatalf("bit %d = %d", i, b)
		}
	}
}
