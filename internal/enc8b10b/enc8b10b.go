// Package enc8b10b implements the IBM (Widmer–Franaszek) 8b/10b line code
// used by Fibre Channel FC-1, which AmpNet adopts for its gigabit links
// (paper, slide 3: "FC-1 Encode / Decode").
//
// The codec is complete: both sub-block tables (5b/6b and 3b/4b), running
// disparity tracking, the D.x.A7 alternate encoding that prevents runs of
// five, and the twelve valid control (K) characters. Symbols are 10-bit
// values laid out abcdei_fghj with 'a' in the most significant bit, i.e.
// in transmission order when the symbol is sent MSB-first.
package enc8b10b

import "fmt"

// Symbol is one encoded 10-bit code group (only the low 10 bits are used).
type Symbol uint16

// Disparity is the running disparity of the encoded stream: -1 or +1.
type Disparity int8

// Valid disparity values. A link always starts at DispNeg, per the
// 8b/10b convention.
const (
	DispNeg Disparity = -1
	DispPos Disparity = +1
)

// Control characters (K codes) by conventional name. The byte value of
// K.x.y is y<<5 | x, the same packing as data bytes.
const (
	K28_0 byte = 0x1C // 000_11100
	K28_1 byte = 0x3C
	K28_2 byte = 0x5C
	K28_3 byte = 0x7C
	K28_4 byte = 0x9C
	K28_5 byte = 0xBC // the comma character used for alignment
	K28_6 byte = 0xDC
	K28_7 byte = 0xFC
	K23_7 byte = 0xF7
	K27_7 byte = 0xFB
	K29_7 byte = 0xFD
	K30_7 byte = 0xFE
)

// enc6 holds the 5b/6b encodings: column neg used when the running
// disparity entering the block is -1, pos when +1. Bits are abcdei with
// a as bit 5.
type enc6 struct{ neg, pos uint8 }

// dataTable6 indexes by the low five input bits (EDCBA).
var dataTable6 = [32]enc6{
	{0b100111, 0b011000}, // D0
	{0b011101, 0b100010}, // D1
	{0b101101, 0b010010}, // D2
	{0b110001, 0b110001}, // D3
	{0b110101, 0b001010}, // D4
	{0b101001, 0b101001}, // D5
	{0b011001, 0b011001}, // D6
	{0b111000, 0b000111}, // D7
	{0b111001, 0b000110}, // D8
	{0b100101, 0b100101}, // D9
	{0b010101, 0b010101}, // D10
	{0b110100, 0b110100}, // D11
	{0b001101, 0b001101}, // D12
	{0b101100, 0b101100}, // D13
	{0b011100, 0b011100}, // D14
	{0b010111, 0b101000}, // D15
	{0b011011, 0b100100}, // D16
	{0b100011, 0b100011}, // D17
	{0b010011, 0b010011}, // D18
	{0b110010, 0b110010}, // D19
	{0b001011, 0b001011}, // D20
	{0b101010, 0b101010}, // D21
	{0b011010, 0b011010}, // D22
	{0b111010, 0b000101}, // D23
	{0b110011, 0b001100}, // D24
	{0b100110, 0b100110}, // D25
	{0b010110, 0b010110}, // D26
	{0b110110, 0b001001}, // D27
	{0b001110, 0b001110}, // D28
	{0b101110, 0b010001}, // D29
	{0b011110, 0b100001}, // D30
	{0b101011, 0b010100}, // D31
}

// enc4 holds a 3b/4b encoding pair; bits are fghj with f as bit 3.
type enc4 struct{ neg, pos uint8 }

// dataTable4 indexes by the high three input bits (HGF). Entry 7 is the
// primary encoding; the A7 alternate is handled separately.
var dataTable4 = [8]enc4{
	{0b1011, 0b0100}, // D.x.0
	{0b1001, 0b1001}, // D.x.1
	{0b0101, 0b0101}, // D.x.2
	{0b1100, 0b0011}, // D.x.3
	{0b1101, 0b0010}, // D.x.4
	{0b1010, 0b1010}, // D.x.5
	{0b0110, 0b0110}, // D.x.6
	{0b1110, 0b0001}, // D.x.P7 (primary)
}

// alt7 is the D.x.A7 alternate, used to avoid five consecutive identical
// bits at the sub-block boundary.
var alt7 = enc4{0b0111, 0b1000}

// k6 maps the five K-capable 5b values to their 6b encodings.
var k6 = map[uint8]enc6{
	23: {0b111010, 0b000101},
	27: {0b110110, 0b001001},
	28: {0b001111, 0b110000},
	29: {0b101110, 0b010001},
	30: {0b011110, 0b100001},
}

// kTable4 indexes by y for K.x.y control characters.
var kTable4 = [8]enc4{
	{0b1011, 0b0100}, // K.x.0
	{0b0110, 0b1001}, // K.x.1
	{0b1010, 0b0101}, // K.x.2
	{0b1100, 0b0011}, // K.x.3
	{0b1101, 0b0010}, // K.x.4
	{0b0101, 0b1010}, // K.x.5
	{0b1001, 0b0110}, // K.x.6
	{0b0111, 0b1000}, // K.x.7
}

// validK reports whether byte b names one of the twelve legal control
// characters.
func validK(b byte) bool {
	x, y := b&0x1F, b>>5
	if x == 28 {
		return true
	}
	if y == 7 {
		switch x {
		case 23, 27, 29, 30:
			return true
		}
	}
	return false
}

func ones(v uint16) int {
	n := 0
	for v != 0 {
		n += int(v & 1)
		v >>= 1
	}
	return n
}

// blockDisp returns the disparity update for a sub-block with the given
// number of ones out of width bits: -1 means more zeros, +1 more ones,
// 0 balanced.
func blockDisp(onesN, width int) int {
	return onesN*2 - width
}

// useAlt7 reports whether the A7 alternate must replace the primary
// D.x.7 encoding: when the disparity at the 6b/4b boundary is negative
// and x ∈ {17,18,20}, or positive and x ∈ {11,13,14}. (These are the
// cases where the primary would create a run of five.)
func useAlt7(x uint8, boundary Disparity) bool {
	if boundary == DispNeg {
		return x == 17 || x == 18 || x == 20
	}
	return x == 11 || x == 13 || x == 14
}

// Encoder converts bytes (data or control) to 10-bit symbols, tracking
// running disparity across calls as a real serializer does.
type Encoder struct {
	rd Disparity
}

// NewEncoder returns an encoder with initial running disparity -1.
func NewEncoder() *Encoder { return &Encoder{rd: DispNeg} }

// Disparity returns the current running disparity.
func (e *Encoder) Disparity() Disparity { return e.rd }

// Reset restores the initial (negative) running disparity.
func (e *Encoder) Reset() { e.rd = DispNeg }

// Encode encodes one byte. If control is true, b must be one of the
// twelve valid K characters; otherwise an error is returned and the
// encoder state is unchanged.
func (e *Encoder) Encode(b byte, control bool) (Symbol, error) {
	sym, rd, err := encodeAt(b, control, e.rd)
	if err != nil {
		return 0, err
	}
	e.rd = rd
	return sym, nil
}

// EncodeData encodes a data byte (never fails).
func (e *Encoder) EncodeData(b byte) Symbol {
	s, _ := e.Encode(b, false)
	return s
}

// encodeAt is the pure encoding function: byte + entry disparity →
// symbol + exit disparity.
func encodeAt(b byte, control bool, rd Disparity) (Symbol, Disparity, error) {
	x, y := b&0x1F, b>>5
	var s6, s4 uint8
	if control {
		if !validK(b) {
			return 0, rd, fmt.Errorf("enc8b10b: 0x%02X is not a valid control character", b)
		}
		e6 := k6[x]
		if rd == DispNeg {
			s6 = e6.neg
		} else {
			s6 = e6.pos
		}
		boundary := updateDisp(rd, blockDisp(ones(uint16(s6)), 6))
		e4 := kTable4[y]
		if boundary == DispNeg {
			s4 = e4.neg
		} else {
			s4 = e4.pos
		}
		exit := updateDisp(boundary, blockDisp(ones(uint16(s4)), 4))
		return Symbol(uint16(s6)<<4 | uint16(s4)), exit, nil
	}
	e6 := dataTable6[x]
	if rd == DispNeg {
		s6 = e6.neg
	} else {
		s6 = e6.pos
	}
	boundary := updateDisp(rd, blockDisp(ones(uint16(s6)), 6))
	e4 := dataTable4[y]
	if y == 7 && useAlt7(x, boundary) {
		e4 = alt7
	}
	if boundary == DispNeg {
		s4 = e4.neg
	} else {
		s4 = e4.pos
	}
	exit := updateDisp(boundary, blockDisp(ones(uint16(s4)), 4))
	return Symbol(uint16(s6)<<4 | uint16(s4)), exit, nil
}

// updateDisp applies a sub-block disparity to the running disparity.
// Legal 8b/10b sub-blocks have disparity -2, 0, or +2.
func updateDisp(rd Disparity, d int) Disparity {
	switch d {
	case 0:
		return rd
	case 2:
		return DispPos
	case -2:
		return DispNeg
	default:
		// Unreachable for table-driven encodings; decode uses
		// checked paths instead.
		panic("enc8b10b: illegal sub-block disparity")
	}
}

// Decoded is the result of decoding one symbol.
type Decoded struct {
	Byte    byte
	Control bool // true if the symbol is a K character
}

// Decoder converts 10-bit symbols back to bytes, tracking running
// disparity and detecting code violations.
type Decoder struct {
	rd Disparity
	// Violations counts disparity or invalid-symbol errors observed.
	Violations uint64
}

// NewDecoder returns a decoder with initial running disparity -1.
func NewDecoder() *Decoder { return &Decoder{rd: DispNeg} }

// Disparity returns the decoder's current running disparity.
func (d *Decoder) Disparity() Disparity { return d.rd }

// Reset restores the initial disparity and clears the violation count.
func (d *Decoder) Reset() { d.rd = DispNeg; d.Violations = 0 }

// reverse maps, built once at init from the encode tables.
var (
	rev6data = map[uint8]uint8{} // 6b pattern → x (data)
	rev6k    = map[uint8]uint8{} // 6b pattern → x (control-capable)
	rev4data = map[uint8]uint8{} // 4b pattern → y, primaries only
	rev4alt  = map[uint8]bool{}  // 4b pattern is an A7 alternate
	rev4kNeg = map[uint8]uint8{} // K 4b pattern (neg column) → y
	rev4kPos = map[uint8]uint8{} // K 4b pattern (pos column) → y
)

func init() {
	for x, e := range dataTable6 {
		rev6data[e.neg] = uint8(x)
		rev6data[e.pos] = uint8(x)
	}
	//ampvet:allow detmap inverse-table build: scatter by key, each slot written once
	for x, e := range k6 {
		rev6k[e.neg] = x
		rev6k[e.pos] = x
	}
	for y, e := range dataTable4 {
		rev4data[e.neg] = uint8(y)
		rev4data[e.pos] = uint8(y)
	}
	rev4alt[alt7.neg] = true
	rev4alt[alt7.pos] = true
	for y, e := range kTable4 {
		rev4kNeg[e.neg] = uint8(y)
		rev4kPos[e.pos] = uint8(y)
	}
}

// Decode decodes one 10-bit symbol. Decoding is disparity-aware: K28.1
// and K28.6 (among others) share bit patterns across disparity columns
// and are separated by the tracked running disparity. Invalid symbols
// return an error and count as violations; the disparity is then
// resynchronized from the symbol's own bit count so the decoder can
// continue with subsequent symbols.
func (d *Decoder) Decode(sym Symbol) (Decoded, error) {
	s6 := uint8(sym>>4) & 0x3F
	s4 := uint8(sym) & 0x0F

	n6 := ones(uint16(s6))
	bd6 := blockDisp(n6, 6)
	if bd6 != 0 && bd6 != 2 && bd6 != -2 {
		d.Violations++
		d.resync(sym)
		return Decoded{}, fmt.Errorf("enc8b10b: invalid 6b sub-block %06b", s6)
	}
	// A non-neutral sub-block must absorb the current disparity: a
	// +2 block is only legal when RD is -1, and vice versa.
	if (bd6 == 2 && d.rd != DispNeg) || (bd6 == -2 && d.rd != DispPos) {
		d.Violations++
	}
	boundary := updateDisp(d.rd, bd6)

	n4 := ones(uint16(s4))
	bd4 := blockDisp(n4, 4)
	if bd4 != 0 && bd4 != 2 && bd4 != -2 {
		d.Violations++
		d.resync(sym)
		return Decoded{}, fmt.Errorf("enc8b10b: invalid 4b sub-block %04b", s4)
	}
	if (bd4 == 2 && boundary != DispNeg) || (bd4 == -2 && boundary != DispPos) {
		d.Violations++
	}
	exit := updateDisp(boundary, bd4)

	// Control characters: K28.y via the unique K28 6b pattern; the
	// other four Ks only exist as K.x.7 with the 0111/1000 4b codes
	// and 6b patterns whose D.x counterparts never use A7.
	if x, ok := rev6k[s6]; ok {
		if x == 28 {
			var y uint8
			var found bool
			if boundary == DispNeg {
				y, found = rev4kNeg[s4]
			} else {
				y, found = rev4kPos[s4]
			}
			if !found {
				// Tolerate the off-column code (disparity error
				// already counted above in most cases).
				if yy, ok2 := rev4kNeg[s4]; ok2 {
					y, found = yy, true
				} else if yy, ok2 := rev4kPos[s4]; ok2 {
					y, found = yy, true
				}
				d.Violations++
			}
			if found {
				d.rd = exit
				return Decoded{Byte: y<<5 | 28, Control: true}, nil
			}
		} else if rev4alt[s4] {
			d.rd = exit
			return Decoded{Byte: 7<<5 | x, Control: true}, nil
		}
	}

	x, okx := rev6data[s6]
	if !okx {
		d.Violations++
		d.resync(sym)
		return Decoded{}, fmt.Errorf("enc8b10b: unassigned 6b sub-block %06b", s6)
	}
	var y uint8
	if yy, ok := rev4data[s4]; ok {
		y = yy
	} else if rev4alt[s4] {
		y = 7
	} else {
		d.Violations++
		d.resync(sym)
		return Decoded{}, fmt.Errorf("enc8b10b: unassigned 4b sub-block %04b", s4)
	}
	d.rd = exit
	return Decoded{Byte: y<<5 | x, Control: false}, nil
}

// resync re-anchors the running disparity after a code violation using
// the symbol's overall bit balance, the conventional recovery rule.
func (d *Decoder) resync(sym Symbol) {
	if ones(uint16(sym)&0x3FF) >= 5 {
		d.rd = DispPos
	} else {
		d.rd = DispNeg
	}
}

// EncodeBlock encodes a data byte slice into symbols using a fresh
// encoder, returning the symbol stream and the final disparity.
func EncodeBlock(data []byte) ([]Symbol, Disparity) {
	e := NewEncoder()
	out := make([]Symbol, len(data))
	for i, b := range data {
		out[i] = e.EncodeData(b)
	}
	return out, e.Disparity()
}

// DecodeBlock decodes a symbol stream produced by EncodeBlock. It
// returns the decoded bytes and the first error encountered, if any.
func DecodeBlock(syms []Symbol) ([]byte, error) {
	d := NewDecoder()
	out := make([]byte, 0, len(syms))
	for i, s := range syms {
		dec, err := d.Decode(s)
		if err != nil {
			return out, fmt.Errorf("symbol %d: %w", i, err)
		}
		if dec.Control {
			return out, fmt.Errorf("symbol %d: unexpected control character 0x%02X", i, dec.Byte)
		}
		out = append(out, dec.Byte)
	}
	return out, nil
}

// IsComma reports whether the symbol contains the comma pattern
// (0011111 or 1100000 in its first seven bits), which receivers use for
// word alignment. Only K28.1, K28.5 and K28.7 contain commas.
func IsComma(sym Symbol) bool {
	first7 := (uint16(sym) >> 3) & 0x7F
	return first7 == 0b0011111 || first7 == 0b1100000
}
