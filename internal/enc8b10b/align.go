package enc8b10b

// FC-1 receivers see an undifferentiated serial bit stream: symbol
// boundaries are not transmitted. Alignment is recovered from the comma
// pattern (0011111 or 1100000), which the code guarantees can only
// appear starting at a symbol boundary (the "singular comma" property,
// verified in the tests). This file implements the serializer and the
// receive-side aligner — the piece of FC-1 that lets an AmpNet node
// lock onto the ring after power-up or after a bit slip.

// BitWriter serializes symbols MSB-first into a bit stream.
type BitWriter struct {
	bits []byte // one byte per bit (0/1); simple and test-friendly
}

// WriteSymbol appends the ten bits of sym, 'a' first.
func (w *BitWriter) WriteSymbol(sym Symbol) {
	for i := 9; i >= 0; i-- {
		w.bits = append(w.bits, byte(sym>>i)&1)
	}
}

// Bits returns the accumulated bit stream.
func (w *BitWriter) Bits() []byte { return w.bits }

// Aligner recovers symbol boundaries from a serial bit stream. Feed it
// bits; once it has seen a comma it emits aligned symbols.
type Aligner struct {
	window  uint16 // continuous sliding window, newest bit in bit 0
	nbits   int    // bits accumulated toward the next symbol
	seen    int    // total bits consumed (saturating)
	aligned bool

	// Slips counts re-alignments after the first lock (each one is a
	// detected bit slip).
	Slips uint64
}

// comma7 patterns at the head of a symbol.
const (
	commaPos = 0b0011111
	commaNeg = 0b1100000
)

// Aligned reports whether the aligner has symbol lock.
func (a *Aligner) Aligned() bool { return a.aligned }

// Push consumes one bit and returns (symbol, true) each time a full
// aligned symbol completes.
func (a *Aligner) Push(bit byte) (Symbol, bool) {
	a.window = a.window<<1 | uint16(bit&1)
	if a.seen < 16 {
		a.seen++
	}
	if a.nbits < 10 {
		a.nbits++
	}
	// Check whether the last 7 bits are a comma: if so, a symbol
	// started exactly 7 bits ago. If we believed a boundary was
	// elsewhere, that is a bit slip — realign. The window slides
	// continuously across symbol boundaries, so commas are found even
	// when the current (mis-)framing would split them; the singular
	// comma property guarantees valid traffic never fakes one.
	last7 := a.window & 0x7F
	if a.seen >= 7 && (last7 == commaPos || last7 == commaNeg) {
		if a.aligned && a.nbits != 7 {
			a.Slips++
		}
		a.aligned = true
		a.nbits = 7 // the comma's 7 bits open the new symbol
	}
	if !a.aligned {
		return 0, false
	}
	if a.nbits == 10 {
		a.nbits = 0
		return Symbol(a.window & 0x3FF), true
	}
	return 0, false
}

// PushBits feeds a bit slice and collects completed symbols.
func (a *Aligner) PushBits(bits []byte) []Symbol {
	var out []Symbol
	for _, b := range bits {
		if s, ok := a.Push(b); ok {
			out = append(out, s)
		}
	}
	return out
}
