package parsim

import (
	"strings"
	"testing"

	"repro/internal/micropacket"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/wire"
)

// rig is two shards joined by one 200 m split link.
type rig struct {
	e        *Engine
	k        [2]*sim.Kernel
	n        [2]*phys.Net
	pa, pb   *phys.Port
	link     *phys.Link
	arrivals []sim.Time
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{}
	for i := 0; i < 2; i++ {
		r.k[i] = sim.NewKernel(uint64(i + 1))
		r.n[i] = phys.NewNet(r.k[i])
	}
	e, err := New(r.k[:], r.n[:], phys.PropTime(200))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Shutdown)
	r.e = e
	r.pa = r.n[0].NewPort("a", nil)
	r.pb = r.n[1].NewPort("b", func(_ *phys.Port, f phys.Frame) {
		r.arrivals = append(r.arrivals, r.k[1].Now())
	})
	r.link = r.n[0].Connect(r.pa, r.pb, 200)
	return r
}

func frame() phys.Frame {
	p := micropacket.NewData(1, 2, 0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	return phys.Frame{Pkt: p, Wire: wire.Size(wire.V1, p.Type, len(p.Data))}
}

// TestCrossShardDeliveryTiming: a frame over a split link arrives at
// exactly transmit start + serialization + propagation, as a local
// link would deliver it.
func TestCrossShardDeliveryTiming(t *testing.T) {
	r := newRig(t)
	f := frame()
	sendAt := sim.Time(5 * sim.Microsecond)
	r.k[0].At(sendAt, func() { r.pa.Send(f) })
	r.e.RunUntil(20 * sim.Microsecond)
	want := sendAt + phys.SerTime(f.Wire+r.n[0].IFG) + phys.PropTime(200)
	if len(r.arrivals) != 1 || r.arrivals[0] != want {
		t.Fatalf("arrivals = %v, want [%v]", r.arrivals, want)
	}
	if r.e.Stats.Frames != 1 {
		t.Fatalf("stats.Frames = %d, want 1", r.e.Stats.Frames)
	}
	if r.e.Now() != 20*sim.Microsecond || r.k[0].Now() != r.e.Now() || r.k[1].Now() != r.e.Now() {
		t.Fatalf("clocks not parked on deadline: engine=%v k0=%v k1=%v", r.e.Now(), r.k[0].Now(), r.k[1].Now())
	}
}

// TestDeadTimeSkip: with sparse events, the engine jumps between them
// instead of stepping every lookahead window.
func TestDeadTimeSkip(t *testing.T) {
	r := newRig(t)
	fired := 0
	r.k[0].At(1*sim.Millisecond, func() { fired++ })
	r.k[1].At(9*sim.Millisecond, func() { fired++ })
	r.e.RunUntil(10 * sim.Millisecond)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	// 10 ms at a 1 µs lookahead would be 10000 lockstep windows; the
	// skip should need only a handful.
	if r.e.Stats.Windows > 10 {
		t.Fatalf("windows = %d, want a handful (dead-time skip broken)", r.e.Stats.Windows)
	}
}

// TestActionsRunBeforeInstantEvents: a coordinator action at t runs
// after all events before t and before model events at t, and actions
// at one instant run in registration order.
func TestActionsRunBeforeInstantEvents(t *testing.T) {
	r := newRig(t)
	var order []string
	r.k[0].At(4999, func() { order = append(order, "before") })
	r.k[1].At(5000, func() { order = append(order, "model-at-t") })
	r.e.ScheduleAt(5000, func() { order = append(order, "action-1") })
	r.e.ScheduleAt(5000, func() { order = append(order, "action-2") })
	r.e.RunUntil(6000)
	want := []string{"before", "action-1", "action-2", "model-at-t"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if r.e.Stats.Actions != 2 {
		t.Fatalf("stats.Actions = %d, want 2", r.e.Stats.Actions)
	}
}

// TestDeferredRoutesApplyAtBarrier: deferred RouteOps apply at the
// next barrier, in source-shard FIFO order.
func TestDeferredRoutesApplyAtBarrier(t *testing.T) {
	r := newRig(t)
	var applied []int
	r.e.Transport().BindRoutes(func(_ sim.Time, op phys.RouteOp) { applied = append(applied, op.In) })
	r.k[0].At(100, func() {
		r.e.DeferRoute(0, 0, phys.RouteOp{Switch: 0, In: 1, Out: 7})
		r.e.DeferRoute(0, 0, phys.RouteOp{Switch: 0, In: 2, Out: 7})
	})
	r.e.RunUntil(10 * sim.Microsecond)
	if len(applied) != 2 || applied[0] != 1 || applied[1] != 2 {
		t.Fatalf("applied = %v, want [1 2]", applied)
	}
	if r.e.Stats.Routes != 2 {
		t.Fatalf("stats.Routes = %d, want 2", r.e.Stats.Routes)
	}
}

// TestShardPanicPropagates: a model panic inside a shard worker must
// surface as a sticky engine error naming the shard and window — never
// a hang, never a torn-down process.
func TestShardPanicPropagates(t *testing.T) {
	r := newRig(t)
	r.k[1].At(3000, func() { panic("injected model failure") })
	r.e.RunUntil(10 * sim.Microsecond)
	err := r.e.Err()
	if err == nil {
		t.Fatal("shard panic did not surface as an engine error")
	}
	for _, want := range []string{"shard 1", "injected model failure"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	// The engine is now stuck: further runs refuse to advance.
	before := r.e.Now()
	if r.e.RunUntil(20*sim.Microsecond) != before {
		t.Fatal("engine advanced past a sticky failure")
	}
}

// TestSplitLinkFailDropsInFlight: a split link failed at a barrier
// (while both shards are parked) loses captured in-flight frames, and
// the loss is counted.
func TestSplitLinkFailDropsInFlight(t *testing.T) {
	r := newRig(t)
	r.k[0].At(1000, func() { r.pa.Send(frame()) })
	// Run just past transmit start, then cut the fiber at the barrier
	// before the frame's arrival.
	r.e.RunUntil(1100)
	r.link.Fail()
	r.e.RunUntil(20 * sim.Microsecond)
	if len(r.arrivals) != 0 {
		t.Fatalf("frame survived a mid-flight fiber cut: %v", r.arrivals)
	}
	if r.n[0].Lost.N+r.n[1].Lost.N == 0 {
		t.Fatal("in-flight loss not counted")
	}
}

// TestAssignShardsAndLookahead pins the canonical partition and the
// lookahead rule on the sharded multi-ring shape.
func TestAssignShardsAndLookahead(t *testing.T) {
	topo := phys.Sharded(4, 3, 2, 50)
	assign, err := phys.AssignShards(&topo, 4)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < topo.Switches; s++ {
		if want := s / 2; assign.SwitchShard[s] != want {
			t.Fatalf("switch %d on shard %d, want %d", s, assign.SwitchShard[s], want)
		}
	}
	for n := 0; n < topo.Nodes; n++ {
		if want := n / 3; assign.NodeShard[n] != want {
			t.Fatalf("node %d on shard %d, want %d (nodes live with their switches)", n, assign.NodeShard[n], want)
		}
	}
	la, err := phys.Lookahead(&topo, assign)
	if err != nil {
		t.Fatal(err)
	}
	if want := phys.PropTime(50); la != want {
		t.Fatalf("lookahead = %v, want %v (trunk fiber)", la, want)
	}
	// Zero-length cross-shard fiber has no lookahead.
	bad := phys.Sharded(2, 2, 1, 0)
	assign2, err := phys.AssignShards(&bad, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := phys.Lookahead(&bad, assign2); err == nil {
		t.Fatal("zero-fiber fabric produced a lookahead")
	}
}
