// Package parsim is AmpNet's parallel sharded simulation engine: a
// conservative time-windowed discrete-event scheduler that runs the
// shards of a fabric on all cores without giving up byte-reproducible
// determinism.
//
// The fabric is partitioned by switch (phys.AssignShards): each shard
// owns its switches, their attached nodes, and every intra-shard link,
// all scheduled on a private sim.Kernel. Shards advance in lockstep
// lookahead windows: with L the minimum propagation delay of any
// cross-shard fiber (phys.Lookahead), an event at time t can influence
// another shard no earlier than t+L — one full cross-shard flight —
// so all shards may safely run a window of L in parallel.
//
// Cross-shard traffic never touches a foreign kernel mid-window.
// A port transmitting over a split link hands the frame to its shard's
// capture queue (phys.RemoteExchange) with its exact arrival time; at
// the window barrier the coordinator drains every queue in a canonical
// order — (arrival, transmit time, source shard, capture sequence) —
// and schedules each frame on the destination kernel at precisely the
// arrival time a serial run would have delivered it. Crossbar
// programming aimed at a remote switch (ring hops healing across
// trunks) is deferred the same way; the first frame that could need
// the route is always at least one cross-shard flight away, so the
// barrier application is invisible. The result is a parallel run whose
// Report is byte-identical to the serial engine's for the same seed.
//
// Driver-level work — plan events (faults/repairs), condition probes —
// runs in coordinator actions: single-threaded closures executed with
// every kernel parked on the same virtual instant, after all events
// before t and before any event at t. That is where the fabric's
// shared state (link light, switch crossbars, trunk views) may flip;
// between barriers it is read-only, which is what makes the mid-window
// reads of the rostering layer race-free.
package parsim

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/phys"
	"repro/internal/sim"
)

// Stats counts the engine's work for per-window reporting.
type Stats struct {
	// Windows is the number of parallel windows executed; Barriers the
	// number of synchronization points (windows plus action stops).
	Windows  uint64
	Barriers uint64
	// Frames is the number of cross-shard frames exchanged at
	// barriers; Routes the number of barrier-deferred crossbar writes.
	Frames uint64
	Routes uint64
	// Actions is the number of coordinator actions executed.
	Actions uint64
}

// pendingFrame is one captured cross-shard frame awaiting injection.
type pendingFrame struct {
	srcUID  uint32 // sending port identity: the wire tie-break key
	dst     *phys.Port
	f       phys.Frame
	link    *phys.Link
	epoch   uint64
	arrival sim.Time
	txAt    sim.Time // transmit start, for canonical ordering
	src     int
	seq     uint64
}

// action is one coordinator closure, run at `at` with all shards
// parked on that instant. Same-instant actions keep registration
// order (the sort below is stable).
type action struct {
	at sim.Time
	fn func()
}

// Engine coordinates the shard kernels of one parallel simulation.
// It is driven from a single goroutine (the scenario driver); the
// shard workers only ever run inside RunUntil.
type Engine struct {
	Kernels []*sim.Kernel
	Nets    []*phys.Net

	lookahead sim.Time
	now       sim.Time

	actions []action

	frames   [][]pendingFrame // per source shard, filled during windows
	frameSeq []uint64
	routes   [][]func() // per source shard

	inject []pendingFrame // scratch for barrier drain

	// Window hand-off: one target send and one done receive per worker
	// per window. Workers park between windows, so driver read phases
	// and single-core hosts cost nothing; on multicore the wakeups
	// overlap and the per-window barrier stays in the low microseconds
	// against window workloads hundreds of events deep.
	work     []chan sim.Time
	done     chan struct{}
	shutdown sync.Once

	Stats Stats
}

// New builds an engine over one kernel+Net pair per shard. lookahead
// is the fabric's conservative window bound (phys.Lookahead); it must
// be positive. The engine installs itself as every Net's
// RemoteExchange and starts one worker goroutine per shard; call
// Shutdown when the simulation is done.
func New(kernels []*sim.Kernel, nets []*phys.Net, lookahead sim.Time) (*Engine, error) {
	if len(kernels) != len(nets) || len(kernels) == 0 {
		return nil, fmt.Errorf("parsim: %d kernels vs %d nets", len(kernels), len(nets))
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("parsim: non-positive lookahead %v", lookahead)
	}
	e := &Engine{
		Kernels:   kernels,
		Nets:      nets,
		lookahead: lookahead,
		frames:    make([][]pendingFrame, len(kernels)),
		frameSeq:  make([]uint64, len(kernels)),
		routes:    make([][]func(), len(kernels)),
	}
	for i, n := range nets {
		n.Shard = i
		n.Remote = &shardExchange{e: e, shard: i}
	}
	if len(kernels) > 1 {
		e.done = make(chan struct{}, len(kernels))
		for i := range kernels {
			ch := make(chan sim.Time)
			e.work = append(e.work, ch)
			go e.worker(i, ch)
		}
	}
	return e, nil
}

// Shutdown stops the worker goroutines. The engine must not be run
// afterwards.
func (e *Engine) Shutdown() {
	e.shutdown.Do(func() {
		for _, ch := range e.work {
			close(ch)
		}
	})
}

// worker runs shard i's kernel window by window.
func (e *Engine) worker(i int, ch chan sim.Time) {
	k := e.Kernels[i]
	for target := range ch {
		k.RunUntil(target)
		e.done <- struct{}{}
	}
}

// Now returns the engine's global virtual time (every kernel is at
// this instant whenever the driver can observe the simulation).
func (e *Engine) Now() sim.Time { return e.now }

// Lookahead returns the window bound the engine runs with.
func (e *Engine) Lookahead() sim.Time { return e.lookahead }

// ScheduleAt registers a coordinator action: fn runs single-threaded
// at virtual time t, after every event before t and before any model
// event at t, with all shard kernels parked on t. Actions at the same
// instant run in registration order. Scheduling in the past panics,
// mirroring sim.Kernel.At.
func (e *Engine) ScheduleAt(t sim.Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("parsim: action at %v before now %v", t, e.now))
	}
	e.actions = append(e.actions, action{at: t, fn: fn})
	sort.SliceStable(e.actions, func(a, b int) bool { return e.actions[a].at < e.actions[b].at })
}

// shardExchange is the per-shard phys.RemoteExchange: it captures
// cross-shard frames into the source shard's private queue. Only the
// shard's own worker appends during a window, so no locking is needed.
type shardExchange struct {
	e     *Engine
	shard int
}

func (x *shardExchange) RemoteFrame(src, dst *phys.Port, f phys.Frame, link *phys.Link, epoch uint64, arrival sim.Time) {
	e := x.e
	e.frames[x.shard] = append(e.frames[x.shard], pendingFrame{
		srcUID: src.UID(), dst: dst, f: f, link: link, epoch: epoch,
		arrival: arrival, txAt: e.Kernels[x.shard].Now(),
		src: x.shard, seq: e.frameSeq[x.shard],
	})
	e.frameSeq[x.shard]++
}

// DeferRoute queues a barrier-deferred crossbar write from srcShard;
// wire it to phys.Cluster.RouteSink.
func (e *Engine) DeferRoute(srcShard int, apply func()) {
	e.routes[srcShard] = append(e.routes[srcShard], apply)
}

// drain applies everything captured since the last barrier: deferred
// crossbar writes (per source shard, FIFO), then cross-shard frames in
// the canonical (arrival, transmit time, source shard, sequence)
// order, each scheduled on its destination kernel at its exact arrival
// time. Runs single-threaded with all kernels parked.
func (e *Engine) drain() {
	for s := range e.routes {
		for _, apply := range e.routes[s] {
			apply()
			e.Stats.Routes++
		}
		e.routes[s] = e.routes[s][:0]
	}
	e.inject = e.inject[:0]
	for s := range e.frames {
		e.inject = append(e.inject, e.frames[s]...)
		e.frames[s] = e.frames[s][:0]
	}
	if len(e.inject) == 0 {
		return
	}
	sort.Slice(e.inject, func(a, b int) bool {
		pa, pb := &e.inject[a], &e.inject[b]
		if pa.arrival != pb.arrival {
			return pa.arrival < pb.arrival
		}
		if pa.txAt != pb.txAt {
			return pa.txAt < pb.txAt
		}
		if pa.src != pb.src {
			return pa.src < pb.src
		}
		return pa.seq < pb.seq
	})
	for i := range e.inject {
		pf := e.inject[i]
		dstK := pf.dst.Net().K
		// The wire key (transmit start, sending-port identity) slots
		// the arrival into exactly the same same-instant order the
		// serial engine would have used.
		dstK.AtPri(pf.arrival, pf.txAt, pf.srcUID, func() {
			pf.dst.Net().CompleteDelivery(pf.dst, pf.f, pf.link, pf.epoch)
		})
		e.Stats.Frames++
	}
}

// runWindow executes all shards in parallel up to target (inclusive),
// then drains the barrier.
func (e *Engine) runWindow(target sim.Time) {
	if len(e.work) == 0 {
		e.Kernels[0].RunUntil(target)
	} else {
		for _, ch := range e.work {
			ch <- target
		}
		for range e.work {
			<-e.done
		}
	}
	e.Stats.Windows++
	e.Stats.Barriers++
	e.drain()
	e.now = target
}

// nextEvent returns the earliest pending event time across all shards.
func (e *Engine) nextEvent() (sim.Time, bool) {
	min, any := sim.MaxTime, false
	for _, k := range e.Kernels {
		if t, ok := k.NextEventTime(); ok && t < min {
			min, any = t, true
		}
	}
	return min, any
}

// runActionsAtNow executes every action due at the current instant.
// Kernels must already be parked on e.now with no pending events
// before it. Actions may send cross-shard traffic (a rebooted node
// solicits immediately), so the barrier is drained afterwards.
func (e *Engine) runActionsAtNow() {
	ran := false
	for len(e.actions) > 0 && e.actions[0].at == e.now {
		fn := e.actions[0].fn
		e.actions = e.actions[1:]
		fn()
		e.Stats.Actions++
		ran = true
	}
	if ran {
		e.drain()
		e.Stats.Barriers++
	}
}

// RunUntil advances the whole simulation to deadline (inclusive),
// window by window, and leaves every shard kernel parked exactly on
// deadline — the same clock contract as sim.Kernel.RunUntil. The
// driver may freely read cross-shard state after it returns.
func (e *Engine) RunUntil(deadline sim.Time) sim.Time {
	if deadline < e.now {
		return e.now
	}
	for {
		e.runActionsAtNow()
		if e.now >= deadline {
			// RunUntil is inclusive: model events at the deadline
			// instant (including any the actions just scheduled) still
			// run, exactly as the serial kernel would.
			if m, any := e.nextEvent(); any && m <= deadline {
				e.runWindow(deadline)
			}
			break
		}
		// Stop one tick short of the next action so it can run with
		// events before its instant done and events at its instant
		// still pending.
		horizon := deadline
		if len(e.actions) > 0 && e.actions[0].at <= deadline {
			horizon = e.actions[0].at - 1
		}
		if horizon > e.now {
			m, any := e.nextEvent()
			switch {
			case !any || m > horizon:
				// Dead time: nothing to execute before the horizon.
				e.runWindow(horizon)
			default:
				start := m
				if start < e.now {
					start = e.now
				}
				wEnd := horizon
				if e.lookahead < sim.MaxTime && start+e.lookahead-1 < wEnd {
					wEnd = start + e.lookahead - 1
				}
				if wEnd < e.now {
					wEnd = e.now
				}
				e.runWindow(wEnd)
			}
			continue
		}
		// horizon == e.now: the next action is one tick away. Realize
		// the current instant first (an earlier action may have
		// scheduled zero-delay work), then advance every kernel onto
		// the action's instant without executing anything there.
		if m, any := e.nextEvent(); any && m <= e.now {
			e.runWindow(e.now)
		}
		at := e.actions[0].at
		for _, k := range e.Kernels {
			k.AdvanceTo(at)
		}
		e.now = at
	}
	return e.now
}
