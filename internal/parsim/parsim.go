// Package parsim is AmpNet's parallel sharded simulation engine: a
// conservative time-windowed discrete-event scheduler that runs the
// shards of a fabric on all cores without giving up byte-reproducible
// determinism.
//
// The fabric is partitioned by switch (phys.AssignShards): each shard
// owns its switches, their attached nodes, and every intra-shard link,
// all scheduled on a private sim.Kernel. Shards advance in lockstep
// lookahead windows: with L the minimum propagation delay of any
// cross-shard fiber (phys.Lookahead), an event at time t can influence
// another shard no earlier than t+L — one full cross-shard flight —
// so all shards may safely run a window of L in parallel.
//
// Cross-shard traffic never touches a foreign kernel mid-window.
// A port transmitting over a split link hands the frame to its shard's
// capture queue (phys.RemoteExchange) with its exact arrival time; at
// the window barrier the coordinator drains every queue in a canonical
// order — (arrival, transmit time, source shard, capture sequence) —
// and schedules each frame on the destination kernel at precisely the
// arrival time a serial run would have delivered it. Crossbar
// programming aimed at a remote switch (ring hops healing across
// trunks) is deferred the same way; the first frame that could need
// the route is always at least one cross-shard flight away, so the
// barrier application is invisible. The result is a parallel run whose
// Report is byte-identical to the serial engine's for the same seed.
//
// Driver-level work — plan events (faults/repairs), condition probes —
// runs in coordinator actions: single-threaded closures executed with
// every kernel parked on the same virtual instant, after all events
// before t and before any event at t. That is where the fabric's
// shared state (link light, switch crossbars, trunk views) may flip;
// between barriers it is read-only, which is what makes the mid-window
// reads of the rostering layer race-free.
//
// The barrier protocol itself — grants, capture batches, deferred
// routes, action fences — lives behind shardnet.Transport. The default
// in-process transport is the engine's historical channel machinery;
// the socket transport runs every shard additionally in its own worker
// process (cmd/ampshard), mirroring each coordinator action from its
// serialized descriptor and byte-checking the workers' captures at
// every barrier.
package parsim

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/phys"
	"repro/internal/shardnet"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Stats counts the engine's work — the fabric-wide sums of the
// deterministic telemetry plane (per-shard detail is ShardStats).
//
// Per-window counters, incremented once per granted parallel window:
// Windows. Advances counts dead-time clock hops onto a coordinator
// action's instant — windows that moved the clock without granting any
// shard execution.
//
// Per-barrier counters, incremented at every synchronization point:
// Barriers (one per window, plus one per action or driver fence that
// drained), and Frames/Routes, which accumulate each barrier drain's
// cross-shard frame and deferred crossbar-write batch sizes. Fences is
// the subset of barriers forced by mutating coordinator work (action
// fences and driver fences).
//
// Actions counts executed coordinator closures; several same-instant
// actions share one fence, so Actions ≥ Fences on action-heavy runs.
type Stats struct {
	Windows  uint64
	Barriers uint64
	Frames   uint64
	Routes   uint64
	Actions  uint64
	Advances uint64
	Fences   uint64
}

// ShardStat is one shard's deterministic telemetry: virtual-plane
// quantities only (kernel fired counts sampled at barriers, transport
// capture counters), byte-reproducible for a given simulation. The
// exception is BytesOut/BytesIn — socket-transport I/O totals, zero on
// the in-process transport — which report surfaces claiming cross-
// transport byte equality must exclude.
type ShardStat struct {
	Shard       int
	Events      uint64 // kernel events executed on this shard
	Windows     uint64 // windows granted (transport view)
	BusyWindows uint64 // windows in which the shard executed ≥1 event
	Frames      uint64 // cross-shard frames this shard captured
	Routes      uint64 // deferred crossbar writes this shard captured
	BytesOut    uint64
	BytesIn     uint64
	EvPerWindow telemetry.Hist // events-per-window occupancy histogram
}

// action is one coordinator closure, run at `at` with all shards
// parked on that instant. Same-instant actions keep registration
// order (the sort below is stable). desc is the action's serialized
// descriptor for distributed transports; read marks an explicitly
// read-only action that never needs mirroring.
type action struct {
	at   sim.Time
	fn   func()
	desc *shardnet.Action
	read bool
}

// Engine coordinates the shard kernels of one parallel simulation.
// It is driven from a single goroutine (the scenario driver); shard
// context only ever runs inside RunUntil, behind the transport's
// Grant.
type Engine struct {
	Kernels []*sim.Kernel
	Nets    []*phys.Net

	tr shardnet.Transport

	lookahead sim.Time
	now       sim.Time

	actions []action

	failed error

	Stats Stats

	// det is the per-shard deterministic telemetry plane, sampled at
	// window barriers from virtual-plane quantities only.
	det []shardDet

	// rec is the wall-clock telemetry plane: nil (the default) records
	// nothing; when set, the coordinator stamps window/exchange/action
	// spans here and the transport adds shard-run and round-trip spans.
	// Wall readings never reach Stats, ShardStats, or any Report field.
	rec *telemetry.Recorder

	// OnFence, if set, observes every barrier after its drain, with all
	// kernels parked on at: frames/routes are the batch sizes the drain
	// delivered, action marks fences forced by coordinator work (plan
	// events, driver fences) as opposed to plain window barriers. Purely
	// observational — the hook must not mutate model state.
	OnFence func(at sim.Time, frames, routes int, action bool)
}

// shardDet accumulates one shard's deterministic metrics.
type shardDet struct {
	events      uint64
	busyWindows uint64
	lastFired   uint64
	evPerWindow telemetry.Hist
}

// New builds an engine over one kernel+Net pair per shard on the
// default in-process transport. lookahead is the fabric's conservative
// window bound (phys.Lookahead); it must be positive. Call Shutdown
// when the simulation is done.
func New(kernels []*sim.Kernel, nets []*phys.Net, lookahead sim.Time) (*Engine, error) {
	return NewWithTransport(kernels, nets, lookahead, nil)
}

// NewWithTransport builds an engine over an explicit transport (nil
// means the in-process default). The transport must have been built
// over the same kernel+Net pairs.
func NewWithTransport(kernels []*sim.Kernel, nets []*phys.Net, lookahead sim.Time, tr shardnet.Transport) (*Engine, error) {
	if len(kernels) != len(nets) || len(kernels) == 0 {
		return nil, fmt.Errorf("parsim: %d kernels vs %d nets", len(kernels), len(nets))
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("parsim: non-positive lookahead %v", lookahead)
	}
	if tr == nil {
		tr = shardnet.NewInproc(kernels, nets)
	}
	e := &Engine{
		Kernels:   kernels,
		Nets:      nets,
		tr:        tr,
		lookahead: lookahead,
		det:       make([]shardDet, len(kernels)),
	}
	for i, k := range kernels {
		e.det[i].lastFired = k.Fired
	}
	return e, nil
}

// SetRecorder attaches the wall-clock span recorder (nil detaches).
// Call before the first RunUntil; the recorder is handed to the
// transport too, so shard goroutines and socket peers stamp their own
// spans. Attaching a recorder changes no simulation behavior and no
// Report bytes — the equivalence battery pins that.
func (e *Engine) SetRecorder(r *telemetry.Recorder) {
	r.EnsureShards(len(e.Kernels))
	e.rec = r
	if tr, ok := e.tr.(interface {
		SetRecorder(*telemetry.Recorder)
	}); ok {
		tr.SetRecorder(r)
	}
}

// ShardStats returns the deterministic per-shard telemetry plane,
// merging the engine's barrier-sampled kernel metrics with the
// transport's capture counters. Safe to call whenever the driver may
// observe the simulation (shards parked).
func (e *Engine) ShardStats() []ShardStat {
	ts := e.tr.ShardStats()
	out := make([]ShardStat, len(e.det))
	for i := range e.det {
		d := &e.det[i]
		s := ShardStat{
			Shard:       i,
			Events:      d.events,
			BusyWindows: d.busyWindows,
			EvPerWindow: d.evPerWindow,
		}
		if i < len(ts) {
			s.Windows = ts[i].Windows
			s.Frames = ts[i].Frames
			s.Routes = ts[i].Routes
			s.BytesOut = ts[i].BytesOut
			s.BytesIn = ts[i].BytesIn
		}
		out[i] = s
	}
	return out
}

// Shutdown closes the transport (stopping the shard workers, and on
// the socket transport dismissing the worker processes). The engine
// must not be run afterwards.
func (e *Engine) Shutdown() {
	if err := e.tr.Close(); err != nil {
		e.fail(err)
	}
}

// Transport exposes the engine's transport (for route binding and
// stats).
func (e *Engine) Transport() shardnet.Transport { return e.tr }

// Distributed reports whether the shards also live in other processes,
// in which case every mutating coordinator action must carry a
// serialized descriptor.
func (e *Engine) Distributed() bool { return e.tr.Distributed() }

// Err returns the sticky engine failure, if any: a shard panic, a
// worker-process death, or a replica divergence. Once set, RunUntil
// refuses to advance.
func (e *Engine) Err() error { return e.failed }

func (e *Engine) fail(err error) {
	if e.failed == nil && err != nil {
		e.failed = err
	}
}

// Now returns the engine's global virtual time (every kernel is at
// this instant whenever the driver can observe the simulation).
func (e *Engine) Now() sim.Time { return e.now }

// Lookahead returns the window bound the engine runs with.
func (e *Engine) Lookahead() sim.Time { return e.lookahead }

// ScheduleAt registers a coordinator action: fn runs single-threaded
// at virtual time t, after every event before t and before any model
// event at t, with all shard kernels parked on t. Actions at the same
// instant run in registration order. Scheduling in the past panics,
// mirroring sim.Kernel.At.
//
// On a distributed transport an action registered this way fails the
// run when it comes due — the coordinator cannot know how to mirror an
// opaque closure. Use ScheduleAction (mutating, with a serialized
// descriptor) or ScheduleRead (explicitly read-only) instead.
func (e *Engine) ScheduleAt(t sim.Time, fn func()) {
	e.schedule(t, fn, nil, false)
}

// ScheduleAction registers a mutating coordinator action together with
// its serialized descriptor; distributed transports mirror the
// descriptor to every shard worker at the fence.
func (e *Engine) ScheduleAction(t sim.Time, fn func(), desc shardnet.Action) {
	d := desc
	e.schedule(t, fn, &d, false)
}

// ScheduleRead registers an explicitly read-only coordinator action
// (condition probes, report sampling): it runs only on the
// coordinator's replica and is never mirrored. A read action that
// mutates model state diverges the replicas — which the socket
// transport's capture cross-check then catches at the next barrier.
func (e *Engine) ScheduleRead(t sim.Time, fn func()) {
	e.schedule(t, fn, nil, true)
}

func (e *Engine) schedule(t sim.Time, fn func(), desc *shardnet.Action, read bool) {
	if t < e.now {
		panic(fmt.Sprintf("parsim: action at %v before now %v", t, e.now))
	}
	e.actions = append(e.actions, action{at: t, fn: fn, desc: desc, read: read})
	sort.SliceStable(e.actions, func(a, b int) bool { return e.actions[a].at < e.actions[b].at })
}

// DeferRoute forwards a barrier-deferred crossbar write from srcShard
// to the transport's capture queue, tagged with the virtual instant it
// lands; wire it to phys.Cluster.RouteSink.
func (e *Engine) DeferRoute(srcShard int, at sim.Time, op phys.RouteOp) {
	e.tr.DeferRoute(srcShard, at, op)
}

// drain collects everything captured since the last barrier and
// delivers it: deferred crossbar writes (per source shard, FIFO), then
// cross-shard frames in the canonical (arrival, transmit time, source
// shard, sequence) order, each scheduled on its destination kernel at
// its exact arrival time. Runs single-threaded with all kernels
// parked. Returns the batch sizes for the barrier observer.
func (e *Engine) drain() (nframes, nroutes int, err error) {
	frames, routes, err := e.tr.Collect()
	if err != nil {
		return 0, 0, err
	}
	e.Stats.Routes += uint64(len(routes))
	e.Stats.Frames += uint64(len(frames))
	nframes, nroutes = len(frames), len(routes)
	if len(frames) == 0 && len(routes) == 0 {
		// Nothing crossed this barrier — common during decoupled
		// phases; skip the sort and the transport's delivery pass.
		return 0, 0, nil
	}
	// Canonical batch order: arrival, then the wire key (transmit
	// start, sending-port identity by way of source shard and capture
	// sequence) — slotting each arrival into exactly the same
	// same-instant order the serial engine would have used.
	// slices.SortFunc, unlike sort.Slice, needs no reflection-based
	// swapper allocation per barrier.
	slices.SortFunc(frames, func(pa, pb shardnet.FrameRec) int {
		switch {
		case pa.Arrival != pb.Arrival:
			if pa.Arrival < pb.Arrival {
				return -1
			}
			return 1
		case pa.TxAt != pb.TxAt:
			if pa.TxAt < pb.TxAt {
				return -1
			}
			return 1
		case pa.Src != pb.Src:
			return pa.Src - pb.Src
		case pa.Seq != pb.Seq:
			if pa.Seq < pb.Seq {
				return -1
			}
			return 1
		}
		return 0
	})
	return nframes, nroutes, e.tr.Deliver(frames, routes)
}

// runWindow executes all shards in parallel up to target (inclusive),
// then drains the barrier.
func (e *Engine) runWindow(target sim.Time) error {
	w0 := e.rec.Begin()
	if err := e.tr.Grant(target); err != nil {
		return err
	}
	e.Stats.Windows++
	e.Stats.Barriers++
	// Sample the deterministic plane: every kernel is parked on target,
	// so the fired deltas are the exact per-shard event counts of this
	// window regardless of transport or host scheduling.
	for i, k := range e.Kernels {
		d := &e.det[i]
		delta := k.Fired - d.lastFired
		d.lastFired = k.Fired
		d.events += delta
		if delta > 0 {
			d.busyWindows++
		}
		d.evPerWindow.Observe(delta)
	}
	// One clock read ends the window span and starts the exchange span:
	// the two intervals are adjacent by construction, and the shared
	// read halves the coordinator's per-window clock cost.
	x0 := e.rec.Begin()
	e.rec.CoordSpan(-1, telemetry.SpanWindow, w0, x0, int64(target))
	nf, nr, err := e.drain()
	if err != nil {
		return err
	}
	// An empty drain returns without sorting or delivering; its span
	// would be zero-length noise, and skipping it saves a clock read on
	// every decoupled-phase window.
	if nf+nr > 0 {
		e.rec.Coord(telemetry.SpanExchange, x0, int64(target))
	}
	e.now = target
	if e.OnFence != nil {
		e.OnFence(target, nf, nr, false)
	}
	return nil
}

// nextEvent returns the earliest pending event time across all shards.
func (e *Engine) nextEvent() (sim.Time, bool) {
	min, any := sim.MaxTime, false
	for _, k := range e.Kernels {
		if t, ok := k.NextEventTime(); ok && t < min {
			min, any = t, true
		}
	}
	return min, any
}

// runActionsAtNow executes every action due at the current instant.
// Kernels must already be parked on e.now with no pending events
// before it. Actions may send cross-shard traffic (a rebooted node
// solicits immediately), so the barrier is drained afterwards; on a
// distributed transport the mutating actions' descriptors are fenced
// to every shard worker first.
func (e *Engine) runActionsAtNow() error {
	ran := false
	var descs []shardnet.Action
	mirror := false
	a0 := e.rec.Begin()
	for len(e.actions) > 0 && e.actions[0].at == e.now {
		a := e.actions[0]
		e.actions = e.actions[1:]
		if !a.read {
			if a.desc == nil && e.tr.Distributed() {
				return fmt.Errorf("parsim: action at %v has no serialized descriptor and is not marked read-only; "+
					"it cannot be mirrored to distributed shard workers", e.now)
			}
			if a.desc != nil {
				descs = append(descs, *a.desc)
			}
			mirror = true
		}
		a.fn()
		e.Stats.Actions++
		ran = true
	}
	if !ran {
		return nil
	}
	e.rec.Coord(telemetry.SpanAction, a0, int64(e.now))
	if mirror {
		e.Stats.Fences++
		if err := e.tr.Fence(e.now, descs); err != nil {
			return err
		}
	}
	x0 := e.rec.Begin()
	nf, nr, err := e.drain()
	if err != nil {
		return err
	}
	e.rec.Coord(telemetry.SpanExchange, x0, int64(e.now))
	e.Stats.Barriers++
	if e.OnFence != nil {
		e.OnFence(e.now, nf, nr, true)
	}
	return nil
}

// DriverFence mirrors out-of-band driver work (boot scheduling, load
// starts, quiesce cuts — applied to the coordinator's replica by the
// layer above) to distributed shard workers and drains the resulting
// barrier. On the in-process transport it is a plain barrier drain.
func (e *Engine) DriverFence(acts []shardnet.Action) error {
	if e.failed != nil {
		return e.failed
	}
	e.Stats.Fences++
	if err := e.tr.Fence(e.now, acts); err != nil {
		e.fail(err)
		return e.failed
	}
	x0 := e.rec.Begin()
	nf, nr, err := e.drain()
	if err != nil {
		e.fail(err)
		return e.failed
	}
	e.rec.Coord(telemetry.SpanExchange, x0, int64(e.now))
	e.Stats.Barriers++
	if e.OnFence != nil {
		e.OnFence(e.now, nf, nr, true)
	}
	return nil
}

// RunUntil advances the whole simulation to deadline (inclusive),
// window by window, and leaves every shard kernel parked exactly on
// deadline — the same clock contract as sim.Kernel.RunUntil. The
// driver may freely read cross-shard state after it returns.
//
// A transport failure — shard panic, worker death, replica divergence
// — stops the run where it stands; the error is sticky and available
// from Err.
func (e *Engine) RunUntil(deadline sim.Time) sim.Time {
	if e.failed != nil || deadline < e.now {
		return e.now
	}
	for {
		if err := e.runActionsAtNow(); err != nil {
			e.fail(err)
			return e.now
		}
		if e.now >= deadline {
			// RunUntil is inclusive: model events at the deadline
			// instant (including any the actions just scheduled) still
			// run, exactly as the serial kernel would.
			if m, any := e.nextEvent(); any && m <= deadline {
				if err := e.runWindow(deadline); err != nil {
					e.fail(err)
					return e.now
				}
			}
			break
		}
		// Stop one tick short of the next action so it can run with
		// events before its instant done and events at its instant
		// still pending.
		horizon := deadline
		if len(e.actions) > 0 && e.actions[0].at <= deadline {
			horizon = e.actions[0].at - 1
		}
		if horizon > e.now {
			m, any := e.nextEvent()
			var err error
			switch {
			case !any || m > horizon:
				// Dead time: nothing to execute before the horizon.
				err = e.runWindow(horizon)
			default:
				start := m
				if start < e.now {
					start = e.now
				}
				wEnd := horizon
				// Overflow-proof window clamp: compare the window span
				// (lookahead-1) against the distance to the horizon
				// instead of computing start+lookahead, which wraps for
				// the sim.MaxTime "fully decoupled" sentinel — and for
				// any near-MaxTime lookahead a sparse topology can
				// legitimately produce.
				if e.lookahead-1 < horizon-start {
					wEnd = start + e.lookahead - 1
				}
				if wEnd < e.now {
					wEnd = e.now
				}
				err = e.runWindow(wEnd)
			}
			if err != nil {
				e.fail(err)
				return e.now
			}
			continue
		}
		// horizon == e.now: the next action is one tick away. Realize
		// the current instant first (an earlier action may have
		// scheduled zero-delay work), then advance every kernel onto
		// the action's instant without executing anything there.
		if m, any := e.nextEvent(); any && m <= e.now {
			if err := e.runWindow(e.now); err != nil {
				e.fail(err)
				return e.now
			}
		}
		at := e.actions[0].at
		if err := e.tr.Advance(at); err != nil {
			e.fail(err)
			return e.now
		}
		e.Stats.Advances++
		e.now = at
	}
	return e.now
}
