// Package frameacct is the frame-lifecycle accounting ledger: every
// place the simulator creates or destroys a frame records a typed
// transition here, so the fabric can prove a conservation invariant —
// every frame offered to a port is eventually wire-delivered, counted
// as a typed loss, or still resident in a FIFO / fiber / device latency
// stage. There are no anonymous discards: a frame death without a
// LossCause is a bug this package exists to surface.
//
// The ledger is two exact equations over monotone counters and signed
// residual gauges, both holding at any parked instant (between kernel
// runs, at window barriers, in reports):
//
//	wire:   Offered == WireDelivered + Σ wire losses + InFifo + InFlight
//	device: WireDelivered == Σ Consumed + Σ device losses
//	                          + Relaunched + InDevice
//
// Wire losses are deaths between a Port.Send and the receiving
// handler (dark port, full FIFO, FIFO cleared by a link failure, cut
// fiber, CRC); device losses are deaths inside a receiving switch,
// station or agent (dead switch, unrouted crossbar, hop expiry, flood
// dedup, ...). Relaunched counts transit re-offers (a switch crossbar
// forward, a station ring forward): the same frame re-enters the wire
// equation as a new offer, so fresh traffic is the derived
// Origins() == Offered - Relaunched and the combined invariant is the
// ISSUE's "inserted == delivered + Σ counted losses" with the three
// residual gauges making it exact mid-flight.
//
// Accts are per-Net and therefore per-shard: every mutation happens in
// the owning shard's kernel context or at a barrier with every kernel
// parked, the same single-writer discipline as the rest of the Net.
// Per-Net gauges of a sharded fabric may go negative (a cross-shard
// frame launches on the source Net and arrives on the destination
// Net); only the fabric-wide Sum balances, which is what Violations
// checks. The fixed-size Snapshot is byte-compared across processes by
// the socket transport, so a shard worker's ledger must equal the
// coordinator's at every window.
package frameacct

import (
	"encoding/binary"
	"fmt"
)

// LossCause is the closed enumeration of frame deaths. Every discard
// site in phys/insertion/rostering names exactly one cause; adding a
// new death site means adding (or reusing) a cause here and calling
// Lose at the site — the framesink ampvet analyzer flags frame-handling
// code that returns without an accounting call.
type LossCause uint8

const (
	// Wire-level causes: deaths between Send and the receiving handler.

	// LossDarkPort: offered to a port whose link is absent or dark.
	LossDarkPort LossCause = iota
	// LossFifoFull: offered to a full egress FIFO (congestion).
	LossFifoFull
	// LossFifoClear: queued in an egress FIFO that a Link.Fail cleared
	// before serialization started.
	LossFifoClear
	// LossLinkCut: in flight (serializing or propagating) when the
	// fiber was cut — the stale-link-epoch discard at delivery.
	LossLinkCut
	// LossCRC: discarded by the DeepPHY receive datapath (code
	// violation / bad CRC).
	LossCRC

	// Device-level causes: deaths inside a receiving device.

	// LossNoHandler: delivered to a port with no frame handler (or a
	// station whose control hook is unset).
	LossNoHandler
	// LossSwitchDead: arrived at (or was latency-staged inside) a
	// failed switch.
	LossSwitchDead
	// LossUnroutedXbar: node-port ingress with no crossbar route.
	LossUnroutedXbar
	// LossUnroutedVC: trunk ingress with no virtual-circuit route.
	LossUnroutedVC
	// LossFloodExpired: rostering flood dropped at the switch hop
	// limit.
	LossFloodExpired
	// LossFloodDeduped: rostering flood dropped as an already-seen
	// wave.
	LossFloodDeduped
	// LossEgressDark: a routed crossbar forward whose egress port went
	// dark (or out of range) before the cut-through latency elapsed.
	LossEgressDark
	// LossUnroutedTransit: station transit with no ring egress
	// (mid-rostering).
	LossUnroutedTransit
	// LossHopExpired: station transit past the MaxHops budget.
	LossHopExpired
	// LossAgentStopped: rostering frame at a stopped agent (node not
	// booted or shut down).
	LossAgentStopped
	// LossStaleRound: rostering announcement of a superseded epoch.
	LossStaleRound
	// LossDupAnnounce: rostering announcement already in the agent's
	// database (the flood-loop breaker).
	LossDupAnnounce

	// NumCauses bounds the enum; counters are arrays indexed by cause.
	NumCauses
)

// lossNames are the stable snake_case identifiers used as JSON keys
// and trace text — part of the report format, do not renumber.
var lossNames = [NumCauses]string{
	"dark_port", "fifo_full", "fifo_clear", "link_cut", "crc",
	"no_handler", "switch_dead", "unrouted_crossbar", "unrouted_vc",
	"flood_expired", "flood_deduped", "egress_dark",
	"unrouted_transit", "hop_expired",
	"agent_stopped", "stale_round", "dup_announce",
}

// String returns the cause's stable snake_case name.
func (c LossCause) String() string {
	if c < NumCauses {
		return lossNames[c]
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// Wire reports whether the cause is a wire-level death (counted in the
// wire conservation equation rather than the device one).
func (c LossCause) Wire() bool { return c <= LossCRC }

// ConsumeKind is the closed enumeration of legitimate frame ends: the
// frame reached the consumer it existed for.
type ConsumeKind uint8

const (
	// ConsumeHost: unicast delivered to its destination host.
	ConsumeHost ConsumeKind = iota
	// ConsumeBroadcastStrip: own broadcast stripped after a full tour.
	ConsumeBroadcastStrip
	// ConsumeKeepalive: ring keepalive stripped at its destination.
	ConsumeKeepalive
	// ConsumeControl: rostering announcement accepted into an agent's
	// link-state database (re-floods are fresh origins).
	ConsumeControl
	// ConsumeFloodFanout: rostering flood absorbed by a switch's
	// fan-out stage (each emitted copy is a fresh origin).
	ConsumeFloodFanout

	// NumConsumes bounds the enum.
	NumConsumes
)

var consumeNames = [NumConsumes]string{
	"host", "broadcast_strip", "keepalive", "control", "flood_fanout",
}

// String returns the kind's stable snake_case name.
func (k ConsumeKind) String() string {
	if k < NumConsumes {
		return consumeNames[k]
	}
	return fmt.Sprintf("consume(%d)", uint8(k))
}

// Acct is one Net's frame ledger. All fields are plain integers
// mutated from the owning shard's kernel context (or a parked
// barrier); the hot-path methods are field increments so accounting
// stays inside the 25% benchguard gate.
type Acct struct {
	// Offered counts Send/SendPriority calls (origins + relaunches).
	Offered uint64
	// WireDelivered counts frames handed to CompleteDelivery's
	// handler stage (the wire equation's delivery term).
	WireDelivered uint64
	// Relaunched counts transit re-offers: a device putting the same
	// frame back on the wire (switch crossbar forward, station ring
	// forward). Offered - Relaunched == fresh origins.
	Relaunched uint64
	// HostCopies counts broadcast deliveries observed by transit hosts
	// — copies of a frame that continues its tour, outside the
	// conservation equations.
	HostCopies uint64
	// Losses counts frame deaths by cause.
	Losses [NumCauses]uint64
	// Consumed counts legitimate frame ends by kind.
	Consumed [NumConsumes]uint64

	// Residual gauges: where live frames currently are. Signed —
	// per-Net values of a sharded fabric go negative when a frame
	// crosses Nets; only the fabric-wide sum must balance.
	InFifo   int64 // queued in an egress FIFO, not yet serializing
	InFlight int64 // serializing or propagating (delivery scheduled)
	InDevice int64 // inside a device latency stage (switch/station)

	// Observer, when set, sees every counted loss (the trace layer's
	// frame-loss timeline). It is a pure callback — it must not
	// schedule kernel events, so attaching it stays behavior-neutral.
	Observer func(cause LossCause, n int)
}

// Offer counts a Send/SendPriority attempt.
func (a *Acct) Offer() { a.Offered++ }

// Enqueue moves an accepted offer into the FIFO residual.
func (a *Acct) Enqueue() { a.InFifo++ }

// Launch moves the FIFO head onto the wire (serialization started and
// the delivery event is scheduled).
func (a *Acct) Launch() { a.InFifo--; a.InFlight++ }

// Arrive retires the wire residual as the delivery event fires (the
// frame's fate — loss or delivery — is counted by the caller).
func (a *Acct) Arrive() { a.InFlight-- }

// Deliver counts a frame reaching the receiving handler stage.
func (a *Acct) Deliver() { a.WireDelivered++ }

// Enter moves a delivered frame into a device latency stage.
func (a *Acct) Enter() { a.InDevice++ }

// Exit retires the device residual as the latency stage fires.
func (a *Acct) Exit() { a.InDevice-- }

// Relaunch counts a device re-offering a transit frame to the wire.
func (a *Acct) Relaunch() { a.Relaunched++ }

// HostCopy counts a transit host observing a broadcast copy.
func (a *Acct) HostCopy() { a.HostCopies++ }

// Consume counts a legitimate frame end.
func (a *Acct) Consume(k ConsumeKind) { a.Consumed[k]++ }

// Lose counts one frame death.
func (a *Acct) Lose(c LossCause) {
	a.Losses[c]++
	if a.Observer != nil {
		a.Observer(c, 1)
	}
}

// LoseN counts n frame deaths of one cause (an egress-FIFO clear).
func (a *Acct) LoseN(c LossCause, n int) {
	if n <= 0 {
		return
	}
	a.Losses[c] += uint64(n)
	if a.Observer != nil {
		a.Observer(c, n)
	}
}

// ClearFifo counts a Link.Fail destroying n queued-but-unlaunched
// frames, retiring their FIFO residual.
func (a *Acct) ClearFifo(n int) {
	if n <= 0 {
		return
	}
	a.InFifo -= int64(n)
	a.LoseN(LossFifoClear, n)
}

// Add accumulates b into a (fabric-wide summation over shard Nets).
// The Observer is not part of the arithmetic state.
func (a *Acct) Add(b *Acct) {
	a.Offered += b.Offered
	a.WireDelivered += b.WireDelivered
	a.Relaunched += b.Relaunched
	a.HostCopies += b.HostCopies
	for i := range a.Losses {
		a.Losses[i] += b.Losses[i]
	}
	for i := range a.Consumed {
		a.Consumed[i] += b.Consumed[i]
	}
	a.InFifo += b.InFifo
	a.InFlight += b.InFlight
	a.InDevice += b.InDevice
}

// Origins returns the fresh-traffic count: offers minus transit
// relaunches.
func (a *Acct) Origins() uint64 { return a.Offered - a.Relaunched }

// WireLosses sums the wire-level causes.
func (a *Acct) WireLosses() uint64 {
	var n uint64
	for c := LossCause(0); c < NumCauses; c++ {
		if c.Wire() {
			n += a.Losses[c]
		}
	}
	return n
}

// DeviceLosses sums the device-level causes.
func (a *Acct) DeviceLosses() uint64 {
	var n uint64
	for c := LossCause(0); c < NumCauses; c++ {
		if !c.Wire() {
			n += a.Losses[c]
		}
	}
	return n
}

// TotalLosses sums every cause.
func (a *Acct) TotalLosses() uint64 { return a.WireLosses() + a.DeviceLosses() }

// ConsumedTotal sums every consume kind.
func (a *Acct) ConsumedTotal() uint64 {
	var n uint64
	for _, v := range a.Consumed {
		n += v
	}
	return n
}

// Conserved reports whether both conservation equations balance.
func (a *Acct) Conserved() bool { return len(a.Violations()) == 0 }

// Violations checks the two conservation equations on a fabric-wide
// sum and describes every imbalance (empty means conserved). Call it
// only on the Sum of every shard's Acct at a parked instant: per-Net
// ledgers of a sharded fabric intentionally do not balance alone.
func (a *Acct) Violations() []string {
	var out []string
	// Wire: Offered == WireDelivered + wire losses + InFifo + InFlight.
	lhs := int64(a.Offered)
	rhs := int64(a.WireDelivered) + int64(a.WireLosses()) + a.InFifo + a.InFlight
	if lhs != rhs {
		out = append(out, fmt.Sprintf(
			"frame conservation (wire): offered %d != delivered %d + wire losses %d + in-fifo %d + in-flight %d (imbalance %+d)",
			a.Offered, a.WireDelivered, a.WireLosses(), a.InFifo, a.InFlight, lhs-rhs))
	}
	// Device: WireDelivered == consumed + device losses + relaunched + InDevice.
	lhs = int64(a.WireDelivered)
	rhs = int64(a.ConsumedTotal()) + int64(a.DeviceLosses()) + int64(a.Relaunched) + a.InDevice
	if lhs != rhs {
		out = append(out, fmt.Sprintf(
			"frame conservation (device): delivered %d != consumed %d + device losses %d + relaunched %d + in-device %d (imbalance %+d)",
			a.WireDelivered, a.ConsumedTotal(), a.DeviceLosses(), a.Relaunched, a.InDevice, lhs-rhs))
	}
	if a.InFifo < 0 || a.InFlight < 0 || a.InDevice < 0 {
		out = append(out, fmt.Sprintf(
			"frame conservation: negative fabric-wide residual (in-fifo %d, in-flight %d, in-device %d)",
			a.InFifo, a.InFlight, a.InDevice))
	}
	return out
}

// LossMap returns the nonzero loss counters keyed by cause name
// (deterministic in JSON: encoding/json sorts map keys).
func (a *Acct) LossMap() map[string]uint64 {
	var m map[string]uint64
	for c := LossCause(0); c < NumCauses; c++ {
		if a.Losses[c] != 0 {
			if m == nil {
				m = map[string]uint64{}
			}
			m[c.String()] = a.Losses[c]
		}
	}
	return m
}

// ConsumeMap returns the nonzero consume counters keyed by kind name.
func (a *Acct) ConsumeMap() map[string]uint64 {
	var m map[string]uint64
	for k := ConsumeKind(0); k < NumConsumes; k++ {
		if a.Consumed[k] != 0 {
			if m == nil {
				m = map[string]uint64{}
			}
			m[k.String()] = a.Consumed[k]
		}
	}
	return m
}

// SnapshotLen is the byte length of the fixed little-endian ledger
// snapshot the socket transport byte-compares per window.
const SnapshotLen = (4 + int(NumCauses) + int(NumConsumes) + 3) * 8

// AppendSnapshot appends the ledger's fixed-size little-endian
// snapshot: the four monotone scalars, the loss array, the consume
// array, then the three gauges in two's complement. The layout is part
// of the shard-worker protocol (bump shardnet.ProtoVersion when it
// changes).
func (a *Acct) AppendSnapshot(b []byte) []byte {
	u := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	u(a.Offered)
	u(a.WireDelivered)
	u(a.Relaunched)
	u(a.HostCopies)
	for _, v := range a.Losses {
		u(v)
	}
	for _, v := range a.Consumed {
		u(v)
	}
	u(uint64(a.InFifo))
	u(uint64(a.InFlight))
	u(uint64(a.InDevice))
	return b
}

// Snapshot returns the ledger's fixed-size snapshot.
func (a *Acct) Snapshot() []byte { return a.AppendSnapshot(make([]byte, 0, SnapshotLen)) }

// DecodeSnapshot parses a snapshot produced by AppendSnapshot.
func DecodeSnapshot(p []byte) (Acct, error) {
	var a Acct
	if len(p) != SnapshotLen {
		return a, fmt.Errorf("frameacct: snapshot is %d bytes, want %d", len(p), SnapshotLen)
	}
	u := func() uint64 {
		v := binary.LittleEndian.Uint64(p)
		p = p[8:]
		return v
	}
	a.Offered = u()
	a.WireDelivered = u()
	a.Relaunched = u()
	a.HostCopies = u()
	for i := range a.Losses {
		a.Losses[i] = u()
	}
	for i := range a.Consumed {
		a.Consumed[i] = u()
	}
	a.InFifo = int64(u())
	a.InFlight = int64(u())
	a.InDevice = int64(u())
	return a, nil
}

// SnapshotDiff names the first counter differing between two
// snapshots — the divergence diagnostic the socket transport prints.
// It returns "" when the snapshots are equal.
func SnapshotDiff(local, remote []byte) string {
	la, errL := DecodeSnapshot(local)
	ra, errR := DecodeSnapshot(remote)
	if errL != nil || errR != nil {
		return fmt.Sprintf("undecodable snapshot (local %d bytes, remote %d)", len(local), len(remote))
	}
	type field struct {
		name          string
		local, remote int64
	}
	fields := []field{
		{"offered", int64(la.Offered), int64(ra.Offered)},
		{"wire_delivered", int64(la.WireDelivered), int64(ra.WireDelivered)},
		{"relaunched", int64(la.Relaunched), int64(ra.Relaunched)},
		{"host_copies", int64(la.HostCopies), int64(ra.HostCopies)},
	}
	for c := LossCause(0); c < NumCauses; c++ {
		fields = append(fields, field{"loss/" + c.String(), int64(la.Losses[c]), int64(ra.Losses[c])})
	}
	for k := ConsumeKind(0); k < NumConsumes; k++ {
		fields = append(fields, field{"consumed/" + k.String(), int64(la.Consumed[k]), int64(ra.Consumed[k])})
	}
	fields = append(fields,
		field{"in_fifo", la.InFifo, ra.InFifo},
		field{"in_flight", la.InFlight, ra.InFlight},
		field{"in_device", la.InDevice, ra.InDevice})
	for _, f := range fields {
		if f.local != f.remote {
			return fmt.Sprintf("%s: coordinator %d, worker %d", f.name, f.local, f.remote)
		}
	}
	return ""
}
