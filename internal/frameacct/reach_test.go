package frameacct_test

import (
	"testing"

	"repro/internal/enc8b10b"
	"repro/internal/frameacct"
	"repro/internal/insertion"
	"repro/internal/micropacket"
	"repro/internal/phys"
	"repro/internal/rostering"
	"repro/internal/sim"
)

// This file is the reachability property for the loss taxonomy: every
// LossCause in the closed enum is produced by at least one concrete
// scenario. The external test package lets it drive the real layers
// (phys, insertion, rostering) that own the death sites; the closure
// loop at the bottom fails the moment a new cause is added without a
// scenario here, so the taxonomy cannot silently grow untestable
// entries.

// rig is one scenario's world: a kernel, a Net, and (when the scenario
// needs a fabric) a cluster built on it.
type rig struct {
	k   *sim.Kernel
	net *phys.Net
	c   *phys.Cluster
}

func newRig(topo *phys.Topology) *rig {
	r := &rig{k: sim.NewKernel(1)}
	r.net = phys.NewNet(r.k)
	if topo != nil {
		c, err := phys.BuildFabric(r.net, *topo)
		if err != nil {
			panic(err)
		}
		r.c = c
	}
	return r
}

func (r *rig) run(d sim.Time) { r.k.RunUntil(r.k.Now() + d) }

func dataPkt(src, dst micropacket.NodeID) *micropacket.Packet {
	return micropacket.NewData(src, dst, 1, []byte{0xAB})
}

// rosteringPkt builds an announcement in the documented 8-byte layout
// (origin LE at 0..1, mask at 2, epoch LE at 3..6, seq at 7).
func rosteringPkt(origin micropacket.NodeID, epoch uint32, seq uint8) *micropacket.Packet {
	var pl [micropacket.FixedPayload]byte
	pl[0], pl[1] = byte(origin), byte(origin>>8)
	pl[2] = 0x01
	pl[3], pl[4], pl[5], pl[6] = byte(epoch), byte(epoch>>8), byte(epoch>>16), byte(epoch>>24)
	pl[7] = seq
	return micropacket.NewRostering(origin, 0, pl)
}

// lossScenarios maps every cause to the smallest setup that produces
// it. Each returns the Acct whose counter must have moved.
var lossScenarios = map[frameacct.LossCause]func() *frameacct.Acct{
	frameacct.LossDarkPort: func() *frameacct.Acct {
		r := newRig(nil)
		p := r.net.NewPort("orphan", nil)
		p.Send(r.net.NewFrame(dataPkt(0, 1)))
		return &r.net.Acct
	},
	frameacct.LossFifoFull: func() *frameacct.Acct {
		r := newRig(nil)
		a, b := r.net.NewPort("a", nil), r.net.NewPort("b", func(*phys.Port, phys.Frame) {})
		r.net.Connect(a, b, 50)
		a.SetCapacity(1)
		a.Send(r.net.NewFrame(dataPkt(0, 1)))
		a.Send(r.net.NewFrame(dataPkt(0, 1))) // FIFO holds the serializing head; this one overflows
		return &r.net.Acct
	},
	frameacct.LossFifoClear: func() *frameacct.Acct {
		r := newRig(nil)
		a, b := r.net.NewPort("a", nil), r.net.NewPort("b", func(*phys.Port, phys.Frame) {})
		l := r.net.Connect(a, b, 50)
		for i := 0; i < 3; i++ {
			a.Send(r.net.NewFrame(dataPkt(0, 1)))
		}
		l.Fail() // the serializing head dies as link_cut; the two queued behind it as fifo_clear
		r.run(sim.Millisecond)
		return &r.net.Acct
	},
	frameacct.LossLinkCut: func() *frameacct.Acct {
		r := newRig(nil)
		a, b := r.net.NewPort("a", nil), r.net.NewPort("b", func(*phys.Port, phys.Frame) {})
		l := r.net.Connect(a, b, 50)
		a.Send(r.net.NewFrame(dataPkt(0, 1)))
		l.Fail() // launched, in flight, fiber cut before arrival
		r.run(sim.Millisecond)
		return &r.net.Acct
	},
	frameacct.LossCRC: func() *frameacct.Acct {
		r := newRig(nil)
		r.net.DeepPHY = true
		r.net.Corrupt = func(_ phys.Frame, syms []enc8b10b.Symbol) {
			for i := range syms {
				syms[i] = 0 // flatten the stream; the receive decode must reject it
			}
		}
		a, b := r.net.NewPort("a", nil), r.net.NewPort("b", func(*phys.Port, phys.Frame) {})
		r.net.Connect(a, b, 50)
		a.Send(r.net.NewFrame(dataPkt(0, 1)))
		r.run(sim.Millisecond)
		return &r.net.Acct
	},
	frameacct.LossNoHandler: func() *frameacct.Acct {
		r := newRig(nil)
		a, b := r.net.NewPort("a", nil), r.net.NewPort("b", nil) // receiver has no handler
		r.net.Connect(a, b, 50)
		a.Send(r.net.NewFrame(dataPkt(0, 1)))
		r.run(sim.Millisecond)
		return &r.net.Acct
	},
	frameacct.LossSwitchDead: func() *frameacct.Acct {
		topo := phys.Uniform(2, 1, 50)
		r := newRig(&topo)
		r.c.Switches[0].SetRoute(0, 1)
		f := r.net.NewFrame(dataPkt(0, 1))
		// Fail the switch while the frame is latency-staged inside it:
		// after its receive (serialization + fiber flight) but before
		// the cut-through forward dispatches.
		arrival := phys.SerTime(f.Wire+r.net.IFG) + phys.PropTime(50)
		r.k.After(arrival+phys.DefaultSwitchLatency/2, func() { r.c.Switches[0].Fail() })
		r.c.NodePorts[0][0].Send(f)
		r.run(sim.Millisecond)
		return &r.net.Acct
	},
	frameacct.LossUnroutedXbar: func() *frameacct.Acct {
		topo := phys.Uniform(2, 1, 50)
		r := newRig(&topo)
		r.c.NodePorts[0][0].Send(r.net.NewFrame(dataPkt(0, 1))) // crossbar never programmed
		r.run(sim.Millisecond)
		return &r.net.Acct
	},
	frameacct.LossUnroutedVC: func() *frameacct.Acct {
		topo := phys.Sharded(2, 1, 1, 50)
		r := newRig(&topo)
		// Route node 0's ingress onto the trunk; the far switch has no
		// virtual-circuit entry for it.
		r.c.Switches[0].SetRoute(0, r.c.Trunks[0].PortA)
		r.c.NodePorts[0][0].Send(r.net.NewFrame(dataPkt(0, 1)))
		r.run(sim.Millisecond)
		return &r.net.Acct
	},
	frameacct.LossFloodExpired: func() *frameacct.Acct {
		topo := phys.Uniform(2, 1, 50)
		r := newRig(&topo)
		f := r.net.NewFrame(rosteringPkt(0, 1, 1))
		f.Hops = phys.MaxFloodHops // arrives with an exhausted hop budget
		r.c.NodePorts[0][0].Send(f)
		r.run(sim.Millisecond)
		return &r.net.Acct
	},
	frameacct.LossFloodDeduped: func() *frameacct.Acct {
		topo := phys.Uniform(2, 1, 50)
		r := newRig(&topo)
		// The same announcement wave twice: the second is a duplicate.
		r.c.NodePorts[0][0].Send(r.net.NewFrame(rosteringPkt(0, 1, 1)))
		r.c.NodePorts[0][0].Send(r.net.NewFrame(rosteringPkt(0, 1, 1)))
		r.run(sim.Millisecond)
		return &r.net.Acct
	},
	frameacct.LossEgressDark: func() *frameacct.Acct {
		topo := phys.Uniform(2, 1, 50)
		r := newRig(&topo)
		r.c.Switches[0].SetRoute(0, 1)
		f := r.net.NewFrame(dataPkt(0, 1))
		// Cut the egress fiber while the frame is latency-staged.
		arrival := phys.SerTime(f.Wire+r.net.IFG) + phys.PropTime(50)
		r.k.After(arrival+phys.DefaultSwitchLatency/2, func() { r.c.NodeLinks[1][0].Fail() })
		r.c.NodePorts[0][0].Send(f)
		r.run(sim.Millisecond)
		return &r.net.Acct
	},
	frameacct.LossUnroutedTransit: func() *frameacct.Acct {
		topo := phys.Uniform(2, 1, 50)
		r := newRig(&topo)
		insertion.NewStation(r.k, 0, r.c.NodePorts[0])
		// A transit frame (neither broadcast nor addressed to node 0)
		// reaches a station whose ring egress was never programmed.
		r.c.Switches[0].SetRoute(1, 0)
		r.c.NodePorts[1][0].Send(r.net.NewFrame(dataPkt(5, 7)))
		r.run(sim.Millisecond)
		return &r.net.Acct
	},
	frameacct.LossHopExpired: func() *frameacct.Acct {
		topo := phys.Uniform(2, 1, 50)
		r := newRig(&topo)
		st := insertion.NewStation(r.k, 0, r.c.NodePorts[0])
		st.SetEgress(0)
		r.c.Switches[0].SetRoute(1, 0)
		f := r.net.NewFrame(dataPkt(5, 7))
		f.Hops = st.MaxHops // transit budget already spent
		r.c.NodePorts[1][0].Send(f)
		r.run(sim.Millisecond)
		return &r.net.Acct
	},
	frameacct.LossAgentStopped: func() *frameacct.Acct {
		topo := phys.Uniform(2, 1, 50)
		r := newRig(&topo)
		for i := 0; i < 2; i++ {
			st := insertion.NewStation(r.k, micropacket.NodeID(i), r.c.NodePorts[i])
			a := rostering.NewAgent(r.k, i, r.c, st, 50)
			if i == 1 {
				r.k.After(0, a.Start) // node 0 never boots; floods reaching it must die typed
			}
		}
		r.run(5 * sim.Millisecond)
		return &r.net.Acct
	},
	frameacct.LossStaleRound: func() *frameacct.Acct {
		topo := phys.Uniform(2, 1, 50)
		r := newRig(&topo)
		for i := 0; i < 2; i++ {
			st := insertion.NewStation(r.k, micropacket.NodeID(i), r.c.NodePorts[i])
			a := rostering.NewAgent(r.k, i, r.c, st, 50)
			r.k.After(0, a.Start)
		}
		r.run(5 * sim.Millisecond) // both agents settle at epoch >= 1
		// A straggler announcement from a superseded round, injected on
		// the switch port facing node 0 (bypassing the switch's own
		// flood dedup, which would absorb it first).
		r.c.Switches[0].Port(0).SendPriority(r.net.NewFrame(rosteringPkt(1, 0, 9)))
		r.run(sim.Millisecond)
		return &r.net.Acct
	},
	frameacct.LossDupAnnounce: func() *frameacct.Acct {
		// Two switches flood every announcement to each agent twice;
		// the second copy is always a database duplicate.
		topo := phys.Uniform(2, 2, 50)
		r := newRig(&topo)
		for i := 0; i < 2; i++ {
			st := insertion.NewStation(r.k, micropacket.NodeID(i), r.c.NodePorts[i])
			a := rostering.NewAgent(r.k, i, r.c, st, 50)
			r.k.After(0, a.Start)
		}
		r.run(5 * sim.Millisecond)
		return &r.net.Acct
	},
}

// TestEveryLossCauseReachable runs each scenario and requires the
// targeted counter to move; the closure loop requires a scenario for
// every member of the enum.
func TestEveryLossCauseReachable(t *testing.T) {
	for c := frameacct.LossCause(0); c < frameacct.NumCauses; c++ {
		c := c
		t.Run(c.String(), func(t *testing.T) {
			scenario, ok := lossScenarios[c]
			if !ok {
				t.Fatalf("no reachability scenario for cause %q — every LossCause needs one", c)
			}
			acct := scenario()
			if acct.Losses[c] == 0 {
				t.Fatalf("scenario for %q produced no such loss; ledger: %+v", c, acct.Losses)
			}
			if v := acct.Violations(); len(v) != 0 {
				t.Fatalf("scenario for %q broke conservation: %v", c, v)
			}
		})
	}
}
