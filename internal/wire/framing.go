package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/enc8b10b"
	"repro/internal/micropacket"
)

// Ordered-set data bytes (after the K28.5 opener). Shared by every
// version: only the format byte varies.
const (
	sofByte1 = 0xB5 // D21.5
	sofByte2 = 0x36 // D22.1
	eofByte1 = 0x95 // D21.4
	eofByte2 = 0x75 // D21.3
	eofByte3 = 0x75 // D21.3
)

// The SOF format byte carries the fixed/variable bit and the format
// version in one octet, generalizing the seed encoding (0x0F fixed,
// 0xF0 variable) without moving a single v1 bit:
//
//	fixed    frames: low nibble 0xF, high nibble = version-1
//	variable frames: high nibble 0xF, low nibble = version-1
//
// v1 → 0x0F / 0xF0 (byte-exact with the seed format); v2 → 0x1F /
// 0xF1. 0xFF would be ambiguous and is rejected.
func formatByte(v Version, variable bool) byte {
	if variable {
		return 0xF0 | (byte(v) - 1)
	}
	return (byte(v)-1)<<4 | 0x0F
}

// sniffFormat inverts formatByte.
func sniffFormat(b byte) (v Version, variable bool, err error) {
	if b == 0xFF {
		return 0, false, ErrBadSOF
	}
	switch {
	case b&0x0F == 0x0F:
		return Version(b>>4) + 1, false, nil
	case b>>4 == 0xF:
		return Version(b&0x0F) + 1, true, nil
	default:
		return 0, false, ErrBadSOF
	}
}

// Shared wire sizes.
const (
	sofLen = 4
	crcLen = 4
	eofLen = 4
	dmaLen = 8 // DMA control words of the variable format
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func pad4(n int) int { return (n + 3) &^ 3 }

// encodeFrame assembles SOF + body + CRC + EOF for one codec: the
// caller provides the control block and the shared payload section is
// appended here, so both versions pad and checksum identically.
func encodeFrame(v Version, p *micropacket.Packet, ctrl []byte, size int) ([]byte, error) {
	buf := make([]byte, 0, size)
	buf = append(buf, enc8b10b.K28_5, sofByte1, sofByte2, formatByte(v, p.Type.Variable()))
	body := make([]byte, 0, size-sofLen-crcLen-eofLen)
	body = append(body, ctrl...)
	if p.Type.Variable() {
		body = append(body, p.DMA.Channel, p.DMA.Region, p.DMA.Length, p.DMA.Seq)
		var off [4]byte
		binary.LittleEndian.PutUint32(off[:], p.DMA.Offset)
		body = append(body, off[:]...)
		body = append(body, p.Data...)
		for i := len(p.Data); i < pad4(len(p.Data)); i++ {
			body = append(body, 0)
		}
	} else {
		body = append(body, p.Payload[:]...)
	}
	buf = append(buf, body...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(body, castagnoli))
	buf = append(buf, crc[:]...)
	buf = append(buf, enc8b10b.K28_5, eofByte1, eofByte2, eofByte3)
	if len(buf) != size {
		return nil, fmt.Errorf("wire: internal size error: %d != %d", len(buf), size)
	}
	return buf, nil
}

// openFrame checks SOF/EOF/CRC for a frame claimed to be version v and
// returns the body (control block + payload section) and the variable
// flag from the format byte.
func openFrame(v Version, buf []byte, minWire int) (body []byte, variable bool, err error) {
	if len(buf) < minWire {
		return nil, false, ErrTruncated
	}
	if buf[0] != enc8b10b.K28_5 || buf[1] != sofByte1 || buf[2] != sofByte2 {
		return nil, false, ErrBadSOF
	}
	fv, variable, err := sniffFormat(buf[3])
	if err != nil {
		return nil, false, err
	}
	if fv != v {
		return nil, false, ErrBadSOF
	}
	end := len(buf)
	if buf[end-4] != enc8b10b.K28_5 || buf[end-3] != eofByte1 || buf[end-2] != eofByte2 || buf[end-1] != eofByte3 {
		return nil, false, ErrBadEOF
	}
	body = buf[sofLen : end-crcLen-eofLen]
	wantCRC := binary.LittleEndian.Uint32(buf[end-crcLen-eofLen : end-eofLen])
	if crc32.Checksum(body, castagnoli) != wantCRC {
		return nil, false, ErrBadCRC
	}
	return body, variable, nil
}

// decodePayload parses the shared payload section (everything after
// the control block) into p, enforcing the same structural rules for
// both versions.
func decodePayload(p *micropacket.Packet, rest []byte, variable bool) error {
	if p.Type.Variable() != variable {
		return ErrBadFormat
	}
	if p.Type.Variable() {
		if len(rest) < dmaLen {
			return ErrTruncated
		}
		p.DMA = micropacket.DMAHeader{
			Channel: rest[0], Region: rest[1], Length: rest[2], Seq: rest[3],
			Offset: binary.LittleEndian.Uint32(rest[4:8]),
		}
		payload := rest[dmaLen:]
		if int(p.DMA.Length) > len(payload) {
			return micropacket.ErrLengthMism
		}
		if len(payload) != pad4(int(p.DMA.Length)) {
			return micropacket.ErrLengthMism
		}
		// Padding must be zero: there is exactly one encoding per
		// packet per version, so decode-then-encode is the identity on
		// accepted frames.
		for _, b := range payload[p.DMA.Length:] {
			if b != 0 {
				return ErrReserved
			}
		}
		p.Data = make([]byte, p.DMA.Length)
		copy(p.Data, payload)
	} else {
		if len(rest) != micropacket.FixedPayload {
			return ErrTruncated
		}
		copy(p.Payload[:], rest)
	}
	return p.Validate()
}

// EncodeSymbols serializes the packet all the way to FC-1 10-bit
// symbols under codec c, using the supplied encoder (which carries
// link running disparity). The SOF and EOF K28.5 openers are emitted
// as control characters.
func EncodeSymbols(c Codec, p *micropacket.Packet, enc *enc8b10b.Encoder) ([]enc8b10b.Symbol, error) {
	raw, err := c.Encode(p)
	if err != nil {
		return nil, err
	}
	syms := make([]enc8b10b.Symbol, 0, len(raw))
	for i, b := range raw {
		control := b == enc8b10b.K28_5 && (i == 0 || i == len(raw)-eofLen)
		s, err := enc.Encode(b, control)
		if err != nil {
			return nil, err
		}
		syms = append(syms, s)
	}
	return syms, nil
}

// DecodeSymbols reverses EncodeSymbols using the supplied decoder,
// dispatching the decoded bytes on the SOF format byte like Decode.
// The SOF and EOF ordered sets must open with a control (K) character
// and every other position must be a data character — byte-value
// equality is not enough, since e.g. D28.5 and the K28.5 comma share
// the byte value 0xBC but are distinct transmission characters.
func DecodeSymbols(syms []enc8b10b.Symbol, dec *enc8b10b.Decoder) (*micropacket.Packet, Version, error) {
	raw := make([]byte, 0, len(syms))
	for i, s := range syms {
		d, err := dec.Decode(s)
		if err != nil {
			return nil, 0, fmt.Errorf("wire: symbol %d: %w", i, err)
		}
		wantControl := i == 0 || i == len(syms)-eofLen
		if d.Control != wantControl {
			return nil, 0, fmt.Errorf("wire: symbol %d: control/data class violation", i)
		}
		raw = append(raw, d.Byte)
	}
	return Decode(raw)
}
