package wire

import (
	"testing"
	"testing/quick"

	"repro/internal/enc8b10b"
	mp "repro/internal/micropacket"
)

// FuzzDecode: whatever the wire carries — either format version or
// garbage — Decode either returns a valid packet or an error, never a
// panic and never an invalid packet. A frame that decodes must
// re-encode byte-identically under its reported version (the codec is
// canonical: there is exactly one encoding per packet per version).
func FuzzDecode(f *testing.F) {
	for _, g := range goldenPackets() {
		for _, c := range codecs() {
			if raw, err := c.Encode(g.pkt); err == nil {
				f.Add(raw)
			}
		}
	}
	f.Add([]byte{enc8b10b.K28_5, sofByte1, sofByte2, 0x1F})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		p, v, err := Decode(raw)
		if err != nil {
			if p != nil {
				t.Fatal("error with non-nil packet")
			}
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("decoded invalid packet: %v", err)
		}
		re, err := Encode(v, p)
		if err != nil {
			t.Fatalf("decoded packet does not re-encode under %v: %v", v, err)
		}
		if string(re) != string(raw) {
			t.Fatalf("non-canonical frame accepted under %v:\n in  %x\n out %x", v, raw, re)
		}
	})
}

// TestDecodeArbitraryBytesNeverPanics is the quick-check form of the
// fuzz property, so the guarantee is exercised on every plain `go
// test` run, not only under -fuzz.
func TestDecodeArbitraryBytesNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		p, _, err := Decode(raw)
		if err != nil {
			return p == nil
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeMutatedFramesNeverInvalid: start from valid frames of both
// versions and mutate bytes; any accepted decode must still validate.
// (Mutations of the SOF/EOF/padding bytes are outside the CRC, so
// acceptance is possible — but the packet contents are CRC-protected.)
func TestDecodeMutatedFramesNeverInvalid(t *testing.T) {
	base := []*mp.Packet{
		mp.NewData(1, 2, 3, []byte{1, 2, 3}),
		mp.NewDMA(4, 5, mp.DMAHeader{Channel: 6, Region: 7, Offset: 8}, []byte{9, 10, 11, 12, 13}),
		mp.NewAtomic(1, 2, 3, mp.OpTestAndSet, 99),
	}
	rnd := uint64(12345)
	next := func() uint64 {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return rnd
	}
	for _, c := range codecs() {
		for _, p := range base {
			raw, err := c.Encode(p)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 5000; trial++ {
				mut := append([]byte{}, raw...)
				nMuts := int(next()%3) + 1
				for m := 0; m < nMuts; m++ {
					mut[next()%uint64(len(mut))] ^= byte(next())
				}
				q, _, err := Decode(mut)
				if err != nil {
					continue
				}
				if q.Validate() != nil {
					t.Fatalf("%v: accepted invalid packet from mutation: %v", c.Version(), q)
				}
				// If the body survived (CRC matched), contents must be
				// byte-identical to the original.
				if q.Type == p.Type && q.Src == p.Src && q.Dst == p.Dst {
					continue
				}
				t.Fatalf("%v: CRC accepted altered contents: %v vs %v", c.Version(), q, p)
			}
		}
	}
}

// TestSymbolDecodeArbitrarySymbolsNeverPanics covers the FC-1 path.
func TestSymbolDecodeArbitrarySymbolsNeverPanics(t *testing.T) {
	f := func(words []uint16) bool {
		syms := make([]enc8b10b.Symbol, len(words))
		for i, w := range words {
			syms[i] = enc8b10b.Symbol(w & 0x3FF)
		}
		p, _, err := DecodeSymbols(syms, enc8b10b.NewDecoder())
		if err != nil {
			return p == nil
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
