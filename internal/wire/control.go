package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Control-message framing: the envelope the distributed parsim
// transport (internal/shardnet) speaks between the coordinator and its
// shard worker processes. Data plane traffic — cross-shard
// phys.Frames — travels as real MicroPackets through the packet codec
// registry above; the control plane (window grants, capture batches,
// coordinator-action fences, handshakes) needs its own tiny envelope,
// registered alongside the packet codecs and pinned by golden vectors
// exactly like them.
//
// ControlV1 layout (all multi-byte fields little-endian):
//
//	offset size  field
//	0      1     magic 0xA9
//	1      1     magic 0x53
//	2      1     envelope version (0x01)
//	3      1     message type (opaque to this package)
//	4      4     payload length N
//	8      N     payload
//	8+N    4     CRC-32C over bytes [2, 8+N)
//
// The encoding is canonical: for every valid frame, re-encoding the
// decoded (version, type, payload) triple reproduces the input bytes
// exactly — the invariant FuzzControlDecode enforces.

// ControlVersion identifies a control-envelope layout, mirroring
// Version for packet codecs.
type ControlVersion uint8

// ControlV1 is the first (and so far only) control-envelope version.
const ControlV1 ControlVersion = 1

const (
	controlMagic0  = 0xA9
	controlMagic1  = 0x53
	controlHdrLen  = 8
	controlCRCLen  = 4
	controlMinWire = controlHdrLen + controlCRCLen
)

// MaxControlPayload bounds a control payload; a length field beyond it
// is rejected before any allocation, so a corrupt or hostile header
// cannot demand gigabytes.
const MaxControlPayload = 1 << 26

// Control-envelope decode errors, mirroring the packet codec's error
// taxonomy.
var (
	ErrControlTruncated = fmt.Errorf("wire: truncated control frame")
	ErrControlMagic     = fmt.Errorf("wire: bad control magic")
	ErrControlVersion   = fmt.Errorf("wire: unknown control version")
	ErrControlLength    = fmt.Errorf("wire: control payload length out of range")
	ErrControlCRC       = fmt.Errorf("wire: control CRC mismatch")
	ErrControlTrailing  = fmt.Errorf("wire: trailing bytes after control frame")
)

// controlCodec encodes and decodes one control-envelope version.
type controlCodec interface {
	ControlVersion() ControlVersion
	EncodeControl(typ uint8, payload []byte) []byte
	// decodeControl parses buf, which must hold exactly one frame.
	DecodeControl(buf []byte) (typ uint8, payload []byte, err error)
}

// controlRegistry mirrors the packet-codec registry: one entry per
// envelope version, written only at init.
var controlRegistry = map[ControlVersion]controlCodec{
	ControlV1: controlV1{},
}

type controlV1 struct{}

func (controlV1) ControlVersion() ControlVersion { return ControlV1 }

func (controlV1) EncodeControl(typ uint8, payload []byte) []byte {
	buf := make([]byte, controlMinWire+len(payload))
	buf[0] = controlMagic0
	buf[1] = controlMagic1
	buf[2] = byte(ControlV1)
	buf[3] = typ
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(payload)))
	copy(buf[controlHdrLen:], payload)
	crc := crc32.Checksum(buf[2:controlHdrLen+len(payload)], castagnoli)
	binary.LittleEndian.PutUint32(buf[controlHdrLen+len(payload):], crc)
	return buf
}

func (controlV1) DecodeControl(buf []byte) (uint8, []byte, error) {
	if len(buf) < controlMinWire {
		return 0, nil, ErrControlTruncated
	}
	n := binary.LittleEndian.Uint32(buf[4:8])
	if n > MaxControlPayload {
		return 0, nil, ErrControlLength
	}
	end := controlMinWire + int(n)
	if len(buf) < end {
		return 0, nil, ErrControlTruncated
	}
	if len(buf) > end {
		return 0, nil, ErrControlTrailing
	}
	wantCRC := binary.LittleEndian.Uint32(buf[end-controlCRCLen:])
	if crc32.Checksum(buf[2:end-controlCRCLen], castagnoli) != wantCRC {
		return 0, nil, ErrControlCRC
	}
	return buf[3], buf[controlHdrLen : end-controlCRCLen], nil
}

// EncodeControl frames one control message under the given envelope
// version.
func EncodeControl(v ControlVersion, typ uint8, payload []byte) ([]byte, error) {
	c, ok := controlRegistry[v]
	if !ok {
		return nil, ErrControlVersion
	}
	if len(payload) > MaxControlPayload {
		return nil, ErrControlLength
	}
	return c.EncodeControl(typ, payload), nil
}

// DecodeControl parses buf, which must hold exactly one control frame,
// and returns its envelope version, message type and payload. The
// payload aliases buf.
func DecodeControl(buf []byte) (ControlVersion, uint8, []byte, error) {
	if len(buf) < controlHdrLen {
		return 0, 0, nil, ErrControlTruncated
	}
	if buf[0] != controlMagic0 || buf[1] != controlMagic1 {
		return 0, 0, nil, ErrControlMagic
	}
	v := ControlVersion(buf[2])
	c, ok := controlRegistry[v]
	if !ok {
		return 0, 0, nil, ErrControlVersion
	}
	typ, payload, err := c.DecodeControl(buf)
	if err != nil {
		return 0, 0, nil, err
	}
	return v, typ, payload, nil
}

// WriteControl frames one ControlV1 message onto w.
func WriteControl(w io.Writer, typ uint8, payload []byte) error {
	buf, err := EncodeControl(ControlV1, typ, payload)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadControl reads exactly one control frame from r and returns its
// message type and payload. It reads the fixed header first, then the
// declared payload and CRC, so it composes with stream transports
// (TCP) without any out-of-band length prefix.
func ReadControl(r io.Reader) (uint8, []byte, error) {
	hdr := make([]byte, controlHdrLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	if hdr[0] != controlMagic0 || hdr[1] != controlMagic1 {
		return 0, nil, ErrControlMagic
	}
	if ControlVersion(hdr[2]) != ControlV1 {
		return 0, nil, ErrControlVersion
	}
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if n > MaxControlPayload {
		return 0, nil, ErrControlLength
	}
	rest := make([]byte, int(n)+controlCRCLen)
	if _, err := io.ReadFull(r, rest); err != nil {
		return 0, nil, err
	}
	buf := append(hdr, rest...)
	_, typ, payload, err := DecodeControl(buf)
	if err != nil {
		return 0, nil, err
	}
	return typ, payload, nil
}
