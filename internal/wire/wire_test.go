package wire

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
	"testing/quick"

	"repro/internal/enc8b10b"
	mp "repro/internal/micropacket"
)

// putCRC re-seals a hand-mutated frame body so a test can aim past the
// CRC check at a specific structural rule.
func putCRC(dst, body []byte) {
	binary.LittleEndian.PutUint32(dst, crc32.Checksum(body, castagnoli))
}

func codecs() []Codec { return []Codec{v1Codec{}, v2Codec{}} }

func TestVersionParse(t *testing.T) {
	cases := []struct {
		in   string
		want Version
		err  bool
	}{
		{"v1", V1, false}, {"1", V1, false}, {"V2", V2, false}, {"2", V2, false},
		{"", 0, false}, {"auto", 0, false}, {"v3", 0, true}, {"x", 0, true},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("Parse(%q) = %v, %v; want %v (err=%v)", c.in, got, err, c.want, c.err)
		}
	}
	if V1.MaxNodes() != 255 || V2.MaxNodes() != 65535 {
		t.Fatalf("MaxNodes: v1=%d v2=%d", V1.MaxNodes(), V2.MaxNodes())
	}
	if V1.String() != "v1" || V2.String() != "v2" || Version(0).String() != "auto" {
		t.Fatal("Version.String broken")
	}
	if len(Versions()) != 2 {
		t.Fatalf("Versions() = %v", Versions())
	}
	if _, err := ForVersion(0); err == nil {
		t.Fatal("ForVersion(auto) must fail")
	}
}

func TestFormatByteScheme(t *testing.T) {
	// v1 must keep the seed values bit for bit; v2 must carry its
	// version next to the fixed/variable marker nibble.
	cases := []struct {
		v        Version
		variable bool
		want     byte
	}{
		{V1, false, 0x0F}, {V1, true, 0xF0},
		{V2, false, 0x1F}, {V2, true, 0xF1},
	}
	for _, c := range cases {
		if got := formatByte(c.v, c.variable); got != c.want {
			t.Errorf("formatByte(%v, %v) = %#02x, want %#02x", c.v, c.variable, got, c.want)
		}
		v, variable, err := sniffFormat(c.want)
		if err != nil || v != c.v || variable != c.variable {
			t.Errorf("sniffFormat(%#02x) = %v, %v, %v", c.want, v, variable, err)
		}
	}
	for _, bad := range []byte{0x00, 0xFF, 0x12, 0x0E, 0xE0} {
		if _, _, err := sniffFormat(bad); err == nil {
			t.Errorf("sniffFormat(%#02x) accepted", bad)
		}
	}
}

func TestWireSizes(t *testing.T) {
	// v1 is the slide-5/6 framing: 24-byte fixed, 88-byte max variable.
	if v1FixedWire != 24 || v1MaxVarWire != 88 {
		t.Fatalf("v1 sizes: fixed=%d maxvar=%d", v1FixedWire, v1MaxVarWire)
	}
	// v2's control block grows by one 32-bit word.
	if v2FixedWire != 28 || v2MaxVarWire != 92 {
		t.Fatalf("v2 sizes: fixed=%d maxvar=%d", v2FixedWire, v2MaxVarWire)
	}
	for _, c := range codecs() {
		for _, ty := range []mp.Type{mp.TypeRostering, mp.TypeData, mp.TypeInterrupt, mp.TypeDiagnostic, mp.TypeD64Atomic} {
			if got, want := c.WireSize(ty, 0), Size(c.Version(), ty, 0); got != want {
				t.Errorf("%v WireSize(%v) = %d, want %d", c.Version(), ty, got, want)
			}
		}
		// Padding to word boundary.
		if a, b := c.WireSize(mp.TypeDMA, 1), c.WireSize(mp.TypeDMA, 4); a != b {
			t.Errorf("%v: WireSize(DMA,1)=%d != WireSize(DMA,4)=%d", c.Version(), a, b)
		}
		if a, b := c.WireSize(mp.TypeDMA, 0), c.WireSize(mp.TypeData, 0); a != b {
			t.Errorf("%v: empty DMA (%d) != fixed (%d)", c.Version(), a, b)
		}
	}
}

func TestEncodeDecodeFixedBothVersions(t *testing.T) {
	for _, c := range codecs() {
		p := mp.NewData(3, 7, 42, []byte{1, 2, 3, 4, 5, 6, 7, 8})
		p.Flags = mp.FlagAck | mp.FlagLast
		raw, err := c.Encode(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) != c.WireSize(mp.TypeData, 0) {
			t.Fatalf("%v: encoded %d bytes", c.Version(), len(raw))
		}
		q, err := c.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		if q.Type != mp.TypeData || q.Src != 3 || q.Dst != 7 || q.Tag != 42 || q.Flags != (mp.FlagAck|mp.FlagLast) || q.Payload != p.Payload {
			t.Fatalf("%v: round trip mismatch: %+v", c.Version(), q)
		}
		// The registry decode must agree and report the version.
		r, v, err := Decode(raw)
		if err != nil || v != c.Version() || r.Src != 3 {
			t.Fatalf("registry decode: %v %v %v", r, v, err)
		}
	}
}

func TestEncodeDecodeVariableAllLengths(t *testing.T) {
	for _, c := range codecs() {
		for n := 0; n <= mp.MaxPayload; n++ {
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(i * 7)
			}
			p := mp.NewDMA(1, 2, mp.DMAHeader{Channel: 5, Region: 9, Seq: 33, Offset: 0xDEADBEEF}, data)
			raw, err := c.Encode(p)
			if err != nil {
				t.Fatalf("%v n=%d: %v", c.Version(), n, err)
			}
			if len(raw) != c.WireSize(mp.TypeDMA, n) {
				t.Fatalf("%v n=%d: size %d, want %d", c.Version(), n, len(raw), c.WireSize(mp.TypeDMA, n))
			}
			q, err := c.Decode(raw)
			if err != nil {
				t.Fatalf("%v n=%d decode: %v", c.Version(), n, err)
			}
			if q.DMA != p.DMA || !bytes.Equal(q.Data, data) {
				t.Fatalf("%v n=%d payload mismatch", c.Version(), n)
			}
		}
	}
}

func TestBroadcastMapping(t *testing.T) {
	// In-memory Broadcast is 0xFFFF; it must map to each version's
	// all-ones wire address and back.
	for _, c := range codecs() {
		p := mp.NewData(1, mp.Broadcast, 0, nil)
		raw, err := c.Encode(p)
		if err != nil {
			t.Fatal(err)
		}
		q, err := c.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		if !q.IsBroadcast() {
			t.Fatalf("%v: broadcast lost in round trip (dst=%d)", c.Version(), q.Dst)
		}
	}
}

func TestV1RejectsWideAddresses(t *testing.T) {
	for _, p := range []*mp.Packet{
		mp.NewData(300, 1, 0, nil),
		mp.NewData(1, 300, 0, nil),
		mp.NewData(0xFF, 1, 0, nil), // 0xFF aliases the v1 broadcast byte
	} {
		if _, err := Encode(V1, p); err != ErrAddrRange {
			t.Fatalf("v1 Encode(src=%d dst=%d) err = %v, want ErrAddrRange", p.Src, p.Dst, err)
		}
		if _, err := Encode(V2, p); err != nil {
			t.Fatalf("v2 must carry wide addresses: %v", err)
		}
	}
}

func TestV2WideAddressRoundTrip(t *testing.T) {
	p := mp.NewData(1023, 65534, 7, []byte{1})
	raw, err := Encode(V2, p)
	if err != nil {
		t.Fatal(err)
	}
	q, v, err := Decode(raw)
	if err != nil || v != V2 {
		t.Fatal(err)
	}
	if q.Src != 1023 || q.Dst != 65534 {
		t.Fatalf("wide addresses aliased: %+v", q)
	}
}

func TestVersionsDoNotCrossDecode(t *testing.T) {
	p := mp.NewData(1, 2, 3, nil)
	for _, c := range codecs() {
		raw, err := c.Encode(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, other := range codecs() {
			if other.Version() == c.Version() {
				continue
			}
			if _, err := other.Decode(raw); err == nil {
				t.Fatalf("%v codec accepted a %v frame", other.Version(), c.Version())
			}
		}
	}
}

func TestCRCDetectsCorruption(t *testing.T) {
	for _, c := range codecs() {
		p := mp.NewDMA(1, 2, mp.DMAHeader{Channel: 1, Offset: 128}, []byte{10, 20, 30, 40, 50})
		raw, _ := c.Encode(p)
		// Flip every body byte one at a time; all must be caught.
		for i := 4; i < len(raw)-8; i++ {
			mut := make([]byte, len(raw))
			copy(mut, raw)
			mut[i] ^= 0x40
			if _, err := c.Decode(mut); err == nil {
				t.Fatalf("%v: corruption at byte %d undetected", c.Version(), i)
			}
		}
	}
}

func TestDecodeRejectsBadFraming(t *testing.T) {
	for _, c := range codecs() {
		p := mp.NewData(1, 2, 0, []byte{1})
		raw, _ := c.Encode(p)

		short := raw[:10]
		if _, err := c.Decode(short); err != ErrTruncated {
			t.Fatalf("%v short frame: %v", c.Version(), err)
		}

		badSOF := append([]byte{}, raw...)
		badSOF[0] = 0x00
		if _, err := c.Decode(badSOF); err != ErrBadSOF {
			t.Fatalf("%v bad SOF: %v", c.Version(), err)
		}

		badEOF := append([]byte{}, raw...)
		badEOF[len(badEOF)-1] ^= 0xFF
		if _, err := c.Decode(badEOF); err != ErrBadEOF {
			t.Fatalf("%v bad EOF: %v", c.Version(), err)
		}

		badFmt := append([]byte{}, raw...)
		badFmt[3] = formatByte(c.Version(), true) // claims variable, carries fixed body
		if _, err := c.Decode(badFmt); err == nil {
			t.Fatalf("%v: format mismatch accepted", c.Version())
		}
	}
}

func TestV2RejectsNonzeroReserved(t *testing.T) {
	p := mp.NewData(1, 2, 0, nil)
	raw, _ := Encode(V2, p)
	// Patch a reserved control byte and re-seal the CRC so only the
	// reserved-byte rule can reject it.
	raw[sofLen+6] = 1
	body := raw[sofLen : len(raw)-crcLen-eofLen]
	var crc [4]byte
	putCRC(crc[:], body)
	copy(raw[len(raw)-crcLen-eofLen:len(raw)-eofLen], crc[:])
	if _, _, err := Decode(raw); err != ErrReserved {
		t.Fatalf("nonzero reserved bytes accepted: %v", err)
	}
}

// TestRoundTripQuickProperty is the codec-agnostic round-trip
// property, run for every registered version.
func TestRoundTripQuickProperty(t *testing.T) {
	for _, c := range codecs() {
		c := c
		f := func(src, dst uint16, tag uint8, flags uint8, payload [8]byte, varData []byte, ch uint8, region uint8, off uint32) bool {
			s, d := mp.NodeID(src), mp.NodeID(dst)
			if c.Version() == V1 {
				// Confine addresses to the version's space; the
				// out-of-range rejection has its own test.
				s, d = s%255, d%255
			}
			fp := mp.Packet{Type: mp.TypeData, Flags: mp.Flags(flags & 0xF), Src: s, Dst: d, Tag: tag, Payload: payload}
			raw, err := c.Encode(&fp)
			if err != nil {
				return false
			}
			got, err := c.Decode(raw)
			if err != nil || got.Type != fp.Type || got.Flags != fp.Flags ||
				got.Src != fp.Src || got.Dst != fp.Dst || got.Tag != fp.Tag ||
				got.Payload != fp.Payload || len(got.Data) != 0 {
				return false
			}
			// Variable packet.
			if len(varData) > mp.MaxPayload {
				varData = varData[:mp.MaxPayload]
			}
			vp := mp.NewDMA(s, d, mp.DMAHeader{Channel: ch % 16, Region: region, Offset: off}, varData)
			raw, err = c.Encode(vp)
			if err != nil {
				return false
			}
			gv, err := c.Decode(raw)
			if err != nil {
				return false
			}
			return gv.DMA == vp.DMA && bytes.Equal(gv.Data, vp.Data) && gv.Src == s && gv.Dst == d
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%v: %v", c.Version(), err)
		}
	}
}

func TestSymbolRoundTripBothVersions(t *testing.T) {
	for _, c := range codecs() {
		enc := enc8b10b.NewEncoder()
		dec := enc8b10b.NewDecoder()
		wideDst := mp.NodeID(2)
		if c.Version() == V2 {
			wideDst = 999
		}
		pkts := []*mp.Packet{
			mp.NewData(1, wideDst, 3, []byte{0xFF, 0x00, 0xAA}),
			mp.NewDMA(2, mp.Broadcast, mp.DMAHeader{Channel: 7, Region: 1, Offset: 4096}, bytes.Repeat([]byte{0x5A}, 64)),
			mp.NewAtomic(3, 4, 200, mp.OpTestAndSet, 1),
			mp.NewInterrupt(5, 6, 13),
			mp.NewDiagnostic(7, 8, 0xEE),
			mp.NewRostering(9, 1, [8]byte{1, 2, 3, 4, 5, 6, 7, 8}),
		}
		for _, p := range pkts {
			syms, err := EncodeSymbols(c, p, enc)
			if err != nil {
				t.Fatalf("%v %v: %v", c.Version(), p, err)
			}
			q, v, err := DecodeSymbols(syms, dec)
			if err != nil || v != c.Version() {
				t.Fatalf("%v %v: decode: %v (v=%v)", c.Version(), p, err, v)
			}
			if q.Type != p.Type || q.Src != p.Src || q.Dst != p.Dst || q.Tag != p.Tag {
				t.Fatalf("%v: symbol round trip header mismatch: %v → %v", c.Version(), p, q)
			}
			if !bytes.Equal(q.Data, p.Data) || q.Payload != p.Payload {
				t.Fatalf("%v: symbol round trip payload mismatch for %v", c.Version(), p)
			}
		}
		if dec.Violations != 0 {
			t.Fatalf("%v: %d 8b/10b violations on clean stream", c.Version(), dec.Violations)
		}
	}
}

func TestSymbolStreamStartsWithComma(t *testing.T) {
	for _, c := range codecs() {
		syms, err := EncodeSymbols(c, mp.NewData(1, 2, 0, nil), enc8b10b.NewEncoder())
		if err != nil {
			t.Fatal(err)
		}
		if !enc8b10b.IsComma(syms[0]) {
			t.Fatalf("%v: frame does not open with a comma symbol (alignment would fail)", c.Version())
		}
	}
}
