package wire

import (
	"encoding/binary"

	"repro/internal/micropacket"
)

// v2 widens node addresses to uint16: the control word grows to a full
// 8-byte block (two 32-bit words, keeping the word-oriented formats of
// slides 5–6) with little-endian src/dst pairs and two reserved zero
// bytes:
//
//	ctrl[0]   type<<4 | flags
//	ctrl[1]   tag
//	ctrl[2:4] src, little endian (0xFFFF broadcast)
//	ctrl[4:6] dst, little endian
//	ctrl[6:8] reserved, must be zero
//
// Everything after the control block — fixed payload, DMA control
// words, variable payload padding, CRC, delimiters — is identical to
// v1, so a v2 deframer is the v1 deframer with a wider first block.

// v2 wire sizes.
const (
	v2CtrlLen    = 8
	v2FixedWire  = sofLen + v2CtrlLen + micropacket.FixedPayload + crcLen + eofLen        // 28 bytes
	v2MinVarWire = sofLen + v2CtrlLen + dmaLen + crcLen + eofLen                          // DMA with 0 payload
	v2MaxVarWire = sofLen + v2CtrlLen + dmaLen + micropacket.MaxPayload + crcLen + eofLen // 92 bytes
)

type v2Codec struct{}

func (v2Codec) Version() Version { return V2 }

func (v2Codec) WireSize(t micropacket.Type, payloadLen int) int {
	return Size(V2, t, payloadLen)
}

func (v2Codec) Encode(p *micropacket.Packet) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var ctrl [v2CtrlLen]byte
	ctrl[0] = byte(p.Type)<<4 | byte(p.Flags&0xF)
	ctrl[1] = p.Tag
	binary.LittleEndian.PutUint16(ctrl[2:4], uint16(p.Src))
	binary.LittleEndian.PutUint16(ctrl[4:6], uint16(p.Dst))
	return encodeFrame(V2, p, ctrl[:], Size(V2, p.Type, len(p.Data)))
}

func (v2Codec) Decode(buf []byte) (*micropacket.Packet, error) {
	body, variable, err := openFrame(V2, buf, v2FixedWire)
	if err != nil {
		return nil, err
	}
	if len(body) < v2CtrlLen {
		return nil, ErrTruncated
	}
	if body[6] != 0 || body[7] != 0 {
		return nil, ErrReserved
	}
	p := &micropacket.Packet{
		Type:  micropacket.Type(body[0] >> 4),
		Flags: micropacket.Flags(body[0] & 0xF),
		Tag:   body[1],
		Src:   micropacket.NodeID(binary.LittleEndian.Uint16(body[2:4])),
		Dst:   micropacket.NodeID(binary.LittleEndian.Uint16(body[4:6])),
	}
	if !p.Type.Valid() {
		return nil, micropacket.ErrBadType
	}
	if err := decodePayload(p, body[v2CtrlLen:], variable); err != nil {
		return nil, err
	}
	return p, nil
}
