package wire

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// controlGoldens pins the ControlV1 envelope layout byte-for-byte.
// These vectors are the control-plane analogue of the packet codec's
// testdata hex files: if any of them changes, the shard-worker
// handshake of every deployed cmd/ampshard breaks, so a change here
// must come with a new ControlVersion, not an edit.
var controlGoldens = []struct {
	name    string
	typ     uint8
	payload []byte
	hex     string
}{
	{"empty", 0x01, nil, "a9530101000000003f780b80"},
	{"short", 0x02, []byte{0xDE, 0xAD, 0xBE, 0xEF}, "a953010204000000deadbeef8befbc5d"},
	{"text", 0x7F, []byte("ampshard"), "a953017f08000000616d70736861726447eac5b9"},
}

func TestControlGoldenVectors(t *testing.T) {
	for _, g := range controlGoldens {
		t.Run(g.name, func(t *testing.T) {
			enc, err := EncodeControl(ControlV1, g.typ, g.payload)
			if err != nil {
				t.Fatal(err)
			}
			if got := hex.EncodeToString(enc); got != g.hex {
				t.Fatalf("encode = %s, want %s", got, g.hex)
			}
			want, err := hex.DecodeString(g.hex)
			if err != nil {
				t.Fatal(err)
			}
			v, typ, payload, err := DecodeControl(want)
			if err != nil {
				t.Fatal(err)
			}
			if v != ControlV1 || typ != g.typ || !bytes.Equal(payload, g.payload) {
				t.Fatalf("decode = (%v, %#02x, %x), want (%v, %#02x, %x)",
					v, typ, payload, ControlV1, g.typ, g.payload)
			}
		})
	}
}

func TestControlDecodeErrors(t *testing.T) {
	good, _ := EncodeControl(ControlV1, 0x02, []byte{1, 2, 3, 4})
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrControlTruncated},
		{"short header", good[:6], ErrControlTruncated},
		{"bad magic", append([]byte{0x00}, good[1:]...), ErrControlMagic},
		{"unknown version", func() []byte {
			b := append([]byte(nil), good...)
			b[2] = 0x7E
			return b
		}(), ErrControlVersion},
		{"truncated payload", good[:len(good)-2], ErrControlTruncated},
		{"trailing byte", append(append([]byte(nil), good...), 0x00), ErrControlTrailing},
		{"flipped payload bit", func() []byte {
			b := append([]byte(nil), good...)
			b[9] ^= 0x40
			return b
		}(), ErrControlCRC},
		{"oversize length", func() []byte {
			b := append([]byte(nil), good...)
			b[7] = 0xFF // length 0xFF00000N > MaxControlPayload
			return b
		}(), ErrControlLength},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, payload, err := DecodeControl(tc.buf)
			if err != tc.want {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			if payload != nil {
				t.Fatalf("payload = %x on error", payload)
			}
		})
	}
}

// TestControlRoundTrip is the property-test twin of the fuzzer: any
// (type, payload) pair survives encode → decode unchanged, and the
// stream reader agrees with the buffer decoder.
func TestControlRoundTrip(t *testing.T) {
	prop := func(typ uint8, payload []byte) bool {
		enc, err := EncodeControl(ControlV1, typ, payload)
		if err != nil {
			return false
		}
		v, gotTyp, gotPayload, err := DecodeControl(enc)
		if err != nil || v != ControlV1 || gotTyp != typ || !bytes.Equal(gotPayload, payload) {
			return false
		}
		rdTyp, rdPayload, err := ReadControl(bytes.NewReader(enc))
		return err == nil && rdTyp == typ && bytes.Equal(rdPayload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestControlDecodeArbitraryBytesNeverPanics mirrors the packet
// codec's guarantee for the control envelope.
func TestControlDecodeArbitraryBytesNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _, payload, err := DecodeControl(data)
		return err == nil || payload == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// FuzzControlDecode holds the canonical re-encode invariant: every
// buffer DecodeControl accepts must be exactly the bytes EncodeControl
// produces for the decoded triple — no non-canonical frame (slack
// length, trailing garbage, alternative CRC) may pass.
func FuzzControlDecode(f *testing.F) {
	for _, g := range controlGoldens {
		b, _ := hex.DecodeString(g.hex)
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{controlMagic0, controlMagic1, 0x01, 0x00})
	f.Add([]byte{controlMagic0, controlMagic1, 0x02, 0x00, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, typ, payload, err := DecodeControl(data)
		if err != nil {
			if payload != nil {
				t.Fatalf("payload %x returned alongside error %v", payload, err)
			}
			return
		}
		enc, err := EncodeControl(v, typ, payload)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("non-canonical control frame accepted:\n in  %x\n out %x", data, enc)
		}
	})
}
