// Package wire is AmpNet's versioned MicroPacket wire-format
// subsystem: a codec registry that owns the frame layout per format
// version. Frame layout used to live inside internal/micropacket with
// a single hard-coded format; versioning it is what lets the fabric
// scale past the one-byte address ceiling without silently changing a
// single bit of the historical encoding.
//
//	v1 — the seed format: one-byte node addresses (255 nodes max,
//	     0xFF broadcast). Byte-exact with the original encoder; the
//	     checked-in golden vectors pin every frame type.
//	v2 — uint16 little-endian node addresses (65535 nodes max,
//	     0xFFFF broadcast) in a widened 8-byte control block.
//
// The version travels in the SOF ordered set's format byte, next to
// the fixed/variable bit the original format already carried there
// (see the format-byte scheme below), so a receiver can dispatch a
// frame to the right codec from the first word — exactly how the
// hardware would key its deframer.
//
// Shared framing (both versions; reconstructed from slides 5–6 plus
// the FC-0/FC-1 substrate of slide 3):
//
//	SOF ordered set   4 bytes   K28.5 D21.5 D22.1 <format byte>
//	control block     4 (v1) or 8 (v2) bytes
//	[payload]         8 bytes fixed / DMA header + 0..64 padded
//	CRC-32            4 bytes   over the body (Castagnoli)
//	EOF ordered set   4 bytes   K28.5 D21.4 D21.3 D21.3
package wire

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/micropacket"
)

// Version identifies a wire-format version.
type Version uint8

// The registered wire-format versions. The zero Version means "auto":
// topology/options layers resolve it to the smallest version whose
// address space fits the fabric (see phys.Topology.WireVersion).
const (
	V1 Version = 1 // one-byte addresses; byte-exact seed format
	V2 Version = 2 // uint16 little-endian addresses
)

// Valid reports whether v names a registered format version.
func (v Version) Valid() bool {
	_, ok := registry[v]
	return ok
}

// String renders "v1" / "v2" ("auto" for the zero value).
func (v Version) String() string {
	if v == 0 {
		return "auto"
	}
	return fmt.Sprintf("v%d", uint8(v))
}

// MaxNodes returns the version's addressable node-count ceiling: node
// ids 0..MaxNodes-1, with the all-ones address reserved for broadcast.
func (v Version) MaxNodes() int {
	switch v {
	case V1:
		return 255
	case V2:
		return 65535
	default:
		return 0
	}
}

// Parse resolves a version name: "v1"/"1", "v2"/"2", or ""/"auto" for
// the unresolved zero Version.
func Parse(s string) (Version, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return 0, nil
	case "v1", "1":
		return V1, nil
	case "v2", "2":
		return V2, nil
	default:
		return 0, fmt.Errorf("wire: unknown wire-format version %q (want v1, v2 or auto)", s)
	}
}

// Codec encodes and decodes MicroPackets for one format version.
type Codec interface {
	// Version names the format the codec implements.
	Version() Version
	// WireSize returns the encoded frame size for a packet of type t
	// carrying payloadLen variable bytes (ignored for fixed types).
	WireSize(t micropacket.Type, payloadLen int) int
	// Encode serializes the packet. It fails if a node address does
	// not fit the version's address space.
	Encode(p *micropacket.Packet) ([]byte, error)
	// Decode parses a frame of this codec's version.
	Decode(buf []byte) (*micropacket.Packet, error)
}

// registry maps versions to codecs. It is written only at init time,
// so lookups are safe from every shard goroutine.
var registry = map[Version]Codec{
	V1: v1Codec{},
	V2: v2Codec{},
}

// ForVersion returns the codec for v, or an error for unregistered
// versions (including the unresolved zero Version).
func ForVersion(v Version) (Codec, error) {
	c, ok := registry[v]
	if !ok {
		return nil, fmt.Errorf("wire: no codec registered for wire-format version %d", uint8(v))
	}
	return c, nil
}

// MustForVersion is ForVersion for callers that already validated v.
func MustForVersion(v Version) Codec {
	c, err := ForVersion(v)
	if err != nil {
		panic(err)
	}
	return c
}

// Versions lists the registered versions in ascending order.
func Versions() []Version {
	out := make([]Version, 0, len(registry))
	for v := V1; int(v) <= len(registry); v++ {
		if _, ok := registry[v]; ok {
			out = append(out, v)
		}
	}
	return out
}

// Size returns the encoded frame size of a packet of type t with
// payloadLen variable bytes under version v. It is the hot-path form
// of Codec.WireSize (phys computes it per transmitted frame).
func Size(v Version, t micropacket.Type, payloadLen int) int {
	if !t.Variable() {
		if v == V2 {
			return v2FixedWire
		}
		return v1FixedWire
	}
	if v == V2 {
		return v2MinVarWire + pad4(payloadLen)
	}
	return v1MinVarWire + pad4(payloadLen)
}

// Encode serializes p under version v.
func Encode(v Version, p *micropacket.Packet) ([]byte, error) {
	c, err := ForVersion(v)
	if err != nil {
		return nil, err
	}
	return c.Encode(p)
}

// Decode parses a frame of any registered version, dispatching on the
// SOF format byte. It returns the packet and the version it arrived
// under.
func Decode(buf []byte) (*micropacket.Packet, Version, error) {
	if len(buf) < sofLen {
		return nil, 0, ErrTruncated
	}
	v, _, err := sniffFormat(buf[3])
	if err != nil {
		return nil, 0, err
	}
	c, err := ForVersion(v)
	if err != nil {
		return nil, 0, ErrBadSOF
	}
	p, err := c.Decode(buf)
	return p, v, err
}

// Errors shared by the codecs.
var (
	ErrTruncated = errors.New("wire: truncated frame")
	ErrBadSOF    = errors.New("wire: bad SOF ordered set")
	ErrBadEOF    = errors.New("wire: bad EOF ordered set")
	ErrBadCRC    = errors.New("wire: CRC mismatch")
	ErrBadFormat = errors.New("wire: format byte does not match type")
	ErrReserved  = errors.New("wire: reserved control bytes not zero")
	// ErrAddrRange reports a node address too wide for the requested
	// format version (v1 carries one address byte).
	ErrAddrRange = errors.New("wire: node address does not fit format version (use wire v2 for >255 nodes)")
)
