package benchparse

import (
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkE1MicroPacketCodec-8      	12345678	        95.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkE1MicroPacketCodec-8      	12345678	       120.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkE3MultiStream-8           	     120	   9876543 ns/op	        14.50 tours
BenchmarkE7Redundancy              	     100	  11111111 ns/op
some unrelated line
--- BENCH: BenchmarkIgnored
PASS
ok  	repro	12.345s
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkE1MicroPacketCodec": 95.2, // min of the two -count runs
		"BenchmarkE3MultiStream":      9876543,
		"BenchmarkE7Redundancy":       11111111, // no -N suffix is fine
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d results, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name].NsPerOp != ns {
			t.Errorf("%s = %v ns/op, want %v", name, got[name].NsPerOp, ns)
		}
	}
}

func TestCompare(t *testing.T) {
	base := map[string]Result{
		"A": {NsPerOp: 100},
		"B": {NsPerOp: 100},
		"C": {NsPerOp: 100},
		"D": {NsPerOp: 100},
	}
	run := map[string]Result{
		"A":  {NsPerOp: 124}, // within 25%
		"B":  {NsPerOp: 126}, // regressed
		"C":  {NsPerOp: 50},  // improvement: never fails
		"E1": {NsPerOp: 999}, // unguarded: ignored
	}
	v := Compare(base, run, 0.25)
	if len(v) != 4 {
		t.Fatalf("got %d verdicts, want 4", len(v))
	}
	if v["A"].Regressed {
		t.Error("A within tolerance flagged as regression")
	}
	if !v["B"].Regressed {
		t.Error("B regression not flagged")
	}
	if v["C"].Regressed {
		t.Error("C improvement flagged")
	}
	if !v["D"].Regressed || !v["D"].Missing {
		t.Error("D missing from run must fail the guard")
	}
	if !strings.Contains(v["B"].String(), "FAIL") || !strings.Contains(v["A"].String(), "ok") {
		t.Errorf("verdict rendering wrong: %q / %q", v["B"].String(), v["A"].String())
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	b := &Baseline{Note: "test", Tolerance: 0.3, Benchmarks: map[string]Result{"X": {NsPerOp: 42}}}
	if err := b.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tolerance != 0.3 || got.Benchmarks["X"].NsPerOp != 42 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := ReadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing baseline must error")
	}
}
