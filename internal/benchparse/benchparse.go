// Package benchparse parses standard `go test -bench` output and
// compares it against a committed ns/op baseline — the library behind
// cmd/benchguard. It lives in its own package so the parser and the
// comparison policy are unit-testable without timing anything.
package benchparse

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	NsPerOp float64 `json:"ns_per_op"`
}

// Baseline is the committed guard file (BENCH_baseline.json).
type Baseline struct {
	Note string `json:"note,omitempty"`
	// Tolerance, when non-zero, overrides the guard's default allowed
	// fractional regression.
	Tolerance  float64           `json:"tolerance,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Parse extracts benchmark results from `go test -bench` output. Names
// are normalized by stripping the trailing -GOMAXPROCS suffix, so
// baselines compare across machines with different core counts. With
// -count > 1 a benchmark appears once per run; the minimum ns/op is
// kept — the least-noisy estimate of the true cost, which keeps the
// regression guard from tripping on scheduler jitter.
func Parse(r io.Reader) (map[string]Result, error) {
	out := map[string]Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// "BenchmarkName-8  1234  567.8 ns/op  ..."
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("benchparse: bad ns/op for %s: %q", name, fields[i])
				}
				if prev, ok := out[name]; !ok || v < prev.NsPerOp {
					out[name] = Result{NsPerOp: v}
				}
				break
			}
		}
	}
	return out, sc.Err()
}

// ReadBaseline loads a baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base Baseline
	if err := json.Unmarshal(b, &base); err != nil {
		return nil, fmt.Errorf("benchparse: %s: %v", path, err)
	}
	if len(base.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchparse: %s has no benchmarks", path)
	}
	return &base, nil
}

// Write stores the baseline as stable, indented JSON.
func (b *Baseline) Write(path string) error {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// Verdict is the comparison outcome for one guarded benchmark.
type Verdict struct {
	Name      string
	Base      float64
	Current   float64 // 0 when missing from the run
	Missing   bool
	Regressed bool
}

// Ratio returns current/base.
func (v Verdict) Ratio() float64 {
	if v.Base == 0 {
		return 0
	}
	return v.Current / v.Base
}

// String renders a one-line report.
func (v Verdict) String() string {
	switch {
	case v.Missing:
		return fmt.Sprintf("FAIL  %-40s missing from this run (baseline %.1f ns/op)", v.Name, v.Base)
	case v.Regressed:
		return fmt.Sprintf("FAIL  %-40s %.1f -> %.1f ns/op (%+.1f%%)", v.Name, v.Base, v.Current, (v.Ratio()-1)*100)
	default:
		return fmt.Sprintf("ok    %-40s %.1f -> %.1f ns/op (%+.1f%%)", v.Name, v.Base, v.Current, (v.Ratio()-1)*100)
	}
}

// Compare checks every baseline entry against the run. Benchmarks in
// the run but not in the baseline are unguarded and ignored; baseline
// entries missing from the run fail.
func Compare(base, run map[string]Result, tolerance float64) map[string]Verdict {
	out := make(map[string]Verdict, len(base))
	//ampvet:allow detmap map-to-map projection; callers sort the verdict keys
	for name, b := range base {
		v := Verdict{Name: name, Base: b.NsPerOp}
		cur, ok := run[name]
		if !ok {
			v.Missing, v.Regressed = true, true
		} else {
			v.Current = cur.NsPerOp
			v.Regressed = cur.NsPerOp > b.NsPerOp*(1+tolerance)
		}
		out[name] = v
	}
	return out
}
