// Package dma implements AmpNet's DMA channel engine (paper, slides 3,
// 7, 11): sixteen fine-grain multiplexed DMA channels per node that
// move bytes between registered memory regions across the network using
// variable-format DMA MicroPackets.
//
// "Fine grain multiplexed" means the engine interleaves the sixteen
// channels packet-by-packet (round robin) rather than letting one large
// transfer monopolize the ring — that is how slide 7's node inserts a
// file stream and a message stream onto the segment simultaneously.
//
// Each channel is an ordered byte stream: packets carry a per-channel
// sequence number, and receivers track expected sequence per (source,
// channel) so that losses (ring transitions) are detected as gaps and
// surfaced to the recovery machinery (cache refresh, slide 18).
package dma

import (
	"repro/internal/insertion"
	"repro/internal/micropacket"
	"repro/internal/sim"
)

// NumChannels is fixed by the hardware (slide 11).
const NumChannels = micropacket.MaxChannels

// WriteHandler receives the payload of an arriving DMA packet.
type WriteHandler func(src micropacket.NodeID, hdr micropacket.DMAHeader, data []byte, last bool)

// request is one queued segment send.
type request struct {
	dst  micropacket.NodeID
	hdr  micropacket.DMAHeader
	data []byte
	last bool
	done func()
}

// Engine is one node's DMA controller.
type Engine struct {
	ID micropacket.NodeID
	K  *sim.Kernel
	St *insertion.Station

	// OnWrite is invoked for every arriving DMA payload.
	OnWrite WriteHandler

	// queues[c] holds pending segments for channel c.
	queues [NumChannels][]request
	// rrNext is the round-robin cursor over channels.
	rrNext int
	// pumping marks an armed retry timer.
	pumping bool
	// Window bounds how many segments the engine keeps in the MAC's
	// insertion queue at once. Keeping it shallow is what makes the
	// multiplexing fine-grained: segments wait in their per-channel
	// queues, where round-robin applies, instead of lining up FIFO in
	// the MAC.
	Window int

	// txSeq[c] is the next sequence number for channel c.
	txSeq [NumChannels]uint8
	// rxSeq[src][c] tracks the expected next sequence from src on c.
	rxSeq map[micropacket.NodeID]*[NumChannels]uint8

	// Sent and Recv count DMA packets; Gaps counts sequence gaps
	// observed on receive (losses to be repaired by refresh).
	Sent uint64
	Recv uint64
	Gaps uint64
	// QueueHighWater tracks the deepest any channel queue has been.
	QueueHighWater int
}

// NewEngine creates a DMA engine bound to a station. The caller (the
// node kernel) routes arriving TypeDMA packets to HandleDMA.
// DefaultWindow is the default in-flight segment window.
const DefaultWindow = 4

func NewEngine(k *sim.Kernel, st *insertion.Station) *Engine {
	return &Engine{ID: st.ID, K: k, St: st, Window: DefaultWindow,
		rxSeq: map[micropacket.NodeID]*[NumChannels]uint8{}}
}

// MaxSegment is the largest payload per DMA MicroPacket.
const MaxSegment = micropacket.MaxPayload

// pumpInterval is the retry pace when the station applies backpressure.
const pumpInterval = 2 * sim.Microsecond

// Write queues a transfer of data to (region, offset) at dst (or
// Broadcast) on the given channel, segmenting into ≤64-byte
// MicroPackets. done, if non-nil, runs after the final segment has been
// accepted by the MAC. Returns the number of segments queued.
func (e *Engine) Write(ch int, dst micropacket.NodeID, region uint8, off uint32, data []byte, done func()) int {
	if ch < 0 || ch >= NumChannels {
		panic("dma: channel out of range")
	}
	n := 0
	for i := 0; ; i += MaxSegment {
		endI := i + MaxSegment
		if endI > len(data) {
			endI = len(data)
		}
		seg := make([]byte, endI-i)
		copy(seg, data[i:endI])
		last := endI == len(data)
		req := request{
			dst: dst,
			hdr: micropacket.DMAHeader{
				Channel: uint8(ch), Region: region, Offset: off + uint32(i),
			},
			data: seg,
			last: last,
		}
		if last {
			req.done = done
		}
		e.queues[ch] = append(e.queues[ch], req)
		n++
		if len(e.queues[ch]) > e.QueueHighWater {
			e.QueueHighWater = len(e.queues[ch])
		}
		if last {
			break
		}
	}
	e.pump()
	return n
}

// Pending returns the total queued segments across channels.
func (e *Engine) Pending() int {
	n := 0
	for c := range e.queues {
		n += len(e.queues[c])
	}
	return n
}

// pump drains channel queues round-robin into the station until the
// MAC pushes back, then re-arms itself.
func (e *Engine) pump() {
	for {
		ch := e.nextNonEmpty()
		if ch < 0 {
			return // all drained
		}
		full := e.St.QueueLen() >= e.Window
		req := e.queues[ch][0]
		pkt := micropacket.NewDMA(e.ID, req.dst, req.hdr, req.data)
		pkt.DMA.Seq = e.txSeq[ch]
		if req.last {
			pkt.Flags |= micropacket.FlagLast
		}
		if full || !e.St.Send(pkt) {
			// Backpressure: retry shortly. The segment stays queued, so
			// nothing is lost and per-channel order is preserved.
			if !e.pumping {
				e.pumping = true
				e.K.After(pumpInterval, func() {
					e.pumping = false
					e.pump()
				})
			}
			return
		}
		e.txSeq[ch]++
		e.Sent++
		e.queues[ch] = e.queues[ch][1:]
		e.rrNext = (ch + 1) % NumChannels
		if req.done != nil {
			req.done()
		}
	}
}

// nextNonEmpty returns the next channel with queued work, starting the
// round-robin scan at rrNext; -1 if all empty.
func (e *Engine) nextNonEmpty() int {
	for i := 0; i < NumChannels; i++ {
		c := (e.rrNext + i) % NumChannels
		if len(e.queues[c]) > 0 {
			return c
		}
	}
	return -1
}

// CacheTransport adapts one DMA channel into a netcache.Transport:
// cache updates broadcast to every replica in channel order. The
// engine's queue absorbs bursts, so Broadcast never refuses.
type CacheTransport struct {
	E  *Engine
	Ch int
}

// Broadcast implements netcache.Transport.
func (t CacheTransport) Broadcast(region uint8, off uint32, data []byte) bool {
	t.E.Write(t.Ch, micropacket.Broadcast, region, off, data, nil)
	return true
}

// HandleDMA processes an arriving DMA MicroPacket (called by the node's
// delivery demux).
func (e *Engine) HandleDMA(p *micropacket.Packet) {
	e.Recv++
	seqs, ok := e.rxSeq[p.Src]
	if !ok {
		seqs = new([NumChannels]uint8)
		// Adopt the stream at whatever sequence it is on: a node that
		// just assimilated starts mid-stream by design (the refresh
		// fills in what it missed).
		seqs[p.DMA.Channel] = p.DMA.Seq
		e.rxSeq[p.Src] = seqs
	}
	if seqs[p.DMA.Channel] != p.DMA.Seq {
		e.Gaps++
		seqs[p.DMA.Channel] = p.DMA.Seq // resynchronize
	}
	seqs[p.DMA.Channel]++
	if e.OnWrite != nil {
		e.OnWrite(p.Src, p.DMA, p.Data, p.Flags&micropacket.FlagLast != 0)
	}
}
