package dma

import (
	"bytes"
	"testing"

	"repro/internal/insertion"
	"repro/internal/micropacket"
	"repro/internal/netcache"
	"repro/internal/phys"
	"repro/internal/sim"
)

// rig is n nodes on a single-switch ring, each with a station and DMA
// engine wired into the delivery path.
type rig struct {
	k       *sim.Kernel
	net     *phys.Net
	engines []*Engine
}

func newRig(n int) *rig {
	k := sim.NewKernel(1)
	net := phys.NewNet(k)
	c := phys.BuildCluster(net, n, 1, 50)
	r := &rig{k: k, net: net}
	for i := 0; i < n; i++ {
		st := insertion.NewStation(k, micropacket.NodeID(i), c.NodePorts[i])
		e := NewEngine(k, st)
		st.OnDeliver = func(p *micropacket.Packet) {
			if p.Type == micropacket.TypeDMA {
				e.HandleDMA(p)
			}
		}
		r.engines = append(r.engines, e)
	}
	for i := 0; i < n; i++ {
		c.Switches[0].SetRoute(i, (i+1)%n)
		r.engines[i].St.SetEgress(0)
	}
	return r
}

// sink collects written bytes into a flat buffer per engine.
type sink struct {
	buf   []byte
	lasts int
	pkts  int
}

func attachSink(e *Engine, size int) *sink {
	s := &sink{buf: make([]byte, size)}
	e.OnWrite = func(src micropacket.NodeID, hdr micropacket.DMAHeader, data []byte, last bool) {
		copy(s.buf[hdr.Offset:], data)
		s.pkts++
		if last {
			s.lasts++
		}
	}
	return s
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + 7)
	}
	return b
}

func TestSingleSegmentTransfer(t *testing.T) {
	r := newRig(3)
	dst := attachSink(r.engines[1], 256)
	data := pattern(40)
	segs := r.engines[0].Write(2, 1, 5, 16, data, nil)
	if segs != 1 {
		t.Fatalf("segments = %d, want 1", segs)
	}
	r.k.Run()
	if !bytes.Equal(dst.buf[16:56], data) {
		t.Fatal("payload mismatch")
	}
	if dst.lasts != 1 {
		t.Fatalf("lasts = %d", dst.lasts)
	}
}

func TestMultiSegmentTransferOrderAndDone(t *testing.T) {
	r := newRig(2)
	dst := attachSink(r.engines[1], 4096)
	data := pattern(1000) // 16 segments
	doneAt := sim.Time(-1)
	segs := r.engines[0].Write(0, 1, 1, 0, data, func() { doneAt = r.k.Now() })
	if segs != 16 {
		t.Fatalf("segments = %d, want 16", segs)
	}
	r.k.Run()
	if !bytes.Equal(dst.buf[:1000], data) {
		t.Fatal("reassembled data mismatch")
	}
	if dst.pkts != 16 || dst.lasts != 1 {
		t.Fatalf("pkts=%d lasts=%d", dst.pkts, dst.lasts)
	}
	if doneAt < 0 {
		t.Fatal("done callback never ran")
	}
	if r.engines[1].Gaps != 0 {
		t.Fatalf("gaps = %d on clean transfer", r.engines[1].Gaps)
	}
}

func TestEmptyTransfer(t *testing.T) {
	r := newRig(2)
	dst := attachSink(r.engines[1], 16)
	done := false
	segs := r.engines[0].Write(3, 1, 0, 0, nil, func() { done = true })
	if segs != 1 {
		t.Fatalf("segments = %d, want 1 (empty marker)", segs)
	}
	r.k.Run()
	if !done || dst.lasts != 1 {
		t.Fatal("empty transfer did not complete")
	}
}

// TestFineGrainMultiplexing is slide 7: a big "file" transfer and small
// "message" writes share the wire; messages are not stuck behind the
// file because channels interleave round-robin.
func TestFineGrainMultiplexing(t *testing.T) {
	r := newRig(2)
	var arrivals []uint8 // channel of each arriving packet, in order
	r.engines[1].OnWrite = func(src micropacket.NodeID, hdr micropacket.DMAHeader, data []byte, last bool) {
		arrivals = append(arrivals, hdr.Channel)
	}
	// Queue the file first (channel 0, 50 segments), then the message
	// (channel 1, 1 segment).
	r.engines[0].Write(0, 1, 1, 0, pattern(50*64), nil)
	r.engines[0].Write(1, 1, 1, 8192, pattern(32), nil)
	r.k.Run()
	// The message must arrive near the front, not after the file.
	pos := -1
	for i, ch := range arrivals {
		if ch == 1 {
			pos = i
			break
		}
	}
	if pos < 0 {
		t.Fatal("message never arrived")
	}
	// At most Window segments of the file were already committed to the
	// MAC when the message was queued; beyond that would mean FIFO
	// starvation rather than round-robin multiplexing.
	if pos > DefaultWindow+4 {
		t.Fatalf("message arrived at position %d — starved behind the file", pos)
	}
}

func TestBroadcastWriteReachesAll(t *testing.T) {
	r := newRig(4)
	var sinks []*sink
	for i := 1; i < 4; i++ {
		sinks = append(sinks, attachSink(r.engines[i], 128))
	}
	data := pattern(64)
	r.engines[0].Write(0, micropacket.Broadcast, 2, 0, data, nil)
	r.k.Run()
	for i, s := range sinks {
		if !bytes.Equal(s.buf[:64], data) {
			t.Fatalf("replica %d missed broadcast", i+1)
		}
	}
}

func TestSequenceGapDetection(t *testing.T) {
	r := newRig(2)
	e := r.engines[1]
	mk := func(seq uint8) *micropacket.Packet {
		p := micropacket.NewDMA(0, 1, micropacket.DMAHeader{Channel: 3}, []byte{1})
		p.DMA.Seq = seq
		return p
	}
	e.HandleDMA(mk(0))
	e.HandleDMA(mk(1))
	e.HandleDMA(mk(3)) // gap: 2 missing
	if e.Gaps != 1 {
		t.Fatalf("gaps = %d, want 1", e.Gaps)
	}
	e.HandleDMA(mk(4)) // resynchronized
	if e.Gaps != 1 {
		t.Fatalf("gaps after resync = %d, want 1", e.Gaps)
	}
}

func TestMidStreamAdoptionNoGap(t *testing.T) {
	r := newRig(2)
	e := r.engines[1]
	p := micropacket.NewDMA(0, 1, micropacket.DMAHeader{Channel: 0}, []byte{1})
	p.DMA.Seq = 77 // new source starting mid-stream
	e.HandleDMA(p)
	if e.Gaps != 0 {
		t.Fatalf("gaps = %d on first contact", e.Gaps)
	}
}

func TestChannelRangePanics(t *testing.T) {
	r := newRig(2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for channel 16")
		}
	}()
	r.engines[0].Write(16, 1, 0, 0, nil, nil)
}

func TestBackpressureRetries(t *testing.T) {
	r := newRig(2)
	r.engines[0].St.MaxInsertQueue = 2 // tiny MAC queue forces pushback
	dst := attachSink(r.engines[1], 64*1024)
	data := pattern(300 * 64)
	r.engines[0].Write(0, 1, 1, 0, data, nil)
	r.k.Run()
	if !bytes.Equal(dst.buf[:len(data)], data) {
		t.Fatal("data lost under backpressure")
	}
	if r.net.Drops.N != 0 {
		t.Fatalf("wire drops = %d", r.net.Drops.N)
	}
	if r.engines[1].Gaps != 0 {
		t.Fatalf("gaps = %d", r.engines[1].Gaps)
	}
}

func TestCacheTransportReplication(t *testing.T) {
	r := newRig(3)
	// Node 0 writes; nodes 1 and 2 hold replicas.
	caches := make([]*netcache.Cache, 3)
	for i := range caches {
		caches[i] = netcache.New()
		caches[i].AddRegion(1, 512)
	}
	for i := 1; i < 3; i++ {
		c := caches[i]
		r.engines[i].OnWrite = func(src micropacket.NodeID, hdr micropacket.DMAHeader, data []byte, last bool) {
			c.Apply(hdr.Region, hdr.Offset, data)
		}
	}
	w := netcache.NewWriter(caches[0], CacheTransport{E: r.engines[0], Ch: 1})
	rec := netcache.Record{Region: 1, Off: 32, Size: 100} // spans 2 segments
	val := pattern(100)
	if err := w.WriteRecord(rec, val); err != nil {
		t.Fatal(err)
	}
	r.k.Run()
	for i := 1; i < 3; i++ {
		got, ok := caches[i].TryRead(rec)
		if !ok {
			t.Fatalf("replica %d torn", i)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("replica %d data mismatch", i)
		}
	}
}

func TestPendingAndHighWater(t *testing.T) {
	r := newRig(2)
	r.engines[0].St.SetEgress(-1) // off ring: everything queues
	r.engines[0].Write(0, 1, 0, 0, pattern(10*64), nil)
	if r.engines[0].Pending() == 0 {
		t.Fatal("pending should be nonzero off-ring")
	}
	if r.engines[0].QueueHighWater < 10 {
		t.Fatalf("high water = %d", r.engines[0].QueueHighWater)
	}
}
