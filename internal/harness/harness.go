// Package harness runs the experiment matrix — experiment × seeds ×
// topology variants — across a bounded worker pool and aggregates
// cross-seed statistics.
//
// Each run executes on its own deterministic sim.Kernel (the experiment
// functions build one internally from Params.Seed), so a sweep is
// byte-reproducible: the same Config always produces the same Report,
// regardless of worker count or goroutine interleaving. That invariant
// is what turns the single-run paper tables into a scalable
// scenario-exploration engine, and it is enforced by tests.
package harness

import (
	"fmt"
	"sync"

	"repro/internal/detmap"
	"repro/internal/experiments"
	"repro/internal/sim"
)

// Config selects what to sweep and how wide.
type Config struct {
	// Experiments filters by experiment id; empty means all registered
	// experiments.
	Experiments []string `json:"experiments,omitempty"`
	// Seeds is the number of seeds per variant; each run uses
	// BaseSeed+i for i in [0,Seeds).
	Seeds int `json:"seeds"`
	// BaseSeed is the first seed (0 → 1).
	BaseSeed uint64 `json:"base_seed"`
	// Parallel bounds the worker pool (0 → 4).
	Parallel int `json:"parallel"`
	// NoVariants restricts every experiment to its default topology.
	NoVariants bool `json:"no_variants,omitempty"`
	// Shards, when > 1, runs every variant's cluster-level experiments
	// on the parallel sharded engine (internal/parsim). Reports — and
	// therefore sweep aggregates — are byte-identical to serial runs;
	// this trades sweep-level parallelism (worker pool) for run-level
	// parallelism on big single scenarios.
	Shards int `json:"shards,omitempty"`

	// KeepTables retains each run's rendered table in the Report.
	KeepTables bool `json:"-"`
	// OnResult, if set, is called as each run completes (from worker
	// goroutines, serialized by an internal mutex). For progress output.
	OnResult func(Result) `json:"-"`
}

func (c Config) normalized() Config {
	if c.Seeds <= 0 {
		c.Seeds = 1
	}
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if c.Parallel <= 0 {
		c.Parallel = 4
	}
	return c
}

// Run identifies one (experiment, variant, seed) execution.
type Run struct {
	Exp     string             `json:"exp"`
	Variant string             `json:"variant"`
	Seed    uint64             `json:"seed"`
	Params  experiments.Params `json:"params"`
}

// Result is one completed run.
type Result struct {
	Run
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Error   string             `json:"error,omitempty"`
	Table   string             `json:"table,omitempty"`
}

// MetricSummary is the cross-seed statistics of one metric.
type MetricSummary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	P50    float64 `json:"p50"`
	P99    float64 `json:"p99"`
	Max    float64 `json:"max"`
}

func summarize(s *sim.Sample) MetricSummary {
	return MetricSummary{
		N:      s.N(),
		Mean:   s.Mean(),
		Stddev: s.Stddev(),
		Min:    s.Min(),
		P50:    s.Percentile(50),
		P99:    s.Percentile(99),
		Max:    s.Max(),
	}
}

// Aggregate holds the cross-seed statistics for one experiment variant.
type Aggregate struct {
	Exp     string                   `json:"exp"`
	Short   string                   `json:"short"`
	Variant string                   `json:"variant"`
	Seeds   int                      `json:"seeds"`
	Errors  int                      `json:"errors,omitempty"`
	Metrics map[string]MetricSummary `json:"metrics,omitempty"`
}

// Report is the full outcome of a sweep. It contains only virtual-time
// quantities — no wall-clock values — so that identical configs yield
// byte-identical serialized reports.
type Report struct {
	Config     Config      `json:"config"`
	Runs       []Result    `json:"runs"`
	Aggregates []Aggregate `json:"aggregates"`
}

// variantsOf expands one spec into its sweep variants (merged over the
// spec defaults), or just the default topology.
func variantsOf(s experiments.Spec, noVariants bool) []experiments.Params {
	if noVariants || len(s.Variants) == 0 {
		return []experiments.Params{s.Defaults}
	}
	out := make([]experiments.Params, 0, len(s.Variants))
	for _, v := range s.Variants {
		out = append(out, v.Merged(s.Defaults))
	}
	return out
}

// Plan expands a Config into the ordered run list without executing
// anything. The order is the deterministic result order of Sweep.
func Plan(cfg Config) ([]Run, error) {
	cfg = cfg.normalized()
	specs := experiments.All()
	if len(cfg.Experiments) > 0 {
		var filtered []experiments.Spec
		for _, id := range cfg.Experiments {
			s := experiments.ByID(id)
			if s == nil {
				return nil, fmt.Errorf("unknown experiment %q", id)
			}
			filtered = append(filtered, *s)
		}
		specs = filtered
	}
	var runs []Run
	for _, s := range specs {
		// Wall-clock experiments (Spec.Wall) never join the default
		// all-experiments plan: sweep aggregates must stay
		// byte-reproducible across machines. Naming one explicitly in
		// cfg.Experiments still runs it.
		if s.Wall && len(cfg.Experiments) == 0 {
			continue
		}
		for _, v := range variantsOf(s, cfg.NoVariants) {
			// Only experiments that actually honor Params.Shards get
			// stamped: a "pN" label must never claim the parallel
			// engine for a run that ignored it.
			if cfg.Shards > 1 && v.Shards == 0 && s.Sharded {
				v.Shards = cfg.Shards
			}
			for i := 0; i < cfg.Seeds; i++ {
				p := v
				p.Seed = cfg.BaseSeed + uint64(i)
				runs = append(runs, Run{Exp: s.ID, Variant: v.Label(), Seed: p.Seed, Params: p})
			}
		}
	}
	return runs, nil
}

// Sweep executes the full plan across a bounded worker pool and returns
// the aggregated report. Results are ordered by plan position, never by
// completion time, so the report is independent of scheduling.
func Sweep(cfg Config) (*Report, error) {
	cfg = cfg.normalized()
	runs, err := Plan(cfg)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(runs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // serializes OnResult
	for w := 0; w < cfg.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = execute(runs[i], cfg.KeepTables)
				if cfg.OnResult != nil {
					mu.Lock()
					cfg.OnResult(results[i])
					mu.Unlock()
				}
			}
		}()
	}
	for i := range runs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	rep := &Report{Config: cfg, Runs: results}
	rep.Config.OnResult = nil
	rep.Aggregates = aggregate(results)
	return rep, nil
}

// execute runs one experiment on its own kernel, capturing panics as
// run errors so a single bad parameter set cannot kill the sweep.
func execute(r Run, keepTable bool) (res Result) {
	res.Run = r
	defer func() {
		if p := recover(); p != nil {
			res.Error = fmt.Sprintf("panic: %v", p)
		}
	}()
	spec := experiments.ByID(r.Exp)
	if spec == nil {
		res.Error = fmt.Sprintf("unknown experiment %q", r.Exp)
		return res
	}
	t := spec.Run(r.Params)
	res.Metrics = t.Metrics
	if keepTable {
		res.Table = t.String()
	}
	return res
}

// aggregate folds per-run metrics into per-(exp,variant) cross-seed
// summaries, preserving plan order.
func aggregate(results []Result) []Aggregate {
	type key struct{ exp, variant string }
	order := []key{}
	groups := map[key][]Result{}
	for _, r := range results {
		k := key{r.Exp, r.Variant}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	var aggs []Aggregate
	for _, k := range order {
		rs := groups[k]
		a := Aggregate{Exp: k.exp, Variant: k.variant, Seeds: len(rs)}
		if s := experiments.ByID(k.exp); s != nil {
			a.Short = s.Short
		}
		samples := map[string]*sim.Sample{}
		for _, r := range rs {
			if r.Error != "" {
				a.Errors++
				continue
			}
			//ampvet:allow detmap per-name accumulation is independent across names
			for name, v := range r.Metrics {
				s, ok := samples[name]
				if !ok {
					s = sim.NewSample(name)
					samples[name] = s
				}
				s.Observe(v)
			}
		}
		if len(samples) > 0 {
			a.Metrics = map[string]MetricSummary{}
			for _, name := range detmap.SortedKeys(samples) {
				a.Metrics[name] = summarize(samples[name])
			}
		}
		aggs = append(aggs, a)
	}
	return aggs
}
