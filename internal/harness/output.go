package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/detmap"
)

// WriteJSON serializes the report. Map keys are emitted sorted (the
// encoding/json guarantee), and the report carries no wall-clock
// values, so equal configs yield byte-identical output.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV emits one row per (experiment, variant, metric) aggregate:
// exp,variant,metric,n,mean,stddev,min,p50,p99,max.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"exp", "variant", "metric", "n", "mean", "stddev", "min", "p50", "p99", "max"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, a := range r.Aggregates {
		for _, name := range detmap.SortedKeys(a.Metrics) {
			m := a.Metrics[name]
			if err := cw.Write([]string{
				a.Exp, a.Variant, name, strconv.Itoa(m.N),
				f(m.Mean), f(m.Stddev), f(m.Min), f(m.P50), f(m.P99), f(m.Max),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteText renders the cross-seed aggregates as aligned tables, one
// per experiment variant, in the style of the single-run tables.
func (r *Report) WriteText(w io.Writer) error {
	for _, a := range r.Aggregates {
		fmt.Fprintf(w, "\n%s [%s] — %s (%d seeds", a.Exp, a.Variant, a.Short, a.Seeds)
		if a.Errors > 0 {
			fmt.Fprintf(w, ", %d ERRORS", a.Errors)
		}
		fmt.Fprint(w, ")\n")
		if len(a.Metrics) == 0 {
			fmt.Fprintln(w, "  (no scalar metrics)")
			continue
		}
		names := detmap.SortedKeys(a.Metrics)
		wName := len("metric")
		for _, name := range names {
			if len(name) > wName {
				wName = len(name)
			}
		}
		fmt.Fprintf(w, "  %-*s  %10s  %10s  %10s  %10s  %10s\n", wName, "metric", "mean", "min", "p50", "p99", "max")
		for _, name := range names {
			m := a.Metrics[name]
			fmt.Fprintf(w, "  %-*s  %10.4g  %10.4g  %10.4g  %10.4g  %10.4g\n",
				wName, name, m.Mean, m.Min, m.P50, m.P99, m.Max)
		}
	}
	return nil
}
