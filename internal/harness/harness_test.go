package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/experiments"
)

func smallConfig(par int) Config {
	return Config{
		Experiments: []string{"e1", "e3", "e7a"},
		Seeds:       2,
		BaseSeed:    1,
		Parallel:    par,
		KeepTables:  true,
	}
}

func TestPlanShape(t *testing.T) {
	runs, err := Plan(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	// e1: 1 variant, e3: 3 variants, e7a: 1 variant → 5 variants × 2 seeds.
	if len(runs) != 10 {
		t.Fatalf("plan has %d runs, want 10", len(runs))
	}
	if runs[0].Exp != "e1" || runs[0].Seed != 1 || runs[1].Seed != 2 {
		t.Fatalf("plan order wrong: %+v", runs[:2])
	}
	for _, r := range runs {
		if r.Params.Seed != r.Seed {
			t.Fatalf("params seed %d != run seed %d", r.Params.Seed, r.Seed)
		}
	}
}

func TestPlanUnknownExperiment(t *testing.T) {
	if _, err := Plan(Config{Experiments: []string{"nope"}}); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

// The sweep must be byte-reproducible: same config → same serialized
// report, run after run.
func TestSweepByteReproducible(t *testing.T) {
	encode := func() []byte {
		rep, err := Sweep(smallConfig(3))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatal("two sweeps with the same config produced different reports")
	}
}

// Worker count must not leak into results: runs and aggregates are
// ordered by plan position, not completion order.
func TestSweepIndependentOfParallelism(t *testing.T) {
	get := func(par int) ([]Result, []Aggregate) {
		rep, err := Sweep(smallConfig(par))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Runs, rep.Aggregates
	}
	r1, a1 := get(1)
	r4, a4 := get(4)
	j1, _ := json.Marshal(r1)
	j4, _ := json.Marshal(r4)
	if !bytes.Equal(j1, j4) {
		t.Fatal("runs differ between 1 and 4 workers")
	}
	k1, _ := json.Marshal(a1)
	k4, _ := json.Marshal(a4)
	if !bytes.Equal(k1, k4) {
		t.Fatal("aggregates differ between 1 and 4 workers")
	}
}

func TestAggregateStats(t *testing.T) {
	rep, err := Sweep(Config{Experiments: []string{"e3"}, Seeds: 3, Parallel: 2, NoVariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Aggregates) != 1 {
		t.Fatalf("aggregates = %d, want 1 (variants disabled)", len(rep.Aggregates))
	}
	a := rep.Aggregates[0]
	if a.Seeds != 3 || a.Errors != 0 {
		t.Fatalf("aggregate %+v", a)
	}
	m, ok := a.Metrics["ampnet_mbps"]
	if !ok {
		t.Fatalf("missing ampnet_mbps in %v", a.Metrics)
	}
	if m.N != 3 || m.Mean <= 0 || m.Min > m.Max || m.P50 < m.Min || m.P99 > m.Max {
		t.Fatalf("inconsistent summary %+v", m)
	}
}

func TestSweepSurvivesPanickingRun(t *testing.T) {
	// An impossible topology (negative node count) must surface as a
	// run error, not kill the process.
	res := execute(Run{Exp: "e3", Variant: "bad", Params: experiments.Params{Nodes: -1}}, false)
	if res.Error == "" {
		t.Fatal("negative node count did not produce a run error")
	}
}

func TestExecuteUnknownExperiment(t *testing.T) {
	res := execute(Run{Exp: "nope"}, false)
	if res.Error == "" {
		t.Fatal("unknown experiment did not produce a run error")
	}
}

func TestCSVAndTextOutputs(t *testing.T) {
	rep, err := Sweep(Config{Experiments: []string{"e1"}, Seeds: 2, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf, txtBuf bytes.Buffer
	if err := rep.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteText(&txtBuf); err != nil {
		t.Fatal(err)
	}
	if csvBuf.Len() == 0 || txtBuf.Len() == 0 {
		t.Fatal("empty output")
	}
}

func TestKeepTables(t *testing.T) {
	rep, err := Sweep(Config{Experiments: []string{"e1"}, Seeds: 1, Parallel: 1, KeepTables: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs[0].Table == "" {
		t.Fatal("KeepTables did not retain the rendered table")
	}
}
