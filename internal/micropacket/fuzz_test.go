package micropacket

import (
	"testing"
	"testing/quick"

	"repro/internal/enc8b10b"
)

// TestDecodeArbitraryBytesNeverPanics: whatever the wire carries,
// Decode either returns a valid packet or an error — never a panic and
// never an invalid packet.
func TestDecodeArbitraryBytesNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		p, err := Decode(raw)
		if err != nil {
			return p == nil
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeMutatedFramesNeverInvalid: start from valid frames and
// mutate bytes; any accepted decode must still validate. (Mutations of
// the SOF/EOF/padding bytes are outside the CRC, so acceptance is
// possible — but the packet contents are CRC-protected.)
func TestDecodeMutatedFramesNeverInvalid(t *testing.T) {
	base := []*Packet{
		NewData(1, 2, 3, []byte{1, 2, 3}),
		NewDMA(4, 5, DMAHeader{Channel: 6, Region: 7, Offset: 8}, []byte{9, 10, 11, 12, 13}),
		NewAtomic(1, 2, 3, OpTestAndSet, 99),
	}
	rnd := uint64(12345)
	next := func() uint64 {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return rnd
	}
	for _, p := range base {
		raw, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5000; trial++ {
			mut := append([]byte{}, raw...)
			nMuts := int(next()%3) + 1
			for m := 0; m < nMuts; m++ {
				mut[next()%uint64(len(mut))] ^= byte(next())
			}
			q, err := Decode(mut)
			if err != nil {
				continue
			}
			if q.Validate() != nil {
				t.Fatalf("accepted invalid packet from mutation: %v", q)
			}
			// If the body survived (CRC matched), contents must be
			// byte-identical to the original.
			if q.Type == p.Type && q.Src == p.Src && q.Dst == p.Dst {
				continue
			}
			t.Fatalf("CRC accepted altered contents: %v vs %v", q, p)
		}
	}
}

// TestSymbolDecodeArbitrarySymbolsNeverPanics covers the FC-1 path.
func TestSymbolDecodeArbitrarySymbolsNeverPanics(t *testing.T) {
	f := func(words []uint16) bool {
		syms := make([]enc8b10b.Symbol, len(words))
		for i, w := range words {
			syms[i] = enc8b10b.Symbol(w & 0x3FF)
		}
		p, err := DecodeSymbols(syms, enc8b10b.NewDecoder())
		if err != nil {
			return p == nil
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
