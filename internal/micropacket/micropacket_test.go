package micropacket

import (
	"testing"
	"testing/quick"
)

// Wire-format round trips, framing and CRC behavior are tested in
// internal/wire (per format version, against checked-in golden
// vectors); this file covers the in-memory packet model.

// TestSlide4Table verifies the type table matches slide 4 exactly.
func TestSlide4Table(t *testing.T) {
	want := []struct {
		name      string
		variable  bool
		mandatory bool
	}{
		{"Rostering", false, true},
		{"Data", false, true},
		{"DMA", true, true},
		{"Interrupt", false, true},
		{"Diagnostic", false, true},
		{"D64 Atomic", false, false},
	}
	got := Types()
	if len(got) != len(want) {
		t.Fatalf("have %d types, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Name != w.name || g.Variable != w.variable || g.Mandatory != w.mandatory {
			t.Errorf("row %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestTypeValidity(t *testing.T) {
	for ty := Type(0); ty < numTypes; ty++ {
		if !ty.Valid() {
			t.Errorf("type %v should be valid", ty)
		}
	}
	if Type(6).Valid() || Type(255).Valid() {
		t.Error("out-of-range types should be invalid")
	}
}

func TestBroadcast(t *testing.T) {
	p := NewData(1, Broadcast, 0, nil)
	if !p.IsBroadcast() {
		t.Fatal("broadcast not detected")
	}
	if NewData(1, 0xFF, 0, nil).IsBroadcast() {
		t.Fatal("0xFF is an ordinary wide address, not broadcast")
	}
}

func TestWideAddresses(t *testing.T) {
	// The in-memory address space is uint16: ids past the old one-byte
	// ceiling must survive construction unaliased.
	p := NewData(300, 700, 1, nil)
	if p.Src != 300 || p.Dst != 700 {
		t.Fatalf("wide addresses aliased: src=%d dst=%d", p.Src, p.Dst)
	}
	if p.IsBroadcast() {
		t.Fatal("wide unicast misread as broadcast")
	}
}

func TestAtomicPacket(t *testing.T) {
	p := NewAtomic(4, 9, 17, OpFetchAdd, 0x1122334455667788)
	if p.Op() != OpFetchAdd {
		t.Fatalf("op = %v", p.Op())
	}
	if p.Word64() != 0x1122334455667788 {
		t.Fatalf("word = %x", p.Word64())
	}
}

func TestWord64RoundTripQuick(t *testing.T) {
	if err := quick.Check(func(v uint64) bool {
		var p Packet
		p.SetWord64(v)
		return p.Word64() == v
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Packet
		err  error
	}{
		{"bad type", Packet{Type: Type(9)}, ErrBadType},
		{"fixed with data", Packet{Type: TypeData, Data: []byte{1}}, ErrLengthMism},
		{"dma too long", Packet{Type: TypeDMA, DMA: DMAHeader{Length: 65}, Data: make([]byte, 65)}, ErrTooLong},
		{"dma len mismatch", Packet{Type: TypeDMA, DMA: DMAHeader{Length: 3}, Data: []byte{1}}, ErrLengthMism},
		{"dma bad channel", Packet{Type: TypeDMA, DMA: DMAHeader{Channel: 16}}, ErrBadChannel},
		{"bad op", Packet{Type: TypeD64Atomic, Flags: Flags(numOps)}, ErrBadOp},
		{"ok data", Packet{Type: TypeData}, nil},
		{"ok dma", Packet{Type: TypeDMA, DMA: DMAHeader{Channel: 15}}, nil},
	}
	for _, c := range cases {
		if got := c.p.Validate(); got != c.err {
			t.Errorf("%s: Validate() = %v, want %v", c.name, got, c.err)
		}
	}
}

func TestClone(t *testing.T) {
	p := NewDMA(1, 2, DMAHeader{Channel: 3}, []byte{1, 2, 3})
	q := p.Clone()
	q.Data[0] = 99
	if p.Data[0] != 1 {
		t.Fatal("Clone aliases Data")
	}
	q.Payload[0] = 42
	if p.Payload[0] == 42 {
		t.Fatal("Clone aliases Payload")
	}
}

func TestStringForms(t *testing.T) {
	if s := NewData(1, Broadcast, 9, nil).String(); s == "" {
		t.Fatal("empty String()")
	}
	if s := NewAtomic(1, 2, 3, OpFetchAdd, 77).String(); s == "" {
		t.Fatal("empty String()")
	}
	if s := NewDMA(1, 2, DMAHeader{}, nil).String(); s == "" {
		t.Fatal("empty String()")
	}
	if TypeData.String() != "Data" || Type(99).String() == "" {
		t.Fatal("Type.String broken")
	}
	if OpRead.String() != "Read" || AtomicOp(99).String() == "" {
		t.Fatal("AtomicOp.String broken")
	}
}
