package micropacket

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/enc8b10b"
)

// TestSlide4Table verifies the type table matches slide 4 exactly.
func TestSlide4Table(t *testing.T) {
	want := []struct {
		name      string
		variable  bool
		mandatory bool
	}{
		{"Rostering", false, true},
		{"Data", false, true},
		{"DMA", true, true},
		{"Interrupt", false, true},
		{"Diagnostic", false, true},
		{"D64 Atomic", false, false},
	}
	got := Types()
	if len(got) != len(want) {
		t.Fatalf("have %d types, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Name != w.name || g.Variable != w.variable || g.Mandatory != w.mandatory {
			t.Errorf("row %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestTypeValidity(t *testing.T) {
	for ty := Type(0); ty < numTypes; ty++ {
		if !ty.Valid() {
			t.Errorf("type %v should be valid", ty)
		}
	}
	if Type(6).Valid() || Type(255).Valid() {
		t.Error("out-of-range types should be invalid")
	}
}

func TestFixedWireSizeMatchesSlide5(t *testing.T) {
	// Slide 5: 3 words (12 bytes) + delimiters. With our 4-byte SOF,
	// 4-byte CRC and 4-byte EOF framing that is 24 bytes total.
	if FixedWire != 24 {
		t.Fatalf("FixedWire = %d, want 24", FixedWire)
	}
	for _, ty := range []Type{TypeRostering, TypeData, TypeInterrupt, TypeDiagnostic, TypeD64Atomic} {
		if got := WireSize(ty, 0); got != 24 {
			t.Errorf("WireSize(%v) = %d, want 24", ty, got)
		}
	}
}

func TestVariableWireSizeMatchesSlide6(t *testing.T) {
	// Slide 6: control word + 2 DMA control words + up to 16 payload
	// words (64 bytes) = 19 words max. Plus SOF/CRC/EOF → 88 bytes.
	if MaxVarWire != 88 {
		t.Fatalf("MaxVarWire = %d, want 88", MaxVarWire)
	}
	if got := WireSize(TypeDMA, 64); got != 88 {
		t.Fatalf("WireSize(DMA,64) = %d, want 88", got)
	}
	if got := WireSize(TypeDMA, 0); got != 24 {
		t.Fatalf("WireSize(DMA,0) = %d, want 24", got)
	}
	// Padding to word boundary.
	if a, b := WireSize(TypeDMA, 1), WireSize(TypeDMA, 4); a != b {
		t.Fatalf("WireSize(DMA,1)=%d != WireSize(DMA,4)=%d", a, b)
	}
	if a, b := WireSize(TypeDMA, 5), WireSize(TypeDMA, 8); a != b {
		t.Fatalf("WireSize(DMA,5)=%d != WireSize(DMA,8)=%d", a, b)
	}
}

func TestEncodeDecodeFixed(t *testing.T) {
	p := NewData(3, 7, 42, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	p.Flags = FlagAck | FlagLast
	raw, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != FixedWire {
		t.Fatalf("encoded %d bytes, want %d", len(raw), FixedWire)
	}
	q, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if q.Type != TypeData || q.Src != 3 || q.Dst != 7 || q.Tag != 42 || q.Flags != (FlagAck|FlagLast) {
		t.Fatalf("header mismatch: %+v", q)
	}
	if q.Payload != p.Payload {
		t.Fatalf("payload mismatch: %v != %v", q.Payload, p.Payload)
	}
}

func TestEncodeDecodeVariableAllLengths(t *testing.T) {
	for n := 0; n <= MaxPayload; n++ {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i * 7)
		}
		p := NewDMA(1, 2, DMAHeader{Channel: 5, Region: 9, Seq: 33, Offset: 0xDEADBEEF}, data)
		raw, err := p.Encode()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(raw) != WireSize(TypeDMA, n) {
			t.Fatalf("n=%d: size %d, want %d", n, len(raw), WireSize(TypeDMA, n))
		}
		q, err := Decode(raw)
		if err != nil {
			t.Fatalf("n=%d decode: %v", n, err)
		}
		if q.DMA != p.DMA {
			t.Fatalf("n=%d DMA header mismatch: %+v != %+v", n, q.DMA, p.DMA)
		}
		if !bytes.Equal(q.Data, data) {
			t.Fatalf("n=%d data mismatch", n)
		}
	}
}

func TestBroadcast(t *testing.T) {
	p := NewData(1, Broadcast, 0, nil)
	if !p.IsBroadcast() {
		t.Fatal("broadcast not detected")
	}
	raw, _ := p.Encode()
	q, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsBroadcast() {
		t.Fatal("broadcast lost in round trip")
	}
}

func TestAtomicPacket(t *testing.T) {
	p := NewAtomic(4, 9, 17, OpFetchAdd, 0x1122334455667788)
	if p.Op() != OpFetchAdd {
		t.Fatalf("op = %v", p.Op())
	}
	if p.Word64() != 0x1122334455667788 {
		t.Fatalf("word = %x", p.Word64())
	}
	raw, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if q.Op() != OpFetchAdd || q.Word64() != 0x1122334455667788 || q.Tag != 17 {
		t.Fatalf("atomic round trip: %+v", q)
	}
}

func TestWord64RoundTripQuick(t *testing.T) {
	if err := quick.Check(func(v uint64) bool {
		var p Packet
		p.SetWord64(v)
		return p.Word64() == v
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCRCDetectsCorruption(t *testing.T) {
	p := NewDMA(1, 2, DMAHeader{Channel: 1, Offset: 128}, []byte{10, 20, 30, 40, 50})
	raw, _ := p.Encode()
	// Flip every body byte one at a time; all must be caught.
	for i := 4; i < len(raw)-8; i++ {
		mut := make([]byte, len(raw))
		copy(mut, raw)
		mut[i] ^= 0x40
		if _, err := Decode(mut); err == nil {
			t.Fatalf("corruption at byte %d undetected", i)
		}
	}
}

func TestDecodeRejectsBadFraming(t *testing.T) {
	p := NewData(1, 2, 0, []byte{1})
	raw, _ := p.Encode()

	short := raw[:10]
	if _, err := Decode(short); err != ErrTruncated {
		t.Fatalf("short frame: %v", err)
	}

	badSOF := append([]byte{}, raw...)
	badSOF[0] = 0x00
	if _, err := Decode(badSOF); err != ErrBadSOF {
		t.Fatalf("bad SOF: %v", err)
	}

	badEOF := append([]byte{}, raw...)
	badEOF[len(badEOF)-1] ^= 0xFF
	if _, err := Decode(badEOF); err != ErrBadEOF {
		t.Fatalf("bad EOF: %v", err)
	}

	badFmt := append([]byte{}, raw...)
	badFmt[3] = 0xF0 // claims variable but carries fixed body
	if _, err := Decode(badFmt); err == nil {
		t.Fatal("format mismatch accepted")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Packet
		err  error
	}{
		{"bad type", Packet{Type: Type(9)}, ErrBadType},
		{"fixed with data", Packet{Type: TypeData, Data: []byte{1}}, ErrLengthMism},
		{"dma too long", Packet{Type: TypeDMA, DMA: DMAHeader{Length: 65}, Data: make([]byte, 65)}, ErrTooLong},
		{"dma len mismatch", Packet{Type: TypeDMA, DMA: DMAHeader{Length: 3}, Data: []byte{1}}, ErrLengthMism},
		{"dma bad channel", Packet{Type: TypeDMA, DMA: DMAHeader{Channel: 16}}, ErrBadChannel},
		{"bad op", Packet{Type: TypeD64Atomic, Flags: Flags(numOps)}, ErrBadOp},
		{"ok data", Packet{Type: TypeData}, nil},
		{"ok dma", Packet{Type: TypeDMA, DMA: DMAHeader{Channel: 15}}, nil},
	}
	for _, c := range cases {
		if got := c.p.Validate(); got != c.err {
			t.Errorf("%s: Validate() = %v, want %v", c.name, got, c.err)
		}
	}
}

func TestClone(t *testing.T) {
	p := NewDMA(1, 2, DMAHeader{Channel: 3}, []byte{1, 2, 3})
	q := p.Clone()
	q.Data[0] = 99
	if p.Data[0] != 1 {
		t.Fatal("Clone aliases Data")
	}
	q.Payload[0] = 42
	if p.Payload[0] == 42 {
		t.Fatal("Clone aliases Payload")
	}
}

func TestRoundTripQuickProperty(t *testing.T) {
	f := func(src, dst, tag uint8, flags uint8, payload [8]byte, varData []byte, ch uint8, region uint8, off uint32) bool {
		// Fixed packet.
		fp := Packet{Type: TypeData, Flags: Flags(flags & 0xF), Src: NodeID(src), Dst: NodeID(dst), Tag: tag, Payload: payload}
		raw, err := fp.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(raw)
		if err != nil || got.Type != fp.Type || got.Flags != fp.Flags ||
			got.Src != fp.Src || got.Dst != fp.Dst || got.Tag != fp.Tag ||
			got.Payload != fp.Payload || len(got.Data) != 0 {
			return false
		}
		// Variable packet.
		if len(varData) > MaxPayload {
			varData = varData[:MaxPayload]
		}
		vp := NewDMA(NodeID(src), NodeID(dst), DMAHeader{Channel: ch % 16, Region: region, Offset: off}, varData)
		raw, err = vp.Encode()
		if err != nil {
			return false
		}
		gv, err := Decode(raw)
		if err != nil {
			return false
		}
		return gv.DMA == vp.DMA && bytes.Equal(gv.Data, vp.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSymbolRoundTrip(t *testing.T) {
	enc := enc8b10b.NewEncoder()
	dec := enc8b10b.NewDecoder()
	pkts := []*Packet{
		NewData(1, 2, 3, []byte{0xFF, 0x00, 0xAA}),
		NewDMA(2, Broadcast, DMAHeader{Channel: 7, Region: 1, Offset: 4096}, bytes.Repeat([]byte{0x5A}, 64)),
		NewAtomic(3, 4, 200, OpTestAndSet, 1),
		NewInterrupt(5, 6, 13),
		NewDiagnostic(7, 8, 0xEE),
		NewRostering(9, 1, [8]byte{1, 2, 3, 4, 5, 6, 7, 8}),
	}
	for _, p := range pkts {
		syms, err := p.EncodeSymbols(enc)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		q, err := DecodeSymbols(syms, dec)
		if err != nil {
			t.Fatalf("%v: decode: %v", p, err)
		}
		if q.Type != p.Type || q.Src != p.Src || q.Dst != p.Dst || q.Tag != p.Tag {
			t.Fatalf("symbol round trip header mismatch: %v → %v", p, q)
		}
		if !bytes.Equal(q.Data, p.Data) || q.Payload != p.Payload {
			t.Fatalf("symbol round trip payload mismatch for %v", p)
		}
	}
	if dec.Violations != 0 {
		t.Fatalf("%d 8b/10b violations on clean stream", dec.Violations)
	}
}

func TestSymbolStreamStartsWithComma(t *testing.T) {
	enc := enc8b10b.NewEncoder()
	p := NewData(1, 2, 0, nil)
	syms, err := p.EncodeSymbols(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !enc8b10b.IsComma(syms[0]) {
		t.Fatal("frame does not open with a comma symbol (alignment would fail)")
	}
}

func TestStringForms(t *testing.T) {
	if s := NewData(1, Broadcast, 9, nil).String(); s == "" {
		t.Fatal("empty String()")
	}
	if s := NewAtomic(1, 2, 3, OpFetchAdd, 77).String(); s == "" {
		t.Fatal("empty String()")
	}
	if s := NewDMA(1, 2, DMAHeader{}, nil).String(); s == "" {
		t.Fatal("empty String()")
	}
	if TypeData.String() != "Data" || Type(99).String() == "" {
		t.Fatal("Type.String broken")
	}
	if OpRead.String() != "Read" || AtomicOp(99).String() == "" {
		t.Fatal("AtomicOp.String broken")
	}
}
