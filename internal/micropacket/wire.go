package micropacket

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/enc8b10b"
)

// Wire framing (reconstructed from slides 5–6 plus the FC-0/FC-1
// substrate of slide 3):
//
//	SOF ordered set   4 bytes   K28.5 D21.5 D22.1 <format byte>
//	word 0            4 bytes   control: {type<<4|flags, src, dst, tag}
//	[words 1..2]      8 bytes   fixed payload            (fixed format)
//	[words 1..2]      8 bytes   DMA control               (variable)
//	[words 3..N]      0..64     variable payload, padded to word
//	CRC-32            4 bytes   over words 0..N (Castagnoli)
//	EOF ordered set   4 bytes   K28.5 D21.4 D21.3 D21.3
//
// The first SOF and EOF characters are control (K) characters at the
// FC-1 layer; EncodeSymbols emits them as such.

// Ordered-set data bytes (after the K28.5 opener).
const (
	sofByte1 = 0xB5 // D21.5
	sofByte2 = 0x36 // D22.1
	eofByte1 = 0x95 // D21.4
	eofByte2 = 0x75 // D21.3
	eofByte3 = 0x75 // D21.3
)

// Format byte values carried in the SOF set, distinguishing the two
// slide formats on the wire.
const (
	formatFixed    = 0x0F
	formatVariable = 0xF0
)

// Wire sizes.
const (
	sofLen      = 4
	ctrlLen     = 4
	crcLen      = 4
	eofLen      = 4
	FixedWire   = sofLen + ctrlLen + FixedPayload + crcLen + eofLen   // 24 bytes
	MinVarWire  = sofLen + ctrlLen + 8 + crcLen + eofLen              // DMA with 0 payload
	MaxVarWire  = sofLen + ctrlLen + 8 + MaxPayload + crcLen + eofLen // 88 bytes
	maxWireSize = MaxVarWire
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WireSize returns the encoded size in bytes of a packet with the given
// type and variable-payload length (ignored for fixed types). Payload is
// padded to a 4-byte word boundary, matching the word-oriented formats
// of slides 5–6.
func WireSize(t Type, payloadLen int) int {
	if !t.Variable() {
		return FixedWire
	}
	return MinVarWire + pad4(payloadLen)
}

func pad4(n int) int { return (n + 3) &^ 3 }

// Encode serializes the packet to its wire representation.
func (p *Packet) Encode() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	size := WireSize(p.Type, len(p.Data))
	buf := make([]byte, 0, size)

	format := byte(formatFixed)
	if p.Type.Variable() {
		format = formatVariable
	}
	buf = append(buf, enc8b10b.K28_5, sofByte1, sofByte2, format)

	body := make([]byte, 0, size-sofLen-crcLen-eofLen)
	body = append(body, byte(p.Type)<<4|byte(p.Flags&0xF), byte(p.Src), byte(p.Dst), p.Tag)
	if p.Type.Variable() {
		body = append(body, p.DMA.Channel, p.DMA.Region, p.DMA.Length, p.DMA.Seq)
		var off [4]byte
		binary.LittleEndian.PutUint32(off[:], p.DMA.Offset)
		body = append(body, off[:]...)
		body = append(body, p.Data...)
		for i := len(p.Data); i < pad4(len(p.Data)); i++ {
			body = append(body, 0)
		}
	} else {
		body = append(body, p.Payload[:]...)
	}
	buf = append(buf, body...)

	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(body, castagnoli))
	buf = append(buf, crc[:]...)
	buf = append(buf, enc8b10b.K28_5, eofByte1, eofByte2, eofByte3)
	if len(buf) != size {
		return nil, fmt.Errorf("micropacket: internal size error: %d != %d", len(buf), size)
	}
	return buf, nil
}

// Decode errors.
var (
	ErrTruncated = errors.New("micropacket: truncated frame")
	ErrBadSOF    = errors.New("micropacket: bad SOF ordered set")
	ErrBadEOF    = errors.New("micropacket: bad EOF ordered set")
	ErrBadCRC    = errors.New("micropacket: CRC mismatch")
	ErrBadFormat = errors.New("micropacket: format byte does not match type")
)

// Decode parses a wire frame produced by Encode.
func Decode(buf []byte) (*Packet, error) {
	if len(buf) < FixedWire {
		return nil, ErrTruncated
	}
	if buf[0] != enc8b10b.K28_5 || buf[1] != sofByte1 || buf[2] != sofByte2 {
		return nil, ErrBadSOF
	}
	format := buf[3]
	if format != formatFixed && format != formatVariable {
		return nil, ErrBadSOF
	}
	end := len(buf)
	if buf[end-4] != enc8b10b.K28_5 || buf[end-3] != eofByte1 || buf[end-2] != eofByte2 || buf[end-1] != eofByte3 {
		return nil, ErrBadEOF
	}
	body := buf[sofLen : end-crcLen-eofLen]
	wantCRC := binary.LittleEndian.Uint32(buf[end-crcLen-eofLen : end-eofLen])
	if crc32.Checksum(body, castagnoli) != wantCRC {
		return nil, ErrBadCRC
	}
	if len(body) < ctrlLen {
		return nil, ErrTruncated
	}
	p := &Packet{
		Type:  Type(body[0] >> 4),
		Flags: Flags(body[0] & 0xF),
		Src:   NodeID(body[1]),
		Dst:   NodeID(body[2]),
		Tag:   body[3],
	}
	if !p.Type.Valid() {
		return nil, ErrBadType
	}
	if p.Type.Variable() != (format == formatVariable) {
		return nil, ErrBadFormat
	}
	rest := body[ctrlLen:]
	if p.Type.Variable() {
		if len(rest) < 8 {
			return nil, ErrTruncated
		}
		p.DMA = DMAHeader{
			Channel: rest[0], Region: rest[1], Length: rest[2], Seq: rest[3],
			Offset: binary.LittleEndian.Uint32(rest[4:8]),
		}
		payload := rest[8:]
		if int(p.DMA.Length) > len(payload) {
			return nil, ErrLengthMism
		}
		if len(payload) != pad4(int(p.DMA.Length)) {
			return nil, ErrLengthMism
		}
		p.Data = make([]byte, p.DMA.Length)
		copy(p.Data, payload)
	} else {
		if len(rest) != FixedPayload {
			return nil, ErrTruncated
		}
		copy(p.Payload[:], rest)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// EncodeSymbols serializes the packet all the way to FC-1 10-bit symbols
// using the supplied encoder (which carries link running disparity).
// The SOF and EOF K28.5 openers are emitted as control characters.
func (p *Packet) EncodeSymbols(enc *enc8b10b.Encoder) ([]enc8b10b.Symbol, error) {
	raw, err := p.Encode()
	if err != nil {
		return nil, err
	}
	syms := make([]enc8b10b.Symbol, 0, len(raw))
	for i, b := range raw {
		control := b == enc8b10b.K28_5 && (i == 0 || i == len(raw)-eofLen)
		s, err := enc.Encode(b, control)
		if err != nil {
			return nil, err
		}
		syms = append(syms, s)
	}
	return syms, nil
}

// DecodeSymbols reverses EncodeSymbols using the supplied decoder. The
// SOF and EOF ordered sets must open with a control (K) character and
// every other position must be a data character — byte-value equality
// is not enough, since e.g. D28.5 and the K28.5 comma share the byte
// value 0xBC but are distinct transmission characters.
func DecodeSymbols(syms []enc8b10b.Symbol, dec *enc8b10b.Decoder) (*Packet, error) {
	raw := make([]byte, 0, len(syms))
	for i, s := range syms {
		d, err := dec.Decode(s)
		if err != nil {
			return nil, fmt.Errorf("micropacket: symbol %d: %w", i, err)
		}
		wantControl := i == 0 || i == len(syms)-eofLen
		if d.Control != wantControl {
			return nil, fmt.Errorf("micropacket: symbol %d: control/data class violation", i)
		}
		raw = append(raw, d.Byte)
	}
	return Decode(raw)
}
