// Package micropacket implements AmpNet's MicroPacket link layer
// (paper, slides 3–6).
//
// The paper defines six MicroPacket types (slide 4):
//
//	Type        Length    Mandatory
//	Rostering   Fixed     Yes
//	Data        Fixed     Yes
//	DMA         Variable  Yes
//	Interrupt   Fixed     Yes
//	Diagnostic  Fixed     Yes
//	D64 Atomic  Fixed     No
//
// and two on-wire formats. The fixed format (slide 5) is three 32-bit
// words — one control word and eight payload bytes — bracketed by
// start/end delimiters. The variable format (slide 6) prepends two DMA
// control words and carries up to 64 payload bytes (words 3..18).
//
// The slides do not give bit-level field assignments inside the control
// words, so this package documents its reconstruction: control word =
// {type|flags, source, destination, tag}; DMA control words = {channel,
// region, length, sequence} and a 32-bit region offset. Delimiters are
// modeled as Fibre-Channel-style four-character ordered sets opened by
// the K28.5 comma (the paper sits MicroPackets directly on FC-0/FC-1),
// and a CRC-32 trails the payload words, standing in for the "A"
// (acknowledge/validity) delimiter field of slide 5.
//
// This package owns the in-memory Packet model and its structural
// rules; the on-wire frame layout is versioned and lives in
// internal/wire (v1 with one-byte addresses — the original format —
// and v2 with uint16 addresses for fabrics past 255 nodes).
package micropacket

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Type identifies a MicroPacket type (slide 4).
type Type uint8

// The six MicroPacket types, in the order of the paper's table.
const (
	TypeRostering Type = iota
	TypeData
	TypeDMA
	TypeInterrupt
	TypeDiagnostic
	TypeD64Atomic
	numTypes
)

// String returns the paper's name for the type.
func (t Type) String() string {
	switch t {
	case TypeRostering:
		return "Rostering"
	case TypeData:
		return "Data"
	case TypeDMA:
		return "DMA"
	case TypeInterrupt:
		return "Interrupt"
	case TypeDiagnostic:
		return "Diagnostic"
	case TypeD64Atomic:
		return "D64 Atomic"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Valid reports whether t is one of the six defined types.
func (t Type) Valid() bool { return t < numTypes }

// Variable reports whether the type uses the variable format. Only DMA
// MicroPackets are variable (slide 4).
func (t Type) Variable() bool { return t == TypeDMA }

// Mandatory reports whether a conforming implementation must support the
// type. Everything except D64 Atomic is mandatory (slide 4).
func (t Type) Mandatory() bool { return t != TypeD64Atomic }

// Info describes one row of the slide-4 type table; see Types.
type Info struct {
	Type      Type
	Name      string
	Variable  bool
	Mandatory bool
}

// Types returns the slide-4 table in order, for conformance reporting.
func Types() []Info {
	out := make([]Info, 0, numTypes)
	for t := Type(0); t < numTypes; t++ {
		out = append(out, Info{Type: t, Name: t.String(), Variable: t.Variable(), Mandatory: t.Mandatory()})
	}
	return out
}

// NodeID addresses a node on the AmpNet network. The broadcast address
// targets every node on the logical ring. In-memory addresses are
// uint16; how many bits travel on the wire — one byte under format v1,
// two under v2 — is the codec's business (internal/wire), which also
// maps Broadcast to the version's all-ones wire address.
type NodeID uint16

// Broadcast is the all-nodes destination.
const Broadcast NodeID = 0xFFFF

// Flags is the four-bit flag nibble of control byte 0.
type Flags uint8

// Flag bits. FlagOp* values overlay the flag nibble for D64 Atomic
// packets, encoding the atomic operation (see OpOf).
const (
	FlagAck  Flags = 1 << 0 // delivery acknowledgement requested/carried
	FlagPrio Flags = 1 << 1 // high priority (Interrupt class service)
	FlagLast Flags = 1 << 2 // final packet of a multi-packet transfer
	FlagErr  Flags = 1 << 3 // diagnostic: error indication
)

// AtomicOp is the D64 Atomic operation, carried in the flag nibble of a
// TypeD64Atomic packet.
type AtomicOp uint8

// D64 atomic operations. TestAndSet returns the previous value and sets
// the word to the operand; FetchAdd returns the previous value and adds
// the operand; Write stores unconditionally; Read fetches.
const (
	OpRead AtomicOp = iota
	OpWrite
	OpTestAndSet
	OpFetchAdd
	OpReply // response carrying the previous/fetched value
	numOps
)

// String names the atomic op.
func (o AtomicOp) String() string {
	switch o {
	case OpRead:
		return "Read"
	case OpWrite:
		return "Write"
	case OpTestAndSet:
		return "TestAndSet"
	case OpFetchAdd:
		return "FetchAdd"
	case OpReply:
		return "Reply"
	default:
		return fmt.Sprintf("AtomicOp(%d)", uint8(o))
	}
}

// Valid reports whether the op is defined.
func (o AtomicOp) Valid() bool { return o < numOps }

// DMAHeader is the pair of DMA control words present in variable-format
// packets (slide 6, words 1–2): which of the sixteen channels, which
// registered memory region, the byte offset within it, the number of
// valid payload bytes, and a per-channel sequence number.
type DMAHeader struct {
	Channel uint8  // 0..15: the multiplexed DMA channel
	Region  uint8  // registered memory region identifier
	Length  uint8  // valid payload bytes, 0..64
	Seq     uint8  // per-channel sequence number
	Offset  uint32 // byte offset within the region
}

// Limits from the slide formats.
const (
	FixedPayload = 8  // payload bytes in the fixed format (words 1–2)
	MaxPayload   = 64 // payload bytes in the variable format (words 3–18)
	MaxChannels  = 16 // DMA channels per node (slide 11)
)

// Packet is one MicroPacket. Fixed-format types carry Payload; the DMA
// type carries DMA + Data.
type Packet struct {
	Type  Type
	Flags Flags
	Src   NodeID
	Dst   NodeID // Broadcast for all-nodes delivery
	Tag   uint8  // protocol-defined: sequence, semaphore id, roster wave…

	Payload [FixedPayload]byte // fixed-format payload (slide 5)

	DMA  DMAHeader // variable format only (slide 6)
	Data []byte    // variable payload, len 0..64
}

// Errors returned by Validate and Decode.
var (
	ErrBadType    = errors.New("micropacket: invalid type")
	ErrTooLong    = errors.New("micropacket: variable payload exceeds 64 bytes")
	ErrLengthMism = errors.New("micropacket: DMA length does not match data")
	ErrBadChannel = errors.New("micropacket: DMA channel out of range")
	ErrBadOp      = errors.New("micropacket: invalid D64 atomic op")
)

// Validate checks structural invariants prior to encoding.
func (p *Packet) Validate() error {
	if !p.Type.Valid() {
		return ErrBadType
	}
	if p.Type.Variable() {
		if len(p.Data) > MaxPayload {
			return ErrTooLong
		}
		if int(p.DMA.Length) != len(p.Data) {
			return ErrLengthMism
		}
		if p.DMA.Channel >= MaxChannels {
			return ErrBadChannel
		}
	} else if len(p.Data) != 0 {
		return ErrLengthMism
	}
	if p.Type == TypeD64Atomic && !p.Op().Valid() {
		return ErrBadOp
	}
	return nil
}

// IsBroadcast reports whether the packet targets every node.
func (p *Packet) IsBroadcast() bool { return p.Dst == Broadcast }

// Op returns the atomic operation of a D64 Atomic packet (stored in the
// flag nibble).
func (p *Packet) Op() AtomicOp { return AtomicOp(p.Flags) & 0xF }

// SetOp stores the atomic operation in the flag nibble.
func (p *Packet) SetOp(op AtomicOp) { p.Flags = Flags(op) & 0xF }

// Word64 returns the fixed payload as a little-endian 64-bit value, the
// natural view for D64 Atomic packets.
func (p *Packet) Word64() uint64 {
	return binary.LittleEndian.Uint64(p.Payload[:8])
}

// SetWord64 stores v into the fixed payload, little-endian.
func (p *Packet) SetWord64(v uint64) {
	binary.LittleEndian.PutUint64(p.Payload[:8], v)
}

// PayloadLen returns the number of meaningful payload bytes.
func (p *Packet) PayloadLen() int {
	if p.Type.Variable() {
		return len(p.Data)
	}
	return FixedPayload
}

// Clone returns a deep copy (Data is copied, not aliased). The ring MAC
// clones packets when replicating broadcasts.
func (p *Packet) Clone() *Packet {
	q := *p
	if p.Data != nil {
		q.Data = make([]byte, len(p.Data))
		copy(q.Data, p.Data)
	}
	return &q
}

// String renders a compact description for traces.
func (p *Packet) String() string {
	dst := fmt.Sprintf("%d", p.Dst)
	if p.IsBroadcast() {
		dst = "*"
	}
	if p.Type == TypeD64Atomic {
		return fmt.Sprintf("[%s %s src=%d dst=%s tag=%d val=%d]", p.Type, p.Op(), p.Src, dst, p.Tag, p.Word64())
	}
	if p.Type.Variable() {
		return fmt.Sprintf("[%s src=%d dst=%s ch=%d reg=%d off=%d len=%d]",
			p.Type, p.Src, dst, p.DMA.Channel, p.DMA.Region, p.DMA.Offset, p.DMA.Length)
	}
	return fmt.Sprintf("[%s src=%d dst=%s tag=%d]", p.Type, p.Src, dst, p.Tag)
}

// NewData builds a fixed Data packet with up to 8 payload bytes.
func NewData(src, dst NodeID, tag uint8, payload []byte) *Packet {
	p := &Packet{Type: TypeData, Src: src, Dst: dst, Tag: tag}
	copy(p.Payload[:], payload)
	return p
}

// NewDMA builds a variable DMA packet. data longer than MaxPayload
// panics; callers segment at the DMA layer.
func NewDMA(src, dst NodeID, hdr DMAHeader, data []byte) *Packet {
	if len(data) > MaxPayload {
		panic("micropacket: DMA payload over 64 bytes")
	}
	hdr.Length = uint8(len(data))
	p := &Packet{Type: TypeDMA, Src: src, Dst: dst, DMA: hdr}
	p.Data = make([]byte, len(data))
	copy(p.Data, data)
	return p
}

// NewAtomic builds a D64 Atomic packet for semaphore sem with the given
// operation and operand.
func NewAtomic(src, dst NodeID, sem uint8, op AtomicOp, operand uint64) *Packet {
	p := &Packet{Type: TypeD64Atomic, Src: src, Dst: dst, Tag: sem}
	p.SetOp(op)
	p.SetWord64(operand)
	return p
}

// NewRostering builds a Rostering packet; the 8 payload bytes carry the
// rostering protocol fields (see internal/rostering).
func NewRostering(src NodeID, tag uint8, payload [FixedPayload]byte) *Packet {
	return &Packet{Type: TypeRostering, Src: src, Dst: Broadcast, Tag: tag, Payload: payload}
}

// NewInterrupt builds an Interrupt packet (cross-node doorbell).
func NewInterrupt(src, dst NodeID, vector uint8) *Packet {
	return &Packet{Type: TypeInterrupt, Src: src, Dst: dst, Tag: vector, Flags: FlagPrio}
}

// NewDiagnostic builds a Diagnostic packet carrying a probe code.
func NewDiagnostic(src, dst NodeID, code uint8) *Packet {
	return &Packet{Type: TypeDiagnostic, Src: src, Dst: dst, Tag: code}
}
