// Package failover implements AmpNet's application failover (paper,
// slides 12, 18, 19): network-centric services organized in control
// groups, with millisecond failure detection, an application-definable
// fail-over period, handoff of control to the best qualified computer,
// and application rules of recovery — with no loss of committed data,
// because application state lives in the replicated network cache.
//
//	"Millisecond application failure detection. Application definable
//	 fail-over period. Control passes to the best qualified computer.
//	 Applies Application Rules of Recovery. No down time and no loss
//	 of data!" (slide 19)
//
// Election is deterministic and coordination-free: every member ranks
// the live members the same way (qualification rank, then lowest id),
// so each node can decide locally whether it is now primary. The
// fail-over period is an application-chosen delay between the kernel's
// liveness verdict and the takeover, allowing the application to trade
// fail-over speed against tolerance of transient stalls.
package failover

import (
	"sort"

	"repro/internal/ampdk"
	"repro/internal/detmap"
	"repro/internal/netcache"
	"repro/internal/sim"
)

// GroupConfig declares one control group.
type GroupConfig struct {
	ID      uint8
	Members []int
	// Rank maps member id → qualification; higher is better qualified.
	// Missing entries rank 0. Ties break to the lowest id.
	Rank map[int]int
	// Period is the application-definable fail-over period: how long
	// after the kernel declares the primary dead before control moves.
	Period sim.Time
	// State is the group's checkpoint cell in the network cache (zero
	// value = stateless group). The double buffer guarantees the last
	// committed checkpoint survives a primary that dies mid-write.
	State netcache.DoubleBuffer
}

// HasState reports whether the group checkpoints application state.
func (c *GroupConfig) HasState() bool { return c.State.A.Size > 0 }

// Group is the runtime state of a control group on one node.
type Group struct {
	Cfg     GroupConfig
	primary int
	mgr     *Manager

	// OnTakeover runs on the node that becomes primary; it receives
	// the group's recovered state (nil without a state record) — the
	// application's rules of recovery.
	OnTakeover func(state []byte)
	// OnPrimaryChange runs on every member when the primary moves.
	OnPrimaryChange func(newPrimary int)

	// Takeovers counts how many times this node assumed control.
	Takeovers uint64
	pending   *sim.Timer
}

// Primary returns the group's current primary as this node sees it.
func (g *Group) Primary() int { return g.primary }

// IsPrimary reports whether this node currently holds control.
func (g *Group) IsPrimary() bool { return g.primary == g.mgr.Node.Cfg.ID }

// Manager runs control groups on one node, driven by the kernel's
// heartbeat liveness.
type Manager struct {
	Node   *ampdk.Node
	K      *sim.Kernel
	groups map[uint8]*Group

	// Detections records failure-detection latencies observed locally
	// (kernel verdict time minus nothing app-visible; used by E10 via
	// instrumentation hooks).
	prevDown func(int)
	prevUp   func(int)
}

// NewManager wraps a node. It chains onto the node's peer callbacks,
// preserving any already installed.
func NewManager(n *ampdk.Node) *Manager {
	m := &Manager{Node: n, K: n.K, groups: map[uint8]*Group{}}
	m.prevDown, m.prevUp = n.OnPeerDown, n.OnPeerUp
	n.OnPeerDown = func(id int) {
		if m.prevDown != nil {
			m.prevDown(id)
		}
		m.peerDown(id)
	}
	n.OnPeerUp = func(id int) {
		if m.prevUp != nil {
			m.prevUp(id)
		}
		m.peerUp(id)
	}
	return m
}

// AddGroup registers a control group. The initial primary is the best
// qualified member regardless of liveness (boot convergence happens as
// heartbeats arrive).
func (m *Manager) AddGroup(cfg GroupConfig) *Group {
	g := &Group{Cfg: cfg, mgr: m}
	g.primary = m.bestQualified(g, nil)
	m.groups[cfg.ID] = g
	return g
}

// Group returns a registered group.
func (m *Manager) Group(id uint8) *Group { return m.groups[id] }

// live reports whether member id is believed alive by this node.
func (m *Manager) live(id int, deadOverride map[int]bool) bool {
	if deadOverride[id] {
		return false
	}
	if id == m.Node.Cfg.ID {
		return m.Node.Online()
	}
	for _, p := range m.Node.Peers() {
		if p.ID == id {
			return p.Online
		}
	}
	return false
}

// bestQualified returns the highest-ranked member. With liveness
// unknown at boot (no peers yet), it falls back to rank order over all
// members so that every node starts with the same answer.
func (m *Manager) bestQualified(g *Group, deadOverride map[int]bool) int {
	members := append([]int{}, g.Cfg.Members...)
	sort.Ints(members)
	best, bestRank := -1, -1
	anyLive := false
	for _, id := range members {
		if m.live(id, deadOverride) {
			anyLive = true
			break
		}
	}
	for _, id := range members {
		if anyLive && !m.live(id, deadOverride) {
			continue
		}
		r := g.Cfg.Rank[id]
		if r > bestRank {
			best, bestRank = id, r
		}
	}
	return best
}

// peerDown handles a kernel liveness verdict against a peer.
func (m *Manager) peerDown(id int) {
	// Sorted so fail-over timers are scheduled in group-id order: the
	// elections they trigger mutate shared roster state, and map order
	// here would reorder kernel events between runs.
	for _, gid := range detmap.SortedKeys(m.groups) {
		g := m.groups[gid]
		if g.primary != id {
			continue
		}
		deadID := id
		if g.pending != nil {
			g.pending.Cancel()
		}
		// Application-definable fail-over period: wait, then confirm
		// the primary is still dead before moving control.
		g.pending = m.K.After(g.Cfg.Period, func() {
			if m.live(deadID, nil) {
				return // it came back within the period
			}
			m.elect(g, map[int]bool{deadID: true})
		})
	}
}

// peerUp re-evaluates groups when a better-qualified member returns.
func (m *Manager) peerUp(id int) {
	for _, gid := range detmap.SortedKeys(m.groups) {
		if g := m.groups[gid]; g.primary < 0 {
			m.elect(g, nil)
		}
	}
}

// elect recomputes the primary and, if control arrives here, applies
// the application's rules of recovery with the replicated state.
func (m *Manager) elect(g *Group, dead map[int]bool) {
	newP := m.bestQualified(g, dead)
	if newP == g.primary {
		return
	}
	g.primary = newP
	if g.OnPrimaryChange != nil {
		g.OnPrimaryChange(newP)
	}
	if newP == m.Node.Cfg.ID {
		g.Takeovers++
		if g.OnTakeover != nil {
			var state []byte
			if g.Cfg.HasState() {
				// The state is already local — that is the network
				// cache's whole point. The double buffer returns the
				// last committed checkpoint even if the old primary
				// died mid-write.
				state, _, _ = g.Cfg.State.Read(m.Node.Cache)
			}
			g.OnTakeover(state)
		}
	}
}

// CheckpointState lets the current primary persist application state to
// the group's checkpoint cell (write-through, replicated everywhere).
func (g *Group) CheckpointState(data []byte) error {
	return g.Cfg.State.Write(g.mgr.Node.CacheW, data)
}

// ReadState returns the group's last committed checkpoint from the
// local replica.
func (g *Group) ReadState() (data []byte, version uint64, ok bool) {
	return g.Cfg.State.Read(g.mgr.Node.Cache)
}
