package failover

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/ampdk"
	"repro/internal/netcache"
	"repro/internal/phys"
	"repro/internal/sim"
)

// rig boots an n-node cluster with a failover manager on every node and
// one control group spanning all nodes.
type rig struct {
	k     *sim.Kernel
	c     *phys.Cluster
	nodes []*ampdk.Node
	mgrs  []*Manager
	grps  []*Group
}

func newRig(t *testing.T, n int, gcfg GroupConfig) *rig {
	t.Helper()
	k := sim.NewKernel(1)
	net := phys.NewNet(k)
	c := phys.BuildCluster(net, n, 2, 50)
	r := &rig{k: k, c: c}
	for i := 0; i < n; i++ {
		nd := ampdk.NewNode(k, c, ampdk.Config{ID: i, Regions: map[uint8]int{1: 4096}})
		r.nodes = append(r.nodes, nd)
		m := NewManager(nd)
		r.mgrs = append(r.mgrs, m)
		r.grps = append(r.grps, m.AddGroup(gcfg))
	}
	for _, nd := range r.nodes {
		nd := nd
		k.After(0, func() { nd.Boot() })
	}
	r.run(20 * sim.Millisecond)
	for i, nd := range r.nodes {
		if !nd.Online() {
			t.Fatalf("node %d not online at rig start", i)
		}
	}
	return r
}

func (r *rig) run(d sim.Time) { r.k.RunUntil(r.k.Now() + d) }

func groupCfg(n int) GroupConfig {
	members := make([]int, n)
	rank := map[int]int{}
	for i := range members {
		members[i] = i
		rank[i] = n - i // node 0 best qualified
	}
	return GroupConfig{
		ID: 1, Members: members, Rank: rank,
		Period: 500 * sim.Microsecond,
		State:  netcache.NewDoubleBuffer(1, 0, 32),
	}
}

func TestInitialPrimaryIsBestQualified(t *testing.T) {
	r := newRig(t, 4, groupCfg(4))
	for i, g := range r.grps {
		if g.Primary() != 0 {
			t.Fatalf("node %d thinks primary = %d", i, g.Primary())
		}
	}
	if !r.grps[0].IsPrimary() || r.grps[1].IsPrimary() {
		t.Fatal("IsPrimary wrong")
	}
}

func TestFailoverToNextQualified(t *testing.T) {
	r := newRig(t, 4, groupCfg(4))
	took := make([]int, 4)
	for i, g := range r.grps {
		i := i
		g.OnTakeover = func(state []byte) { took[i]++ }
	}
	r.k.After(0, func() { r.nodes[0].AppFail() })
	r.run(20 * sim.Millisecond)
	for i := 1; i < 4; i++ {
		if r.grps[i].Primary() != 1 {
			t.Fatalf("node %d: primary = %d, want 1", i, r.grps[i].Primary())
		}
	}
	if took[1] != 1 {
		t.Fatalf("takeovers at node 1 = %d, want 1", took[1])
	}
	if took[2] != 0 && took[3] != 0 {
		t.Fatal("non-elected nodes took over")
	}
}

func TestFailoverLatencyTracksPeriod(t *testing.T) {
	for _, period := range []sim.Time{200 * sim.Microsecond, 2 * sim.Millisecond} {
		cfg := groupCfg(3)
		cfg.Period = period
		r := newRig(t, 3, cfg)
		var failAt, tookAt sim.Time
		r.grps[1].OnTakeover = func([]byte) { tookAt = r.k.Now() }
		r.k.After(0, func() { failAt = r.k.Now(); r.nodes[0].AppFail() })
		r.run(30 * sim.Millisecond)
		if tookAt == 0 {
			t.Fatalf("period %v: no takeover", period)
		}
		lat := tookAt - failAt
		// Latency = detection (≈750µs+tick) + the fail-over period.
		min := period
		max := period + 2*sim.Millisecond
		if lat < min || lat > max {
			t.Fatalf("period %v: failover latency %v outside [%v, %v]", period, lat, min, max)
		}
	}
}

func TestPrimaryReturningWithinPeriodKeepsControl(t *testing.T) {
	cfg := groupCfg(3)
	cfg.Period = 10 * sim.Millisecond // long period
	r := newRig(t, 3, cfg)
	takeovers := 0
	r.grps[1].OnTakeover = func([]byte) { takeovers++ }
	// Fail and recover the primary inside the fail-over period.
	r.k.After(0, func() { r.nodes[0].AppFail() })
	r.k.After(3*sim.Millisecond, func() { r.nodes[0].Reboot() })
	r.run(40 * sim.Millisecond)
	if takeovers != 0 {
		t.Fatalf("takeover happened despite primary returning within period")
	}
	if r.grps[1].Primary() != 0 {
		t.Fatalf("primary = %d, want 0 retained", r.grps[1].Primary())
	}
}

func TestStateSurvivesFailover(t *testing.T) {
	r := newRig(t, 3, groupCfg(3))
	// Primary checkpoints state.
	want := bytes.Repeat([]byte{0x77}, 32)
	r.k.After(0, func() {
		if err := r.grps[0].CheckpointState(want); err != nil {
			t.Error(err)
		}
	})
	r.run(5 * sim.Millisecond)
	var recovered []byte
	r.grps[1].OnTakeover = func(state []byte) { recovered = state }
	r.k.After(0, func() { r.nodes[0].AppFail() })
	r.run(20 * sim.Millisecond)
	if !bytes.Equal(recovered, want) {
		t.Fatalf("recovered state = %v, want checkpoint", recovered)
	}
}

// TestNoDataLossWhenPrimaryDiesMidCheckpoint: the double buffer must
// hand the survivor the last COMMITTED checkpoint even when the crash
// interrupts a checkpoint broadcast halfway.
func TestNoDataLossWhenPrimaryDiesMidCheckpoint(t *testing.T) {
	r := newRig(t, 3, groupCfg(3))
	commit1 := make([]byte, 32)
	binary.LittleEndian.PutUint64(commit1, 111)
	r.k.After(0, func() {
		if err := r.grps[0].CheckpointState(commit1); err != nil {
			t.Error(err)
		}
	})
	r.run(5 * sim.Millisecond)
	// Second checkpoint: crash the primary before the broadcast drains
	// (local apply is immediate; replication is in flight).
	commit2 := make([]byte, 32)
	binary.LittleEndian.PutUint64(commit2, 222)
	r.k.After(0, func() {
		r.grps[0].CheckpointState(commit2)
		r.nodes[0].Crash() // kills links; in-flight updates lost
	})
	var recovered []byte
	r.grps[1].OnTakeover = func(state []byte) { recovered = state }
	r.run(30 * sim.Millisecond)
	if recovered == nil {
		t.Fatal("no takeover")
	}
	got := binary.LittleEndian.Uint64(recovered)
	if got != 111 && got != 222 {
		t.Fatalf("recovered %d — neither committed checkpoint (data loss)", got)
	}
}

func TestCascadingFailover(t *testing.T) {
	r := newRig(t, 4, groupCfg(4))
	r.k.After(0, func() { r.nodes[0].AppFail() })
	r.run(20 * sim.Millisecond)
	r.k.After(0, func() { r.nodes[1].AppFail() })
	r.run(20 * sim.Millisecond)
	for i := 2; i < 4; i++ {
		if r.grps[i].Primary() != 2 {
			t.Fatalf("node %d primary = %d after cascade, want 2", i, r.grps[i].Primary())
		}
	}
}

func TestRankOverridesID(t *testing.T) {
	cfg := groupCfg(3)
	cfg.Rank = map[int]int{0: 1, 1: 5, 2: 9} // node 2 best
	r := newRig(t, 3, cfg)
	// All alive: best qualified is node 2 even though id order favors 0.
	for i, g := range r.grps {
		if g.Primary() != 2 {
			t.Fatalf("node %d primary = %d, want 2", i, g.Primary())
		}
	}
}

func TestOnPrimaryChangeFiresEverywhere(t *testing.T) {
	r := newRig(t, 3, groupCfg(3))
	changed := make([]int, 3)
	for i, g := range r.grps {
		i := i
		g.OnPrimaryChange = func(p int) { changed[i] = p }
	}
	r.k.After(0, func() { r.nodes[0].Crash() })
	r.run(30 * sim.Millisecond)
	for i := 1; i < 3; i++ {
		if changed[i] != 1 {
			t.Fatalf("node %d saw primary change to %d, want 1", i, changed[i])
		}
	}
}

func TestStatelessGroup(t *testing.T) {
	cfg := groupCfg(2)
	cfg.State = netcache.DoubleBuffer{}
	r := newRig(t, 2, cfg)
	var got []byte = []byte{9}
	r.grps[1].OnTakeover = func(state []byte) { got = state }
	r.k.After(0, func() { r.nodes[0].AppFail() })
	r.run(20 * sim.Millisecond)
	if got != nil {
		t.Fatal("stateless group passed state")
	}
}
