package failover

import (
	"testing"

	"repro/internal/netcache"
	"repro/internal/sim"
)

// TestGroupSubsetOfCluster: a control group spanning only some nodes
// elects within its membership.
func TestGroupSubsetOfCluster(t *testing.T) {
	cfg := GroupConfig{
		ID: 2, Members: []int{1, 3},
		Rank:   map[int]int{1: 2, 3: 1},
		Period: 500 * sim.Microsecond,
	}
	r := newRig(t, 4, cfg)
	for i, g := range r.grps {
		if g.Primary() != 1 {
			t.Fatalf("node %d primary = %d", i, g.Primary())
		}
	}
	// Failing a non-member changes nothing.
	r.k.After(0, func() { r.nodes[0].AppFail() })
	r.run(20 * sim.Millisecond)
	if r.grps[2].Primary() != 1 {
		t.Fatalf("non-member failure moved control to %d", r.grps[2].Primary())
	}
	// Failing the member primary moves within the membership.
	r.k.After(0, func() { r.nodes[1].AppFail() })
	r.run(20 * sim.Millisecond)
	if r.grps[3].Primary() != 3 {
		t.Fatalf("primary = %d, want 3", r.grps[3].Primary())
	}
}

// TestMultipleGroupsIndependent: two groups with different primaries
// fail over independently.
func TestMultipleGroupsIndependent(t *testing.T) {
	cfgA := GroupConfig{
		ID: 1, Members: []int{0, 1, 2},
		Rank:   map[int]int{0: 3, 1: 2, 2: 1},
		Period: 300 * sim.Microsecond,
		State:  netcache.NewDoubleBuffer(1, 0, 8),
	}
	r := newRig(t, 3, cfgA)
	cfgB := GroupConfig{
		ID: 2, Members: []int{0, 1, 2},
		Rank:   map[int]int{2: 3, 1: 2, 0: 1}, // node 2 leads group B
		Period: 300 * sim.Microsecond,
		State:  netcache.NewDoubleBuffer(1, 256, 8),
	}
	var grpsB []*Group
	for _, m := range r.mgrs {
		grpsB = append(grpsB, m.AddGroup(cfgB))
	}
	r.run(5 * sim.Millisecond)
	if r.grps[1].Primary() != 0 || grpsB[1].Primary() != 2 {
		t.Fatalf("primaries = %d/%d, want 0/2", r.grps[1].Primary(), grpsB[1].Primary())
	}
	// Kill node 2: group B moves, group A stays.
	r.k.After(0, func() { r.nodes[2].AppFail() })
	r.run(20 * sim.Millisecond)
	if r.grps[1].Primary() != 0 {
		t.Fatalf("group A moved to %d", r.grps[1].Primary())
	}
	if grpsB[1].Primary() != 1 {
		t.Fatalf("group B primary = %d, want 1", grpsB[1].Primary())
	}
}

// TestCheckpointVersioningAcrossTakeovers: the new primary's
// checkpoints continue the version sequence, so a later failback
// recovers the newest state.
func TestCheckpointVersioningAcrossTakeovers(t *testing.T) {
	r := newRig(t, 3, groupCfg(3))
	r.k.After(0, func() {
		r.grps[0].CheckpointState(mkState(1))
		r.grps[0].CheckpointState(mkState(2))
	})
	r.run(5 * sim.Millisecond)
	r.grps[1].OnTakeover = func(state []byte) {
		// New primary checkpoints on top of the recovered state.
		r.grps[1].CheckpointState(mkState(3))
	}
	r.k.After(0, func() { r.nodes[0].AppFail() })
	r.run(20 * sim.Millisecond)
	// Node 2 (bystander) must see version 3 as newest.
	data, ver, ok := r.grps[2].ReadState()
	if !ok || data[0] != 3 {
		t.Fatalf("state = %v ok=%v", data[:2], ok)
	}
	if ver != 3 {
		t.Fatalf("version = %d, want 3", ver)
	}
}

func mkState(v byte) []byte {
	b := make([]byte, 32)
	for i := range b {
		b[i] = v
	}
	return b
}
