package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKernelOrdering(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.After(30, func() { got = append(got, 3) })
	k.After(10, func() { got = append(got, 1) })
	k.After(20, func() { got = append(got, 2) })
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if k.Now() != 30 {
		t.Fatalf("clock = %v, want 30", k.Now())
	}
}

func TestKernelFIFOAtSameInstant(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(50, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO at %d: %v", i, got[:i+1])
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel(1)
	var trace []Time
	k.After(10, func() {
		trace = append(trace, k.Now())
		k.After(5, func() {
			trace = append(trace, k.Now())
		})
	})
	k.Run()
	if len(trace) != 2 || trace[0] != 10 || trace[1] != 15 {
		t.Fatalf("nested schedule trace = %v", trace)
	}
}

func TestKernelSchedulePastPanics(t *testing.T) {
	k := NewKernel(1)
	k.After(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(50, func() {})
	})
	k.Run()
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	k.After(10, func() { fired++ })
	k.After(100, func() { fired++ })
	k.RunUntil(50)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if k.Now() != 50 {
		t.Fatalf("clock = %v, want 50 (advanced to deadline)", k.Now())
	}
	k.Run()
	if fired != 2 {
		t.Fatalf("fired = %d after Run, want 2", fired)
	}
}

func TestRunUntilEmptyQueueAdvancesClock(t *testing.T) {
	k := NewKernel(1)
	k.RunUntil(1234)
	if k.Now() != 1234 {
		t.Fatalf("clock = %v, want 1234", k.Now())
	}
}

func TestTimerCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	tm := k.After(10, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer should be active before firing")
	}
	tm.Cancel()
	k.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if tm.Active() {
		t.Fatal("cancelled timer reports active")
	}
}

func TestTimerReset(t *testing.T) {
	k := NewKernel(1)
	var at Time = -1
	tm := k.After(10, func() { at = k.Now() })
	tm.Reset(100)
	k.Run()
	if at != 100 {
		t.Fatalf("reset timer fired at %v, want 100", at)
	}
}

func TestStop(t *testing.T) {
	k := NewKernel(1)
	n := 0
	for i := 0; i < 10; i++ {
		k.After(Time(i+1), func() {
			n++
			if n == 3 {
				k.Stop()
			}
		})
	}
	k.Run()
	if n != 3 {
		t.Fatalf("executed %d events after Stop, want 3", n)
	}
	k.Run() // resume
	if n != 10 {
		t.Fatalf("executed %d total events, want 10", n)
	}
}

func TestStep(t *testing.T) {
	k := NewKernel(1)
	n := 0
	k.After(1, func() { n++ })
	k.After(2, func() { n++ })
	if !k.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !k.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if k.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestPending(t *testing.T) {
	k := NewKernel(1)
	t1 := k.After(1, func() {})
	k.After(2, func() {})
	if k.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", k.Pending())
	}
	t1.Cancel()
	if k.Pending() != 1 {
		t.Fatalf("pending after cancel = %d, want 1", k.Pending())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []uint64 {
		k := NewKernel(42)
		var out []uint64
		var tick func()
		tick = func() {
			out = append(out, k.RNG().Uint64())
			if len(out) < 50 {
				k.After(k.RNG().Duration(100), tick)
			}
		}
		k.After(0, tick)
		k.Run()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d != %d", i, a[i], b[i])
		}
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0ns"},
		{500, "500ns"},
		{1500, "1.500µs"},
		{2500000, "2.500ms"},
		{3 * Second, "3.000000s"},
		{-500, "-500ns"},
		{MaxTime, "9223372036.854776s"},
		// MinInt64 has no positive negation; the historical t < 0
		// branch overflowed on it.
		{Time(math.MinInt64), "-9223372036.854776s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverge at step %d", i)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		p := r.Perm(32)
		seen := make([]bool, 32)
		for _, v := range p {
			if v < 0 || v >= 32 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGExpPositiveAndMean(t *testing.T) {
	r := NewRNG(9)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(1000)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += float64(v)
	}
	mean := sum / n
	if mean < 900 || mean > 1100 {
		t.Fatalf("Exp(1000) sample mean = %.1f, want ≈1000", mean)
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	r := NewRNG(5)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("split RNG streams identical (suspicious)")
	}
}

func TestSampleStats(t *testing.T) {
	s := NewSample("lat")
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	if s.N() != 100 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 50.5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if p := s.Percentile(50); p != 50 {
		t.Fatalf("p50 = %v", p)
	}
	if p := s.Percentile(99); p != 99 {
		t.Fatalf("p99 = %v", p)
	}
	if p := s.Percentile(0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := s.Percentile(100); p != 100 {
		t.Fatalf("p100 = %v", p)
	}
}

func TestSampleEmpty(t *testing.T) {
	s := NewSample("empty")
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 || s.Stddev() != 0 {
		t.Fatal("empty sample stats should all be 0")
	}
}

func TestSampleStddev(t *testing.T) {
	s := NewSample("sd")
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if got := s.Stddev(); got < 1.99 || got > 2.01 {
		t.Fatalf("Stddev = %v, want 2", got)
	}
}

func TestRate(t *testing.T) {
	r := NewRate("bytes", 0)
	r.Add(1e9)
	if got := r.Per(Second); got != 1e9 {
		t.Fatalf("rate = %v, want 1e9/s", got)
	}
	if got := r.Per(0); got != 0 {
		t.Fatalf("rate at zero elapsed = %v, want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram("h", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	if h.Total() != 3 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 1 {
		t.Fatalf("bucket counts = %v", h.Counts)
	}
	want := (5.0 + 50 + 500) / 3
	if h.Mean() != want {
		t.Fatalf("mean = %v, want %v", h.Mean(), want)
	}
}

func TestCounter(t *testing.T) {
	c := &Counter{Name: "c"}
	c.Inc()
	c.Add(4)
	if c.N != 5 {
		t.Fatalf("counter = %d, want 5", c.N)
	}
}
