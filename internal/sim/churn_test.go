package sim

import "testing"

// Heartbeat-heavy workloads (rostering, failover) continuously arm and
// cancel timers. Cancelled events must leave the heap immediately —
// dead entries must not accumulate.
func TestCancelChurnBoundsHeap(t *testing.T) {
	k := NewKernel(1)
	const rounds = 10000
	for i := 0; i < rounds; i++ {
		tm := k.After(Time(1000+i), func() { t.Error("cancelled timer fired") })
		tm.Cancel()
		if n := len(k.events); n != 0 {
			t.Fatalf("round %d: %d events on heap after cancel, want 0", i, n)
		}
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending = %d after churn, want 0", k.Pending())
	}
	if n := cap(k.events); n > 4 {
		t.Fatalf("heap storage grew to cap %d across churn, want ≤4 (entries stored inline, slots reused)", n)
	}
	k.Run()
}

func TestResetChurnBoundsHeap(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	tm := k.After(10, func() { fired++ })
	const rounds = 10000
	for i := 0; i < rounds; i++ {
		tm.Reset(Time(10 + i))
		if n := len(k.events); n != 1 {
			t.Fatalf("round %d: %d events on heap after Reset, want 1", i, n)
		}
	}
	k.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want exactly 1 after Reset churn", fired)
	}
}

// A hostile mix: many live timers interleaved with cancellations in the
// middle of the heap. Pending must track exactly and the heap must hold
// only live events.
func TestInterleavedCancelKeepsHeapLive(t *testing.T) {
	k := NewKernel(1)
	var timers []*Timer
	fired := 0
	for i := 0; i < 1000; i++ {
		timers = append(timers, k.After(Time(i+1), func() { fired++ }))
	}
	for i := 0; i < 1000; i += 2 {
		timers[i].Cancel()
	}
	if k.Pending() != 500 {
		t.Fatalf("Pending = %d, want 500", k.Pending())
	}
	k.Run()
	if fired != 500 {
		t.Fatalf("fired = %d, want 500", fired)
	}
}

// Nil and zero Timers must be inert for Cancel, Active and Reset alike
// (Reset used to dereference t.e.fn unconditionally).
func TestNilAndZeroTimerSafe(t *testing.T) {
	var nilTimer *Timer
	nilTimer.Cancel()
	nilTimer.Reset(10)
	if nilTimer.Active() {
		t.Fatal("nil timer active")
	}
	var zero Timer
	zero.Cancel()
	zero.Reset(10)
	if zero.Active() {
		t.Fatal("zero timer active")
	}
}

// A Timer handle whose event was recycled into a new event must not be
// able to cancel the new owner's event.
func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	k := NewKernel(1)
	first := k.After(1, func() {})
	k.Run() // fires and recycles the event
	fired := false
	k.After(5, func() { fired = true }) // reuses the recycled event
	first.Cancel()                      // stale handle: must be a no-op
	if k.Pending() != 1 {
		t.Fatalf("stale Cancel removed a live event (Pending = %d)", k.Pending())
	}
	k.Run()
	if !fired {
		t.Fatal("live event did not fire after stale Cancel")
	}
}

func TestDoubleCancelSafe(t *testing.T) {
	k := NewKernel(1)
	tm := k.After(10, func() { t.Error("cancelled timer fired") })
	tm.Cancel()
	tm.Cancel()
	tm2 := k.After(20, func() {})
	k.Run()
	_ = tm2
}

// Reset on a cancelled timer re-arms the original callback; Cancel on a
// Reset-moved timer cancels the new event.
func TestResetAfterCancelRearms(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	tm := k.After(10, func() { fired++ })
	tm.Cancel()
	tm.Reset(30)
	if !tm.Active() {
		t.Fatal("timer inactive after Reset")
	}
	k.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if k.Now() != 30 {
		t.Fatalf("fired at %v, want 30", k.Now())
	}
}

func TestSampleMinMaxIncremental(t *testing.T) {
	s := NewSample("x")
	s.Observe(5)
	s.Observe(-3)
	s.Observe(9)
	if s.Min() != -3 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v, want -3/9", s.Min(), s.Max())
	}
	// Min/Max must not sort vals (percentile order preserved after).
	if s.vals[0] != 5 || s.vals[1] != -3 || s.vals[2] != 9 {
		t.Fatalf("Min/Max mutated observation order: %v", s.vals)
	}
}
