// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every AmpNet experiment runs on sim's virtual clock: the physical layer,
// the register-insertion MAC, rostering, the network cache, and failover
// are all scheduled as events with nanosecond-resolution virtual time.
// Determinism is guaranteed by a stable event ordering (time, then FIFO
// sequence number) and by the seeded splitmix64 RNG in this package, so
// every run of an experiment is exactly reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is virtual simulation time in nanoseconds since the start of the
// run. It is deliberately a distinct type from time.Duration so that
// wall-clock values cannot be mixed into the simulation by accident.
type Time int64

// Common durations expressed in simulation Time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// String renders a Time with an adaptive unit, e.g. "1.500ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%s", (-t).String())
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
	}
}

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// event is a scheduled callback. seq breaks ties FIFO so that two events
// scheduled for the same instant fire in scheduling order, which keeps
// runs deterministic.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool // cancelled timers are marked dead and skipped
	idx  int  // heap index, maintained by eventHeap
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Kernel is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; all model code runs inside event callbacks on the
// kernel's (single) logical thread, which is the standard DES discipline
// and what makes the simulation deterministic.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	rng     *RNG
	stopped bool

	// Fired counts events executed; useful for run-cost reporting.
	Fired uint64
}

// NewKernel returns a kernel with virtual time 0 and an RNG seeded with
// seed (deterministic for a given seed).
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random source.
func (k *Kernel) RNG() *RNG { return k.rng }

// Pending returns the number of scheduled (non-cancelled) events.
func (k *Kernel) Pending() int {
	n := 0
	for _, e := range k.events {
		if !e.dead {
			n++
		}
	}
	return n
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: it indicates a model bug that would break causality.
func (k *Kernel) At(t Time, fn func()) *Timer {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, k.now))
	}
	e := &event{at: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.events, e)
	return &Timer{k: k, e: e}
}

// After schedules fn to run d nanoseconds from now.
func (k *Kernel) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// Stop makes Run return after the current event completes. Pending
// events remain queued; Run can be called again to resume.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue is empty or Stop is called.
// It returns the final virtual time.
func (k *Kernel) Run() Time { return k.RunUntil(MaxTime) }

// RunUntil executes events with at <= deadline. The clock is left at
// min(deadline, time of last event) — or advanced to deadline when the
// queue empties first, so RunUntil composes with subsequent After calls.
func (k *Kernel) RunUntil(deadline Time) Time {
	k.stopped = false
	for len(k.events) > 0 && !k.stopped {
		e := k.events[0]
		if e.at > deadline {
			break
		}
		heap.Pop(&k.events)
		if e.dead {
			continue
		}
		if e.at < k.now {
			panic("sim: time went backwards")
		}
		k.now = e.at
		k.Fired++
		e.fn()
	}
	if k.now < deadline && deadline != MaxTime {
		k.now = deadline
	}
	return k.now
}

// Step executes exactly one pending event (skipping cancelled ones) and
// returns true, or returns false if the queue is empty.
func (k *Kernel) Step() bool {
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(*event)
		if e.dead {
			continue
		}
		k.now = e.at
		k.Fired++
		e.fn()
		return true
	}
	return false
}

// Timer is a handle to a scheduled event that can be cancelled or
// rescheduled.
type Timer struct {
	k *Kernel
	e *event
}

// Cancel prevents the timer's callback from running. It is safe to call
// more than once and after the event has fired.
func (t *Timer) Cancel() {
	if t == nil || t.e == nil {
		return
	}
	t.e.dead = true
}

// Active reports whether the callback is still scheduled to run.
func (t *Timer) Active() bool {
	return t != nil && t.e != nil && !t.e.dead && t.e.idx >= 0
}

// Reset cancels the timer and reschedules its callback d from now.
func (t *Timer) Reset(d Time) {
	fn := t.e.fn
	t.Cancel()
	nt := t.k.After(d, fn)
	t.e = nt.e
}
