// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every AmpNet experiment runs on sim's virtual clock: the physical layer,
// the register-insertion MAC, rostering, the network cache, and failover
// are all scheduled as events with nanosecond-resolution virtual time.
// Determinism is guaranteed by a stable event ordering (time, then FIFO
// sequence number) and by the seeded splitmix64 RNG in this package, so
// every run of an experiment is exactly reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is virtual simulation time in nanoseconds since the start of the
// run. It is deliberately a distinct type from time.Duration so that
// wall-clock values cannot be mixed into the simulation by accident.
type Time int64

// Common durations expressed in simulation Time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// String renders a Time with an adaptive unit, e.g. "1.500ms".
func (t Time) String() string {
	switch {
	case t == math.MinInt64:
		// -t would overflow (there is no positive MinInt64); render the
		// magnitude directly from the unsigned negation.
		return fmt.Sprintf("-%.6fs", float64(uint64(1)<<63)/float64(Second))
	case t < 0:
		return fmt.Sprintf("-%s", (-t).String())
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
	}
}

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// event is a scheduled callback. Ties at the same instant are broken
// by the priority key (priT, priH) and then FIFO by seq, so two events
// scheduled for the same instant fire in a deterministic order.
//
// Plain At/After events key priT with their scheduling time, which
// makes (at, priT, seq) order identical to the historical (at, seq)
// FIFO order — sequence numbers are assigned in scheduling order. The
// key exists for the physical layer: frame deliveries carry their
// (transmit-start time, port identity) explicitly, so that
// same-instant arrivals are ordered by when their bits hit the fiber —
// a property of the modeled hardware that is identical whether the
// fabric runs on one kernel or on the sharded parallel engine, whose
// cross-shard frames are scheduled at window barriers (with late local
// sequence numbers) but with their true wire keys.
//
// Events are recycled through the kernel's free list once they fire or
// are cancelled; gen is bumped on every recycle so that a stale Timer
// handle can never mistake a reused event for its own.
type event struct {
	at   Time
	priT Time   // primary tie-break: transmit start (0 for plain events)
	priH uint32 // secondary tie-break: stable port identity hash
	seq  uint64
	fn   func()
	idx  int    // heap index, maintained by eventHeap; -1 once off the heap
	gen  uint64 // reuse generation, matched against Timer.gen
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].priT != h[j].priT {
		return h[i].priT < h[j].priT
	}
	if h[i].priH != h[j].priH {
		return h[i].priH < h[j].priH
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Kernel is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; all model code runs inside event callbacks on the
// kernel's (single) logical thread, which is the standard DES discipline
// and what makes the simulation deterministic.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	free    []*event // recycled events, reused by schedule
	rng     *RNG
	stopped bool

	// Fired counts events executed; useful for run-cost reporting.
	Fired uint64
}

// NewKernel returns a kernel with virtual time 0 and an RNG seeded with
// seed (deterministic for a given seed).
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random source.
func (k *Kernel) RNG() *RNG { return k.rng }

// Pending returns the number of scheduled events. Cancelled events are
// removed from the heap eagerly, so this is an O(1) live count.
func (k *Kernel) Pending() int { return len(k.events) }

// schedule queues fn at absolute time t with tie-break key (priT,
// priH), reusing a recycled event when one is available.
func (k *Kernel) schedule(t Time, priT Time, priH uint32, fn func()) *event {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, k.now))
	}
	var e *event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		e.at, e.priT, e.priH, e.seq, e.fn = t, priT, priH, k.seq, fn
	} else {
		e = &event{at: t, priT: priT, priH: priH, seq: k.seq, fn: fn}
	}
	k.seq++
	heap.Push(&k.events, e)
	return e
}

// recycle returns an event to the free list and invalidates any Timer
// handles still pointing at it.
func (k *Kernel) recycle(e *event) {
	e.fn = nil
	e.gen++
	k.free = append(k.free, e)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: it indicates a model bug that would break causality.
func (k *Kernel) At(t Time, fn func()) *Timer {
	e := k.schedule(t, k.now, 0, fn)
	return &Timer{k: k, e: e, gen: e.gen, fn: fn}
}

// AtPri schedules fn at absolute time t with an explicit same-instant
// tie-break key: events at equal t run in ascending (priT, priH, FIFO)
// order. Plain At/After events carry (scheduling time, 0), so an
// explicit key slots into the same-instant order exactly where an
// event scheduled at priT would have — the physical layer uses this to
// key frame deliveries by transmit start and port identity, keeping
// the order engine-independent.
func (k *Kernel) AtPri(t, priT Time, priH uint32, fn func()) *Timer {
	e := k.schedule(t, priT, priH, fn)
	return &Timer{k: k, e: e, gen: e.gen, fn: fn}
}

// After schedules fn to run d nanoseconds from now.
func (k *Kernel) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// Stop makes Run return after the current event completes. Pending
// events remain queued; Run can be called again to resume.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue is empty or Stop is called.
// It returns the final virtual time.
func (k *Kernel) Run() Time { return k.RunUntil(MaxTime) }

// RunUntil executes events with at <= deadline. The clock is left at
// min(deadline, time of last event) — or advanced to deadline when the
// queue empties first, so RunUntil composes with subsequent After calls.
func (k *Kernel) RunUntil(deadline Time) Time {
	k.stopped = false
	for len(k.events) > 0 && !k.stopped {
		e := k.events[0]
		if e.at > deadline {
			break
		}
		heap.Pop(&k.events)
		if e.at < k.now {
			panic("sim: time went backwards")
		}
		k.now = e.at
		k.Fired++
		fn := e.fn
		k.recycle(e)
		fn()
	}
	if k.now < deadline && deadline != MaxTime {
		k.now = deadline
	}
	return k.now
}

// NextEventTime returns the time of the earliest pending event, or
// (MaxTime, false) when the queue is empty. The parallel engine uses it
// to skip dead time between lookahead windows.
func (k *Kernel) NextEventTime() (Time, bool) {
	if len(k.events) == 0 {
		return MaxTime, false
	}
	return k.events[0].at, true
}

// AdvanceTo moves the clock forward to t without executing anything.
// It panics if an event is still pending before t — advancing over it
// would break causality. The parallel engine uses it to line every
// shard's clock up on a window boundary before injecting cross-shard
// work at that instant.
func (k *Kernel) AdvanceTo(t Time) {
	if t < k.now {
		panic(fmt.Sprintf("sim: AdvanceTo %v before now %v", t, k.now))
	}
	if len(k.events) > 0 && k.events[0].at < t {
		panic(fmt.Sprintf("sim: AdvanceTo %v over pending event at %v", t, k.events[0].at))
	}
	k.now = t
}

// Park moves the clock forward to t without executing anything — even
// over pending events, which AdvanceTo refuses. It exists for mirrored
// replicas (the internal/core shard workers): a worker keeps every
// remote shard's kernel as construction context only and never runs
// it, but must keep its clock on the barrier instant so coordinator
// actions applied from a remote node's context (a reboot's join
// broadcast, say) stamp the same virtual times the coordinator stamps.
// Events left pending behind the clock stay queued and must never run;
// a parked-over kernel is clock-and-schedule context only.
func (k *Kernel) Park(t Time) {
	if t > k.now {
		k.now = t
	}
}

// Step executes exactly one pending event and returns true, or returns
// false if the queue is empty.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(*event)
	k.now = e.at
	k.Fired++
	fn := e.fn
	k.recycle(e)
	fn()
	return true
}

// Timer is a handle to a scheduled event that can be cancelled or
// rescheduled. The zero Timer and the nil *Timer are inert: Cancel,
// Active and Reset are all safe no-ops on them.
type Timer struct {
	k   *Kernel
	e   *event
	gen uint64 // generation of e when this handle was issued
	fn  func() // retained so Reset can re-arm after the event fired
}

// Cancel prevents the timer's callback from running. The event is
// removed from the heap immediately (no dead entries accumulate under
// cancel-heavy workloads). It is safe to call more than once and after
// the event has fired.
func (t *Timer) Cancel() {
	if t == nil || t.e == nil || t.k == nil {
		return
	}
	e := t.e
	t.e = nil
	if e.gen != t.gen || e.idx < 0 {
		return // already fired, cancelled, or recycled
	}
	heap.Remove(&t.k.events, e.idx)
	t.k.recycle(e)
}

// Active reports whether the callback is still scheduled to run.
func (t *Timer) Active() bool {
	return t != nil && t.e != nil && t.e.gen == t.gen && t.e.idx >= 0
}

// Reset cancels the timer (if still pending) and reschedules its
// callback d from now. Like Cancel it is nil- and zero-value-safe, and
// it works after the event has fired (re-arming the same callback).
func (t *Timer) Reset(d Time) {
	if t == nil || t.k == nil || t.fn == nil {
		return
	}
	t.Cancel()
	if d < 0 {
		d = 0
	}
	e := t.k.schedule(t.k.now+d, t.k.now, 0, t.fn)
	t.e, t.gen = e, e.gen
}
