// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every AmpNet experiment runs on sim's virtual clock: the physical layer,
// the register-insertion MAC, rostering, the network cache, and failover
// are all scheduled as events with nanosecond-resolution virtual time.
// Determinism is guaranteed by a stable event ordering (time, then FIFO
// sequence number) and by the seeded splitmix64 RNG in this package, so
// every run of an experiment is exactly reproducible.
package sim

import (
	"fmt"
	"math"
)

// Time is virtual simulation time in nanoseconds since the start of the
// run. It is deliberately a distinct type from time.Duration so that
// wall-clock values cannot be mixed into the simulation by accident.
type Time int64

// Common durations expressed in simulation Time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// String renders a Time with an adaptive unit, e.g. "1.500ms".
func (t Time) String() string {
	switch {
	case t == math.MinInt64:
		// -t would overflow (there is no positive MinInt64); render the
		// magnitude directly from the unsigned negation.
		return fmt.Sprintf("-%.6fs", float64(uint64(1)<<63)/float64(Second))
	case t < 0:
		return fmt.Sprintf("-%s", (-t).String())
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
	}
}

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// entry is a scheduled callback, stored inline in the kernel's heap
// slice. Ties at the same instant are broken by the priority key
// (priT, priH) and then FIFO by seq, so two events scheduled for the
// same instant fire in a deterministic order.
//
// Plain At/After/Do events key priT with their scheduling time, which
// makes (at, priT, seq) order identical to the historical (at, seq)
// FIFO order — sequence numbers are assigned in scheduling order. The
// key exists for the physical layer: frame deliveries carry their
// (transmit-start time, port identity) explicitly, so that
// same-instant arrivals are ordered by when their bits hit the fiber —
// a property of the modeled hardware that is identical whether the
// fabric runs on one kernel or on the sharded parallel engine, whose
// cross-shard frames are scheduled at window barriers (with late local
// sequence numbers) but with their true wire keys.
//
// Entries live in the heap slice itself: the slice is the per-shard
// event pool (it subsumes the earlier pointer-based free list), so the
// steady-state hot path — Do/DoPri scheduling and event pop — does not
// allocate. Only At/AtPri/After allocate, one Timer handle each, and
// only because they hand out a cancellation handle.
type entry struct {
	at   Time
	priT Time // primary tie-break: transmit start (scheduling time for plain events)
	seq  uint64
	fn   func()
	tm   *Timer // cancellation handle, nil for Do/DoPri events
	priH uint32 // secondary tie-break: stable port identity hash
}

// entryLess is the kernel's total event order: (at, priT, priH, seq).
// seq is unique per kernel, so the order is strict — heap pop order is
// a pure function of the scheduled keys, independent of heap layout.
func entryLess(a, b *entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.priT != b.priT {
		return a.priT < b.priT
	}
	if a.priH != b.priH {
		return a.priH < b.priH
	}
	return a.seq < b.seq
}

// Kernel is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; all model code runs inside event callbacks on the
// kernel's (single) logical thread, which is the standard DES discipline
// and what makes the simulation deterministic.
//
// The event queue is a hand-rolled 4-ary heap over inline entries: no
// container/heap interface dispatch, no per-event heap node allocation,
// and sift comparisons walk contiguous memory instead of chasing event
// pointers. The 4-ary shape halves tree depth against a binary heap,
// which is where the simulator spends its time at scale (pop is the
// hot operation; a wider node trades cheap sequential compares for
// fewer cache-missing levels).
type Kernel struct {
	now     Time
	seq     uint64
	events  []entry
	rng     *RNG
	stopped bool

	// Fired counts events executed; useful for run-cost reporting.
	Fired uint64
}

// NewKernel returns a kernel with virtual time 0 and an RNG seeded with
// seed (deterministic for a given seed).
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random source.
func (k *Kernel) RNG() *RNG { return k.rng }

// Pending returns the number of scheduled events. Cancelled events are
// removed from the heap eagerly, so this is an O(1) live count.
func (k *Kernel) Pending() int { return len(k.events) }

// push queues fn at absolute time t with tie-break key (priT, priH)
// and optional Timer handle tm. The entry is placed by siftUp, which
// also records the final heap index in tm.
func (k *Kernel) push(t, priT Time, priH uint32, fn func(), tm *Timer) {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, k.now))
	}
	k.events = append(k.events, entry{at: t, priT: priT, priH: priH, seq: k.seq, fn: fn, tm: tm})
	k.seq++
	k.siftUp(len(k.events) - 1)
}

// siftUp restores the heap property for a (possibly too-small) entry at
// index j, updating Timer indices along the move path.
func (k *Kernel) siftUp(j int) {
	ev := k.events
	e := ev[j]
	for j > 0 {
		p := (j - 1) >> 2
		if !entryLess(&e, &ev[p]) {
			break
		}
		ev[j] = ev[p]
		if tm := ev[j].tm; tm != nil {
			tm.idx = j
		}
		j = p
	}
	ev[j] = e
	if e.tm != nil {
		e.tm.idx = j
	}
}

// siftDown restores the heap property for a (possibly too-large) entry
// at index j. It reports whether the entry moved, which Remove-style
// callers use to decide whether a siftUp is still needed.
func (k *Kernel) siftDown(j int) bool {
	ev := k.events
	n := len(ev)
	j0 := j
	e := ev[j]
	for {
		c := j<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for i := c + 1; i < end; i++ {
			if entryLess(&ev[i], &ev[m]) {
				m = i
			}
		}
		if !entryLess(&ev[m], &e) {
			break
		}
		ev[j] = ev[m]
		if tm := ev[j].tm; tm != nil {
			tm.idx = j
		}
		j = m
	}
	ev[j] = e
	if e.tm != nil {
		e.tm.idx = j
	}
	return j > j0
}

// takeRoot removes and returns the earliest entry. The vacated tail
// slot is zeroed so the slice does not retain closure references.
func (k *Kernel) takeRoot() (Time, func()) {
	ev := k.events
	at, fn := ev[0].at, ev[0].fn
	if tm := ev[0].tm; tm != nil {
		tm.idx = -1
	}
	n := len(ev) - 1
	if n > 0 {
		ev[0] = ev[n]
	}
	ev[n] = entry{}
	k.events = ev[:n]
	if n > 1 {
		k.siftDown(0)
	} else if n == 1 {
		if tm := k.events[0].tm; tm != nil {
			tm.idx = 0
		}
	}
	return at, fn
}

// removeAt deletes the entry at heap index i (Timer cancellation).
func (k *Kernel) removeAt(i int) {
	ev := k.events
	if tm := ev[i].tm; tm != nil {
		tm.idx = -1
	}
	n := len(ev) - 1
	if i != n {
		ev[i] = ev[n]
		ev[n] = entry{}
		k.events = ev[:n]
		if !k.siftDown(i) {
			k.siftUp(i)
		}
	} else {
		ev[n] = entry{}
		k.events = ev[:n]
	}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: it indicates a model bug that would break causality.
func (k *Kernel) At(t Time, fn func()) *Timer {
	tm := &Timer{k: k, idx: -1, fn: fn}
	k.push(t, k.now, 0, fn, tm)
	return tm
}

// AtPri schedules fn at absolute time t with an explicit same-instant
// tie-break key: events at equal t run in ascending (priT, priH, FIFO)
// order. Plain At/After events carry (scheduling time, 0), so an
// explicit key slots into the same-instant order exactly where an
// event scheduled at priT would have — the physical layer uses this to
// key frame deliveries by transmit start and port identity, keeping
// the order engine-independent.
func (k *Kernel) AtPri(t, priT Time, priH uint32, fn func()) *Timer {
	tm := &Timer{k: k, idx: -1, fn: fn}
	k.push(t, priT, priH, fn, tm)
	return tm
}

// After schedules fn to run d nanoseconds from now.
func (k *Kernel) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// Do schedules fn at absolute time t without issuing a Timer handle.
// It is the allocation-free fast path for fire-and-forget events (the
// physical layer's per-frame scheduling): same ordering semantics as
// At, no way to cancel.
func (k *Kernel) Do(t Time, fn func()) { k.push(t, k.now, 0, fn, nil) }

// DoPri schedules fn at absolute time t with an explicit same-instant
// key, without issuing a Timer handle. It is to AtPri what Do is to At.
func (k *Kernel) DoPri(t, priT Time, priH uint32, fn func()) { k.push(t, priT, priH, fn, nil) }

// Stop makes Run return after the current event completes. Pending
// events remain queued; Run can be called again to resume.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue is empty or Stop is called.
// It returns the final virtual time.
func (k *Kernel) Run() Time { return k.RunUntil(MaxTime) }

// RunUntil executes events with at <= deadline. The clock is left at
// min(deadline, time of last event) — or advanced to deadline when the
// queue empties first, so RunUntil composes with subsequent After calls.
func (k *Kernel) RunUntil(deadline Time) Time {
	k.stopped = false
	for len(k.events) > 0 && !k.stopped {
		if k.events[0].at > deadline {
			break
		}
		at, fn := k.takeRoot()
		if at < k.now {
			panic("sim: time went backwards")
		}
		k.now = at
		k.Fired++
		fn()
	}
	if k.now < deadline && deadline != MaxTime {
		k.now = deadline
	}
	return k.now
}

// NextEventTime returns the time of the earliest pending event, or
// (MaxTime, false) when the queue is empty. The parallel engine uses it
// to skip dead time between lookahead windows.
func (k *Kernel) NextEventTime() (Time, bool) {
	if len(k.events) == 0 {
		return MaxTime, false
	}
	return k.events[0].at, true
}

// AdvanceTo moves the clock forward to t without executing anything.
// It panics if an event is still pending before t — advancing over it
// would break causality. The parallel engine uses it to line every
// shard's clock up on a window boundary before injecting cross-shard
// work at that instant.
func (k *Kernel) AdvanceTo(t Time) {
	if t < k.now {
		panic(fmt.Sprintf("sim: AdvanceTo %v before now %v", t, k.now))
	}
	if len(k.events) > 0 && k.events[0].at < t {
		panic(fmt.Sprintf("sim: AdvanceTo %v over pending event at %v", t, k.events[0].at))
	}
	k.now = t
}

// Park moves the clock forward to t without executing anything — even
// over pending events, which AdvanceTo refuses. It exists for mirrored
// replicas (the internal/core shard workers): a worker keeps every
// remote shard's kernel as construction context only and never runs
// it, but must keep its clock on the barrier instant so coordinator
// actions applied from a remote node's context (a reboot's join
// broadcast, say) stamp the same virtual times the coordinator stamps.
// Events left pending behind the clock stay queued and must never run;
// a parked-over kernel is clock-and-schedule context only.
func (k *Kernel) Park(t Time) {
	if t > k.now {
		k.now = t
	}
}

// Step executes exactly one pending event and returns true, or returns
// false if the queue is empty.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	at, fn := k.takeRoot()
	k.now = at
	k.Fired++
	fn()
	return true
}

// Timer is a handle to a scheduled event that can be cancelled or
// rescheduled. The zero Timer and the nil *Timer are inert: Cancel,
// Active and Reset are all safe no-ops on them.
//
// idx is the event's current heap index, maintained by the heap on
// every move and set to -1 the moment the event fires or is cancelled
// — so a handle can never touch an entry that is no longer its own.
type Timer struct {
	k   *Kernel
	idx int    // heap index while scheduled; -1 once fired or cancelled
	fn  func() // retained so Reset can re-arm after the event fired
}

// Cancel prevents the timer's callback from running. The event is
// removed from the heap immediately (no dead entries accumulate under
// cancel-heavy workloads). It is safe to call more than once and after
// the event has fired.
func (t *Timer) Cancel() {
	if t == nil || t.k == nil || t.idx < 0 {
		return
	}
	t.k.removeAt(t.idx)
}

// Active reports whether the callback is still scheduled to run.
func (t *Timer) Active() bool {
	return t != nil && t.k != nil && t.idx >= 0
}

// Reset cancels the timer (if still pending) and reschedules its
// callback d from now. Like Cancel it is nil- and zero-value-safe, and
// it works after the event has fired (re-arming the same callback).
func (t *Timer) Reset(d Time) {
	if t == nil || t.k == nil || t.fn == nil {
		return
	}
	t.Cancel()
	if d < 0 {
		d = 0
	}
	t.k.push(t.k.now+d, t.k.now, 0, t.fn, t)
}
