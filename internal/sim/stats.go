package sim

import (
	"fmt"
	"math"
	"sort"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	Name string
	N    uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.N += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.N++ }

// Sample accumulates scalar observations and reports summary statistics.
// It keeps all values so exact percentiles can be reported; experiments
// in this repository observe at most a few million samples.
type Sample struct {
	Name     string
	vals     []float64
	sorted   bool
	sum      float64
	min, max float64 // maintained incrementally by Observe
}

// NewSample returns an empty named sample.
func NewSample(name string) *Sample { return &Sample{Name: name} }

// Observe records one value.
func (s *Sample) Observe(v float64) {
	if len(s.vals) == 0 || v < s.min {
		s.min = v
	}
	if len(s.vals) == 0 || v > s.max {
		s.max = v
	}
	s.vals = append(s.vals, v)
	s.sum += v
	s.sorted = false
}

// ObserveTime records a Time value in nanoseconds.
func (s *Sample) ObserveTime(t Time) { s.Observe(float64(t)) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.vals) }

// Sum returns the total of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.sum / float64(len(s.vals))
}

// Min returns the smallest observation, or 0 with none. O(1): the
// minimum is tracked incrementally, no sort is forced.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with none. O(1): the
// maximum is tracked incrementally, no sort is forced.
func (s *Sample) Max() float64 { return s.max }

// Stddev returns the population standard deviation.
func (s *Sample) Stddev() float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.vals {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on the sorted observations.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 100 {
		return s.vals[n-1]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return s.vals[rank-1]
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// String summarizes the sample on one line.
func (s *Sample) String() string {
	return fmt.Sprintf("%s: n=%d mean=%.3g min=%.3g p50=%.3g p99=%.3g max=%.3g",
		s.Name, s.N(), s.Mean(), s.Min(), s.Percentile(50), s.Percentile(99), s.Max())
}

// Rate tracks a quantity accumulated over virtual time, e.g. bytes
// delivered, and reports a rate when asked.
type Rate struct {
	Name  string
	Total float64
	start Time
}

// NewRate returns a rate accumulator anchored at start.
func NewRate(name string, start Time) *Rate { return &Rate{Name: name, start: start} }

// Add accumulates amount.
func (r *Rate) Add(amount float64) { r.Total += amount }

// Per returns Total divided by the elapsed virtual time (in units per
// second), measured from the anchor to now.
func (r *Rate) Per(now Time) float64 {
	el := now - r.start
	if el <= 0 {
		return 0
	}
	return r.Total / el.Seconds()
}

// Histogram is a fixed-bucket histogram for latency-style distributions
// where exact percentiles are not required but memory must stay bounded.
type Histogram struct {
	Name   string
	Bounds []float64 // ascending upper bounds; final bucket is +inf
	Counts []uint64
	total  uint64
	sum    float64
}

// NewHistogram returns a histogram with the given ascending bucket
// upper bounds (an overflow bucket is added automatically).
func NewHistogram(name string, bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{Name: name, Bounds: b, Counts: make([]uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.Bounds, v)
	h.Counts[i]++
	h.total++
	h.sum += v
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Mean returns the mean of observed values.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}
