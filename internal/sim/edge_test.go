package sim

import "testing"

func TestTimerResetAfterFire(t *testing.T) {
	k := NewKernel(1)
	count := 0
	tm := k.After(10, func() { count++ })
	k.Run()
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
	// Resetting a fired timer re-arms the same callback.
	tm.Reset(20)
	k.Run()
	if count != 2 {
		t.Fatalf("count after reset = %d", count)
	}
}

func TestCancelAfterFireIsSafe(t *testing.T) {
	k := NewKernel(1)
	tm := k.After(1, func() {})
	k.Run()
	tm.Cancel() // no panic, no effect
	var nilTimer *Timer
	nilTimer.Cancel() // nil-safe
}

func TestAfterNegativeClampsToNow(t *testing.T) {
	k := NewKernel(1)
	var at Time = -1
	k.After(100, func() {
		k.After(-50, func() { at = k.Now() })
	})
	k.Run()
	if at != 100 {
		t.Fatalf("negative delay fired at %v", at)
	}
}

func TestRunUntilExactBoundary(t *testing.T) {
	k := NewKernel(1)
	fired := false
	k.After(100, func() { fired = true })
	k.RunUntil(100) // inclusive boundary
	if !fired {
		t.Fatal("event at the deadline should fire")
	}
}

func TestMaxTimeDeadlineDoesNotAdvanceClock(t *testing.T) {
	k := NewKernel(1)
	k.After(5, func() {})
	k.RunUntil(MaxTime)
	if k.Now() != 5 {
		t.Fatalf("clock = %v, want 5 (MaxTime must not set the clock)", k.Now())
	}
}

func TestRNGDurationZero(t *testing.T) {
	r := NewRNG(1)
	if r.Duration(0) != 0 || r.Duration(-5) != 0 {
		t.Fatal("non-positive bound should yield 0")
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestShuffle(t *testing.T) {
	r := NewRNG(2)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make([]bool, 8)
	for _, v := range vals {
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("value %d lost in shuffle", i)
		}
	}
}

func TestSampleSumAndObserveTime(t *testing.T) {
	s := NewSample("x")
	s.ObserveTime(1500)
	s.ObserveTime(500)
	if s.Sum() != 2000 {
		t.Fatalf("sum = %v", s.Sum())
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestHistogramUnsortedBounds(t *testing.T) {
	h := NewHistogram("h", []float64{100, 10}) // constructor sorts
	h.Observe(50)
	if h.Counts[1] != 1 {
		t.Fatalf("bucketing after sort: %v", h.Counts)
	}
}
