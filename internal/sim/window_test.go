package sim

import "testing"

// TestAtPriOrdering verifies the same-instant tie-break contract:
// ascending (priT, priH), with plain At/After events slotting in at
// their scheduling time and FIFO order breaking exact key ties.
func TestAtPriOrdering(t *testing.T) {
	k := NewKernel(1)
	var order []int
	mark := func(i int) func() { return func() { order = append(order, i) } }

	// All at t=100. Keys: plain events scheduled now carry priT=0
	// (now=0); explicit keys 50 and 20 follow; an equal key falls back
	// to FIFO.
	k.AtPri(100, 50, 7, mark(3))
	k.AtPri(100, 20, 9, mark(2))
	k.At(100, mark(1)) // priT = now = 0: first
	k.AtPri(100, 50, 7, mark(4))
	k.AtPri(100, 50, 2, mark(5)) // same priT, smaller hash: before 3/4
	k.Run()
	want := []int{1, 2, 5, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestAtPriMatchesScheduleOrder verifies that plain events keep the
// historical FIFO-at-same-instant semantics: priT is the scheduling
// time, so earlier-scheduled events still run first.
func TestAtPriMatchesScheduleOrder(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.At(50, func() { order = append(order, 1) })
	k.After(10, func() { k.At(50, func() { order = append(order, 2) }) })
	k.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
}

func TestNextEventTime(t *testing.T) {
	k := NewKernel(1)
	if _, ok := k.NextEventTime(); ok {
		t.Fatal("empty kernel reported a pending event")
	}
	k.At(42, func() {})
	k.At(7, func() {})
	if at, ok := k.NextEventTime(); !ok || at != 7 {
		t.Fatalf("NextEventTime = %v,%v, want 7,true", at, ok)
	}
}

func TestAdvanceTo(t *testing.T) {
	k := NewKernel(1)
	k.At(100, func() {})
	k.AdvanceTo(99)
	if k.Now() != 99 {
		t.Fatalf("now = %v, want 99", k.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo over a pending event did not panic")
		}
	}()
	k.AdvanceTo(101)
}
