package sim

import "math"

// RNG is a small, fast, deterministic random source (splitmix64 core with
// an xorshift-style mixer). It is used instead of math/rand so that
// simulation results are stable across Go releases and across machines.
type RNG struct {
	state uint64
}

// NewRNG returns an RNG seeded with seed. Two RNGs with the same seed
// produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Duration returns a uniform Time in [0, d).
func (r *RNG) Duration(d Time) Time {
	if d <= 0 {
		return 0
	}
	return Time(r.Uint64() % uint64(d))
}

// Exp returns an exponentially distributed Time with the given mean,
// suitable for Poisson arrival processes.
func (r *RNG) Exp(mean Time) Time {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return Time(-float64(mean) * math.Log(u))
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split returns a new RNG deterministically derived from this one,
// useful for giving each simulated node an independent stream.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}
