package netsem

import (
	"testing"

	"repro/internal/insertion"
	"repro/internal/micropacket"
	"repro/internal/phys"
	"repro/internal/sim"
)

// rig builds n nodes on a single-switch ring with semaphore services.
// Home is node 0.
type rig struct {
	k    *sim.Kernel
	net  *phys.Net
	svcs []*Service
}

func newRig(n int) *rig {
	k := sim.NewKernel(1)
	net := phys.NewNet(k)
	c := phys.BuildCluster(net, n, 1, 50)
	r := &rig{k: k, net: net}
	home := func() micropacket.NodeID { return 0 }
	for i := 0; i < n; i++ {
		st := insertion.NewStation(k, micropacket.NodeID(i), c.NodePorts[i])
		svc := NewService(k, st, home)
		st.OnDeliver = func(p *micropacket.Packet) {
			if p.Type == micropacket.TypeD64Atomic {
				svc.Handle(p)
			}
		}
		r.svcs = append(r.svcs, svc)
	}
	for i := 0; i < n; i++ {
		c.Switches[0].SetRoute(i, (i+1)%n)
		r.svcs[i].St.SetEgress(0)
	}
	return r
}

func (r *rig) run() { r.k.RunUntil(r.k.Now() + 50*sim.Millisecond) }

func TestLocalOpAtHome(t *testing.T) {
	r := newRig(2)
	var old uint64 = 99
	r.svcs[0].Op(7, micropacket.OpWrite, 42, func(o uint64) { old = o })
	r.run()
	if old != 0 {
		t.Fatalf("old = %d, want 0", old)
	}
	if r.svcs[0].Value(7) != 42 {
		t.Fatalf("home value = %d", r.svcs[0].Value(7))
	}
	// Replica converged at node 1 via broadcast.
	if r.svcs[1].Value(7) != 42 {
		t.Fatalf("replica value = %d", r.svcs[1].Value(7))
	}
}

func TestRemoteOpAndReply(t *testing.T) {
	r := newRig(3)
	var got []uint64
	r.svcs[2].Op(5, micropacket.OpFetchAdd, 10, func(o uint64) { got = append(got, o) })
	r.svcs[2].Op(5, micropacket.OpFetchAdd, 10, func(o uint64) { got = append(got, o) })
	r.run()
	if len(got) != 2 || got[0] != 0 || got[1] != 10 {
		t.Fatalf("old values = %v, want [0 10]", got)
	}
	for i, s := range r.svcs {
		if s.Value(5) != 20 {
			t.Fatalf("node %d replica = %d, want 20", i, s.Value(5))
		}
	}
}

func TestTestAndSetSemantics(t *testing.T) {
	r := newRig(2)
	var olds []uint64
	r.svcs[1].Op(3, micropacket.OpTestAndSet, 1, func(o uint64) { olds = append(olds, o) })
	r.svcs[1].Op(3, micropacket.OpTestAndSet, 1, func(o uint64) { olds = append(olds, o) })
	r.run()
	if len(olds) != 2 || olds[0] != 0 || olds[1] != 1 {
		t.Fatalf("TAS olds = %v, want [0 1]", olds)
	}
	if r.svcs[0].Value(3) != 1 {
		t.Fatal("semaphore not set")
	}
}

func TestReadOp(t *testing.T) {
	r := newRig(2)
	r.svcs[0].Op(9, micropacket.OpWrite, 1234, nil)
	var got uint64
	r.svcs[1].Op(9, micropacket.OpRead, 0, func(o uint64) { got = o })
	r.run()
	if got != 1234 {
		t.Fatalf("read = %d", got)
	}
}

// TestMutualExclusion is the slide-10 usage: N nodes increment a shared
// (non-atomic) counter under the network lock; the total must be exact.
func TestMutualExclusion(t *testing.T) {
	const n, per = 5, 20
	r := newRig(n)
	shared := 0  // deliberately plain; protected only by the lock
	holders := 0 // concurrent holders, must never exceed 1
	maxHold := 0
	var doit func(svc *Service, left int)
	doit = func(svc *Service, left int) {
		if left == 0 {
			return
		}
		svc.Lock(100, func() {
			holders++
			if holders > maxHold {
				maxHold = holders
			}
			v := shared
			// Hold the lock across a delay to invite races.
			svc.K.After(3*sim.Microsecond, func() {
				shared = v + 1
				holders--
				svc.Unlock(100)
				doit(svc, left-1)
			})
		})
	}
	for i := 0; i < n; i++ {
		doit(r.svcs[i], per)
	}
	for i := 0; i < 40; i++ { // generous virtual time for contention
		r.run()
	}
	if maxHold != 1 {
		t.Fatalf("lock held by %d nodes at once", maxHold)
	}
	if shared != n*per {
		t.Fatalf("shared = %d, want %d (lost updates)", shared, n*per)
	}
}

func TestBarrier(t *testing.T) {
	const n = 4
	r := newRig(n)
	released := 0
	for i := 0; i < n; i++ {
		r.svcs[i].Barrier(50, n, func() { released++ })
	}
	r.run()
	if released != n {
		t.Fatalf("released = %d, want %d", released, n)
	}
}

func TestBarrierDoesNotReleaseEarly(t *testing.T) {
	const n = 4
	r := newRig(n)
	released := 0
	for i := 0; i < n-1; i++ { // one party missing
		r.svcs[i].Barrier(51, n, func() { released++ })
	}
	r.run()
	if released != 0 {
		t.Fatalf("released = %d with a missing party", released)
	}
	r.svcs[n-1].Barrier(51, n, func() { released++ })
	r.run()
	if released != n {
		t.Fatalf("released = %d after last arrival, want %d", released, n)
	}
}

func TestWatch(t *testing.T) {
	r := newRig(2)
	var seen []uint64
	cancel := r.svcs[1].Watch(8, func(v uint64) { seen = append(seen, v) })
	r.svcs[0].Op(8, micropacket.OpWrite, 5, nil)
	r.run()
	if len(seen) != 1 || seen[0] != 5 {
		t.Fatalf("watch saw %v", seen)
	}
	cancel()
	r.svcs[0].Op(8, micropacket.OpWrite, 6, nil)
	r.run()
	if len(seen) != 1 {
		t.Fatalf("cancelled watcher fired: %v", seen)
	}
}

func TestForwardingFromStaleHome(t *testing.T) {
	r := newRig(3)
	// Node 2 believes node 1 is home; node 1 knows node 0 is.
	r.svcs[2].Home = func() micropacket.NodeID { return 1 }
	var old uint64 = 99
	r.svcs[2].Op(4, micropacket.OpFetchAdd, 7, func(o uint64) { old = o })
	r.run()
	if r.svcs[0].Value(4) != 7 {
		t.Fatalf("home table = %d, want 7 (forwarding failed)", r.svcs[0].Value(4))
	}
	if r.svcs[1].Forwarded != 1 {
		t.Fatalf("forwards = %d", r.svcs[1].Forwarded)
	}
	// The reply comes from the true home; the requester's pending op
	// resolves.
	if old != 0 {
		t.Fatalf("old = %d, want 0", old)
	}
}

func TestRetryAfterLoss(t *testing.T) {
	r := newRig(3)
	r.svcs[1].Timeout = 200 * sim.Microsecond
	// Break the ring silently: clear the crossbar so requests vanish
	// (no loss-of-light, no rostering in this rig).
	var resolved bool
	r.k.After(0, func() {
		// Drop node 1's egress route so its request dies at the switch.
		// (Unrouted frames are discarded.)
	})
	r.svcs[1].Op(6, micropacket.OpFetchAdd, 1, func(o uint64) { resolved = true })
	r.run()
	if !resolved {
		t.Fatal("op did not resolve")
	}
	// Now actually test a retry: temporarily unroute, issue, restore.
	r2 := newRig(3)
	r2.svcs[1].Timeout = 200 * sim.Microsecond
	sw := r2.svcs[1] // node 1's requests go 1→2→0? ring is i→i+1, so 1→2, 2→0.
	_ = sw
	resolved = false
	// Unroute node 2's transit hop so the request to home (node 0) is
	// lost after delivery attempt.
	r2.svcs[2].St.SetEgress(-1)
	r2.svcs[1].Op(6, micropacket.OpFetchAdd, 1, func(o uint64) { resolved = true })
	r2.k.RunUntil(r2.k.Now() + 100*sim.Microsecond) // request lost
	if resolved {
		t.Fatal("resolved with broken ring?")
	}
	r2.svcs[2].St.SetEgress(0) // heal
	r2.run()
	if !resolved {
		t.Fatal("retry did not recover the lost request")
	}
	if r2.svcs[1].Retries == 0 {
		t.Fatal("no retry counted")
	}
}

func TestLateDuplicateReplyIgnored(t *testing.T) {
	r := newRig(2)
	// Deliver a reply with nothing pending: must not panic or corrupt.
	reply := micropacket.NewAtomic(0, 1, 9, micropacket.OpReply, 123)
	r.svcs[1].Handle(reply)
	if r.svcs[1].Value(9) != 0 {
		t.Fatal("stray reply mutated replica")
	}
}

func TestLockUncontendedLatency(t *testing.T) {
	r := newRig(4)
	var acquired sim.Time = -1
	r.svcs[3].Lock(20, func() { acquired = r.k.Now() })
	r.run()
	if acquired < 0 {
		t.Fatal("lock never acquired")
	}
	// Uncontended remote lock is one round trip: tens of microseconds
	// on this 50 m rig, certainly under a millisecond.
	if acquired > sim.Millisecond {
		t.Fatalf("uncontended lock took %v", acquired)
	}
}
