// Package netsem implements AmpNet's network semaphores — the "locking
// primitives implemented in software" that user code uses to resolve
// write conflicts on the network cache (paper, slide 10) — on top of
// D64 Atomic MicroPackets (slide 4).
//
// Each semaphore is a 64-bit word with a home node that serializes
// operations on it. A requester sends a D64 Atomic MicroPacket (Read,
// Write, TestAndSet, FetchAdd) unicast to the home; the home executes
// the operation against its table, unicasts an OpReply carrying the
// previous value back to the requester, and broadcasts the new value so
// that every node's replica of the semaphore table converges. Because
// replicas are everywhere, the home role can move (the lowest rostered
// node, by convention) after a failure without losing semaphore state —
// the same ubiquity argument the paper makes for the network cache.
//
// Requests lost during ring transitions are retried after a timeout;
// operations are therefore at-least-once. TestAndSet and Write are
// idempotent, which makes the locks safe under retry; FetchAdd callers
// (barriers) should quiesce across roster transitions, a limitation
// documented in DESIGN.md.
package netsem

import (
	"repro/internal/detmap"
	"repro/internal/insertion"
	"repro/internal/micropacket"
	"repro/internal/sim"
)

// DefaultTimeout is the request retry timeout.
const DefaultTimeout = 2 * sim.Millisecond

// Lock retry backoff bounds.
const (
	lockBackoffMin = 5 * sim.Microsecond
	lockBackoffMax = 320 * sim.Microsecond
)

// pendingOp is an outstanding request awaiting its OpReply.
type pendingOp struct {
	sem     uint8
	op      micropacket.AtomicOp
	operand uint64
	cb      func(old uint64)
	timer   *sim.Timer
}

// Service is one node's semaphore engine: requester, replica, and
// (when elected) home.
type Service struct {
	ID micropacket.NodeID
	K  *sim.Kernel
	St *insertion.Station

	// Home returns the current home node for semaphores — by
	// convention the lowest node on the roster. Wired by the node
	// kernel; tests may fix it.
	Home func() micropacket.NodeID
	// Timeout is the per-request retry timeout.
	Timeout sim.Time

	table     map[uint8]uint64
	pending   map[uint8][]*pendingOp
	watchers  map[uint8]map[uint64]func(uint64)
	watcherID uint64

	// Counters.
	Requests  uint64 // operations issued by this node
	Executed  uint64 // operations executed here as home
	Retries   uint64 // timed-out requests re-sent
	Forwarded uint64 // stale-home requests forwarded onward
}

// NewService creates a semaphore service. home may be nil if set later.
func NewService(k *sim.Kernel, st *insertion.Station, home func() micropacket.NodeID) *Service {
	return &Service{
		ID: st.ID, K: k, St: st, Home: home, Timeout: DefaultTimeout,
		table:    map[uint8]uint64{},
		pending:  map[uint8][]*pendingOp{},
		watchers: map[uint8]map[uint64]func(uint64){},
	}
}

// Value returns this node's replica of semaphore sem.
func (s *Service) Value(sem uint8) uint64 { return s.table[sem] }

// Watch registers f to run whenever a replica update for sem arrives.
// The returned function cancels the subscription.
func (s *Service) Watch(sem uint8, f func(uint64)) (cancel func()) {
	if s.watchers[sem] == nil {
		s.watchers[sem] = map[uint64]func(uint64){}
	}
	id := s.watcherID
	s.watcherID++
	s.watchers[sem][id] = f
	return func() { delete(s.watchers[sem], id) }
}

// Op issues an atomic operation on sem. cb, if non-nil, receives the
// value the semaphore held before the operation (the home's serialized
// view). The request is retried on timeout.
func (s *Service) Op(sem uint8, op micropacket.AtomicOp, operand uint64, cb func(old uint64)) {
	s.Requests++
	home := s.Home()
	if home == s.ID {
		old := s.execute(sem, op, operand)
		if cb != nil {
			// Deliver asynchronously for symmetry with the remote path.
			s.K.After(0, func() { cb(old) })
		}
		return
	}
	p := &pendingOp{sem: sem, op: op, operand: operand, cb: cb}
	s.pending[sem] = append(s.pending[sem], p)
	s.sendRequest(p)
}

// sendRequest transmits (or re-transmits) a pending request and arms
// its timeout.
func (s *Service) sendRequest(p *pendingOp) {
	pkt := micropacket.NewAtomic(s.ID, s.Home(), p.sem, p.op, p.operand)
	s.St.Send(pkt) // a refusal just means the timeout will resend
	if p.timer != nil {
		p.timer.Cancel()
	}
	p.timer = s.K.After(s.Timeout, func() {
		// Still pending? Re-send to the (possibly re-homed) home.
		for _, q := range s.pending[p.sem] {
			if q == p {
				s.Retries++
				s.sendRequest(p)
				return
			}
		}
	})
}

// execute applies an operation as home and broadcasts the new value.
func (s *Service) execute(sem uint8, op micropacket.AtomicOp, operand uint64) (old uint64) {
	old = s.table[sem]
	switch op {
	case micropacket.OpRead:
		// no change
	case micropacket.OpWrite:
		s.table[sem] = operand
	case micropacket.OpTestAndSet:
		if old == 0 {
			s.table[sem] = operand
		}
	case micropacket.OpFetchAdd:
		s.table[sem] = old + operand
	}
	s.Executed++
	if s.table[sem] != old || op == micropacket.OpWrite {
		upd := micropacket.NewAtomic(s.ID, micropacket.Broadcast, sem, micropacket.OpWrite, s.table[sem])
		s.St.Send(upd)
	}
	s.notify(sem, s.table[sem])
	return old
}

// notify runs watchers in registration order over a snapshot, so that
// callbacks may subscribe/unsubscribe without perturbing determinism.
func (s *Service) notify(sem uint8, val uint64) {
	m := s.watchers[sem]
	if len(m) == 0 {
		return
	}
	for _, id := range detmap.SortedKeys(m) {
		if f, ok := m[id]; ok {
			f(val)
		}
	}
}

// Handle processes an arriving D64 Atomic MicroPacket (wired in by the
// node kernel's delivery demux).
func (s *Service) Handle(p *micropacket.Packet) {
	sem := p.Tag
	switch {
	case p.IsBroadcast():
		// Authoritative replica update from the home.
		if p.Op() == micropacket.OpWrite {
			s.table[sem] = p.Word64()
			s.notify(sem, p.Word64())
		}
	case p.Op() == micropacket.OpReply:
		// Reply to our oldest pending request on this semaphore (the
		// home serializes and the ring preserves order).
		q := s.pending[sem]
		if len(q) == 0 {
			return // late duplicate after a retry already completed
		}
		op := q[0]
		s.pending[sem] = q[1:]
		if op.timer != nil {
			op.timer.Cancel()
		}
		if op.cb != nil {
			op.cb(p.Word64())
		}
	default:
		// A request: are we home?
		if s.Home() != s.ID {
			// Stale home view at the sender: forward to the real home.
			s.Forwarded++
			fwd := p.Clone()
			fwd.Dst = s.Home()
			s.St.Send(fwd)
			return
		}
		old := s.execute(sem, p.Op(), p.Word64())
		reply := micropacket.NewAtomic(s.ID, p.Src, sem, micropacket.OpReply, old)
		s.St.Send(reply)
	}
}

// Lock acquires semaphore sem as a mutex (TestAndSet to 1) and runs cb
// once held. Contended attempts retry when the replica reports the lock
// free, or after an exponential backoff, whichever comes first.
func (s *Service) Lock(sem uint8, cb func()) {
	backoff := lockBackoffMin
	var attempt func()
	var armed bool // a retry (watch or timer) is armed
	retry := func() {
		if armed {
			return
		}
		armed = true
		var tmr *sim.Timer
		var unwatch func()
		fired := false
		fire := func() {
			if fired {
				return
			}
			fired = true
			armed = false
			if tmr != nil {
				tmr.Cancel()
			}
			unwatch()
			attempt()
		}
		unwatch = s.Watch(sem, func(v uint64) {
			if v == 0 {
				fire()
			}
		})
		tmr = s.K.After(backoff, fire)
		backoff *= 2
		if backoff > lockBackoffMax {
			backoff = lockBackoffMax
		}
	}
	attempt = func() {
		s.Op(sem, micropacket.OpTestAndSet, 1, func(old uint64) {
			if old == 0 {
				cb()
			} else {
				retry()
			}
		})
	}
	attempt()
}

// Unlock releases a mutex held via Lock.
func (s *Service) Unlock(sem uint8) {
	s.Op(sem, micropacket.OpWrite, 0, nil)
}

// Barrier arrives at an n-party barrier built on sem (FetchAdd of 1).
// cb runs when all n arrivals are visible in the local replica. The
// semaphore must start at 0 and be reset between uses.
func (s *Service) Barrier(sem uint8, n uint64, cb func()) {
	done := false
	var unwatch func()
	check := func(v uint64) {
		if !done && v >= n {
			done = true
			if unwatch != nil {
				unwatch()
			}
			cb()
		}
	}
	unwatch = s.Watch(sem, check)
	s.Op(sem, micropacket.OpFetchAdd, 1, func(old uint64) {
		// Home-side view may complete the barrier before the broadcast
		// lands locally.
		if old+1 >= n {
			check(old + 1)
		}
	})
}
