package experiments

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/phys"
	"repro/internal/sim"
)

// E14ParsimScale measures what the parallel sharded engine
// (internal/parsim) does to a scenario as shards multiply: the
// cross-shard exchange volume, the window count the conservative
// lookahead dictates, the total event work, the heal time under a
// switch fault — and, the defining property, whether the sharded
// Report stays byte-identical to the serial engine's.
//
// Everything in the table is a pure function of the seed, so the sweep
// harness can aggregate it; wall-clock speedup is inherently
// machine-bound and is measured by the E14 benchmarks in bench_test.go
// (ns/event, serial vs sharded, recorded in BENCH_baseline.json).
func E14ParsimScale() *Table {
	return E14ParsimScaleP(Params{})
}

// e14Fabric builds the shape for one row: the paper's uniform segment,
// or the sharded multi-ring cluster with 200 m inter-shard trunks
// (the longer trunk fiber is the realistic machine-room assumption —
// and a deeper lookahead for the engine).
func e14Fabric(shape string, nodes, switches int, fiberM float64) (phys.Topology, error) {
	switch shape {
	case "uniform":
		return phys.Uniform(nodes, switches, fiberM), nil
	case "sharded":
		if nodes%switches != 0 {
			return phys.Topology{}, fmt.Errorf("e14: %d nodes do not divide over %d shard groups", nodes, switches)
		}
		t := phys.Sharded(switches, nodes/switches, 1, fiberM)
		for i := range t.Trunks {
			t.Trunks[i].FiberM = 200
		}
		return t, nil
	default:
		return phys.Topology{}, fmt.Errorf("e14: unknown shape %q", shape)
	}
}

// E14ParsimScaleP is the parameterized form. Nodes sizes both shapes
// (default 64); Switches fixes the switch/shard-group count (default
// 8, the link-state ceiling). Shard counts swept are 1 (the serial
// engine), 2, 4 and Switches.
func E14ParsimScaleP(p Params) *Table {
	p = p.Merged(Params{Nodes: 64, Switches: 8, FiberM: 50})
	t := &Table{
		ID:     "E14",
		Title:  "parallel sharded engine: fidelity and exchange volume vs fabric shape × shard count",
		Header: []string{"fabric", "nodes", "shards", "windows", "xframes", "events", "heal", "identical"},
	}
	// A shard must own at least one switch, so the sweep clamps to the
	// switch budget (mirroring E13) instead of erroring on small
	// -switches overrides.
	var shardCounts []int
	for _, sc := range []int{1, 2, 4, p.Switches} {
		if sc <= p.Switches && (len(shardCounts) == 0 || sc > shardCounts[len(shardCounts)-1]) {
			shardCounts = append(shardCounts, sc)
		}
	}
	var totalEvents, totalFrames uint64
	identicalAll := 1.0
	healNS := sim.NewSample("heal")
	for _, shape := range []string{"uniform", "sharded"} {
		topo, err := e14Fabric(shape, p.Nodes, p.Switches, p.FiberM)
		if err != nil {
			t.Add(shape, fmt.Sprint(p.Nodes), "-", "ERROR", err.Error(), "", "", "")
			identicalAll = 0
			continue
		}
		var serial []byte
		for _, shards := range shardCounts {
			var cl *core.Cluster
			rep, err := core.Scenario{
				// One name for every shard count: the Report must be
				// byte-identical across engines, name included.
				Name: "e14-" + shape,
				Opts: core.Options{Fabric: &topo, Seed: p.seed(), Shards: shards,
					HeartbeatInterval: 1 * sim.Millisecond, Telemetry: p.Telemetry},
				BootWindow: 100 * sim.Millisecond,
				Plan:       core.Plan{core.FailSwitch(5*sim.Millisecond, p.Switches-1), core.RestoreSwitch(15*sim.Millisecond, p.Switches-1)},
				Loads: []core.Load{&core.PubSubLoad{
					Publisher: 0, Topic: 1, Every: 100 * sim.Microsecond, Poisson: true,
					Subscribers: []int{1, p.Nodes / 2, p.Nodes - 1},
				}},
				For:       20 * sim.Millisecond,
				OnCluster: func(c *core.Cluster) { cl = c },
			}.Run()
			if err != nil {
				t.Add(shape, fmt.Sprint(p.Nodes), fmt.Sprint(shards), "ERROR", err.Error(), "", "", "")
				identicalAll = 0
				continue
			}
			events := cl.EventsFired()
			windows, xframes := uint64(0), uint64(0)
			if st := cl.ParStats(); st != nil {
				windows, xframes = st.Windows, st.Frames
			}
			var worst int64
			for _, e := range rep.Events {
				if e.HealNS > worst {
					worst = e.HealNS
				}
			}
			healNS.Observe(float64(worst))
			identical := "serial"
			if shards == 1 {
				serial = rep.JSON()
			} else if bytes.Equal(serial, rep.JSON()) {
				identical = "yes"
			} else {
				identical = "NO"
				identicalAll = 0
			}
			totalEvents += events
			totalFrames += xframes
			t.Add(shape, fmt.Sprint(p.Nodes), fmt.Sprint(shards),
				fmt.Sprint(windows), fmt.Sprint(xframes), fmt.Sprint(events),
				sim.Time(worst).String(), identical)
		}
	}
	t.Metric("events_total", float64(totalEvents))
	t.Metric("cross_shard_frames_total", float64(totalFrames))
	t.Metric("heal_ns_max", healNS.Max())
	t.Metric("all_identical", identicalAll)
	t.Note("identical=yes: the sharded run's Report JSON is byte-identical to the serial engine's —")
	t.Note("conservative lookahead windows + canonical wire-order tie-breaks, see DESIGN.md")
	t.Note("wall-clock speedup is machine-bound: measured by BenchmarkE14* (BENCH_baseline.json)")
	return t
}
