package experiments

import (
	"fmt"

	"repro/internal/insertion"
	"repro/internal/micropacket"
	"repro/internal/phys"
	"repro/internal/rostering"
	"repro/internal/sim"
)

// macRingWithAgents builds stations plus rostering agents (no kernels,
// no heartbeats — pure ring hardware) and boots the ring.
type healRig struct {
	k       *sim.Kernel
	net     *phys.Net
	cluster *phys.Cluster
	sts     []*insertion.Station
	agents  []*rostering.Agent
}

func newHealRig(seed uint64, nodes, switches int, fiberM float64) *healRig {
	if seed == 0 {
		seed = 1
	}
	r := &healRig{k: sim.NewKernel(seed)}
	r.net = phys.NewNet(r.k)
	r.cluster = phys.BuildCluster(r.net, nodes, switches, fiberM)
	for i := 0; i < nodes; i++ {
		st := insertion.NewStation(r.k, micropacket.NodeID(i), r.cluster.NodePorts[i])
		r.sts = append(r.sts, st)
		r.agents = append(r.agents, rostering.NewAgent(r.k, i, r.cluster, st, fiberM))
	}
	for _, a := range r.agents {
		a := a
		r.k.After(0, func() { a.Start() })
	}
	r.k.RunUntil(r.k.Now() + 10*sim.Millisecond)
	return r
}

func (r *healRig) run(d sim.Time) { r.k.RunUntil(r.k.Now() + d) }

// ringSize returns the ring size agreed by live agents (-1 if they
// disagree).
func (r *healRig) ringSize() int {
	size := -2
	for i, a := range r.agents {
		live := false
		for s := range r.cluster.Switches {
			if r.cluster.NodeLinks[i][s].Up() {
				live = true
			}
		}
		if !live {
			continue
		}
		ro := a.Roster()
		if ro == nil {
			return -1
		}
		if size == -2 {
			size = ro.Size()
		} else if size != ro.Size() {
			return -1
		}
	}
	return size
}

// E7Redundancy reproduces the slide-14/15 topology figures as a
// survivability table: ring size after k switch failures for the
// dual-redundant (2-switch) and quad-redundant (4-switch) segments.
func E7Redundancy(nodes int) *Table {
	return E7RedundancyP(Params{Nodes: nodes})
}

// E7RedundancyP is the parameterized form of E7Redundancy.
func E7RedundancyP(p Params) *Table {
	p = p.Merged(Params{Nodes: 6, FiberM: 50})
	nodes := p.Nodes
	t := &Table{
		ID:     "E7",
		Title:  "dual vs quad redundant segments under switch failures (paper slides 14–15)",
		Header: []string{"segment", "switches failed", "ring size", "full ring"},
	}
	fullRings := 0
	for _, switches := range []int{2, 4} {
		name := map[int]string{2: "dual-redundant", 4: "quad-redundant"}[switches]
		for k := 0; k < switches; k++ {
			r := newHealRig(p.seed(), nodes, switches, p.FiberM)
			for s := 0; s < k; s++ {
				s := s
				r.k.After(0, func() { r.cluster.Switches[s].Fail() })
				r.run(10 * sim.Millisecond)
			}
			size := r.ringSize()
			full := "yes"
			if size != nodes {
				full = "NO"
			} else {
				fullRings++
			}
			t.Add(name, fmt.Sprint(k), fmt.Sprint(size), full)
		}
	}
	t.Metric("full_rings", float64(fullRings))
	t.Note("quad survives any 3 switch failures with a full ring; dual survives 1 — matching the slide-14 claim")
	return t
}

// E7aLinkFailures samples random link failure sets and reports the
// largest logical ring the rostering algorithm salvages.
func E7aLinkFailures(nodes, switches, maxFail, samples int) *Table {
	return E7aLinkFailuresP(Params{Nodes: nodes, Switches: switches}, maxFail, samples)
}

// E7aLinkFailuresP is the parameterized form of E7aLinkFailures. The
// seed drives the random failure sets, so sweeping seeds explores
// different failure patterns on the same topology.
func E7aLinkFailuresP(p Params, maxFail, samples int) *Table {
	p = p.Merged(Params{Nodes: 8, Switches: 4, FiberM: 50})
	nodes, switches := p.Nodes, p.Switches
	t := &Table{
		ID:     "E7a",
		Title:  "largest logical ring under random link failures (rostering objective)",
		Header: []string{"links failed", "samples", "avg ring", "min ring", "always consistent"},
	}
	rng := sim.NewRNG(41 + p.seed()) // default seed 1 → 42, the historical stream
	minRing := nodes
	for k := 0; k <= maxFail; k += 2 {
		sum, min := 0, nodes+1
		consistent := true
		for s := 0; s < samples; s++ {
			r := newHealRig(p.seed(), nodes, switches, p.FiberM)
			perm := rng.Perm(nodes * switches)
			for _, idx := range perm[:k] {
				n, sw := idx/switches, idx%switches
				link := r.cluster.NodeLinks[n][sw]
				r.k.After(0, func() { link.Fail() })
			}
			r.run(15 * sim.Millisecond)
			size := r.ringSize()
			if size < 0 {
				consistent = false
				continue
			}
			sum += size
			if size < min {
				min = size
			}
		}
		cons := "yes"
		if !consistent {
			cons = "NO"
		}
		if min <= nodes && min < minRing {
			minRing = min
		}
		t.Add(fmt.Sprint(k), fmt.Sprint(samples), fmt.Sprintf("%.1f", float64(sum)/float64(samples)),
			fmt.Sprint(min), cons)
	}
	t.Metric("min_ring", float64(minRing))
	return t
}

// E8Rostering reproduces slide 16's headline numbers: "rostering
// completes in two ring-tour times — 1 to 2 milliseconds, depending on
// the number of nodes and the length of the fiber."
func E8Rostering() *Table {
	return E8RosteringP(Params{})
}

// E8RosteringP is the parameterized form: a non-zero p.Nodes or
// p.FiberM narrows the sweep to that single node count / fiber length,
// which is how topology variants select one configuration each.
func E8RosteringP(p Params) *Table {
	t := &Table{
		ID:     "E8",
		Title:  "rostering completion vs nodes and fiber length (paper slide 16)",
		Header: []string{"nodes", "fiber m", "ring tour", "heal time", "ring tours", "paper band 1–2 ms"},
	}
	nodeList := []int{4, 8, 16, 32}
	if p.Nodes != 0 {
		nodeList = []int{p.Nodes}
	}
	fiberList := []float64{10, 1000, 5000}
	if p.FiberM != 0 {
		fiberList = []float64{p.FiberM}
	}
	healNS := sim.NewSample("heal")
	tourRatio := sim.NewSample("tours")
	for _, n := range nodeList {
		for _, fiber := range fiberList {
			r := newHealRig(p.seed(), n, 4, fiber)
			tour := rostering.EstimateTour(n, fiber, r.net)

			var failAt sim.Time
			lastAdopt := sim.Time(-1)
			for _, a := range r.agents {
				a := a
				a.OnAdopt = func(*rostering.Roster) {
					if r.k.Now() > lastAdopt {
						lastAdopt = r.k.Now()
					}
				}
			}
			r.k.After(sim.Millisecond, func() {
				failAt = r.k.Now()
				r.cluster.Switches[0].Fail()
			})
			r.run(200 * sim.Millisecond)
			heal := lastAdopt - failAt - r.net.Detect // from hardware detection
			tours := float64(heal) / float64(tour)
			healNS.ObserveTime(heal)
			tourRatio.Observe(tours)
			inBand := "—"
			if heal >= sim.Millisecond && heal <= 2*sim.Millisecond {
				inBand = "yes"
			}
			t.Add(fmt.Sprint(n), fmt.Sprintf("%.0f", fiber), tour.String(), heal.String(),
				fmt.Sprintf("%.2f", tours), inBand)
		}
	}
	t.Metric("heal_ns_mean", healNS.Mean())
	t.Metric("heal_ns_max", healNS.Max())
	t.Metric("ring_tours_mean", tourRatio.Mean())
	t.Note("completion ≈ 2 ring tours everywhere (flood wave + settle wave); the absolute 1–2 ms band")
	t.Note("corresponds to larger rings / longer fiber, e.g. 16–32 nodes at km-scale fiber, as the paper says")
	return t
}

// HealBench is a reusable single-heal rig for the root benchmarks: it
// boots a ring once and measures one switch-failure heal.
type HealBench struct {
	r    *healRig
	tour sim.Time
}

// NewHealBench builds and boots the rig.
func NewHealBench(seed uint64, nodes, switches int, fiberM float64) *HealBench {
	r := newHealRig(seed, nodes, switches, fiberM)
	return &HealBench{r: r, tour: rostering.EstimateTour(nodes, fiberM, r.net)}
}

// HealOnce fails switch 0 and returns (heal time from detection, tour
// estimate).
func (h *HealBench) HealOnce() (sim.Time, sim.Time) {
	var failAt sim.Time
	lastAdopt := sim.Time(-1)
	for _, a := range h.r.agents {
		a := a
		a.OnAdopt = func(*rostering.Roster) {
			if h.r.k.Now() > lastAdopt {
				lastAdopt = h.r.k.Now()
			}
		}
	}
	h.r.k.After(sim.Millisecond, func() {
		failAt = h.r.k.Now()
		h.r.cluster.Switches[0].Fail()
	})
	h.r.run(100 * sim.Millisecond)
	return lastAdopt - failAt - h.r.net.Detect, h.tour
}

// E8aDetectionSensitivity is the ablation: how the PHY's loss-of-light
// detection latency shifts total heal time.
func E8aDetectionSensitivity() *Table {
	return E8aDetectionSensitivityP(Params{})
}

// E8aDetectionSensitivityP is the parameterized form of
// E8aDetectionSensitivity.
func E8aDetectionSensitivityP(p Params) *Table {
	p = p.Merged(Params{Nodes: 8, Switches: 4, FiberM: 1000})
	t := &Table{
		ID:     "E8a",
		Title:  "heal-time sensitivity to failure-detection latency (ablation)",
		Header: []string{"detect latency", "total heal (fail→ring)", "rostering share"},
	}
	for _, det := range []sim.Time{1 * sim.Microsecond, 10 * sim.Microsecond, 100 * sim.Microsecond} {
		r := newHealRig(p.seed(), p.Nodes, p.Switches, p.FiberM)
		r.net.Detect = det
		var failAt sim.Time
		lastAdopt := sim.Time(-1)
		for _, a := range r.agents {
			a := a
			a.OnAdopt = func(*rostering.Roster) { lastAdopt = r.k.Now() }
		}
		r.k.After(sim.Millisecond, func() {
			failAt = r.k.Now()
			r.cluster.Switches[0].Fail()
		})
		r.run(100 * sim.Millisecond)
		total := lastAdopt - failAt
		rshare := total - det
		t.Metric(fmt.Sprintf("total_heal_ns_det%.0fus", det.Micros()), float64(total))
		t.Add(det.String(), total.String(), rshare.String())
	}
	return t
}
