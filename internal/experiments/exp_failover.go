package experiments

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ampdk"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/micropacket"
	"repro/internal/netcache"
	"repro/internal/phys"
	"repro/internal/sim"
)

// E9Assimilation reproduces slide 17: a new node self-boots, passes the
// assimilation rules, receives a cache refresh and joins. The table
// sweeps cache size; version-incompatible nodes must be rejected.
func E9Assimilation() *Table {
	return E9AssimilationP(Params{})
}

// E9AssimilationP is the parameterized form of E9Assimilation.
func E9AssimilationP(p Params) *Table {
	p = p.Merged(Params{Nodes: 4, Switches: 2})
	t := &Table{
		ID:     "E9",
		Title:  "node assimilation: cache refresh time vs cache size (paper slide 17)",
		Header: []string{"cache KB", "join → online", "refresh MB/s", "verdict"},
	}
	for _, kb := range []int{64, 256, 1024} {
		c := core.New(core.Options{Nodes: p.Nodes, Switches: p.Switches, Seed: p.seed(), Regions: map[uint8]int{1: kb * 1024}})
		// Boot all but the last node; it joins later.
		for i := 0; i < p.Nodes-1; i++ {
			nd := c.Nodes[i]
			c.K.After(0, func() { nd.Boot() })
		}
		c.Run(30 * sim.Millisecond)
		joiner := c.Node(p.Nodes - 1)
		var onlineAt sim.Time
		joiner.DK().OnOnline = func() { onlineAt = c.Now() } // exact stamp
		bootAt := c.Now()
		joiner.DK().Boot()
		if err := c.WaitUntil(func() bool { return onlineAt != 0 }, 2*sim.Second); err != nil {
			t.Add(fmt.Sprint(kb), "NEVER", "-", "FAIL")
			continue
		}
		el := onlineAt - bootAt
		mbps := float64(joiner.DK().RefreshedB) / el.Seconds() / 1e6
		t.Metric(fmt.Sprintf("join_ns_%dkb", kb), float64(el))
		t.Metric(fmt.Sprintf("refresh_mbps_%dkb", kb), mbps)
		t.Add(fmt.Sprint(kb), el.String(), fmt.Sprintf("%.1f", mbps), "online")
	}

	// Version gate: an incompatible node must be rejected.
	{
		c := core.New(core.Options{Nodes: 3, Switches: 2, Seed: p.seed(), VersionOf: func(id int) ampdk.Version {
			if id == 2 {
				return 0x0200
			}
			return 0x0100
		}})
		_ = c.Boot(0)
		verdict := "FAIL"
		if c.Node(2).State().String() == "rejected" {
			verdict = "rejected (correct)"
		}
		t.Add("-", "version 2.0 vs network 1.0", "-", verdict)
	}
	t.Note("refresh streams at a large fraction of the 850 Mb/s payload rate; join time scales linearly with cache size")
	return t
}

// E10Failover reproduces slide 19: millisecond failure detection, an
// application-definable fail-over period, control passing to the best
// qualified node, and no data loss. A primary checkpoints a counter,
// dies mid-run (a planned CrashNode event), and the survivor must
// recover the last committed value.
func E10Failover() *Table {
	return E10FailoverP(Params{})
}

// E10FailoverP is the parameterized form of E10Failover. The group
// membership stays at 4 nodes (rank table below); the seed varies
// heartbeat phasing and therefore where the crash cuts a checkpoint.
func E10FailoverP(p Params) *Table {
	p = p.Merged(Params{Switches: 2})
	t := &Table{
		ID:     "E10",
		Title:  "application failover: detection, definable period, no data loss (paper slides 18–19)",
		Header: []string{"failover period", "detect latency", "fail → takeover", "checkpoints", "recovered", "data loss"},
	}
	lostTotal := int64(0)
	detectNS := sim.NewSample("detect")
	for _, period := range []sim.Time{100 * sim.Microsecond, 1 * sim.Millisecond, 5 * sim.Millisecond} {
		c := core.New(core.Options{Nodes: 4, Switches: p.Switches, Seed: p.seed(), Regions: map[uint8]int{1: 4096}})
		if err := c.Boot(0); err != nil {
			t.Note("boot failed: %v", err)
			return t
		}
		cfg := failover.GroupConfig{
			ID: 1, Members: []int{0, 1, 2, 3},
			Rank:   map[int]int{0: 4, 1: 3, 2: 2, 3: 1},
			Period: period,
			State:  netcache.NewDoubleBuffer(1, 0, 8),
		}
		var groups []*failover.Group
		for i := 0; i < 4; i++ {
			groups = append(groups, c.Node(i).Manager().AddGroup(cfg))
		}
		// Primary (node 0) checkpoints an increasing counter.
		committed := uint64(0)
		c.Every(200*sim.Microsecond, func() bool {
			if !c.Node(0).Online() {
				return false
			}
			committed++
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], committed)
			groups[0].CheckpointState(buf[:])
			return true
		})
		c.Run(5 * sim.Millisecond)

		var failAt, detectAt, tookAt sim.Time
		var recovered uint64
		// Chain onto the hook the failover manager installed — the
		// manager must still see peer-down events.
		mgrHook := c.Node(1).DK().OnPeerDown
		c.Node(1).DK().OnPeerDown = func(id int) {
			if id == 0 && detectAt == 0 {
				detectAt = c.Now()
			}
			if mgrHook != nil {
				mgrHook(id)
			}
		}
		groups[1].OnTakeover = func(state []byte) {
			tookAt = c.Now()
			if state != nil {
				recovered = binary.LittleEndian.Uint64(state)
			}
		}
		// The fault plan: the primary dies now, possibly mid-checkpoint.
		failAt = c.Now()
		if err := c.Install(core.Plan{core.CrashNode(0, 0)}); err != nil {
			t.Note("install failed: %v", err)
			return t
		}
		_ = c.WaitUntil(func() bool { return tookAt != 0 }, 50*sim.Millisecond)

		loss := "NONE"
		// The survivor must recover the last committed checkpoint or the
		// one immediately before it (if the crash cut the final
		// checkpoint's replication mid-flight). Signed arithmetic: a
		// recovered value beyond committed (corrupt state) must count
		// as an anomaly, not wrap.
		if lost := int64(committed) - int64(recovered); lost > 1 || lost < 0 {
			loss = fmt.Sprintf("LOST %d", lost)
			if lost < 0 {
				lost = -lost
			}
			lostTotal += lost
		}
		detectNS.ObserveTime(detectAt - failAt)
		t.Add(period.String(), (detectAt - failAt).String(), (tookAt - failAt).String(),
			fmt.Sprint(committed), fmt.Sprint(recovered), loss)
	}
	t.Metric("lost_checkpoints", float64(lostTotal))
	t.Metric("detect_ns_max", detectNS.Max())
	t.Note("detection is sub-millisecond (3×250 µs heartbeats); takeover = detection + the app-defined period")
	return t
}

// E11SelfHealVsBaseline reproduces the paper's core availability
// argument (slides 2, 13, 18): under continuous traffic, a switch
// failure interrupts AmpNet for ring-tour-scale microseconds, while the
// conventional static network is down for its protection delay.
func E11SelfHealVsBaseline() *Table {
	return E11SelfHealVsBaselineP(Params{})
}

// E11SelfHealVsBaselineP is the parameterized form of
// E11SelfHealVsBaseline.
func E11SelfHealVsBaselineP(p Params) *Table {
	t := &Table{
		ID:     "E11",
		Title:  "self-healing vs conventional network under switch failure (paper slides 2, 13, 18)",
		Header: []string{"network", "service outage", "frames lost", "recovered"},
	}
	const sendEvery = 50 * sim.Microsecond
	const failTime = 10 * sim.Millisecond
	const runFor = 40 * sim.Millisecond

	// AmpNet: full stack, a PubSubLoad stream from node 0 to node 2 and
	// a planned switch failure; the load's outage/gap accounting is the
	// measurement.
	{
		c := core.New(core.Options{Nodes: 4, Switches: 2, Seed: p.seed()})
		if err := c.Boot(0); err != nil {
			t.Note("boot failed: %v", err)
			return t
		}
		if err := c.Install(core.Plan{core.FailSwitch(failTime, 0)}); err != nil {
			t.Note("install failed: %v", err)
			return t
		}
		a := c.StartLoad(&core.PubSubLoad{
			Publisher:   0,
			Topic:       1,
			Subscribers: []int{2},
			Every:       sendEvery,
			Count:       int(runFor / sendEvery),
		})
		_ = c.WaitUntil(a.Done, runFor+10*sim.Millisecond)
		c.Run(10 * sim.Millisecond)
		rep := a.Report()
		t.Add("AmpNet (rostering)", sim.Time(rep.MaxGapNS).String(),
			fmt.Sprint(rep.Sent-rep.Delivered), "yes")
		t.Metric("ampnet_outage_ns", float64(rep.MaxGapNS))
		t.Metric("ampnet_frames_lost", float64(rep.Sent-rep.Delivered))
	}

	// Static switched baseline, same hardware, same traffic pattern.
	{
		k := sim.NewKernel(p.seed())
		net := phys.NewNet(k)
		cl := phys.BuildCluster(net, 4, 2, 50)
		sn := baseline.NewStaticNet(k, cl)
		sn.ReconvergeDelay = baseline.DefaultReconverge // 1 s, generous
		var lastRx, gapMax sim.Time
		sent, got := 0, 0
		sn.Stations[2].OnDeliver = func(*micropacket.Packet) {
			if lastRx != 0 && k.Now()-lastRx > gapMax {
				gapMax = k.Now() - lastRx
			}
			lastRx = k.Now()
			got++
		}
		var tick func()
		tick = func() {
			if k.Now() < runFor {
				sn.Send(0, micropacket.NewData(0, 2, 0, []byte{1}))
				sent++
				k.After(sendEvery, tick)
			}
		}
		k.After(0, tick)
		k.After(failTime, func() { cl.Switches[0].Fail() })
		// Run past the reconvergence to show it does eventually return.
		k.RunUntil(failTime + sn.ReconvergeDelay + 20*sim.Millisecond)
		outage := gapMax
		if got == 0 || lastRx < failTime {
			outage = sn.ReconvergeDelay
		}
		recovered := "after protection delay"
		t.Add("static switched (baseline)", outage.String(), fmt.Sprint(sent-got), recovered)
		t.Metric("baseline_outage_ns", float64(outage))
	}
	t.Note("AmpNet's outage is the rostering window (µs–ms); the baseline is dark for its full protection delay (~1 s)")
	t.Note("frames lost during the AmpNet transition are recovered by higher layers (DMA gaps / cache refresh)")
	return t
}
