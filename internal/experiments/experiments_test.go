package experiments

import (
	"strings"
	"testing"
)

// The experiment suite doubles as an integration test layer: each test
// runs an experiment (scaled down where the default is slow) and
// asserts the verdict cells that encode the paper's claims.

func TestE1TableMatchesSlide4(t *testing.T) {
	tab := E1TypeTable()
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[3] != "ok" {
			t.Fatalf("codec failure: %v", row)
		}
	}
	if tab.Rows[5][2] != "No" {
		t.Fatal("D64 Atomic must be optional")
	}
}

func TestE2Sizes(t *testing.T) {
	tab := E2WireFormats()
	// Six rows per wire-format version: fixed + five variable sizes.
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][1] != "v1" || tab.Rows[0][3] != "24" {
		t.Fatalf("v1 fixed wire size: %v", tab.Rows[0])
	}
	if tab.Rows[5][3] != "88" {
		t.Fatalf("v1 max variable wire size: %v", tab.Rows[5])
	}
	if tab.Rows[6][1] != "v2" || tab.Rows[6][3] != "28" {
		t.Fatalf("v2 fixed wire size: %v", tab.Rows[6])
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[3] != "92" {
		t.Fatalf("v2 max variable wire size: %v", last)
	}
	for _, row := range tab.Rows {
		if row[6] != "ok" {
			t.Fatalf("symbol round trip: %v", row)
		}
	}
}

func TestE3InsertionBeatsTokenRing(t *testing.T) {
	tab := E3MultiStream(100)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	if tab.Rows[0][5] != "0" {
		t.Fatalf("AmpNet drops: %v", tab.Rows[0])
	}
}

func TestE4Lossless(t *testing.T) {
	tab := E4AllToAll(8, 40)
	if tab.Rows[0][6] != "LOSSLESS" {
		t.Fatalf("AmpNet verdict: %v", tab.Rows[0])
	}
	if tab.Rows[1][6] == "LOSSLESS" {
		t.Fatalf("baseline should drop: %v", tab.Rows[1])
	}
}

func TestE5NoTornValues(t *testing.T) {
	tab := E5Seqlock()
	for _, row := range tab.Rows {
		if row[5] != "0" {
			t.Fatalf("torn values: %v", row)
		}
	}
}

func TestE6Exact(t *testing.T) {
	tab := E6Semaphores(3, 5)
	if tab.Rows[0][4] != "YES" {
		t.Fatalf("mutual exclusion: %v", tab.Rows[0])
	}
}

func TestE6aCompletes(t *testing.T) {
	tab := E6aWriteThrough(4)
	for _, row := range tab.Rows {
		if row[2] == "INCOMPLETE" {
			t.Fatalf("replication incomplete: %v", row)
		}
	}
}

func TestE7QuadSurvivesThree(t *testing.T) {
	tab := E7Redundancy(6)
	for _, row := range tab.Rows {
		if row[3] != "yes" {
			t.Fatalf("ring not full: %v", row)
		}
	}
}

func TestE7aConsistent(t *testing.T) {
	tab := E7aLinkFailures(6, 4, 4, 2)
	for _, row := range tab.Rows {
		if row[4] != "yes" {
			t.Fatalf("inconsistent rosters: %v", row)
		}
	}
}

func TestE8TwoTours(t *testing.T) {
	hb := NewHealBench(1, 8, 4, 1000)
	heal, tour := hb.HealOnce()
	ratio := float64(heal) / float64(tour)
	if ratio < 1 || ratio > 3 {
		t.Fatalf("heal = %.2f ring tours, want ≈2", ratio)
	}
}

func TestE9VersionGate(t *testing.T) {
	// Run only the version-gate portion cheaply via the full table
	// (the sweep itself is bounded).
	tab := E9Assimilation()
	last := tab.Rows[len(tab.Rows)-1]
	if last[3] != "rejected (correct)" {
		t.Fatalf("version gate: %v", last)
	}
	for _, row := range tab.Rows[:len(tab.Rows)-1] {
		if row[3] != "online" {
			t.Fatalf("assimilation failed: %v", row)
		}
	}
}

func TestE10NoDataLoss(t *testing.T) {
	tab := E10Failover()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[5] != "NONE" {
			t.Fatalf("data loss: %v", row)
		}
	}
}

func TestE11AmpNetBeatsBaseline(t *testing.T) {
	tab := E11SelfHealVsBaseline()
	// AmpNet outage must be µs-scale; baseline must be its protection
	// delay (1 s).
	if !strings.Contains(tab.Rows[0][1], "µs") && !strings.Contains(tab.Rows[0][1], "ms") {
		t.Fatalf("AmpNet outage: %v", tab.Rows[0])
	}
	if !strings.Contains(tab.Rows[1][1], "s") {
		t.Fatalf("baseline outage: %v", tab.Rows[1])
	}
}

func TestE12AllComplete(t *testing.T) {
	tab := E12Collectives(4)
	for _, row := range tab.Rows {
		if row[2] == "INCOMPLETE" {
			t.Fatalf("incomplete: %v", row)
		}
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) < 14 {
		t.Fatalf("registry has %d specs", len(all))
	}
	seen := map[string]bool{}
	for _, s := range all {
		if seen[s.ID] {
			t.Fatalf("duplicate id %s", s.ID)
		}
		seen[s.ID] = true
		if s.Run == nil || s.Short == "" {
			t.Fatalf("incomplete spec %s", s.ID)
		}
	}
	if ByID("e8") == nil || ByID("nope") != nil {
		t.Fatal("ByID broken")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "X", Title: "test", Header: []string{"a", "bb"}}
	tab.Add("1", "2")
	tab.Addf("3|4")
	tab.Note("n=%d", 5)
	s := tab.String()
	for _, want := range []string{"X — test", "a", "bb", "1", "4", "note: n=5"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestE15RejectsIndivisibleNodeCounts(t *testing.T) {
	tab := E15WireScaleP(Params{Nodes: 300}) // not divisible over 8 rings
	if len(tab.Rows) != 1 || tab.Rows[0][3] != "ERROR" {
		t.Fatalf("expected an error row: %v", tab.Rows)
	}
}

// TestE15ScalesPast255Nodes runs the scaled-down form of E15: a
// 264-node fabric (past the v1 wire ceiling), serial vs 8 shards,
// byte-identical reports. The default 320-node table is the ampbench
// form; this keeps the property in the test suite at tolerable cost.
func TestE15ScalesPast255Nodes(t *testing.T) {
	if testing.Short() {
		t.Skip("264-node serial+sharded runs skipped in -short")
	}
	tab := E15WireScaleP(Params{Nodes: 264})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	for _, row := range tab.Rows {
		if row[1] != "v2" {
			t.Fatalf("row not on wire v2: %v", row)
		}
	}
	if tab.Rows[1][7] != "yes" {
		t.Fatalf("sharded report diverged from serial: %v", tab.Rows[1])
	}
}
