package experiments

import (
	"fmt"

	"repro/internal/ampip"
	"repro/internal/core"
	"repro/internal/sim"
)

// E12Collectives reproduces the slide-3/12 stack figures functionally:
// IP-style datagrams and MPI-style collectives running over the
// MicroPacket network, with a latency/bandwidth table.
func E12Collectives(nodes int) *Table {
	return E12CollectivesP(Params{Nodes: nodes})
}

// E12CollectivesP is the parameterized form of E12Collectives.
func E12CollectivesP(p Params) *Table {
	p = p.Merged(Params{Nodes: 8, Switches: 2})
	nodes := p.Nodes
	t := &Table{
		ID:     "E12",
		Title:  "AmpIP + MPI-style middleware over MicroPackets (paper slides 3, 12)",
		Header: []string{"operation", "size B", "latency", "bandwidth Mb/s"},
	}
	c := core.New(core.Options{Nodes: nodes, Switches: p.Switches, Seed: p.seed()})
	if err := c.Boot(0); err != nil {
		t.Note("boot failed: %v", err)
		return t
	}
	var ids []int
	for i := 0; i < nodes; i++ {
		ids = append(ids, i)
	}
	var comms []*ampip.Comm
	for i := 0; i < nodes; i++ {
		comms = append(comms, ampip.NewComm(c.Node(i).Stack(), ids, 7000))
	}

	// Datagram RTT (ping-pong over sockets).
	{
		const pings = 20
		var start sim.Time
		var rtts []sim.Time
		c.Node(1).Stack().Bind(100, func(src ampip.Addr, sp uint16, data []byte) {
			c.Node(1).Stack().SendTo(src, sp, 100, data)
		})
		n := 0
		var fire func()
		c.Node(0).Stack().Bind(101, func(_ ampip.Addr, _ uint16, _ []byte) {
			rtts = append(rtts, c.Now()-start)
			n++
			if n < pings {
				fire()
			}
		})
		fire = func() {
			start = c.Now()
			c.Node(0).Stack().SendTo(ampip.NodeToIP(1), 100, 101, make([]byte, 64))
		}
		c.K.After(0, fire)
		c.Run(20 * sim.Millisecond)
		if len(rtts) > 0 {
			var sum sim.Time
			for _, r := range rtts {
				sum += r
			}
			t.Add("UDP-like RTT (64 B)", "64", (sum / sim.Time(len(rtts))).String(), "-")
			t.Metric("rtt_ns_mean", float64(sum)/float64(len(rtts)))
		}
	}

	// Stream bandwidth: 256 KB of back-to-back datagrams.
	{
		const total = 256 * 1024
		const dgram = 8192
		var doneAt sim.Time
		got := 0
		c.Node(3).Stack().Bind(200, func(_ ampip.Addr, _ uint16, data []byte) {
			got += len(data)
			if got >= total {
				doneAt = c.Now()
			}
		})
		startAt := c.Now()
		c.K.After(0, func() {
			for off := 0; off < total; off += dgram {
				c.Node(2).Stack().SendTo(ampip.NodeToIP(3), 200, 200, make([]byte, dgram))
			}
		})
		c.Run(100 * sim.Millisecond)
		if doneAt > 0 {
			mbps := float64(total) * 8 / (doneAt - startAt).Seconds() / 1e6
			t.Add("stream (datagrams)", fmt.Sprint(total), (doneAt - startAt).String(), fmt.Sprintf("%.0f", mbps))
			t.Metric("stream_mbps", mbps)
		} else {
			t.Add("stream (datagrams)", fmt.Sprint(total), "INCOMPLETE", "-")
		}
	}

	// Collectives.
	runColl := func(name string, start func(done func())) {
		var t0, t1 sim.Time
		fired := false
		c.K.After(0, func() {
			t0 = c.Now()
			start(func() {
				if !fired {
					fired = true
					t1 = c.Now()
				}
			})
		})
		c.Run(50 * sim.Millisecond)
		if fired {
			t.Add(name, "-", (t1 - t0).String(), "-")
		} else {
			t.Add(name, "-", "INCOMPLETE", "-")
		}
	}
	runColl(fmt.Sprintf("barrier (%d ranks)", nodes), func(done func()) {
		remaining := nodes
		for _, cm := range comms {
			cm.Barrier(func() {
				remaining--
				if remaining == 0 {
					done()
				}
			})
		}
	})
	runColl(fmt.Sprintf("allreduce sum (%d ranks)", nodes), func(done func()) {
		remaining := nodes
		for i, cm := range comms {
			cm.AllReduceSum(uint64(i), func(uint64) {
				remaining--
				if remaining == 0 {
					done()
				}
			})
		}
	})
	runColl("bcast 1 KB", func(done func()) {
		remaining := nodes
		payload := make([]byte, 1024)
		for i, cm := range comms {
			data := payload
			if i != 0 {
				data = nil
			}
			cm.Bcast(0, data, func([]byte) {
				remaining--
				if remaining == 0 {
					done()
				}
			})
		}
	})
	runColl("all-to-all 256 B blocks", func(done func()) {
		remaining := nodes
		for _, cm := range comms {
			blocks := make([][]byte, nodes)
			for j := range blocks {
				blocks[j] = make([]byte, 256)
			}
			cm.AllToAll(blocks, func([][]byte) {
				remaining--
				if remaining == 0 {
					done()
				}
			})
		}
	})
	t.Note("functional reproduction of the stack figure: sockets and collectives over the ring; absolute numbers are model numbers")
	return t
}
