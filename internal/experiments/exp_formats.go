package experiments

import (
	"fmt"

	"repro/internal/enc8b10b"
	"repro/internal/micropacket"
	"repro/internal/phys"
	"repro/internal/wire"
)

// E1TypeTable reproduces the slide-4 MicroPacket type table and
// verifies each type round-trips through the codec registry — under
// every registered wire-format version.
func E1TypeTable() *Table {
	t := &Table{
		ID:     "E1",
		Title:  "MicroPacket types (paper slide 4)",
		Header: []string{"MicroPacket", "Length", "Mandatory", "codec round-trip"},
	}
	for _, info := range micropacket.Types() {
		length := "Fixed"
		if info.Variable {
			length = "Variable"
		}
		mand := "Yes"
		if !info.Mandatory {
			mand = "No"
		}
		ok := true
		for _, v := range wire.Versions() {
			ok = ok && roundTrip(v, info.Type)
		}
		t.Add(info.Name, length, mand, map[bool]string{true: "ok", false: "FAIL"}[ok])
	}
	t.Note("matches slide 4 row-for-row; D64 Atomic is the only optional type")
	t.Note("round-trip verified under every wire-format version (v1 byte addresses, v2 uint16)")
	return t
}

func roundTrip(v wire.Version, ty micropacket.Type) bool {
	var p *micropacket.Packet
	switch ty {
	case micropacket.TypeRostering:
		p = micropacket.NewRostering(1, 0, [8]byte{1, 2, 3})
	case micropacket.TypeData:
		p = micropacket.NewData(1, 2, 3, []byte{4, 5})
	case micropacket.TypeDMA:
		p = micropacket.NewDMA(1, 2, micropacket.DMAHeader{Channel: 3, Offset: 64}, []byte{7, 8, 9})
	case micropacket.TypeInterrupt:
		p = micropacket.NewInterrupt(1, 2, 3)
	case micropacket.TypeDiagnostic:
		p = micropacket.NewDiagnostic(1, 2, 3)
	case micropacket.TypeD64Atomic:
		p = micropacket.NewAtomic(1, 2, 3, micropacket.OpFetchAdd, 42)
	}
	raw, err := wire.Encode(v, p)
	if err != nil {
		return false
	}
	q, gotV, err := wire.Decode(raw)
	return err == nil && q.Type == ty && gotV == v
}

// E2WireFormats reproduces the slide-5/6 format figures as a size
// table: fixed = 3 payload-bearing words, variable = up to 19 words,
// and shows serialization times at the FC gigabit rate — for both
// wire-format versions (v2 adds one control word for the uint16
// addresses).
func E2WireFormats() *Table {
	t := &Table{
		ID:     "E2",
		Title:  "MicroPacket wire formats (paper slides 5–6; versioned per internal/wire)",
		Header: []string{"format", "wire fmt", "payload B", "wire B", "10b symbols", "serialization", "8b/10b round-trip"},
	}
	row := func(name string, v wire.Version, ty micropacket.Type, payload int) {
		var p *micropacket.Packet
		if ty.Variable() {
			data := make([]byte, payload)
			p = micropacket.NewDMA(1, 2, micropacket.DMAHeader{Channel: 0}, data)
		} else {
			p = micropacket.NewData(1, 2, 0, make([]byte, payload))
		}
		size := wire.Size(v, ty, payload)
		enc := enc8b10b.NewEncoder()
		dec := enc8b10b.NewDecoder()
		syms, err := wire.EncodeSymbols(wire.MustForVersion(v), p, enc)
		ok := err == nil
		if ok {
			q, gotV, err2 := wire.DecodeSymbols(syms, dec)
			ok = err2 == nil && q.Type == ty && gotV == v
		}
		t.Add(name, v.String(), fmt.Sprint(payload), fmt.Sprint(size), fmt.Sprint(len(syms)),
			phys.SerTime(size).String(), map[bool]string{true: "ok", false: "FAIL"}[ok])
	}
	for _, v := range wire.Versions() {
		row("fixed (slide 5)", v, micropacket.TypeData, 8)
		for _, n := range []int{0, 4, 16, 32, 64} {
			row("variable (slide 6)", v, micropacket.TypeDMA, n)
		}
	}
	t.Note("v1 fixed frame: SOF(4)+3 words(12)+CRC(4)+EOF(4) = 24 B; variable max 88 B")
	t.Note("v2 widens the control block to 2 words (uint16 addresses): fixed 28 B, variable max 92 B")
	return t
}
