package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/insertion"
	"repro/internal/micropacket"
	"repro/internal/phys"
	"repro/internal/sim"
	wirefmt "repro/internal/wire"
)

// macRing builds n insertion stations on a single-switch ring with a
// manually programmed roster (MAC-level rig, no kernels).
func macRing(seed uint64, n int, fiberM float64) (*sim.Kernel, *phys.Net, []*insertion.Station) {
	k := sim.NewKernel(seed)
	net := phys.NewNet(k)
	c := phys.BuildCluster(net, n, 1, fiberM)
	sts := make([]*insertion.Station, n)
	for i := 0; i < n; i++ {
		sts[i] = insertion.NewStation(k, micropacket.NodeID(i), c.NodePorts[i])
	}
	for i := 0; i < n; i++ {
		c.Switches[0].SetRoute(i, (i+1)%n)
		sts[i].SetEgress(0)
	}
	return k, net, sts
}

// pump offers count packets to send, retrying under backpressure.
func pump(k *sim.Kernel, send func(*micropacket.Packet) bool, count int, mk func(i int) *micropacket.Packet) {
	i := 0
	var loop func()
	loop = func() {
		for i < count && send(mk(i)) {
			i++
		}
		if i < count {
			k.After(2*sim.Microsecond, loop)
		}
	}
	k.After(0, loop)
}

// E3MultiStream reproduces slide 7: four nodes each inserting a stream
// onto one segment simultaneously. The register-insertion MAC lets all
// four streams progress concurrently (spatial reuse); the token-ring
// baseline serializes them behind one rotating transmit opportunity.
func E3MultiStream(framesPerStream int) *Table {
	return E3MultiStreamP(Params{}, framesPerStream)
}

// E3MultiStreamP is the parameterized form: p.Nodes streams (default 4)
// on p.FiberM meters of fiber (default 50), seeded by p.Seed.
func E3MultiStreamP(p Params, framesPerStream int) *Table {
	p = p.Merged(Params{Nodes: 4, FiberM: 50})
	t := &Table{
		ID:     "E3",
		Title:  "multiple concurrent data streams per segment (paper slide 7)",
		Header: []string{"MAC", "streams", "frames/stream", "completion", "aggregate Mb/s", "drops"},
	}
	n := p.Nodes
	payload := 8 // fixed Data packets
	wireB := wirefmt.Size(wirefmt.V1, micropacket.TypeData, payload)

	// AmpNet insertion ring: stream i→(i+1)%n uses a one-hop arc, so
	// all n streams occupy disjoint segments concurrently.
	{
		k, net, sts := macRing(p.seed(), n, p.FiberM)
		done := make([]int, n)
		for i := range sts {
			i := i
			sts[i].OnDeliver = func(*micropacket.Packet) { done[i]++ }
		}
		for i := 0; i < n; i++ {
			src := micropacket.NodeID(i)
			dst := micropacket.NodeID((i + 1) % n)
			pump(k, sts[i].Send, framesPerStream, func(j int) *micropacket.Packet {
				return micropacket.NewData(src, dst, uint8(j), make([]byte, payload))
			})
		}
		k.Run()
		el := k.Now()
		bits := float64(n*framesPerStream*wireB) * 8
		t.Add("AmpNet insertion ring", fmt.Sprint(n), fmt.Sprint(framesPerStream),
			el.String(), fmt.Sprintf("%.0f", bits/el.Seconds()/1e6), fmt.Sprint(net.Drops.N))
		t.Metric("ampnet_mbps", bits/el.Seconds()/1e6)
		t.Metric("ampnet_drops", float64(net.Drops.N))
	}

	// Token ring: same offered pattern, one transmitter at a time.
	{
		k := sim.NewKernel(p.seed())
		net := phys.NewNet(k)
		c := phys.BuildCluster(net, n, 1, p.FiberM)
		tr := baseline.NewTokenRing(k, c)
		for i := 0; i < n; i++ {
			src := micropacket.NodeID(i)
			dst := micropacket.NodeID((i + 1) % n)
			id := i
			pump(k, func(p *micropacket.Packet) bool { return tr.Send(id, p) },
				framesPerStream, func(j int) *micropacket.Packet {
					return micropacket.NewData(src, dst, uint8(j), make([]byte, payload))
				})
		}
		tr.Start()
		// The token circulates forever; run until all queues drain.
		for drained := false; !drained; {
			k.RunUntil(k.Now() + sim.Millisecond)
			drained = true
			for _, st := range tr.Stations {
				if st.Sent < uint64(framesPerStream) {
					drained = false
				}
			}
		}
		el := k.Now()
		bits := float64(n*framesPerStream*wireB) * 8
		t.Add("token ring (baseline)", fmt.Sprint(n), fmt.Sprint(framesPerStream),
			el.String(), fmt.Sprintf("%.0f", bits/el.Seconds()/1e6), fmt.Sprint(net.Drops.N))
		t.Metric("baseline_mbps", bits/el.Seconds()/1e6)
	}
	t.Note("insertion ring wins by overlapping streams on disjoint arcs; token ring is rotation-bound")
	return t
}

// E4AllToAll reproduces slide 8's guarantee: "even if everyone does a
// broadcast at the same time the network is guaranteed to not drop
// packets" — and shows the drop-tail baseline failing the same test.
func E4AllToAll(n, perNode int) *Table {
	return E4AllToAllP(Params{Nodes: n}, perNode)
}

// E4AllToAllP is the parameterized form of E4AllToAll.
func E4AllToAllP(p Params, perNode int) *Table {
	p = p.Merged(Params{Nodes: 16, FiberM: 50})
	n := p.Nodes
	t := &Table{
		ID:     "E4",
		Title:  "all-to-all broadcast losslessness (paper slide 8)",
		Header: []string{"MAC", "nodes", "bcasts/node", "delivered", "expected", "congestion drops", "verdict"},
	}
	expected := n * perNode * (n - 1)

	{
		k, net, sts := macRing(p.seed(), n, p.FiberM)
		delivered := 0
		for i := range sts {
			sts[i].OnDeliver = func(*micropacket.Packet) { delivered++ }
		}
		for i := 0; i < n; i++ {
			src := micropacket.NodeID(i)
			pump(k, sts[i].Send, perNode, func(j int) *micropacket.Packet {
				return micropacket.NewData(src, micropacket.Broadcast, uint8(j), nil)
			})
		}
		k.Run()
		verdict := "LOSSLESS"
		if net.Drops.N != 0 || delivered != expected {
			verdict = "FAIL"
		}
		t.Add("AmpNet insertion ring", fmt.Sprint(n), fmt.Sprint(perNode),
			fmt.Sprint(delivered), fmt.Sprint(expected), fmt.Sprint(net.Drops.N), verdict)
		t.Metric("ampnet_delivered", float64(delivered))
		t.Metric("ampnet_drops", float64(net.Drops.N))
		t.Metric("completion_ns", float64(k.Now()))
	}

	{
		k := sim.NewKernel(p.seed())
		net := phys.NewNet(k)
		c := phys.BuildCluster(net, n, 1, p.FiberM)
		sts := baseline.NewDropTailRing(k, c, 4)
		delivered := 0
		for i := range sts {
			sts[i].OnDeliver = func(*micropacket.Packet) { delivered++ }
		}
		for i := 0; i < n; i++ {
			src := micropacket.NodeID(i)
			st := sts[i]
			// Greedy stations do not backpressure; offer everything at once.
			k.After(0, func() {
				for j := 0; j < perNode; j++ {
					st.Send(micropacket.NewData(src, micropacket.Broadcast, uint8(j), nil))
				}
			})
		}
		k.Run()
		verdict := "drops frames"
		if net.Drops.N == 0 && delivered == expected {
			verdict = "lossless?!"
		}
		t.Add("drop-tail ring (baseline)", fmt.Sprint(n), fmt.Sprint(perNode),
			fmt.Sprint(delivered), fmt.Sprint(expected), fmt.Sprint(net.Drops.N), verdict)
		t.Metric("baseline_drops", float64(net.Drops.N))
	}
	t.Note("AmpNet's losslessness comes from transit priority + insert-when-idle + host backpressure")
	return t
}

// E4aLoadSweep is the ablation: offered load factor vs achieved goodput
// and drops for both MACs.
func E4aLoadSweep(n int) *Table {
	return E4aLoadSweepP(Params{Nodes: n})
}

// E4aLoadSweepP is the parameterized form of E4aLoadSweep.
func E4aLoadSweepP(p Params) *Table {
	p = p.Merged(Params{Nodes: 8, FiberM: 50})
	n := p.Nodes
	t := &Table{
		ID:     "E4a",
		Title:  "offered-load sweep under broadcast traffic (flow-control ablation)",
		Header: []string{"load ×capacity", "MAC", "offered f/s", "delivered f/s", "drops"},
	}
	wireB := wirefmt.Size(wirefmt.V1, micropacket.TypeData, 0) + phys.DefaultIFG
	// Ring capacity for broadcast: one frame occupies every hop, so
	// aggregate broadcast capacity ≈ 1 frame per serialization time.
	capacityFPS := 1e9 / float64(phys.SerTime(wireB))
	const window = 20 * sim.Millisecond

	for _, load := range []float64{0.25, 0.5, 0.9, 1.5} {
		perNodeInterval := sim.Time(float64(n) / (load * capacityFPS) * 1e9)
		run := func(ampnetMAC bool) (delivered int, drops uint64) {
			k := sim.NewKernel(p.seed())
			net := phys.NewNet(k)
			c := phys.BuildCluster(net, n, 1, p.FiberM)
			var send []func(*micropacket.Packet) bool
			if ampnetMAC {
				sts := make([]*insertion.Station, n)
				for i := 0; i < n; i++ {
					sts[i] = insertion.NewStation(k, micropacket.NodeID(i), c.NodePorts[i])
				}
				for i := 0; i < n; i++ {
					c.Switches[0].SetRoute(i, (i+1)%n)
					sts[i].SetEgress(0)
					sts[i].OnDeliver = func(*micropacket.Packet) { delivered++ }
					send = append(send, sts[i].Send)
				}
			} else {
				sts := baseline.NewDropTailRing(k, c, 4)
				for i := range sts {
					sts[i].OnDeliver = func(*micropacket.Packet) { delivered++ }
					send = append(send, sts[i].Send)
				}
			}
			for i := 0; i < n; i++ {
				i := i
				src := micropacket.NodeID(i)
				var tick func()
				tick = func() {
					send[i](micropacket.NewData(src, micropacket.Broadcast, 0, nil))
					if k.Now() < window {
						k.After(perNodeInterval, tick)
					}
				}
				k.After(sim.Time(i)*perNodeInterval/sim.Time(n), tick)
			}
			k.RunUntil(window + 5*sim.Millisecond)
			return delivered, net.Drops.N
		}
		offered := load * capacityFPS
		dA, dropA := run(true)
		dB, dropB := run(false)
		secs := window.Seconds()
		t.Add(fmt.Sprintf("%.2f", load), "AmpNet", fmt.Sprintf("%.0f", offered),
			fmt.Sprintf("%.0f", float64(dA)/float64(n-1)/secs), fmt.Sprint(dropA))
		t.Add(fmt.Sprintf("%.2f", load), "drop-tail", fmt.Sprintf("%.0f", offered),
			fmt.Sprintf("%.0f", float64(dB)/float64(n-1)/secs), fmt.Sprint(dropB))
		t.Metric(fmt.Sprintf("ampnet_drops_load%.2f", load), float64(dropA))
		t.Metric(fmt.Sprintf("baseline_drops_load%.2f", load), float64(dropB))
		t.Metric(fmt.Sprintf("ampnet_goodput_fps_load%.2f", load), float64(dA)/float64(n-1)/secs)
	}
	t.Note("AmpNet sheds overload at the host (refusals), never on the wire; drop-tail loses frames past saturation")
	return t
}
