package experiments

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// E16ScalingEfficiency tabulates the deterministic drivers of parallel
// scaling efficiency as shards multiply over two fabric shapes: the
// partition the cut-aware assigner chose, its cut size and the
// lookahead window it buys, and the window/barrier/exchange volume the
// engine then pays — ending, as always, with the byte-identical check
// against the serial engine. Wall-clock speedup itself is machine-bound
// and measured by the BenchmarkE16Scaling* family (BENCH_baseline.json,
// enforced by benchguard); this table is the seed-pure part the sweep
// harness can aggregate.
func E16ScalingEfficiency() *Table {
	return E16ScalingEfficiencyP(Params{})
}

// E16ScalingEfficiencyP is the parameterized form. Nodes sizes both
// shapes (default 96); Switches fixes the switch/shard-group count
// (default 8). Shard counts swept are 1 (serial), 2, 4 and Switches.
func E16ScalingEfficiencyP(p Params) *Table {
	p = p.Merged(Params{Nodes: 96, Switches: 8, FiberM: 50})
	t := &Table{
		ID:     "E16",
		Title:  "scaling efficiency: partition, lookahead and barrier economics vs shards × fabric shape",
		Header: []string{"fabric", "shards", "partition", "cut", "lookahead", "windows", "barriers", "xframes", "events", "ev/win", "identical"},
	}
	var shardCounts []int
	for _, sc := range []int{1, 2, 4, p.Switches} {
		if sc <= p.Switches && (len(shardCounts) == 0 || sc > shardCounts[len(shardCounts)-1]) {
			shardCounts = append(shardCounts, sc)
		}
	}
	identicalAll := 1.0
	var minLookahead, maxEvPerWin float64
	for _, shape := range []string{"uniform", "sharded"} {
		topo, err := e14Fabric(shape, p.Nodes, p.Switches, p.FiberM)
		if err != nil {
			t.Add(shape, "-", "ERROR", err.Error(), "", "", "", "", "", "", "")
			identicalAll = 0
			continue
		}
		var serial []byte
		for _, shards := range shardCounts {
			var cl *core.Cluster
			rep, err := core.Scenario{
				Name: "e16-" + shape,
				Opts: core.Options{Fabric: &topo, Seed: p.seed(), Shards: shards,
					HeartbeatInterval: 1 * sim.Millisecond, Telemetry: p.Telemetry},
				BootWindow: 100 * sim.Millisecond,
				// FailSwitch/RestoreSwitch, the E14 fault family: it exercises
				// heal + reroute under load and is byte-identical across engines
				// at this scale. (Crash-node faults at 96 nodes on the sharded
				// shape hit a latent heal-boundary divergence that predates this
				// experiment — see ROADMAP.md.)
				Plan: core.Plan{core.FailSwitch(6*sim.Millisecond, p.Switches-1), core.RestoreSwitch(12*sim.Millisecond, p.Switches-1)},
				Loads: []core.Load{&core.PubSubLoad{
					Publisher: 0, Topic: 1, Every: 100 * sim.Microsecond,
					Subscribers: []int{1, p.Nodes / 2, p.Nodes - 2},
				}},
				For:       18 * sim.Millisecond,
				OnCluster: func(c *core.Cluster) { cl = c },
			}.Run()
			if err != nil {
				t.Add(shape, fmt.Sprint(shards), "ERROR", err.Error(), "", "", "", "", "", "", "")
				identicalAll = 0
				continue
			}
			partition, cut, lookahead := "-", "-", "-"
			windows, barriers, xframes := uint64(0), uint64(0), uint64(0)
			evPerWin := "-"
			if cl.Assign != nil {
				partition = cl.Assign.Partition()
				cut = fmt.Sprint(cl.Assign.CutLinks)
				if la := cl.Lookahead(); la == sim.MaxTime {
					lookahead = "∞"
				} else {
					lookahead = la.String()
				}
			}
			events := cl.EventsFired()
			if st := cl.ParStats(); st != nil {
				windows, barriers, xframes = st.Windows, st.Barriers, st.Frames
				if windows > 0 {
					ev := float64(events) / float64(windows)
					evPerWin = fmt.Sprintf("%.0f", ev)
					if ev > maxEvPerWin {
						maxEvPerWin = ev
					}
				}
				if la := cl.Lookahead(); la != sim.MaxTime && (minLookahead == 0 || float64(la) < minLookahead) {
					minLookahead = float64(la)
				}
			}
			identical := "serial"
			if shards == 1 {
				serial = rep.JSON()
			} else if bytes.Equal(serial, rep.JSON()) {
				identical = "yes"
			} else {
				identical = "NO"
				identicalAll = 0
			}
			t.Add(shape, fmt.Sprint(shards), partition, cut, lookahead,
				fmt.Sprint(windows), fmt.Sprint(barriers), fmt.Sprint(xframes),
				fmt.Sprint(events), evPerWin, identical)
		}
	}
	t.Metric("all_identical", identicalAll)
	t.Metric("min_lookahead_ns", minLookahead)
	t.Metric("max_events_per_window", maxEvPerWin)
	t.Note("partition: switch→shard map chosen by the cut-aware assigner (phys.AssignShards);")
	t.Note("cut: links crossing shards; lookahead: the window the shortest cut fiber buys.")
	t.Note("Efficiency rises with ev/win — deeper windows amortize each barrier over more events.")
	t.Note("Wall-clock speedup is machine-bound: BenchmarkE16Scaling* (guarded in BENCH_baseline.json)")
	return t
}
