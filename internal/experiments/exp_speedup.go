package experiments

import (
	"bytes"
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// E17Speedup measures the multi-core speedup of the parallel sharded
// engine: one faulted, loaded scenario run serially and then at rising
// shard counts over each available transport, recording the wall time,
// the speedup against the serial run, and the busy/wait decomposition
// from the telemetry recorder's span timeline — how much of the engine
// wall the shards spent executing events versus waiting at barriers,
// and what share the coordinator's exchange/action work took.
//
// Unlike every other experiment, E17's table contains wall-clock
// numbers: it is machine-bound by construction (Spec.Wall), excluded
// from default sweeps, and labeled with the host's core count so a
// single-core run never masquerades as a parallelism result. The
// deterministic half of the run is still checked: every sharded report
// must be byte-identical to the serial one.
func E17Speedup() *Table {
	return E17SpeedupP(Params{})
}

// E17SpeedupP is the parameterized form. Nodes/Switches size the
// sharded fabric (default 96×8); shard counts swept are 1 (serial), 2,
// 4 and Switches. The socket transport joins the sweep only when
// Params.ShardWorker names a cmd/ampshard binary; otherwise it is
// reported as skipped. When Params.Telemetry is set, its recorder (and
// clock) is used — the hook that makes the table reproducible under an
// injected telemetry.ManualClock, and that lets cmd/ampbench export the
// accumulated spans as a timeline profile.
func E17SpeedupP(p Params) *Table {
	p = p.Merged(Params{Nodes: 96, Switches: 8, FiberM: 50})
	cores := runtime.NumCPU()
	procs := runtime.GOMAXPROCS(0)
	t := &Table{
		ID: "E17",
		Title: fmt.Sprintf("multi-core speedup: wall time and busy/wait decomposition vs shards × transport (%d cores, GOMAXPROCS %d)",
			cores, procs),
		Header: []string{"transport", "shards", "wall", "speedup", "busy", "wait", "coord", "identical"},
	}
	rec := p.Telemetry
	if rec == nil {
		rec = telemetry.NewRecorder(nil)
	}
	clock := rec.Clock()

	var shardCounts []int
	for _, sc := range []int{1, 2, 4, p.Switches} {
		if sc <= p.Switches && (len(shardCounts) == 0 || sc > shardCounts[len(shardCounts)-1]) {
			shardCounts = append(shardCounts, sc)
		}
	}

	topo, err := e14Fabric("sharded", p.Nodes, p.Switches, p.FiberM)
	if err != nil {
		t.Add("-", "-", "ERROR", err.Error(), "", "", "", "")
		t.Metric("all_identical", 0)
		return t
	}

	identicalAll := 1.0
	var serialJSON []byte
	var serialWallNS int64
	var maxSpeedup float64
	for _, transport := range []string{"inproc", "socket"} {
		if transport == "socket" && len(p.ShardWorker) == 0 {
			t.Add("socket", "-", "skipped", "-", "-", "-", "-",
				"- (no ampshard worker; pass one via Params.ShardWorker)")
			continue
		}
		for _, shards := range shardCounts {
			if transport == "socket" && shards == 1 {
				continue // the serial engine has no shards to distribute
			}
			opts := core.Options{Fabric: &topo, Seed: p.seed(), Shards: shards,
				HeartbeatInterval: 1 * sim.Millisecond}
			if shards > 1 {
				opts.Transport = transport
				opts.ShardWorker = p.ShardWorker
				opts.Telemetry = rec
			}
			// Decomposition by difference: the recorder accumulates across
			// runs, so each run's spans are the delta between snapshots.
			d0 := telemetry.Decompose(rec.Spans())
			sw := telemetry.StartStopwatch(clock)
			rep, err := core.Scenario{
				Name: "e17",
				Opts: opts,
				Plan: core.Plan{core.FailSwitch(6*sim.Millisecond, p.Switches-1),
					core.RestoreSwitch(12*sim.Millisecond, p.Switches-1)},
				Loads: []core.Load{&core.PubSubLoad{
					Publisher: 0, Topic: 1, Every: 100 * sim.Microsecond,
					Subscribers: []int{1, p.Nodes / 2, p.Nodes - 2},
				}},
				For: 18 * sim.Millisecond,
			}.Run()
			wallNS := int64(sw.Elapsed())
			d1 := telemetry.Decompose(rec.Spans())
			if err != nil {
				t.Add(transport, fmt.Sprint(shards), "ERROR", err.Error(), "", "", "", "")
				identicalAll = 0
				continue
			}

			speedup := "-"
			identical := "serial"
			if shards == 1 {
				serialJSON = rep.JSON()
				serialWallNS = wallNS
			} else {
				if serialWallNS > 0 && wallNS > 0 {
					s := float64(serialWallNS) / float64(wallNS)
					speedup = fmt.Sprintf("%.2fx", s)
					if s > maxSpeedup {
						maxSpeedup = s
					}
				}
				if bytes.Equal(serialJSON, rep.JSON()) {
					identical = "yes"
				} else {
					identical = "NO"
					identicalAll = 0
				}
			}

			busy, wait, coord := "-", "-", "-"
			if shards > 1 {
				dRun := d1.RunNS - d0.RunNS
				dEngine := (d1.WindowNS + d1.ExchangeNS + d1.ActionNS) -
					(d0.WindowNS + d0.ExchangeNS + d0.ActionNS)
				if dEngine > 0 {
					b := float64(dRun) / (float64(shards) * float64(dEngine))
					if b > 1 {
						b = 1
					}
					busy = fmt.Sprintf("%.0f%%", b*100)
					wait = fmt.Sprintf("%.0f%%", (1-b)*100)
					coord = fmt.Sprintf("%.0f%%",
						float64((d1.ExchangeNS+d1.ActionNS)-(d0.ExchangeNS+d0.ActionNS))/float64(dEngine)*100)
				}
			}
			t.Add(transport, fmt.Sprint(shards), fmt.Sprintf("%.1fms", float64(wallNS)/1e6),
				speedup, busy, wait, coord, identical)
		}
	}
	t.Metric("cores", float64(cores))
	t.Metric("gomaxprocs", float64(procs))
	t.Metric("max_speedup", maxSpeedup)
	t.Metric("all_identical", identicalAll)
	t.Note("Wall numbers are machine-bound: this table is excluded from default sweeps (Spec.Wall)")
	t.Note("and only comparable across runs on the same host; the cores/GOMAXPROCS header keeps it honest.")
	t.Note("busy = shard run-span time / (shards × engine wall); wait = 1 − busy (barrier waiting);")
	t.Note("coord = the coordinator-serial share (exchange + action spans) of engine wall.")
	t.Note("Speedup needs busy shards AND spare cores: on a single-core host expect ≤1x at any shard count.")
	return t
}
