package experiments

import (
	"testing"

	"repro/internal/telemetry"
)

// Every experiment must be a pure function of its Params: two runs with
// the same seed must render byte-identical tables. This is the property
// the sweep harness builds on — without it, cross-seed aggregates would
// mix run-to-run noise into the statistics. Wall-clock experiments
// (Spec.Wall) are excluded for the same reason the sweep harness
// excludes them: their tables time concurrent shard goroutines, whose
// clock reads interleave differently run to run even under an injected
// manual clock. TestE17SpeedupStructure covers their deterministic
// half.
func TestAllSpecsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite twice")
	}
	for _, s := range All() {
		s := s
		if s.Wall {
			continue
		}
		t.Run(s.ID, func(t *testing.T) {
			t.Parallel()
			p := Params{Seed: 7}.Merged(s.Defaults)
			a := s.Run(p).String()
			b := s.Run(p).String()
			if a != b {
				t.Fatalf("two same-seed runs of %s differ:\n--- first\n%s\n--- second\n%s", s.ID, a, b)
			}
		})
	}
}

// TestE17SpeedupStructure checks the speedup study's deterministic
// half on a scaled-down fabric: every sharded report byte-matches the
// serial one, the socket leg reports itself skipped when no worker
// binary is supplied, and the machine-honesty metrics (cores,
// GOMAXPROCS) are present. Wall numbers themselves are machine-bound
// and not asserted.
func TestE17SpeedupStructure(t *testing.T) {
	tab := E17SpeedupP(Params{
		Seed: 7, Nodes: 12, Switches: 4,
		Telemetry: telemetry.NewRecorder(telemetry.NewManualClock(0, 1000)),
	})
	if tab.Metrics["all_identical"] != 1 {
		t.Fatalf("sharded reports diverged from serial:\n%s", tab.String())
	}
	if tab.Metrics["cores"] < 1 || tab.Metrics["gomaxprocs"] < 1 {
		t.Fatalf("machine-honesty metrics missing: %v", tab.Metrics)
	}
	var sawSerial, sawSharded, sawSkipped bool
	for _, row := range tab.Rows {
		switch {
		case row[0] == "inproc" && row[7] == "serial":
			sawSerial = true
		case row[0] == "inproc" && row[7] == "yes":
			sawSharded = true
			if row[4] == "-" || row[5] == "-" {
				t.Fatalf("sharded row missing busy/wait decomposition: %v", row)
			}
		case row[0] == "socket" && row[2] == "skipped":
			sawSkipped = true
		}
	}
	if !sawSerial || !sawSharded || !sawSkipped {
		t.Fatalf("rows missing (serial %v, sharded %v, socket-skipped %v):\n%s",
			sawSerial, sawSharded, sawSkipped, tab.String())
	}
}

// A different seed must not corrupt the paper's invariant verdicts: the
// qualitative claims hold for every seed, only the noisy quantities
// move. Spot-check the two claims that are most seed-sensitive.
func TestSeededRunsKeepInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple seeded experiment runs")
	}
	for _, seed := range []uint64{2, 9} {
		tab := E4AllToAllP(Params{Seed: seed, Nodes: 8}, 40)
		if tab.Rows[0][6] != "LOSSLESS" {
			t.Fatalf("seed %d: AmpNet dropped frames: %v", seed, tab.Rows[0])
		}
		tab = E10FailoverP(Params{Seed: seed})
		for _, row := range tab.Rows {
			if row[5] != "NONE" {
				t.Fatalf("seed %d: data loss: %v", seed, row)
			}
		}
	}
}

// Params.Merged fills only zero fields; Label excludes the seed.
func TestParamsMergeAndLabel(t *testing.T) {
	d := Params{Nodes: 8, Switches: 4, FiberM: 50}
	p := Params{Seed: 3, Nodes: 16}.Merged(d)
	if p.Seed != 3 || p.Nodes != 16 || p.Switches != 4 || p.FiberM != 50 {
		t.Fatalf("merged = %+v", p)
	}
	if got := p.Label(); got != "n16.sw4.f50" {
		t.Fatalf("label = %q", got)
	}
	if got := (Params{Seed: 9}).Label(); got != "default" {
		t.Fatalf("label of seed-only params = %q, want default", got)
	}
}

// Registry variants must merge into runnable parameter sets.
func TestRegistryVariantsRunnable(t *testing.T) {
	for _, s := range All() {
		for _, v := range s.Variants {
			m := v.Merged(s.Defaults)
			if m.Nodes < 0 || m.Switches < 0 || m.FiberM < 0 {
				t.Fatalf("%s variant %+v merges to invalid %+v", s.ID, v, m)
			}
		}
	}
}
