package experiments

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/phys"
	"repro/internal/sim"
)

// E15WireScale measures scaling past the one-byte MicroPacket address
// space: fabrics the v1 wire format cannot address at all (>255 nodes,
// auto-selecting wire v2) booting, healing through a node crash and
// delivering seeded Poisson pub-sub traffic — serial vs sharded, with
// the defining byte-identical-Report check at every size. It is the
// E14 story continued past the address ceiling the seed recorded in
// ROADMAP.md; wall-clock speedup is machine-bound and measured by
// BenchmarkE15* (BENCH_baseline.json).
func E15WireScale() *Table {
	return E15WireScaleP(Params{})
}

// E15Scenario is one E15 run: an 8-ring sharded fabric (200 m
// inter-shard trunks), a crash+reboot of the highest node, and a
// Poisson pub-sub stream spanning the shards. It is exported so
// BenchmarkE15WireScale* time exactly the scenario the E15 table and
// BENCH_baseline.json describe (the core scale tests mirror it by
// hand — they cannot import this package without a cycle).
func E15Scenario(nodes int, seed uint64, shards int) core.Scenario {
	topo := phys.Sharded(8, nodes/8, 1, 50)
	for i := range topo.Trunks {
		topo.Trunks[i].FiberM = 200
	}
	return core.Scenario{
		Name: "e15-scale",
		// The liveness cadences are slowed to big-fabric values: the
		// defaults are calibrated for room-sized rings and would drown a
		// thousand-node fabric in heartbeat and keepalive chatter. They
		// are Options (not an OnCluster hook) so the spec serializer can
		// ship them to socket-transport shard workers.
		Opts: core.Options{Fabric: &topo, Seed: seed, Shards: shards,
			HeartbeatInterval: 5 * sim.Millisecond,
			JoinTimeout:       20 * sim.Millisecond,
			KeepaliveInterval: 2 * sim.Millisecond,
			SilenceTimeout:    10 * sim.Millisecond},
		BootWindow: sim.Time(nodes) * 2 * sim.Millisecond,
		Plan: core.Plan{
			core.CrashNode(2*sim.Millisecond, nodes-1),
			core.RebootNode(4*sim.Millisecond, nodes-1),
		},
		Loads: []core.Load{&core.PubSubLoad{
			Publisher: 0, Topic: 1, Every: 200 * sim.Microsecond, Poisson: true,
			Subscribers: []int{1, nodes / 4, nodes / 2, nodes - 2},
		}},
		For: 12 * sim.Millisecond,
		// Settle outlasts the post-reboot re-roster churn (~17 ms at
		// 1024 nodes) plus join-retry margin; see the scale tests.
		Settle: 20 * sim.Millisecond,
	}
}

// E15WireScaleP is the parameterized form. Nodes must divide over the
// 8 shard rings and exceed the v1 ceiling to be meaningful (default
// 320); shard counts swept are 1 (serial) and 8.
func E15WireScaleP(p Params) *Table {
	p = p.Merged(Params{Nodes: 320})
	t := &Table{
		ID:     "E15",
		Title:  "wire v2 scaling past 255 nodes: boot, heal and Poisson delivery, serial vs sharded",
		Header: []string{"nodes", "wire", "shards", "boot", "heal", "delivered", "drops", "identical"},
	}
	nodes := p.Nodes
	if nodes%8 != 0 {
		t.Add(fmt.Sprint(nodes), "-", "-", "ERROR", "node count must divide over 8 shard rings", "", "", "")
		t.Metric("all_identical", 0)
		return t
	}
	identicalAll := 1.0
	var serial []byte
	var delivered uint64
	healNS := sim.NewSample("heal")
	for _, shards := range []int{1, 8} {
		rep, err := E15Scenario(nodes, p.seed(), shards).Run()
		if err != nil {
			t.Add(fmt.Sprint(nodes), "-", fmt.Sprint(shards), "ERROR", err.Error(), "", "", "")
			identicalAll = 0
			continue
		}
		var worst int64
		for _, e := range rep.Events {
			if e.HealNS > worst {
				worst = e.HealNS
			}
		}
		healNS.Observe(float64(worst))
		identical := "serial"
		if shards == 1 {
			serial = rep.JSON()
		} else if bytes.Equal(serial, rep.JSON()) {
			identical = "yes"
		} else {
			identical = "NO"
			identicalAll = 0
		}
		delivered = rep.Loads[0].Delivered
		t.Add(fmt.Sprint(nodes), rep.Wire, fmt.Sprint(shards),
			sim.Time(rep.BootNS).String(), sim.Time(worst).String(),
			fmt.Sprint(rep.Loads[0].Delivered), fmt.Sprint(rep.Drops), identical)
	}
	t.Metric("heal_ns_max", healNS.Max())
	t.Metric("delivered_total", float64(delivered))
	t.Metric("all_identical", identicalAll)
	t.Note("every row is beyond the v1 wire format's 255-node address space (wire v2, uint16 addresses)")
	t.Note("identical=yes: the sharded Report JSON is byte-identical to the serial engine's at this scale")
	t.Note("liveness cadences are retuned for fabric size (join/keepalive/heartbeat), as real deployments do")
	return t
}
