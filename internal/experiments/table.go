// Package experiments implements the reproduction of every table,
// figure and quantitative claim in the AmpNet paper (the per-experiment
// index lives in DESIGN.md §2; measured-vs-paper results are recorded
// in EXPERIMENTS.md). Each experiment is a pure function from
// parameters to a Table, shared by cmd/ampbench (which prints them) and
// the root bench_test.go (which times them).
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID     string // experiment id, e.g. "E4"
	Title  string // what the paper claims / shows
	Header []string
	Rows   [][]string
	Notes  []string // caveats, SUBST notes, pass/fail verdicts

	// Metrics holds machine-readable scalar results (heal times in ns,
	// throughput in Mb/s, drop counts, …) keyed by a stable name. The
	// sweep harness aggregates these across seeds; the text rendering
	// ignores them.
	Metrics map[string]float64
}

// Metric records a machine-readable scalar result.
func (t *Table) Metric(name string, v float64) {
	if t.Metrics == nil {
		t.Metrics = map[string]float64{}
	}
	t.Metrics[name] = v
}

// Add appends a row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row of formatted cells.
func (t *Table) Addf(format string, args ...any) {
	t.Rows = append(t.Rows, strings.Split(fmt.Sprintf(format, args...), "|"))
}

// Note appends a note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(w, "  %-*s", widths[i], c)
			} else {
				fmt.Fprintf(w, "  %s", c)
			}
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}
