package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netcache"
	"repro/internal/sim"
)

// E5Seqlock reproduces the slide-9 Lamport-counter protocol: a writer
// updates a replicated record at increasing rates while a reader on
// another node polls its local replica. Readers must never observe a
// torn value; the retry fraction grows with the write rate — the cost
// profile of the "if they agree read, else wait and go to Start" rule.
func E5Seqlock() *Table {
	return E5SeqlockP(Params{})
}

// E5SeqlockP is the parameterized form of E5Seqlock.
func E5SeqlockP(p Params) *Table {
	p = p.Merged(Params{Nodes: 3, Switches: 2})
	t := &Table{
		ID:     "E5",
		Title:  "network-cache consistency via Lamport counters (paper slide 9)",
		Header: []string{"write interval", "reads", "clean", "retries", "retry %", "torn values"},
	}
	tornTotal := 0
	for _, wi := range []sim.Time{1 * sim.Millisecond, 200 * sim.Microsecond, 50 * sim.Microsecond, 10 * sim.Microsecond} {
		c := core.New(core.Options{Nodes: p.Nodes, Switches: p.Switches, Seed: p.seed(), Regions: map[uint8]int{1: 4096}})
		if err := c.Boot(0); err != nil {
			t.Note("boot failed: %v", err)
			return t
		}
		rec := netcache.Record{Region: 1, Off: 0, Size: 64}
		writer := c.Node(0).CacheW()
		reader := c.Node(p.Nodes - 1).Cache() // farthest replica from the writer

		var torn, clean, retries int
		seq := byte(0)
		uniform := func(d []byte) bool {
			for _, b := range d {
				if b != d[0] {
					return false
				}
			}
			return true
		}
		stop := c.Now() + 20*sim.Millisecond
		c.Every(wi, func() bool {
			seq++
			buf := make([]byte, 64)
			for i := range buf {
				buf[i] = seq
			}
			writer.WriteRecord(rec, buf)
			return c.Now() < stop
		})
		c.Every(5*sim.Microsecond, func() bool {
			if d, ok := reader.TryRead(rec); ok {
				clean++
				if !uniform(d) {
					torn++
				}
			} else {
				retries++
			}
			return c.Now() < stop
		})
		c.Run(25 * sim.Millisecond)
		total := clean + retries
		tornTotal += torn
		t.Add(wi.String(), fmt.Sprint(total), fmt.Sprint(clean), fmt.Sprint(retries),
			fmt.Sprintf("%.2f", 100*float64(retries)/float64(total)), fmt.Sprint(torn))
	}
	t.Metric("torn_total", float64(tornTotal))
	t.Note("torn values must be 0 at every write rate — the protocol's invariant")
	return t
}

// E6Semaphores reproduces slide 10: write conflicts resolved with
// AmpNet locking primitives. N nodes increment an unprotected shared
// record under a network semaphore; the final count must be exact, and
// the table reports lock acquisition latency.
func E6Semaphores(nodes, opsPerNode int) *Table {
	return E6SemaphoresP(Params{Nodes: nodes}, opsPerNode)
}

// E6SemaphoresP is the parameterized form of E6Semaphores.
func E6SemaphoresP(p Params, opsPerNode int) *Table {
	p = p.Merged(Params{Nodes: 5, Switches: 2})
	nodes := p.Nodes
	t := &Table{
		ID:     "E6",
		Title:  "network semaphores serialize cache write conflicts (paper slide 10)",
		Header: []string{"nodes", "ops/node", "final counter", "expected", "exact", "lock µs p50", "lock µs p99"},
	}
	c := core.New(core.Options{Nodes: nodes, Switches: p.Switches, Seed: p.seed(), Regions: map[uint8]int{1: 4096}})
	if err := c.Boot(0); err != nil {
		t.Note("boot failed: %v", err)
		return t
	}
	rec := netcache.Record{Region: 1, Off: 256, Size: 8}
	lat := sim.NewSample("lock")

	shared := 0 // host-side shared value, protected only by the lock
	var launch func(h core.Handle, left int)
	launch = func(h core.Handle, left int) {
		if left == 0 {
			return
		}
		start := c.Now()
		h.Sem().Lock(42, func() {
			lat.Observe(float64(c.Now()-start) / 1000)
			v := shared
			c.K.After(2*sim.Microsecond, func() {
				shared = v + 1
				var buf [8]byte
				buf[0] = byte(shared)
				h.CacheW().WriteRecord(rec, buf[:])
				h.Sem().Unlock(42)
				launch(h, left-1)
			})
		})
	}
	for i := 0; i < nodes; i++ {
		h := c.Node(i)
		c.K.After(0, func() { launch(h, opsPerNode) })
	}
	// Contended locking takes a while; wait for the exact count (or
	// give up after a generous window).
	_ = c.WaitUntil(func() bool { return shared == nodes*opsPerNode }, 5*sim.Second)
	exact := "YES"
	if shared != nodes*opsPerNode {
		exact = "NO (lost updates)"
	}
	t.Add(fmt.Sprint(nodes), fmt.Sprint(opsPerNode), fmt.Sprint(shared),
		fmt.Sprint(nodes*opsPerNode), exact,
		fmt.Sprintf("%.1f", lat.Percentile(50)), fmt.Sprintf("%.1f", lat.Percentile(99)))
	t.Metric("lost_updates", float64(nodes*opsPerNode-shared))
	t.Metric("lock_us_p50", lat.Percentile(50))
	t.Metric("lock_us_p99", lat.Percentile(99))
	t.Note("the shared value is deliberately unprotected host memory; exactness proves mutual exclusion")
	return t
}

// E6aWriteThrough measures the write-through propagation latency of a
// cache record update to every replica (slide 10: "no caching is
// allowed in local host cache" — every write goes to the wire).
func E6aWriteThrough(nodes int) *Table {
	return E6aWriteThroughP(Params{Nodes: nodes})
}

// E6aWriteThroughP is the parameterized form of E6aWriteThrough.
func E6aWriteThroughP(p Params) *Table {
	p = p.Merged(Params{Nodes: 6, Switches: 2})
	nodes := p.Nodes
	t := &Table{
		ID:     "E6a",
		Title:  "write-through replication latency (paper slide 10)",
		Header: []string{"nodes", "record B", "replica lat µs (min)", "(max)"},
	}
	for _, size := range []int{16, 64, 256} {
		c := core.New(core.Options{Nodes: nodes, Switches: p.Switches, Seed: p.seed(), Regions: map[uint8]int{1: 8192}})
		if err := c.Boot(0); err != nil {
			t.Note("boot failed: %v", err)
			return t
		}
		rec := netcache.Record{Region: 1, Off: 0, Size: size}
		want := make([]byte, size)
		for i := range want {
			want[i] = 0xAA
		}
		// One concurrent 1 µs poller per replica, so each arrival is
		// stamped independently at poll resolution.
		start := c.Now()
		c.Node(0).CacheW().WriteRecord(rec, want)
		arrive := make([]sim.Time, 0, nodes-1)
		for i := 1; i < nodes; i++ {
			h := c.Node(i)
			c.Every(sim.Microsecond, func() bool {
				if d, ok := h.Cache().TryRead(rec); ok && len(d) > 0 && d[0] == 0xAA {
					arrive = append(arrive, c.Now()-start)
					return false
				}
				return true
			})
		}
		_ = c.WaitUntil(func() bool { return len(arrive) == nodes-1 }, 10*sim.Millisecond)
		if len(arrive) != nodes-1 {
			t.Add(fmt.Sprint(nodes), fmt.Sprint(size), "INCOMPLETE", fmt.Sprint(len(arrive)))
			continue
		}
		min, max := arrive[0], arrive[0]
		for _, a := range arrive {
			if a < min {
				min = a
			}
			if a > max {
				max = a
			}
		}
		t.Add(fmt.Sprint(nodes), fmt.Sprint(size),
			fmt.Sprintf("%.1f", min.Micros()), fmt.Sprintf("%.1f", max.Micros()))
		t.Metric(fmt.Sprintf("replica_lat_us_max_%dB", size), max.Micros())
	}
	return t
}
