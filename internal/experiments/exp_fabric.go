package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/phys"
	"repro/internal/sim"
)

// E13FabricHeal measures what the fabric generalization buys: heal time
// and delivered pub/sub throughput across fabric shapes (the paper's
// uniform segment, dual counter-rotating rings, a trunked switch mesh,
// a sharded multi-ring cluster) crossed with fault schedules (switch
// death, switch blip, trunk cut and re-merge, node crash and reboot).
// The paper's slide-14 topologies can only express the first column;
// the trunked shapes heal hops across surviving rings.
func E13FabricHeal() *Table {
	return E13FabricHealP(Params{})
}

// fabricSchedule is one fault schedule of the E13 grid.
type fabricSchedule struct {
	name       string
	needTrunks bool
	plan       func(nodes int) core.Plan
}

// E13FabricHealP is the parameterized form of E13FabricHeal. Nodes and
// Switches size every shape; the seed drives the whole simulation.
func E13FabricHealP(p Params) *Table {
	p = p.Merged(Params{Nodes: 6, Switches: 4, FiberM: 50})
	t := &Table{
		ID:     "E13",
		Title:  "heal time and delivered throughput vs fabric shape × fault schedule",
		Header: []string{"fabric", "trunks", "schedule", "heal", "delivered", "gaps", "drops", "healed"},
	}
	shards := 2
	nps, sps := p.Nodes/shards, p.Switches/shards
	if nps < 2 {
		nps = 2
	}
	if sps < 1 {
		sps = 1
	}
	fabrics := []phys.Topology{
		phys.Uniform(p.Nodes, p.Switches, p.FiberM),
		phys.DualRing(p.Nodes, p.FiberM),
		phys.Mesh(p.Nodes, max(p.Switches, 2), p.FiberM),
		phys.Sharded(shards, nps, sps, p.FiberM),
	}
	schedules := []fabricSchedule{
		{"switch-death", false, func(int) core.Plan {
			return core.Plan{core.FailSwitch(5*sim.Millisecond, 0)}
		}},
		{"switch-blip", false, func(int) core.Plan {
			return core.Plan{core.FailSwitch(5*sim.Millisecond, 0), core.RestoreSwitch(15*sim.Millisecond, 0)}
		}},
		{"trunk-cut", true, func(int) core.Plan {
			return core.Plan{core.FailTrunk(5*sim.Millisecond, 0), core.RestoreTrunk(15*sim.Millisecond, 0)}
		}},
		{"node-crash", false, func(nodes int) core.Plan {
			return core.Plan{core.CrashNode(5*sim.Millisecond, nodes-1), core.RebootNode(15*sim.Millisecond, nodes-1)}
		}},
	}

	healNS := sim.NewSample("heal")
	var delivered uint64
	allHealed := 1.0
	for _, topo := range fabrics {
		topo := topo
		for _, sched := range schedules {
			if sched.needTrunks && len(topo.Trunks) == 0 {
				continue
			}
			// Params.Shards rides along where the shape can carry it
			// (a shard must own at least one switch); the report — and
			// so the table — is byte-identical to the serial engine's.
			shards := p.Shards
			if shards > topo.Switches {
				shards = topo.Switches
			}
			rep, err := core.Scenario{
				Name: fmt.Sprintf("e13-%s-%s", topo.Name, sched.name),
				Opts: core.Options{Fabric: &topo, Seed: p.seed(), Shards: shards,
					Telemetry: p.Telemetry},
				Plan: sched.plan(topo.Nodes),
				Loads: []core.Load{&core.PubSubLoad{
					Publisher: 0, Topic: 1, Every: 50 * sim.Microsecond,
				}},
				For: 25 * sim.Millisecond,
			}.Run()
			if err != nil {
				t.Add(topo.Name, fmt.Sprint(len(topo.Trunks)), sched.name, "ERROR", err.Error(), "", "", "")
				allHealed = 0
				continue
			}
			var worst int64
			for _, e := range rep.Events {
				if e.HealNS > worst {
					worst = e.HealNS
				}
			}
			healNS.Observe(float64(worst))
			delivered += rep.Loads[0].Delivered
			healed := "yes"
			if !rep.Healed {
				healed, allHealed = "NO", 0
			}
			t.Add(topo.Name, fmt.Sprint(len(topo.Trunks)), sched.name,
				sim.Time(worst).String(), fmt.Sprint(rep.Loads[0].Delivered),
				fmt.Sprint(rep.Loads[0].Gaps), fmt.Sprint(rep.Drops), healed)
		}
	}
	t.Metric("heal_ns_mean", healNS.Mean())
	t.Metric("heal_ns_max", healNS.Max())
	t.Metric("delivered_total", float64(delivered))
	t.Metric("all_healed", allHealed)
	t.Note("trunked shapes (dualring/mesh/sharded) survive faults the uniform segment cannot express:")
	t.Note("whole-switch loss where no single switch sees every node, and trunk partition with re-merge")
	return t
}
