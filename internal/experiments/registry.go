package experiments

// Spec names one experiment and how to run it with default parameters.
type Spec struct {
	ID    string
	Run   func() *Table
	Short string
}

// All returns every experiment in DESIGN.md §2 order, with the default
// parameters used by cmd/ampbench and recorded in EXPERIMENTS.md.
func All() []Spec {
	return []Spec{
		{"e1", E1TypeTable, "MicroPacket type table (slide 4)"},
		{"e2", E2WireFormats, "wire formats fixed/variable (slides 5–6)"},
		{"e3", func() *Table { return E3MultiStream(400) }, "multi-stream segment insertion (slide 7)"},
		{"e4", func() *Table { return E4AllToAll(16, 100) }, "all-to-all broadcast losslessness (slide 8)"},
		{"e4a", func() *Table { return E4aLoadSweep(8) }, "offered-load sweep ablation"},
		{"e5", E5Seqlock, "Lamport-counter cache consistency (slide 9)"},
		{"e6", func() *Table { return E6Semaphores(5, 20) }, "network semaphores mutual exclusion (slide 10)"},
		{"e6a", func() *Table { return E6aWriteThrough(6) }, "write-through replication latency (slide 10)"},
		{"e7", func() *Table { return E7Redundancy(6) }, "dual/quad redundancy survivability (slides 14–15)"},
		{"e7a", func() *Table { return E7aLinkFailures(8, 4, 8, 5) }, "random link-failure ring salvage"},
		{"e8", E8Rostering, "rostering: two ring-tours, 1–2 ms (slide 16)"},
		{"e8a", E8aDetectionSensitivity, "detection-latency ablation"},
		{"e9", E9Assimilation, "assimilation & cache refresh (slide 17)"},
		{"e10", E10Failover, "failover: detection, period, no data loss (slides 18–19)"},
		{"e11", E11SelfHealVsBaseline, "self-healing vs static network (slides 2, 13, 18)"},
		{"e12", func() *Table { return E12Collectives(8) }, "AmpIP + collectives stack (slides 3, 12)"},
	}
}

// ByID returns the spec with the given id, or nil.
func ByID(id string) *Spec {
	for _, s := range All() {
		if s.ID == id {
			sc := s
			return &sc
		}
	}
	return nil
}
