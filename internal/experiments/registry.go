package experiments

import (
	"fmt"
	"strings"

	"repro/internal/telemetry"
)

// Params parameterizes a single experiment run. The zero value means
// "use the experiment's defaults"; the sweep harness fills Seed and
// merges topology variants over each spec's Defaults.
type Params struct {
	Seed     uint64  // deterministic kernel seed; 0 → 1
	Nodes    int     // node count; 0 → experiment default
	Switches int     // switch count (2=dual, 4=quad redundant); 0 → default
	FiberM   float64 // fiber meters per link; 0 → default
	// Shards runs cluster-level experiments on the parallel sharded
	// engine (internal/parsim) with this many shards; 0/1 is the
	// serial engine. Reports are byte-identical either way, so this is
	// a wall-clock knob, not a semantic one.
	Shards int
	// ShardWorker is the worker command for the socket transport
	// (cmd/ampshard argv); nil restricts wall-clock experiments to the
	// in-process transport. Excluded from JSON and Label: it names a
	// host binary, not a topology.
	ShardWorker []string `json:"-"`
	// Telemetry, when set, is attached to every parallel cluster the
	// experiment builds (Options.Telemetry), collecting wall-clock
	// window/run/barrier spans for timeline export. Reports stay
	// byte-identical with or without it.
	Telemetry *telemetry.Recorder `json:"-"`
}

// seed returns the effective kernel seed.
func (p Params) seed() uint64 {
	if p.Seed == 0 {
		return 1
	}
	return p.Seed
}

// Merged fills any zero field of p from d.
func (p Params) Merged(d Params) Params {
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	if p.Nodes == 0 {
		p.Nodes = d.Nodes
	}
	if p.Switches == 0 {
		p.Switches = d.Switches
	}
	if p.FiberM == 0 {
		p.FiberM = d.FiberM
	}
	if p.Shards == 0 {
		p.Shards = d.Shards
	}
	if p.ShardWorker == nil {
		p.ShardWorker = d.ShardWorker
	}
	if p.Telemetry == nil {
		p.Telemetry = d.Telemetry
	}
	return p
}

// Label renders the topology part of p as a short stable token, e.g.
// "n8.sw4.f1000", used by the sweep harness to name variants. The seed
// is deliberately excluded: one variant spans many seeds.
func (p Params) Label() string {
	var parts []string
	if p.Nodes != 0 {
		parts = append(parts, fmt.Sprintf("n%d", p.Nodes))
	}
	if p.Switches != 0 {
		parts = append(parts, fmt.Sprintf("sw%d", p.Switches))
	}
	if p.FiberM != 0 {
		parts = append(parts, fmt.Sprintf("f%.0f", p.FiberM))
	}
	if p.Shards > 1 {
		parts = append(parts, fmt.Sprintf("p%d", p.Shards))
	}
	if len(parts) == 0 {
		return "default"
	}
	return strings.Join(parts, ".")
}

// Spec names one experiment and how to run it. Run receives merged
// Params (seed + topology); experiments that have no tunable topology
// simply ignore the fields they do not use.
type Spec struct {
	ID       string
	Short    string
	Defaults Params   // base topology; zero fields fall back to in-code defaults
	Variants []Params // optional topology variants for -sweep (merged over Defaults)
	// Sharded marks experiments whose Run honors Params.Shards (drives
	// its clusters through the scenario layer's engine selection). The
	// sweep harness only stamps a shard count onto these, so a "pN"
	// variant label always means the parallel engine actually ran.
	Sharded bool
	// Wall marks experiments whose tables contain wall-clock
	// measurements (speedup curves, span decompositions). The sweep
	// harness excludes them from the default all-experiments plan —
	// default sweeps stay byte-reproducible — so they only run when
	// named explicitly.
	Wall bool
	Run  func(Params) *Table
}

// All returns every experiment in DESIGN.md §2 order, with the default
// parameters used by cmd/ampbench and recorded in EXPERIMENTS.md.
func All() []Spec {
	return []Spec{
		{ID: "e1", Short: "MicroPacket type table (slide 4)",
			Run: func(Params) *Table { return E1TypeTable() }},
		{ID: "e2", Short: "wire formats fixed/variable (slides 5–6)",
			Run: func(Params) *Table { return E2WireFormats() }},
		{ID: "e3", Short: "multi-stream segment insertion (slide 7)",
			Defaults: Params{Nodes: 4, FiberM: 50},
			Variants: []Params{{Nodes: 4}, {Nodes: 8}, {Nodes: 8, FiberM: 1000}},
			Run:      func(p Params) *Table { return E3MultiStreamP(p, 400) }},
		{ID: "e4", Short: "all-to-all broadcast losslessness (slide 8)",
			Defaults: Params{Nodes: 16, FiberM: 50},
			Variants: []Params{{Nodes: 8}, {Nodes: 16}, {Nodes: 24}},
			Run:      func(p Params) *Table { return E4AllToAllP(p, 100) }},
		{ID: "e4a", Short: "offered-load sweep ablation",
			Defaults: Params{Nodes: 8, FiberM: 50},
			Run:      E4aLoadSweepP},
		{ID: "e5", Short: "Lamport-counter cache consistency (slide 9)",
			Run: E5SeqlockP},
		{ID: "e6", Short: "network semaphores mutual exclusion (slide 10)",
			Defaults: Params{Nodes: 5},
			Run:      func(p Params) *Table { return E6SemaphoresP(p, 20) }},
		{ID: "e6a", Short: "write-through replication latency (slide 10)",
			Defaults: Params{Nodes: 6},
			Run:      E6aWriteThroughP},
		{ID: "e7", Short: "dual/quad redundancy survivability (slides 14–15)",
			Defaults: Params{Nodes: 6},
			Variants: []Params{{Nodes: 6}, {Nodes: 10}},
			Run:      func(p Params) *Table { return E7RedundancyP(p) }},
		{ID: "e7a", Short: "random link-failure ring salvage",
			Defaults: Params{Nodes: 8, Switches: 4},
			Run:      func(p Params) *Table { return E7aLinkFailuresP(p, 8, 5) }},
		{ID: "e8", Short: "rostering: two ring-tours, 1–2 ms (slide 16)",
			Variants: []Params{{Nodes: 8, FiberM: 1000}, {Nodes: 32, FiberM: 5000}},
			Run:      E8RosteringP},
		{ID: "e8a", Short: "detection-latency ablation",
			Run: E8aDetectionSensitivityP},
		{ID: "e9", Short: "assimilation & cache refresh (slide 17)",
			Run: E9AssimilationP},
		{ID: "e10", Short: "failover: detection, period, no data loss (slides 18–19)",
			Run: E10FailoverP},
		{ID: "e11", Short: "self-healing vs static network (slides 2, 13, 18)",
			Run: E11SelfHealVsBaselineP},
		{ID: "e12", Short: "AmpIP + collectives stack (slides 3, 12)",
			Defaults: Params{Nodes: 8, Switches: 2},
			Variants: []Params{{Nodes: 4}, {Nodes: 8}},
			Run:      E12CollectivesP},
		{ID: "e13", Short: "fabric shapes × fault schedules: heal time, delivered throughput",
			Defaults: Params{Nodes: 6, Switches: 4},
			Variants: []Params{{Nodes: 6, Switches: 4}, {Nodes: 8, Switches: 4}},
			Sharded:  true,
			Run:      E13FabricHealP},
		{ID: "e14", Short: "parallel sharded engine: serial-identical reports, exchange volume vs shards",
			Defaults: Params{Nodes: 64, Switches: 8},
			Variants: []Params{{Nodes: 64, Switches: 8}, {Nodes: 128, Switches: 8}},
			Sharded:  true,
			Run:      E14ParsimScaleP},
		{ID: "e15", Short: "wire v2 scaling past 255 nodes: serial-identical reports beyond the v1 ceiling",
			Defaults: Params{Nodes: 320},
			Variants: []Params{{Nodes: 320}},
			Sharded:  true,
			Run:      E15WireScaleP},
		{ID: "e16", Short: "scaling efficiency: cut-aware partition, lookahead and barrier economics vs shards",
			Defaults: Params{Nodes: 96, Switches: 8},
			Variants: []Params{{Nodes: 96, Switches: 8}},
			Sharded:  true,
			Run:      E16ScalingEfficiencyP},
		{ID: "e17", Short: "multi-core speedup study: wall time, busy/wait decomposition vs shards × transport",
			Defaults: Params{Nodes: 96, Switches: 8},
			Sharded:  true,
			Wall:     true,
			Run:      E17SpeedupP},
	}
}

// ByID returns the spec with the given id, or nil.
func ByID(id string) *Spec {
	for _, s := range All() {
		if s.ID == id {
			sc := s
			return &sc
		}
	}
	return nil
}
