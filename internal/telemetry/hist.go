package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// Hist is a fixed-bucket power-of-two histogram for the deterministic
// plane. Bucket k≥1 covers [2^(k-1), 2^k−1]; bucket 0 holds exact
// zeros. Observations are virtual-time or count quantities, never wall
// clock, so a Hist is byte-reproducible across runs and engines and may
// appear in Report output.
type Hist struct {
	N   uint64
	Sum uint64
	Max uint64
	B   [65]uint64
}

// Observe adds one sample.
func (h *Hist) Observe(v uint64) {
	h.N++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	h.B[bits.Len64(v)]++
}

// Merge folds o into h.
func (h *Hist) Merge(o *Hist) {
	h.N += o.N
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
	for i, n := range o.B {
		h.B[i] += n
	}
}

// bucketHi is the largest value bucket k can hold.
func bucketHi(k int) uint64 {
	if k == 0 {
		return 0
	}
	if k >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(k) - 1
}

// bucketLo is the smallest value bucket k can hold.
func bucketLo(k int) uint64 {
	if k == 0 {
		return 0
	}
	return 1 << uint(k-1)
}

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1): the
// top of the bucket where the cumulative count first reaches q·N.
func (h *Hist) Quantile(q float64) uint64 {
	if h.N == 0 {
		return 0
	}
	need := uint64(math.Ceil(q * float64(h.N)))
	if need == 0 {
		need = 1
	}
	var cum uint64
	for k, n := range h.B {
		cum += n
		if cum >= need {
			hi := bucketHi(k)
			if hi > h.Max {
				hi = h.Max
			}
			return hi
		}
	}
	return h.Max
}

// String renders a compact deterministic summary:
// "n=12 mean=34 p50<=63 p99<=127 max=96".
func (h *Hist) String() string {
	if h.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%d p50<=%d p99<=%d max=%d",
		h.N, h.Sum/h.N, h.Quantile(0.50), h.Quantile(0.99), h.Max)
}

// HistBucket is one occupied bucket in a HistReport.
type HistBucket struct {
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
	N  uint64 `json:"n"`
}

// HistReport is the JSON projection of a Hist: only occupied buckets,
// in ascending order, so the encoding is canonical.
type HistReport struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Max     uint64       `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Report builds the canonical JSON projection.
func (h *Hist) Report() *HistReport {
	r := &HistReport{Count: h.N, Sum: h.Sum, Max: h.Max}
	for k, n := range h.B {
		if n != 0 {
			r.Buckets = append(r.Buckets, HistBucket{Lo: bucketLo(k), Hi: bucketHi(k), N: n})
		}
	}
	return r
}

// Buckets renders the occupied buckets as "[lo,hi]:n" pairs — the
// long-form companion to String for tables and debug dumps.
func (h *Hist) Buckets() string {
	var sb strings.Builder
	for k, n := range h.B {
		if n == 0 {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "[%d,%d]:%d", bucketLo(k), bucketHi(k), n)
	}
	if sb.Len() == 0 {
		return "-"
	}
	return sb.String()
}
