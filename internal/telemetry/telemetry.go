// Package telemetry is the engine's two-plane observability surface.
//
// The deterministic plane (Hist, and the per-shard counters the engine
// packages feed from virtual-time quantities) is byte-reproducible: it
// derives only from simulated state and may therefore surface in
// Report.Summary() or — behind an explicit opt-in — in Report JSON.
//
// The wall-clock plane (Clock, Recorder, Span, Stopwatch) measures real
// time. It is the ONE package in the tree that may read the wall clock:
// the ampvet `walltime` analyzer exempts exactly this package and flags
// `time.Now`-family calls everywhere else, so every wall-clock read in
// the engine is forced through an injectable Clock and is structurally
// excluded from Report bytes. Tests inject ManualClock to make span
// timelines reproducible; production code uses Wall.
//
// Recorder is lock-free in the engine's sense: each shard goroutine
// appends spans only to its own buffer (the same single-writer
// discipline the transport uses for capture queues), and the
// coordinator owns a separate buffer. Spans() merges them and must only
// be called while the shards are parked — between windows, or after the
// run.
package telemetry

import (
	"sort"
	"sync/atomic"
	"time"
)

// Clock supplies wall-clock readings in nanoseconds. Engine code never
// calls the time package directly; it asks a Clock, so tests can make
// wall-plane output deterministic.
type Clock interface {
	Now() int64
}

// Wall is the real wall clock. Readings are monotonic nanoseconds since
// an arbitrary process-start base, not Unix time: span math only ever
// uses differences, trace timestamps are relative, and the monotonic
// read path is markedly cheaper than a full wall-clock read — which
// matters at two reads per span on the engine's window hot path.
var Wall Clock = wallClock{}

var wallBase = time.Now()

type wallClock struct{}

func (wallClock) Now() int64 { return int64(time.Since(wallBase)) }

// ManualClock is a deterministic Clock for tests: every Now() returns
// the current reading and advances it by Step. Step 0 freezes time.
// Reads are atomic, so concurrent use is race-free, though the
// interleaving (and hence which goroutine sees which tick) still
// follows the host scheduler — fine for the wall plane, which is never
// part of Report bytes.
type ManualClock struct {
	t    atomic.Int64
	step int64
}

// NewManualClock returns a ManualClock starting at start that advances
// by step on every reading.
func NewManualClock(start, step int64) *ManualClock {
	c := &ManualClock{step: step}
	c.t.Store(start)
	return c
}

// Now returns the current reading and advances the clock by Step.
func (c *ManualClock) Now() int64 { return c.t.Add(c.step) - c.step }

// Set jumps the clock to t.
func (c *ManualClock) Set(t int64) { c.t.Store(t) }

// SpanKind labels what interval of engine work a Span covers.
type SpanKind uint8

const (
	// SpanWindow: coordinator — one lookahead window, from grant until
	// every shard is parked on the target again.
	SpanWindow SpanKind = iota
	// SpanRun: shard — its kernel executing inside one window. The gap
	// between a shard's run span and the enclosing window span is that
	// shard's barrier wait.
	SpanRun
	// SpanExchange: coordinator — the barrier drain: collect captures,
	// canonical sort, deliver cross-shard frames and route writes.
	SpanExchange
	// SpanAction: coordinator — one fence's action batch (plan events,
	// loads) executing with all shards parked.
	SpanAction
	// SpanRTT: coordinator — a socket-transport MsgRun→MsgDone
	// round-trip for one worker process.
	SpanRTT
	// SpanWorkerRun: a worker-process-measured kernel run, shipped back
	// in the ControlV1 telemetry summary and re-anchored at the
	// coordinator's round-trip start.
	SpanWorkerRun
	// SpanWorkerIdle: worker-measured wait between its previous done
	// send and the next granted window — the worker-side view of
	// barrier wait plus coordinator latency.
	SpanWorkerIdle
	// SpanMark: a generic interval (CLI progress, experiment phases).
	SpanMark
)

var spanKindNames = [...]string{
	SpanWindow:     "window",
	SpanRun:        "run",
	SpanExchange:   "exchange",
	SpanAction:     "action",
	SpanRTT:        "rtt",
	SpanWorkerRun:  "worker-run",
	SpanWorkerIdle: "worker-idle",
	SpanMark:       "mark",
}

func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return "span?"
}

// Span is one recorded wall-clock interval.
type Span struct {
	Shard int      // timeline row: 0..n-1 = shard, -1 = coordinator
	Kind  SpanKind //
	Start int64    // wall ns
	End   int64    // wall ns
	VT    int64    // virtual-time anchor (window target etc.), ns; -1 if none
	Seq   uint64   // per-buffer sequence, deterministic tie-break
}

// Dur is the span's wall duration in nanoseconds.
func (s Span) Dur() int64 { return s.End - s.Start }

// spanRec is the in-buffer storage form of a Span: 32 bytes against
// Span's 48. Seq is implicit (the record's index in its buffer) and
// shard/kind pack into the trailing padding — the engine streams a
// span per shard per window, so buffer write traffic competes with the
// simulation's own cache footprint and every byte shows up as overhead.
type spanRec struct {
	start, end, vt int64
	shard          int16
	kind           SpanKind
}

type spanBuf struct {
	spans []spanRec
}

// spanBufChunk is the first allocation's capacity: engine runs record
// spans per window, so buffers jump to useful sizes immediately instead
// of doubling up through tiny appends on the hot path.
const spanBufChunk = 4096

func (b *spanBuf) add(shard int, k SpanKind, start, end, vt int64) {
	if b.spans == nil {
		b.spans = make([]spanRec, 0, spanBufChunk)
	}
	b.spans = append(b.spans, spanRec{start: start, end: end, vt: vt, shard: int16(shard), kind: k})
}

// Recorder collects wall-clock spans for one run. All methods are
// nil-receiver-safe no-ops, so engine hot paths stay branch-cheap when
// telemetry is off. Shard(i, ...) appends to shard i's private buffer
// and must be called only from that shard's goroutine; Coord and
// CoordSpan append to the coordinator's buffer and must be called only
// from the driver goroutine. EnsureShards sizes the shard buffers and
// must run before the shard goroutines do.
type Recorder struct {
	clock  Clock
	coord  spanBuf
	shards []*spanBuf
}

// NewRecorder returns a Recorder reading clock (nil means Wall).
func NewRecorder(clock Clock) *Recorder {
	if clock == nil {
		clock = Wall
	}
	return &Recorder{clock: clock}
}

// Clock returns the recorder's clock; on a nil recorder it returns
// Wall, so callers can unconditionally time with r.Clock().
func (r *Recorder) Clock() Clock {
	if r == nil {
		return Wall
	}
	return r.clock
}

// EnsureShards grows the per-shard buffers to at least n. Call once,
// single-threaded, before shard goroutines start recording.
func (r *Recorder) EnsureShards(n int) {
	if r == nil {
		return
	}
	for len(r.shards) < n {
		r.shards = append(r.shards, &spanBuf{})
	}
}

// Begin reads the clock to start a span; 0 on a nil recorder.
func (r *Recorder) Begin() int64 {
	if r == nil {
		return 0
	}
	return r.clock.Now()
}

// Shard records [start, now] on shard's own buffer. Spans for shards
// EnsureShards never sized are dropped.
func (r *Recorder) Shard(shard int, k SpanKind, start, vt int64) {
	if r == nil || shard < 0 || shard >= len(r.shards) {
		return
	}
	r.shards[shard].add(shard, k, start, r.clock.Now(), vt)
}

// Coord records [start, now] on the coordinator row.
func (r *Recorder) Coord(k SpanKind, start, vt int64) {
	if r == nil {
		return
	}
	r.coord.add(-1, k, start, r.clock.Now(), vt)
}

// CoordSpan records an explicit [start, end] interval from the driver
// goroutine, displayed on shard's row (use for worker-shipped durations
// and socket round-trips; shard -1 is the coordinator row).
func (r *Recorder) CoordSpan(shard int, k SpanKind, start, end, vt int64) {
	if r == nil {
		return
	}
	r.coord.add(shard, k, start, end, vt)
}

// Reset drops all recorded spans but keeps the buffers' capacity, so a
// recorder reused across runs (per-run profiles, steady-state overhead
// benchmarks) records the next run allocation-free. Call only while the
// shards are parked, and never between the two Decompose snapshots of a
// delta measurement.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.coord.spans = r.coord.spans[:0]
	for _, b := range r.shards {
		b.spans = b.spans[:0]
	}
}

// Len is the total number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := len(r.coord.spans)
	for _, b := range r.shards {
		n += len(b.spans)
	}
	return n
}

// Spans returns a merged copy of all buffers, ordered by (Start, Shard,
// Seq). Call only while the shards are parked — between windows or
// after the run — or the read races the shard writers.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	out := make([]Span, 0, r.Len())
	for _, b := range append([]*spanBuf{&r.coord}, r.shards...) {
		for i, s := range b.spans {
			out = append(out, Span{Shard: int(s.shard), Kind: s.kind,
				Start: s.start, End: s.end, VT: s.vt, Seq: uint64(i)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Seq < b.Seq
	})
	return out
}

// Stopwatch measures an elapsed wall interval through a Clock — the
// sanctioned replacement for `time.Since(start)` in operator-facing
// progress prints outside this package.
type Stopwatch struct {
	c     Clock
	start int64
}

// StartStopwatch starts a stopwatch on clock (nil means Wall).
func StartStopwatch(clock Clock) Stopwatch {
	if clock == nil {
		clock = Wall
	}
	return Stopwatch{c: clock, start: clock.Now()}
}

// Elapsed is the wall time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration {
	if s.c == nil {
		return 0
	}
	return time.Duration(s.c.Now() - s.start)
}
