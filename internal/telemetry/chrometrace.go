package telemetry

import (
	"bufio"
	"fmt"
	"io"
)

// WriteTrace serializes spans as Chrome trace-event JSON — loadable in
// Perfetto (ui.perfetto.dev) and chrome://tracing. Rows (tids) are
// tid 0 = coordinator, tid i+1 = shard i; every span becomes one
// complete ("ph":"X") event with microsecond timestamps at nanosecond
// resolution. Field order and number formatting are fixed, so the
// output is deterministic given deterministic spans (ManualClock).
func WriteTrace(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	spans = append([]Span(nil), spans...)
	// Spans() already sorts, but callers may pass raw slices.
	sortSpans(spans)

	maxShard := -1
	for _, s := range spans {
		if s.Shard > maxShard {
			maxShard = s.Shard
		}
	}

	bw.WriteString("{\"traceEvents\":[\n")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	emit(`{"name":"process_name","ph":"M","pid":0,"args":{"name":"ampsim parallel engine"}}`)
	emit(`{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"coordinator"}}`)
	for i := 0; i <= maxShard; i++ {
		emit(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"shard %d"}}`, i+1, i)
	}
	for _, s := range spans {
		tid := s.Shard + 1
		dur := s.Dur()
		if dur < 0 {
			dur = 0
		}
		emit(`{"name":"%s","cat":"engine","ph":"X","ts":%s,"dur":%s,"pid":0,"tid":%d,"args":{"vt_ns":%d}}`,
			s.Kind, usec(s.Start), usec(dur), tid, s.VT)
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// usec renders nanoseconds as a microsecond decimal with full
// nanosecond precision (Chrome trace ts/dur are in microseconds).
func usec(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

func sortSpans(spans []Span) {
	// Insertion-sort-free: reuse the Recorder ordering.
	lessSpan := func(a, b Span) bool {
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Seq < b.Seq
	}
	// Small n in practice; simple stable sort.
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && lessSpan(spans[j], spans[j-1]); j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
}

// Decomposition aggregates a span timeline into the quantities the
// speedup study reads: where did the wall time go?
//
// The engine's wall per window is window + exchange + action
// (coordinator-sequential phases); shard capacity over a run is
// Shards × that total. RunNS is the time shards actually computed, so
//
//	BusyFrac = RunNS / (Shards × (WindowNS+ExchangeNS+ActionNS))
//	WaitFrac = 1 − BusyFrac
//
// WaitFrac lumps barrier wait (shards idle while a straggler runs)
// with the coordinator-serial exchange/action phases — both are time a
// shard core spent not simulating. ExchangeFrac separates the
// coordinator-serial share so barrier wait proper is
// WaitFrac − serial share.
type Decomposition struct {
	Shards       int
	Windows      int
	WindowNS     int64
	RunNS        int64
	ExchangeNS   int64
	ActionNS     int64
	RTTNS        int64
	WorkerRunNS  int64
	WorkerIdleNS int64
}

// Decompose aggregates spans (from Recorder.Spans).
func Decompose(spans []Span) Decomposition {
	var d Decomposition
	for _, s := range spans {
		if s.Shard >= d.Shards {
			d.Shards = s.Shard + 1
		}
		switch s.Kind {
		case SpanWindow:
			d.Windows++
			d.WindowNS += s.Dur()
		case SpanRun:
			d.RunNS += s.Dur()
		case SpanExchange:
			d.ExchangeNS += s.Dur()
		case SpanAction:
			d.ActionNS += s.Dur()
		case SpanRTT:
			d.RTTNS += s.Dur()
		case SpanWorkerRun:
			d.WorkerRunNS += s.Dur()
		case SpanWorkerIdle:
			d.WorkerIdleNS += s.Dur()
		}
	}
	return d
}

// engineNS is the coordinator-sequential wall total.
func (d Decomposition) engineNS() int64 { return d.WindowNS + d.ExchangeNS + d.ActionNS }

// BusyFrac is the fraction of shard capacity spent simulating.
func (d Decomposition) BusyFrac() float64 {
	total := d.engineNS() * int64(d.Shards)
	if total <= 0 {
		return 0
	}
	f := float64(d.RunNS) / float64(total)
	if f > 1 {
		f = 1
	}
	return f
}

// WaitFrac is the fraction of shard capacity spent idle: barrier wait
// plus the coordinator-serial exchange/action phases.
func (d Decomposition) WaitFrac() float64 {
	if d.engineNS() <= 0 {
		return 0
	}
	return 1 - d.BusyFrac()
}

// ExchangeFrac is the coordinator-serial share of engine wall time
// (exchange + action phases).
func (d Decomposition) ExchangeFrac() float64 {
	total := d.engineNS()
	if total <= 0 {
		return 0
	}
	return float64(d.ExchangeNS+d.ActionNS) / float64(total)
}
