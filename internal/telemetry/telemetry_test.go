package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestManualClock pins the deterministic clock: fixed start, fixed
// step, Set jumps.
func TestManualClock(t *testing.T) {
	c := NewManualClock(100, 10)
	for i, want := range []int64{100, 110, 120} {
		if got := c.Now(); got != want {
			t.Fatalf("reading %d: got %d, want %d", i, got, want)
		}
	}
	c.Set(5)
	if got := c.Now(); got != 5 {
		t.Fatalf("after Set(5): got %d", got)
	}
}

// TestRecorderNilSafe: every method is a no-op on a nil recorder, so
// engine hot paths need no telemetry branches.
func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	if got := r.Begin(); got != 0 {
		t.Fatalf("nil Begin: %d", got)
	}
	r.EnsureShards(4)
	r.Shard(0, SpanRun, 0, 0)
	r.Coord(SpanWindow, 0, 0)
	r.CoordSpan(1, SpanRTT, 0, 1, 0)
	if r.Len() != 0 || r.Spans() != nil {
		t.Fatal("nil recorder accumulated spans")
	}
	if r.Clock() != Wall {
		t.Fatal("nil recorder Clock() should default to Wall")
	}
}

// TestRecorderMergeOrder: Spans() merges coordinator + shard buffers
// into (Start, Shard, Seq) order regardless of recording order.
func TestRecorderMergeOrder(t *testing.T) {
	clk := NewManualClock(1000, 100)
	r := NewRecorder(clk)
	r.EnsureShards(2)

	s0 := r.Begin() // 1000
	r.Shard(1, SpanRun, s0, 500)
	r.Shard(0, SpanRun, s0, 500)
	r.Coord(SpanWindow, s0, 500)
	r.CoordSpan(-1, SpanExchange, 900, 950, 500)

	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if spans[0].Kind != SpanExchange || spans[0].Start != 900 {
		t.Fatalf("first span should be the explicit exchange: %+v", spans[0])
	}
	// Same Start 1000 → shard order -1 (window), 0, 1.
	if spans[1].Shard != -1 || spans[2].Shard != 0 || spans[3].Shard != 1 {
		t.Fatalf("tie-break order wrong: %+v", spans[1:])
	}
	// Out-of-range shard spans are dropped, not grown racily.
	r.Shard(7, SpanRun, 0, 0)
	if r.Len() != 4 {
		t.Fatal("out-of-range shard span was not dropped")
	}
}

// TestHist pins bucketing, quantiles, merge, and the canonical report.
func TestHist(t *testing.T) {
	var h Hist
	for _, v := range []uint64{0, 1, 1, 3, 200} {
		h.Observe(v)
	}
	if h.N != 5 || h.Sum != 205 || h.Max != 200 {
		t.Fatalf("hist totals: %+v", h)
	}
	if h.B[0] != 1 || h.B[1] != 2 || h.B[2] != 1 || h.B[8] != 1 {
		t.Fatalf("bucket layout: %v", h.B[:10])
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Fatalf("p50 = %d, want 1", q)
	}
	if q := h.Quantile(1.0); q != 200 {
		t.Fatalf("p100 = %d, want 200 (clamped to max)", q)
	}
	var h2 Hist
	h2.Observe(7)
	h.Merge(&h2)
	if h.N != 6 || h.B[3] != 1 {
		t.Fatalf("merge: %+v", h)
	}
	rep := h.Report()
	if len(rep.Buckets) != 5 || rep.Buckets[0] != (HistBucket{0, 0, 1}) {
		t.Fatalf("report buckets: %+v", rep.Buckets)
	}
	if s := h.String(); s != "n=6 mean=35 p50<=1 p99<=200 max=200" {
		t.Fatalf("String: %q", s)
	}
}

// TestWriteTraceGolden: a fixed span set serializes to exactly these
// bytes — the export format is part of the repo's contract (CI smokes
// parse it, Perfetto loads it).
func TestWriteTraceGolden(t *testing.T) {
	spans := []Span{
		{Shard: -1, Kind: SpanWindow, Start: 1000, End: 9000, VT: 245760},
		{Shard: 0, Kind: SpanRun, Start: 1200, End: 4200, VT: 245760},
		{Shard: 1, Kind: SpanRun, Start: 1300, End: 8100, VT: 245760},
		{Shard: -1, Kind: SpanExchange, Start: 9000, End: 9800, VT: 245760},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[
{"name":"process_name","ph":"M","pid":0,"args":{"name":"ampsim parallel engine"}},
{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"coordinator"}},
{"name":"thread_name","ph":"M","pid":0,"tid":1,"args":{"name":"shard 0"}},
{"name":"thread_name","ph":"M","pid":0,"tid":2,"args":{"name":"shard 1"}},
{"name":"window","cat":"engine","ph":"X","ts":1.000,"dur":8.000,"pid":0,"tid":0,"args":{"vt_ns":245760}},
{"name":"run","cat":"engine","ph":"X","ts":1.200,"dur":3.000,"pid":0,"tid":1,"args":{"vt_ns":245760}},
{"name":"run","cat":"engine","ph":"X","ts":1.300,"dur":6.800,"pid":0,"tid":2,"args":{"vt_ns":245760}},
{"name":"exchange","cat":"engine","ph":"X","ts":9.000,"dur":0.800,"pid":0,"tid":0,"args":{"vt_ns":245760}}
]}
`
	if got := buf.String(); got != want {
		t.Fatalf("trace bytes drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// And the bytes must be real JSON of the Chrome trace shape.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("parsed %d events, want 8", len(doc.TraceEvents))
	}
}

// TestDecompose: the busy/wait split the speedup study prints.
func TestDecompose(t *testing.T) {
	spans := []Span{
		{Shard: -1, Kind: SpanWindow, Start: 0, End: 100},
		{Shard: -1, Kind: SpanExchange, Start: 100, End: 120},
		{Shard: 0, Kind: SpanRun, Start: 0, End: 90},
		{Shard: 1, Kind: SpanRun, Start: 0, End: 30},
		{Shard: -1, Kind: SpanAction, Start: 120, End: 130},
	}
	d := Decompose(spans)
	if d.Shards != 2 || d.Windows != 1 {
		t.Fatalf("shape: %+v", d)
	}
	// Capacity = 2 shards × (100+20+10) = 260; busy = 120.
	if got, want := d.BusyFrac(), 120.0/260.0; got != want {
		t.Fatalf("BusyFrac = %v, want %v", got, want)
	}
	if got, want := d.WaitFrac(), 1-120.0/260.0; got != want {
		t.Fatalf("WaitFrac = %v, want %v", got, want)
	}
	if got, want := d.ExchangeFrac(), 30.0/130.0; got != want {
		t.Fatalf("ExchangeFrac = %v, want %v", got, want)
	}
}

// TestStopwatch measures through an injected clock.
func TestStopwatch(t *testing.T) {
	clk := NewManualClock(0, 250)
	sw := StartStopwatch(clk) // reads 0
	if el := sw.Elapsed(); el != 250 {
		t.Fatalf("elapsed = %v, want 250ns", el)
	}
	var zero Stopwatch
	if zero.Elapsed() != 0 {
		t.Fatal("zero stopwatch should read 0")
	}
}
