package detmap

import (
	"reflect"
	"testing"
)

func TestSortedKeys(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b"}
	for i := 0; i < 32; i++ { // order must hold on every pass, not by luck
		if got, want := SortedKeys(m), []int{1, 2, 3}; !reflect.DeepEqual(got, want) {
			t.Fatalf("SortedKeys = %v, want %v", got, want)
		}
	}
	if got := SortedKeys(map[string]int(nil)); len(got) != 0 {
		t.Fatalf("SortedKeys(nil) = %v, want empty", got)
	}
	type named map[string]int
	if got, want := SortedKeys(named{"b": 1, "a": 2}), []string{"a", "b"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedKeys(named) = %v, want %v", got, want)
	}
}

func TestSortedKeysFunc(t *testing.T) {
	type key struct{ a, b int }
	m := map[key]bool{{2, 1}: true, {1, 2}: true, {1, 1}: true}
	got := SortedKeysFunc(m, func(x, y key) bool {
		if x.a != y.a {
			return x.a < y.a
		}
		return x.b < y.b
	})
	want := []key{{1, 1}, {1, 2}, {2, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedKeysFunc = %v, want %v", got, want)
	}
}
