// Package detmap provides deterministic iteration helpers for maps.
//
// Go randomizes map iteration order per run, so any Report bytes, plan
// text, wire encoding or log line derived from a bare `for range m`
// differs between two runs of the same seed — exactly the class of
// nondeterminism the serial/parallel equivalence batteries exist to
// catch, and the one the ampvet `detmap` analyzer rejects statically.
// Iterating SortedKeys(m) instead pins the order to the key ordering,
// which is engine- and run-independent.
package detmap

import (
	"cmp"
	"sort"
)

// SortedKeys returns m's keys in ascending order. The returned slice
// is freshly allocated; iterating it yields a deterministic order for
// any run, seed, engine and Go release.
func SortedKeys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return cmp.Less(keys[i], keys[j]) })
	return keys
}

// SortedKeysFunc returns m's keys ordered by the given less function,
// for key types that are not cmp.Ordered (structs, pointers with an
// externally defined order).
func SortedKeysFunc[M ~map[K]V, K comparable, V any](m M, less func(a, b K) bool) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
	return keys
}
