package netcache

import (
	"encoding/binary"
	"runtime"
	"sync/atomic"
)

// HostRecord is the host-memory counterpart of a cache record: the same
// two-counter Lamport scheme implemented with real atomics, modeling
// the host-side mapping of NIC memory (slide 10: host updates are
// written through, never cached). It is safe for one writer and any
// number of concurrent readers on real goroutines, and is exercised
// under the race detector in the tests.
type HostRecord struct {
	head atomic.Uint64
	tail atomic.Uint64
	data []atomic.Uint64 // word-granular so torn bytes cannot occur
	size int
}

// NewHostRecord allocates a host record holding size bytes.
func NewHostRecord(size int) *HostRecord {
	words := (size + 7) / 8
	return &HostRecord{data: make([]atomic.Uint64, words), size: size}
}

// Size returns the record's data size in bytes.
func (h *HostRecord) Size() int { return h.size }

// Write stores data (len must equal Size) using the paper's protocol:
// bump the first counter, write the payload, write the last counter.
// Single writer at a time is the caller's contract (use a netsem lock
// for multi-writer records).
func (h *HostRecord) Write(data []byte) {
	if len(data) != h.size {
		panic("netcache: HostRecord.Write size mismatch")
	}
	v := h.head.Add(1)
	for w := range h.data {
		// Pack the word little-endian via encoding/binary (short tail
		// words are zero-padded), so no byte-layout math lives here.
		var tmp [8]byte
		copy(tmp[:], data[w*8:])
		h.data[w].Store(binary.LittleEndian.Uint64(tmp[:]))
	}
	h.tail.Store(v)
}

// TryRead attempts one seqlock read. It returns ok=false when a write
// was in flight.
func (h *HostRecord) TryRead(buf []byte) bool {
	if len(buf) != h.size {
		panic("netcache: HostRecord.TryRead size mismatch")
	}
	v1 := h.head.Load()
	if h.tail.Load() != v1 {
		return false
	}
	for w := range h.data {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], h.data[w].Load())
		copy(buf[w*8:], tmp[:])
	}
	return h.head.Load() == v1
}

// Read spins (with Gosched backoff — the paper's "wait and go to
// Start") until a consistent snapshot is obtained.
func (h *HostRecord) Read(buf []byte) {
	for !h.TryRead(buf) {
		runtime.Gosched()
	}
}

// Version returns the record's current version counter.
func (h *HostRecord) Version() uint64 { return h.head.Load() }
