package netcache

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
	"testing/quick"
)

// fakeTP delivers broadcasts synchronously to a set of replicas,
// optionally dropping or delaying nothing — ordering preserved, like
// the ring.
type fakeTP struct {
	replicas []*Cache
	refuse   bool
	sent     int
}

func (f *fakeTP) Broadcast(region uint8, off uint32, data []byte) bool {
	if f.refuse {
		return false
	}
	f.sent++
	for _, r := range f.replicas {
		r.Apply(region, off, data)
	}
	return true
}

func newReplicated(n, regionSize int) ([]*Cache, *fakeTP, *Writer) {
	var all []*Cache
	for i := 0; i < n; i++ {
		c := New()
		c.AddRegion(1, regionSize)
		all = append(all, c)
	}
	tp := &fakeTP{replicas: all[1:]} // writer's local is all[0]
	return all, tp, NewWriter(all[0], tp)
}

func TestWriteReadRoundTrip(t *testing.T) {
	all, _, w := newReplicated(4, 256)
	r := Record{Region: 1, Off: 16, Size: 32}
	data := bytes.Repeat([]byte{0xAB}, 32)
	if err := w.WriteRecord(r, data); err != nil {
		t.Fatal(err)
	}
	for i, c := range all {
		got, ok := c.TryRead(r)
		if !ok {
			t.Fatalf("replica %d: read failed", i)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("replica %d: data mismatch", i)
		}
		if c.Version(r) != 1 {
			t.Fatalf("replica %d: version = %d", i, c.Version(r))
		}
	}
}

func TestVersionIncrements(t *testing.T) {
	_, _, w := newReplicated(2, 128)
	r := Record{Region: 1, Off: 0, Size: 8}
	for i := 1; i <= 10; i++ {
		if err := w.WriteRecord(r, []byte{byte(i), 0, 0, 0, 0, 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
		if v := w.Local.Version(r); v != uint64(i) {
			t.Fatalf("version after %d writes = %d", i, v)
		}
	}
}

func TestTornReadDetected(t *testing.T) {
	c := New()
	c.AddRegion(1, 128)
	r := Record{Region: 1, Off: 0, Size: 16}
	w := NewWriter(c, nil)
	if err := w.WriteRecord(r, bytes.Repeat([]byte{1}, 16)); err != nil {
		t.Fatal(err)
	}
	// Simulate a write in progress: bump head only, as a replica would
	// see after receiving the head update but not yet the tail.
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], 2)
	c.Apply(1, r.headOff(), cnt[:])
	if _, ok := c.TryRead(r); ok {
		t.Fatal("torn record read as consistent")
	}
	// Data arrives... still torn.
	c.Apply(1, r.dataOff(), bytes.Repeat([]byte{2}, 16))
	if _, ok := c.TryRead(r); ok {
		t.Fatal("half-written record read as consistent")
	}
	// Tail arrives: consistent again.
	c.Apply(1, r.tailOff(), cnt[:])
	got, ok := c.TryRead(r)
	if !ok {
		t.Fatal("completed record unreadable")
	}
	if got[0] != 2 {
		t.Fatal("stale data after completed write")
	}
}

// TestReaderNeverTornMidStream replays the replication packet stream of
// many writes and asserts that at every intermediate point a reader
// sees either the old or the new value, never a mix.
func TestReaderNeverTornMidStream(t *testing.T) {
	src := New()
	src.AddRegion(1, 256)
	dst := New()
	dst.AddRegion(1, 256)
	r := Record{Region: 1, Off: 8, Size: 24}

	// Transport that records the update stream.
	var stream []struct {
		off  uint32
		data []byte
	}
	rec := transportFunc(func(region uint8, off uint32, data []byte) bool {
		cp := make([]byte, len(data))
		copy(cp, data)
		stream = append(stream, struct {
			off  uint32
			data []byte
		}{off, cp})
		return true
	})
	w := NewWriter(src, rec)

	known := map[string]bool{string(make([]byte, 24)): true} // initial zero value
	for i := 0; i < 50; i++ {
		val := bytes.Repeat([]byte{byte(i + 1)}, 24)
		known[string(val)] = true
		if err := w.WriteRecord(r, val); err != nil {
			t.Fatal(err)
		}
	}
	// Replay, checking after every packet.
	for i, u := range stream {
		dst.Apply(1, u.off, u.data)
		if got, ok := dst.TryRead(r); ok {
			if !known[string(got)] {
				t.Fatalf("packet %d: reader saw torn value %v", i, got[:4])
			}
			// A consistent read must be uniform (all bytes equal) by
			// construction of the test values.
			for _, b := range got {
				if b != got[0] {
					t.Fatalf("packet %d: mixed record %v", i, got)
				}
			}
		}
	}
	final, ok := dst.TryRead(r)
	if !ok || final[0] != 50 {
		t.Fatalf("final value wrong: %v ok=%v", final[:4], ok)
	}
}

type transportFunc func(uint8, uint32, []byte) bool

func (f transportFunc) Broadcast(region uint8, off uint32, data []byte) bool {
	return f(region, off, data)
}

func TestWriteSizeMismatch(t *testing.T) {
	c := New()
	c.AddRegion(1, 64)
	w := NewWriter(c, nil)
	r := Record{Region: 1, Off: 0, Size: 8}
	if err := w.WriteRecord(r, []byte{1, 2}); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestTransportRefusalSurfaces(t *testing.T) {
	all, tp, w := newReplicated(2, 64)
	tp.refuse = true
	r := Record{Region: 1, Off: 0, Size: 8}
	if err := w.WriteRecord(r, make([]byte, 8)); err == nil {
		t.Fatal("refused transport not surfaced")
	}
	_ = all
}

func TestApplyBounds(t *testing.T) {
	c := New()
	c.AddRegion(1, 16)
	c.Apply(1, 100, []byte{1})                     // beyond region: ignored
	c.Apply(9, 0, []byte{1})                       // absent region: ignored
	c.Apply(1, 12, []byte{1, 2, 3, 4, 5, 6, 7, 8}) // clipped at end
	if c.Region(1)[15] != 4 {
		t.Fatalf("clipped apply wrong: %v", c.Region(1))
	}
	if c.Applied != 1 {
		t.Fatalf("applied = %d", c.Applied)
	}
}

func TestTryReadOutOfRange(t *testing.T) {
	c := New()
	c.AddRegion(1, 32)
	if _, ok := c.TryRead(Record{Region: 1, Off: 20, Size: 16}); ok {
		t.Fatal("out-of-range record readable")
	}
	if _, ok := c.TryRead(Record{Region: 5, Off: 0, Size: 8}); ok {
		t.Fatal("absent region readable")
	}
	if v := c.Version(Record{Region: 5, Off: 0, Size: 8}); v != 0 {
		t.Fatal("absent region version nonzero")
	}
}

func TestLayout(t *testing.T) {
	recs := Layout(2, 100, 16, 3)
	if len(recs) != 3 {
		t.Fatal("wrong count")
	}
	span := 16 + RecordOverhead
	for i, r := range recs {
		if r.Region != 2 || r.Size != 16 {
			t.Fatalf("rec %d: %+v", i, r)
		}
		if r.Off != uint32(100+i*span) {
			t.Fatalf("rec %d off = %d", i, r.Off)
		}
	}
}

func TestRegions(t *testing.T) {
	c := New()
	c.AddRegion(3, 8)
	c.AddRegion(7, 8)
	ids := c.Regions()
	if len(ids) != 2 {
		t.Fatalf("regions = %v", ids)
	}
}

// TestQuickWriteReadAnyPayload is the property-based round trip.
func TestQuickWriteReadAnyPayload(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) == 0 || len(payload) > 64 {
			return true
		}
		all, _, w := newReplicated(3, 128)
		r := Record{Region: 1, Off: 4, Size: len(payload)}
		if err := w.WriteRecord(r, payload); err != nil {
			return false
		}
		for _, c := range all {
			got, ok := c.TryRead(r)
			if !ok || !bytes.Equal(got, payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- HostRecord (real-concurrency seqlock) tests; run with -race ---

func TestHostRecordBasic(t *testing.T) {
	h := NewHostRecord(20)
	buf := make([]byte, 20)
	h.Read(buf) // zero value readable
	for _, b := range buf {
		if b != 0 {
			t.Fatal("fresh record not zero")
		}
	}
	val := bytes.Repeat([]byte{9}, 20)
	h.Write(val)
	h.Read(buf)
	if !bytes.Equal(buf, val) {
		t.Fatal("round trip failed")
	}
	if h.Version() != 1 {
		t.Fatalf("version = %d", h.Version())
	}
}

// TestHostRecordNeverTorn: one writer, many readers, real goroutines.
// Every successful read must be a uniform value — the seqlock's
// guarantee under the race detector.
func TestHostRecordNeverTorn(t *testing.T) {
	const size = 48
	h := NewHostRecord(size)
	h.Write(bytes.Repeat([]byte{0}, size))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, 8)

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, size)
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Read(buf)
				for _, b := range buf {
					if b != buf[0] {
						select {
						case errs <- "torn read":
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 5000; i++ {
			h.Write(bytes.Repeat([]byte{byte(i)}, size))
		}
		close(stop)
	}()
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
	if h.Version() != 5001 {
		t.Fatalf("version = %d, want 5001", h.Version())
	}
}

func TestHostRecordSizeMismatchPanics(t *testing.T) {
	h := NewHostRecord(8)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on size mismatch")
		}
	}()
	h.Write([]byte{1})
}

func TestHostRecordOddSize(t *testing.T) {
	h := NewHostRecord(13)
	val := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
	h.Write(val)
	buf := make([]byte, 13)
	h.Read(buf)
	if !bytes.Equal(buf, val) {
		t.Fatalf("odd-size round trip: %v", buf)
	}
}

func TestHostRecordQuick(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 || len(data) > 256 {
			return true
		}
		h := NewHostRecord(len(data))
		h.Write(data)
		buf := make([]byte, len(data))
		return h.TryRead(buf) && bytes.Equal(buf, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
