package netcache

import (
	"bytes"
	"testing"
	"testing/quick"
)

func dbRig() (*Cache, *Writer, DoubleBuffer) {
	c := New()
	c.AddRegion(1, 512)
	return c, NewWriter(c, nil), NewDoubleBuffer(1, 0, 16)
}

func TestDoubleBufferFreshUnreadable(t *testing.T) {
	c, _, db := dbRig()
	if _, _, ok := db.Read(c); ok {
		t.Fatal("unwritten double buffer readable")
	}
}

func TestDoubleBufferAlternatesSlots(t *testing.T) {
	c, w, db := dbRig()
	for i := 1; i <= 6; i++ {
		val := bytes.Repeat([]byte{byte(i)}, 16)
		if err := db.Write(w, val); err != nil {
			t.Fatal(err)
		}
		got, ver, ok := db.Read(c)
		if !ok || ver != uint64(i) || !bytes.Equal(got, val) {
			t.Fatalf("write %d: got ver=%d ok=%v", i, ver, ok)
		}
	}
	// Both slots used: versions 5 and 6 in some order.
	va, vb := c.Version(db.A), c.Version(db.B)
	if va+vb != 11 {
		t.Fatalf("slot versions %d/%d", va, vb)
	}
}

// TestDoubleBufferTornSlotFallsBack simulates a writer dying mid-write:
// the reader must return the previous committed value.
func TestDoubleBufferTornSlotFallsBack(t *testing.T) {
	c, w, db := dbRig()
	v1 := bytes.Repeat([]byte{1}, 16)
	if err := db.Write(w, v1); err != nil {
		t.Fatal(err)
	}
	// Begin the second write but "crash" after the head counter: find
	// the slot it would use (the older one = A after B got v1... the
	// first Write targets B, so the second targets A).
	target := db.A
	var cnt [8]byte
	cnt[0] = 2
	c.Apply(1, target.Off, cnt[:]) // head bumped, data/tail never arrive
	got, ver, ok := db.Read(c)
	if !ok {
		t.Fatal("read failed with one committed slot")
	}
	if ver != 1 || !bytes.Equal(got, v1) {
		t.Fatalf("fallback returned ver=%d data=%v", ver, got[:2])
	}
}

func TestDoubleBufferSpan(t *testing.T) {
	db := NewDoubleBuffer(1, 0, 16)
	if db.Span() != 2*(16+RecordOverhead) {
		t.Fatalf("span = %d", db.Span())
	}
	if db.B.Off != uint32(16+RecordOverhead) {
		t.Fatalf("B offset = %d", db.B.Off)
	}
}

// TestDoubleBufferQuick: any prefix of the replicated update stream
// yields either the latest or the previous committed value.
func TestDoubleBufferQuick(t *testing.T) {
	f := func(vals [][8]byte, cut uint16) bool {
		if len(vals) == 0 || len(vals) > 20 {
			return true
		}
		src := New()
		src.AddRegion(1, 512)
		var stream []struct {
			off  uint32
			data []byte
		}
		w := NewWriter(src, transportFunc(func(_ uint8, off uint32, data []byte) bool {
			cp := append([]byte{}, data...)
			stream = append(stream, struct {
				off  uint32
				data []byte
			}{off, cp})
			return true
		}))
		db := NewDoubleBuffer(1, 0, 8)
		for _, v := range vals {
			if err := db.Write(w, v[:]); err != nil {
				return false
			}
		}
		// Replay an arbitrary prefix at a replica (crash point).
		dst := New()
		dst.AddRegion(1, 512)
		n := int(cut) % (len(stream) + 1)
		for _, u := range stream[:n] {
			dst.Apply(1, u.off, u.data)
		}
		got, ver, ok := db.Read(dst)
		if !ok {
			// Acceptable only if no write fully replicated yet.
			return n < 3 // a full record write is 3 updates
		}
		if ver == 0 || int(ver) > len(vals) {
			return false
		}
		return bytes.Equal(got, vals[ver-1][:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
