// Package netcache implements AmpNet's Network Cache (paper, slides 2,
// 9, 10): the same memory image kept at every node, so that nodes can
// leave without losing data, new nodes are assimilated with a cache
// refresh, and the management database is ubiquitous.
//
// Consistency is the paper's "Lamport counter" scheme (slide 9) — a
// sequence lock with a counter at the start and end of every record:
//
//	To read:  read first counter, read last counter; if they agree,
//	          read the data, then re-read the first counter; if it
//	          changed, start over.
//	To write: just write (bump first counter, write data, write last).
//
// Coherence between concurrent *writers* is explicitly not the cache's
// job: "write conflicts are handled at the user level using AmpNet
// locking primitives" (slide 10, package netsem). The seqlock therefore
// guarantees only that readers never observe a torn record while a
// single writer (per record) is active — exactly the property the
// tests and experiment E5 verify.
//
// Updates are written through to the NIC and broadcast to every replica
// (no host-side caching, slide 10); on the simulated fabric that is a
// stream of DMA MicroPackets which each node applies to its local
// replica in arrival order. A ring delivers broadcasts from one source
// in FIFO order, which is what makes the head→data→tail write sequence
// arrive intact.
package netcache

import (
	"encoding/binary"
	"fmt"

	"repro/internal/detmap"
)

// CounterSize is the size of each of the two record counters.
const CounterSize = 8

// RecordOverhead is the extra bytes a record occupies beyond its data.
const RecordOverhead = 2 * CounterSize

// Cache is one node's replica of the network cache: a set of numbered
// regions, each a flat byte array.
type Cache struct {
	regions map[uint8][]byte

	// Applied counts remote updates applied to this replica.
	Applied uint64
}

// New returns an empty replica.
func New() *Cache {
	return &Cache{regions: map[uint8][]byte{}}
}

// AddRegion allocates region id with the given size. Adding an existing
// region re-allocates it (used by cache refresh).
func (c *Cache) AddRegion(id uint8, size int) {
	c.regions[id] = make([]byte, size)
}

// Region returns the raw bytes of a region (nil if absent). Callers
// must use record accessors for consistency; raw access is for refresh
// streaming and diagnostics.
func (c *Cache) Region(id uint8) []byte { return c.regions[id] }

// Regions returns the region ids present, in ascending order.
func (c *Cache) Regions() []uint8 {
	return detmap.SortedKeys(c.regions)
}

// Apply writes raw bytes into a region at offset — the receive path for
// replicated updates and cache refresh. Out-of-range writes are
// truncated (a real NIC would raise a diagnostic; Gaps are tracked by
// the DMA layer).
func (c *Cache) Apply(region uint8, off uint32, data []byte) {
	buf, ok := c.regions[region]
	if !ok {
		return
	}
	if int(off) >= len(buf) {
		return
	}
	copy(buf[off:], data)
	c.Applied++
}

// Record is a seqlock-protected cell of fixed data size within a
// region: [counter | data | counter].
type Record struct {
	Region uint8
	Off    uint32
	Size   int // data bytes, excluding the two counters
}

// Span returns the total bytes the record occupies.
func (r Record) Span() int { return r.Size + RecordOverhead }

// headOff/dataOff/tailOff locate the record parts.
func (r Record) headOff() uint32 { return r.Off }
func (r Record) dataOff() uint32 { return r.Off + CounterSize }
func (r Record) tailOff() uint32 { return r.Off + CounterSize + uint32(r.Size) }

// TryRead performs one seqlock read attempt against the local replica.
// It returns (data, true) on a consistent snapshot, or (nil, false) if
// a write was in progress and the caller should retry — "wait and go to
// Start" in the paper's words.
func (c *Cache) TryRead(r Record) ([]byte, bool) {
	buf, ok := c.regions[r.Region]
	if !ok || int(r.Off)+r.Span() > len(buf) {
		return nil, false
	}
	head := binary.LittleEndian.Uint64(buf[r.headOff():])
	tail := binary.LittleEndian.Uint64(buf[r.tailOff():])
	if head != tail {
		return nil, false // write in progress
	}
	data := make([]byte, r.Size)
	copy(data, buf[r.dataOff():])
	head2 := binary.LittleEndian.Uint64(buf[r.headOff():])
	if head2 != head {
		return nil, false // write started during the copy
	}
	return data, true
}

// Version returns the record's current head counter (its version).
func (c *Cache) Version(r Record) uint64 {
	buf, ok := c.regions[r.Region]
	if !ok || int(r.Off)+r.Span() > len(buf) {
		return 0
	}
	return binary.LittleEndian.Uint64(buf[r.headOff():])
}

// Transport broadcasts ordered region updates to every replica. The DMA
// layer implements it over the ring; tests use in-memory fakes. Send
// returns false on backpressure, and callers retry — updates must not
// be silently lost.
type Transport interface {
	Broadcast(region uint8, off uint32, data []byte) bool
}

// Writer performs replicated record writes from one node. The paper's
// "just write" sequence: bump head, write data, write tail — each step
// write-through (applied locally, then broadcast).
//
// One Writer per record (or a netsem lock around it) is the caller's
// responsibility, per slide 10.
type Writer struct {
	Local *Cache
	TP    Transport

	// Writes counts completed record writes.
	Writes uint64
}

// NewWriter returns a writer that applies locally to cache and
// replicates through tp.
func NewWriter(local *Cache, tp Transport) *Writer {
	return &Writer{Local: local, TP: tp}
}

// put applies locally and broadcasts; it retries are the transport's
// concern (the DMA layer queues), so a false return here is a hard
// error surfaced to the caller.
func (w *Writer) put(region uint8, off uint32, data []byte) error {
	w.Local.Apply(region, off, data)
	if w.TP != nil && !w.TP.Broadcast(region, off, data) {
		return fmt.Errorf("netcache: transport refused update region=%d off=%d", region, off)
	}
	return nil
}

// WriteRecord writes data into record r using the Lamport-counter
// protocol. len(data) must equal r.Size.
func (w *Writer) WriteRecord(r Record, data []byte) error {
	if len(data) != r.Size {
		return fmt.Errorf("netcache: record size %d, got %d bytes", r.Size, len(data))
	}
	next := w.Local.Version(r) + 1
	var cnt [CounterSize]byte
	binary.LittleEndian.PutUint64(cnt[:], next)
	// 1. head counter — readers now see head != tail and back off.
	if err := w.put(r.Region, r.headOff(), cnt[:]); err != nil {
		return err
	}
	// 2. the data itself.
	if err := w.put(r.Region, r.dataOff(), data); err != nil {
		return err
	}
	// 3. tail counter — record consistent again.
	if err := w.put(r.Region, r.tailOff(), cnt[:]); err != nil {
		return err
	}
	w.Writes++
	return nil
}

// WriteRecordAt is WriteRecord with an explicit version for the
// counters, used by DoubleBuffer to keep a global order across two
// alternating records.
func (w *Writer) WriteRecordAt(r Record, data []byte, version uint64) error {
	if len(data) != r.Size {
		return fmt.Errorf("netcache: record size %d, got %d bytes", r.Size, len(data))
	}
	var cnt [CounterSize]byte
	binary.LittleEndian.PutUint64(cnt[:], version)
	if err := w.put(r.Region, r.headOff(), cnt[:]); err != nil {
		return err
	}
	if err := w.put(r.Region, r.dataOff(), data); err != nil {
		return err
	}
	if err := w.put(r.Region, r.tailOff(), cnt[:]); err != nil {
		return err
	}
	w.Writes++
	return nil
}

// DoubleBuffer is a crash-safe checkpoint cell: two alternating seqlock
// records. The writer always overwrites the older slot with a version
// one above the newer; the reader returns the newest *consistent* slot.
// A writer dying mid-write can therefore tear at most the slot it was
// writing — the previously committed checkpoint survives, which is what
// makes the paper's "no loss of data" failover claim (slide 19) hold
// even when the primary dies inside a checkpoint.
type DoubleBuffer struct {
	A, B Record
}

// NewDoubleBuffer lays out a double buffer of the given data size at
// offset off in region.
func NewDoubleBuffer(region uint8, off uint32, size int) DoubleBuffer {
	return DoubleBuffer{
		A: Record{Region: region, Off: off, Size: size},
		B: Record{Region: region, Off: off + uint32(size+RecordOverhead), Size: size},
	}
}

// Span returns the total bytes the double buffer occupies.
func (d DoubleBuffer) Span() int { return d.A.Span() + d.B.Span() }

// Read returns the newest consistent checkpoint and its version.
// ok=false only if neither slot has ever been written consistently.
func (d DoubleBuffer) Read(c *Cache) (data []byte, version uint64, ok bool) {
	da, oka := c.TryRead(d.A)
	db, okb := c.TryRead(d.B)
	va, vb := c.Version(d.A), c.Version(d.B)
	switch {
	case oka && okb:
		if va >= vb {
			if va == 0 {
				return nil, 0, false // never written
			}
			return da, va, true
		}
		return db, vb, true
	case oka:
		if va == 0 {
			return nil, 0, false
		}
		return da, va, true
	case okb:
		if vb == 0 {
			return nil, 0, false
		}
		return db, vb, true
	default:
		return nil, 0, false
	}
}

// Write commits a new checkpoint into the older slot.
func (d DoubleBuffer) Write(w *Writer, data []byte) error {
	va, vb := w.Local.Version(d.A), w.Local.Version(d.B)
	next := va + 1
	target := d.A
	if vb > va {
		next = vb + 1
	}
	if va >= vb {
		target = d.B // overwrite the older (B) slot
	}
	return w.WriteRecordAt(target, data, next)
}

// Layout computes consecutive record placements in a region, a helper
// for building fixed tables (configuration database, heartbeat slots…).
func Layout(region uint8, start uint32, size, count int) []Record {
	out := make([]Record, count)
	off := start
	for i := range out {
		out[i] = Record{Region: region, Off: off, Size: size}
		off += uint32(size + RecordOverhead)
	}
	return out
}
