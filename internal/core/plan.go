package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/ampdk"
	"repro/internal/shardnet"
	"repro/internal/sim"
)

// EventKind classifies a plan event.
type EventKind uint8

// Plan event kinds: faults and their repairs.
const (
	EvCrashNode EventKind = iota
	EvRebootNode
	EvFailSwitch
	EvRestoreSwitch
	EvFailLink
	EvRestoreLink
	EvFailTrunk
	EvRestoreTrunk
)

// String names the kind in the plan-script spelling.
func (k EventKind) String() string {
	switch k {
	case EvCrashNode:
		return "crash-node"
	case EvRebootNode:
		return "reboot-node"
	case EvFailSwitch:
		return "fail-switch"
	case EvRestoreSwitch:
		return "restore-switch"
	case EvFailLink:
		return "fail-link"
	case EvRestoreLink:
		return "restore-link"
	case EvFailTrunk:
		return "fail-trunk"
	case EvRestoreTrunk:
		return "restore-trunk"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one scheduled fault or repair. At is an offset from the
// moment the plan is installed (Cluster.Install) — not an absolute
// time — so the same Plan value replays identically on any cluster.
// Node and Switch are -1 when the kind does not use them; trunk events
// carry the trunk index in Switch.
type Event struct {
	At     sim.Time
	Kind   EventKind
	Node   int
	Switch int
}

// String renders the event in plan-script syntax (without the time),
// e.g. "crash-node 3" or "fail-link 3 0".
func (e Event) String() string {
	switch e.Kind {
	case EvCrashNode, EvRebootNode:
		return fmt.Sprintf("%v %d", e.Kind, e.Node)
	case EvFailSwitch, EvRestoreSwitch, EvFailTrunk, EvRestoreTrunk:
		return fmt.Sprintf("%v %d", e.Kind, e.Switch)
	default:
		return fmt.Sprintf("%v %d %d", e.Kind, e.Node, e.Switch)
	}
}

// CrashNode schedules node n to die (NIC and all) at offset at.
func CrashNode(at sim.Time, n int) Event {
	return Event{At: at, Kind: EvCrashNode, Node: n, Switch: -1}
}

// RebootNode schedules crashed node n to boot back through
// assimilation at offset at.
func RebootNode(at sim.Time, n int) Event {
	return Event{At: at, Kind: EvRebootNode, Node: n, Switch: -1}
}

// FailSwitch schedules switch s to go dark at offset at.
func FailSwitch(at sim.Time, s int) Event {
	return Event{At: at, Kind: EvFailSwitch, Node: -1, Switch: s}
}

// RestoreSwitch schedules failed switch s to re-light at offset at.
func RestoreSwitch(at sim.Time, s int) Event {
	return Event{At: at, Kind: EvRestoreSwitch, Node: -1, Switch: s}
}

// FailLink schedules the fiber between node n and switch s to be cut
// at offset at.
func FailLink(at sim.Time, n, s int) Event {
	return Event{At: at, Kind: EvFailLink, Node: n, Switch: s}
}

// RestoreLink schedules the cut fiber between node n and switch s to
// be re-spliced at offset at.
func RestoreLink(at sim.Time, n, s int) Event {
	return Event{At: at, Kind: EvRestoreLink, Node: n, Switch: s}
}

// FailTrunk schedules inter-switch trunk t to be cut at offset at.
// Trunks exist only on fabrics that declare them (Options.Fabric).
func FailTrunk(at sim.Time, t int) Event {
	return Event{At: at, Kind: EvFailTrunk, Node: -1, Switch: t}
}

// RestoreTrunk schedules cut trunk t to be re-spliced at offset at.
func RestoreTrunk(at sim.Time, t int) Event {
	return Event{At: at, Kind: EvRestoreTrunk, Node: -1, Switch: t}
}

// Plan is an ordered schedule of faults and repairs. Build one from
// the event constructors (CrashNode, FailSwitch, ...) or ParsePlan,
// then install it with Cluster.Install or run it via Scenario.
type Plan []Event

// Validate checks the plan against the cluster's topology, its current
// fault state and any already-installed pending events, without
// installing anything: every id must be in range, no event may be
// scheduled in the past (negative offset), and the combined
// fault/repair sequence must be coherent — crashing an already-crashed
// node, rebooting a live one, failing a failed switch or restoring a
// healthy link are all rejected up front rather than left to panic
// mid-simulation.
func (p Plan) Validate(c *Cluster) error {
	nodes, switches := len(c.Nodes), len(c.Phys.Switches)
	now := c.Now()

	// Merge the candidate events (offsets made absolute) with the
	// pending events of previously installed plans, then walk them in
	// fire order (stable by time; at equal times the kernel fires in
	// schedule order, i.e. pending before candidate, plan order within
	// each), tracking the state each event would find. Before boot
	// every node counts as up — the boot is about to bring it up.
	type item struct {
		at      sim.Time // absolute fire time
		e       Event
		planIdx int // index into p, or -1 for an installed pending event
	}
	items := make([]item, 0, len(c.pending)+len(p))
	for _, pe := range c.pending {
		items = append(items, item{pe.At, pe.Event, -1})
	}
	for i, e := range p {
		if e.At < 0 {
			return fmt.Errorf("core: plan event %d (%v at %v): scheduled before now (negative offset)", i, e, e.At)
		}
		items = append(items, item{now + e.At, e, i})
	}
	sort.SliceStable(items, func(a, b int) bool { return items[a].at < items[b].at })

	trunks := len(c.Phys.Trunks)
	nodeUp := make([]bool, nodes)
	swUp := make([]bool, switches)
	linkUp := make([][]bool, nodes)
	linkExists := make([][]bool, nodes)
	trunkUp := make([]bool, trunks)
	for i := range nodeUp {
		nodeUp[i] = !c.booted || c.Nodes[i].State != ampdk.StateOffline
		linkUp[i] = make([]bool, switches)
		linkExists[i] = make([]bool, switches)
		for s := range linkUp[i] {
			if l := c.Phys.NodeLinks[i][s]; l != nil {
				linkExists[i][s] = true
				linkUp[i][s] = l.Up()
			}
		}
	}
	for i := range swUp {
		swUp[i] = !c.Phys.Switches[i].Failed()
	}
	for i := range trunkUp {
		trunkUp[i] = c.Phys.TrunkUp(i)
	}

	for _, it := range items {
		e := it.e
		fail := func(format string, args ...any) error {
			what := fmt.Sprintf("plan event %d (%v at %v)", it.planIdx, e, e.At)
			if it.planIdx < 0 {
				// A pending event was coherent when installed; blame
				// the plan that breaks the combined sequence.
				what = fmt.Sprintf("plan conflicts with installed event (%v at t=%v)", e, it.at)
			}
			return fmt.Errorf("core: %s: %s", what, fmt.Sprintf(format, args...))
		}
		needNode := e.Kind == EvCrashNode || e.Kind == EvRebootNode || e.Kind == EvFailLink || e.Kind == EvRestoreLink
		needSwitch := e.Kind == EvFailSwitch || e.Kind == EvRestoreSwitch || e.Kind == EvFailLink || e.Kind == EvRestoreLink
		needTrunk := e.Kind == EvFailTrunk || e.Kind == EvRestoreTrunk
		if needNode && (e.Node < 0 || e.Node >= nodes) {
			return fail("node id out of range [0,%d)", nodes)
		}
		if needSwitch && (e.Switch < 0 || e.Switch >= switches) {
			return fail("switch id out of range [0,%d)", switches)
		}
		if needTrunk && (e.Switch < 0 || e.Switch >= trunks) {
			return fail("trunk id out of range [0,%d) (this fabric has %d trunks)", trunks, trunks)
		}
		if (e.Kind == EvFailLink || e.Kind == EvRestoreLink) && !linkExists[e.Node][e.Switch] {
			return fail("the fabric has no link between node %d and switch %d", e.Node, e.Switch)
		}
		switch e.Kind {
		case EvCrashNode:
			if !nodeUp[e.Node] {
				return fail("node %d is already crashed (double crash without a reboot)", e.Node)
			}
			nodeUp[e.Node] = false
		case EvRebootNode:
			if nodeUp[e.Node] {
				return fail("node %d is not crashed", e.Node)
			}
			nodeUp[e.Node] = true
		case EvFailSwitch:
			if !swUp[e.Switch] {
				return fail("switch %d is already failed", e.Switch)
			}
			swUp[e.Switch] = false
		case EvRestoreSwitch:
			if swUp[e.Switch] {
				return fail("switch %d is not failed", e.Switch)
			}
			swUp[e.Switch] = true
		case EvFailLink:
			if !linkUp[e.Node][e.Switch] {
				return fail("link %d-%d is already cut", e.Node, e.Switch)
			}
			linkUp[e.Node][e.Switch] = false
		case EvRestoreLink:
			if linkUp[e.Node][e.Switch] {
				return fail("link %d-%d is not cut", e.Node, e.Switch)
			}
			linkUp[e.Node][e.Switch] = true
		case EvFailTrunk:
			if !trunkUp[e.Switch] {
				return fail("trunk %d is already cut", e.Switch)
			}
			trunkUp[e.Switch] = false
		case EvRestoreTrunk:
			if trunkUp[e.Switch] {
				return fail("trunk %d is not cut", e.Switch)
			}
			trunkUp[e.Switch] = true
		default:
			return fail("unknown event kind")
		}
	}
	return nil
}

// AppliedEvent records a plan event that has fired, stamped with the
// absolute virtual time it fired at.
type AppliedEvent struct {
	At    sim.Time
	Event Event
}

// Install validates the plan — against the cluster's state and any
// events still pending from earlier installs — and schedules every
// event on the kernel. The installation is atomic: an invalid plan
// schedules nothing. Event offsets are relative to the current virtual
// time. Fired events are recorded (see Applied) and reported through
// OnEvent if set.
func (c *Cluster) Install(p Plan) error {
	if err := p.Validate(c); err != nil {
		return err
	}
	for _, e := range p {
		e := e
		c.pending = append(c.pending, AppliedEvent{At: c.Now() + e.At, Event: e})
		// On the serial engine this is a plain kernel timer. On the
		// parallel engine it is a coordinator action: the fault fires
		// single-threaded at a window barrier, with every shard parked
		// on the event's instant — the only moment shared fabric state
		// (link light, switch health) may change. The descriptor is the
		// event itself, so distributed shard workers replay the same
		// fault against their replicas at the same fence.
		desc, err := json.Marshal(e)
		if err != nil { // Event is plain data; see its declaration
			panic(err)
		}
		c.eng.ScheduleAction(c.Now()+e.At, func() { c.apply(e) },
			&shardnet.Action{Kind: actPlanEvent, Data: desc})
	}
	return nil
}

func (c *Cluster) apply(e Event) {
	for i, pe := range c.pending {
		if pe.Event == e && pe.At == c.Now() {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			break
		}
	}
	switch e.Kind {
	case EvCrashNode:
		c.CrashNode(e.Node)
	case EvRebootNode:
		c.RebootNode(e.Node)
	case EvFailSwitch:
		c.FailSwitch(e.Switch)
	case EvRestoreSwitch:
		c.RestoreSwitch(e.Switch)
	case EvFailLink:
		c.FailLink(e.Node, e.Switch)
	case EvRestoreLink:
		c.RestoreLink(e.Node, e.Switch)
	case EvFailTrunk:
		c.FailTrunk(e.Switch)
	case EvRestoreTrunk:
		c.RestoreTrunk(e.Switch)
	}
	c.applied = append(c.applied, AppliedEvent{At: c.Now(), Event: e})
	if c.OnEvent != nil {
		c.OnEvent(e)
	}
}

// Applied returns the plan events that have fired so far, in fire
// order.
func (c *Cluster) Applied() []AppliedEvent { return c.applied }

// ParsePlan parses a plan script: semicolon- or newline-separated
// entries of the form "<offset> <op> <args>", where offset is a Go
// duration and op is one of the event-kind spellings:
//
//	10ms fail-switch 0; 20ms restore-switch 0
//	5ms crash-node 3; 25ms reboot-node 3
//	1ms fail-link 3 0
//	2ms fail-trunk 0; 12ms restore-trunk 0
//
// This is the -plan syntax of cmd/ampsim. FormatPlan is its inverse.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	entries := strings.FieldsFunc(s, func(r rune) bool { return r == ';' || r == '\n' })
	for _, entry := range entries {
		fields := strings.Fields(entry)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 3 {
			return nil, fmt.Errorf("core: plan entry %q: want \"<offset> <op> <id...>\"", strings.TrimSpace(entry))
		}
		d, err := time.ParseDuration(fields[0])
		if err != nil {
			return nil, fmt.Errorf("core: plan entry %q: bad offset: %v", strings.TrimSpace(entry), err)
		}
		at := sim.Time(d.Nanoseconds())
		args := make([]int, len(fields)-2)
		for i, f := range fields[2:] {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("core: plan entry %q: bad id %q", strings.TrimSpace(entry), f)
			}
			args[i] = v
		}
		one := func(mk func(sim.Time, int) Event) error {
			if len(args) != 1 {
				return fmt.Errorf("core: plan entry %q: op %s takes one id", strings.TrimSpace(entry), fields[1])
			}
			p = append(p, mk(at, args[0]))
			return nil
		}
		two := func(mk func(sim.Time, int, int) Event) error {
			if len(args) != 2 {
				return fmt.Errorf("core: plan entry %q: op %s takes a node and a switch id", strings.TrimSpace(entry), fields[1])
			}
			p = append(p, mk(at, args[0], args[1]))
			return nil
		}
		switch fields[1] {
		case "crash-node":
			err = one(CrashNode)
		case "reboot-node":
			err = one(RebootNode)
		case "fail-switch":
			err = one(FailSwitch)
		case "restore-switch":
			err = one(RestoreSwitch)
		case "fail-link":
			err = two(FailLink)
		case "restore-link":
			err = two(RestoreLink)
		case "fail-trunk":
			err = one(FailTrunk)
		case "restore-trunk":
			err = one(RestoreTrunk)
		default:
			err = fmt.Errorf("core: plan entry %q: unknown op %q", strings.TrimSpace(entry), fields[1])
		}
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// FormatPlan renders a plan in the plan-script syntax ParsePlan
// accepts, one entry per event: "10ms fail-switch 0; 20ms
// restore-switch 0". ParsePlan(FormatPlan(p)) reproduces p exactly for
// any valid plan (offsets round-trip through Go duration formatting).
func FormatPlan(p Plan) string {
	var b strings.Builder
	for i, e := range p {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%v %s", time.Duration(e.At), e)
	}
	return b.String()
}
