package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Scaling past the one-byte address space: these tests drive fabrics
// that cannot exist under wire v1. They tune the liveness cadences
// (heartbeats, keepalives, join retries) to scale-appropriate values —
// the defaults are calibrated for room-sized rings and would melt a
// 1024-node fabric in pure liveness chatter, exactly as real deployments
// retune timers when a cluster grows an order of magnitude.

// scaleTune slows per-node liveness traffic to big-fabric cadences.
// Deterministic: pure per-node constants, identical on every engine.
func scaleTune(c *Cluster) {
	for _, nd := range c.Nodes {
		nd.Cfg.JoinTimeout = 20 * sim.Millisecond
		nd.Agent.KeepaliveInterval = 2 * sim.Millisecond
		nd.Agent.SilenceTimeout = 10 * sim.Millisecond
	}
}

// hugeScenario is the shared shape of the scale tests: an 8-ring
// sharded fabric with 200 m inter-shard trunks (the machine-room
// assumption, and a deep conservative lookahead), a mid-run node crash
// and reboot, and seeded Poisson pub-sub spanning the shards. It
// mirrors experiments.E15Scenario field for field (this package
// cannot import experiments without a cycle) — keep the two in sync.
func hugeScenario(nodes int, seed uint64, shards int) Scenario {
	topo := phys.Sharded(8, nodes/8, 1, 50)
	for i := range topo.Trunks {
		topo.Trunks[i].FiberM = 200
	}
	return Scenario{
		Name: fmt.Sprintf("huge-%d", nodes),
		Opts: Options{Fabric: &topo, Seed: seed, Shards: shards,
			HeartbeatInterval: 5 * sim.Millisecond},
		BootWindow: sim.Time(nodes) * 2 * sim.Millisecond,
		// On-grid plan instants: plan actions carry their own canonical
		// priority (before every model event at their instant, on both
		// engines — see serialEngine.ScheduleAction), so faults may
		// land dead-on the periodic timer grid without skew.
		Plan: Plan{
			CrashNode(2*sim.Millisecond, nodes-1),
			RebootNode(4*sim.Millisecond, nodes-1),
		},
		Loads: []Load{&PubSubLoad{
			Publisher: 0, Topic: 1, Every: 200 * sim.Microsecond, Poisson: true,
			Subscribers: []int{1, nodes / 4, nodes / 2, nodes - 2},
		}},
		For: 12 * sim.Millisecond,
		// Settle must outlast the post-reboot re-roster churn: at 1024
		// nodes the ring re-stabilizes ~17 ms after the reboot (epoch
		// waves reopen as late announcements land), and only then can
		// the rebooted node's join handshake survive a full ring
		// transit. 20 ms leaves it two solicit retry cycles of margin.
		Settle:    20 * sim.Millisecond,
		OnCluster: scaleTune,
	}
}

// TestEquivalenceHugeFabric extends the equivalence battery past the
// v1 address ceiling: at 512 nodes (auto wire v2) the sharded engine's
// Report JSON must stay byte-identical to the serial engine's. This is
// the determinism half of the E15 scaling story; CI runs it under
// -race like the main battery.
func TestEquivalenceHugeFabric(t *testing.T) {
	if testing.Short() {
		t.Skip("512-node serial run skipped in -short")
	}
	const nodes = 512
	serialRep, err := hugeScenario(nodes, 1, 1).Run()
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	if got := serialRep.Wire; got != "v2" {
		t.Fatalf("512-node fabric reports wire %q, want v2", got)
	}
	serial := serialRep.JSON()
	parRep, err := hugeScenario(nodes, 1, 8).Run()
	if err != nil {
		t.Fatalf("shards=8: %v", err)
	}
	if par := parRep.JSON(); !bytes.Equal(serial, par) {
		t.Fatalf("512-node report diverged from serial\n--- serial ---\n%s--- shards=8 ---\n%s", serial, par)
	}
	if !serialRep.Healed || serialRep.RingSize != nodes {
		t.Fatalf("512-node fabric did not heal: ring=%d healed=%v", serialRep.RingSize, serialRep.Healed)
	}
}

// TestHugeFabricSmoke boots a 1024-node fabric — four times the v1
// ceiling — on 8 shards, crashes and reboots a node mid-run, and
// requires the ring to heal back to full size (rebooted node
// re-assimilated, every roster agreed and on live hardware) with the
// Poisson pub-sub stream delivered, inside a wall-clock budget. This
// is the E15 scale smoke CI runs; determinism at scale is pinned
// byte-for-byte by TestEquivalenceHugeFabric (serial vs sharded at
// 512 nodes), so one run suffices here.
func TestHugeFabricSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("huge fabric smoke skipped in -short")
	}
	const nodes = 1024
	start := time.Now()
	rep, err := hugeScenario(nodes, 1, 8).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RingSize != nodes || !rep.Healed {
		t.Fatalf("huge fabric did not heal: ring=%d healed=%v", rep.RingSize, rep.Healed)
	}
	// Transient congestion drops during the crash transition are a
	// model outcome, not a smoke failure; losslessness is asserted by
	// the steady-state experiments.
	if rep.Wire != "v2" {
		t.Fatalf("huge fabric reports wire %q, want v2", rep.Wire)
	}
	if len(rep.Loads) != 1 || rep.Loads[0].Delivered == 0 || rep.Loads[0].Sent == 0 {
		t.Fatalf("Poisson pub-sub moved nothing: %+v", rep.Loads)
	}
	if wall := time.Since(start); wall > 10*time.Minute {
		t.Fatalf("huge fabric smoke took %v, budget 10m", wall)
	}
}

// TestWireVersionSurfacesAsError pins the user-facing validation path:
// an explicit v1 on a >255-node fabric is a scenario error naming the
// version — not a panic — and the auto default just works.
func TestWireVersionSurfacesAsError(t *testing.T) {
	topo := phys.Uniform(300, 2, 50)
	_, err := Scenario{
		Opts: Options{Fabric: &topo, Wire: wire.V1},
		For:  sim.Millisecond,
	}.Run()
	if err == nil {
		t.Fatal("v1 scenario with 300 nodes ran")
	}
	if !strings.Contains(err.Error(), "v1") {
		t.Fatalf("error does not name the wire version: %v", err)
	}
	// The same overflow through plain Nodes/Switches options.
	_, err = Scenario{
		Opts: Options{Nodes: 300, Switches: 2, Wire: wire.V1},
		For:  sim.Millisecond,
	}.Run()
	if err == nil || !strings.Contains(err.Error(), "v1") {
		t.Fatalf("options-level overflow not surfaced: %v", err)
	}
}
