package core

import (
	"bytes"
	"testing"

	"repro/internal/micropacket"
	"repro/internal/netcache"
	"repro/internal/sim"
)

// TestDeepPHYFullStack boots an entire cluster with every frame passing
// through the real MicroPacket + 8b/10b datapath bit-for-bit.
func TestDeepPHYFullStack(t *testing.T) {
	c := New(Options{Nodes: 4, Switches: 2, DeepPHY: true, Regions: map[uint8]int{1: 4096}})
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	// Messaging.
	var got []byte
	c.Services[3].Sub.Subscribe(1, func(_ micropacket.NodeID, data []byte) { got = data })
	c.Services[0].Sub.Publish(1, []byte("through the real datapath"))
	c.Run(3 * sim.Millisecond)
	if string(got) != "through the real datapath" {
		t.Fatalf("pubsub over deep PHY: %q", got)
	}
	// Cache.
	rec := netcache.Record{Region: 1, Off: 0, Size: 32}
	want := bytes.Repeat([]byte{0x3C}, 32)
	c.Nodes[1].CacheW.WriteRecord(rec, want)
	c.Run(3 * sim.Millisecond)
	if d, ok := c.Nodes[2].Cache.TryRead(rec); !ok || !bytes.Equal(d, want) {
		t.Fatal("cache over deep PHY failed")
	}
	// Self-heal still works with the full datapath.
	c.FailSwitch(0)
	c.Run(10 * sim.Millisecond)
	if c.RingSize() != 4 {
		t.Fatalf("heal over deep PHY: ring = %d", c.RingSize())
	}
	if c.Net.CRCDrops.N != 0 {
		t.Fatalf("CRC drops on clean links: %d", c.Net.CRCDrops.N)
	}
	if c.Drops() != 0 {
		t.Fatalf("congestion drops: %d", c.Drops())
	}
}

// TestDeepPHYWithBitErrors injects a 1e-4 per-symbol error rate: frames
// are discarded by the hardware CRC (never delivered corrupted) and the
// services above survive via retransmission and recovery.
func TestDeepPHYWithBitErrors(t *testing.T) {
	c := New(Options{Nodes: 3, Switches: 2, DeepPHY: true, BER: 1e-4, Regions: map[uint8]int{1: 2048}})
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	for _, nd := range c.Nodes {
		nd.EnableAutoRecovery(2 * sim.Millisecond)
	}
	// Stream cache writes; the final state must converge everywhere
	// despite frames dying to bit errors along the way.
	rec := netcache.Record{Region: 1, Off: 0, Size: 16}
	i := byte(0)
	var tick func()
	tick = func() {
		i++
		c.Nodes[0].CacheW.WriteRecord(rec, bytes.Repeat([]byte{i}, 16))
		if i < 100 {
			c.K.After(50*sim.Microsecond, tick)
		}
	}
	c.K.After(0, tick)
	c.Run(80 * sim.Millisecond)

	if c.Net.CRCDrops.N == 0 {
		t.Skip("no frame hit a bit error at this BER/seed; nothing exercised")
	}
	want := bytes.Repeat([]byte{100}, 16)
	for id, nd := range c.Nodes {
		got, ok := nd.Cache.TryRead(rec)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("node %d did not converge under bit errors (CRC drops=%d): %v ok=%v",
				id, c.Net.CRCDrops.N, got[:2], ok)
		}
	}
}
