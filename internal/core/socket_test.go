package core

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/ampdk"
	"repro/internal/phys"
	"repro/internal/sim"
)

// TestMain doubles this test binary as the shard-worker command: the
// socket-transport tests pass os.Args[0] as Options.ShardWorker, and a
// launched worker finds the ampshard environment here before any test
// runs. Without the environment this is a plain test run.
func TestMain(m *testing.M) {
	RunShardWorkerFromEnv()
	os.Exit(m.Run())
}

// socketWorker is the worker argv for socket-transport tests: this
// test binary itself (see TestMain).
func socketWorker() []string { return []string{os.Args[0]} }

// TestEquivalenceBatterySocket is the battery's socket-transport leg:
// for sharded fabrics × seeds, a run whose shards live in separate OS
// processes speaking internal/wire over loopback TCP yields a Report
// byte-identical to the serial engine's and to the in-process sharded
// engine's. Every barrier of each run also cross-checks the workers'
// wire-encoded captures and event counts against the coordinator's
// replica, so this is equivalence proven per window, not just at the
// final report.
func TestEquivalenceBatterySocket(t *testing.T) {
	if testing.Short() {
		t.Skip("socket equivalence skipped in -short (spawns worker fleets)")
	}
	fabrics := []phys.Topology{
		phys.Sharded(2, 4, 2, 50),
		phys.Sharded(4, 3, 1, 50),
	}
	seeds := []uint64{1, 2}
	for _, topo := range fabrics {
		topo := topo
		t.Run(fmt.Sprintf("%s%dx%d", topo.Name, topo.Nodes, topo.Switches), func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				serialRep, err := equivalenceScenario(&topo, seed, 1).Run()
				if err != nil {
					t.Fatalf("serial seed=%d: %v", seed, err)
				}
				serial := serialRep.JSON()

				inprocSc := equivalenceScenario(&topo, seed, 2)
				inprocRep, err := inprocSc.Run()
				if err != nil {
					t.Fatalf("inproc seed=%d: %v", seed, err)
				}
				if !bytes.Equal(serial, inprocRep.JSON()) {
					t.Fatalf("seed=%d: inproc sharded report diverged from serial", seed)
				}

				sockSc := equivalenceScenario(&topo, seed, 2)
				sockSc.Opts.Transport = "socket"
				sockSc.Opts.ShardWorker = socketWorker()
				sockRep, err := sockSc.Run()
				if err != nil {
					t.Fatalf("socket seed=%d: %v", seed, err)
				}
				if sock := sockRep.JSON(); !bytes.Equal(serial, sock) {
					t.Errorf("seed=%d: socket report diverged from serial\n--- serial ---\n%s--- socket ---\n%s",
						seed, serial, sock)
					return
				}
			}
		})
	}
}

// TestSocketWorkerDeathFailsRun pins the failure semantics: a shard
// worker that dies mid-run (here: exits without replying to its first
// granted window, via the AMPSHARD_TEST_DIE hook) must fail the
// scenario with an error naming the shard — never hang the barrier.
func TestSocketWorkerDeathFailsRun(t *testing.T) {
	t.Setenv(EnvTestDie, "1")
	topo := phys.Sharded(2, 3, 1, 50)
	sc := Scenario{
		Opts: Options{Fabric: &topo, Seed: 1, Shards: 2,
			Transport: "socket", ShardWorker: socketWorker()},
		For: 2 * sim.Millisecond,
	}
	_, err := sc.Run()
	if err == nil {
		t.Fatal("scenario succeeded with a dying shard worker")
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("worker-death error does not name the shard: %v", err)
	}
}

// TestSocketWorkerPanicPropagates: a worker whose replica build or
// window panics reports MsgError and the run fails with the cause. A
// worker command that cannot even launch fails the same way.
func TestSocketWorkerLaunchFailure(t *testing.T) {
	topo := phys.Sharded(2, 3, 1, 50)
	sc := Scenario{
		Opts: Options{Fabric: &topo, Seed: 1, Shards: 2,
			Transport: "socket", ShardWorker: []string{"/nonexistent/ampshard-worker"}},
		For: sim.Millisecond,
	}
	_, err := sc.Run()
	if err == nil {
		t.Fatal("scenario succeeded with an unlaunchable worker command")
	}
	if !strings.Contains(err.Error(), "worker") {
		t.Fatalf("launch-failure error: %v", err)
	}
}

// TestSocketRejections pins the up-front validation: configurations the
// mirrored-replica scheme cannot serialize across a process boundary
// are errors before anything launches, each naming the offending knob.
func TestSocketRejections(t *testing.T) {
	topo := phys.Sharded(2, 3, 1, 50)
	base := Scenario{
		Opts: Options{Fabric: &topo, Seed: 1, Shards: 2,
			Transport: "socket", ShardWorker: socketWorker()},
		For: sim.Millisecond,
	}

	serial := base
	serial.Opts.Shards = 1
	if _, err := serial.Run(); err == nil || !strings.Contains(err.Error(), "Shards") {
		t.Fatalf("socket on the serial engine: err = %v, want Shards error", err)
	}

	noWorker := base
	noWorker.Opts.ShardWorker = nil
	if _, err := noWorker.Run(); err == nil || !strings.Contains(err.Error(), "ShardWorker") {
		t.Fatalf("socket without a worker command: err = %v, want ShardWorker error", err)
	}

	versionOf := base
	versionOf.Opts.VersionOf = func(n int) ampdk.Version { return 0x0100 }
	if _, err := versionOf.Run(); err == nil || !strings.Contains(err.Error(), "VersionOf") {
		t.Fatalf("socket with VersionOf closure: err = %v, want VersionOf error", err)
	}

	handRolled := base
	bare := phys.Topology{Name: "hand-rolled", Nodes: 6, Switches: 2, FiberM: 50}
	handRolled.Opts.Fabric = &bare
	if _, err := handRolled.Run(); err == nil || !strings.Contains(err.Error(), "shape") {
		t.Fatalf("socket with hand-rolled fabric: err = %v, want shape error", err)
	}

	unknown := base
	unknown.Opts.Transport = "carrier-pigeon"
	if _, err := unknown.Run(); err == nil || !strings.Contains(err.Error(), "carrier-pigeon") {
		t.Fatalf("unknown transport: err = %v, want unknown-transport error", err)
	}

	fillLoad := base
	fillLoad.Loads = []Load{&PubSubLoad{Publisher: 0, Topic: 1,
		Fill: func(seq uint64, payload []byte) {}}}
	if _, err := fillLoad.Run(); err == nil || !strings.Contains(err.Error(), "Fill") {
		t.Fatalf("socket with Fill closure load: err = %v, want Fill error", err)
	}
}
