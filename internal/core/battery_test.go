package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/phys"
	"repro/internal/sim"
)

// The invariant battery: randomized fault/repair plans across many
// seeds and every fabric shape, asserting the roster invariants
// (InvariantViolations: no duplicate node ids, every arc on live
// hardware, ring size == live nodes per partition, full agreement)
// after every heal window. This is the property-style complement to the
// hand-picked scenarios: the interleaving of faults, rostering floods,
// watchdogs and assimilation is different for every seed, and the
// invariants must hold at every settle point regardless.

// batteryFault is one applicable fault with its repair.
type batteryFault struct {
	name    string
	fault   Event
	repair  Event
	applies func(c *Cluster) bool
}

// batteryFaults enumerates the fault menu for a cluster, at offset 0
// (install-time firing).
func batteryFaults(rng *rand.Rand, c *Cluster) []batteryFault {
	nodes := len(c.Nodes)
	n := rng.Intn(nodes)
	s := rng.Intn(len(c.Phys.Switches))
	menu := []batteryFault{
		{
			name: fmt.Sprintf("crash-node %d", n), fault: CrashNode(0, n), repair: RebootNode(0, n),
			applies: func(c *Cluster) bool { return true },
		},
		{
			name: fmt.Sprintf("fail-switch %d", s), fault: FailSwitch(0, s), repair: RestoreSwitch(0, s),
			applies: func(c *Cluster) bool { return !c.Phys.Switches[s].Failed() },
		},
	}
	// A link fault needs an existing link.
	var links [][2]int
	for i := 0; i < nodes; i++ {
		for sw := range c.Phys.Switches {
			if c.Phys.NodeLinks[i][sw] != nil {
				links = append(links, [2]int{i, sw})
			}
		}
	}
	l := links[rng.Intn(len(links))]
	menu = append(menu, batteryFault{
		name: fmt.Sprintf("fail-link %d %d", l[0], l[1]), fault: FailLink(0, l[0], l[1]), repair: RestoreLink(0, l[0], l[1]),
		applies: func(c *Cluster) bool { return c.Phys.NodeLinks[l[0]][l[1]].Up() },
	})
	if nt := c.Phys.NumTrunks(); nt > 0 {
		tr := rng.Intn(nt)
		menu = append(menu, batteryFault{
			name: fmt.Sprintf("fail-trunk %d", tr), fault: FailTrunk(0, tr), repair: RestoreTrunk(0, tr),
			applies: func(c *Cluster) bool { return c.Phys.TrunkUp(tr) },
		})
	}
	return menu
}

// batteryFabrics returns the fabric shapes the battery sweeps: the
// single-ring uniform segments and the new multi-ring (trunked)
// shapes.
func batteryFabrics() []phys.Topology {
	return []phys.Topology{
		phys.Uniform(6, 4, 50),
		phys.Uniform(5, 2, 50),
		phys.DualRing(6, 50),
		phys.Mesh(6, 3, 50),
		phys.Sharded(2, 3, 2, 50),
	}
}

// settleAndCheck waits for the cluster to heal and asserts every
// invariant at the settle point.
func settleAndCheck(t *testing.T, c *Cluster, seed uint64, what string) {
	t.Helper()
	// Let the fault fire and the loss-of-light/watchdog detection run
	// before polling for the healed state.
	c.Run(2 * sim.Millisecond)
	if err := c.WaitHealed(60 * sim.Millisecond); err != nil {
		t.Fatalf("seed %d: after %s: %v\n  violations: %v", seed, what, err, c.InvariantViolations())
	}
	if v := c.InvariantViolations(); len(v) != 0 {
		t.Fatalf("seed %d: invariants violated after %s heal window: %v", seed, what, v)
	}
}

// TestInvariantBattery runs the battery across 32 seeds. Each seed
// picks a fabric shape and walks rounds of randomized fault → heal →
// check → repair → heal → check, occasionally leaving a compatible
// second fault outstanding through the window.
func TestInvariantBattery(t *testing.T) {
	const seeds = 32
	const rounds = 3
	fabrics := batteryFabrics()
	for seed := uint64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(seed)))
			topo := fabrics[int(seed)%len(fabrics)]
			c := New(Options{Fabric: &topo, Seed: seed})
			if err := c.Boot(0); err != nil {
				t.Fatalf("seed %d (%s): %v", seed, topo.Name, err)
			}
			settleAndCheck(t, c, seed, "boot")
			for round := 0; round < rounds; round++ {
				menu := batteryFaults(rng, c)
				// Pick one applicable fault, sometimes two distinct ones.
				var picked []batteryFault
				for _, idx := range rng.Perm(len(menu)) {
					if menu[idx].applies(c) {
						picked = append(picked, menu[idx])
						if len(picked) == 2 || rng.Intn(2) == 0 {
							break
						}
					}
				}
				if len(picked) == 0 {
					continue
				}
				var faults, repairs Plan
				what := ""
				for i, f := range picked {
					faults = append(faults, f.fault)
					repairs = append(repairs, f.repair)
					if i > 0 {
						what += " + "
					}
					what += f.name
				}
				if err := c.Install(faults); err != nil {
					t.Fatalf("seed %d round %d (%s): install %s: %v", seed, round, topo.Name, what, err)
				}
				settleAndCheck(t, c, seed, fmt.Sprintf("round %d fault %s (%s)", round, what, topo.Name))
				if err := c.Install(repairs); err != nil {
					t.Fatalf("seed %d round %d (%s): repair %s: %v", seed, round, topo.Name, what, err)
				}
				settleAndCheck(t, c, seed, fmt.Sprintf("round %d repair %s (%s)", round, what, topo.Name))
			}
		})
	}
}
