package core

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestPlanValidation(t *testing.T) {
	c := New(Options{Nodes: 4, Switches: 2})
	cases := []struct {
		name    string
		plan    Plan
		wantErr string // "" = valid
	}{
		{"empty", Plan{}, ""},
		{"valid crash+reboot", Plan{CrashNode(0, 1), RebootNode(sim.Millisecond, 1)}, ""},
		{"valid fault mix", Plan{
			FailSwitch(sim.Millisecond, 0),
			FailLink(2*sim.Millisecond, 3, 1),
			RestoreLink(3*sim.Millisecond, 3, 1),
			RestoreSwitch(4*sim.Millisecond, 0),
		}, ""},
		{"node out of range", Plan{CrashNode(0, 4)}, "node id out of range"},
		{"negative node", Plan{CrashNode(0, -1)}, "node id out of range"},
		{"switch out of range", Plan{FailSwitch(0, 2)}, "switch id out of range"},
		{"link switch out of range", Plan{FailLink(0, 0, 5)}, "switch id out of range"},
		{"before now", Plan{CrashNode(-sim.Millisecond, 0)}, "before now"},
		{"double crash", Plan{CrashNode(0, 2), CrashNode(sim.Millisecond, 2)}, "already crashed"},
		{"reboot of live node", Plan{RebootNode(0, 1)}, "not crashed"},
		{"double switch failure", Plan{FailSwitch(0, 1), FailSwitch(sim.Millisecond, 1)}, "already failed"},
		{"restore healthy switch", Plan{RestoreSwitch(0, 0)}, "not failed"},
		{"double link cut", Plan{FailLink(0, 1, 0), FailLink(sim.Millisecond, 1, 0)}, "already cut"},
		{"restore intact link", Plan{RestoreLink(0, 1, 0)}, "not cut"},
		{"order by time not position", Plan{
			// Listed reboot-first, but the crash fires earlier, so the
			// sequence is coherent.
			RebootNode(2*sim.Millisecond, 1),
			CrashNode(sim.Millisecond, 1),
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate(c)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// An invalid plan must install nothing: no event may fire later.
func TestInstallIsAtomic(t *testing.T) {
	c := New(Options{Nodes: 4, Switches: 2})
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	bad := Plan{
		CrashNode(sim.Millisecond, 0),   // valid on its own...
		CrashNode(2*sim.Millisecond, 9), // ...but this one is out of range
	}
	if err := c.Install(bad); err == nil {
		t.Fatal("Install(bad) = nil, want error")
	}
	c.Run(5 * sim.Millisecond)
	if !c.Nodes[0].Online() {
		t.Fatal("node 0 crashed: the invalid plan was partially installed")
	}
	if len(c.Applied()) != 0 {
		t.Fatalf("Applied() = %v, want empty", c.Applied())
	}
}

func TestInstallAppliesEventsInOrder(t *testing.T) {
	c := New(Options{Nodes: 4, Switches: 2})
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	var seen []string
	c.OnEvent = func(e Event) { seen = append(seen, e.String()) }
	plan := Plan{
		FailSwitch(sim.Millisecond, 0),
		CrashNode(2*sim.Millisecond, 3),
		RestoreSwitch(3*sim.Millisecond, 0),
	}
	if err := c.Install(plan); err != nil {
		t.Fatal(err)
	}
	c.Run(5 * sim.Millisecond)
	want := []string{"fail-switch 0", "crash-node 3", "restore-switch 0"}
	if len(seen) != len(want) {
		t.Fatalf("fired %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("fired %v, want %v", seen, want)
		}
	}
	if got := len(c.Applied()); got != 3 {
		t.Fatalf("Applied() has %d events, want 3", got)
	}
	if c.Nodes[3].Online() {
		t.Fatal("node 3 still online after planned crash")
	}
}

// Validation must see events pending from earlier installs: a crash
// already scheduled both legitimizes a later reboot-only plan and
// forbids a second crash of the same node.
func TestValidateAgainstPendingEvents(t *testing.T) {
	c := New(Options{Nodes: 4, Switches: 2})
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Install(Plan{CrashNode(sim.Millisecond, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Install(Plan{CrashNode(2*sim.Millisecond, 3)}); err == nil {
		t.Fatal("second crash of node 3 accepted despite the pending first crash")
	} else if !strings.Contains(err.Error(), "already crashed") {
		t.Fatalf("unexpected error: %v", err)
	}
	if err := c.Install(Plan{RebootNode(2*sim.Millisecond, 3)}); err != nil {
		t.Fatalf("reboot after a pending crash rejected: %v", err)
	}
	// Once fired, the events leave the pending set and the cluster's
	// real state takes over.
	c.Run(5 * sim.Millisecond)
	if got := len(c.Applied()); got != 2 {
		t.Fatalf("applied %d events, want 2", got)
	}
	if err := c.WaitHealed(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := c.Install(Plan{CrashNode(0, 3)}); err != nil {
		t.Fatalf("crash after completed crash+reboot rejected: %v", err)
	}
}

// A zero-offset install followed immediately by a wait must observe
// the fault: the current instant's events fire before the first probe.
func TestWaitSeesZeroOffsetEvents(t *testing.T) {
	c := New(Options{Nodes: 4, Switches: 2})
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Install(Plan{FailSwitch(0, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitHealed(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(c.Applied()) != 1 {
		t.Fatalf("applied %d events, want 1 — WaitHealed returned before the fault fired", len(c.Applied()))
	}
	if !c.Phys.Switches[0].Failed() {
		t.Fatal("switch 0 not failed after WaitHealed")
	}
	// And the heal is real: the agreed roster routes around switch 0.
	if r := c.Roster(); strings.Contains(r, "-s0->") {
		t.Fatalf("healed roster still routes through failed switch 0: %s", r)
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("10ms fail-switch 0; 20ms restore-switch 0\n5ms crash-node 3;15ms reboot-node 3; 1ms fail-link 2 1; 2ms restore-link 2 1")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{
		FailSwitch(10*sim.Millisecond, 0),
		RestoreSwitch(20*sim.Millisecond, 0),
		CrashNode(5*sim.Millisecond, 3),
		RebootNode(15*sim.Millisecond, 3),
		FailLink(sim.Millisecond, 2, 1),
		RestoreLink(2*sim.Millisecond, 2, 1),
	}
	if len(p) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(p), len(want))
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, p[i], want[i])
		}
	}
	for _, bad := range []string{
		"10ms", "10ms crash-node", "xs crash-node 1", "10ms crash-node one",
		"10ms melt-node 1", "10ms fail-link 1", "10ms crash-node 1 2",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) = nil error, want error", bad)
		}
	}
	// Blank entries are ignored.
	if p, err := ParsePlan(" ; \n ;"); err != nil || len(p) != 0 {
		t.Fatalf("ParsePlan(blanks) = %v, %v", p, err)
	}
}

// Boot must not overshoot a sub-millisecond (or non-integral-ms)
// window: the poll step is clamped to the deadline.
func TestBootWindowNotOvershot(t *testing.T) {
	for _, window := range []sim.Time{500 * sim.Microsecond, 1500 * sim.Microsecond} {
		c := New(Options{Nodes: 6, Switches: 4})
		_ = c.Boot(window) // too short to settle — the error is expected
		if c.Now() > window {
			t.Fatalf("Boot(%v) left the clock at %v — overshot its deadline", window, c.Now())
		}
	}
}
