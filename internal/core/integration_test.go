package core

import (
	"testing"

	"repro/internal/micropacket"
	"repro/internal/sim"
)

// TestSemaphoreHomeMigration: the semaphore home is the lowest rostered
// node; when it dies, the role moves and the replicated table keeps the
// semaphore values — locking continues to work.
func TestSemaphoreHomeMigration(t *testing.T) {
	c := New(Options{Nodes: 4, Switches: 2})
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	// Take and release a lock, and set a counter, while node 0 is home.
	done := false
	c.Nodes[3].Sem.Lock(9, func() {
		c.Nodes[3].Sem.Unlock(9)
		done = true
	})
	c.Nodes[2].Sem.Op(10, micropacket.OpWrite, 777, nil)
	c.Run(10 * sim.Millisecond)
	if !done {
		t.Fatal("pre-crash lock failed")
	}

	// Kill the home. The roster heals; home becomes node 1.
	c.CrashNode(0)
	c.Run(30 * sim.Millisecond)
	if c.RingSize() != 3 {
		t.Fatalf("ring = %d", c.RingSize())
	}

	// The counter survived at the new home's replica.
	if v := c.Nodes[1].Sem.Value(10); v != 777 {
		t.Fatalf("semaphore value lost in migration: %d", v)
	}
	// Locking still works against the new home.
	done = false
	c.Nodes[3].Sem.Lock(9, func() {
		done = true
		c.Nodes[3].Sem.Unlock(9)
	})
	c.Run(20 * sim.Millisecond)
	if !done {
		t.Fatal("post-migration lock failed")
	}
	// And the op executed at node 1, not node 0.
	var old uint64
	c.Nodes[2].Sem.Op(10, micropacket.OpFetchAdd, 1, func(o uint64) { old = o })
	c.Run(10 * sim.Millisecond)
	if old != 777 {
		t.Fatalf("fetchadd old = %d, want 777", old)
	}
}

// TestTotalBlackoutAndRecovery: every switch dies (no network at all);
// when the switches return, the ring re-forms and service resumes.
func TestTotalBlackoutAndRecovery(t *testing.T) {
	c := New(Options{Nodes: 4, Switches: 2})
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	c.FailSwitch(0)
	c.FailSwitch(1)
	c.Run(20 * sim.Millisecond)
	// Every node is isolated; no ring hop survives.
	for i, nd := range c.Nodes {
		if nd.Station.OnRing() {
			t.Fatalf("node %d still thinks it is on a ring during blackout", i)
		}
	}
	c.RestoreSwitch(0)
	c.RestoreSwitch(1)
	c.Run(30 * sim.Millisecond)
	if c.RingSize() != 4 {
		t.Fatalf("ring after blackout = %d", c.RingSize())
	}
	got := 0
	c.Services[2].Sub.Subscribe(1, func(micropacket.NodeID, []byte) { got++ })
	c.Services[0].Sub.Publish(1, []byte{1})
	c.Run(5 * sim.Millisecond)
	if got != 1 {
		t.Fatalf("post-blackout deliveries = %d", got)
	}
}

// TestRepeatedFailureCycles: alternating switch failures and repairs;
// the ring must be full and lossless after every cycle.
func TestRepeatedFailureCycles(t *testing.T) {
	c := New(Options{Nodes: 6, Switches: 4})
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 6; cycle++ {
		s := cycle % 4
		c.FailSwitch(s)
		c.Run(10 * sim.Millisecond)
		if c.RingSize() != 6 {
			t.Fatalf("cycle %d: ring = %d after failure", cycle, c.RingSize())
		}
		c.RestoreSwitch(s)
		c.Run(10 * sim.Millisecond)
		if c.RingSize() != 6 {
			t.Fatalf("cycle %d: ring = %d after repair", cycle, c.RingSize())
		}
	}
	if c.Drops() != 0 {
		t.Fatalf("congestion drops across cycles: %d", c.Drops())
	}
}

// TestLargeCluster: 32 nodes across 4 switches boot, converge and
// deliver end to end.
func TestLargeCluster(t *testing.T) {
	c := New(Options{Nodes: 32, Switches: 4})
	if err := c.Boot(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if c.RingSize() != 32 {
		t.Fatalf("ring = %d", c.RingSize())
	}
	got := 0
	c.Services[31].Sub.Subscribe(1, func(micropacket.NodeID, []byte) { got++ })
	c.Services[0].Sub.Publish(1, []byte{1})
	c.Run(10 * sim.Millisecond)
	if got != 1 {
		t.Fatalf("deliveries = %d", got)
	}
	if c.Drops() != 0 {
		t.Fatalf("drops = %d", c.Drops())
	}
}

// TestBroadcastStormOnFullStack: all nodes publish simultaneously to
// the same topic; zero congestion drops (slide 8 at service level).
func TestBroadcastStormOnFullStack(t *testing.T) {
	const n = 8
	c := New(Options{Nodes: n, Switches: 2})
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		c.Services[i].Sub.Subscribe(1, func(micropacket.NodeID, []byte) { counts[i]++ })
	}
	const per = 25
	for i := 0; i < n; i++ {
		svc := c.Services[i]
		c.K.After(0, func() {
			for j := 0; j < per; j++ {
				svc.Sub.Publish(1, []byte{byte(j)})
			}
		})
	}
	c.Run(50 * sim.Millisecond)
	for i, got := range counts {
		if got != n*per { // includes local loopback
			t.Fatalf("node %d deliveries = %d, want %d", i, got, n*per)
		}
	}
	if c.Drops() != 0 {
		t.Fatalf("drops = %d", c.Drops())
	}
}
