// Package core assembles the full AmpNet system — physical fabric,
// MAC stations, rostering agents, distributed kernels, network cache,
// semaphores, AmpDC services, AmpIP stacks and failover managers — into
// one bootable simulated cluster. It is the integration point the
// public ampnet package (repo root) re-exports, and what the examples,
// experiments and benchmarks drive.
package core

import (
	"fmt"

	"repro/internal/ampdc"
	"repro/internal/ampdk"
	"repro/internal/ampip"
	"repro/internal/enc8b10b"
	"repro/internal/failover"
	"repro/internal/frameacct"
	"repro/internal/phys"
	"repro/internal/shardnet"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Options configures a cluster. Zero values select the paper's
// defaults: the slide-14 quad-redundant 6×4 topology, 50 m fiber,
// version 1.0.
type Options struct {
	// Nodes and Switches shape the redundant fabric (slide 14:
	// 6 nodes × 4 switches is quad-redundant). Ignored when Fabric is
	// set (the topology carries its own sizes).
	Nodes    int
	Switches int
	// Fabric, if set, selects a declarative fabric topology — dual
	// counter-rotating rings, trunked switch meshes, sharded multi-ring
	// clusters (see phys.Uniform, phys.DualRing, phys.Mesh,
	// phys.Sharded). nil builds the paper's uniform segment from Nodes
	// and Switches.
	Fabric *phys.Topology
	// FiberMeters is the per-link fiber length.
	FiberMeters float64
	// Wire selects the MicroPacket wire-format version (internal/wire):
	// v1 is the byte-exact historical format (one address byte, ≤255
	// nodes), v2 widens node addresses to uint16 (≤65535 nodes). The
	// zero value is "auto" — the smallest version that fits the fabric
	// — so existing scenarios keep their bit-identical v1 reports and
	// big fabrics just work. An explicit v1 on a >255-node fabric is a
	// validation error naming the version.
	Wire wire.Version
	// Seed makes the whole run deterministic.
	Seed uint64
	// Regions adds application cache regions (id → bytes). Region 0 is
	// always the configuration database.
	Regions map[uint8]int
	// Version is the software version every node boots with; override
	// per node via VersionOf.
	Version ampdk.Version
	// VersionOf, if set, overrides Version per node id.
	VersionOf func(id int) ampdk.Version
	// HeartbeatInterval and HeartbeatMiss tune failure detection.
	HeartbeatInterval sim.Time
	HeartbeatMiss     int

	// Shards selects the parallel sharded engine (internal/parsim):
	// the fabric is partitioned by switch into this many shards, each
	// simulated on a private kernel, advancing in conservative
	// lookahead windows on its own OS thread. 0 or 1 run the serial
	// engine. A sharded run's Report is byte-identical to the serial
	// run's for the same seed; see DESIGN.md ("determinism under
	// parallelism") for the loads and options the parallel engine
	// supports.
	Shards int
	// Parallel is convenience sugar: when true and Shards is 0, one
	// shard per switch is used. The shard count — not the machine —
	// determines the partition, so results stay machine-independent.
	Parallel bool
	// Transport selects how the parallel engine's shards are hosted:
	// "" or "inproc" keeps them as goroutines of this process (the
	// default — bit-for-bit the engine Shards alone selects), "socket"
	// additionally runs every shard in its own worker process
	// (Options.ShardWorker) speaking the internal/wire control protocol
	// over loopback TCP, with the workers' replicas byte-checked
	// against the coordinator's at every barrier. Requires Shards > 1
	// and a fabric with a machine-readable shape (Options.Fabric built
	// by a phys constructor, or the default shapes).
	Transport string
	// ShardWorker is the worker argv for Transport "socket" — typically
	// the cmd/ampshard binary. The connect address and shard id travel
	// in the AMPSHARD_ADDR/AMPSHARD_SHARD environment variables.
	ShardWorker []string

	// JoinTimeout, KeepaliveInterval and SilenceTimeout retune the
	// per-node liveness cadences for fabric size (big fabrics drown in
	// the room-sized defaults). Zero keeps each component's default.
	// They are declarative — part of the cluster spec — so they cross
	// to socket-transport shard workers, unlike an OnCluster closure.
	JoinTimeout       sim.Time
	KeepaliveInterval sim.Time
	SilenceTimeout    sim.Time

	// DeepPHY runs every delivered frame through the real datapath —
	// MicroPacket wire codec plus 8b/10b line coding — so the whole
	// stack is exercised bit-for-bit. Slower, but the strongest
	// fidelity mode; see phys.Net.DeepPHY.
	DeepPHY bool
	// BER, with DeepPHY, injects symbol errors with the given
	// per-symbol probability. Corrupted frames are discarded by the
	// receive hardware (CRC/code violation) and repaired by the
	// higher layers.
	BER float64

	// Telemetry, if set, receives the run's wall-clock span timeline
	// (window grant → shard run → barrier exchange, plus socket-
	// transport round-trips) on the parallel engine; see
	// internal/telemetry. Attaching a recorder changes no simulation
	// behavior and no Report bytes — wall readings live only in the
	// recorder. Ignored on the serial engine. Not part of the cluster
	// spec: socket shard workers measure their own runs and ship
	// summaries in the MsgDone telemetry block.
	Telemetry *telemetry.Recorder
	// TelemetryInReport opts the deterministic telemetry plane
	// (per-shard window/event counters, heal-latency histograms — all
	// virtual-time quantities) into Report JSON as a "telemetry"
	// object. Off by default so existing report bytes are unchanged;
	// the plane still prints in Report.Summary() either way. Note that
	// the opted-in JSON names shard structure, so it only byte-matches
	// across runs with the same Shards value — unlike the base report,
	// which is byte-identical serial vs sharded.
	TelemetryInReport bool
}

func (o *Options) fill() {
	if o.Fabric != nil {
		// The topology is authoritative; mirror its sizes so reports
		// and plan validation see the real fabric shape.
		o.Nodes = o.Fabric.Nodes
		o.Switches = o.Fabric.Switches
		if o.FiberMeters == 0 {
			o.FiberMeters = o.Fabric.FiberM
		}
		if o.Wire == 0 {
			o.Wire = o.Fabric.Wire
		}
	}
	if o.Nodes == 0 {
		o.Nodes = 6
	}
	if o.Switches == 0 {
		o.Switches = 4
	}
	if o.FiberMeters == 0 {
		o.FiberMeters = 50
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Version == 0 {
		o.Version = 0x0100
	}
	if o.Parallel && o.Shards == 0 {
		o.Shards = o.Switches
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
}

// topology resolves the fabric to build: the declared Fabric, or the
// paper's uniform segment shaped by Nodes and Switches.
func (o *Options) topology() phys.Topology {
	var t phys.Topology
	if o.Fabric != nil {
		t = *o.Fabric
		if t.FiberM == 0 {
			t.FiberM = o.FiberMeters
		}
	} else {
		t = phys.Uniform(o.Nodes, o.Switches, o.FiberMeters)
	}
	if o.Wire != 0 {
		t.Wire = o.Wire
	}
	return t
}

// Cluster is a fully assembled AmpNet network.
type Cluster struct {
	Opts Options
	// K is the simulation kernel on the serial engine. Under
	// Options.Shards > 1 it is nil — each node runs on its shard's
	// kernel (Nodes[i].K), and driver-level time control goes through
	// the engine (Run, WaitUntil, Install). Nets lists every shard's
	// physical network (one entry on the serial engine); fabric-wide
	// counters are summed over it.
	K    *sim.Kernel
	Net  *phys.Net
	Nets []*phys.Net
	Phys *phys.Cluster
	// Assign is the shard assignment the parallel engine runs under
	// (nil on the serial engine) — observability for reports and tools.
	Assign *phys.Assignment

	// eng abstracts serial vs parallel time control; par is non-nil
	// only under the parallel engine.
	eng engine
	par *parsimEngine

	Nodes    []*ampdk.Node
	Services []*ampdc.Services
	Stacks   []*ampip.Stack
	Managers []*failover.Manager

	// OnEvent, if set, observes every plan event as it fires (see
	// Install). applied accumulates the fired events for reports;
	// pending holds installed events that have not fired yet (at
	// absolute times), so later Installs validate against them.
	OnEvent func(Event)
	applied []AppliedEvent
	pending []AppliedEvent
	// booted flips once Boot has been called; plan validation assumes
	// all nodes up until then.
	booted bool
	// loads lists every started load in start order; the index is the
	// cross-process identity actLoadQuiesce mirrors by.
	loads []*ActiveLoad
}

// New assembles a cluster. Nothing runs until Boot (or manual Node
// boots) and Run. With Options.Shards > 1 the cluster is built over
// the parallel sharded engine (see newParallel); the resulting Cluster
// drives and reports identically — call Close when done with a
// directly-driven parallel cluster to release its worker threads
// (Scenario.Run does so automatically).
func New(opts Options) *Cluster {
	opts.fill()
	if opts.Shards > 1 {
		return newParallel(opts)
	}
	if opts.transportName() == "socket" {
		panic("core: Options.Transport \"socket\" needs Options.Shards > 1 (the serial engine has no shards to distribute)")
	}
	c := &Cluster{Opts: opts}
	c.K = sim.NewKernel(opts.Seed)
	c.eng = serialEngine{c.K}
	c.Net = phys.NewNet(c.K)
	c.Nets = []*phys.Net{c.Net}
	c.Net.DeepPHY = opts.DeepPHY
	if opts.DeepPHY && opts.BER > 0 {
		rng := c.K.RNG().Split()
		ber := opts.BER
		c.Net.Corrupt = func(_ phys.Frame, syms []enc8b10b.Symbol) {
			for i := range syms {
				if rng.Float64() < ber {
					syms[i] ^= 1 << rng.Intn(10)
				}
			}
		}
	}
	ph, err := phys.BuildFabric(c.Net, opts.topology())
	if err != nil { // a malformed Topology is a programming error
		panic(err)
	}
	c.Phys = ph
	c.buildNodes(func(int) *sim.Kernel { return c.K })
	return c
}

// buildNodes assembles the per-node software stacks; kernelOf names
// the kernel each node's components schedule on (the single kernel on
// the serial engine, the node's shard kernel under parsim).
func (c *Cluster) buildNodes(kernelOf func(node int) *sim.Kernel) {
	opts := c.Opts
	for i := 0; i < opts.Nodes; i++ {
		ver := opts.Version
		if opts.VersionOf != nil {
			ver = opts.VersionOf(i)
		}
		nd := ampdk.NewNode(kernelOf(i), c.Phys, ampdk.Config{
			ID: i, Version: ver, Regions: opts.Regions,
			HeartbeatInterval: opts.HeartbeatInterval,
			HeartbeatMiss:     opts.HeartbeatMiss,
			JoinTimeout:       opts.JoinTimeout,
			FiberM:            opts.FiberMeters,
		})
		nd.Agent.Shard = c.Phys.ShardOfNode(i)
		if opts.KeepaliveInterval != 0 {
			nd.Agent.KeepaliveInterval = opts.KeepaliveInterval
		}
		if opts.SilenceTimeout != 0 {
			nd.Agent.SilenceTimeout = opts.SilenceTimeout
		}
		c.Nodes = append(c.Nodes, nd)
		c.Services = append(c.Services, ampdc.New(nd))
		c.Stacks = append(c.Stacks, ampip.NewStack(nd))
		c.Managers = append(c.Managers, failover.NewManager(nd))
	}
}

// Boot boots every node at the current virtual time and runs the
// simulation until all compatible nodes are online (or the deadline
// passes). It returns an error naming any node that failed to come
// online within the window.
func (c *Cluster) Boot(window sim.Time) error {
	c.booted = true
	for _, nd := range c.Nodes {
		nd := nd
		nd.K.After(0, func() { nd.Boot() })
	}
	// Distributed shard workers schedule the same boots at the same
	// parked instant, in the same node order.
	if err := c.mirror(shardnet.Action{Kind: actBootAll}); err != nil {
		return err
	}
	if window == 0 {
		window = 50 * sim.Millisecond
	}
	// The poll step is clamped to the deadline (stepUntil): a
	// sub-millisecond (or non-integral-ms) window must not run past it.
	if c.stepUntil(c.allSettled, c.Now()+window, sim.Millisecond) {
		return nil
	}
	// A transport failure mid-boot surfaces as itself, not as the
	// stuck-node symptom it leaves behind.
	if err := c.Err(); err != nil {
		return err
	}
	for _, nd := range c.Nodes {
		if nd.State != ampdk.StateOnline && nd.State != ampdk.StateRejected {
			return fmt.Errorf("core: node %d stuck in state %v after boot window", nd.Cfg.ID, nd.State)
		}
	}
	return nil
}

func (c *Cluster) allSettled() bool {
	for _, nd := range c.Nodes {
		if nd.State != ampdk.StateOnline && nd.State != ampdk.StateRejected {
			return false
		}
	}
	return true
}

// Run advances virtual time by d.
func (c *Cluster) Run(d sim.Time) { c.eng.RunUntil(c.eng.Now() + d) }

// Now returns the current virtual time.
func (c *Cluster) Now() sim.Time { return c.eng.Now() }

// Err returns the engine's sticky failure, if any: a shard panic, a
// worker-process death, or a replica divergence on the socket
// transport. Once set, the simulation refuses to advance; Scenario.Run
// surfaces it as the run's error. Always nil on the serial engine.
func (c *Cluster) Err() error {
	if c.par != nil {
		return c.par.e.Err()
	}
	return nil
}

// Distributed reports whether the cluster's shards also run in worker
// processes (Options.Transport "socket").
func (c *Cluster) Distributed() bool { return c.par != nil && c.par.e.Distributed() }

// Close releases engine resources (the parallel engine's worker
// threads). It is safe to call on any cluster, more than once, and is
// called automatically by Scenario.Run.
func (c *Cluster) Close() {
	if c.par != nil {
		c.par.e.Shutdown()
	}
}

// Roster returns the current logical ring as seen by the lowest online
// node (all live nodes converge to the same roster; crashed nodes hold
// stale ones).
func (c *Cluster) Roster() string {
	for _, nd := range c.Nodes {
		if nd.State != ampdk.StateOnline {
			continue
		}
		if r := nd.Agent.Roster(); r != nil {
			return r.String()
		}
	}
	return "<no roster>"
}

// RingSize returns the current logical ring size as seen by the lowest
// live node.
func (c *Cluster) RingSize() int {
	for _, nd := range c.Nodes {
		if nd.State == ampdk.StateOnline {
			if r := nd.Agent.Roster(); r != nil {
				return r.Size()
			}
		}
	}
	return 0
}

// FailSwitch takes a switch down; RestoreSwitch re-lights it.
func (c *Cluster) FailSwitch(s int)    { c.Phys.Switches[s].Fail() }
func (c *Cluster) RestoreSwitch(s int) { c.Phys.Switches[s].Restore() }

// FailLink cuts the fiber between node n and switch s.
func (c *Cluster) FailLink(n, s int)    { c.Phys.NodeLinks[n][s].Fail() }
func (c *Cluster) RestoreLink(n, s int) { c.Phys.NodeLinks[n][s].Restore() }

// FailTrunk cuts inter-switch trunk t; RestoreTrunk re-splices it.
func (c *Cluster) FailTrunk(t int)    { c.Phys.FailTrunk(t) }
func (c *Cluster) RestoreTrunk(t int) { c.Phys.RestoreTrunk(t) }

// FabricName names the built fabric shape ("uniform", "dualring", ...).
func (c *Cluster) FabricName() string {
	if c.Phys.Topo.Name == "" {
		return "uniform"
	}
	return c.Phys.Topo.Name
}

// WireVersion returns the wire-format version the fabric runs (the
// resolved version — never the zero "auto" value).
func (c *Cluster) WireVersion() wire.Version {
	return c.Phys.Topo.WireVersion()
}

// CrashNode kills a node (NIC and all); RebootNode brings it back
// through assimilation.
func (c *Cluster) CrashNode(n int)  { c.Nodes[n].Crash() }
func (c *Cluster) RebootNode(n int) { c.Nodes[n].Reboot() }

// Drops returns congestion drops on the fabric (must stay 0 under
// AmpNet MACs), summed over every shard's network.
func (c *Cluster) Drops() uint64 {
	var n uint64
	for _, net := range c.Nets {
		n += net.Drops.N
	}
	return n
}

// Lost returns frames destroyed by failures, summed over shards.
func (c *Cluster) Lost() uint64 {
	var n uint64
	for _, net := range c.Nets {
		n += net.Lost.N
	}
	return n
}

// Delivered returns frames handed to receivers, summed over shards.
func (c *Cluster) Delivered() uint64 {
	var n uint64
	for _, net := range c.Nets {
		n += net.Delivered.N
	}
	return n
}

// FrameAcct returns the fabric-wide frame-lifecycle ledger: the sum of
// every shard Net's Acct. Per-Net ledgers of a sharded fabric do not
// balance alone (a cross-shard frame launches on one Net and arrives on
// another); the sum satisfies the conservation invariant at any parked
// instant — see frameacct.Acct.Violations.
func (c *Cluster) FrameAcct() frameacct.Acct {
	var sum frameacct.Acct
	for _, net := range c.Nets {
		sum.Add(&net.Acct)
	}
	return sum
}
