package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/phys"
	"repro/internal/telemetry"
)

// TestTelemetryEquivalence is the telemetry plane's battery leg: for
// serial, in-process sharded and socket-transport runs of the same
// scenario, attaching a wall-clock recorder must change NOTHING in the
// Report bytes — telemetry-on and telemetry-off runs are byte-identical
// to each other and to the serial engine. This is the structural
// guarantee that lets the recorder stay on in production runs without
// weakening the determinism story the engine is built on.
func TestTelemetryEquivalence(t *testing.T) {
	topo := phys.Sharded(2, 4, 2, 50)
	const seed = 1

	serialRep, err := equivalenceScenario(&topo, seed, 1).Run()
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	serial := serialRep.JSON()
	if serialRep.Det != nil {
		t.Fatal("serial run grew a deterministic telemetry plane (must be parallel-only)")
	}

	for _, shards := range []int{2} {
		off, err := equivalenceScenario(&topo, seed, shards).Run()
		if err != nil {
			t.Fatalf("inproc shards=%d: %v", shards, err)
		}
		rec := telemetry.NewRecorder(telemetry.NewManualClock(1000, 7))
		onSc := equivalenceScenario(&topo, seed, shards)
		onSc.Opts.Telemetry = rec
		on, err := onSc.Run()
		if err != nil {
			t.Fatalf("inproc+telemetry shards=%d: %v", shards, err)
		}
		if rec.Len() == 0 {
			t.Fatalf("shards=%d: recorder attached but no spans recorded", shards)
		}
		if !bytes.Equal(off.JSON(), on.JSON()) {
			t.Fatalf("shards=%d: telemetry-on report diverged from telemetry-off", shards)
		}
		if !bytes.Equal(serial, on.JSON()) {
			t.Fatalf("shards=%d: telemetry-on report diverged from serial", shards)
		}
		if on.Det == nil || len(on.Det.Shards) != shards {
			t.Fatalf("shards=%d: deterministic plane missing or wrong width: %+v", shards, on.Det)
		}
		if !strings.Contains(on.Summary(), "engine:") {
			t.Fatalf("Summary does not surface the deterministic plane:\n%s", on.Summary())
		}
	}

	if !testing.Short() {
		rec := telemetry.NewRecorder(telemetry.NewManualClock(1000, 7))
		sockSc := equivalenceScenario(&topo, seed, 2)
		sockSc.Opts.Transport = "socket"
		sockSc.Opts.ShardWorker = socketWorker()
		sockSc.Opts.Telemetry = rec
		sockRep, err := sockSc.Run()
		if err != nil {
			t.Fatalf("socket+telemetry: %v", err)
		}
		if !bytes.Equal(serial, sockRep.JSON()) {
			t.Fatal("socket telemetry-on report diverged from serial")
		}
		if rec.Len() == 0 {
			t.Fatal("socket run recorded no spans")
		}
		// The socket transport adds round-trip and worker-side spans from
		// the MsgDone telemetry summaries.
		kinds := map[telemetry.SpanKind]bool{}
		for _, s := range rec.Spans() {
			kinds[s.Kind] = true
		}
		if !kinds[telemetry.SpanRTT] || !kinds[telemetry.SpanWorkerRun] {
			t.Fatalf("socket span kinds missing rtt/worker-run: %v", kinds)
		}
	}
}

// TestTelemetryInReportOptIn pins the JSON opt-in: by default the
// deterministic plane stays out of the Report bytes (Det is json:"-"),
// and only Options.TelemetryInReport copies it into a "telemetry"
// object — whose per-shard sections make the JSON shard-count-specific
// by design.
func TestTelemetryInReportOptIn(t *testing.T) {
	topo := phys.Sharded(2, 4, 2, 50)
	base, err := equivalenceScenario(&topo, 1, 2).Run()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(base.JSON(), []byte(`"telemetry"`)) {
		t.Fatal("telemetry section present without the opt-in")
	}

	sc := equivalenceScenario(&topo, 1, 2)
	sc.Opts.TelemetryInReport = true
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Telemetry *TelemetryReport `json:"telemetry"`
	}
	if err := json.Unmarshal(rep.JSON(), &decoded); err != nil {
		t.Fatal(err)
	}
	d := decoded.Telemetry
	if d == nil || d.Windows == 0 || len(d.Shards) != 2 {
		t.Fatalf("opted-in telemetry section malformed: %+v", d)
	}
	var events uint64
	for _, s := range d.Shards {
		events += s.Events
		if s.EvPerWindow.Count != s.Windows {
			t.Fatalf("shard %d: occupancy histogram count %d != windows %d",
				s.Shard, s.EvPerWindow.Count, s.Windows)
		}
	}
	if events == 0 {
		t.Fatal("per-shard event counts are all zero")
	}
	// The opted-in JSON must itself be reproducible for a fixed shard
	// count: the plane is virtual-time-only.
	sc2 := equivalenceScenario(&topo, 1, 2)
	sc2.Opts.TelemetryInReport = true
	rep2, err := sc2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rep.JSON(), rep2.JSON()) {
		t.Fatal("opted-in telemetry JSON is not reproducible across same-seed runs")
	}
}
