package core

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"repro/internal/ampip"
	"repro/internal/micropacket"
	"repro/internal/netcache"
	"repro/internal/shardnet"
	"repro/internal/sim"
)

// Load is a composable workload generator: a traffic pattern that can
// be started on any cluster and measured uniformly. The implementations
// — PubSubLoad, CacheChurn, CollectiveLoad, FileStream — replace the
// publish tickers, write loops and collective drivers that every
// consumer used to hand-roll. Start one with Cluster.StartLoad or list
// it in Scenario.Loads.
type Load interface {
	// kindName returns the report kind tag and instance name.
	kindName() (kind, name string)
	// check validates the load's node ids against the cluster, so a
	// misconfigured load fails up front instead of panicking
	// mid-simulation (mirroring Plan.Validate). On a distributed
	// cluster it also verifies the load can be serialized (remoteSpec).
	check(c *Cluster) error
	// begin installs the load and starts generating.
	begin(c *Cluster, a *ActiveLoad)
	// remoteSpec returns the load's plain-data JSON form for
	// socket-transport shard workers, or an error when the load holds
	// closures (or other state) that cannot cross a process boundary.
	remoteSpec() ([]byte, error)
}

// checkLoadNode validates one node id of a load.
func checkLoadNode(c *Cluster, kind, role string, id int) error {
	if id < 0 || id >= len(c.Nodes) {
		return fmt.Errorf("core: %s load: %s node %d out of range [0,%d)", kind, role, id, len(c.Nodes))
	}
	return nil
}

// NodeCount is a per-subscriber delivery line in a LoadReport.
type NodeCount struct {
	Node     int    `json:"node"`
	Received uint64 `json:"received"`
	Gaps     uint64 `json:"gaps"`
}

// LoadReport is the machine-readable outcome of one load. Which fields
// are populated depends on the load kind; zero fields are omitted from
// JSON.
type LoadReport struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Sent counts generated units (messages, cache writes, files).
	Sent uint64 `json:"sent,omitempty"`
	// Delivered counts received units, summed over subscribers.
	Delivered uint64 `json:"delivered,omitempty"`
	// Bytes counts payload bytes generated.
	Bytes uint64 `json:"bytes,omitempty"`
	// Errors counts generation-side failures (refused sends).
	Errors uint64 `json:"errors,omitempty"`
	// Gaps counts sequence discontinuities observed by subscribers.
	Gaps uint64 `json:"gaps,omitempty"`
	// MaxGapNS is the worst inter-arrival gap seen by any subscriber —
	// the service-outage measure of the paper's availability claims.
	MaxGapNS int64 `json:"max_gap_ns,omitempty"`
	// MaxLatencyNS is the worst publish-to-deliver (or file transfer)
	// latency.
	MaxLatencyNS int64 `json:"max_latency_ns,omitempty"`
	// Iters counts completed collective iterations.
	Iters uint64 `json:"iters,omitempty"`
	// Files counts completed file transfers; Corrupt the CRC failures.
	Files   uint64 `json:"files,omitempty"`
	Corrupt uint64 `json:"corrupt,omitempty"`
	// ExactReplicas/StaleReplicas summarize the end-of-run cache check
	// (CacheChurn): replicas matching the last committed write vs not.
	ExactReplicas int `json:"exact_replicas,omitempty"`
	StaleReplicas int `json:"stale_replicas,omitempty"`
	// PerNode breaks deliveries down by subscriber.
	PerNode []NodeCount `json:"per_node,omitempty"`
}

// ActiveLoad is a started load: poll Done, stop it, read its report.
type ActiveLoad struct {
	// c and idx locate the load on its cluster (start order); they are
	// how Quiesce mirrors itself to distributed shard workers.
	c   *Cluster
	idx int

	rep       LoadReport
	halted    bool
	done      bool
	finalized bool
	finalize  func()
}

// StartLoad installs l on the cluster and starts it at the current
// virtual time. It panics on a load addressing nonexistent nodes — a
// programming error, reported before the simulation runs (Scenario.Run
// surfaces the same condition as an error instead).
func (c *Cluster) StartLoad(l Load) *ActiveLoad {
	if err := l.check(c); err != nil {
		panic(err)
	}
	return c.startLoad(l)
}

// startLoad starts an already-validated load.
func (c *Cluster) startLoad(l Load) *ActiveLoad {
	a := &ActiveLoad{c: c, idx: len(c.loads)}
	c.loads = append(c.loads, a)
	a.rep.Kind, a.rep.Name = l.kindName()
	if a.rep.Name == "" {
		a.rep.Name = a.rep.Kind
	}
	l.begin(c, a)
	if c.Distributed() {
		// Mirror the start so shard workers install the identical load
		// at the same parked instant (check has already proven the load
		// serializes).
		kind, _ := l.kindName()
		js, err := l.remoteSpec()
		if err != nil {
			panic(err)
		}
		data, err := json.Marshal(loadSpec{Kind: kind, Spec: js})
		if err != nil {
			panic(err)
		}
		// A fence failure is sticky on the engine; the driver's next
		// advance (or Scenario.Run's error check) surfaces it.
		_ = c.mirror(shardnet.Action{Kind: actLoadStart, Data: data})
	}
	return a
}

// Done reports whether a finite load has finished generating (and, for
// FileStream and CollectiveLoad, completing) its work. Unbounded loads
// are done only after Quiesce/Stop.
func (a *ActiveLoad) Done() bool { return a.done }

// Quiesce stops generating new traffic; in-flight traffic still drains
// and is counted. Use it before a settle window so final deliveries
// land in the report.
func (a *ActiveLoad) Quiesce() {
	if a.halted {
		return
	}
	a.halted = true
	a.done = true
	if a.c != nil && a.c.Distributed() {
		var le [4]byte
		binary.LittleEndian.PutUint32(le[:], uint32(a.idx))
		_ = a.c.mirror(shardnet.Action{Kind: actLoadQuiesce, Data: le[:]})
	}
}

// Report finalizes (first call) and returns the load's report.
// End-of-run checks — e.g. CacheChurn's replica comparison — run at
// the virtual time of the first Report call.
func (a *ActiveLoad) Report() *LoadReport {
	if !a.finalized {
		a.finalized = true
		if a.finalize != nil {
			a.finalize()
		}
	}
	return &a.rep
}

// Stop quiesces the load and finalizes its report.
func (a *ActiveLoad) Stop() *LoadReport {
	a.Quiesce()
	return a.Report()
}

func (a *ActiveLoad) genDone() { a.done = true }

// --- PubSubLoad ---

// pubSubHeader prefixes every generated message: an 8-byte sequence
// number plus the 8-byte send time, so gap and latency accounting is
// built into the load rather than re-implemented per consumer.
const pubSubHeader = 16

// PubSubLoad publishes a paced message stream on a topic and measures
// delivery at every subscriber: counts, sequence gaps, worst
// inter-arrival gap (the outage measure) and worst publish-to-deliver
// latency.
type PubSubLoad struct {
	// Name labels the report (default "pubsub").
	Name string
	// Publisher is the publishing node; Topic the pub/sub topic.
	Publisher int
	Topic     uint8
	// Subscribers lists the consuming nodes; nil means every node
	// except the publisher.
	Subscribers []int
	// Every is the publish interval (default 100 µs). With Poisson it
	// is the mean of the exponential inter-arrival distribution.
	Every sim.Time
	// Poisson switches the generator from a fixed cadence to a Poisson
	// arrival process: inter-arrival times are drawn from a seeded
	// exponential distribution, giving deterministic but bursty,
	// non-uniform traffic. The stream is derived from the cluster seed
	// and the load's publisher/topic, so it is identical run to run —
	// and identical across serial and sharded engines, which is why it
	// does not touch the kernel RNG.
	Poisson bool
	// Count bounds the stream; 0 means publish until quiesced.
	Count int
	// Payload is the number of application bytes beyond the 16-byte
	// seq+timestamp header.
	Payload int
	// Fill, if set, fills the application payload for each message.
	// Closure fields do not cross to socket-transport shard workers;
	// a distributed run rejects loads that set them.
	Fill func(seq uint64, payload []byte) `json:"-"`
	// OnDeliver, if set, observes every delivery (after accounting).
	OnDeliver func(node int, seq uint64, payload []byte) `json:"-"`
}

func (l *PubSubLoad) kindName() (string, string) { return "pubsub", l.Name }

func (l *PubSubLoad) remoteSpec() ([]byte, error) {
	if l.Fill != nil || l.OnDeliver != nil {
		return nil, fmt.Errorf("core: pubsub load %q sets Fill/OnDeliver closures, which cannot cross to shard worker processes", l.Name)
	}
	return json.Marshal(l)
}

func (l *PubSubLoad) check(c *Cluster) error {
	if err := checkLoadNode(c, "pubsub", "publisher", l.Publisher); err != nil {
		return err
	}
	for _, s := range l.Subscribers {
		if err := checkLoadNode(c, "pubsub", "subscriber", s); err != nil {
			return err
		}
	}
	if c.Distributed() {
		if _, err := l.remoteSpec(); err != nil {
			return err
		}
	}
	return nil
}

func (l *PubSubLoad) begin(c *Cluster, a *ActiveLoad) {
	every := l.Every
	if every <= 0 {
		every = 100 * sim.Microsecond
	}
	subs := l.Subscribers
	if subs == nil {
		for i := range c.Nodes {
			if i != l.Publisher {
				subs = append(subs, i)
			}
		}
	}
	type subState struct {
		node                 int
		received, gaps       uint64
		lastSeq              uint64
		seen                 bool
		lastRx, maxGap, maxL sim.Time
	}
	states := make([]*subState, len(subs))
	for si, node := range subs {
		st := &subState{node: node}
		states[si] = st
		// The delivery callback runs on the subscriber's kernel (its
		// shard under the parallel engine) and touches only this
		// subscriber's state, so accounting is race-free and identical
		// on both engines.
		subK := c.Nodes[node].K
		c.Services[node].Sub.Subscribe(l.Topic, func(_ micropacket.NodeID, data []byte) {
			if len(data) < pubSubHeader {
				return
			}
			seq := binary.LittleEndian.Uint64(data)
			sentAt := sim.Time(binary.LittleEndian.Uint64(data[8:]))
			st.received++
			// Sequence numbers start at 1, so losses before the first
			// delivery count as a gap too.
			if seq != st.lastSeq+1 && (st.seen || seq != 1) {
				st.gaps++
			}
			st.seen = true
			st.lastSeq = seq
			now := subK.Now()
			if st.lastRx != 0 && now-st.lastRx > st.maxGap {
				st.maxGap = now - st.lastRx
			}
			st.lastRx = now
			if lat := now - sentAt; lat > st.maxL {
				st.maxL = lat
			}
			if l.OnDeliver != nil {
				l.OnDeliver(st.node, seq, data[pubSubHeader:])
			}
		})
	}
	seq := uint64(0)
	pubK := c.Nodes[l.Publisher].K
	var arrivals *sim.RNG
	if l.Poisson {
		// A private stream derived from the run seed and the load's
		// identity: deterministic, and independent of the engine and
		// of any other load's draws.
		arrivals = sim.NewRNG(c.Opts.Seed ^ 0x9e3779b97f4a7c15*uint64(l.Publisher+1) ^ uint64(l.Topic)<<56)
	}
	gen := func() bool {
		if a.halted {
			return false
		}
		if c.Nodes[l.Publisher].Online() {
			seq++
			buf := make([]byte, pubSubHeader+l.Payload)
			binary.LittleEndian.PutUint64(buf, seq)
			binary.LittleEndian.PutUint64(buf[8:], uint64(pubK.Now()))
			if l.Fill != nil {
				l.Fill(seq, buf[pubSubHeader:])
			}
			c.Services[l.Publisher].Sub.Publish(l.Topic, buf)
			a.rep.Sent++
			a.rep.Bytes += uint64(len(buf))
		}
		if l.Count > 0 && seq >= uint64(l.Count) {
			a.genDone()
			return false
		}
		return true
	}
	if l.Poisson {
		var tick func()
		tick = func() {
			if !gen() {
				return
			}
			pubK.After(arrivals.Exp(every), tick)
		}
		pubK.After(arrivals.Exp(every), tick)
	} else {
		everyOn(pubK, every, gen)
	}
	a.finalize = func() {
		for _, st := range states {
			a.rep.Delivered += st.received
			a.rep.Gaps += st.gaps
			if int64(st.maxGap) > a.rep.MaxGapNS {
				a.rep.MaxGapNS = int64(st.maxGap)
			}
			if int64(st.maxL) > a.rep.MaxLatencyNS {
				a.rep.MaxLatencyNS = int64(st.maxL)
			}
			a.rep.PerNode = append(a.rep.PerNode, NodeCount{Node: st.node, Received: st.received, Gaps: st.gaps})
		}
	}
}

// --- CacheChurn ---

// CacheChurn writes a replicated cache record at a steady rate and, at
// report time, audits every other online node's replica against the
// last committed write — the "no loss of data" check in load form.
type CacheChurn struct {
	// Name labels the report (default "cache-churn").
	Name string
	// Writer is the writing node.
	Writer int
	// Record is the cache record to churn (Region must exist).
	Record netcache.Record
	// Every is the write interval (default 50 µs).
	Every sim.Time
	// Count bounds the writes; 0 means write until quiesced.
	Count int
	// Fill, if set, fills each write's buffer; the default stamps the
	// little-endian sequence number into the buffer's first bytes.
	// Closure fields do not cross to socket-transport shard workers; a
	// distributed run rejects loads that set them.
	Fill func(seq uint64, buf []byte) `json:"-"`
}

func (l *CacheChurn) kindName() (string, string) { return "cache-churn", l.Name }

func (l *CacheChurn) remoteSpec() ([]byte, error) {
	if l.Fill != nil {
		return nil, fmt.Errorf("core: cache-churn load %q sets a Fill closure, which cannot cross to shard worker processes", l.Name)
	}
	return json.Marshal(l)
}

func (l *CacheChurn) check(c *Cluster) error {
	if err := checkLoadNode(c, "cache-churn", "writer", l.Writer); err != nil {
		return err
	}
	if c.Distributed() {
		if _, err := l.remoteSpec(); err != nil {
			return err
		}
	}
	return nil
}

func (l *CacheChurn) begin(c *Cluster, a *ActiveLoad) {
	every := l.Every
	if every <= 0 {
		every = 50 * sim.Microsecond
	}
	rec := l.Record
	var last []byte
	seq := uint64(0)
	everyOn(c.Nodes[l.Writer].K, every, func() bool {
		if a.halted {
			return false
		}
		if c.Nodes[l.Writer].Online() {
			seq++
			buf := make([]byte, rec.Size)
			if l.Fill != nil {
				l.Fill(seq, buf)
			} else {
				var le [8]byte
				binary.LittleEndian.PutUint64(le[:], seq)
				copy(buf, le[:])
			}
			if err := c.Nodes[l.Writer].CacheW.WriteRecord(rec, buf); err != nil {
				a.rep.Errors++
			} else {
				a.rep.Sent++
				a.rep.Bytes += uint64(len(buf))
				last = buf
			}
		}
		if l.Count > 0 && seq >= uint64(l.Count) {
			a.genDone()
			return false
		}
		return true
	})
	a.finalize = func() {
		if last == nil {
			return
		}
		for i, nd := range c.Nodes {
			if i == l.Writer || !nd.Online() {
				continue
			}
			if d, ok := nd.Cache.TryRead(rec); ok && bytes.Equal(d, last) {
				a.rep.ExactReplicas++
			} else {
				a.rep.StaleReplicas++
			}
		}
	}
}

// --- CollectiveLoad ---

// CollectiveLoad runs the inner loop of a data-parallel job over the
// cluster's AmpIP stacks: each iteration all-reduces a global sum and
// barriers to stay in step, exactly the slide-12 MPI-over-AmpNet story.
type CollectiveLoad struct {
	// Name labels the report (default "collective").
	Name string
	// Ranks lists the participating nodes; nil means all nodes.
	Ranks []int
	// Port is the collective port (default 7100).
	Port uint16
	// Iters bounds the job; 0 means iterate until quiesced.
	Iters int
	// OnIter, if set, observes each completed iteration's global sum.
	OnIter func(iter int, sum uint64) `json:"-"`
}

func (l *CollectiveLoad) kindName() (string, string) { return "collective", l.Name }

func (l *CollectiveLoad) remoteSpec() ([]byte, error) {
	// Unreachable in practice: check rejects the load on any parallel
	// engine, distributed or not.
	return nil, fmt.Errorf("core: collective load is not supported with Options.Shards > 1")
}

func (l *CollectiveLoad) check(c *Cluster) error {
	if c.par != nil {
		// The collective driver advances shared iteration state from
		// every rank's completion callback — cross-shard shared memory
		// the parallel engine cannot order deterministically.
		return fmt.Errorf("core: collective load is not supported with Options.Shards > 1 (its iteration driver spans shards)")
	}
	for _, r := range l.Ranks {
		if err := checkLoadNode(c, "collective", "rank", r); err != nil {
			return err
		}
	}
	return nil
}

func (l *CollectiveLoad) begin(c *Cluster, a *ActiveLoad) {
	ranks := l.Ranks
	if ranks == nil {
		for i := range c.Nodes {
			ranks = append(ranks, i)
		}
	}
	port := l.Port
	if port == 0 {
		port = 7100
	}
	comms := make([]*ampip.Comm, len(ranks))
	for i, r := range ranks {
		comms[i] = ampip.NewComm(c.Stacks[r], ranks, port)
	}
	// Each rank's local state evolves as a function of the global sum,
	// so divergence between ranks would be visible immediately.
	local := make([]uint64, len(ranks))
	for i := range local {
		local[i] = uint64(i + 1)
	}
	var iterate func(iter int)
	iterate = func(iter int) {
		if a.halted || (l.Iters > 0 && iter >= l.Iters) {
			a.genDone()
			return
		}
		pending := len(comms)
		var sum uint64
		for r := range comms {
			r := r
			comms[r].AllReduceSum(local[r], func(total uint64) {
				sum = total
				local[r] += total % 97
				pending--
				if pending > 0 {
					return
				}
				bar := len(comms)
				for q := range comms {
					comms[q].Barrier(func() {
						bar--
						if bar == 0 {
							a.rep.Iters++
							if l.OnIter != nil {
								l.OnIter(iter, sum)
							}
							iterate(iter + 1)
						}
					})
				}
			})
		}
	}
	c.K.After(0, func() { iterate(0) })
}

// --- FileStream ---

// FileStream pushes one or more large files over an AmpFiles DMA
// channel and reports completion, integrity and transfer time — the
// slide-7 bulk-vs-messages workload.
type FileStream struct {
	// Name labels the report (default "filestream").
	Name string
	// From/To are the sending and receiving nodes.
	From, To int
	// FileName names the transfer (default "filestream.bin"); repeated
	// files get a ".N" suffix. Concurrent FileStreams between the same
	// node pair must use distinct names — same-name transfers are
	// indistinguishable on the wire.
	FileName string
	// Size is the file size in bytes (default 1 MiB).
	Size int
	// Repeat is the number of files to send back to back (default 1).
	Repeat int
	// Gap is the pause between files.
	Gap sim.Time
	// OnFile, if set, observes each completed transfer.
	OnFile func(i int, ok bool, took sim.Time) `json:"-"`
}

func (l *FileStream) kindName() (string, string) { return "filestream", l.Name }

func (l *FileStream) remoteSpec() ([]byte, error) {
	// Unreachable in practice: check rejects the load on any parallel
	// engine, distributed or not.
	return nil, fmt.Errorf("core: filestream load is not supported with Options.Shards > 1")
}

func (l *FileStream) check(c *Cluster) error {
	if c.par != nil {
		// Each completed file schedules the next send from the
		// receiver's delivery callback — a cross-shard hop the
		// parallel engine cannot replay at serial fidelity.
		return fmt.Errorf("core: filestream load is not supported with Options.Shards > 1 (completion drives the sender from the receiver's shard)")
	}
	if err := checkLoadNode(c, "filestream", "sender", l.From); err != nil {
		return err
	}
	return checkLoadNode(c, "filestream", "receiver", l.To)
}

func (l *FileStream) begin(c *Cluster, a *ActiveLoad) {
	size := l.Size
	if size <= 0 {
		size = 1 << 20
	}
	repeat := l.Repeat
	if repeat <= 0 {
		repeat = 1
	}
	base := l.FileName
	if base == "" {
		base = "filestream.bin"
	}
	file := make([]byte, size)
	for i := range file {
		file[i] = byte(i * 2654435761)
	}
	nameOf := func(i int) string {
		if repeat == 1 {
			return base
		}
		return fmt.Sprintf("%s.%d", base, i)
	}

	var start sim.Time
	idx := 0
	inFlight := false
	var send func()
	send = func() {
		if a.halted || idx >= repeat {
			a.genDone()
			return
		}
		if !c.Nodes[l.From].Online() {
			a.rep.Errors++
			a.genDone()
			return
		}
		start = c.K.Now()
		if err := c.Services[l.From].Files.Send(micropacket.NodeID(l.To), nameOf(idx), file, nil); err != nil {
			a.rep.Errors++
			a.genDone()
			return
		}
		inFlight = true
		a.rep.Sent++
	}
	prev := c.Services[l.To].Files.OnFile
	c.Services[l.To].Files.OnFile = func(src micropacket.NodeID, name string, data []byte, ok bool) {
		// Match only this load's own outstanding transfer, so a
		// completed load never swallows deliveries of a later
		// same-name stream.
		if inFlight && int(src) == l.From && name == nameOf(idx) {
			inFlight = false
			took := c.K.Now() - start
			a.rep.Files++
			if !ok {
				a.rep.Corrupt++
			}
			a.rep.Bytes += uint64(len(data))
			if int64(took) > a.rep.MaxLatencyNS {
				a.rep.MaxLatencyNS = int64(took)
			}
			if l.OnFile != nil {
				l.OnFile(idx, ok, took)
			}
			idx++
			if idx >= repeat {
				a.genDone()
			} else {
				c.K.After(l.Gap, send)
			}
		}
		if prev != nil {
			prev(src, name, data, ok)
		}
	}
	c.K.After(0, send)
}
