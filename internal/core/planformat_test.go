package core

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// randomPlan generates a structurally valid plan (ids in range for an
// 8-node, 4-switch, 2-trunk fabric; non-negative offsets). It does not
// aim for fault/repair coherence — FormatPlan and ParsePlan are a pure
// syntax pair, exercised independently of Validate.
func randomPlan(rng *rand.Rand, n int) Plan {
	p := make(Plan, 0, n)
	for i := 0; i < n; i++ {
		// Offsets span sub-ns to seconds, including 0 and values that
		// format with every duration unit.
		at := sim.Time(rng.Int63n(int64(2 * sim.Second)))
		switch rng.Intn(5) {
		case 0:
			at = 0
		case 1:
			at = sim.Time(rng.Int63n(1000)) // ns scale
		case 2:
			at = sim.Time(rng.Int63n(1000)) * sim.Microsecond
		case 3:
			at = sim.Time(rng.Int63n(100)) * sim.Millisecond
		}
		node, sw, trunk := rng.Intn(8), rng.Intn(4), rng.Intn(2)
		switch rng.Intn(8) {
		case 0:
			p = append(p, CrashNode(at, node))
		case 1:
			p = append(p, RebootNode(at, node))
		case 2:
			p = append(p, FailSwitch(at, sw))
		case 3:
			p = append(p, RestoreSwitch(at, sw))
		case 4:
			p = append(p, FailLink(at, node, sw))
		case 5:
			p = append(p, RestoreLink(at, node, sw))
		case 6:
			p = append(p, FailTrunk(at, trunk))
		case 7:
			p = append(p, RestoreTrunk(at, trunk))
		}
	}
	return p
}

// TestFormatPlanRoundTrip is the property test: for randomized valid
// plans, ParsePlan(FormatPlan(p)) == p, event for event, offset for
// offset.
func TestFormatPlanRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomPlan(rng, 1+rng.Intn(12))
		s := FormatPlan(p)
		got, err := ParsePlan(s)
		if err != nil {
			t.Fatalf("seed %d: ParsePlan(%q) failed: %v", seed, s, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("seed %d: round trip mismatch:\n  plan   %v\n  script %q\n  reparse %v", seed, p, s, got)
		}
	}
}

// TestFormatPlanEmpty: an empty plan formats to "" and parses back to
// an empty plan (ParsePlan returns nil for no entries).
func TestFormatPlanEmpty(t *testing.T) {
	if s := FormatPlan(nil); s != "" {
		t.Fatalf("FormatPlan(nil) = %q, want empty", s)
	}
	if p, err := ParsePlan(""); err != nil || len(p) != 0 {
		t.Fatalf("ParsePlan(\"\") = %v, %v; want empty, nil", p, err)
	}
}

// TestFormatPlanSpelling pins the script spelling so goldens and CI
// plans stay readable.
func TestFormatPlanSpelling(t *testing.T) {
	p := Plan{
		FailSwitch(10*sim.Millisecond, 0),
		CrashNode(5*sim.Millisecond, 3),
		FailLink(sim.Millisecond, 3, 0),
		FailTrunk(2*sim.Millisecond, 1),
		RestoreTrunk(12*sim.Millisecond, 1),
	}
	want := "10ms fail-switch 0; 5ms crash-node 3; 1ms fail-link 3 0; 2ms fail-trunk 1; 12ms restore-trunk 1"
	if got := FormatPlan(p); got != want {
		t.Fatalf("FormatPlan = %q, want %q", got, want)
	}
}

// FuzzParsePlan fuzzes the plan-script parser. The seed corpus covers
// every error path (bad offset, missing fields, unknown op, bad id,
// wrong arity) plus valid scripts. The invariant under fuzzing: the
// parser never panics, and any script it accepts must round-trip
// through FormatPlan to the identical plan.
func FuzzParsePlan(f *testing.F) {
	for _, seed := range []string{
		"",
		";;;\n\n;",
		"10ms fail-switch 0; 20ms restore-switch 0",
		"5ms crash-node 3; 25ms reboot-node 3",
		"1ms fail-link 3 0; 2ms restore-link 3 0",
		"2ms fail-trunk 0; 12ms restore-trunk 1",
		"10ms",                      // too few fields
		"banana fail-switch 0",      // bad offset
		"10ms explode-node 1",       // unknown op
		"10ms fail-switch zero",     // bad id
		"10ms crash-node 1 2",       // one-id op given two ids
		"10ms fail-link 3",          // two-id op given one id
		"-5ms crash-node 1",         // negative offset (parses; Validate rejects)
		"10ms fail-switch 99999999", // out of range (parses; Validate rejects)
		"1h2m3s4ms5us6ns fail-trunk 0",
		"10ms  fail-switch \t 0 \n 20ms restore-switch 0",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePlan(s)
		if err != nil {
			if !strings.Contains(err.Error(), "plan entry") {
				t.Fatalf("ParsePlan(%q) error without context: %v", s, err)
			}
			return
		}
		formatted := FormatPlan(p)
		again, err := ParsePlan(formatted)
		if err != nil {
			t.Fatalf("accepted %q but re-parse of %q failed: %v", s, formatted, err)
		}
		if len(p) == 0 {
			if len(again) != 0 {
				t.Fatalf("empty plan reparsed as %v", again)
			}
			return
		}
		if !reflect.DeepEqual(again, p) {
			t.Fatalf("round trip mismatch for %q:\n  first  %v\n  second %v", s, p, again)
		}
	})
}
