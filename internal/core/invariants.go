package core

import (
	"fmt"
	"sort"

	"repro/internal/ampdk"
	"repro/internal/detmap"
	"repro/internal/rostering"
)

// This file defines what "healed" means on an arbitrary fabric, and the
// roster invariants the property battery asserts after every heal
// window. A fabric with trunks can partition (a trunk cut splits a
// sharded cluster into independent rings) and re-merge, so both the
// Healed predicate and the invariants are stated per live partition,
// not per cluster: a cleanly partitioned fabric whose sides each run a
// settled ring is healed.

// liveComponents partitions the reachable nodes by live-fabric
// connectivity: two nodes share a component when a path of live
// node-switch links, live switches and live trunks joins them. A node
// is reachable when it is not crashed/rejected and has at least one
// live link to a live switch. Components are returned with their node
// ids ascending, ordered by lowest id.
func (c *Cluster) liveComponents() [][]int {
	nodes, switches := len(c.Nodes), len(c.Phys.Switches)
	// Union-find over switch vertices [0,switches) and node vertices
	// [switches, switches+nodes).
	parent := make([]int, switches+nodes)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	swLive := make([]bool, switches)
	for s, sw := range c.Phys.Switches {
		swLive[s] = !sw.Failed()
	}
	for _, t := range c.Phys.Trunks {
		if t.Link.Up() && swLive[t.A] && swLive[t.B] {
			union(t.A, t.B)
		}
	}
	reachable := make([]bool, nodes)
	for i, nd := range c.Nodes {
		if nd.State == ampdk.StateOffline || nd.State == ampdk.StateRejected {
			continue
		}
		for s := 0; s < switches; s++ {
			l := c.Phys.NodeLinks[i][s]
			if l != nil && l.Up() && swLive[s] {
				reachable[i] = true
				union(switches+i, s)
			}
		}
	}
	byRoot := map[int][]int{}
	for i := range c.Nodes {
		if reachable[i] {
			root := find(switches + i)
			byRoot[root] = append(byRoot[root], i)
		}
	}
	comps := make([][]int, 0, len(byRoot))
	for _, root := range detmap.SortedKeys(byRoot) {
		members := byRoot[root]
		sort.Ints(members)
		comps = append(comps, members)
	}
	sort.Slice(comps, func(a, b int) bool { return comps[a][0] < comps[b][0] })
	return comps
}

// Healed reports whether the cluster is currently settled: at least one
// node is reachable, and in every live partition all reachable nodes
// are online, agree on one roster containing exactly the partition's
// nodes, and every ring arc crosses live hardware.
func (c *Cluster) Healed() bool {
	comps := c.liveComponents()
	if len(comps) == 0 {
		return false
	}
	for _, comp := range comps {
		if c.componentViolation(comp) != "" {
			return false
		}
	}
	return true
}

// InvariantViolations checks the roster invariants the fabric battery
// asserts after every heal window and returns a description of each
// violation (empty means the cluster is healed):
//
//   - every reachable node is online with an adopted roster
//   - a partition's nodes agree on one roster
//   - the roster has no duplicate node ids, and only partition members
//   - the adopted roster equals the ideal roster — what
//     BuildRosterFabric computes from the partition's true link state
//     and trunk view. On a fabric whose live switches are
//     trunk-connected (every uniform segment with a live switch
//     qualifies) the ideal ring contains every live node, so this
//     subsumes "ring size == live nodes"; on damaged sparse fabrics it
//     pins the adopted ring to the largest ring the algorithm can
//     build, which may legitimately orphan bridge-isolated nodes
//   - every arc crosses live hardware (links, switches and trunks)
//
// In addition to the roster invariants, the fabric-wide frame ledger
// must conserve: every frame ever offered to a port is wire-delivered,
// counted as a typed loss, or still resident in a FIFO / fiber /
// device latency stage (see internal/frameacct). An imbalance means a
// frame died in an uncounted sink.
func (c *Cluster) InvariantViolations() []string {
	var out []string
	acct := c.FrameAcct()
	out = append(out, acct.Violations()...)
	comps := c.liveComponents()
	if len(comps) == 0 {
		return append(out, "no reachable nodes in any partition")
	}
	for _, comp := range comps {
		if v := c.componentViolation(comp); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// liveMask returns node i's true live-switch mask: live links to live
// switches.
func (c *Cluster) liveMask(i int) rostering.LinkState {
	var m rostering.LinkState
	for s := range c.Phys.Switches {
		l := c.Phys.NodeLinks[i][s]
		if l != nil && l.Up() && !c.Phys.Switches[s].Failed() {
			m |= 1 << s
		}
	}
	return m
}

// idealRoster computes the roster the partition's nodes must converge
// to: BuildRosterFabric over the true link state of the partition's
// members and the current trunk view (epoch is irrelevant — roster
// comparison ignores it).
func (c *Cluster) idealRoster(comp []int) *rostering.Roster {
	lsdb := make(map[int]rostering.LinkState, len(comp))
	for _, i := range comp {
		lsdb[i] = c.liveMask(i)
	}
	return rostering.BuildRosterFabric(0, lsdb, c.Phys.View())
}

// componentViolation checks one live partition and returns a violation
// description, or "" when the partition is settled.
func (c *Cluster) componentViolation(comp []int) string {
	var agreed *rostering.Roster
	agreedStr := ""
	for _, i := range comp {
		nd := c.Nodes[i]
		if nd.State != ampdk.StateOnline {
			return fmt.Sprintf("partition %v: node %d still %v", comp, i, nd.State)
		}
		r := nd.Agent.Roster()
		if r == nil {
			return fmt.Sprintf("partition %v: node %d has no roster", comp, i)
		}
		if agreed == nil {
			agreed, agreedStr = r, r.String()
		} else if s := r.String(); s != agreedStr {
			return fmt.Sprintf("partition %v: node %d roster %q disagrees with %q", comp, i, s, agreedStr)
		}
	}
	if ideal := c.idealRoster(comp); !agreed.Equal(ideal) {
		return fmt.Sprintf("partition %v: adopted roster %q != ideal roster %q", comp, agreedStr, ideal)
	}
	seen := map[int]bool{}
	inComp := map[int]bool{}
	for _, i := range comp {
		inComp[i] = true
	}
	for _, n := range agreed.Nodes {
		if seen[n] {
			return fmt.Sprintf("partition %v: duplicate node %d on roster %s", comp, n, agreedStr)
		}
		seen[n] = true
		if !inComp[n] {
			return fmt.Sprintf("partition %v: foreign node %d on roster %s", comp, n, agreedStr)
		}
	}
	// A stale roster can still "agree" right after a fault; the ring is
	// healed only when every arc it routes traverses live hardware.
	if agreed.Size() >= 2 {
		for i, n := range agreed.Nodes {
			next := agreed.Nodes[(i+1)%len(agreed.Nodes)]
			path := []int{agreed.Via[i]}
			if i < len(agreed.Paths) && len(agreed.Paths[i]) > 0 {
				path = agreed.Paths[i]
			}
			first, last := path[0], path[len(path)-1]
			if c.Phys.Switches[first].Failed() ||
				c.Phys.NodeLinks[n][first] == nil || !c.Phys.NodeLinks[n][first].Up() {
				return fmt.Sprintf("partition %v: arc %d-s%d dark at source (roster %s)", comp, n, first, agreedStr)
			}
			if c.Phys.Switches[last].Failed() ||
				c.Phys.NodeLinks[next][last] == nil || !c.Phys.NodeLinks[next][last].Up() {
				return fmt.Sprintf("partition %v: arc s%d-%d dark at destination (roster %s)", comp, last, next, agreedStr)
			}
			for j := 0; j+1 < len(path); j++ {
				if c.Phys.Switches[path[j+1]].Failed() || c.Phys.TrunkBetween(path[j], path[j+1]) == nil {
					return fmt.Sprintf("partition %v: arc %d->%d trunk s%d-s%d dark (roster %s)",
						comp, n, next, path[j], path[j+1], agreedStr)
				}
			}
		}
	}
	return ""
}
