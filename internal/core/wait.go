package core

import (
	"fmt"

	"repro/internal/sim"
)

// waitStep bounds how far the Wait* helpers advance the clock between
// predicate probes. Predicates are host-side observations, so probing
// every 100 µs of virtual time keeps waits responsive without
// disturbing event order (the kernel executes the same events either
// way).
const waitStep = 100 * sim.Microsecond

// stepUntil advances virtual time in deadline-clamped steps until pred
// holds, probing before the first step and after each one. It is the
// shared engine of Boot's settle poll and the Wait* helpers.
func (c *Cluster) stepUntil(pred func() bool, deadline, step sim.Time) bool {
	// Realize the current instant before the first probe: zero-offset
	// plan events and After(0) work are pending at Now, and the
	// predicate must not observe the world as it was before they fire.
	c.eng.RunUntil(c.eng.Now())
	if pred() {
		return true
	}
	for c.eng.Now() < deadline {
		// A failed engine refuses to advance; without this check the
		// loop would spin on a clock that never moves.
		if c.Err() != nil {
			return false
		}
		next := c.eng.Now() + step
		if next > deadline {
			next = deadline
		}
		c.eng.RunUntil(next)
		if pred() {
			return true
		}
	}
	return false
}

// WaitUntil advances virtual time until pred returns true, probing at
// waitStep granularity, or fails after the window elapses. It replaces
// the blind Run(d)-and-hope and hand-rolled poll loops: the simulation
// stops exactly when the condition holds, so follow-on measurements
// are taken at the condition's onset, not a window boundary.
func (c *Cluster) WaitUntil(pred func() bool, within sim.Time) error {
	if c.stepUntil(pred, c.Now()+within, waitStep) {
		return nil
	}
	if err := c.Err(); err != nil {
		return err
	}
	return fmt.Errorf("core: condition still false after %v (t=%v)", within, c.Now())
}

// WaitRingSize waits until the logical ring reaches exactly n nodes.
func (c *Cluster) WaitRingSize(n int, within sim.Time) error {
	if err := c.WaitUntil(func() bool { return c.RingSize() == n }, within); err != nil {
		return fmt.Errorf("core: ring size %d not reached within %v (size=%d)", n, within, c.RingSize())
	}
	return nil
}

// WaitHealed waits until the cluster has settled after a fault or
// repair: in every live partition of the fabric, every reachable node
// is fully online (none mid-assimilation), all of them agree on the
// same roster, and that roster contains exactly the partition's nodes.
// See Healed (internal/core/invariants.go) for the exact predicate.
func (c *Cluster) WaitHealed(within sim.Time) error {
	if err := c.WaitUntil(c.Healed, within); err != nil {
		return fmt.Errorf("core: cluster not healed within %v (ring=%s)", within, c.Roster())
	}
	return nil
}

// Every runs fn now and then every d of virtual time until fn returns
// false. It is the canonical way to drive periodic application work
// (checkpoints, pollers) without hand-rolling self-rescheduling
// closures.
func (c *Cluster) Every(d sim.Time, fn func() bool) {
	if c.K == nil {
		panic("core: Every has no node affinity; under Options.Shards > 1 drive periodic work from a node's kernel (Nodes[i].K) or a Load")
	}
	everyOn(c.K, d, fn)
}

// everyOn is Every pinned to one kernel — the node-affine form the
// loads use, so a generator runs on its node's shard under the
// parallel engine (and on the single kernel, identically, on the
// serial one).
func everyOn(k *sim.Kernel, d sim.Time, fn func() bool) {
	if d <= 0 {
		panic("core: Every with non-positive interval")
	}
	var tick func()
	tick = func() {
		if !fn() {
			return
		}
		k.After(d, tick)
	}
	k.After(0, tick)
}
