package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"repro/internal/ampdk"
	"repro/internal/phys"
	"repro/internal/shardnet"
	"repro/internal/sim"
	"repro/internal/wire"
)

// This file is the cross-process half of the socket transport's
// mirrored-replica scheme (Options.Transport "socket"): the serialized
// cluster spec a shard worker rebuilds its replica from, and the
// serialized coordinator actions it replays at fences. Everything here
// must be reconstructible from plain data — closures cannot cross a
// process boundary, which is why hand-rolled topologies (no Shape),
// VersionOf and load callbacks are rejected up front.

// shardSpec is the JSON cluster spec carried in MsgSpec. It is the
// plain-data projection of Options: the fabric by its machine-readable
// Shape (phys.FabricByName reconstructs it), plus every scalar knob a
// replica build needs. The handshake's replica fingerprint — a hash of
// the built fabric, the seed, the lookahead and these exact spec bytes
// — catches any reconstruction drift.
type shardSpec struct {
	Shape    string  `json:"shape"`
	Nodes    int     `json:"nodes"`
	Switches int     `json:"switches"`
	FiberM   float64 `json:"fiber_m"`
	// TrunkFiberM carries per-trunk fiber overrides (E15's 200 m
	// inter-shard trunks); empty means every trunk inherits FiberM.
	TrunkFiberM []float64 `json:"trunk_fiber_m,omitempty"`
	Wire        uint8     `json:"wire,omitempty"`
	Seed        uint64    `json:"seed"`
	Shards      int       `json:"shards"`

	Regions           map[uint8]int `json:"regions,omitempty"`
	Version           uint16        `json:"version"`
	HeartbeatInterval sim.Time      `json:"heartbeat_interval,omitempty"`
	HeartbeatMiss     int           `json:"heartbeat_miss,omitempty"`
	JoinTimeout       sim.Time      `json:"join_timeout,omitempty"`
	KeepaliveInterval sim.Time      `json:"keepalive_interval,omitempty"`
	SilenceTimeout    sim.Time      `json:"silence_timeout,omitempty"`
	DeepPHY           bool          `json:"deep_phy,omitempty"`
}

// transportName resolves Options.Transport ("" selects the in-process
// default).
func (o *Options) transportName() string {
	if o.Transport == "" {
		return "inproc"
	}
	return o.Transport
}

// socketProblem reports why the options cannot run on the socket
// transport, or nil. The receiver must be filled.
func (o *Options) socketProblem() error {
	if len(o.ShardWorker) == 0 {
		return fmt.Errorf("core: Options.Transport \"socket\" needs Options.ShardWorker (the worker argv, e.g. the cmd/ampshard binary)")
	}
	if o.VersionOf != nil {
		return fmt.Errorf("core: Options.VersionOf is a closure and cannot cross to shard worker processes; use Options.Version")
	}
	topo := o.topology()
	if topo.Shape == "" {
		return fmt.Errorf("core: fabric %q has no machine-readable shape; hand-rolled topologies cannot be rebuilt by shard worker processes", topo.Name)
	}
	return nil
}

// buildSocketSpec serializes filled options into the MsgSpec payload.
func buildSocketSpec(o Options) ([]byte, error) {
	if err := o.socketProblem(); err != nil {
		return nil, err
	}
	topo := o.topology()
	s := shardSpec{
		Shape:    topo.Shape,
		Nodes:    topo.Nodes,
		Switches: topo.Switches,
		FiberM:   topo.FiberM,
		Wire:     uint8(topo.Wire),
		Seed:     o.Seed,
		Shards:   o.Shards,

		Regions:           o.Regions,
		Version:           uint16(o.Version),
		HeartbeatInterval: o.HeartbeatInterval,
		HeartbeatMiss:     o.HeartbeatMiss,
		JoinTimeout:       o.JoinTimeout,
		KeepaliveInterval: o.KeepaliveInterval,
		SilenceTimeout:    o.SilenceTimeout,
		DeepPHY:           o.DeepPHY,
	}
	for _, tr := range topo.Trunks {
		s.TrunkFiberM = append(s.TrunkFiberM, tr.FiberM)
	}
	return json.Marshal(s)
}

// specOptions rebuilds the Options a shard worker constructs its
// replica from. The result always selects the in-process transport:
// the worker's replica is a complete local cluster.
func specOptions(spec []byte) (Options, error) {
	var s shardSpec
	if err := json.Unmarshal(spec, &s); err != nil {
		return Options{}, fmt.Errorf("core: cluster spec: %w", err)
	}
	topo, err := phys.FabricByName(s.Shape, s.Nodes, s.Switches, s.FiberM)
	if err != nil {
		return Options{}, fmt.Errorf("core: cluster spec: %w", err)
	}
	if len(s.TrunkFiberM) > 0 {
		if len(s.TrunkFiberM) != len(topo.Trunks) {
			return Options{}, fmt.Errorf("core: cluster spec carries %d trunk fibers, fabric %q has %d trunks",
				len(s.TrunkFiberM), s.Shape, len(topo.Trunks))
		}
		for i, m := range s.TrunkFiberM {
			topo.Trunks[i].FiberM = m
		}
	}
	if s.Wire != 0 {
		topo.Wire = wire.Version(s.Wire)
	}
	return Options{
		Fabric:      &topo,
		FiberMeters: s.FiberM,
		Wire:        wire.Version(s.Wire),
		Seed:        s.Seed,
		Shards:      s.Shards,

		Regions:           s.Regions,
		Version:           ampdk.Version(s.Version),
		HeartbeatInterval: s.HeartbeatInterval,
		HeartbeatMiss:     s.HeartbeatMiss,
		JoinTimeout:       s.JoinTimeout,
		KeepaliveInterval: s.KeepaliveInterval,
		SilenceTimeout:    s.SilenceTimeout,
		DeepPHY:           s.DeepPHY,
	}, nil
}

// Serialized coordinator-action kinds (shardnet.Action.Kind). These are
// part of the shard-worker protocol: a worker replays each one against
// its replica at the fence the coordinator applied it, so the vocabulary
// can only grow — changing a kind's meaning or payload needs a
// shardnet.ProtoVersion bump.
const (
	// actPlanEvent applies one plan Event (JSON-encoded).
	actPlanEvent uint8 = 1
	// actBootAll schedules Boot on every node at the parked instant
	// (empty payload).
	actBootAll uint8 = 2
	// actLoadStart starts a load from its loadSpec envelope.
	actLoadStart uint8 = 3
	// actLoadQuiesce quiesces the cluster's n-th started load (u32
	// little-endian index).
	actLoadQuiesce uint8 = 4
)

// loadSpec is the actLoadStart payload: the load's kind tag plus its
// plain-data JSON form.
type loadSpec struct {
	Kind string          `json:"kind"`
	Spec json.RawMessage `json:"spec"`
}

// loadFromSpec rebuilds a load from its serialized form.
func loadFromSpec(kind string, js []byte) (Load, error) {
	var l Load
	switch kind {
	case "pubsub":
		l = &PubSubLoad{}
	case "cache-churn":
		l = &CacheChurn{}
	default:
		return nil, fmt.Errorf("core: load kind %q cannot be rebuilt in a shard worker", kind)
	}
	if err := json.Unmarshal(js, l); err != nil {
		return nil, fmt.Errorf("core: %s load spec: %w", kind, err)
	}
	return l, nil
}

// applyAction replays one serialized coordinator action against this
// replica. It runs on a shard worker with every kernel parked on the
// fence instant — mirroring exactly what the coordinator's closure did
// to its own replica.
func (c *Cluster) applyAction(a shardnet.Action) error {
	switch a.Kind {
	case actPlanEvent:
		var e Event
		if err := json.Unmarshal(a.Data, &e); err != nil {
			return fmt.Errorf("core: plan-event action: %w", err)
		}
		c.apply(e)
	case actBootAll:
		c.booted = true
		for _, nd := range c.Nodes {
			nd := nd
			nd.K.After(0, func() { nd.Boot() })
		}
	case actLoadStart:
		var ls loadSpec
		if err := json.Unmarshal(a.Data, &ls); err != nil {
			return fmt.Errorf("core: load-start action: %w", err)
		}
		l, err := loadFromSpec(ls.Kind, ls.Spec)
		if err != nil {
			return err
		}
		if err := l.check(c); err != nil {
			return err
		}
		c.startLoad(l)
	case actLoadQuiesce:
		if len(a.Data) != 4 {
			return fmt.Errorf("core: load-quiesce action: payload is %d bytes, want 4", len(a.Data))
		}
		idx := int(binary.LittleEndian.Uint32(a.Data))
		if idx < 0 || idx >= len(c.loads) {
			return fmt.Errorf("core: load-quiesce action: load %d of %d", idx, len(c.loads))
		}
		c.loads[idx].Quiesce()
	default:
		return fmt.Errorf("core: unknown coordinator-action kind %d", a.Kind)
	}
	return nil
}

// mirror fences one serialized action to distributed shard workers; a
// no-op on the serial engine and the in-process transport (where the
// coordinator's replica is the only replica).
func (c *Cluster) mirror(a shardnet.Action) error {
	if c.par == nil || !c.par.e.Distributed() {
		return nil
	}
	return c.par.e.DriverFence([]shardnet.Action{a})
}
