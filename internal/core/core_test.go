package core

import (
	"testing"

	"repro/internal/ampdk"
	"repro/internal/sim"
)

func TestDefaultsArePaperTopology(t *testing.T) {
	c := New(Options{})
	if c.Opts.Nodes != 6 || c.Opts.Switches != 4 {
		t.Fatalf("defaults = %d×%d, want the slide-14 6×4", c.Opts.Nodes, c.Opts.Switches)
	}
	if len(c.Nodes) != 6 || len(c.Services) != 6 || len(c.Stacks) != 6 || len(c.Managers) != 6 {
		t.Fatal("per-node components missing")
	}
}

func TestBootAllOnline(t *testing.T) {
	c := New(Options{Nodes: 4, Switches: 2})
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	for i, nd := range c.Nodes {
		if !nd.Online() {
			t.Fatalf("node %d offline", i)
		}
	}
	if c.RingSize() != 4 {
		t.Fatalf("ring size = %d", c.RingSize())
	}
	if c.Roster() == "<no roster>" {
		t.Fatal("no roster string")
	}
}

func TestBootWithRejectedNodeStillSettles(t *testing.T) {
	c := New(Options{Nodes: 3, Switches: 2, VersionOf: func(id int) ampdk.Version {
		if id == 2 {
			return 0x0900
		}
		return 0x0100
	}})
	if err := c.Boot(0); err != nil {
		t.Fatalf("boot should settle with a rejected node: %v", err)
	}
	if c.Nodes[2].State != ampdk.StateRejected {
		t.Fatalf("node 2 state = %v", c.Nodes[2].State)
	}
}

func TestFailureHelpers(t *testing.T) {
	c := New(Options{Nodes: 4, Switches: 2})
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	c.FailLink(1, 0)
	c.Run(10 * sim.Millisecond)
	if c.RingSize() != 4 {
		t.Fatalf("ring after link cut = %d", c.RingSize())
	}
	c.RestoreLink(1, 0)
	c.Run(10 * sim.Millisecond)

	c.FailSwitch(1)
	c.Run(10 * sim.Millisecond)
	if c.RingSize() != 4 {
		t.Fatalf("ring after switch fail = %d", c.RingSize())
	}
	c.RestoreSwitch(1)
	c.Run(10 * sim.Millisecond)

	c.CrashNode(3)
	c.Run(20 * sim.Millisecond)
	if c.RingSize() != 3 {
		t.Fatalf("ring after crash = %d", c.RingSize())
	}
	c.RebootNode(3)
	c.Run(40 * sim.Millisecond)
	if c.RingSize() != 4 {
		t.Fatalf("ring after reboot = %d", c.RingSize())
	}
	if c.Drops() != 0 {
		t.Fatalf("congestion drops = %d", c.Drops())
	}
}

func TestRunAdvancesClock(t *testing.T) {
	c := New(Options{Nodes: 2, Switches: 2})
	t0 := c.Now()
	c.Run(5 * sim.Millisecond)
	if c.Now() != t0+5*sim.Millisecond {
		t.Fatalf("clock = %v", c.Now())
	}
}
