package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/netcache"
	"repro/internal/phys"
	"repro/internal/sim"
)

// equivalenceFabrics are the five shapes of the serial/parallel
// equivalence battery.
func equivalenceFabrics() []phys.Topology {
	return []phys.Topology{
		phys.Uniform(8, 4, 50),
		phys.DualRing(6, 50),
		phys.Mesh(8, 4, 50),
		phys.Sharded(2, 4, 2, 50),
		phys.Sharded(4, 3, 1, 50),
	}
}

// equivalenceScenario is the common scenario of the battery: a fault
// plan spanning node crash/reboot and switch death/restore, a paced
// pub/sub stream, a Poisson pub/sub stream and cache churn.
func equivalenceScenario(topo *phys.Topology, seed uint64, shards int) Scenario {
	return Scenario{
		Name: "equivalence",
		Opts: Options{Fabric: topo, Seed: seed, Shards: shards, Regions: map[uint8]int{2: 1024}},
		Plan: Plan{
			CrashNode(4*sim.Millisecond, topo.Nodes-1),
			FailSwitch(8*sim.Millisecond, topo.Switches-1),
			RebootNode(14*sim.Millisecond, topo.Nodes-1),
			RestoreSwitch(18*sim.Millisecond, topo.Switches-1),
		},
		Loads: []Load{
			&PubSubLoad{Publisher: 0, Topic: 1, Every: 50 * sim.Microsecond},
			&PubSubLoad{Name: "poisson", Publisher: 1, Topic: 2, Every: 80 * sim.Microsecond, Poisson: true},
			&CacheChurn{Writer: 2, Record: netcache.Record{Region: 2, Off: 0, Size: 64}, Every: 70 * sim.Microsecond},
		},
		For: 25 * sim.Millisecond,
	}
}

// TestEquivalenceBattery is the serial/parallel determinism property:
// for every fabric shape × seed, a sharded run's Report JSON is
// byte-identical to the serial run's — the defining guarantee of
// internal/parsim. CI runs it under -race, which also exercises the
// engine's barrier discipline (shared fabric state must only change
// while the shards are parked).
func TestEquivalenceBattery(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, topo := range equivalenceFabrics() {
		topo := topo
		t.Run(topo.Name+fmt.Sprintf("%dx%d", topo.Nodes, topo.Switches), func(t *testing.T) {
			for _, seed := range seeds {
				serialRep, err := equivalenceScenario(&topo, seed, 1).Run()
				if err != nil {
					t.Fatalf("serial seed=%d: %v", seed, err)
				}
				serial := serialRep.JSON()
				for _, shards := range []int{2, 4} {
					if shards > topo.Switches {
						continue
					}
					parRep, err := equivalenceScenario(&topo, seed, shards).Run()
					if err != nil {
						t.Fatalf("seed=%d shards=%d: %v", seed, shards, err)
					}
					if par := parRep.JSON(); !bytes.Equal(serial, par) {
						t.Errorf("seed=%d shards=%d: report diverged from serial\n--- serial ---\n%s--- shards=%d ---\n%s",
							seed, shards, serial, shards, par)
						return
					}
				}
			}
		})
	}
}

// TestOnGridFaultEquivalence pins the same-instant plan-action ordering
// contract: a fault scheduled at the exact instant of a model event
// (here, the fleet-wide keepalive tick, armed before boot) must still
// produce byte-identical serial and parallel reports. The parallel
// engine fires plan actions at a window fence before any model event at
// that instant; the serial engine must sort them the same way (see
// serialEngine.ScheduleAction). Historically scenarios dodged this by
// skewing fault instants off the timer grid; this test aims dead-on.
func TestOnGridFaultEquivalence(t *testing.T) {
	topo := phys.Sharded(2, 4, 2, 50)
	const keepalive = 2 * sim.Millisecond
	build := func(shards int, plan Plan) Scenario {
		return Scenario{
			Name: "ongrid",
			Opts: Options{Fabric: &topo, Seed: 7, Shards: shards,
				KeepaliveInterval: keepalive},
			Plan:  plan,
			Loads: []Load{&PubSubLoad{Publisher: 0, Topic: 1, Every: 50 * sim.Microsecond}},
			For:   12 * sim.Millisecond,
		}
	}
	// Probe run: learn when boot ends, so the fault offset can land the
	// absolute fault instant exactly on the next keepalive grid point
	// (keepalive loops are armed at t=0, before boot completes).
	probe, err := build(1, nil).Run()
	if err != nil {
		t.Fatal(err)
	}
	boot := sim.Time(probe.BootNS)
	crashAt := keepalive - boot%keepalive // boot + crashAt ≡ 0 mod keepalive
	plan := Plan{
		CrashNode(crashAt, topo.Nodes-1),
		RebootNode(crashAt+2*keepalive, topo.Nodes-1),
	}
	serialRep, err := build(1, plan).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.Time(serialRep.BootNS); got != boot {
		t.Fatalf("probe boot %v vs plan-run boot %v: fault no longer on-grid", boot, got)
	}
	parRep, err := build(2, plan).Run()
	if err != nil {
		t.Fatal(err)
	}
	if serial, par := serialRep.JSON(), parRep.JSON(); !bytes.Equal(serial, par) {
		t.Errorf("on-grid fault at boot+%v diverged serial vs 2 shards\n--- serial ---\n%s--- parallel ---\n%s",
			crashAt, serial, par)
	}
}

// TestDecoupledPartitionRuns pins the sim.MaxTime lookahead sentinel:
// a zero-trunk fabric whose shards share nothing gives
// phys.Lookahead = sim.MaxTime ("any window is safe"), and the engine's
// window arithmetic (start + lookahead) must clamp instead of
// overflowing sim.Time. The run must terminate, report the sentinel,
// and still be byte-identical to serial.
func TestDecoupledPartitionRuns(t *testing.T) {
	// Two isolated 3-node islands: no trunks, nodes attached only to
	// their island's switch. Nothing ever crosses shards.
	topo := phys.Topology{
		Name: "islands", Nodes: 6, Switches: 2, FiberM: 50,
		Attached: func(n, s int) bool { return n/3 == s },
	}
	run := func(shards int) *Report {
		rep, err := Scenario{
			Name: "decoupled",
			Opts: Options{Fabric: &topo, Seed: 5, Shards: shards},
			For:  8 * sim.Millisecond,
		}.Run()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return rep
	}
	serial := run(1)
	par := run(2)
	if !bytes.Equal(serial.JSON(), par.JSON()) {
		t.Errorf("decoupled run diverged serial vs 2 shards\n--- serial ---\n%s--- parallel ---\n%s",
			serial.JSON(), par.JSON())
	}
	if par.LookaheadNS != int64(sim.MaxTime) {
		t.Fatalf("decoupled lookahead = %d, want sim.MaxTime sentinel", par.LookaheadNS)
	}
	if par.Shards != 2 || par.Partition == "" {
		t.Fatalf("partition observability missing: shards=%d partition=%q", par.Shards, par.Partition)
	}
	if !strings.Contains(par.Summary(), "fully decoupled") {
		t.Fatalf("Summary does not surface the decoupled partition:\n%s", par.Summary())
	}
	if strings.Contains(serial.Summary(), "shards") {
		t.Fatalf("serial Summary grew a shard line:\n%s", serial.Summary())
	}
}

// TestParallelRejectsUnsupportedLoads pins the engine's stated limits:
// loads whose drivers span shards, and BER injection, fail up front
// with actionable errors instead of racing mid-run.
func TestParallelRejectsUnsupportedLoads(t *testing.T) {
	topo := phys.Sharded(2, 3, 1, 50)
	base := Scenario{
		Opts: Options{Fabric: &topo, Shards: 2},
		For:  2 * sim.Millisecond,
	}
	col := base
	col.Loads = []Load{&CollectiveLoad{Iters: 1}}
	if _, err := col.Run(); err == nil || !strings.Contains(err.Error(), "collective") {
		t.Fatalf("collective load under shards: err = %v, want unsupported", err)
	}
	fs := base
	fs.Loads = []Load{&FileStream{From: 0, To: 1}}
	if _, err := fs.Run(); err == nil || !strings.Contains(err.Error(), "filestream") {
		t.Fatalf("filestream load under shards: err = %v, want unsupported", err)
	}
	ber := base
	ber.Opts.DeepPHY = true
	ber.Opts.BER = 1e-6
	if _, err := ber.Run(); err == nil || !strings.Contains(err.Error(), "BER") {
		t.Fatalf("BER under shards: err = %v, want unsupported", err)
	}
	over := base
	over.Opts.Shards = 3 // only 2 switches: a shard would own none
	if _, err := over.Run(); err == nil || !strings.Contains(err.Error(), "shard") {
		t.Fatalf("more shards than switches: err = %v, want error", err)
	}
}

// TestPoissonLoadDeterministicAndBursty verifies the Poisson arrival
// option: same seed ⇒ identical report; different seed ⇒ different
// arrival pattern; and the inter-arrival stream is actually bursty
// (not the fixed cadence).
func TestPoissonLoadDeterministicAndBursty(t *testing.T) {
	topo := phys.Uniform(4, 2, 50)
	run := func(seed uint64) *Report {
		rep, err := Scenario{
			Opts:  Options{Fabric: &topo, Seed: seed},
			Loads: []Load{&PubSubLoad{Publisher: 0, Topic: 1, Every: 100 * sim.Microsecond, Poisson: true}},
			For:   10 * sim.Millisecond,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(3), run(3)
	if !bytes.Equal(a.JSON(), b.JSON()) {
		t.Fatal("same-seed Poisson runs diverge")
	}
	c := run(4)
	if a.Loads[0].Sent == c.Loads[0].Sent && a.Loads[0].MaxLatencyNS == c.Loads[0].MaxLatencyNS {
		t.Fatal("different seeds produced an identical Poisson stream (suspicious)")
	}
	// A 10 ms run at a 100 µs mean holds ~100 arrivals; a fixed cadence
	// would send exactly 100. Expect the Poisson count to differ.
	if a.Loads[0].Sent == 100 {
		t.Fatalf("Poisson stream sent exactly the fixed-cadence count (%d): not bursty", a.Loads[0].Sent)
	}
}

// TestLargeFabricSmoke boots the largest addressable fabric — 248
// nodes over 8 sharded switch groups, the ceiling of the one-byte
// MicroPacket address space — on the parallel engine, and requires it
// to heal to a full ring within a wall-clock budget. This is the
// scale smoke CI runs; the serial-vs-parallel speedup at this size is
// recorded by the E14 benchmarks.
func TestLargeFabricSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large fabric smoke skipped in -short")
	}
	topo := phys.Sharded(8, 31, 1, 50)
	for i := range topo.Trunks {
		topo.Trunks[i].FiberM = 200
	}
	start := time.Now()
	rep, err := Scenario{
		Name: "large-fabric",
		Opts: Options{Fabric: &topo, Seed: 1, Shards: 8,
			HeartbeatInterval: 2 * sim.Millisecond},
		BootWindow: 200 * sim.Millisecond,
		Loads:      []Load{&PubSubLoad{Publisher: 0, Topic: 1, Every: 100 * sim.Microsecond, Subscribers: []int{31, 62, 124, 247}}},
		For:        5 * sim.Millisecond,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RingSize != topo.Nodes || !rep.Healed {
		t.Fatalf("large fabric did not heal: ring=%d healed=%v", rep.RingSize, rep.Healed)
	}
	if rep.Drops != 0 {
		t.Fatalf("congestion drops at scale: %d", rep.Drops)
	}
	if wall := time.Since(start); wall > 5*time.Minute {
		t.Fatalf("large fabric smoke took %v, budget 5m", wall)
	}
}
