package core

import (
	"fmt"

	"repro/internal/ampdc"
	"repro/internal/ampdk"
	"repro/internal/ampip"
	"repro/internal/failover"
	"repro/internal/netcache"
	"repro/internal/netsem"
)

// Handle is a typed view of one node of a cluster. It is the intended
// way for scenarios, examples and tools to reach a node's services —
// instead of indexing the four parallel slices (Nodes, Services,
// Stacks, Managers) by hand, call c.Node(i) once and use the accessors.
// A Handle is a small value; copy it freely.
type Handle struct {
	c  *Cluster
	id int
}

// Node returns a handle for node i. It panics on an out-of-range id —
// a handle to a nonexistent node is always a programming error.
func (c *Cluster) Node(i int) Handle {
	if i < 0 || i >= len(c.Nodes) {
		panic(fmt.Sprintf("core: Node(%d) out of range [0,%d)", i, len(c.Nodes)))
	}
	return Handle{c: c, id: i}
}

// ID returns the node id the handle addresses.
func (h Handle) ID() int { return h.id }

// Sub is the node's AmpSubscribe (pub/sub) service.
func (h Handle) Sub() *ampdc.Subscribe { return h.c.Services[h.id].Sub }

// Files is the node's AmpFiles (file transfer) service.
func (h Handle) Files() *ampdc.Files { return h.c.Services[h.id].Files }

// Threads is the node's AmpThreads (remote call) service.
func (h Handle) Threads() *ampdc.Threads { return h.c.Services[h.id].Threads }

// Stack is the node's AmpIP (IP-over-AmpNet) stack.
func (h Handle) Stack() *ampip.Stack { return h.c.Stacks[h.id] }

// Manager is the node's failover manager (control groups).
func (h Handle) Manager() *failover.Manager { return h.c.Managers[h.id] }

// Sem is the node's network-semaphore service.
func (h Handle) Sem() *netsem.Service { return h.c.Nodes[h.id].Sem }

// Cache is the node's local replica of the network cache (read side).
func (h Handle) Cache() *netcache.Cache { return h.c.Nodes[h.id].Cache }

// CacheW is the node's replicating cache writer.
func (h Handle) CacheW() *netcache.Writer { return h.c.Nodes[h.id].CacheW }

// DK is the node's distributed kernel — the escape hatch to everything
// the typed accessors do not cover (hooks, counters, diagnostics).
func (h Handle) DK() *ampdk.Node { return h.c.Nodes[h.id] }

// Crash kills the node, NIC and all (prefer a Plan event for scripted
// faults; Crash is for interactive use).
func (h Handle) Crash() { h.c.CrashNode(h.id) }

// Reboot brings a crashed node back through assimilation.
func (h Handle) Reboot() { h.c.RebootNode(h.id) }

// Online reports whether the node has completed assimilation.
func (h Handle) Online() bool { return h.c.Nodes[h.id].Online() }

// State returns the node's assimilation state.
func (h Handle) State() ampdk.State { return h.c.Nodes[h.id].State }
