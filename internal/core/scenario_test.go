package core

import (
	"bytes"
	"testing"

	"repro/internal/netcache"
	"repro/internal/sim"
)

// scenarioTable is the determinism suite: one scenario per canonical
// fault shape, each carrying loads so the report exercises every
// accounting path.
func scenarioTable() []Scenario {
	regions := map[uint8]int{1: 8192}
	return []Scenario{
		{
			Name: "crash",
			Opts: Options{Nodes: 6, Switches: 4, Seed: 11, Regions: regions},
			Plan: Plan{CrashNode(5*sim.Millisecond, 3)},
			Loads: []Load{
				&PubSubLoad{Publisher: 0, Topic: 1, Every: 50 * sim.Microsecond},
				&CacheChurn{Writer: 1, Record: netcache.Record{Region: 1, Off: 0, Size: 16}},
			},
			For: 20 * sim.Millisecond,
		},
		{
			Name:  "switch-fail",
			Opts:  Options{Nodes: 6, Switches: 4, Seed: 11},
			Plan:  Plan{FailSwitch(5*sim.Millisecond, 0)},
			Loads: []Load{&PubSubLoad{Publisher: 2, Topic: 3, Every: 20 * sim.Microsecond, Payload: 32}},
			For:   20 * sim.Millisecond,
		},
		{
			Name: "link-flap",
			Opts: Options{Nodes: 8, Switches: 2, Seed: 7},
			Plan: Plan{
				FailLink(4*sim.Millisecond, 3, 0),
				RestoreLink(10*sim.Millisecond, 3, 0),
			},
			Loads: []Load{&CollectiveLoad{Iters: 6}},
			For:   40 * sim.Millisecond,
		},
		{
			Name: "crash-reboot",
			Opts: Options{Nodes: 4, Switches: 2, Seed: 3, Regions: regions},
			Plan: Plan{
				CrashNode(5*sim.Millisecond, 2),
				RebootNode(15*sim.Millisecond, 2),
			},
			Loads: []Load{
				&CacheChurn{Writer: 0, Record: netcache.Record{Region: 1, Off: 64, Size: 8}, Count: 200, Every: 40 * sim.Microsecond},
				&FileStream{From: 0, To: 1, Size: 64 * 1024},
			},
			For: 40 * sim.Millisecond,
		},
	}
}

// Same seed + same plan ⇒ byte-identical Report JSON. This is the
// property CI regresses (and the race job re-runs under -race).
func TestScenarioReportDeterminism(t *testing.T) {
	for _, s := range scenarioTable() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			first, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			second, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			a, b := first.JSON(), second.JSON()
			if !bytes.Equal(a, b) {
				t.Fatalf("same-seed reports differ:\n--- first\n%s\n--- second\n%s", a, b)
			}
		})
	}
}

// The reports must also mean something: traffic flows, faults fire,
// heal windows are attributed, and the no-congestion-drop guarantee
// holds through every fault shape.
func TestScenarioReportsAreSane(t *testing.T) {
	for _, s := range scenarioTable() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Events) != len(s.Plan) {
				t.Fatalf("fired %d events, want %d", len(rep.Events), len(s.Plan))
			}
			if rep.Drops != 0 {
				t.Fatalf("congestion drops = %d, want 0", rep.Drops)
			}
			if !rep.Healed {
				t.Fatalf("scenario ended unhealed: ring %s", rep.Roster)
			}
			if rep.Events[0].HealNS <= 0 {
				t.Fatalf("first fault has no heal window: %+v", rep.Events[0])
			}
			for _, l := range rep.Loads {
				switch l.Kind {
				case "pubsub":
					if l.Sent == 0 || l.Delivered == 0 {
						t.Fatalf("pubsub load moved nothing: %+v", l)
					}
				case "cache-churn":
					if l.Sent == 0 {
						t.Fatalf("cache churn wrote nothing: %+v", l)
					}
					if l.StaleReplicas != 0 {
						t.Fatalf("stale replicas after settle: %+v", l)
					}
				case "collective":
					if l.Iters == 0 {
						t.Fatalf("collective load iterated zero times: %+v", l)
					}
				case "filestream":
					if l.Files == 0 || l.Corrupt != 0 {
						t.Fatalf("file stream incomplete or corrupt: %+v", l)
					}
				}
			}
		})
	}
}

func TestScenarioRejectsInvalidPlan(t *testing.T) {
	_, err := Scenario{
		Opts: Options{Nodes: 4, Switches: 2},
		Plan: Plan{CrashNode(0, 99)},
	}.Run()
	if err == nil {
		t.Fatal("Scenario.Run with out-of-range plan = nil error")
	}
}

// An event scheduled past For+Settle would never fire; the scenario
// must refuse it instead of reporting a fault-free run.
func TestScenarioRejectsEventsBeyondRun(t *testing.T) {
	_, err := Scenario{
		Opts: Options{Nodes: 4, Switches: 2},
		Plan: Plan{CrashNode(40*sim.Millisecond, 3)},
		For:  30 * sim.Millisecond,
	}.Run()
	if err == nil {
		t.Fatal("Scenario.Run with never-firing event = nil error")
	}
}

// Loads over nonexistent nodes are rejected up front: an error from
// Scenario.Run, an immediate descriptive panic from StartLoad — never
// an index panic mid-simulation.
func TestLoadValidation(t *testing.T) {
	bad := []Load{
		&PubSubLoad{Publisher: 9},
		&PubSubLoad{Publisher: 0, Subscribers: []int{-1}},
		&CacheChurn{Writer: 4},
		&CollectiveLoad{Ranks: []int{0, 7}},
		&FileStream{From: 0, To: 12},
	}
	for _, l := range bad {
		if _, err := (Scenario{
			Opts:  Options{Nodes: 4, Switches: 2},
			Loads: []Load{l},
			For:   sim.Millisecond,
		}).Run(); err == nil {
			t.Errorf("Scenario.Run with bad %T = nil error", l)
		}
	}
	c := New(Options{Nodes: 4, Switches: 2})
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("StartLoad with out-of-range publisher did not panic")
		}
	}()
	c.StartLoad(&PubSubLoad{Publisher: 9})
}

func TestWaitHelpers(t *testing.T) {
	c := New(Options{Nodes: 6, Switches: 4})
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	if !c.Healed() {
		t.Fatal("cluster not healed right after boot")
	}
	// A crash must unsettle then re-heal the ring at size 5.
	if err := c.Install(Plan{CrashNode(sim.Millisecond, 4)}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitRingSize(5, 20*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitHealed(20 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	// The rebooted node must assimilate back to a healed 6-ring.
	if err := c.Install(Plan{RebootNode(0, 4)}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitRingSize(6, 50*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitHealed(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !c.Node(4).Online() {
		t.Fatal("node 4 not online after reboot + WaitHealed")
	}
	// A condition that never comes true must time out exactly at the
	// window, not past it.
	start := c.Now()
	err := c.WaitUntil(func() bool { return false }, 3*sim.Millisecond)
	if err == nil {
		t.Fatal("WaitUntil(false) = nil error")
	}
	if got := c.Now() - start; got != 3*sim.Millisecond {
		t.Fatalf("WaitUntil advanced %v, want exactly 3ms", got)
	}
}

func TestEvery(t *testing.T) {
	c := New(Options{Nodes: 4, Switches: 2})
	var ticks []sim.Time
	c.Every(sim.Millisecond, func() bool {
		ticks = append(ticks, c.Now())
		return len(ticks) < 3
	})
	c.Run(10 * sim.Millisecond)
	want := []sim.Time{0, sim.Millisecond, 2 * sim.Millisecond}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestHandleAccessors(t *testing.T) {
	c := New(Options{Nodes: 4, Switches: 2, Regions: map[uint8]int{1: 4096}})
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	h := c.Node(2)
	if h.ID() != 2 {
		t.Fatalf("ID() = %d", h.ID())
	}
	if h.Sub() != c.Services[2].Sub || h.Files() != c.Services[2].Files ||
		h.Threads() != c.Services[2].Threads || h.Stack() != c.Stacks[2] ||
		h.Manager() != c.Managers[2] || h.DK() != c.Nodes[2] ||
		h.Sem() != c.Nodes[2].Sem || h.Cache() != c.Nodes[2].Cache ||
		h.CacheW() != c.Nodes[2].CacheW {
		t.Fatal("handle accessors disagree with the cluster slices")
	}
	if !h.Online() {
		t.Fatal("Online() = false after boot")
	}
	h.Crash()
	if h.Online() || h.State().String() != "offline" {
		t.Fatalf("after Crash: online=%v state=%v", h.Online(), h.State())
	}
	h.Reboot()
	if err := c.WaitUntil(h.Online, 50*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Node(99) did not panic")
		}
	}()
	c.Node(99)
}
