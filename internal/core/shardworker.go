package core

import (
	"fmt"
	"net"
	"os"
	"runtime/debug"
	"strconv"

	"repro/internal/phys"
	"repro/internal/shardnet"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// This file is the worker side of the socket transport (cmd/ampshard):
// a shard worker dials the coordinator, rebuilds the full cluster from
// the serialized spec as a mirrored replica, and then advances ONLY its
// own shard's kernel in lockstep with the coordinator's grants. Every
// window it reports its capture block and cumulative event count; the
// coordinator byte-compares both against its own replica, so any
// divergence — a non-deterministic model, a version skew, a missed
// mirror — is caught at the barrier it first appears.

// EnvTestDie, when set to a shard id, makes that shard's worker exit
// without replying on its first granted window — the failure-injection
// hook the transport tests use to prove a dead worker fails the run
// instead of hanging it.
const EnvTestDie = "AMPSHARD_TEST_DIE"

// RunShardWorkerFromEnv serves as a shard worker when the ampshard
// launch environment (AMPSHARD_ADDR/AMPSHARD_SHARD) is present, then
// exits the process; it returns false when the environment is absent.
// cmd/ampshard calls it from main; test binaries that name themselves
// as Options.ShardWorker call it from TestMain.
func RunShardWorkerFromEnv() bool {
	addr := os.Getenv(shardnet.EnvAddr)
	if addr == "" {
		return false
	}
	shard, err := strconv.Atoi(os.Getenv(shardnet.EnvShard))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ampshard: bad %s: %v\n", shardnet.EnvShard, err)
		os.Exit(1)
	}
	if err := ServeShard(addr, shard); err != nil {
		fmt.Fprintf(os.Stderr, "ampshard: shard %d: %v\n", shard, err)
		os.Exit(1)
	}
	os.Exit(0)
	return true
}

// ServeShard runs one shard-worker session against the coordinator at
// addr: handshake, replica build, then the barrier loop until MsgBye or
// failure. Errors are also reported to the coordinator as MsgError
// where the protocol allows, so the run fails with the cause rather
// than a bare disconnect.
func ServeShard(addr string, shard int) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("core: shard worker: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if err := wire.WriteControl(conn, shardnet.MsgHello, shardnet.EncodeHello(shard)); err != nil {
		return err
	}
	typ, spec, err := wire.ReadControl(conn)
	if err != nil {
		return fmt.Errorf("core: shard worker: waiting for spec: %w", err)
	}
	if typ == shardnet.MsgBye {
		return nil
	}
	if typ != shardnet.MsgSpec {
		return fmt.Errorf("core: shard worker: got message %#02x, want spec", typ)
	}
	w := &shardServant{conn: conn, shard: shard, clock: telemetry.Wall}
	if os.Getenv(EnvTestDie) == strconv.Itoa(shard) {
		w.die = true
	}
	if err := w.build(spec); err != nil {
		return w.abort(err)
	}
	defer w.c.Close()
	ready := shardnet.Ready{
		Shard:     shard,
		Wire:      w.c.WireVersion(),
		Seed:      w.c.Opts.Seed,
		TopoHash:  shardnet.Fingerprint(w.c.Phys, w.c.Opts.Seed, w.c.Lookahead(), spec),
		Lookahead: w.c.Lookahead(),
	}
	if err := wire.WriteControl(conn, shardnet.MsgReady, shardnet.EncodeReady(ready)); err != nil {
		return err
	}
	return w.loop()
}

// shardServant is one worker's state: the full mirrored replica, the
// one kernel this worker advances, and the replica's in-process
// transport (its capture queues are where this shard's cross-shard
// traffic lands).
type shardServant struct {
	conn  net.Conn
	shard int
	die   bool // EnvTestDie: exit on the first granted window

	c     *Cluster
	k     *sim.Kernel
	tr    shardnet.Transport
	ports map[uint32]*phys.Port

	// clock times the window runs for the MsgDone telemetry summary;
	// lastDone is the clock reading after the previous done send, so the
	// next grant can report the worker's idle (barrier-wait) time. Wall
	// plane only: these readings travel in the telemetry block and never
	// touch replica state or the capture bytes.
	clock    telemetry.Clock
	lastDone int64
}

// build rebuilds the coordinator's cluster from the spec. New panics on
// malformed options, so the build is recover-wrapped into an error the
// coordinator can print.
func (w *shardServant) build(spec []byte) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: shard worker: building replica: %v", r)
		}
	}()
	opts, err := specOptions(spec)
	if err != nil {
		return err
	}
	if w.shard < 0 || w.shard >= opts.Shards {
		return fmt.Errorf("core: shard worker: shard %d of %d", w.shard, opts.Shards)
	}
	w.c = New(opts)
	w.k = w.c.par.e.Kernels[w.shard]
	w.tr = w.c.par.e.Transport()
	return nil
}

// abort reports err to the coordinator (best effort) and returns it.
func (w *shardServant) abort(err error) error {
	_ = wire.WriteControl(w.conn, shardnet.MsgError, shardnet.EncodeError(err))
	return err
}

// loop is the barrier protocol: every coordinator transport operation
// arrives as a message, is applied to the replica, and is answered with
// this shard's view of the barrier.
func (w *shardServant) loop() error {
	for {
		typ, payload, err := wire.ReadControl(w.conn)
		if err != nil {
			return fmt.Errorf("core: shard %d worker: coordinator lost: %w", w.shard, err)
		}
		switch typ {
		case shardnet.MsgRun:
			target, err := shardnet.DecodeTime(payload)
			if err != nil {
				return w.abort(err)
			}
			if w.die {
				// Failure injection: vanish mid-window, reply with
				// nothing. The coordinator's read deadline must turn
				// this into a run failure, never a hang.
				os.Exit(3)
			}
			var tel shardnet.TelemetrySummary
			run0 := w.clock.Now()
			if w.lastDone != 0 {
				tel.IdleNS = uint64(run0 - w.lastDone)
			}
			if err := w.runTo(target); err != nil {
				return w.abort(err)
			}
			tel.RunNS = uint64(w.clock.Now() - run0)
			w.park(target)
			capture, err := w.capture()
			if err != nil {
				return w.abort(err)
			}
			if err := wire.WriteControl(w.conn, shardnet.MsgDone,
				shardnet.EncodeDone(target, w.k.Fired, tel,
					w.c.Nets[w.shard].Acct.Snapshot(), capture)); err != nil {
				return err
			}
			w.lastDone = w.clock.Now()
		case shardnet.MsgAdvance:
			at, err := shardnet.DecodeTime(payload)
			if err != nil {
				return w.abort(err)
			}
			if err := w.advanceTo(at); err != nil {
				return w.abort(err)
			}
			w.park(at)
			if err := wire.WriteControl(w.conn, shardnet.MsgAdvanced, shardnet.EncodeTime(at)); err != nil {
				return err
			}
		case shardnet.MsgApply:
			now, acts, err := shardnet.DecodeApply(payload)
			if err != nil {
				return w.abort(err)
			}
			w.park(now)
			if err := w.applyAll(acts); err != nil {
				return w.abort(err)
			}
			capture, err := w.capture()
			if err != nil {
				return w.abort(err)
			}
			if err := wire.WriteControl(w.conn, shardnet.MsgApplied,
				shardnet.EncodeApplied(now, capture)); err != nil {
				return err
			}
		case shardnet.MsgDeliver:
			frames, routes, err := shardnet.DecodeCapture(payload)
			if err != nil {
				return w.abort(err)
			}
			for i := range frames {
				dst, err := w.port(frames[i].DstUID)
				if err != nil {
					return w.abort(err)
				}
				frames[i].Dst = dst
				frames[i].Link = dst.Link()
			}
			if err := w.deliver(frames, routes); err != nil {
				return w.abort(err)
			}
		case shardnet.MsgBye:
			return nil
		default:
			return w.abort(fmt.Errorf("core: shard %d worker: unexpected message %#02x", w.shard, typ))
		}
	}
}

// park moves every remote kernel's clock onto the barrier instant
// without running anything (sim.Kernel.Park): fence actions applied
// from a remote node's context — a reboot's synchronous join
// broadcast, say — must stamp the same virtual times the coordinator
// stamps, or the capture cross-check would flag a false divergence.
// The remote kernels' queued events stay pending forever; only their
// clocks track the barrier.
func (w *shardServant) park(t sim.Time) {
	for i, k := range w.c.par.e.Kernels {
		if i != w.shard {
			k.Park(t)
		}
	}
}

// runTo advances this worker's own shard kernel — and only it; the
// other shards' kernels exist solely as construction context and stay
// clock-parked on the barrier. A model panic becomes an error naming
// the window.
func (w *shardServant) runTo(target sim.Time) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: shard %d replica panicked in window ending %v: %v\n%s",
				w.shard, target, r, debug.Stack())
		}
	}()
	w.k.RunUntil(target)
	return nil
}

// advanceTo hops this shard's clock over dead time.
func (w *shardServant) advanceTo(at sim.Time) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: shard %d replica: advance to %v: %v", w.shard, at, r)
		}
	}()
	w.k.AdvanceTo(at)
	return nil
}

// applyAll replays the fence's serialized coordinator actions in order.
func (w *shardServant) applyAll(acts []shardnet.Action) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: shard %d replica: applying coordinator action: %v\n%s",
				w.shard, r, debug.Stack())
		}
	}()
	for _, a := range acts {
		if err := w.c.applyAction(a); err != nil {
			return err
		}
	}
	return nil
}

// capture drains this replica's capture queues and encodes the slice
// this worker can vouch for: frames and routes sourced by its own
// shard, whose state is fully live here. Applying a remote shard's
// fence action (a reboot of a node this worker never ran, say) emits
// frames from that node's stale state — junk this worker drops; the
// remote shard's own worker reports the authoritative bytes for them.
func (w *shardServant) capture() ([]byte, error) {
	frames, routes, err := w.tr.Collect()
	if err != nil {
		return nil, err
	}
	var myFrames []shardnet.FrameRec
	for _, f := range frames {
		if f.Src == w.shard {
			myFrames = append(myFrames, f)
		}
	}
	var myRoutes []shardnet.RouteRec
	for _, r := range routes {
		if r.Src == w.shard {
			myRoutes = append(myRoutes, r)
		}
	}
	return shardnet.EncodeCapture(myFrames, myRoutes)
}

// deliver applies a barrier batch (all routes, this shard's frames) to
// the replica.
func (w *shardServant) deliver(frames []shardnet.FrameRec, routes []shardnet.RouteRec) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: shard %d replica: applying barrier batch: %v", w.shard, r)
		}
	}()
	return w.tr.Deliver(frames, routes)
}

// port resolves a port UID against the replica, rebuilding the index on
// a miss (ports are created at build time, so a rebuild is rare).
func (w *shardServant) port(uid uint32) (*phys.Port, error) {
	if p, ok := w.ports[uid]; ok {
		return p, nil
	}
	w.ports = map[uint32]*phys.Port{}
	for _, n := range w.c.Nets {
		for _, p := range n.Ports() {
			w.ports[p.UID()] = p
		}
	}
	if p, ok := w.ports[uid]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("core: shard %d replica has no port with uid %d", w.shard, uid)
}
