package core

import (
	"bytes"
	"testing"

	"repro/internal/phys"
	"repro/internal/sim"
)

// TestDualRingSwitchLossHealsTraffic is the acceptance scenario: a
// dual counter-rotating ring loses an entire switch mid-run; the ring
// re-forms on the surviving switch, traffic keeps being delivered
// after the event, and the report is byte-identical across same-seed
// runs.
func TestDualRingSwitchLossHealsTraffic(t *testing.T) {
	run := func() (*Report, int) {
		var c *Cluster
		var eventAt sim.Time
		afterEvent := 0
		topo := phys.DualRing(6, 50)
		rep, err := Scenario{
			Name: "dualring-switch-loss",
			Opts: Options{Fabric: &topo, Seed: 7},
			Plan: Plan{FailSwitch(10*sim.Millisecond, 0)},
			Loads: []Load{&PubSubLoad{
				Publisher: 0, Topic: 1, Every: 50 * sim.Microsecond,
				OnDeliver: func(int, uint64, []byte) {
					if eventAt != 0 && c.Now() > eventAt {
						afterEvent++
					}
				},
			}},
			For:       30 * sim.Millisecond,
			OnCluster: func(cl *Cluster) { c = cl },
			OnEvent:   func(Event) { eventAt = c.Now() },
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep, afterEvent
	}
	rep, afterEvent := run()
	if rep.Fabric != "dualring" || rep.Trunks != 1 {
		t.Fatalf("report fabric = %q/%d trunks, want dualring/1", rep.Fabric, rep.Trunks)
	}
	if !rep.Healed || rep.RingSize != 6 {
		t.Fatalf("not healed after switch loss: healed=%v ring=%d (%s)", rep.Healed, rep.RingSize, rep.Roster)
	}
	if afterEvent == 0 {
		t.Fatal("no deliveries after the switch failure — traffic did not heal")
	}
	if rep.Drops != 0 {
		t.Fatalf("congestion drops = %d, want 0", rep.Drops)
	}
	rep2, _ := run()
	if !bytes.Equal(rep.JSON(), rep2.JSON()) {
		t.Fatalf("same-seed reports differ:\n%s\n---\n%s", rep.JSON(), rep2.JSON())
	}
}

// TestShardedRingSpansTrunks boots a sharded two-ring cluster whose
// cluster-wide ring can only exist across the inter-shard trunks, and
// checks the roster routes at least one hop over a multi-switch path.
func TestShardedRingSpansTrunks(t *testing.T) {
	topo := phys.Sharded(2, 3, 2, 50)
	c := New(Options{Fabric: &topo})
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitHealed(20 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := c.RingSize(); got != 6 {
		t.Fatalf("ring size = %d, want all 6 nodes (%s)", got, c.Roster())
	}
	r := c.Nodes[0].Agent.Roster()
	crossings := 0
	for _, p := range r.Paths {
		if len(p) > 1 {
			crossings++
		}
	}
	if crossings < 2 {
		t.Fatalf("expected >=2 hops across inter-shard trunks, got %d (%s)", crossings, r)
	}
}

// TestTrunkPartitionAndRemerge cuts every inter-shard trunk: the two
// shards must each settle into their own healed ring (a partitioned
// fabric is healed per live partition), then re-merge into one ring
// when the trunks are restored.
func TestTrunkPartitionAndRemerge(t *testing.T) {
	topo := phys.Sharded(2, 3, 2, 50)
	c := New(Options{Fabric: &topo})
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	if n := c.Phys.NumTrunks(); n != 2 {
		t.Fatalf("sharded(2,3,2) built %d trunks, want 2", n)
	}
	if err := c.Install(Plan{
		FailTrunk(sim.Millisecond, 0),
		FailTrunk(sim.Millisecond, 1),
	}); err != nil {
		t.Fatal(err)
	}
	c.Run(2 * sim.Millisecond) // let the cuts fire and be detected
	if err := c.WaitUntil(func() bool { return c.Healed() && c.RingSize() == 3 }, 30*sim.Millisecond); err != nil {
		t.Fatalf("partitioned fabric never settled: %v (violations %v)", err, c.InvariantViolations())
	}
	// Two partitions, each a 3-node ring.
	r0, r1 := c.Nodes[0].Agent.Roster(), c.Nodes[3].Agent.Roster()
	if r0.Size() != 3 || r1.Size() != 3 || r0.Contains(3) || r1.Contains(0) {
		t.Fatalf("partition rosters wrong: shard0 %s, shard1 %s", r0, r1)
	}
	if err := c.Install(Plan{
		RestoreTrunk(0, 0),
		RestoreTrunk(0, 1),
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitUntil(func() bool { return c.Healed() && c.RingSize() == 6 }, 30*sim.Millisecond); err != nil {
		t.Fatalf("fabric never re-merged: %v (ring %s)", err, c.Roster())
	}
}

// TestMeshHealsAroundSwitchLoss: in a trunked mesh no single switch
// sees every node; killing one must still leave a full ring.
func TestMeshHealsAroundSwitchLoss(t *testing.T) {
	topo := phys.Mesh(8, 4, 50)
	c := New(Options{Fabric: &topo})
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitHealed(20 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := c.Install(Plan{FailSwitch(0, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitUntil(func() bool { return c.Healed() && c.RingSize() == 8 }, 40*sim.Millisecond); err != nil {
		t.Fatalf("mesh did not heal around the dead switch: %v (ring %s, violations %v)",
			err, c.Roster(), c.InvariantViolations())
	}
}

// TestCounterRotation: on a dual-ring fabric the backup ring (lowest
// live switch odd) runs in the opposite rotation from the primary.
func TestCounterRotation(t *testing.T) {
	topo := phys.DualRing(5, 50)
	c := New(Options{Fabric: &topo})
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	before := c.Nodes[0].Agent.Roster()
	primary := append([]int{}, before.Nodes...)
	if err := c.Install(Plan{FailSwitch(0, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitUntil(func() bool { return c.Healed() && c.RingSize() == 5 }, 30*sim.Millisecond); err != nil {
		t.Fatalf("backup ring never settled: %v (%s)", err, c.Roster())
	}
	after := c.Nodes[0].Agent.Roster()
	// Same node set, reversed rotation: after[k] == primary[(n-k) mod n]
	// up to rotation. Check by walking primary backwards from after[0].
	n := len(primary)
	if len(after.Nodes) != n {
		t.Fatalf("backup ring size %d != %d", len(after.Nodes), n)
	}
	start := -1
	for i, v := range primary {
		if v == after.Nodes[0] {
			start = i
		}
	}
	for k := 0; k < n; k++ {
		want := primary[((start-k)%n+n)%n]
		if after.Nodes[k] != want {
			t.Fatalf("backup ring is not counter-rotated: primary %v, backup %v", primary, after.Nodes)
		}
	}
}
