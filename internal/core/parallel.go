package core

import (
	"fmt"

	"repro/internal/parsim"
	"repro/internal/phys"
	"repro/internal/shardnet"
	"repro/internal/sim"
)

// engine abstracts driver-level time control so the Scenario/Cluster
// API is identical over the serial kernel and the parallel sharded
// engine. RunUntil is inclusive and leaves the clock exactly on its
// deadline; ScheduleAt runs fn at t ordered like a timer installed at
// the moment of the call (the contract plan events rely on).
// ScheduleAction is ScheduleAt plus the action's serialized descriptor,
// which distributed transports mirror to their shard workers (nil desc
// marks a read-only action that never needs mirroring).
type engine interface {
	Now() sim.Time
	RunUntil(t sim.Time) sim.Time
	ScheduleAt(t sim.Time, fn func())
	ScheduleAction(t sim.Time, fn func(), desc *shardnet.Action)
}

// serialEngine drives the single kernel of a serial cluster.
type serialEngine struct{ k *sim.Kernel }

func (s serialEngine) Now() sim.Time                    { return s.k.Now() }
func (s serialEngine) RunUntil(t sim.Time) sim.Time     { return s.k.RunUntil(t) }
func (s serialEngine) ScheduleAt(t sim.Time, fn func()) { s.k.At(t, fn) }
func (s serialEngine) ScheduleAction(t sim.Time, fn func(), _ *shardnet.Action) {
	// One process, one replica: the descriptor has nowhere to go. The
	// priority key is load-bearing: the parallel engine fires actions at
	// a window fence, before ANY model event at the same instant, so the
	// serial twin must sort them the same way. Model events carry
	// priT ≥ 0 (their transmit/schedule time); priT = -1 puts actions
	// ahead of all of them at the shared instant, with installation
	// order (seq) breaking action-vs-action ties exactly like the
	// fence's schedule order does.
	s.k.AtPri(t, -1, 0, fn)
}

// parsimEngine adapts parsim.Engine to the core engine interface.
type parsimEngine struct{ e *parsim.Engine }

func (p *parsimEngine) Now() sim.Time                    { return p.e.Now() }
func (p *parsimEngine) RunUntil(t sim.Time) sim.Time     { return p.e.RunUntil(t) }
func (p *parsimEngine) ScheduleAt(t sim.Time, fn func()) { p.e.ScheduleAt(t, fn) }
func (p *parsimEngine) ScheduleAction(t sim.Time, fn func(), desc *shardnet.Action) {
	if desc == nil {
		p.e.ScheduleRead(t, fn)
		return
	}
	p.e.ScheduleAction(t, fn, *desc)
}

// ValidateParallel reports whether the options can run on the parallel
// sharded engine: enough switches to own every shard, a positive
// fabric lookahead, and no BER injection (its fault stream is a single
// shared RNG, which shards cannot consume deterministically). It is a
// no-op for serial options.
func (o Options) ValidateParallel() error {
	o.fill()
	if o.Shards <= 1 {
		if o.transportName() == "socket" {
			return fmt.Errorf("core: Options.Transport \"socket\" needs Options.Shards > 1 (the serial engine has no shards to distribute)")
		}
		return nil
	}
	if o.DeepPHY && o.BER > 0 {
		return fmt.Errorf("core: Options.BER is not supported with Shards > 1 (the symbol-error RNG is a single stream shards cannot share deterministically)")
	}
	switch o.transportName() {
	case "inproc":
	case "socket":
		if _, err := buildSocketSpec(o); err != nil {
			return err
		}
	default:
		return fmt.Errorf("core: unknown Options.Transport %q (want \"inproc\" or \"socket\")", o.Transport)
	}
	topo := o.topology()
	if err := topo.Validate(); err != nil {
		return err
	}
	assign, err := phys.AssignShards(&topo, o.Shards)
	if err != nil {
		return err
	}
	if _, err := phys.Lookahead(&topo, assign); err != nil {
		return err
	}
	return nil
}

// newParallel assembles a cluster over the parallel sharded engine:
// one kernel and one phys.Net per shard, the fabric split by
// phys.AssignShards, every node built on its shard's kernel, and a
// parsim.Engine coordinating lookahead windows and barrier exchange.
// Misconfigured options panic, mirroring New; Scenario.Run surfaces
// the same conditions as errors via ValidateParallel.
func newParallel(opts Options) *Cluster {
	// The checks below are exactly ValidateParallel's, derived once
	// from the assignment/lookahead this build needs anyway; Scenario
	// surfaces the same conditions as errors before reaching here.
	if opts.DeepPHY && opts.BER > 0 {
		panic("core: Options.BER is not supported with Shards > 1 (the symbol-error RNG is a single stream shards cannot share deterministically)")
	}
	c := &Cluster{Opts: opts}
	topo := opts.topology()
	if err := topo.Validate(); err != nil {
		panic(err)
	}
	assign, err := phys.AssignShards(&topo, opts.Shards)
	if err != nil {
		panic(err)
	}
	lookahead, err := phys.Lookahead(&topo, assign)
	if err != nil {
		panic(err)
	}
	kernels := make([]*sim.Kernel, opts.Shards)
	nets := make([]*phys.Net, opts.Shards)
	for i := range kernels {
		// Every shard derives its seed from the run seed; the streams
		// are unused by the sharded model (see ValidateParallel's BER
		// gate) but kept distinct for any future per-shard noise.
		kernels[i] = sim.NewKernel(opts.Seed + uint64(i)<<32)
		nets[i] = phys.NewNet(kernels[i])
		nets[i].DeepPHY = opts.DeepPHY
	}
	// The transport hosts the shards: in-process goroutines by default,
	// plus one worker process per shard on the socket transport. The
	// socket workers rebuild this exact cluster from the serialized spec
	// and launch lazily on the first barrier, so a launch failure flows
	// down the engine's normal failure path.
	var tr shardnet.Transport
	var sock *shardnet.Socket
	var spec []byte
	switch opts.transportName() {
	case "inproc":
	case "socket":
		spec, err = buildSocketSpec(opts)
		if err != nil {
			panic(err)
		}
		sock = shardnet.NewSocket(kernels, nets, shardnet.SocketConfig{
			Cmd:       opts.ShardWorker,
			Spec:      spec,
			Seed:      opts.Seed,
			Wire:      topo.WireVersion(),
			Lookahead: lookahead,
		})
		tr = sock
	default:
		panic(fmt.Sprintf("core: unknown Options.Transport %q (want \"inproc\" or \"socket\")", opts.Transport))
	}
	eng, err := parsim.NewWithTransport(kernels, nets, lookahead, tr)
	if err != nil {
		panic(err)
	}
	ph, err := phys.BuildFabricSharded(nets, topo, assign)
	if err != nil {
		eng.Shutdown()
		panic(err)
	}
	ph.RouteSink = eng.DeferRoute
	eng.Transport().BindRoutes(func(at sim.Time, op phys.RouteOp) {
		// A zero timestamp is the historical apply-on-receipt write.
		// A timestamped write lands at its exact instant on the owning
		// shard's kernel — the same instant the serial engine applies
		// it — ahead of any model event there (priority -1, like plan
		// actions). Program's flight arithmetic guarantees at is still
		// in the owning kernel's future at the barrier.
		if at == 0 {
			op.Apply(ph)
			return
		}
		k := kernels[assign.SwitchShard[op.Switch]]
		if at <= k.Now() {
			op.Apply(ph)
			return
		}
		k.AtPri(at, -1, 0, func() { op.Apply(ph) })
	})
	if sock != nil {
		sock.SetFingerprint(shardnet.Fingerprint(ph, opts.Seed, lookahead, spec))
	}
	if opts.Telemetry != nil {
		// Wall-clock plane only: the recorder observes window/run/barrier
		// spans and changes neither simulation behavior nor Report bytes.
		// It stays out of the shard-worker spec — each worker measures
		// its own runs and ships summaries in the MsgDone telemetry
		// block.
		eng.SetRecorder(opts.Telemetry)
	}
	c.Phys = ph
	c.Net = nets[0]
	c.Nets = nets
	c.Assign = assign
	c.par = &parsimEngine{eng}
	c.eng = c.par
	c.buildNodes(func(n int) *sim.Kernel { return kernels[assign.NodeShard[n]] })
	return c
}

// EventsFired returns the total number of simulation events executed,
// summed over every shard's kernel (one kernel on the serial engine).
func (c *Cluster) EventsFired() uint64 {
	var n uint64
	seen := map[*sim.Kernel]bool{}
	for _, nd := range c.Nodes {
		if !seen[nd.K] {
			seen[nd.K] = true
			n += nd.K.Fired
		}
	}
	return n
}

// ParStats returns the parallel engine's window/barrier statistics
// (fabric-wide sums), or nil on the serial engine.
func (c *Cluster) ParStats() *parsim.Stats {
	if c.par == nil {
		return nil
	}
	st := c.par.e.Stats
	return &st
}

// ShardParStats returns the deterministic per-shard telemetry plane —
// one parsim.ShardStat per shard — or nil on the serial engine. Safe
// whenever the driver may observe the simulation (shards parked).
func (c *Cluster) ShardParStats() []parsim.ShardStat {
	if c.par == nil {
		return nil
	}
	return c.par.e.ShardStats()
}

// OnBarrier installs fn as an observer of the parallel engine's
// barriers, chained before any previously installed observer; it
// reports false on the serial engine. fn runs on the driver goroutine
// with all kernels parked on at; frames/routes are the barrier drain's
// batch sizes and action marks fences forced by coordinator work.
// Observing is behavior-neutral — fn must not mutate model state.
func (c *Cluster) OnBarrier(fn func(at sim.Time, frames, routes int, action bool)) bool {
	if c.par == nil {
		return false
	}
	prev := c.par.e.OnFence
	c.par.e.OnFence = func(at sim.Time, frames, routes int, action bool) {
		fn(at, frames, routes, action)
		if prev != nil {
			prev(at, frames, routes, action)
		}
	}
	return true
}

// Lookahead returns the parallel engine's window bound (0 on the
// serial engine).
func (c *Cluster) Lookahead() sim.Time {
	if c.par == nil {
		return 0
	}
	return c.par.e.Lookahead()
}
