package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/phys"
	"repro/internal/sim"
)

// TestCrashNodeRouteRaceEquivalence is the regression test for the
// crash-node divergence the frame-conservation ledger root-caused at 96
// nodes (and which the seed batteries never hit at 48): when the ring
// heals around a crashed node under live broadcast traffic, the healing
// node rewrites a VC route on a switch owned by another shard while one
// of its own frames is already in flight across the trunk toward that
// switch. The sharded engine used to apply the write at the next window
// barrier — after the frame's mid-window receive — so the frame was
// steered to the crashed node's dark port and died (one extra
// egress_dark, one fewer broadcast_strip than serial). Trunk-crossing
// writes now land as timestamped circuit-setup cells at the same
// virtual instant on every engine (phys.Cluster.Program), and the
// in-flight frame keeps the stale route in serial and sharded runs
// alike.
//
// The scenario is the minimal replayable plan distilled from the E16
// scaling experiment: publisher 0's hop crosses the trunk into the
// crashed node's switch, the 200 m trunks leave a 1 µs flight for a
// publish to be airborne when node 0 adopts the healed ring, and the
// 100 µs publish cadence makes that overlap certain rather than lucky.
func TestCrashNodeRouteRaceEquivalence(t *testing.T) {
	run := func(nodes, shards int) *Report {
		t.Helper()
		topo := phys.Sharded(8, nodes/8, 1, 50)
		for i := range topo.Trunks {
			topo.Trunks[i].FiberM = 200
		}
		rep, err := Scenario{
			Name: "route-race",
			Opts: Options{Fabric: &topo, Seed: 1, Shards: shards,
				HeartbeatInterval: 1 * sim.Millisecond},
			BootWindow: 100 * sim.Millisecond,
			Plan:       Plan{CrashNode(6*sim.Millisecond, nodes-1)},
			Loads: []Load{&PubSubLoad{
				Publisher: 0, Topic: 1, Every: 100 * sim.Microsecond,
				Subscribers: []int{1, nodes / 2, nodes - 2},
			}},
			For: 18 * sim.Millisecond,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	for _, nodes := range []int{48, 96} {
		nodes := nodes
		t.Run(fmt.Sprintf("%dnodes", nodes), func(t *testing.T) {
			serial := run(nodes, 1)
			sharded := run(nodes, 8)
			if !bytes.Equal(serial.JSON(), sharded.JSON()) {
				t.Errorf("serial vs 8-shard report diverged\n--- serial ---\n%s--- sharded ---\n%s",
					serial.JSON(), sharded.JSON())
			}
			if fr := serial.Frames; fr == nil || !fr.Conserved {
				t.Fatalf("frame ledger not conserved: %+v", fr)
			}
		})
	}
}
