package core

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/detmap"
	"repro/internal/rostering"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Scenario binds a cluster configuration, a declarative fault Plan and
// a set of workload generators into one reproducible run. Run boots
// the cluster, installs the plan (offsets are relative to the end of
// boot), starts every load, advances virtual time, then quiesces,
// settles and audits — and returns a machine-readable Report that is
// byte-identical across same-seed runs. It is the top of the public
// API: everything the paper claims ("no down time and no loss of
// data" under switch failures, crashes and assimilation) is a Scenario
// whose Report proves or refutes it.
type Scenario struct {
	// Name labels the report.
	Name string
	// Opts configures the cluster (see Options).
	Opts Options
	// BootWindow bounds boot; 0 selects the Boot default.
	BootWindow sim.Time
	// Plan is the fault/repair schedule, validated before anything is
	// installed. Offsets are relative to the end of boot.
	Plan Plan
	// Loads are started together right after boot.
	Loads []Load
	// For is how long the scenario runs after boot (default 30 ms).
	For sim.Time
	// Settle is extra drain time after the loads quiesce, so in-flight
	// traffic lands in the report (default 5 ms).
	Settle sim.Time
	// OnCluster, if set, sees the assembled cluster before boot —
	// install subscriptions, groups or tracers here.
	OnCluster func(*Cluster)
	// OnBoot, if set, runs right after a successful boot, before the
	// plan is installed.
	OnBoot func(*Cluster)
	// OnEvent, if set, observes every plan event as it fires.
	OnEvent func(Event)
}

// EventReport is one fired plan event in a Report. HealNS is the time
// from the event to the last roster adoption before the next event (or
// the end of the run) — the self-healing window the event caused; 0
// when the event triggered no re-rostering.
type EventReport struct {
	AtNS   int64  `json:"at_ns"`
	Event  string `json:"event"`
	HealNS int64  `json:"heal_ns,omitempty"`
}

// Report is the deterministic, machine-readable outcome of a Scenario.
// Two runs with the same Options.Seed and the same Plan/Loads yield
// byte-identical JSON.
type Report struct {
	Name     string `json:"name,omitempty"`
	Seed     uint64 `json:"seed"`
	Nodes    int    `json:"nodes"`
	Switches int    `json:"switches"`
	// Fabric names the topology shape; Trunks counts its inter-switch
	// trunks (0 on the uniform paper segment).
	Fabric string `json:"fabric,omitempty"`
	Trunks int    `json:"trunks,omitempty"`
	// Wire names the wire-format version when the fabric runs anything
	// newer than the original v1 format (omitted for v1, keeping the
	// historical reports byte-identical).
	Wire string `json:"wire,omitempty"`
	// BootNS is when the cluster settled online; EndNS when the run
	// (including settle) finished.
	BootNS int64 `json:"boot_ns"`
	EndNS  int64 `json:"end_ns"`
	// RingSize and Roster describe the final logical ring.
	RingSize int    `json:"ring_size"`
	Roster   string `json:"roster"`
	// Healed reports whether the cluster ended settled (see
	// Cluster.Healed).
	Healed bool `json:"healed"`
	// Drops are congestion drops (must stay 0 — the slide-8
	// guarantee); Lost are frames destroyed by failures; Delivered is
	// total fabric deliveries.
	Drops     uint64 `json:"congestion_drops"`
	Lost      uint64 `json:"failure_losses"`
	Delivered uint64 `json:"frames_delivered"`
	// Frames is the frame-lifecycle ledger: where every frame the run
	// created ended up, by typed cause (see internal/frameacct). Like
	// the counters above it is a fabric-wide sum, so it is part of the
	// serial/sharded byte-identical surface.
	Frames *FrameReport `json:"frame_accounting,omitempty"`
	// Events are the fired plan events with their heal windows.
	Events []EventReport `json:"events,omitempty"`
	// Loads are the per-load delivery reports.
	Loads []LoadReport `json:"loads,omitempty"`

	// Partition observability (parallel engine only; zero values on
	// serial). Excluded from the JSON on purpose: the defining
	// equivalence property is that serial and sharded reports are
	// byte-identical, so anything engine-specific may only surface in
	// Summary.
	Shards       int     `json:"-"` // shard count the run used
	Partition    string  `json:"-"` // switch→shard map, "0,0,1,1"
	LookaheadNS  int64   `json:"-"` // window bound; sim.MaxTime = decoupled
	CutLinks     int     `json:"-"` // links crossing shards
	MinCutFiberM float64 `json:"-"` // shortest cross-shard fiber, meters

	// Det is the deterministic telemetry plane (parallel engine only;
	// nil on serial): per-shard, per-window sim-time metrics sampled at
	// barriers, byte-reproducible for a given simulation. Like the
	// partition fields above it stays out of the JSON so serial and
	// sharded reports remain byte-identical; it prints in Summary.
	// Telemetry is the same plane copied into the JSON when
	// Options.TelemetryInReport opts in — such reports only byte-match
	// other runs with the same Shards value.
	Det       *TelemetryReport `json:"-"`
	Telemetry *TelemetryReport `json:"telemetry,omitempty"`
}

// TelemetryReport is the deterministic telemetry plane of a parallel
// run: the engine's fabric-wide window/barrier counters, the per-shard
// detail, and the heal-span latency histogram over the run's plan
// events. Every field derives from virtual-plane quantities only
// (kernel fired counts, barrier batch sizes, sim-time spans), so the
// section is byte-reproducible across runs and transports; the socket
// transport's I/O byte counters are deliberately excluded.
type TelemetryReport struct {
	// Per-window counters: Windows are granted parallel windows,
	// Advances dead-time clock hops that granted no execution.
	Windows  uint64 `json:"windows"`
	Advances uint64 `json:"advances,omitempty"`
	// Per-barrier counters: Barriers are all synchronization points,
	// Fences the subset forced by mutating coordinator work; Frames and
	// Routes sum the barrier drains' cross-shard batch sizes.
	Barriers uint64 `json:"barriers"`
	Fences   uint64 `json:"fences,omitempty"`
	Frames   uint64 `json:"frames"`
	Routes   uint64 `json:"routes"`
	// Actions counts executed coordinator closures.
	Actions uint64 `json:"actions,omitempty"`
	// LookaheadNS is the window bound the engine ran under.
	LookaheadNS int64 `json:"lookahead_ns"`
	// Shards is the per-shard detail, indexed by shard id.
	Shards []ShardTelemetry `json:"shards"`
	// HealNS is the distribution of the run's heal-span latencies (the
	// nonzero EventReport.HealNS values), as fixed power-of-two buckets.
	HealNS *telemetry.HistReport `json:"heal_ns,omitempty"`
}

// ShardTelemetry is one shard's slice of the deterministic plane.
type ShardTelemetry struct {
	Shard       int    `json:"shard"`
	Events      uint64 `json:"events"`
	Windows     uint64 `json:"windows"`
	BusyWindows uint64 `json:"busy_windows"`
	Frames      uint64 `json:"frames,omitempty"`
	Routes      uint64 `json:"routes,omitempty"`
	// EvPerWindow is the shard's window-occupancy histogram: events
	// executed per granted window, bucket 0 counting idle windows.
	EvPerWindow telemetry.HistReport `json:"events_per_window"`
}

// telemetryReport assembles the deterministic plane from the parallel
// engine's counters; nil on the serial engine. events supplies the
// heal-span latencies.
func telemetryReport(c *Cluster, events []EventReport) *TelemetryReport {
	st := c.ParStats()
	if st == nil {
		return nil
	}
	tr := &TelemetryReport{
		Windows:     st.Windows,
		Advances:    st.Advances,
		Barriers:    st.Barriers,
		Fences:      st.Fences,
		Frames:      st.Frames,
		Routes:      st.Routes,
		Actions:     st.Actions,
		LookaheadNS: int64(c.Lookahead()),
	}
	for _, s := range c.ShardParStats() {
		tr.Shards = append(tr.Shards, ShardTelemetry{
			Shard:       s.Shard,
			Events:      s.Events,
			Windows:     s.Windows,
			BusyWindows: s.BusyWindows,
			Frames:      s.Frames,
			Routes:      s.Routes,
			EvPerWindow: *s.EvPerWindow.Report(),
		})
	}
	var heal telemetry.Hist
	for _, e := range events {
		if e.HealNS > 0 {
			heal.Observe(uint64(e.HealNS))
		}
	}
	if heal.N > 0 {
		tr.HealNS = heal.Report()
	}
	return tr
}

// FrameReport is the Report's frame-accounting section: the fabric-wide
// conservation ledger plus per-device loss detail. Maps hold only
// nonzero counters, keyed by the stable frameacct cause/kind names
// (encoding/json sorts map keys, so the section is deterministic).
type FrameReport struct {
	// Origins is fresh traffic put on a wire (offers minus transit
	// relaunches); Offered counts every Send including relaunches.
	Origins    uint64 `json:"origins"`
	Offered    uint64 `json:"offered"`
	Relaunched uint64 `json:"relaunched,omitempty"`
	// WireDelivered counts frames that survived their flight and
	// reached a receiving handler.
	WireDelivered uint64 `json:"wire_delivered"`
	// Consumed counts legitimate frame ends by kind; Losses counts
	// typed deaths by cause.
	Consumed map[string]uint64 `json:"consumed,omitempty"`
	Losses   map[string]uint64 `json:"losses,omitempty"`
	// HostCopies counts broadcast copies observed by transit hosts
	// (the frame itself continued its tour).
	HostCopies uint64 `json:"host_copies,omitempty"`
	// Residual gauges: frames still in FIFOs, on fibers, or inside
	// device latency stages when the report was taken.
	InFifo   int64 `json:"in_fifo,omitempty"`
	InFlight int64 `json:"in_flight,omitempty"`
	InDevice int64 `json:"in_device,omitempty"`
	// Conserved is the machine-checked invariant: origins all end as
	// consumption, a typed loss, or a residual.
	Conserved bool `json:"conserved"`
	// NodeLosses / SwitchLosses break MAC and switch losses down per
	// device ("n3/unrouted_transit", "sw1/unrouted"), from the per-device
	// diagnostic counters (engine-independent, like everything above).
	NodeLosses   map[string]uint64 `json:"node_losses,omitempty"`
	SwitchLosses map[string]uint64 `json:"switch_losses,omitempty"`
}

// frameReport builds the Report section from the cluster's ledger.
func frameReport(c *Cluster) *FrameReport {
	a := c.FrameAcct()
	fr := &FrameReport{
		Origins:       a.Origins(),
		Offered:       a.Offered,
		Relaunched:    a.Relaunched,
		WireDelivered: a.WireDelivered,
		Consumed:      a.ConsumeMap(),
		Losses:        a.LossMap(),
		HostCopies:    a.HostCopies,
		InFifo:        a.InFifo,
		InFlight:      a.InFlight,
		InDevice:      a.InDevice,
		Conserved:     a.Conserved(),
	}
	add := func(m *map[string]uint64, key string, v uint64) {
		if v == 0 {
			return
		}
		if *m == nil {
			*m = map[string]uint64{}
		}
		(*m)[key] = v
	}
	for i, nd := range c.Nodes {
		add(&fr.NodeLosses, fmt.Sprintf("n%d/unrouted_transit", i), nd.Station.Unrouted)
		add(&fr.NodeLosses, fmt.Sprintf("n%d/hop_expired", i), nd.Station.Expired)
	}
	for s, sw := range c.Phys.Switches {
		add(&fr.SwitchLosses, fmt.Sprintf("sw%d/unrouted", s), sw.Unrouted)
		add(&fr.SwitchLosses, fmt.Sprintf("sw%d/flood_expired", s), sw.FloodExpired)
		add(&fr.SwitchLosses, fmt.Sprintf("sw%d/flood_deduped", s), sw.FloodDeduped)
	}
	return fr
}

// JSON renders the report as indented JSON with a trailing newline.
func (r *Report) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil { // a Report is always marshalable
		panic(err)
	}
	return append(b, '\n')
}

// Summary renders a human-readable digest of the report.
func (r *Report) Summary() string {
	var b strings.Builder
	name := r.Name
	if name == "" {
		name = "scenario"
	}
	fabric := ""
	if r.Fabric != "" && r.Fabric != "uniform" {
		fabric = fmt.Sprintf(" (%s fabric, %d trunks)", r.Fabric, r.Trunks)
	}
	if r.Wire != "" {
		fabric += fmt.Sprintf(" [wire %s]", r.Wire)
	}
	fmt.Fprintf(&b, "%s: %d nodes × %d switches%s, seed %d\n", name, r.Nodes, r.Switches, fabric, r.Seed)
	fmt.Fprintf(&b, "  online after %v\n", sim.Time(r.BootNS))
	if r.Shards > 1 {
		la := "unbounded (shards fully decoupled)"
		if r.LookaheadNS != int64(sim.MaxTime) {
			la = sim.Time(r.LookaheadNS).String()
		}
		fmt.Fprintf(&b, "  %d shards: partition [%s], cut %d links (min fiber %.0f m), lookahead %s\n",
			r.Shards, r.Partition, r.CutLinks, r.MinCutFiberM, la)
	}
	if d := r.Det; d != nil {
		fmt.Fprintf(&b, "  engine: %d windows (%d advances), %d barriers (%d fences), %d actions; %d frames + %d routes crossed shards\n",
			d.Windows, d.Advances, d.Barriers, d.Fences, d.Actions, d.Frames, d.Routes)
		for _, s := range d.Shards {
			fmt.Fprintf(&b, "    shard %d: %d events, busy %d/%d windows, occupancy %s ev/window\n",
				s.Shard, s.Events, s.BusyWindows, s.Windows, histLine(s.EvPerWindow))
		}
		if h := d.HealNS; h != nil && h.Count > 0 {
			fmt.Fprintf(&b, "    heal spans: %d observed, mean %v, max %v\n",
				h.Count, sim.Time(h.Sum/h.Count), sim.Time(h.Max))
		}
	}
	for _, e := range r.Events {
		fmt.Fprintf(&b, "  t=%-12v %s", sim.Time(e.AtNS), e.Event)
		if e.HealNS > 0 {
			fmt.Fprintf(&b, "  (ring healed in %v)", sim.Time(e.HealNS))
		}
		b.WriteByte('\n')
	}
	for _, l := range r.Loads {
		fmt.Fprintf(&b, "  load %s: sent %d, delivered %d, gaps %d", l.Name, l.Sent, l.Delivered, l.Gaps)
		if l.Iters > 0 {
			fmt.Fprintf(&b, ", iters %d", l.Iters)
		}
		if l.Files > 0 {
			fmt.Fprintf(&b, ", files %d (%d B)", l.Files, l.Bytes)
		}
		if l.MaxLatencyNS > 0 {
			fmt.Fprintf(&b, ", max latency %v", sim.Time(l.MaxLatencyNS))
		}
		b.WriteByte('\n')
	}
	healed := "healed"
	if !r.Healed {
		healed = "NOT HEALED"
	}
	fmt.Fprintf(&b, "  final ring %s (size %d, %s)\n", r.Roster, r.RingSize, healed)
	fmt.Fprintf(&b, "  congestion drops %d, failure losses %d, frames delivered %d\n",
		r.Drops, r.Lost, r.Delivered)
	if fr := r.Frames; fr != nil {
		conserved := "conserved"
		if !fr.Conserved {
			conserved = "NOT CONSERVED"
		}
		fmt.Fprintf(&b, "  frames: %d origins (+%d relaunches), %d wire-delivered, %s\n",
			fr.Origins, fr.Relaunched, fr.WireDelivered, conserved)
		if line := countLine(fr.Consumed); line != "" {
			fmt.Fprintf(&b, "    consumed  %s\n", line)
		}
		if line := countLine(fr.Losses); line != "" {
			fmt.Fprintf(&b, "    losses    %s\n", line)
		}
		if fr.InFifo != 0 || fr.InFlight != 0 || fr.InDevice != 0 {
			fmt.Fprintf(&b, "    residual  in-fifo %d, in-flight %d, in-device %d\n",
				fr.InFifo, fr.InFlight, fr.InDevice)
		}
	}
	return b.String()
}

// histLine renders a HistReport as a compact mean/max digest.
func histLine(h telemetry.HistReport) string {
	if h.Count == 0 {
		return "mean 0, max 0"
	}
	return fmt.Sprintf("mean %d, max %d", h.Sum/h.Count, h.Max)
}

// countLine renders a counter map as "name 3, name 7" in key order.
func countLine(m map[string]uint64) string {
	var b strings.Builder
	for _, k := range detmap.SortedKeys(m) {
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %d", k, m[k])
	}
	return b.String()
}

// reportWire names the cluster's wire-format version for a Report:
// empty for the historical v1 (so pre-versioning reports stay byte
// identical), the version string otherwise.
func reportWire(c *Cluster) string {
	if v := c.WireVersion(); v != wire.V1 {
		return v.String()
	}
	return ""
}

// Run executes the scenario and returns its report.
func (s Scenario) Run() (*Report, error) {
	// A scenario is user input end to end, so a malformed fabric is an
	// error here, not the panic New reserves for programmatic misuse.
	// The resolved topology is validated — Options.Wire included — so
	// e.g. an explicit v1 on a >255-node fabric fails with the
	// per-version address-space error instead of panicking in New.
	{
		opts := s.Opts
		opts.fill()
		topo := opts.topology()
		if err := topo.Validate(); err != nil {
			return nil, err
		}
	}
	if err := s.Opts.ValidateParallel(); err != nil {
		return nil, err
	}
	c := New(s.Opts)
	defer c.Close()
	if s.OnCluster != nil {
		s.OnCluster(c)
	}
	// Record every roster adoption (chaining any hooks OnCluster
	// installed) to attribute heal windows to plan events. Adoptions
	// are kept per node: each node's hook fires on its own shard's
	// kernel under the parallel engine, so the slices are single-writer
	// (and the heal-window scan below is order-insensitive).
	adopts := make([][]sim.Time, len(c.Nodes))
	for i, nd := range c.Nodes {
		i, nd := i, nd
		prev := nd.OnRoster
		nd.OnRoster = func(r *rostering.Roster) {
			adopts[i] = append(adopts[i], nd.K.Now())
			if prev != nil {
				prev(r)
			}
		}
	}
	if s.OnEvent != nil {
		prev := c.OnEvent
		c.OnEvent = func(e Event) {
			s.OnEvent(e)
			if prev != nil {
				prev(e)
			}
		}
	}
	if err := c.Boot(s.BootWindow); err != nil {
		return nil, err
	}
	if s.OnBoot != nil {
		s.OnBoot(c)
	}
	bootNS := c.Now()
	runFor := s.For
	if runFor <= 0 {
		runFor = 30 * sim.Millisecond
	}
	settle := s.Settle
	if settle <= 0 {
		settle = 5 * sim.Millisecond
	}
	// Every plan event must fit in the run: an event past For+Settle
	// would silently never fire and vanish from the report.
	for i, e := range s.Plan {
		if e.At > runFor+settle {
			return nil, fmt.Errorf("core: scenario plan event %d (%v at %v) is beyond For+Settle (%v) and would never fire",
				i, e, e.At, runFor+settle)
		}
	}
	if err := c.Install(s.Plan); err != nil {
		return nil, err
	}
	for _, l := range s.Loads {
		if err := l.check(c); err != nil {
			return nil, err
		}
	}
	actives := make([]*ActiveLoad, len(s.Loads))
	for i, l := range s.Loads {
		actives[i] = c.startLoad(l)
	}
	c.Run(runFor)
	if err := c.Err(); err != nil {
		return nil, err
	}
	for _, a := range actives {
		a.Quiesce()
	}
	c.Run(settle)
	if err := c.Err(); err != nil {
		return nil, err
	}

	rep := &Report{
		Name:      s.Name,
		Seed:      c.Opts.Seed,
		Nodes:     c.Opts.Nodes,
		Switches:  c.Opts.Switches,
		Fabric:    c.FabricName(),
		Trunks:    c.Phys.NumTrunks(),
		Wire:      reportWire(c),
		BootNS:    int64(bootNS),
		EndNS:     int64(c.Now()),
		RingSize:  c.RingSize(),
		Roster:    c.Roster(),
		Healed:    c.Healed(),
		Drops:     c.Drops(),
		Lost:      c.Lost(),
		Delivered: c.Delivered(),
		Frames:    frameReport(c),
	}
	if c.Assign != nil {
		rep.Shards = c.Assign.Shards
		rep.Partition = c.Assign.Partition()
		rep.LookaheadNS = int64(c.Lookahead())
		rep.CutLinks = c.Assign.CutLinks
		rep.MinCutFiberM = c.Assign.MinCutFiberM
	}
	applied := c.Applied()
	for i, ae := range applied {
		er := EventReport{AtNS: int64(ae.At), Event: ae.Event.String()}
		window := c.Now()
		if i+1 < len(applied) {
			window = applied[i+1].At
		}
		for _, nodeAdopts := range adopts {
			for _, at := range nodeAdopts {
				if at > ae.At && at <= window && int64(at-ae.At) > er.HealNS {
					er.HealNS = int64(at - ae.At)
				}
			}
		}
		rep.Events = append(rep.Events, er)
	}
	for _, a := range actives {
		rep.Loads = append(rep.Loads, *a.Report())
	}
	rep.Det = telemetryReport(c, rep.Events)
	if c.Opts.TelemetryInReport {
		rep.Telemetry = rep.Det
	}
	return rep, nil
}

// Snapshot captures the cluster's current state as a Report — the
// deterministic JSON form for programs that drive a cluster directly
// (per-node handles, installed plans, StartLoad) instead of through
// Scenario.Run. Fired plan events are included without heal-window
// attribution; pass each finished load's ActiveLoad to append its
// delivery report.
func (c *Cluster) Snapshot(name string, loads ...*ActiveLoad) *Report {
	rep := &Report{
		Name:      name,
		Seed:      c.Opts.Seed,
		Nodes:     c.Opts.Nodes,
		Switches:  c.Opts.Switches,
		Fabric:    c.FabricName(),
		Trunks:    c.Phys.NumTrunks(),
		Wire:      reportWire(c),
		EndNS:     int64(c.Now()),
		RingSize:  c.RingSize(),
		Roster:    c.Roster(),
		Healed:    c.Healed(),
		Drops:     c.Drops(),
		Lost:      c.Lost(),
		Delivered: c.Delivered(),
		Frames:    frameReport(c),
	}
	for _, ae := range c.Applied() {
		rep.Events = append(rep.Events, EventReport{AtNS: int64(ae.At), Event: ae.Event.String()})
	}
	for _, a := range loads {
		rep.Loads = append(rep.Loads, *a.Report())
	}
	rep.Det = telemetryReport(c, nil)
	if c.Opts.TelemetryInReport {
		rep.Telemetry = rep.Det
	}
	return rep
}
