// Package shardnet is the transport layer of the parallel sharded
// engine (internal/parsim): the full coordinator⇄shard conversation —
// window grants, remote-frame batches, deferred-route capture,
// coordinator-action fences, per-shard stats and shutdown — behind one
// Transport interface, so the same barrier protocol can run over
// in-process channels or across OS processes.
//
// Two implementations ship:
//
//   - Inproc is today's engine: one goroutine per shard, captures in
//     per-shard slices, zero serialization. It is the default and is
//     bit-for-bit the behavior the serial-equivalence batteries pin.
//
//   - Socket runs every shard additionally in its own worker process
//     (cmd/ampshard) on loopback TCP. Cross-shard phys.Frames travel
//     as real v2 MicroPackets through the internal/wire codec
//     registry, wrapped — like every control message — in the
//     versioned control envelope wire.ControlV1. The coordinator keeps
//     a full local replica of the fabric (driver probes and loads are
//     arbitrary Go closures over cluster state, which cannot cross a
//     process boundary), and every worker holds the same replica but
//     advances only its own shard's kernel; at each barrier the
//     coordinator byte-compares the workers' wire-encoded captures
//     against its own, so any divergence between the replicas — a
//     decode bug, version skew, nondeterminism — fails the run at the
//     exact window it appears instead of silently corrupting the
//     Report.
//
// The determinism discipline that makes the protocol this small is the
// one ampvet machine-checks: shard context only ever writes through
// the sanctioned capture surface (RemoteFrame, DeferRoute), and
// everything else happens with every kernel parked on one instant.
package shardnet

import (
	"repro/internal/phys"
	"repro/internal/sim"
)

// FrameRec is one captured cross-shard frame: the phys.Frame plus
// everything needed to inject it on the destination kernel in the
// canonical barrier order (arrival, transmit start, source shard,
// capture sequence) — and, for the socket transport, to reconstruct
// the injection in another process (the port UIDs; Dst and Link are
// local pointers, resolved from DstUID on the worker side).
type FrameRec struct {
	SrcUID  uint32
	DstUID  uint32
	Dst     *phys.Port
	F       phys.Frame
	Link    *phys.Link
	Epoch   uint64
	Arrival sim.Time
	TxAt    sim.Time
	Src     int
	Seq     uint64
}

// RouteRec is one barrier-deferred crossbar write with its source
// shard (the capture queue it came from; application order is
// source-shard FIFO) and the virtual instant the write lands. At == 0
// applies on receipt, at the barrier; a positive At is scheduled on
// the owning shard's kernel at exactly that instant (see
// phys.Cluster.Program for why trunk-crossing writes are timestamped).
type RouteRec struct {
	Src int
	At  sim.Time
	Op  phys.RouteOp
}

// Action is one serialized coordinator action, mirrored to every shard
// worker at a fence. The kind/payload vocabulary belongs to the layer
// driving the engine (internal/core); the transport only moves the
// bytes.
type Action struct {
	Kind uint8
	Data []byte
}

// ShardStats counts one shard's transport work.
type ShardStats struct {
	// Windows is the number of grants the shard executed; Frames and
	// Routes the captures it produced.
	Windows uint64
	Frames  uint64
	Routes  uint64
	// BytesOut and BytesIn count control-envelope traffic to and from
	// the shard's worker process (zero on the inproc transport).
	BytesOut uint64
	BytesIn  uint64
}

// Transport is the full coordinator⇄shard conversation of the barrier
// protocol. All methods are driver-side: they run single-threaded on
// the coordinator between windows, never from shard context.
type Transport interface {
	// BindRoutes sets how collected RouteOps are applied at Deliver
	// (the parallel engine binds them to the built phys.Cluster,
	// scheduling timestamped writes on the owning shard's kernel).
	BindRoutes(apply func(at sim.Time, op phys.RouteOp))

	// DeferRoute captures a crossbar write aimed at a remote switch,
	// landing at virtual time at (0 = on receipt, at the barrier);
	// wire it to phys.Cluster.RouteSink. It is the only Transport
	// method shard context may call.
	DeferRoute(srcShard int, at sim.Time, op phys.RouteOp)

	// Grant runs every shard to target (inclusive) and returns when
	// all are parked there. A shard that panics or disconnects turns
	// into an error naming it — never a hang.
	Grant(target sim.Time) error

	// Advance moves every shard's clock to t without executing events
	// (the engine's dead-time hop onto a coordinator action's instant).
	Advance(t sim.Time) error

	// Fence mirrors coordinator actions to every shard at the parked
	// instant now. The coordinator has already applied them locally;
	// workers apply their serialized forms, and their synchronous
	// captures are checked by the following Collect.
	Fence(now sim.Time, acts []Action) error

	// Collect drains everything captured since the last barrier:
	// frames in per-source-shard capture order (the engine sorts them
	// canonically) and routes in source-shard FIFO order. On the
	// socket transport this is also the verification point: the
	// workers' wire-encoded captures must byte-match the local ones.
	Collect() ([]FrameRec, []RouteRec, error)

	// Deliver applies a barrier batch: routes first, then frames in
	// the engine's canonical order, each scheduled on its destination
	// kernel at its exact arrival time.
	Deliver(frames []FrameRec, routes []RouteRec) error

	// ShardStats returns per-shard transport counters.
	ShardStats() []ShardStats

	// Distributed reports whether shards live in other processes — in
	// which case every coordinator action must carry a serialized
	// descriptor.
	Distributed() bool

	// Close shuts the transport down: inproc stops the shard workers;
	// socket additionally dismisses and reaps the worker processes.
	Close() error
}
