package shardnet

import (
	"encoding/binary"
	"fmt"

	"repro/internal/frameacct"
	"repro/internal/sim"
	"repro/internal/wire"
)

// The socket transport's message vocabulary: one byte of message type
// inside the wire.ControlV1 envelope. Payload layouts are defined
// below; every multi-byte field is little-endian via encoding/binary,
// and cross-shard frames embed real v2 MicroPackets produced by the
// internal/wire codec registry.
const (
	// MsgHello is the worker's opener: shard id and protocol version.
	MsgHello = 0x01
	// MsgSpec carries the serialized cluster spec (opaque JSON owned by
	// internal/core) from coordinator to worker.
	MsgSpec = 0x02
	// MsgReady is the worker's handshake close: shard id, wire-format
	// version, seed, topology fingerprint and lookahead, all verified
	// against the coordinator's own values.
	MsgReady = 0x03
	// MsgRun grants a window: run the worker's shard to the target.
	MsgRun = 0x04
	// MsgDone answers MsgRun with the window's capture block.
	MsgDone = 0x05
	// MsgAdvance moves the worker's shard clock without executing.
	MsgAdvance = 0x06
	// MsgAdvanced acknowledges MsgAdvance.
	MsgAdvanced = 0x07
	// MsgApply fences serialized coordinator actions at the parked
	// instant.
	MsgApply = 0x08
	// MsgApplied answers MsgApply with the actions' capture block.
	MsgApplied = 0x09
	// MsgDeliver ships a barrier batch (routes + frames for the
	// worker's shard); it needs no acknowledgement — the stream is
	// ordered, so the batch lands before the next grant.
	MsgDeliver = 0x0A
	// MsgBye dismisses the worker.
	MsgBye = 0x0B
	// MsgError reports a worker-side failure as text; the run fails.
	MsgError = 0x0C
)

// ProtoVersion is the shard-worker protocol version carried in
// MsgHello; coordinator and worker must agree exactly.
//
// Version history:
//
//	1: initial protocol.
//	2: MsgDone carries the shard's frame-accounting ledger snapshot
//	   (frameacct.SnapshotLen bytes) between the fired count and the
//	   capture block, so the coordinator can byte-compare conservation
//	   counters per window.
//	3: MsgDone carries a fixed-size telemetry summary (TelemetrySummary,
//	   TelemetrySummaryLen bytes: worker-measured run and idle wall
//	   nanoseconds) between the fired count and the acct snapshot. The
//	   summary is wall-clock data: the coordinator feeds it to the
//	   telemetry recorder only and structurally excludes it from the
//	   replica byte-comparison, so two runs of the same simulation still
//	   verify even though their wall readings differ.
const ProtoVersion = 3

// Worker launch environment: the coordinator passes the connect
// address and shard id to cmd/ampshard through these variables.
const (
	EnvAddr  = "AMPSHARD_ADDR"
	EnvShard = "AMPSHARD_SHARD"
)

// TransportWire is the wire-format version cross-shard frames travel
// as on the socket transport, regardless of the fabric's own version:
// v2's 16-bit addresses cover every buildable fabric.
const TransportWire = wire.V2

// Ready is the decoded MsgReady handshake close.
type Ready struct {
	Shard     int
	Wire      wire.Version
	Seed      uint64
	TopoHash  uint64
	Lookahead sim.Time
}

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// cursor is a bounds-checked little-endian reader over one payload.
type cursor struct {
	buf []byte
	err error
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if len(c.buf) < n {
		c.err = fmt.Errorf("shardnet: truncated message payload")
		return nil
	}
	out := c.buf[:n]
	c.buf = c.buf[n:]
	return out
}

func (c *cursor) u8() uint8 {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *cursor) u16() uint16 {
	b := c.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (c *cursor) time() sim.Time { return sim.Time(c.u64()) }

func (c *cursor) close() error {
	if c.err != nil {
		return c.err
	}
	if len(c.buf) != 0 {
		return fmt.Errorf("shardnet: %d trailing bytes in message payload", len(c.buf))
	}
	return nil
}

// EncodeHello frames a MsgHello payload.
func EncodeHello(shard int) []byte {
	var b []byte
	b = appendU16(b, uint16(shard))
	b = appendU16(b, ProtoVersion)
	return b
}

// DecodeHello parses a MsgHello payload.
func DecodeHello(p []byte) (shard, proto int, err error) {
	c := &cursor{buf: p}
	shard = int(c.u16())
	proto = int(c.u16())
	return shard, proto, c.close()
}

// EncodeReady frames a MsgReady payload.
func EncodeReady(r Ready) []byte {
	var b []byte
	b = appendU16(b, uint16(r.Shard))
	b = append(b, byte(r.Wire))
	b = appendU64(b, r.Seed)
	b = appendU64(b, r.TopoHash)
	b = appendU64(b, uint64(r.Lookahead))
	return b
}

// DecodeReady parses a MsgReady payload.
func DecodeReady(p []byte) (Ready, error) {
	c := &cursor{buf: p}
	r := Ready{
		Shard:     int(c.u16()),
		Wire:      wire.Version(c.u8()),
		Seed:      c.u64(),
		TopoHash:  c.u64(),
		Lookahead: sim.Time(c.u64()),
	}
	return r, c.close()
}

// EncodeTime frames the single-timestamp payload shared by MsgRun,
// MsgAdvance and MsgAdvanced.
func EncodeTime(t sim.Time) []byte { return appendU64(nil, uint64(t)) }

// DecodeTime parses a single-timestamp payload.
func DecodeTime(p []byte) (sim.Time, error) {
	c := &cursor{buf: p}
	t := c.time()
	return t, c.close()
}

// TelemetrySummary is the worker-measured wall-clock block of one
// MsgDone (protocol v3): how long the worker's kernel ran for the
// window, and how long the worker sat idle between its previous done
// send and this grant (its view of barrier wait plus coordinator
// latency). Wall-clock only — never compared across replicas, never
// part of any Report surface.
type TelemetrySummary struct {
	RunNS  uint64
	IdleNS uint64
}

// TelemetrySummaryLen is the fixed encoded size of a TelemetrySummary.
const TelemetrySummaryLen = 16

// EncodeTelemetrySummary appends the fixed-size telemetry block to b.
func EncodeTelemetrySummary(b []byte, t TelemetrySummary) []byte {
	b = appendU64(b, t.RunNS)
	return appendU64(b, t.IdleNS)
}

// DecodeTelemetrySummary parses a fixed-size telemetry block.
func DecodeTelemetrySummary(p []byte) (TelemetrySummary, error) {
	c := &cursor{buf: p}
	t := TelemetrySummary{RunNS: c.u64(), IdleNS: c.u64()}
	return t, c.close()
}

// EncodeDone frames a MsgDone payload: the granted target, the shard
// kernel's cumulative event count, the worker's wall-clock telemetry
// summary (exactly TelemetrySummaryLen bytes), the shard's
// frame-accounting ledger snapshot (exactly frameacct.SnapshotLen
// bytes), and the capture block.
func EncodeDone(target sim.Time, fired uint64, tel TelemetrySummary, acct, capture []byte) []byte {
	var b []byte
	b = appendU64(b, uint64(target))
	b = appendU64(b, fired)
	b = EncodeTelemetrySummary(b, tel)
	b = append(b, acct...)
	return append(b, capture...)
}

// DecodeDone parses a MsgDone payload. The acct snapshot and capture
// block alias p.
func DecodeDone(p []byte) (target sim.Time, fired uint64, tel TelemetrySummary, acct, capture []byte, err error) {
	c := &cursor{buf: p}
	target = c.time()
	fired = c.u64()
	tel.RunNS = c.u64()
	tel.IdleNS = c.u64()
	acct = c.take(frameacct.SnapshotLen)
	if c.err != nil {
		return 0, 0, TelemetrySummary{}, nil, nil, c.err
	}
	return target, fired, tel, acct, c.buf, nil
}

// EncodeApply frames a MsgApply payload: the fence instant and the
// serialized actions in application order.
func EncodeApply(now sim.Time, acts []Action) []byte {
	var b []byte
	b = appendU64(b, uint64(now))
	b = appendU16(b, uint16(len(acts)))
	for _, a := range acts {
		b = append(b, a.Kind)
		b = appendU32(b, uint32(len(a.Data)))
		b = append(b, a.Data...)
	}
	return b
}

// DecodeApply parses a MsgApply payload.
func DecodeApply(p []byte) (sim.Time, []Action, error) {
	c := &cursor{buf: p}
	now := c.time()
	n := int(c.u16())
	acts := make([]Action, 0, n)
	for i := 0; i < n; i++ {
		kind := c.u8()
		data := c.take(int(c.u32()))
		acts = append(acts, Action{Kind: kind, Data: data})
	}
	return now, acts, c.close()
}

// EncodeApplied frames a MsgApplied payload: the fence instant and the
// capture block of the actions' synchronous transmissions.
func EncodeApplied(now sim.Time, capture []byte) []byte {
	return append(appendU64(nil, uint64(now)), capture...)
}

// DecodeApplied parses a MsgApplied payload. The capture block aliases
// p.
func DecodeApplied(p []byte) (sim.Time, []byte, error) {
	c := &cursor{buf: p}
	now := c.time()
	if c.err != nil {
		return 0, nil, c.err
	}
	return now, c.buf, nil
}

// EncodeCapture serializes one capture block — the frames and routes
// of one barrier, in capture order. Frames embed their packets as
// TransportWire (v2) MicroPackets via the wire codec registry; this is
// also the byte representation the coordinator compares across
// processes, so it must be canonical (and wire.Encode is).
//
// Layout: nframes u32, frames..., nroutes u32, routes...; one frame is
//
//	srcUID u32 | dstUID u32 | arrival u64 | txAt u64 | epoch u64 |
//	seq u64 | src u16 | hops u16 | vc u16 | prio u8 | wire u16 |
//	pktLen u16 | pkt bytes
//
// and one route is
//
//	src u16 | at u64 | switch u16 | in u16 |
//	out u32 (two's complement) | vc u16 | isvc u8
func EncodeCapture(frames []FrameRec, routes []RouteRec) ([]byte, error) {
	var b []byte
	b = appendU32(b, uint32(len(frames)))
	for i := range frames {
		f := &frames[i]
		pkt, err := wire.Encode(TransportWire, f.F.Pkt)
		if err != nil {
			return nil, fmt.Errorf("shardnet: frame %d of capture: %w", i, err)
		}
		b = appendU32(b, f.SrcUID)
		b = appendU32(b, f.DstUID)
		b = appendU64(b, uint64(f.Arrival))
		b = appendU64(b, uint64(f.TxAt))
		b = appendU64(b, f.Epoch)
		b = appendU64(b, f.Seq)
		b = appendU16(b, uint16(f.Src))
		b = appendU16(b, f.F.Hops)
		b = appendU16(b, f.F.VC)
		if f.F.Prio {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendU16(b, uint16(f.F.Wire))
		b = appendU16(b, uint16(len(pkt)))
		b = append(b, pkt...)
	}
	b = appendU32(b, uint32(len(routes)))
	for _, r := range routes {
		b = appendU16(b, uint16(r.Src))
		b = appendU64(b, uint64(r.At))
		b = appendU16(b, uint16(r.Op.Switch))
		b = appendU16(b, uint16(r.Op.In))
		b = appendU32(b, uint32(int32(r.Op.Out)))
		b = appendU16(b, r.Op.VC)
		if r.Op.IsVC {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b, nil
}

// DecodeCapture parses a capture block. Frames come back with Dst and
// Link nil — the receiving process resolves them from DstUID against
// its own replica.
func DecodeCapture(p []byte) ([]FrameRec, []RouteRec, error) {
	c := &cursor{buf: p}
	nf := int(c.u32())
	var frames []FrameRec
	for i := 0; i < nf && c.err == nil; i++ {
		var f FrameRec
		f.SrcUID = c.u32()
		f.DstUID = c.u32()
		f.Arrival = c.time()
		f.TxAt = c.time()
		f.Epoch = c.u64()
		f.Seq = c.u64()
		f.Src = int(c.u16())
		f.F.Hops = c.u16()
		f.F.VC = c.u16()
		f.F.Prio = c.u8() != 0
		f.F.Wire = int(c.u16())
		pkt := c.take(int(c.u16()))
		if c.err != nil {
			break
		}
		p, v, err := wire.Decode(pkt)
		if err != nil {
			return nil, nil, fmt.Errorf("shardnet: frame %d of capture: %w", i, err)
		}
		if v != TransportWire {
			return nil, nil, fmt.Errorf("shardnet: frame %d of capture is wire %v, want %v", i, v, TransportWire)
		}
		f.F.Pkt = p
		frames = append(frames, f)
	}
	nr := int(c.u32())
	var routes []RouteRec
	for i := 0; i < nr && c.err == nil; i++ {
		var r RouteRec
		r.Src = int(c.u16())
		r.At = c.time()
		r.Op.Switch = int(c.u16())
		r.Op.In = int(c.u16())
		r.Op.Out = int(int32(c.u32()))
		r.Op.VC = c.u16()
		r.Op.IsVC = c.u8() != 0
		routes = append(routes, r)
	}
	if err := c.close(); err != nil {
		return nil, nil, err
	}
	return frames, routes, nil
}

// EncodeError frames a MsgError payload.
func EncodeError(err error) []byte { return []byte(err.Error()) }
