package shardnet

import (
	"fmt"
	"runtime/debug"
	"sync"

	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Inproc is the in-process transport: one worker goroutine per shard,
// captures in per-shard slices, no serialization. It is the default
// behavior of the parallel engine — bit-for-bit the channel-based
// machinery the serial-equivalence batteries pin — plus one repair:
// a shard that panics mid-window no longer strands the barrier; the
// panic is recovered in the worker and surfaces as a Grant error
// naming the shard and window.
type Inproc struct {
	kernels []*sim.Kernel
	nets    []*phys.Net

	frames   [][]FrameRec
	frameSeq []uint64
	routes   [][]RouteRec

	applyRoute func(at sim.Time, op phys.RouteOp)

	// Window hand-off: one target send and one done receive per worker
	// per window. Workers park between windows, so driver read phases
	// and single-core hosts cost nothing; on multicore the wakeups
	// overlap and the per-window barrier stays in the low microseconds
	// against window workloads hundreds of events deep.
	work []chan sim.Time
	done chan error

	// collectFrames/collectRoutes are the reused barrier-exchange
	// buffers: Collect concatenates into them instead of allocating a
	// fresh batch per barrier. The engine consumes the batch (sort +
	// Deliver) before the next Collect, so reuse never aliases live
	// data.
	collectFrames []FrameRec
	collectRoutes []RouteRec

	stats  []ShardStats
	closed sync.Once

	// rec is the wall-clock telemetry recorder (nil: record nothing).
	// Each shard worker stamps its own run spans into its private
	// buffer — the same single-writer discipline as the capture queues —
	// so recording takes no locks on the window hot path.
	rec *telemetry.Recorder
}

// SetRecorder attaches the wall-clock span recorder. Call before the
// first Grant, from the driver goroutine.
func (t *Inproc) SetRecorder(r *telemetry.Recorder) {
	r.EnsureShards(len(t.kernels))
	t.rec = r
}

// NewInproc builds the in-process transport over one kernel+Net pair
// per shard, installing itself as every Net's RemoteExchange. With
// more than one shard it starts one worker goroutine per shard; call
// Close when the simulation is done.
func NewInproc(kernels []*sim.Kernel, nets []*phys.Net) *Inproc {
	t := &Inproc{
		kernels:  kernels,
		nets:     nets,
		frames:   make([][]FrameRec, len(kernels)),
		frameSeq: make([]uint64, len(kernels)),
		routes:   make([][]RouteRec, len(kernels)),
		stats:    make([]ShardStats, len(kernels)),
	}
	for i, n := range nets {
		n.Shard = i
		n.Remote = &capture{t: t, shard: i}
	}
	if len(kernels) > 1 {
		t.done = make(chan error, len(kernels))
		for i := range kernels {
			ch := make(chan sim.Time)
			t.work = append(t.work, ch)
			go t.worker(i, ch)
		}
	}
	return t
}

// capture is the per-shard phys.RemoteExchange: it appends cross-shard
// frames to the source shard's private queue. Only the shard's own
// worker appends during a window, so no locking is needed.
type capture struct {
	t     *Inproc
	shard int
}

// RemoteFrame is the sanctioned frame-capture path (see the ampvet
// shardshare analyzer): the only place shard context may write
// transport state.
func (x *capture) RemoteFrame(src, dst *phys.Port, f phys.Frame, link *phys.Link, epoch uint64, arrival sim.Time) {
	t := x.t
	t.frames[x.shard] = append(t.frames[x.shard], FrameRec{
		SrcUID: src.UID(), DstUID: dst.UID(), Dst: dst, F: f, Link: link, Epoch: epoch,
		Arrival: arrival, TxAt: t.kernels[x.shard].Now(),
		Src: x.shard, Seq: t.frameSeq[x.shard],
	})
	t.frameSeq[x.shard]++
}

// DeferRoute is the sanctioned route-capture path, called (via
// phys.Cluster.RouteSink) from shard context for crossbar writes aimed
// at a remote switch.
func (t *Inproc) DeferRoute(srcShard int, at sim.Time, op phys.RouteOp) {
	t.routes[srcShard] = append(t.routes[srcShard], RouteRec{Src: srcShard, At: at, Op: op})
}

// BindRoutes sets the RouteOp applier used by Deliver.
func (t *Inproc) BindRoutes(apply func(at sim.Time, op phys.RouteOp)) { t.applyRoute = apply }

// worker runs shard i's kernel window by window.
func (t *Inproc) worker(i int, ch chan sim.Time) {
	for target := range ch {
		t.done <- t.runShard(i, target)
	}
}

// runShard executes one shard's window, converting a model panic into
// an error that names the shard and window instead of tearing the
// process down (or, worse, stranding the other shards at the barrier).
func (t *Inproc) runShard(i int, target sim.Time) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("shardnet: shard %d panicked in window ending %v: %v\n%s", i, target, r, debug.Stack())
		}
	}()
	start := t.rec.Begin()
	t.kernels[i].RunUntil(target)
	t.rec.Shard(i, telemetry.SpanRun, start, int64(target))
	return nil
}

// Grant runs every shard to target and waits for all of them.
//
// Shards with no event due in the window are not woken: cross-shard
// work only ever arrives at barriers, so a shard whose next event lies
// beyond target provably executes nothing — its clock is advanced
// directly on the coordinator, skipping the worker round-trip. During
// a decoupled phase (traffic localized to a few shards) this removes
// two channel hops and a goroutine wakeup per idle shard per window;
// the skipped shard ends the window in the identical state (clock on
// target, nothing fired) a granted run would have left.
func (t *Inproc) Grant(target sim.Time) error {
	for i := range t.stats {
		t.stats[i].Windows++
	}
	if len(t.work) == 0 {
		// Single shard: run directly; a panic propagates as it would
		// on the serial engine.
		start := t.rec.Begin()
		t.kernels[0].RunUntil(target)
		t.rec.Shard(0, telemetry.SpanRun, start, int64(target))
		return nil
	}
	granted := 0
	for i, ch := range t.work {
		if nt, ok := t.kernels[i].NextEventTime(); ok && nt <= target {
			ch <- target
			granted++
		} else {
			t.kernels[i].AdvanceTo(target)
		}
	}
	var firstErr error
	for ; granted > 0; granted-- {
		if err := <-t.done; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Advance moves every shard's clock to t without executing events.
func (t *Inproc) Advance(at sim.Time) error {
	for _, k := range t.kernels {
		k.AdvanceTo(at)
	}
	return nil
}

// Fence is a no-op in process: the coordinator's closures have already
// run against the one and only replica.
func (t *Inproc) Fence(now sim.Time, acts []Action) error { return nil }

// Collect drains the capture queues: frames concatenated per source
// shard in capture order, routes in source-shard FIFO order. The
// per-shard capture sequence restarts at every Collect: Seq is only a
// same-instant tie-break within one barrier's batch, and a per-barrier
// sequence is reproducible by a mirrored replica that captures a
// different subset of barriers per shard (a shard worker sees only its
// own shard's windows, but every fence).
func (t *Inproc) Collect() ([]FrameRec, []RouteRec, error) {
	frames := t.collectFrames[:0]
	routes := t.collectRoutes[:0]
	for s := range t.frames {
		t.stats[s].Frames += uint64(len(t.frames[s]))
		t.stats[s].Routes += uint64(len(t.routes[s]))
		frames = append(frames, t.frames[s]...)
		routes = append(routes, t.routes[s]...)
		t.frames[s] = t.frames[s][:0]
		t.routes[s] = t.routes[s][:0]
		t.frameSeq[s] = 0
	}
	t.collectFrames, t.collectRoutes = frames, routes
	return frames, routes, nil
}

// Deliver applies a barrier batch: routes first (the engine preserves
// source-shard FIFO order), then frames in the engine's canonical
// order, each scheduled on its destination kernel at its exact arrival
// time with the wire priority key (transmit start, sending-port
// identity) that slots it into the same same-instant order the serial
// engine would have used.
func (t *Inproc) Deliver(frames []FrameRec, routes []RouteRec) error {
	for _, r := range routes {
		t.applyRoute(r.At, r.Op)
	}
	for i := range frames {
		pf := &frames[i]
		// Pooled, Timer-free scheduling on the destination shard — the
		// same path a local hop takes, so cross-shard injection costs
		// no allocations either.
		pf.Dst.Net().ScheduleDelivery(pf.Arrival, pf.TxAt, pf.SrcUID, pf.Dst, pf.F, pf.Link, pf.Epoch)
	}
	return nil
}

// ShardStats returns the per-shard counters.
func (t *Inproc) ShardStats() []ShardStats {
	out := make([]ShardStats, len(t.stats))
	copy(out, t.stats)
	return out
}

// Distributed reports false: every shard lives in this process.
func (t *Inproc) Distributed() bool { return false }

// Close stops the worker goroutines. The transport must not be used
// afterwards.
func (t *Inproc) Close() error {
	t.closed.Do(func() {
		for _, ch := range t.work {
			close(ch)
		}
	})
	return nil
}
