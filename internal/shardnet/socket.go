package shardnet

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"time"

	"repro/internal/frameacct"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// SocketConfig configures the socket transport: how to launch one
// worker per shard and what the handshake must agree on.
type SocketConfig struct {
	// Cmd is the worker argv (typically the cmd/ampshard binary, or the
	// test binary itself). The connect address and shard id travel in
	// the EnvAddr/EnvShard environment variables.
	Cmd []string
	// Spec is the serialized cluster spec (opaque to this package; the
	// layer driving the engine owns the format) sent to every worker in
	// MsgSpec.
	Spec []byte
	// Seed, Wire, Lookahead and Fingerprint are the coordinator's run
	// identity; every worker's MsgReady must echo them exactly.
	Seed        uint64
	Wire        wire.Version
	Lookahead   sim.Time
	Fingerprint uint64
	// HandshakeTimeout bounds worker launch, dial and replica build
	// (default 2 minutes: a worker rebuilds the full fabric before
	// answering MsgReady). IOTimeout bounds every per-barrier read and
	// write afterwards (default 2 minutes). Both are wall-clock budgets
	// on real I/O, not simulation time.
	HandshakeTimeout time.Duration
	IOTimeout        time.Duration
	// Stderr receives the workers' stderr (default os.Stderr).
	Stderr io.Writer
}

// Socket runs every shard additionally in its own worker process over
// loopback TCP. It embeds Inproc: the coordinator keeps the full local
// replica (driver probes and loads are closures over cluster state) and
// the workers mirror it, each advancing only its own shard's kernel;
// Collect byte-compares the workers' wire-encoded captures against the
// local ones every barrier. Workers launch lazily on the first
// transport operation, so a launch failure surfaces as that operation's
// error and flows down the engine's normal failure path.
type Socket struct {
	*Inproc
	cfg SocketConfig

	started bool
	dead    error // sticky: set on launch, handshake or barrier failure

	ln    net.Listener
	peers []*peer
	procs []*exec.Cmd

	// window counts grants, fence counts fences — both only so that a
	// divergence error can name the exact barrier it appeared at.
	window uint64
	fence  uint64

	// remote[w] is worker w's capture block from the last MsgDone or
	// MsgApplied — the shard-w slice of the barrier's capture, the part
	// worker w's replica state is authoritative for — pending
	// byte-comparison against the local shard-w slice at the next
	// Collect. barrier names the barrier for divergence errors.
	remote     [][]byte
	remoteLive bool
	barrier    string
}

// NewSocket builds the socket transport over one kernel+Net pair per
// shard. No worker is launched until the first transport operation.
func NewSocket(kernels []*sim.Kernel, nets []*phys.Net, cfg SocketConfig) *Socket {
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 2 * time.Minute
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 2 * time.Minute
	}
	if cfg.Stderr == nil {
		cfg.Stderr = os.Stderr
	}
	return &Socket{Inproc: NewInproc(kernels, nets), cfg: cfg}
}

// SetFingerprint installs the coordinator's topology fingerprint after
// construction. The fingerprint hashes the built fabric, which the
// caller typically assembles after creating the transport; workers
// launch lazily on the first transport operation, so setting it any
// time before then is safe.
func (s *Socket) SetFingerprint(fp uint64) { s.cfg.Fingerprint = fp }

// peer is one connected shard worker.
type peer struct {
	shard int
	conn  net.Conn
	s     *Socket
}

// send frames one control message to the worker under the I/O timeout.
func (p *peer) send(typ uint8, payload []byte) error {
	buf, err := wire.EncodeControl(wire.ControlV1, typ, payload)
	if err != nil {
		return fmt.Errorf("shardnet: shard %d: encode %#02x: %w", p.shard, typ, err)
	}
	// The deadline is a wall-clock budget on real socket I/O — a wedged
	// or dead worker must fail the run, never hang it. It cannot touch
	// simulation state: every kernel is parked on the barrier here.
	//ampvet:allow walltime socket write deadline bounds real I/O, kernels are parked
	if err := p.conn.SetWriteDeadline(time.Now().Add(p.s.cfg.IOTimeout)); err != nil {
		return fmt.Errorf("shardnet: shard %d: %w", p.shard, err)
	}
	if _, err := p.conn.Write(buf); err != nil {
		return fmt.Errorf("shardnet: shard %d worker unreachable: %w", p.shard, err)
	}
	if p.shard >= 0 { // still -1 before the hello names the shard
		p.s.stats[p.shard].BytesOut += uint64(len(buf))
	}
	return nil
}

// recv reads one control message, requiring type want. A worker-side
// MsgError becomes this coordinator-side error; a disconnect or timeout
// fails the run rather than hanging it.
func (p *peer) recv(want uint8, timeout time.Duration) ([]byte, error) {
	// Same wall-clock discipline as send: the deadline bounds real I/O
	// while every kernel is parked.
	//ampvet:allow walltime socket read deadline bounds real I/O, kernels are parked
	if err := p.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return nil, fmt.Errorf("shardnet: shard %d: %w", p.shard, err)
	}
	typ, payload, err := wire.ReadControl(p.conn)
	if err != nil {
		return nil, fmt.Errorf("shardnet: shard %d worker lost: %w", p.shard, err)
	}
	if p.shard >= 0 { // still -1 before the hello names the shard
		p.s.stats[p.shard].BytesIn += uint64(len(payload) + 12)
	}
	if typ == MsgError {
		return nil, fmt.Errorf("shardnet: shard %d worker failed: %s", p.shard, payload)
	}
	if typ != want {
		return nil, fmt.Errorf("shardnet: shard %d: got message %#02x, want %#02x", p.shard, typ, want)
	}
	return payload, nil
}

// fail records the first barrier failure; every later operation returns
// it without touching the (possibly half-dead) worker fleet.
func (s *Socket) fail(err error) error {
	if s.dead == nil {
		s.dead = err
	}
	return err
}

// ensureStarted lazily launches, connects and handshakes the worker
// fleet on the first transport operation.
func (s *Socket) ensureStarted() error {
	if s.dead != nil {
		return s.dead
	}
	if s.started {
		return nil
	}
	if err := s.start(); err != nil {
		s.teardown()
		return s.fail(err)
	}
	s.started = true
	return nil
}

func (s *Socket) start() error {
	n := len(s.kernels)
	if len(s.cfg.Cmd) == 0 {
		return fmt.Errorf("shardnet: socket transport needs a worker command")
	}
	if len(s.cfg.Spec) == 0 {
		return fmt.Errorf("shardnet: socket transport needs a serialized cluster spec")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("shardnet: listen: %w", err)
	}
	s.ln = ln
	addr := ln.Addr().String()
	for i := 0; i < n; i++ {
		cmd := exec.Command(s.cfg.Cmd[0], s.cfg.Cmd[1:]...)
		cmd.Env = append(os.Environ(),
			EnvAddr+"="+addr,
			EnvShard+"="+strconv.Itoa(i),
		)
		cmd.Stdout = s.cfg.Stderr
		cmd.Stderr = s.cfg.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("shardnet: launch worker %d: %w", i, err)
		}
		s.procs = append(s.procs, cmd)
	}
	// Bound the whole accept+hello phase: a worker that dies before
	// dialing must fail the handshake, not park the coordinator.
	//ampvet:allow walltime accept deadline bounds worker launch, nothing is simulating yet
	deadline := time.Now().Add(s.cfg.HandshakeTimeout)
	if tl, ok := ln.(*net.TCPListener); ok {
		if err := tl.SetDeadline(deadline); err != nil {
			return fmt.Errorf("shardnet: listener deadline: %w", err)
		}
	}
	s.peers = make([]*peer, n)
	for i := 0; i < n; i++ {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("shardnet: waiting for %d of %d workers to dial: %w", n-i, n, err)
		}
		p := &peer{shard: -1, conn: conn, s: s}
		hello, err := p.recv(MsgHello, s.cfg.HandshakeTimeout)
		if err != nil {
			conn.Close()
			return fmt.Errorf("shardnet: handshake: %w", err)
		}
		shard, proto, err := DecodeHello(hello)
		if err != nil {
			conn.Close()
			return fmt.Errorf("shardnet: handshake: %w", err)
		}
		if proto != ProtoVersion {
			conn.Close()
			return fmt.Errorf("shardnet: worker speaks protocol %d, coordinator %d", proto, ProtoVersion)
		}
		if shard < 0 || shard >= n || s.peers[shard] != nil {
			conn.Close()
			return fmt.Errorf("shardnet: worker announced invalid or duplicate shard %d", shard)
		}
		p.shard = shard
		s.peers[shard] = p
		// Ship the spec immediately so replica builds overlap across
		// workers while the remaining ones dial.
		if err := p.send(MsgSpec, s.cfg.Spec); err != nil {
			return err
		}
	}
	for _, p := range s.peers {
		payload, err := p.recv(MsgReady, s.cfg.HandshakeTimeout)
		if err != nil {
			return err
		}
		r, err := DecodeReady(payload)
		if err != nil {
			return fmt.Errorf("shardnet: shard %d ready: %w", p.shard, err)
		}
		switch {
		case r.Shard != p.shard:
			return fmt.Errorf("shardnet: shard %d worker answered ready for shard %d", p.shard, r.Shard)
		case r.Wire != s.cfg.Wire:
			return fmt.Errorf("shardnet: shard %d worker built wire %v, coordinator %v", p.shard, r.Wire, s.cfg.Wire)
		case r.Seed != s.cfg.Seed:
			return fmt.Errorf("shardnet: shard %d worker seeded %d, coordinator %d", p.shard, r.Seed, s.cfg.Seed)
		case r.Lookahead != s.cfg.Lookahead:
			return fmt.Errorf("shardnet: shard %d worker lookahead %v, coordinator %v", p.shard, r.Lookahead, s.cfg.Lookahead)
		case r.TopoHash != s.cfg.Fingerprint:
			return fmt.Errorf("shardnet: shard %d worker replica fingerprint %016x, coordinator %016x "+
				"(binary or spec skew: the worker did not rebuild the coordinator's cluster)",
				p.shard, r.TopoHash, s.cfg.Fingerprint)
		}
	}
	s.remote = make([][]byte, n)
	return nil
}

// Grant runs the window locally and on every worker, then cross-checks
// each worker's event count and stores its capture block for the next
// Collect. The MsgDone telemetry summary feeds the wall-clock recorder
// only — it is read before, and never enters, the replica comparisons.
func (s *Socket) Grant(target sim.Time) error {
	if err := s.ensureStarted(); err != nil {
		return err
	}
	rtt0 := s.rec.Begin()
	msg := EncodeTime(target)
	for _, p := range s.peers {
		if err := p.send(MsgRun, msg); err != nil {
			return s.fail(err)
		}
	}
	s.window++
	if err := s.Inproc.Grant(target); err != nil {
		return s.fail(err)
	}
	for _, p := range s.peers {
		payload, err := p.recv(MsgDone, s.cfg.IOTimeout)
		if err != nil {
			return s.fail(fmt.Errorf("%w (window %d)", err, s.window))
		}
		done, fired, tel, acct, capture, err := DecodeDone(payload)
		if err != nil {
			return s.fail(fmt.Errorf("shardnet: shard %d done: %w", p.shard, err))
		}
		if s.rec != nil {
			// Round-trip as the coordinator saw it, plus the worker's own
			// run/idle measurements re-anchored at the round-trip start
			// (worker clocks are not synchronized with ours; durations
			// are what matters).
			end := s.rec.Begin()
			s.rec.CoordSpan(p.shard, telemetry.SpanRTT, rtt0, end, int64(target))
			s.rec.CoordSpan(p.shard, telemetry.SpanWorkerRun, rtt0, rtt0+int64(tel.RunNS), int64(target))
			if tel.IdleNS > 0 {
				s.rec.CoordSpan(p.shard, telemetry.SpanWorkerIdle, rtt0-int64(tel.IdleNS), rtt0, int64(target))
			}
		}
		if done != target {
			return s.fail(fmt.Errorf("shardnet: shard %d finished window %v, granted %v", p.shard, done, target))
		}
		if fired != s.kernels[p.shard].Fired {
			return s.fail(fmt.Errorf(
				"shardnet: replica divergence at window %d: shard %d worker fired %d events, coordinator %d",
				s.window, p.shard, fired, s.kernels[p.shard].Fired))
		}
		// The frame ledger is as shard-authoritative as the fired count:
		// every Acct mutation of shard p happens in its kernel context or
		// at a mirrored fence, so the worker's snapshot must byte-equal
		// the coordinator's replica of that Net.
		if local := s.nets[p.shard].Acct.Snapshot(); !bytes.Equal(acct, local) {
			return s.fail(fmt.Errorf(
				"shardnet: replica divergence at window %d: shard %d frame ledger: %s",
				s.window, p.shard, frameacct.SnapshotDiff(local, acct)))
		}
		s.remote[p.shard] = capture
	}
	s.remoteLive, s.barrier = true, fmt.Sprintf("window %d", s.window)
	return nil
}

// Advance hops every shard's clock — local and remote — over dead time.
func (s *Socket) Advance(at sim.Time) error {
	if err := s.ensureStarted(); err != nil {
		return err
	}
	msg := EncodeTime(at)
	for _, p := range s.peers {
		if err := p.send(MsgAdvance, msg); err != nil {
			return s.fail(err)
		}
	}
	if err := s.Inproc.Advance(at); err != nil {
		return s.fail(err)
	}
	for _, p := range s.peers {
		payload, err := p.recv(MsgAdvanced, s.cfg.IOTimeout)
		if err != nil {
			return s.fail(err)
		}
		got, err := DecodeTime(payload)
		if err != nil || got != at {
			return s.fail(fmt.Errorf("shardnet: shard %d advanced to %v, want %v (err %v)", p.shard, got, at, err))
		}
	}
	return nil
}

// Fence mirrors the coordinator's actions (already applied locally by
// the engine) to every worker and stores their capture blocks for the
// next Collect.
func (s *Socket) Fence(now sim.Time, acts []Action) error {
	if err := s.ensureStarted(); err != nil {
		return err
	}
	msg := EncodeApply(now, acts)
	for _, p := range s.peers {
		if err := p.send(MsgApply, msg); err != nil {
			return s.fail(err)
		}
	}
	s.fence++
	for _, p := range s.peers {
		payload, err := p.recv(MsgApplied, s.cfg.IOTimeout)
		if err != nil {
			return s.fail(fmt.Errorf("%w (fence %d)", err, s.fence))
		}
		got, capture, err := DecodeApplied(payload)
		if err != nil {
			return s.fail(fmt.Errorf("shardnet: shard %d applied: %w", p.shard, err))
		}
		if got != now {
			return s.fail(fmt.Errorf("shardnet: shard %d fenced at %v, want %v", p.shard, got, now))
		}
		s.remote[p.shard] = capture
	}
	s.remoteLive, s.barrier = true, fmt.Sprintf("fence %d", s.fence)
	return nil
}

// Collect drains the local capture queues and byte-compares every
// worker's pending capture block against the local shard slice it is
// authoritative for: after a grant worker w ran shard w's window, and
// after a fence worker w applied the actions against its live shard-w
// state — either way its block must equal the local capture filtered
// to source shard w. (Fence frames sourced by other shards are
// verified by those shards' own workers; a worker's replica of a
// remote shard is construction context with stale in-window state, so
// its bytes for them are junk by design.) Any mismatch is a replica
// divergence and names the shard and barrier.
func (s *Socket) Collect() ([]FrameRec, []RouteRec, error) {
	frames, routes, err := s.Inproc.Collect()
	if err != nil {
		return nil, nil, err
	}
	if !s.remoteLive {
		return frames, routes, nil
	}
	s.remoteLive = false
	for _, p := range s.peers {
		local, err := EncodeCapture(shardFrames(frames, p.shard), shardRoutes(routes, p.shard))
		if err != nil {
			return nil, nil, s.fail(fmt.Errorf("shardnet: encoding local capture: %w", err))
		}
		if !bytes.Equal(local, s.remote[p.shard]) {
			return nil, nil, s.fail(fmt.Errorf(
				"shardnet: replica divergence at %s: shard %d worker capture is %d bytes, coordinator %d; first difference at byte %d",
				s.barrier, p.shard, len(s.remote[p.shard]), len(local), diffAt(local, s.remote[p.shard])))
		}
		s.remote[p.shard] = nil
	}
	return frames, routes, nil
}

// Deliver applies the barrier batch locally, then mirrors it to the
// workers: every worker receives all routes (its replica's crossbars
// must track the whole fabric) but only the frames destined to its own
// shard. The stream is ordered, so no acknowledgement is needed — the
// batch lands before the next grant.
func (s *Socket) Deliver(frames []FrameRec, routes []RouteRec) error {
	if err := s.Inproc.Deliver(frames, routes); err != nil {
		return err
	}
	if !s.started || (len(frames) == 0 && len(routes) == 0) {
		return nil
	}
	for _, p := range s.peers {
		var mine []FrameRec
		for _, f := range frames {
			if f.Dst.Net().Shard == p.shard {
				mine = append(mine, f)
			}
		}
		if len(mine) == 0 && len(routes) == 0 {
			continue
		}
		block, err := EncodeCapture(mine, routes)
		if err != nil {
			return s.fail(fmt.Errorf("shardnet: encoding deliver batch: %w", err))
		}
		if err := p.send(MsgDeliver, block); err != nil {
			return s.fail(err)
		}
	}
	return nil
}

// Distributed reports true: coordinator actions must carry serialized
// descriptors so the workers can mirror them.
func (s *Socket) Distributed() bool { return true }

// Close dismisses the workers, reaps their processes and stops the
// local shard goroutines.
func (s *Socket) Close() error {
	if s.started && s.dead == nil {
		for _, p := range s.peers {
			_ = p.send(MsgBye, nil)
		}
	}
	s.teardown()
	return s.Inproc.Close()
}

// teardown closes connections and reaps worker processes, killing any
// that outlive a short grace period.
func (s *Socket) teardown() {
	for _, p := range s.peers {
		if p != nil {
			p.conn.Close()
		}
	}
	s.peers = nil
	if s.ln != nil {
		s.ln.Close()
		s.ln = nil
	}
	for _, cmd := range s.procs {
		// A worker that ignores its closed connection must not wedge
		// shutdown: give it a wall-clock grace period, then kill it.
		//ampvet:allow walltime process-reap grace period, the simulation is already over
		watchdog := time.AfterFunc(5*time.Second, func() { _ = cmd.Process.Kill() })
		_ = cmd.Wait()
		watchdog.Stop()
	}
	s.procs = nil
}

func shardFrames(frames []FrameRec, shard int) []FrameRec {
	var out []FrameRec
	for _, f := range frames {
		if f.Src == shard {
			out = append(out, f)
		}
	}
	return out
}

func shardRoutes(routes []RouteRec, shard int) []RouteRec {
	var out []RouteRec
	for _, r := range routes {
		if r.Src == shard {
			out = append(out, r)
		}
	}
	return out
}

func diffAt(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
