package shardnet

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"repro/internal/phys"
	"repro/internal/sim"
)

// Fingerprint hashes everything that must agree between the
// coordinator's replica and a shard worker's for their kernels to stay
// in lockstep: the built fabric (sizes, attach matrix, fiber lengths,
// trunks, rotation, shard assignment, wire version), the run identity
// (seed, lookahead) and the raw spec bytes the worker rebuilt from.
// The worker echoes its own fingerprint in MsgReady; a mismatch —
// version skew between binaries, a drifting constructor, a corrupted
// spec — fails the handshake instead of producing a divergence
// thousands of windows in.
func Fingerprint(c *phys.Cluster, seed uint64, lookahead sim.Time, spec []byte) uint64 {
	h := fnv.New64a()
	var b [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}

	str(c.Topo.Shape)
	u64(uint64(c.Topo.Nodes))
	u64(uint64(c.Topo.Switches))
	u64(uint64(c.Topo.Wire))
	if c.Topo.CounterRotating {
		u64(1)
	} else {
		u64(0)
	}
	for n := range c.NodeLinks {
		for s, l := range c.NodeLinks[n] {
			if l == nil {
				continue
			}
			u64(uint64(n))
			u64(uint64(s))
			f64(l.Meters)
		}
	}
	u64(uint64(len(c.Trunks)))
	for _, t := range c.Trunks {
		u64(uint64(t.A))
		u64(uint64(t.B))
		u64(uint64(t.PortA))
		u64(uint64(t.PortB))
		f64(t.Link.Meters)
	}
	if c.Assign != nil {
		u64(uint64(c.Assign.Shards))
		for _, s := range c.Assign.SwitchShard {
			u64(uint64(s))
		}
		for _, s := range c.Assign.NodeShard {
			u64(uint64(s))
		}
	} else {
		u64(0)
	}
	u64(seed)
	u64(uint64(lookahead))
	u64(uint64(len(spec)))
	h.Write(spec)
	return h.Sum64()
}
