package shardnet

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/frameacct"
	"repro/internal/micropacket"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Payload-layout goldens: these pin the shard-worker message bodies the
// same way internal/wire's controlGoldens pin the envelope. A change
// here breaks every deployed cmd/ampshard mid-handshake, so it must
// come with a ProtoVersion bump, not an edit.
func TestProtoGoldenVectors(t *testing.T) {
	cases := []struct {
		name string
		got  []byte
		hex  string
	}{
		{"hello", EncodeHello(3), "03000300"},
		{"time", EncodeTime(1000), "e803000000000000"},
		{"ready", EncodeReady(Ready{
			Shard: 2, Wire: wire.V2,
			Seed: 0x1122334455667788, TopoHash: 0xDEADBEEFCAFEF00D, Lookahead: 250,
		}), "0200" + "02" + "8877665544332211" + "0df0fecaefbeadde" + "fa00000000000000"},
		{"apply", EncodeApply(7, []Action{{Kind: 0x02, Data: []byte("x")}}),
			"0700000000000000" + "0100" + "02" + "01000000" + "78"},
		// proto 3: the fixed-size telemetry summary sits between fired
		// and the ledger snapshot, then the capture block.
		{"done", EncodeDone(9, 5, TelemetrySummary{RunNS: 0x0102, IdleNS: 0x0304},
			make([]byte, frameacct.SnapshotLen), []byte{0xAA}),
			"0900000000000000" + "0500000000000000" +
				"0201000000000000" + "0403000000000000" +
				strings.Repeat("00", frameacct.SnapshotLen) + "aa"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := hex.EncodeToString(tc.got); got != tc.hex {
				t.Fatalf("encode = %s, want %s", got, tc.hex)
			}
		})
	}
}

func TestHandshakeRoundTrip(t *testing.T) {
	shard, proto, err := DecodeHello(EncodeHello(7))
	if err != nil || shard != 7 || proto != ProtoVersion {
		t.Fatalf("hello = (%d, %d, %v)", shard, proto, err)
	}
	want := Ready{Shard: 3, Wire: wire.V2, Seed: 42, TopoHash: 0xABCD, Lookahead: 250}
	got, err := DecodeReady(EncodeReady(want))
	if err != nil || got != want {
		t.Fatalf("ready = (%+v, %v), want %+v", got, err, want)
	}
	if _, err := DecodeReady(EncodeReady(want)[:10]); err == nil {
		t.Fatal("truncated ready decoded")
	}
	if _, _, err := DecodeHello(append(EncodeHello(1), 0)); err == nil {
		t.Fatal("hello with trailing byte decoded")
	}
}

func TestApplyRoundTrip(t *testing.T) {
	prop := func(now uint32, kinds []uint8, blob []byte) bool {
		if len(kinds) > 64 {
			kinds = kinds[:64]
		}
		acts := make([]Action, len(kinds))
		for i, k := range kinds {
			var data []byte
			if len(blob) > 0 {
				data = blob[:(i*7)%len(blob)]
			}
			acts[i] = Action{Kind: k, Data: data}
		}
		enc := EncodeApply(sim.Time(now), acts)
		gotNow, gotActs, err := DecodeApply(enc)
		if err != nil || gotNow != sim.Time(now) || len(gotActs) != len(acts) {
			return false
		}
		for i := range acts {
			if gotActs[i].Kind != acts[i].Kind || !bytes.Equal(gotActs[i].Data, acts[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestDoneTelemetryRoundTrip pins the protocol-3 MsgDone layout as a
// property: for any target/fired/telemetry/ledger/capture combination
// the decode inverts the encode, the telemetry block never bleeds into
// the acct or capture bytes (the slices the replica comparison reads),
// and truncating inside any fixed-size region is an error.
func TestDoneTelemetryRoundTrip(t *testing.T) {
	prop := func(target, fired, runNS, idleNS uint64, acctSeed byte, capture []byte) bool {
		acct := bytes.Repeat([]byte{acctSeed}, frameacct.SnapshotLen)
		tel := TelemetrySummary{RunNS: runNS, IdleNS: idleNS}
		enc := EncodeDone(sim.Time(target), fired, tel, acct, capture)
		gotTarget, gotFired, gotTel, gotAcct, gotCapture, err := DecodeDone(enc)
		return err == nil &&
			gotTarget == sim.Time(target) && gotFired == fired && gotTel == tel &&
			bytes.Equal(gotAcct, acct) && bytes.Equal(gotCapture, capture)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}

	full := EncodeDone(7, 3, TelemetrySummary{RunNS: 1, IdleNS: 2},
		make([]byte, frameacct.SnapshotLen), nil)
	for cut := 0; cut < len(full); cut++ {
		if _, _, _, _, _, err := DecodeDone(full[:cut]); err == nil {
			t.Fatalf("done truncated to %d of %d bytes decoded", cut, len(full))
		}
	}
	// The standalone telemetry-block codec must agree with DecodeDone
	// and reject any other size.
	tel := TelemetrySummary{RunNS: 0xFEED, IdleNS: 0xBEEF}
	blk := EncodeTelemetrySummary(nil, tel)
	if len(blk) != TelemetrySummaryLen {
		t.Fatalf("telemetry block is %d bytes, want %d", len(blk), TelemetrySummaryLen)
	}
	got, err := DecodeTelemetrySummary(blk)
	if err != nil || got != tel {
		t.Fatalf("telemetry round-trip = (%+v, %v), want %+v", got, err, tel)
	}
	if _, err := DecodeTelemetrySummary(blk[:TelemetrySummaryLen-1]); err == nil {
		t.Fatal("truncated telemetry block decoded")
	}
	if _, err := DecodeTelemetrySummary(append(blk, 0)); err == nil {
		t.Fatal("oversized telemetry block decoded")
	}
}

// testCapture builds a capture block from hand-made records around real
// MicroPackets.
func testCapture(t *testing.T) ([]FrameRec, []RouteRec) {
	t.Helper()
	pkt := &micropacket.Packet{Type: micropacket.TypeData, Src: 3, Dst: 300, Tag: 9}
	pkt2 := &micropacket.Packet{Type: micropacket.TypeRostering, Src: 300, Dst: 3, Tag: 1}
	frames := []FrameRec{
		{SrcUID: 11, DstUID: 22, F: phys.Frame{Pkt: pkt, Wire: 30, Hops: 2, VC: 5, Prio: true},
			Epoch: 7, Arrival: 1234, TxAt: 1200, Src: 0, Seq: 0},
		{SrcUID: 33, DstUID: 44, F: phys.Frame{Pkt: pkt2, Wire: 18},
			Epoch: 1, Arrival: 999, TxAt: 990, Src: 1, Seq: 4},
	}
	routes := []RouteRec{
		{Src: 0, Op: phys.RouteOp{Switch: 2, In: 3, Out: 4}},
		{Src: 1, At: 14302970, Op: phys.RouteOp{Switch: 1, In: 0, Out: -1, VC: 7, IsVC: true}},
	}
	return frames, routes
}

// TestCaptureRoundTrip proves the capture block is lossless for
// everything a worker needs (Dst and Link come back nil, resolved from
// the UIDs against the worker's replica) and canonical: decoding and
// re-encoding reproduces the bytes exactly — the property the socket
// transport's cross-process byte-comparison rests on.
func TestCaptureRoundTrip(t *testing.T) {
	frames, routes := testCapture(t)
	enc, err := EncodeCapture(frames, routes)
	if err != nil {
		t.Fatal(err)
	}
	gotF, gotR, err := DecodeCapture(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotF) != len(frames) || len(gotR) != len(routes) {
		t.Fatalf("decoded %d frames, %d routes; want %d, %d", len(gotF), len(gotR), len(frames), len(routes))
	}
	for i, f := range gotF {
		want := frames[i]
		if f.Dst != nil || f.Link != nil {
			t.Fatalf("frame %d: Dst/Link must decode nil", i)
		}
		if f.SrcUID != want.SrcUID || f.DstUID != want.DstUID || f.Epoch != want.Epoch ||
			f.Arrival != want.Arrival || f.TxAt != want.TxAt || f.Src != want.Src || f.Seq != want.Seq ||
			f.F.Wire != want.F.Wire || f.F.Hops != want.F.Hops || f.F.VC != want.F.VC || f.F.Prio != want.F.Prio {
			t.Fatalf("frame %d = %+v, want %+v", i, f, want)
		}
		wantPkt, _ := wire.Encode(TransportWire, want.F.Pkt)
		gotPkt, _ := wire.Encode(TransportWire, f.F.Pkt)
		if !bytes.Equal(gotPkt, wantPkt) {
			t.Fatalf("frame %d packet = %+v, want %+v", i, f.F.Pkt, want.F.Pkt)
		}
	}
	for i, r := range gotR {
		if r != routes[i] {
			t.Fatalf("route %d = %+v, want %+v", i, r, routes[i])
		}
	}
	reenc, err := EncodeCapture(gotF, gotR)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc, enc) {
		t.Fatalf("capture re-encode is not canonical:\n in  %x\n out %x", enc, reenc)
	}
}

func TestCaptureEmpty(t *testing.T) {
	enc, err := EncodeCapture(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hex.EncodeToString(enc) != "0000000000000000" {
		t.Fatalf("empty capture = %x", enc)
	}
	f, r, err := DecodeCapture(enc)
	if err != nil || f != nil || r != nil {
		t.Fatalf("empty capture decode = (%v, %v, %v)", f, r, err)
	}
}

func TestCaptureDecodeTruncated(t *testing.T) {
	frames, routes := testCapture(t)
	enc, err := EncodeCapture(frames, routes)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 5, 20, len(enc) - 1} {
		if _, _, err := DecodeCapture(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	if _, _, err := DecodeCapture(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing byte decoded")
	}
}
