// Package trace provides a structured event timeline for a running
// cluster: roster adoptions, peer liveness transitions, node lifecycle,
// failover takeovers, trunk cuts and typed frame losses, each stamped
// with virtual time. It observes the cluster through its public hooks
// (chaining any already-installed callbacks), so attaching a tracer
// changes no behavior.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/frameacct"
	"repro/internal/rostering"
	"repro/internal/sim"
)

// Kind classifies a trace event.
type Kind uint8

// Event kinds.
const (
	KindRoster Kind = iota
	KindOnline
	KindPeerDown
	KindPeerUp
	KindTakeover
	KindFrameLoss
	KindTrunkFail
	// KindWindowFence marks a parallel-engine barrier that moved state:
	// a drain that delivered cross-shard frames or deferred routes, or a
	// fence forced by mutating coordinator work. Pure-idle barriers are
	// not recorded, so the timeline stays proportional to activity.
	// Absent on the serial engine (it has no barriers).
	KindWindowFence
	// KindActionRun marks a fired plan event (a coordinator action), so
	// engine fences interleave with the roster/liveness timeline they
	// caused.
	KindActionRun
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindRoster:
		return "ROSTER"
	case KindOnline:
		return "ONLINE"
	case KindPeerDown:
		return "PEER-DOWN"
	case KindPeerUp:
		return "PEER-UP"
	case KindTakeover:
		return "TAKEOVER"
	case KindFrameLoss:
		return "FRAME-LOSS"
	case KindTrunkFail:
		return "TRUNK-FAIL"
	case KindWindowFence:
		return "FENCE"
	case KindActionRun:
		return "ACTION"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one timeline entry.
type Event struct {
	At   sim.Time
	Kind Kind
	Node int    // observing node (-1 for shard- or fabric-scoped events)
	Arg  int    // peer id / ring size / group id / loss cause / trunk id, by kind
	Text string // human-readable detail
}

// Tracer accumulates events from one cluster. Events are buffered per
// observing node — each node's hooks fire on that node's kernel, so
// the buffers are single-writer even on the parallel sharded engine —
// and merged into one (time, node)-ordered timeline on read.
type Tracer struct {
	c       *core.Cluster
	perNode [][]Event
	// perNet buffers the frame-loss timeline per shard Net: the ledger
	// Observer fires on the owning shard's kernel, so these buffers too
	// are single-writer under the parallel engine.
	perNet [][]Event
	// fabric buffers fabric-scoped events (trunk failures). Plan events
	// fire single-threaded — on the serial kernel, or at a window
	// barrier with every shard parked — so one buffer suffices.
	fabric []Event
	// Cap bounds memory per observing node; older events are discarded
	// FIFO. 0 = unbounded.
	Cap int
}

// Attach installs a tracer on every node of the cluster, chaining the
// hooks already present.
func Attach(c *core.Cluster) *Tracer {
	t := &Tracer{c: c,
		perNode: make([][]Event, len(c.Nodes)),
		perNet:  make([][]Event, len(c.Nets)),
	}
	for s, net := range c.Nets {
		s, net := s, net
		// The ledger Observer is a pure callback (no kernel events), so
		// chaining it keeps attachment behavior-neutral.
		prevObs := net.Acct.Observer
		net.Acct.Observer = func(cause frameacct.LossCause, n int) {
			t.perNet[s] = t.capped(append(t.perNet[s], Event{
				At: net.K.Now(), Kind: KindFrameLoss, Node: -1, Arg: int(cause),
				Text: fmt.Sprintf("%d frame(s) lost: %s (net %d)", n, cause, s),
			}))
			if prevObs != nil {
				prevObs(cause, n)
			}
		}
	}
	prevEvent := c.OnEvent
	c.OnEvent = func(e core.Event) {
		// Plan events fire single-threaded (serial kernel, or at a fence
		// with every shard parked), so the fabric buffer is safe here.
		t.fabric = t.capped(append(t.fabric, Event{
			At: c.Now(), Kind: KindActionRun, Node: -1, Arg: int(e.Kind),
			Text: e.String(),
		}))
		if e.Kind == core.EvFailTrunk {
			t.fabric = t.capped(append(t.fabric, Event{
				At: c.Now(), Kind: KindTrunkFail, Node: -1, Arg: e.Switch,
				Text: fmt.Sprintf("trunk %d cut", e.Switch),
			}))
		}
		if prevEvent != nil {
			prevEvent(e)
		}
	}
	// Engine barriers (parallel engine only; OnBarrier is a no-op that
	// reports false on serial). Only barriers that moved state are kept —
	// a drain that delivered something, or a coordinator-work fence — so
	// quiet runs don't flood the timeline with idle window crossings. The
	// hook runs on the driver goroutine with all shards parked, so the
	// fabric buffer stays single-writer.
	c.OnBarrier(func(at sim.Time, frames, routes int, action bool) {
		if frames == 0 && routes == 0 && !action {
			return
		}
		text := fmt.Sprintf("barrier: %d frames, %d routes", frames, routes)
		if action {
			text += " (coordinator fence)"
		}
		t.fabric = t.capped(append(t.fabric, Event{
			At: at, Kind: KindWindowFence, Node: -1, Arg: frames + routes,
			Text: text,
		}))
	})
	for i, nd := range c.Nodes {
		i, nd := i, nd
		prevRoster := nd.OnRoster
		nd.OnRoster = func(r *rostering.Roster) {
			t.add(Event{At: nd.K.Now(), Kind: KindRoster, Node: i, Arg: r.Size(),
				Text: r.String()})
			if prevRoster != nil {
				prevRoster(r)
			}
		}
		prevOnline := nd.OnOnline
		nd.OnOnline = func() {
			t.add(Event{At: nd.K.Now(), Kind: KindOnline, Node: i})
			if prevOnline != nil {
				prevOnline()
			}
		}
		prevDown := nd.OnPeerDown
		nd.OnPeerDown = func(id int) {
			t.add(Event{At: c.Now(), Kind: KindPeerDown, Node: i, Arg: id,
				Text: fmt.Sprintf("node %d declared dead by node %d", id, i)})
			if prevDown != nil {
				prevDown(id)
			}
		}
		prevUp := nd.OnPeerUp
		nd.OnPeerUp = func(id int) {
			t.add(Event{At: nd.K.Now(), Kind: KindPeerUp, Node: i, Arg: id,
				Text: fmt.Sprintf("node %d seen alive by node %d", id, i)})
			if prevUp != nil {
				prevUp(id)
			}
		}
	}
	return t
}

func (t *Tracer) add(e Event) {
	t.perNode[e.Node] = t.capped(append(t.perNode[e.Node], e))
}

// capped enforces the per-buffer Cap, discarding oldest-first.
func (t *Tracer) capped(buf []Event) []Event {
	if t.Cap > 0 && len(buf) > t.Cap {
		copy(buf, buf[len(buf)-t.Cap:])
		buf = buf[:t.Cap]
	}
	return buf
}

// NoteTakeover records a failover takeover; callers wire it from their
// group's OnTakeover hooks (the tracer cannot see group registration).
func (t *Tracer) NoteTakeover(node int, group uint8) {
	// Stamped with the observing node's clock: takeover hooks fire on
	// that node's kernel (its shard under the parallel engine).
	t.add(Event{At: t.c.Nodes[node].K.Now(), Kind: KindTakeover, Node: node, Arg: int(group),
		Text: fmt.Sprintf("node %d takes control of group %d", node, group)})
}

// Events returns the accumulated timeline, merged across nodes in
// (time, node) order — deterministic on both engines. Call it (or any
// reader built on it) only while the simulation is parked: between
// Run/Wait calls, or after Scenario.Run returns.
func (t *Tracer) Events() []Event {
	// Rebuilt on every call rather than cached: add runs on shard
	// kernels under the parallel engine, and the per-node buffers are
	// the only state it may touch (single-writer; a shared cache
	// invalidation would be a data race).
	var out []Event
	for _, evs := range t.perNode {
		out = append(out, evs...)
	}
	for _, evs := range t.perNet {
		out = append(out, evs...)
	}
	out = append(out, t.fabric...)
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].At != out[b].At {
			return out[a].At < out[b].At
		}
		return out[a].Node < out[b].Node
	})
	return out
}

// Filter returns events of the given kinds (all if none given).
func (t *Tracer) Filter(kinds ...Kind) []Event {
	if len(kinds) == 0 {
		return t.Events()
	}
	var out []Event
	for _, e := range t.Events() {
		for _, k := range kinds {
			if e.Kind == k {
				out = append(out, e)
				break
			}
		}
	}
	return out
}

// Dedup collapses identical consecutive roster adoptions from different
// nodes into a single line (they are the point of convergence), keeping
// the first and counting the rest.
func Dedup(events []Event) []Event {
	var out []Event
	var lastRoster string
	count := 0
	flush := func() {
		if count > 1 && len(out) > 0 {
			out[len(out)-1].Text += fmt.Sprintf("  (+%d nodes agree)", count-1)
		}
		count = 0
	}
	for _, e := range events {
		if e.Kind == KindRoster {
			if e.Text == lastRoster {
				count++
				continue
			}
			flush()
			lastRoster = e.Text
			count = 1
			out = append(out, e)
			continue
		}
		flush()
		lastRoster = ""
		out = append(out, e)
	}
	flush()
	return out
}

// Fprint renders a timeline.
func (t *Tracer) Fprint(w io.Writer, events []Event) {
	for _, e := range events {
		text := e.Text
		if text == "" {
			text = fmt.Sprintf("node %d", e.Node)
		}
		fmt.Fprintf(w, "  %-12v %-10s %s\n", e.At, e.Kind, text)
	}
}

// String renders the full deduplicated timeline.
func (t *Tracer) String() string {
	var b strings.Builder
	t.Fprint(&b, Dedup(t.Events()))
	return b.String()
}
