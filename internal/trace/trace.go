// Package trace provides a structured event timeline for a running
// cluster: roster adoptions, peer liveness transitions, node lifecycle
// and failover takeovers, each stamped with virtual time. It observes
// the cluster through its public hooks (chaining any already-installed
// callbacks), so attaching a tracer changes no behavior.
package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/rostering"
	"repro/internal/sim"
)

// Kind classifies a trace event.
type Kind uint8

// Event kinds.
const (
	KindRoster Kind = iota
	KindOnline
	KindPeerDown
	KindPeerUp
	KindTakeover
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindRoster:
		return "ROSTER"
	case KindOnline:
		return "ONLINE"
	case KindPeerDown:
		return "PEER-DOWN"
	case KindPeerUp:
		return "PEER-UP"
	case KindTakeover:
		return "TAKEOVER"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one timeline entry.
type Event struct {
	At   sim.Time
	Kind Kind
	Node int    // observing node
	Arg  int    // peer id / ring size / group id, by kind
	Text string // human-readable detail
}

// Tracer accumulates events from one cluster.
type Tracer struct {
	c      *core.Cluster
	events []Event
	// Cap bounds memory; older events are discarded FIFO. 0 = unbounded.
	Cap int
}

// Attach installs a tracer on every node of the cluster, chaining the
// hooks already present.
func Attach(c *core.Cluster) *Tracer {
	t := &Tracer{c: c}
	for i, nd := range c.Nodes {
		i, nd := i, nd
		prevRoster := nd.OnRoster
		nd.OnRoster = func(r *rostering.Roster) {
			t.add(Event{At: c.Now(), Kind: KindRoster, Node: i, Arg: r.Size(),
				Text: r.String()})
			if prevRoster != nil {
				prevRoster(r)
			}
		}
		prevOnline := nd.OnOnline
		nd.OnOnline = func() {
			t.add(Event{At: c.Now(), Kind: KindOnline, Node: i})
			if prevOnline != nil {
				prevOnline()
			}
		}
		prevDown := nd.OnPeerDown
		nd.OnPeerDown = func(id int) {
			t.add(Event{At: c.Now(), Kind: KindPeerDown, Node: i, Arg: id,
				Text: fmt.Sprintf("node %d declared dead by node %d", id, i)})
			if prevDown != nil {
				prevDown(id)
			}
		}
		prevUp := nd.OnPeerUp
		nd.OnPeerUp = func(id int) {
			t.add(Event{At: c.Now(), Kind: KindPeerUp, Node: i, Arg: id,
				Text: fmt.Sprintf("node %d seen alive by node %d", id, i)})
			if prevUp != nil {
				prevUp(id)
			}
		}
	}
	return t
}

func (t *Tracer) add(e Event) {
	if t.Cap > 0 && len(t.events) >= t.Cap {
		copy(t.events, t.events[1:])
		t.events = t.events[:len(t.events)-1]
	}
	t.events = append(t.events, e)
}

// NoteTakeover records a failover takeover; callers wire it from their
// group's OnTakeover hooks (the tracer cannot see group registration).
func (t *Tracer) NoteTakeover(node int, group uint8) {
	t.add(Event{At: t.c.Now(), Kind: KindTakeover, Node: node, Arg: int(group),
		Text: fmt.Sprintf("node %d takes control of group %d", node, group)})
}

// Events returns the accumulated timeline.
func (t *Tracer) Events() []Event { return t.events }

// Filter returns events of the given kinds (all if none given).
func (t *Tracer) Filter(kinds ...Kind) []Event {
	if len(kinds) == 0 {
		return t.events
	}
	var out []Event
	for _, e := range t.events {
		for _, k := range kinds {
			if e.Kind == k {
				out = append(out, e)
				break
			}
		}
	}
	return out
}

// Dedup collapses identical consecutive roster adoptions from different
// nodes into a single line (they are the point of convergence), keeping
// the first and counting the rest.
func Dedup(events []Event) []Event {
	var out []Event
	var lastRoster string
	count := 0
	flush := func() {
		if count > 1 && len(out) > 0 {
			out[len(out)-1].Text += fmt.Sprintf("  (+%d nodes agree)", count-1)
		}
		count = 0
	}
	for _, e := range events {
		if e.Kind == KindRoster {
			if e.Text == lastRoster {
				count++
				continue
			}
			flush()
			lastRoster = e.Text
			count = 1
			out = append(out, e)
			continue
		}
		flush()
		lastRoster = ""
		out = append(out, e)
	}
	flush()
	return out
}

// Fprint renders a timeline.
func (t *Tracer) Fprint(w io.Writer, events []Event) {
	for _, e := range events {
		text := e.Text
		if text == "" {
			text = fmt.Sprintf("node %d", e.Node)
		}
		fmt.Fprintf(w, "  %-12v %-10s %s\n", e.At, e.Kind, text)
	}
}

// String renders the full deduplicated timeline.
func (t *Tracer) String() string {
	var b strings.Builder
	t.Fprint(&b, Dedup(t.events))
	return b.String()
}
