package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestTimelineCapturesLifecycle(t *testing.T) {
	c := core.New(core.Options{Nodes: 3, Switches: 2})
	tr := Attach(c)
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	// Boot produces onlines and roster adoptions.
	if len(tr.Filter(KindOnline)) != 3 {
		t.Fatalf("online events = %d", len(tr.Filter(KindOnline)))
	}
	if len(tr.Filter(KindRoster)) == 0 {
		t.Fatal("no roster events at boot")
	}

	c.CrashNode(2)
	c.Run(30 * sim.Millisecond)
	downs := tr.Filter(KindPeerDown)
	if len(downs) == 0 {
		t.Fatal("no peer-down events after crash")
	}
	sawDead2 := false
	for _, e := range downs {
		if e.Arg == 2 {
			sawDead2 = true
		}
	}
	if !sawDead2 {
		t.Fatal("crash of node 2 not traced")
	}
	out := tr.String()
	for _, want := range []string{"ONLINE", "ROSTER", "PEER-DOWN"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %s:\n%s", want, out)
		}
	}
}

func TestHookChainingPreserved(t *testing.T) {
	c := core.New(core.Options{Nodes: 2, Switches: 2})
	userOnlineCalled := false
	c.Nodes[0].OnOnline = func() { userOnlineCalled = true }
	Attach(c)
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	if !userOnlineCalled {
		t.Fatal("tracer broke the user's OnOnline hook")
	}
}

func TestDedupCollapsesAgreement(t *testing.T) {
	events := []Event{
		{Kind: KindRoster, Node: 0, Text: "ring A"},
		{Kind: KindRoster, Node: 1, Text: "ring A"},
		{Kind: KindRoster, Node: 2, Text: "ring A"},
		{Kind: KindPeerDown, Node: 0, Text: "x"},
		{Kind: KindRoster, Node: 0, Text: "ring B"},
	}
	out := Dedup(events)
	if len(out) != 3 {
		t.Fatalf("dedup kept %d events: %+v", len(out), out)
	}
	if !strings.Contains(out[0].Text, "+2 nodes agree") {
		t.Fatalf("agreement count missing: %q", out[0].Text)
	}
}

func TestCapBoundsMemory(t *testing.T) {
	c := core.New(core.Options{Nodes: 2, Switches: 2})
	tr := Attach(c)
	tr.Cap = 5
	// Cap bounds each observing node's buffer (buffers are per-node so
	// shard kernels never share one): 20 events over 2 nodes keep 5
	// newest per node.
	for i := 0; i < 20; i++ {
		tr.add(Event{At: sim.Time(i), Kind: KindOnline, Node: i % 2, Arg: i})
	}
	evs := tr.Events()
	if len(evs) != 10 {
		t.Fatalf("cap not enforced: %d", len(evs))
	}
	if evs[len(evs)-1].Arg != 19 {
		t.Fatalf("newest event not retained: %+v", evs[len(evs)-1])
	}
}

func TestNoteTakeover(t *testing.T) {
	c := core.New(core.Options{Nodes: 2, Switches: 2})
	tr := Attach(c)
	tr.NoteTakeover(1, 7)
	ev := tr.Filter(KindTakeover)
	if len(ev) != 1 || ev[0].Arg != 7 {
		t.Fatalf("takeover event: %+v", ev)
	}
}

func TestKindString(t *testing.T) {
	for k := KindRoster; k <= KindTakeover; k++ {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind name")
	}
}
