package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/frameacct"
	"repro/internal/phys"
	"repro/internal/sim"
)

func TestTimelineCapturesLifecycle(t *testing.T) {
	c := core.New(core.Options{Nodes: 3, Switches: 2})
	tr := Attach(c)
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	// Boot produces onlines and roster adoptions.
	if len(tr.Filter(KindOnline)) != 3 {
		t.Fatalf("online events = %d", len(tr.Filter(KindOnline)))
	}
	if len(tr.Filter(KindRoster)) == 0 {
		t.Fatal("no roster events at boot")
	}

	c.CrashNode(2)
	c.Run(30 * sim.Millisecond)
	downs := tr.Filter(KindPeerDown)
	if len(downs) == 0 {
		t.Fatal("no peer-down events after crash")
	}
	sawDead2 := false
	for _, e := range downs {
		if e.Arg == 2 {
			sawDead2 = true
		}
	}
	if !sawDead2 {
		t.Fatal("crash of node 2 not traced")
	}
	out := tr.String()
	for _, want := range []string{"ONLINE", "ROSTER", "PEER-DOWN"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %s:\n%s", want, out)
		}
	}
}

func TestHookChainingPreserved(t *testing.T) {
	c := core.New(core.Options{Nodes: 2, Switches: 2})
	userOnlineCalled := false
	c.Nodes[0].OnOnline = func() { userOnlineCalled = true }
	Attach(c)
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	if !userOnlineCalled {
		t.Fatal("tracer broke the user's OnOnline hook")
	}
}

func TestDedupCollapsesAgreement(t *testing.T) {
	events := []Event{
		{Kind: KindRoster, Node: 0, Text: "ring A"},
		{Kind: KindRoster, Node: 1, Text: "ring A"},
		{Kind: KindRoster, Node: 2, Text: "ring A"},
		{Kind: KindPeerDown, Node: 0, Text: "x"},
		{Kind: KindRoster, Node: 0, Text: "ring B"},
	}
	out := Dedup(events)
	if len(out) != 3 {
		t.Fatalf("dedup kept %d events: %+v", len(out), out)
	}
	if !strings.Contains(out[0].Text, "+2 nodes agree") {
		t.Fatalf("agreement count missing: %q", out[0].Text)
	}
}

func TestCapBoundsMemory(t *testing.T) {
	c := core.New(core.Options{Nodes: 2, Switches: 2})
	tr := Attach(c)
	tr.Cap = 5
	// Cap bounds each observing node's buffer (buffers are per-node so
	// shard kernels never share one): 20 events over 2 nodes keep 5
	// newest per node.
	for i := 0; i < 20; i++ {
		tr.add(Event{At: sim.Time(i), Kind: KindOnline, Node: i % 2, Arg: i})
	}
	evs := tr.Events()
	if len(evs) != 10 {
		t.Fatalf("cap not enforced: %d", len(evs))
	}
	if evs[len(evs)-1].Arg != 19 {
		t.Fatalf("newest event not retained: %+v", evs[len(evs)-1])
	}
}

func TestNoteTakeover(t *testing.T) {
	c := core.New(core.Options{Nodes: 2, Switches: 2})
	tr := Attach(c)
	tr.NoteTakeover(1, 7)
	ev := tr.Filter(KindTakeover)
	if len(ev) != 1 || ev[0].Arg != 7 {
		t.Fatalf("takeover event: %+v", ev)
	}
}

// TestFrameLossAndTrunkFailTimeline drives a trunked fabric through a
// trunk cut and a node crash and requires both new kinds to appear:
// the cut as a fabric-scoped TRUNK-FAIL, and the frames the faults
// strand as FRAME-LOSS entries whose Arg carries the typed cause.
func TestFrameLossAndTrunkFailTimeline(t *testing.T) {
	topo := phys.DualRing(6, 50)
	c := core.New(core.Options{Fabric: &topo, Seed: 3})
	tr := Attach(c)
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	// Faults go through an installed plan: OnEvent (and therefore the
	// TRUNK-FAIL timeline) observes plan events, not direct calls.
	if err := c.Install(core.Plan{
		core.FailTrunk(5*sim.Millisecond, 0),
		core.CrashNode(10*sim.Millisecond, 5),
	}); err != nil {
		t.Fatal(err)
	}
	c.Run(30 * sim.Millisecond)

	cuts := tr.Filter(KindTrunkFail)
	if len(cuts) != 1 || cuts[0].Arg != 0 {
		t.Fatalf("trunk-fail events = %+v, want one for trunk 0", cuts)
	}
	losses := tr.Filter(KindFrameLoss)
	if len(losses) == 0 {
		t.Fatal("no frame-loss events after a trunk cut and a node crash")
	}
	acct := c.FrameAcct()
	for _, e := range losses {
		cause := frameacct.LossCause(e.Arg)
		if cause >= frameacct.NumCauses || acct.Losses[cause] == 0 {
			t.Fatalf("frame-loss event %+v names cause %v with a zero ledger counter", e, cause)
		}
	}
	if !strings.Contains(tr.String(), "TRUNK-FAIL") {
		t.Fatalf("timeline missing TRUNK-FAIL:\n%s", tr.String())
	}
}

// TestObserverChainingPreserved mirrors TestHookChainingPreserved for
// the ledger Observer: a user-installed loss observer must keep firing
// with a tracer attached on top.
func TestObserverChainingPreserved(t *testing.T) {
	topo := phys.DualRing(6, 50)
	c := core.New(core.Options{Fabric: &topo, Seed: 3})
	userLosses := 0
	c.Nets[0].Acct.Observer = func(frameacct.LossCause, int) { userLosses++ }
	tr := Attach(c)
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	c.CrashNode(0)
	c.Run(30 * sim.Millisecond)
	want := 0
	for _, e := range tr.Filter(KindFrameLoss) {
		if strings.Contains(e.Text, "(net 0)") {
			want++
		}
	}
	if want == 0 || userLosses != want {
		t.Fatalf("user observer saw %d losses, tracer saw %d on net 0", userLosses, want)
	}
}

// TestEngineFenceTimeline runs the same faulted scenario sharded and
// serial: the sharded timeline must interleave the plan event (ACTION)
// with state-moving engine barriers (FENCE), while the serial timeline
// — which has no barriers — records the ACTION only.
func TestEngineFenceTimeline(t *testing.T) {
	c := core.New(core.Options{Nodes: 4, Switches: 2, Shards: 2})
	defer c.Close()
	tr := Attach(c)
	if err := c.Boot(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Install(core.Plan{core.CrashNode(5*sim.Millisecond, 3)}); err != nil {
		t.Fatal(err)
	}
	c.Run(30 * sim.Millisecond)
	acts := tr.Filter(KindActionRun)
	if len(acts) != 1 || acts[0].Text != "crash-node 3" {
		t.Fatalf("action events = %+v, want one crash-node 3", acts)
	}
	fences := tr.Filter(KindWindowFence)
	if len(fences) == 0 {
		t.Fatal("no window-fence events on a sharded run with cross-shard traffic")
	}
	for _, e := range fences {
		if e.Arg == 0 && !strings.Contains(e.Text, "coordinator fence") {
			t.Fatalf("idle barrier recorded: %+v", e)
		}
	}

	s := core.New(core.Options{Nodes: 4, Switches: 2})
	trs := Attach(s)
	if err := s.Boot(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Install(core.Plan{core.CrashNode(5*sim.Millisecond, 3)}); err != nil {
		t.Fatal(err)
	}
	s.Run(30 * sim.Millisecond)
	if len(trs.Filter(KindActionRun)) != 1 {
		t.Fatalf("serial action events = %+v", trs.Filter(KindActionRun))
	}
	if got := trs.Filter(KindWindowFence); len(got) != 0 {
		t.Fatalf("serial run recorded engine fences: %+v", got)
	}
}

func TestKindString(t *testing.T) {
	for k := KindRoster; k <= KindActionRun; k++ {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind name")
	}
}
