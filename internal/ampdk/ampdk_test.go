package ampdk

import (
	"bytes"
	"testing"

	"repro/internal/micropacket"
	"repro/internal/netcache"
	"repro/internal/phys"
	"repro/internal/sim"
)

// cluster builds n nodes × s switches, boots all nodes at t=0, and
// returns them with the kernel.
func bootCluster(n, s int, cfg func(i int) Config) (*sim.Kernel, *phys.Cluster, []*Node) {
	k := sim.NewKernel(1)
	net := phys.NewNet(k)
	c := phys.BuildCluster(net, n, s, 50)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		conf := Config{ID: i}
		if cfg != nil {
			conf = cfg(i)
			conf.ID = i
		}
		nodes[i] = NewNode(k, c, conf)
	}
	for _, nd := range nodes {
		nd := nd
		k.After(0, func() { nd.Boot() })
	}
	return k, c, nodes
}

func run(k *sim.Kernel, d sim.Time) { k.RunUntil(k.Now() + d) }

func TestClusterBootsAllOnline(t *testing.T) {
	k, _, nodes := bootCluster(4, 2, nil)
	run(k, 20*sim.Millisecond)
	for i, nd := range nodes {
		if !nd.Online() {
			t.Fatalf("node %d state = %v after boot window", i, nd.State)
		}
	}
	// Exactly one founder (the lowest id), others assimilated via a
	// sponsor refresh.
	if nodes[0].RefreshedB != 0 {
		t.Fatal("founder should not receive a refresh")
	}
	refreshed := 0
	for _, nd := range nodes[1:] {
		if nd.RefreshedB > 0 {
			refreshed++
		}
	}
	if refreshed != 3 {
		t.Fatalf("refreshed nodes = %d, want 3", refreshed)
	}
}

func TestConfigDBReplicated(t *testing.T) {
	k, _, nodes := bootCluster(3, 2, nil)
	run(k, 20*sim.Millisecond)
	for i, nd := range nodes {
		info := nd.ReadConfigDB()
		if !info.Founded {
			t.Fatalf("node %d has no config DB", i)
		}
		if info.Nodes != 3 || info.Switches != 2 {
			t.Fatalf("node %d config = %+v", i, info)
		}
	}
}

func TestHeartbeatsSeen(t *testing.T) {
	k, _, nodes := bootCluster(3, 2, nil)
	run(k, 20*sim.Millisecond)
	for i, nd := range nodes {
		online := nd.OnlinePeerIDs()
		if len(online) != 3 {
			t.Fatalf("node %d sees %v online, want all 3", i, online)
		}
	}
}

func TestVersionRejection(t *testing.T) {
	k, _, nodes := bootCluster(3, 2, func(i int) Config {
		v := Version(0x0100)
		if i == 2 {
			v = 0x0200 // incompatible major
		}
		return Config{Version: v}
	})
	run(k, 30*sim.Millisecond)
	if !nodes[0].Online() || !nodes[1].Online() {
		t.Fatal("compatible nodes should be online")
	}
	if nodes[2].State != StateRejected {
		t.Fatalf("incompatible node state = %v, want rejected", nodes[2].State)
	}
	if nodes[0].Rejections == 0 {
		t.Fatal("sponsor counted no rejection")
	}
}

func TestCompatibleMinorVersionsJoin(t *testing.T) {
	k, _, nodes := bootCluster(2, 2, func(i int) Config {
		return Config{Version: Version(0x0100 + uint16(i))} // 1.0 and 1.1
	})
	run(k, 20*sim.Millisecond)
	for i, nd := range nodes {
		if !nd.Online() {
			t.Fatalf("node %d (minor version skew) not online", i)
		}
	}
}

func TestCacheRefreshCarriesState(t *testing.T) {
	// Boot node 0 alone, write app state, then boot node 1; it must
	// receive the state via refresh.
	k := sim.NewKernel(1)
	net := phys.NewNet(k)
	c := phys.BuildCluster(net, 2, 2, 50)
	mk := func(i int) *Node {
		return NewNode(k, c, Config{ID: i, Regions: map[uint8]int{1: 1024}})
	}
	n0 := mk(0)
	n1 := mk(1)
	k.After(0, func() { n0.Boot() })
	run(k, 10*sim.Millisecond)
	if !n0.Online() {
		t.Fatal("founder not online")
	}
	rec := netcache.Record{Region: 1, Off: 100, Size: 32}
	want := bytes.Repeat([]byte{0x5C}, 32)
	if err := n0.CacheW.WriteRecord(rec, want); err != nil {
		t.Fatal(err)
	}
	run(k, sim.Millisecond)

	k.After(0, func() { n1.Boot() })
	run(k, 30*sim.Millisecond)
	if !n1.Online() {
		t.Fatalf("joiner state = %v", n1.State)
	}
	got, ok := n1.Cache.TryRead(rec)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("refreshed state wrong: ok=%v", ok)
	}
	if n1.RefreshedB == 0 {
		t.Fatal("no refresh bytes counted")
	}
	if n0.Sponsored != 1 {
		t.Fatalf("sponsor count = %d", n0.Sponsored)
	}
}

func TestLiveWritesDuringAssimilationNotLost(t *testing.T) {
	k := sim.NewKernel(1)
	net := phys.NewNet(k)
	c := phys.BuildCluster(net, 3, 2, 50)
	var nodes []*Node
	for i := 0; i < 3; i++ {
		nodes = append(nodes, NewNode(k, c, Config{ID: i, Regions: map[uint8]int{1: 8192}}))
	}
	k.After(0, func() { nodes[0].Boot() })
	k.After(0, func() { nodes[1].Boot() })
	run(k, 20*sim.Millisecond)

	// Node 0 keeps writing records while node 2 assimilates.
	recs := netcache.Layout(1, 0, 16, 20)
	i := 0
	var writer func()
	writer = func() {
		if i < len(recs) {
			val := bytes.Repeat([]byte{byte(i + 1)}, 16)
			if err := nodes[0].CacheW.WriteRecord(recs[i], val); err != nil {
				t.Error(err)
			}
			i++
			k.After(300*sim.Microsecond, writer)
		}
	}
	k.After(0, writer)
	k.After(500*sim.Microsecond, func() { nodes[2].Boot() })
	run(k, 60*sim.Millisecond)

	if !nodes[2].Online() {
		t.Fatalf("joiner state = %v", nodes[2].State)
	}
	for j, r := range recs {
		got, ok := nodes[2].Cache.TryRead(r)
		if !ok {
			t.Fatalf("record %d torn at joiner", j)
		}
		want := bytes.Repeat([]byte{byte(j + 1)}, 16)
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d lost during assimilation: got %v", j, got[:4])
		}
	}
}

func TestPeerDownDetectionLatency(t *testing.T) {
	k, _, nodes := bootCluster(4, 2, nil)
	run(k, 20*sim.Millisecond)
	var detectedAt sim.Time = -1
	var failAt sim.Time
	nodes[0].OnPeerDown = func(id int) {
		if id == 2 && detectedAt < 0 {
			detectedAt = k.Now()
		}
	}
	k.After(0, func() {
		failAt = k.Now()
		nodes[2].AppFail()
	})
	run(k, 20*sim.Millisecond)
	if detectedAt < 0 {
		t.Fatal("failure never detected")
	}
	lat := detectedAt - failAt
	// Paper: "millisecond application failure detection". Default
	// config: 3 × 250 µs window plus one detection-loop tick.
	if lat > 2*sim.Millisecond {
		t.Fatalf("detection latency %v, want ≤ ~1ms class", lat)
	}
	if lat < 500*sim.Microsecond {
		t.Fatalf("detection latency %v suspiciously fast", lat)
	}
}

func TestPeerUpAfterReboot(t *testing.T) {
	k, _, nodes := bootCluster(3, 2, nil)
	run(k, 20*sim.Millisecond)
	ups := 0
	nodes[0].OnPeerUp = func(id int) {
		if id == 1 {
			ups++
		}
	}
	k.After(0, func() { nodes[1].Crash() })
	run(k, 20*sim.Millisecond)
	k.After(0, func() { nodes[1].Reboot() })
	run(k, 40*sim.Millisecond)
	if !nodes[1].Online() {
		t.Fatalf("rebooted node state = %v", nodes[1].State)
	}
	if ups == 0 {
		t.Fatal("peer-up never fired after reboot")
	}
}

func TestAppMessages(t *testing.T) {
	k, _, nodes := bootCluster(3, 2, nil)
	run(k, 20*sim.Millisecond)
	var got []uint8
	nodes[2].OnMessage = func(src micropacket.NodeID, tag uint8, pl [8]byte) {
		got = append(got, pl[0])
	}
	k.After(0, func() {
		nodes[0].SendMessage(2, TagApp+1, []byte{11})
		nodes[0].SendMessage(2, TagApp+1, []byte{22})
	})
	run(k, 5*sim.Millisecond)
	if len(got) != 2 || got[0] != 11 || got[1] != 22 {
		t.Fatalf("messages = %v", got)
	}
}

func TestAppTagRangeEnforced(t *testing.T) {
	k, _, nodes := bootCluster(2, 2, nil)
	run(k, 10*sim.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("kernel tag accepted as app message")
		}
	}()
	nodes[0].SendMessage(1, TagHeartbeat, nil)
}

func TestInterrupt(t *testing.T) {
	k, _, nodes := bootCluster(2, 2, nil)
	run(k, 20*sim.Millisecond)
	var vec uint8
	nodes[1].OnInterrupt = func(src micropacket.NodeID, v uint8) { vec = v }
	k.After(0, func() { nodes[0].Interrupt(1, 42) })
	run(k, 5*sim.Millisecond)
	if vec != 42 {
		t.Fatalf("vector = %d", vec)
	}
}

func TestPing(t *testing.T) {
	k, _, nodes := bootCluster(4, 2, nil)
	run(k, 20*sim.Millisecond)
	var rtt sim.Time = -1
	k.After(0, func() { nodes[0].Ping(2, func(d sim.Time) { rtt = d }) })
	run(k, 5*sim.Millisecond)
	if rtt <= 0 {
		t.Fatal("no pong")
	}
	if rtt > sim.Millisecond {
		t.Fatalf("rtt = %v on a 50m ring", rtt)
	}
}

func TestSemaphoresAcrossKernel(t *testing.T) {
	k, _, nodes := bootCluster(3, 2, nil)
	run(k, 20*sim.Millisecond)
	acquired := false
	k.After(0, func() {
		nodes[2].Sem.Lock(9, func() { acquired = true })
	})
	run(k, 10*sim.Millisecond)
	if !acquired {
		t.Fatal("lock via kernel wiring failed")
	}
}

func TestCrashHealsRingAndServicesContinue(t *testing.T) {
	k, _, nodes := bootCluster(5, 4, nil)
	run(k, 20*sim.Millisecond)
	k.After(0, func() { nodes[3].Crash() })
	run(k, 30*sim.Millisecond)
	// Ring healed without node 3.
	r := nodes[0].Agent.Roster()
	if r == nil || r.Contains(3) || r.Size() != 4 {
		t.Fatalf("post-crash roster: %v", r)
	}
	// Messaging still works across the healed ring.
	got := 0
	nodes[4].OnMessage = func(micropacket.NodeID, uint8, [8]byte) { got++ }
	k.After(0, func() { nodes[0].SendMessage(4, TagApp+2, []byte{1}) })
	run(k, 10*sim.Millisecond)
	if got != 1 {
		t.Fatalf("post-crash message deliveries = %d", got)
	}
}

func TestVersionHelpers(t *testing.T) {
	if Version(0x0102).Major() != 1 {
		t.Fatal("major extraction")
	}
	if !Compatible(0x0100, 0x0105) || Compatible(0x0100, 0x0200) {
		t.Fatal("compatibility rule")
	}
}

func TestStateString(t *testing.T) {
	for s := StateOffline; s <= StateRejected; s++ {
		if s.String() == "" {
			t.Fatal("empty state string")
		}
	}
	if State(99).String() == "" {
		t.Fatal("unknown state string")
	}
}
